package core

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/network"
)

// faultScenarioPlatform scatters ranks round-robin so neighbor exchanges
// cross nodes: cg at 8 ranks block-mapped is all-intra traffic, which
// the inter-node fault axes (derate, jitter, link-down) never touch.
func faultScenarioPlatform(t *testing.T, ranks int) network.Platform {
	t.Helper()
	return scenarioPlatform(t, ranks).WithMapping(network.RoundRobinMapping())
}

// TestScenarioFaultAxesGrid: the degradation axes expand like any other
// axis — row-major, deterministic across engine widths — and their
// identity points (derate 1, stragglers 0) measure byte-identically to
// the healthy spec, so a degradation sweep embeds its own healthy
// baseline as a grid point.
func TestScenarioFaultAxesGrid(t *testing.T) {
	const ranks = 8
	ctx := context.Background()
	healthy := Scenario{
		App: scenarioApp(), Ranks: ranks, Platform: faultScenarioPlatform(t, ranks),
		Flavors: []Flavor{FlavorBase},
	}
	ref, err := RunScenario(ctx, engine.New(1), healthy)
	if err != nil {
		t.Fatal(err)
	}

	spec := healthy
	spec.Axes = []Axis{
		DerateAxis(1, 0.5),
		StragglersAxis(0, 2),
	}
	first, err := RunScenario(ctx, engine.New(1), spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunScenario(ctx, engine.New(8), spec)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(first)
	b2, _ := json.Marshal(second)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("fault-axis results differ across engines:\n%s\n%s", b1, b2)
	}

	// Row-major, last axis fastest: (1,0) (1,2) (0.5,0) (0.5,2).
	if len(first.Points) != 4 {
		t.Fatalf("%d points, want 4", len(first.Points))
	}
	wantCoords := [][2]string{{"1", "0"}, {"1", "2"}, {"0.5", "0"}, {"0.5", "2"}}
	for i, pt := range first.Points {
		if pt.Coords[0].Axis != AxisDerate || pt.Coords[1].Axis != AxisStragglers {
			t.Fatalf("point %d axes %+v", i, pt.Coords)
		}
		if pt.Coords[0].Value != wantCoords[i][0] || pt.Coords[1].Value != wantCoords[i][1] {
			t.Fatalf("point %d at (%s,%s), want (%s,%s)", i,
				pt.Coords[0].Value, pt.Coords[1].Value, wantCoords[i][0], wantCoords[i][1])
		}
	}
	// The identity point replays byte-identically to the healthy spec.
	base := first.Points[0].Flavors[0].FinishSec
	if math.Float64bits(base) != math.Float64bits(ref.Points[0].Flavors[0].FinishSec) {
		t.Fatalf("identity point finish %.9f, healthy spec %.9f", base, ref.Points[0].Flavors[0].FinishSec)
	}
	// Every degraded point is strictly slower than the baseline.
	for _, i := range []int{1, 2, 3} {
		if got := first.Points[i].Flavors[0].FinishSec; got <= base {
			t.Fatalf("degraded point %d finish %.9f, not slower than baseline %.9f", i, got, base)
		}
	}
}

// TestScenarioDegradationsField: a spec-level Degradations block stamps
// the whole grid, changes the spec digest, and slows the run; the
// zero-valued block is digest-invisible — pre-fault-injection spec
// digests (and their cached results) stay valid.
func TestScenarioDegradationsField(t *testing.T) {
	const ranks = 8
	ctx := context.Background()
	healthy := Scenario{
		App: scenarioApp(), Ranks: ranks, Platform: faultScenarioPlatform(t, ranks),
		Flavors: []Flavor{FlavorBase},
	}
	hd, err := healthy.Digest()
	if err != nil {
		t.Fatal(err)
	}
	zeroed := healthy
	zeroed.Degradations = faults.Spec{}
	zd, err := zeroed.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if zd != hd {
		t.Fatalf("zero Degradations changed the spec digest: %s vs %s", zd, hd)
	}

	degraded := healthy
	degraded.Degradations = faults.Spec{StragglerFactor: 4, StragglerRanks: []int{3}}
	dd, err := degraded.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if dd == hd {
		t.Fatal("active Degradations left the spec digest unchanged")
	}
	ref, err := RunScenario(ctx, engine.New(1), healthy)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunScenario(ctx, engine.New(1), degraded)
	if err != nil {
		t.Fatal(err)
	}
	if got.Points[0].Flavors[0].FinishSec <= ref.Points[0].Flavors[0].FinishSec {
		t.Fatalf("straggler-degraded run finish %.9f, healthy %.9f",
			got.Points[0].Flavors[0].FinishSec, ref.Points[0].Flavors[0].FinishSec)
	}
}

// TestScenarioFaultAxisValidation: malformed degradation axes are
// rejected up front, before any replay runs.
func TestScenarioFaultAxisValidation(t *testing.T) {
	const ranks = 8
	base := Scenario{
		App: scenarioApp(), Ranks: ranks, Platform: faultScenarioPlatform(t, ranks),
		Flavors: []Flavor{FlavorBase},
	}
	bad := []struct {
		name string
		ax   Axis
	}{
		{"derate>1", DerateAxis(1.5)},
		{"derate<0", DerateAxis(-0.5)},
		{"derate=0", DerateAxis(0)},
		{"jitter<0", JitterAxis(-0.1)},
		{"stragglers<0", StragglersAxis(-1)},
		{"linkdown<0", LinkDownAxis(-2)},
	}
	for _, tc := range bad {
		spec := base
		spec.Axes = []Axis{tc.ax}
		if _, err := RunScenario(context.Background(), engine.New(1), spec); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestScenarioFaultPointSurfaced: a grid point whose faults sever a
// required path doesn't kill the study — the point reports the stall in
// its Fault field while healthy points in the same grid measure
// normally.
func TestScenarioFaultPointSurfaced(t *testing.T) {
	const ranks = 8
	plat := faultScenarioPlatform(t, ranks)
	if plat.Nodes < 2 {
		t.Fatalf("preset has %d nodes, need >= 2 to sever a link", plat.Nodes)
	}
	spec := Scenario{
		App: scenarioApp(), Ranks: ranks, Platform: plat,
		Flavors: []Flavor{FlavorBase},
		Axes:    []Axis{LinkDownAxis(0, plat.Nodes*(plat.Nodes-1)/2)},
	}
	res, err := RunScenario(context.Background(), engine.New(2), spec)
	if err != nil {
		t.Fatalf("severed grid point killed the study: %v", err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points, want 2", len(res.Points))
	}
	okPt, badPt := res.Points[0].Flavors[0], res.Points[1].Flavors[0]
	if okPt.Fault != "" || okPt.FinishSec <= 0 {
		t.Fatalf("healthy point corrupted: %+v", okPt)
	}
	if badPt.Fault == "" {
		t.Fatalf("severed point carries no fault: %+v", badPt)
	}
	if !strings.Contains(badPt.Fault, "deadlock") || !strings.Contains(badPt.Fault, "lost") {
		t.Fatalf("fault text %q missing the stall description", badPt.Fault)
	}
	if badPt.FinishSec != 0 {
		t.Fatalf("severed point still reports a finish time: %+v", badPt)
	}
}
