// Tests of the streaming scenario path over real HTTP: NDJSON frames
// reassemble to the batch bytes, cached reruns replay byte-identically
// with zero engine work, overlapping grids resume from the point cache,
// and the client iterator sees the same points the batch result lists.
package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/tracer"
)

// newStreamService is newService plus the server's base URL, for tests
// that speak raw NDJSON.
func newStreamService(t *testing.T, workers int) (*service.Manager, *client.Client, string) {
	t.Helper()
	eng := engine.New(workers)
	mgr, err := service.NewManager(service.Options{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewHandler(mgr))
	t.Cleanup(srv.Close)
	return mgr, client.New(srv.URL, srv.Client()), srv.URL
}

// postNDJSON posts a scenario request with Accept: application/x-ndjson
// and returns the raw response body plus selected headers.
func postNDJSON(t *testing.T, base string, req service.ScenarioRequest) (body []byte, status int, header http.Header) {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, base+"/v1/scenarios", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Accept", service.NDJSONContentType)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body, resp.StatusCode, resp.Header
}

// reassembleNDJSON splices a raw NDJSON body back into the batch JSON:
// header bytes with "points" appended, exactly as the daemon's
// assembler builds the cache entry. Returns the spliced payload and the
// number of point frames.
func reassembleNDJSON(t *testing.T, body []byte) ([]byte, int) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("stream has %d frames, want header + done at least", len(lines))
	}
	var out bytes.Buffer
	points := 0
	sawDone := false
	for i, line := range lines {
		var f service.StreamFrame
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("frame %d: %v (%q)", i, err, line)
		}
		switch {
		case f.Header != nil:
			if i != 0 {
				t.Fatalf("header frame at position %d", i)
			}
			hdr := []byte(f.Header)
			out.Write(hdr[:len(hdr)-1])
			out.WriteString(`,"points":[`)
		case f.Point != nil:
			if points > 0 {
				out.WriteByte(',')
			}
			out.Write(f.Point)
			points++
		case f.Done != nil:
			if f.Done.Points != points {
				t.Fatalf("done frame counts %d points, stream carried %d", f.Done.Points, points)
			}
			if i != len(lines)-1 {
				t.Fatalf("done frame at position %d of %d", i, len(lines))
			}
			sawDone = true
		case f.Error != "":
			t.Fatalf("stream failed: %s", f.Error)
		default:
			t.Fatalf("frame %d is empty: %q", i, line)
		}
	}
	if !sawDone {
		t.Fatal("stream ended without a done frame")
	}
	out.WriteString(`]}`)
	return out.Bytes(), points
}

// TestScenarioStreamNDJSONMatchesBatch is the tentpole acceptance path:
// a fresh stream's frames reassemble to exactly the batch JSON; the
// batch endpoint then serves those bytes from cache with zero new engine
// jobs; and a repeated stream replays the identical frame bytes, also
// without touching the engine.
func TestScenarioStreamNDJSONMatchesBatch(t *testing.T) {
	mgr, cl, base := newStreamService(t, 2)
	ctx := context.Background()
	req := service.ScenarioRequest{
		App: "cg", Ranks: 4,
		Axes: []core.Axis{
			core.BandwidthAxis(125, 250),
			core.MappingAxis("block", "rr"),
		},
		Output: "traffic",
	}

	stream1, status, hdr := postNDJSON(t, base, req)
	if status != http.StatusOK {
		t.Fatalf("stream status %d: %s", status, stream1)
	}
	if ct := hdr.Get("Content-Type"); ct != service.NDJSONContentType {
		t.Fatalf("Content-Type %q, want %q", ct, service.NDJSONContentType)
	}
	if hdr.Get("X-Cache") != "miss" {
		t.Fatalf("fresh stream X-Cache %q", hdr.Get("X-Cache"))
	}
	assembled, points := reassembleNDJSON(t, stream1)
	if points != 4 {
		t.Fatalf("%d point frames, want 4", points)
	}
	afterStream := mgr.Engine().Stats()

	// The batch endpoint answers the same spec from the cache the stream
	// filled — byte-identical to the reassembled frames, no engine work.
	batch, err := cl.ScenarioRaw(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(assembled, batch) {
		t.Fatalf("reassembled stream differs from batch JSON:\n%s\n%s", assembled, batch)
	}
	if after := mgr.Engine().Stats(); after.Started != afterStream.Started {
		t.Fatalf("cached batch rerun spawned engine jobs: %d -> %d", afterStream.Started, after.Started)
	}

	// A repeated stream replays the stored payload frame by frame —
	// byte-identical to the original stream, zero new engine jobs.
	stream2, status, hdr2 := postNDJSON(t, base, req)
	if status != http.StatusOK {
		t.Fatalf("cached stream status %d", status)
	}
	if hdr2.Get("X-Cache") != "hit" {
		t.Fatalf("cached stream X-Cache %q", hdr2.Get("X-Cache"))
	}
	if !bytes.Equal(stream1, stream2) {
		t.Fatalf("cached stream not byte-identical:\n%s\n%s", stream1, stream2)
	}
	if after := mgr.Engine().Stats(); after.Started != afterStream.Started {
		t.Fatalf("cached stream spawned engine jobs: %d -> %d", afterStream.Started, after.Started)
	}
}

// TestScenarioStreamClientIterator drives the same run through the
// client's pull iterator: header first, points in batch order, io.EOF
// after the done frame.
func TestScenarioStreamClientIterator(t *testing.T) {
	_, cl, _ := newStreamService(t, 2)
	ctx := context.Background()
	req := service.ScenarioRequest{
		App: "cg", Ranks: 4,
		Axes:   []core.Axis{core.BandwidthAxis(125, 250, 500)},
		Output: "finish",
	}
	st, err := cl.ScenarioStream(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	hdr := st.Header()
	if hdr.SpecDigest == "" || hdr.GridPoints != 3 {
		t.Fatalf("stream header %+v", hdr)
	}
	var got []core.ScenarioPoint
	for {
		pt, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, pt)
	}
	// The cached batch result lists exactly the streamed points, in order.
	res, err := cl.Scenario(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpecDigest != hdr.SpecDigest {
		t.Fatalf("spec digest mismatch: %s vs %s", res.SpecDigest, hdr.SpecDigest)
	}
	if len(got) != len(res.Points) {
		t.Fatalf("streamed %d points, batch has %d", len(got), len(res.Points))
	}
	for i := range got {
		sj, _ := json.Marshal(got[i])
		bj, _ := json.Marshal(res.Points[i])
		if !bytes.Equal(sj, bj) {
			t.Fatalf("point %d differs:\n%s\n%s", i, sj, bj)
		}
	}
}

// TestScenarioStreamSupersetResume: after a subset grid runs, a superset
// spec simulates only the gap — the overlapping points come from the
// point-level cache, visible in the metrics counters.
func TestScenarioStreamSupersetResume(t *testing.T) {
	mgr, cl, base := newStreamService(t, 2)
	ctx := context.Background()

	entry, _ := apps.ByName("cg", 4)
	run, err := tracer.Trace("cg", 4, tracer.DefaultConfig(), entry.App.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	info, err := cl.UploadTrace(ctx, run.BaseTrace())
	if err != nil {
		t.Fatal(err)
	}

	subset := service.ScenarioRequest{
		Trace:  info.Digest,
		Axes:   []core.Axis{core.BandwidthAxis(125, 250)},
		Output: "finish",
	}
	subBody, status, _ := postNDJSON(t, base, subset)
	if status != http.StatusOK {
		t.Fatalf("subset stream status %d: %s", status, subBody)
	}
	subAssembled, _ := reassembleNDJSON(t, subBody)
	afterSubset := mgr.Engine().Stats()
	jobsSubset := afterSubset.Started

	superset := subset
	superset.Axes = []core.Axis{core.BandwidthAxis(125, 250, 500)}
	supBody, status, _ := postNDJSON(t, base, superset)
	if status != http.StatusOK {
		t.Fatalf("superset stream status %d: %s", status, supBody)
	}
	supAssembled, points := reassembleNDJSON(t, supBody)
	if points != 3 {
		t.Fatalf("superset streamed %d points, want 3", points)
	}
	afterSuperset := mgr.Engine().Stats()

	// Finish output on a stored trace measures flavors per bandwidth;
	// the superset adds one bandwidth, so the gap costs exactly the
	// per-point job count the subset averaged (its two points were all
	// fresh).
	perPoint := int(jobsSubset) / 2
	if gap := int(afterSuperset.Started - afterSubset.Started); gap != perPoint {
		t.Fatalf("superset ran %d engine jobs, want %d (one fresh point)", gap, perPoint)
	}
	met := mgr.MetricsSnapshot()
	if met.PointCacheHits < 2 {
		t.Fatalf("point cache hits %d, want >= 2 (the overlapping grid)", met.PointCacheHits)
	}

	// The superset's overlapping points are byte-identical to the
	// subset's — cached resume does not perturb the payload.
	var sub, sup struct {
		Points []json.RawMessage `json:"points"`
	}
	if err := json.Unmarshal(subAssembled, &sub); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(supAssembled, &sup); err != nil {
		t.Fatal(err)
	}
	for i := range sub.Points {
		if !bytes.Equal(sub.Points[i], sup.Points[i]) {
			t.Fatalf("overlapping point %d differs:\n%s\n%s", i, sub.Points[i], sup.Points[i])
		}
	}
}

// TestScenarioStreamValidationError: a malformed spec fails before any
// frame is written — a plain JSON error with 400, not a broken stream.
func TestScenarioStreamValidationError(t *testing.T) {
	_, _, base := newStreamService(t, 2)
	body, status, hdr := postNDJSON(t, base, service.ScenarioRequest{App: "cg", Ranks: 4, Trace: "also-set"})
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", status)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error Content-Type %q", ct)
	}
	if !bytes.Contains(body, []byte("exactly one of app or trace")) {
		t.Fatalf("error body %s", body)
	}
}

// TestScenarioStreamClientError: the iterator surfaces daemon-side
// rejections as errors from ScenarioStream, not as broken streams.
func TestScenarioStreamClientError(t *testing.T) {
	_, cl, _ := newStreamService(t, 2)
	_, err := cl.ScenarioStream(context.Background(), service.ScenarioRequest{Output: "finish"})
	if err == nil || !strings.Contains(err.Error(), "exactly one of app or trace") {
		t.Fatalf("err = %v", err)
	}
	if errors.Is(err, io.EOF) {
		t.Fatal("validation error reported as EOF")
	}
}
