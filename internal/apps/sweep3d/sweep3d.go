// Package sweep3d models the Sweep3D wavefront kernel: a discrete-ordinates
// neutron-transport sweep over a 3D grid, 2D-decomposed so each rank
// receives inflow boundary data from its west and north neighbours,
// computes its block of planes, and forwards outflow data east and south.
//
// The kernel reproduces the two properties the paper measures for Sweep3D:
//
//   - Production (Fig. 5a, Table II): the outgoing boundary buffer (600
//     elements, like the paper's plot) is revisited and accumulated many
//     times during one production interval; the first element reaches its
//     final version around two thirds of the interval (the wavefront
//     corner), while the bulk of the buffer is finalized only in the last
//     few percent — the paper reports 66.3% / 94.8% / 98.2% / 99.8%.
//   - Consumption: inflow data is needed immediately when the block
//     computation starts (0.02% in the paper), leaving no room to postpone
//     receptions.
//
// Because of the wavefront dependency chain, chunking creates finer-grain
// pipeline parallelism between ranks — exactly why the paper finds Sweep3D
// gains the most from ideal-pattern overlap and why no bandwidth increase
// can match it (Fig. 6c).
package sweep3d

import (
	"repro/internal/tracer"
)

// Config sizes the kernel.
type Config struct {
	// Px, Py is the process grid; Px*Py ranks are required.
	Px, Py int
	// Iterations is the number of full sweeps (the paper's runs iterate
	// the source until convergence; a handful of sweeps exhibits the
	// steady-state pattern).
	Iterations int
	// Boundary is the element count of each outgoing face buffer. The
	// paper's measured buffer has 600 elements.
	Boundary int
	// AccumPasses is how many accumulation passes revisit the boundary
	// buffer during one block computation (angle batches in mk blocks).
	AccumPasses int
	// WorkPerElem is the instruction cost charged per grid-cell update.
	WorkPerElem int64
}

// DefaultConfig matches the paper's problem shape scaled to simulation
// size: a 600-element boundary, mk-like accumulation passes, and a square
// process grid.
func DefaultConfig(ranks int) Config {
	px, py := gridFor(ranks)
	return Config{
		Px: px, Py: py,
		Iterations:  5,
		Boundary:    600,
		AccumPasses: 3,
		WorkPerElem: 300,
	}
}

// gridFor factors ranks into the most square Px*Py decomposition.
func gridFor(ranks int) (int, int) {
	best := 1
	for d := 1; d*d <= ranks; d++ {
		if ranks%d == 0 {
			best = d
		}
	}
	return best, ranks / best
}

// Ranks returns the number of processes the config requires.
func (c Config) Ranks() int { return c.Px * c.Py }

// Tags for the two outflow directions.
const (
	tagEast  = 1
	tagSouth = 2
)

// Kernel runs one rank of the sweep.
func Kernel(cfg Config) func(p *tracer.Proc) {
	return func(p *tracer.Proc) {
		me := p.Rank()
		px, py := cfg.Px, cfg.Py
		ix, iy := me%px, me/px
		n := cfg.Boundary

		west := p.NewArray("inflow-west", n)
		north := p.NewArray("inflow-north", n)
		east := p.NewArray("outflow-east", n)
		south := p.NewArray("outflow-south", n)

		for it := 0; it < cfg.Iterations; it++ {
			// --- Receive inflow (wavefront order: west then north). ---
			if ix > 0 {
				p.Recv(west, me-1, tagEast)
			}
			if iy > 0 {
				p.Recv(north, me-px, tagSouth)
			}
			// The block computation needs the inflow immediately: the
			// very first cell update reads the boundary (consumption
			// potential ~0%).
			inflow := 0.0
			if ix > 0 {
				for i := 0; i < n; i++ {
					inflow += west.Load(i)
					p.Compute(cfg.WorkPerElem / 2)
				}
			}
			if iy > 0 {
				for i := 0; i < n; i++ {
					inflow += north.Load(i)
					p.Compute(cfg.WorkPerElem / 2)
				}
			}

			// --- Accumulation passes (≈ two thirds of the interval):
			// every boundary element is revisited each pass, so no final
			// version exists yet. ---
			for pass := 0; pass < cfg.AccumPasses; pass++ {
				for i := 0; i < n; i++ {
					p.Compute(cfg.WorkPerElem)
					v := inflow + float64(it+pass) + float64(i)
					east.Store(i, v)
					south.Store(i, v*0.5)
				}
			}

			// --- Wavefront corner: the first outgoing element settles
			// once the last angle batch reaches it (~66% of the
			// interval), while the interior keeps accumulating. ---
			east.Store(0, inflow+float64(it))
			south.Store(0, inflow+float64(it))
			interiorWork := int64(n) * cfg.WorkPerElem * int64(cfg.AccumPasses) / 2
			p.Compute(interiorWork)

			// --- Final outflow pass: the rest of the buffer reaches its
			// final version in a tight loop at the very end of the
			// interval (the paper's 94.8/98.2/99.8 tail). ---
			for i := 1; i < n; i++ {
				p.Compute(1)
				east.Store(i, inflow+float64(it+i))
				south.Store(i, inflow+float64(it+i)*0.5)
			}

			// --- Forward outflow east and south. ---
			if ix < px-1 {
				p.Send(me+1, tagEast, east)
			}
			if iy < py-1 {
				p.Send(me+px, tagSouth, south)
			}
		}
	}
}
