package trace

import (
	"bytes"
	"strings"
	"testing"
)

// tinyTraceDigest is the pinned digest of tinyTrace(). It changes only if
// the binary codec's byte layout changes — which would also invalidate
// every stored artifact, so this test is the tripwire for accidental
// format drift.
const tinyTraceDigest = "sha256:d41bae55018861246443d2a8939e40b93e20341ea6b382134a33bcd800d0c1cf"

func TestDigestStable(t *testing.T) {
	d1, err := Digest(tinyTrace())
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Digest(tinyTrace())
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("digest not deterministic: %s vs %s", d1, d2)
	}
	if d1 != tinyTraceDigest {
		t.Fatalf("binary codec layout drifted: digest %s, pinned %s", d1, tinyTraceDigest)
	}
}

func TestDigestRoundTrip(t *testing.T) {
	tr := tinyTrace()
	want, err := Digest(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Binary round trip preserves the digest.
	var bin bytes.Buffer
	if err := WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	fromBin, err := ReadBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := Digest(fromBin); got != want {
		t.Fatalf("binary round trip changed digest: %s vs %s", got, want)
	}
	// Text round trip converges on the same digest: the digest addresses
	// content, not the codec the trace travelled through.
	var txt bytes.Buffer
	if err := Write(&txt, tr); err != nil {
		t.Fatal(err)
	}
	fromTxt, err := Read(&txt)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := Digest(fromTxt); got != want {
		t.Fatalf("text round trip changed digest: %s vs %s", got, want)
	}
}

func TestDigestDistinguishesTraces(t *testing.T) {
	base, _ := Digest(tinyTrace())
	mutants := []func(*Trace){
		func(tr *Trace) { tr.Name = "other" },
		func(tr *Trace) { tr.Flavor = "overlap-real" },
		func(tr *Trace) { tr.Ranks[0].Records[0].Instr++ },
		func(tr *Trace) { tr.Append(1, Record{Kind: KindWaitAll}) },
	}
	for i, mutate := range mutants {
		tr := tinyTrace()
		mutate(tr)
		got, err := Digest(tr)
		if err != nil {
			t.Fatal(err)
		}
		if got == base {
			t.Errorf("mutant %d digests equal to the original", i)
		}
	}
}

func TestValidDigest(t *testing.T) {
	good, _ := Digest(tinyTrace())
	if !ValidDigest(good) {
		t.Errorf("real digest rejected: %s", good)
	}
	for _, bad := range []string{
		"",
		"sha256:",
		"sha256:zz",
		strings.TrimPrefix(good, "sha256:"),
		"md5:" + strings.TrimPrefix(good, "sha256:"),
		good + "00",
		"sha256:" + strings.Repeat("Z", 64),
	} {
		if ValidDigest(bad) {
			t.Errorf("bad digest accepted: %q", bad)
		}
	}
}
