package mpi

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestNewWorldRejectsNonPositive(t *testing.T) {
	if _, err := NewWorld(0); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := NewWorld(-3); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestSendRecvMovesData(t *testing.T) {
	err := Run(2, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 9, []float64{1, 2, 3})
		} else {
			buf := make([]float64, 3)
			p.Recv(buf, 0, 9)
			if buf[0] != 1 || buf[1] != 2 || buf[2] != 3 {
				t.Errorf("got %v", buf)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	err := Run(2, func(p *Proc) {
		if p.Rank() == 0 {
			data := []float64{42}
			p.Send(1, 0, data)
			data[0] = -1 // mutate after send: receiver must see 42
			p.Send(1, 1, data)
		} else {
			var buf [1]float64
			p.Recv(buf[:], 0, 0)
			if buf[0] != 42 {
				t.Errorf("first message corrupted: %v", buf[0])
			}
			p.Recv(buf[:], 0, 1)
			if buf[0] != -1 {
				t.Errorf("second message wrong: %v", buf[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatching(t *testing.T) {
	err := Run(2, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 5, []float64{5})
			p.Send(1, 7, []float64{7})
		} else {
			var a, b [1]float64
			p.Recv(b[:], 0, 7) // receive tags out of send order
			p.Recv(a[:], 0, 5)
			if a[0] != 5 || b[0] != 7 {
				t.Errorf("tag matching broken: a=%v b=%v", a[0], b[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonOvertakingSameTag(t *testing.T) {
	err := Run(2, func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; i < 10; i++ {
				p.Send(1, 3, []float64{float64(i)})
			}
		} else {
			var buf [1]float64
			for i := 0; i < 10; i++ {
				p.Recv(buf[:], 0, 3)
				if buf[0] != float64(i) {
					t.Errorf("message %d overtaken: got %v", i, buf[0])
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvWait(t *testing.T) {
	err := Run(2, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 0, []float64{3.14})
		} else {
			var buf [1]float64
			req := p.Irecv(buf[:], 0, 0)
			req.Wait()
			if buf[0] != 3.14 {
				t.Errorf("irecv data: %v", buf[0])
			}
			if !req.Done() {
				t.Error("request not done after Wait")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScalarHelpers(t *testing.T) {
	err := Run(2, func(p *Proc) {
		if p.Rank() == 0 {
			p.SendScalar(1, 0, 2.5)
		} else if got := p.RecvScalar(0, 0); got != 2.5 {
			t.Errorf("scalar: %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunReportsPanics(t *testing.T) {
	err := Run(2, func(p *Proc) {
		if p.Rank() == 1 {
			panic("boom")
		}
	})
	if err == nil {
		t.Fatal("panic not reported")
	}
}

func TestSendValidation(t *testing.T) {
	err := Run(2, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(5, 0, nil) // invalid destination: panics, recovered by Run
		}
	})
	if err == nil {
		t.Fatal("invalid destination accepted")
	}
	err = Run(2, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(0, 0, nil) // self send
		}
	})
	if err == nil {
		t.Fatal("self send accepted")
	}
}

func worldSizes() []int { return []int{1, 2, 3, 4, 5, 8, 13, 16} }

func TestBarrierAllRanksPass(t *testing.T) {
	for _, n := range worldSizes() {
		var passed int64
		err := Run(n, func(p *Proc) {
			p.Barrier()
			atomic.AddInt64(&passed, 1)
			p.Barrier()
			if got := atomic.LoadInt64(&passed); got != int64(n) {
				t.Errorf("n=%d: after second barrier %d ranks passed the first", n, got)
			}
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBcast(t *testing.T) {
	for _, n := range worldSizes() {
		for root := 0; root < n; root += 1 + n/3 {
			err := Run(n, func(p *Proc) {
				buf := make([]float64, 4)
				if p.Rank() == root {
					for i := range buf {
						buf[i] = float64(10*root + i)
					}
				}
				p.Bcast(buf, root)
				for i := range buf {
					if buf[i] != float64(10*root+i) {
						t.Errorf("n=%d root=%d rank=%d: buf=%v", n, root, p.Rank(), buf)
						return
					}
				}
			})
			if err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range worldSizes() {
		err := Run(n, func(p *Proc) {
			in := []float64{float64(p.Rank()), 1}
			var out []float64
			if p.Rank() == 0 {
				out = make([]float64, 2)
			}
			p.Reduce(in, out, OpSum, 0)
			if p.Rank() == 0 {
				wantSum := float64(n*(n-1)) / 2
				if out[0] != wantSum || out[1] != float64(n) {
					t.Errorf("n=%d: reduce got %v, want [%v %v]", n, out, wantSum, float64(n))
				}
			}
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestAllreduceOps(t *testing.T) {
	ops := []struct {
		name string
		op   Op
		want func(n int) float64
	}{
		{"sum", OpSum, func(n int) float64 { return float64(n*(n-1)) / 2 }},
		{"max", OpMax, func(n int) float64 { return float64(n - 1) }},
		{"min", OpMin, func(n int) float64 { return 0 }},
	}
	for _, n := range worldSizes() {
		for _, tc := range ops {
			err := Run(n, func(p *Proc) {
				in := []float64{float64(p.Rank())}
				out := make([]float64, 1)
				p.Allreduce(in, out, tc.op)
				if out[0] != tc.want(n) {
					t.Errorf("n=%d %s: rank %d got %v, want %v", n, tc.name, p.Rank(), out[0], tc.want(n))
				}
			})
			if err != nil {
				t.Fatalf("n=%d %s: %v", n, tc.name, err)
			}
		}
	}
}

func TestAllreduceProd(t *testing.T) {
	err := Run(4, func(p *Proc) {
		in := []float64{2}
		out := make([]float64, 1)
		p.Allreduce(in, out, OpProd)
		if out[0] != 16 {
			t.Errorf("prod: %v", out[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	for _, n := range worldSizes() {
		err := Run(n, func(p *Proc) {
			in := []float64{float64(p.Rank()), float64(p.Rank() * 10)}
			var out []float64
			if p.Rank() == 0 {
				out = make([]float64, 2*n)
			}
			p.Gather(in, out, 0)
			if p.Rank() == 0 {
				for r := 0; r < n; r++ {
					if out[2*r] != float64(r) || out[2*r+1] != float64(r*10) {
						t.Errorf("n=%d: gather block %d = %v", n, r, out[2*r:2*r+2])
					}
				}
			}
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestAllgather(t *testing.T) {
	for _, n := range worldSizes() {
		err := Run(n, func(p *Proc) {
			in := []float64{float64(p.Rank() + 1)}
			out := make([]float64, n)
			p.Allgather(in, out)
			for r := 0; r < n; r++ {
				if out[r] != float64(r+1) {
					t.Errorf("n=%d rank=%d: allgather=%v", n, p.Rank(), out)
					return
				}
			}
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestAlltoall(t *testing.T) {
	for _, n := range worldSizes() {
		err := Run(n, func(p *Proc) {
			m := 2
			in := make([]float64, n*m)
			out := make([]float64, n*m)
			for d := 0; d < n; d++ {
				in[d*m] = float64(100*p.Rank() + d)
				in[d*m+1] = -in[d*m]
			}
			p.Alltoall(in, out, m)
			for s := 0; s < n; s++ {
				want := float64(100*s + p.Rank())
				if out[s*m] != want || out[s*m+1] != -want {
					t.Errorf("n=%d rank=%d: block from %d = %v, want %v", n, p.Rank(), s, out[s*m:s*m+2], want)
					return
				}
			}
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestReduceScatter(t *testing.T) {
	for _, n := range worldSizes() {
		err := Run(n, func(p *Proc) {
			in := make([]float64, n*3)
			for i := range in {
				in[i] = float64(i)
			}
			out := make([]float64, 3)
			p.ReduceScatter(in, out, OpSum)
			for i := 0; i < 3; i++ {
				want := float64(n * (p.Rank()*3 + i))
				if out[i] != want {
					t.Errorf("n=%d rank=%d: out[%d]=%v, want %v", n, p.Rank(), i, out[i], want)
				}
			}
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestCollectivesInterleaveWithP2P(t *testing.T) {
	// Collectives and app point-to-point traffic with overlapping tag use
	// must not interfere thanks to the tag-space partition.
	err := Run(4, func(p *Proc) {
		out := make([]float64, 1)
		if p.Rank() == 0 {
			p.Send(1, 0, []float64{77})
		}
		p.Allreduce([]float64{1}, out, OpSum)
		if p.Rank() == 1 {
			var buf [1]float64
			p.Recv(buf[:], 0, 0)
			if buf[0] != 77 {
				t.Errorf("p2p payload corrupted: %v", buf[0])
			}
		}
		if out[0] != 4 {
			t.Errorf("allreduce alongside p2p: %v", out[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAllreduceSumMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%7+7)%7 + 2 // 2..8
		vals := make([]float64, n)
		x := seed
		for i := range vals {
			x = x*6364136223846793005 + 1442695040888963407
			vals[i] = float64(x%1000) / 10
		}
		var want float64
		for _, v := range vals {
			want += v
		}
		okc := make(chan bool, n)
		err := Run(n, func(p *Proc) {
			out := make([]float64, 1)
			p.Allreduce([]float64{vals[p.Rank()]}, out, OpSum)
			okc <- math.Abs(out[0]-want) < 1e-9
		})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if !<-okc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCollTagDisjointFromAppTags(t *testing.T) {
	if CollTag(0, 0) < collTagBase {
		t.Fatal("collective tags overlap application tag space")
	}
	seen := map[int]bool{}
	for seq := 0; seq < 6; seq++ {
		for round := 0; round < 64; round++ {
			tag := CollTag(seq, round)
			if seen[tag] {
				t.Fatalf("duplicate collective tag %d", tag)
			}
			seen[tag] = true
		}
	}
}
