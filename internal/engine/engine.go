// Package engine is the concurrent experiment engine of the framework: it
// runs independent experiment jobs — trace replays, sweep points, what-if
// variants, whole-app analyses — across a bounded goroutine worker pool.
//
// The trace-replay methodology of the paper is embarrassingly parallel:
// an application is traced once and the resulting event log is replayed
// many times under varied parameters (chunk counts, bandwidths, idealized
// buffers, platform configurations). Every replay is a pure function of
// (platform config, trace), so the engine fans replays out across workers
// while guaranteeing:
//
//   - bounded concurrency: at most Workers jobs run at once, regardless of
//     how many jobs are submitted or how submissions nest;
//   - deterministic result ordering: Map returns results indexed exactly
//     like its inputs, so parallel sweeps are byte-identical to serial ones;
//   - per-job error aggregation: every failing job is reported with its
//     index (Errors), not just the first failure;
//   - context-based cancellation: unstarted jobs inherit ctx.Err() and the
//     submitting loop stops promptly.
//
// Deadlock-freedom comes from the caller-runs discipline: a submitter
// never blocks waiting for a pool slot. It opportunistically hands jobs to
// free workers and otherwise runs them inline on its own goroutine. A job
// may therefore call Map on the same engine — directly or through any of
// the context-free convenience wrappers in package core — without risking
// a pool whose every worker waits on sub-jobs. The cost is that each
// concurrently-submitting goroutine may execute at most one job itself, so
// total parallelism is bounded by Workers plus the number of concurrent
// Map callers (each of which would otherwise sit idle).
package engine

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Engine is a bounded worker pool plus a shared trace cache. The zero
// value is not usable; create one with New. An Engine is safe for
// concurrent use and may be shared by any number of experiments.
type Engine struct {
	workers int
	sem     chan struct{}
	traces  *TraceCache

	started   atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64

	// Observer chain: a copy-on-write list so notification is a single
	// atomic load on the job hot path while installs stay rare and cheap.
	obsMu     sync.Mutex
	observers atomic.Pointer[[]*obsEntry]
}

// New returns an engine running at most workers jobs concurrently.
// workers <= 0 selects GOMAXPROCS, the number of usable CPUs.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		workers: workers,
		sem:     make(chan struct{}, workers),
		traces:  NewTraceCache(),
	}
}

// Workers returns the concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// Traces returns the engine's shared trace cache: trace an application
// once, fan its replays out across the pool.
func (e *Engine) Traces() *TraceCache { return e.traces }

// Stats is a snapshot of the engine's job lifecycle counters over its
// whole lifetime. Completed counts every finished job, including failed
// ones; Started - Completed is the number of jobs currently executing.
type Stats struct {
	Started   uint64 `json:"started"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
}

// Stats returns the engine's lifetime job counters. Callers such as the
// service layer diff two snapshots to prove that a cached result spawned
// no new engine work.
func (e *Engine) Stats() Stats {
	// Read completion counters before Started so a concurrent job can
	// never make the snapshot claim more completions than starts.
	failed := e.failed.Load()
	completed := e.completed.Load()
	return Stats{
		Started:   e.started.Load(),
		Completed: completed,
		Failed:    failed,
	}
}

// JobEvent is one job lifecycle notification: Done=false when the job
// starts executing, Done=true (with its error, if any) when it finishes.
// Wait is the delay between the job's submission and its execution
// start; Elapsed is the execution duration (set only on Done events).
type JobEvent struct {
	Index   int
	Done    bool
	Err     error
	Wait    time.Duration
	Elapsed time.Duration
}

// JobObserver receives job lifecycle events. Observers run inline on the
// executing goroutine and must be fast and safe for concurrent calls.
type JobObserver func(JobEvent)

// obsEntry wraps an observer so removal can match by identity (func
// values are not comparable).
type obsEntry struct{ fn JobObserver }

// SetObserver replaces the engine's whole observer set with fn (nil
// clears it) — the legacy single-hook semantics. To compose with hooks
// installed by other layers, use AddObserver instead.
func (e *Engine) SetObserver(fn JobObserver) {
	e.obsMu.Lock()
	defer e.obsMu.Unlock()
	if fn == nil {
		e.observers.Store(nil)
		return
	}
	list := []*obsEntry{{fn: fn}}
	e.observers.Store(&list)
}

// AddObserver appends fn to the engine's observer chain — every
// observer sees every event — and returns a function that removes
// exactly this registration. Unlike SetObserver it never evicts hooks
// installed by other layers.
func (e *Engine) AddObserver(fn JobObserver) (remove func()) {
	entry := &obsEntry{fn: fn}
	e.obsMu.Lock()
	var next []*obsEntry
	if cur := e.observers.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, entry)
	e.observers.Store(&next)
	e.obsMu.Unlock()
	return func() {
		e.obsMu.Lock()
		defer e.obsMu.Unlock()
		cur := e.observers.Load()
		if cur == nil {
			return
		}
		var rest []*obsEntry
		for _, o := range *cur {
			if o != entry {
				rest = append(rest, o)
			}
		}
		if rest == nil {
			e.observers.Store(nil)
			return
		}
		e.observers.Store(&rest)
	}
}

// notify publishes ev to every observer in installation order.
func (e *Engine) notify(ev JobEvent) {
	if list := e.observers.Load(); list != nil {
		for _, o := range *list {
			o.fn(ev)
		}
	}
}

// noteStart records (and publishes) the start of one job.
func (e *Engine) noteStart(i int, wait time.Duration) {
	e.started.Add(1)
	mJobsStarted.Inc()
	mJobWait.Observe(wait.Nanoseconds())
	e.notify(JobEvent{Index: i, Wait: wait})
}

// noteDone records (and publishes) the completion of one job.
func (e *Engine) noteDone(i int, err error, wait, elapsed time.Duration) {
	if err != nil {
		e.failed.Add(1)
		mJobsFailed.Inc()
	}
	e.completed.Add(1)
	mJobsCompleted.Inc()
	mJobSeconds.Observe(elapsed.Nanoseconds())
	e.notify(JobEvent{Index: i, Done: true, Err: err, Wait: wait, Elapsed: elapsed})
}

// Process-wide engine instruments: all engines in the process accumulate
// into one family (the serving daemon runs exactly one engine; tests
// sharing the registry only ever assert deltas they caused themselves).
var (
	mJobsStarted   = telemetry.Default().Counter("engine_jobs_started_total", "jobs started by the worker pool")
	mJobsCompleted = telemetry.Default().Counter("engine_jobs_completed_total", "jobs finished, including failed ones")
	mJobsFailed    = telemetry.Default().Counter("engine_jobs_failed_total", "jobs finished with an error")
	mJobWait       = telemetry.Default().Histogram("engine_job_wait_seconds", "delay between job submission and execution start", 1e-9)
	mJobSeconds    = telemetry.Default().Histogram("engine_job_seconds", "job execution duration", 1e-9)
)

var (
	defaultOnce   sync.Once
	defaultEngine *Engine
)

// Default returns the process-wide engine, created on first use with
// GOMAXPROCS workers. Library entry points that take an optional *Engine
// fall back to it when handed nil.
func Default() *Engine {
	defaultOnce.Do(func() { defaultEngine = New(0) })
	return defaultEngine
}

// JobError is the failure of one job, tagged with its submission index.
type JobError struct {
	Index int
	Err   error
}

func (e *JobError) Error() string { return fmt.Sprintf("job %d: %v", e.Index, e.Err) }

// Unwrap exposes the job's underlying error to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// Errors aggregates every failed job of one Map call, ordered by job
// index. Map returns it (as error) when at least one job failed.
type Errors []*JobError

func (e Errors) Error() string {
	if len(e) == 1 {
		return "engine: " + e[0].Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "engine: %d jobs failed: ", len(e))
	for i, je := range e {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(je.Error())
	}
	return b.String()
}

// Unwrap exposes the individual job errors to errors.Is/As.
func (e Errors) Unwrap() []error {
	out := make([]error, len(e))
	for i, je := range e {
		out[i] = je
	}
	return out
}

// Map runs n jobs across the pool and returns their results in submission
// order: out[i] is job i's result. All jobs run to completion (or
// cancellation) before Map returns; failures are aggregated into an Errors
// value carrying each failed job's index, with out[i] left at the zero
// value for failed jobs. When ctx is cancelled, running jobs are expected
// to honour ctx themselves; jobs not yet started fail with ctx.Err().
// A nil engine uses Default(). A panicking job is reported as that job's
// error instead of crashing the pool.
//
// Submission follows the caller-runs discipline (see the package comment):
// a job goes to a pool worker when a slot is free and otherwise runs
// inline on the submitting goroutine, so Map never deadlocks however it
// nests.
func Map[T any](ctx context.Context, e *Engine, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if e == nil {
		e = Default()
	}
	out := make([]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			cancelFrom(errs, i, ctx)
			break
		}
		submit := time.Now()
		select {
		case e.sem <- struct{}{}:
			wg.Add(1)
			// submit travels as a parameter, like i: capturing it in the
			// closure would heap-allocate one escape per pooled job.
			go func(i int, submit time.Time) {
				defer wg.Done()
				defer func() { <-e.sem }()
				out[i], errs[i] = runJob(e, ctx, i, submit, fn)
			}(i, submit)
		default:
			// Pool saturated: the submitter works instead of waiting.
			out[i], errs[i] = runJob(e, ctx, i, submit, fn)
		}
	}
	wg.Wait()
	return out, aggregate(errs)
}

// ForEach is Map for jobs that produce no result.
func ForEach(ctx context.Context, e *Engine, n int, fn func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, e, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}

func runJob[T any](e *Engine, ctx context.Context, i int, submit time.Time, fn func(ctx context.Context, i int) (T, error)) (out T, err error) {
	start := time.Now()
	wait := start.Sub(submit)
	e.noteStart(i, wait)
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: job %d panicked: %v", i, r)
		}
		e.noteDone(i, err, wait, time.Since(start))
	}()
	return fn(ctx, i)
}

// cancelFrom marks jobs [i, n) as failed with the context's error.
func cancelFrom(errs []error, i int, ctx context.Context) {
	err := context.Cause(ctx)
	if err == nil {
		err = ctx.Err()
	}
	for j := i; j < len(errs); j++ {
		errs[j] = err
	}
}

func aggregate(errs []error) error {
	var agg Errors
	for i, err := range errs {
		if err != nil {
			agg = append(agg, &JobError{Index: i, Err: err})
		}
	}
	if len(agg) == 0 {
		return nil
	}
	return agg
}
