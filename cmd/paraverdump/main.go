// Command paraverdump reproduces the Figure 4 artifact: Paraver-style
// timeline views of one application's non-overlapped and overlapped
// executions on a common time scale, plus state profiles and communication
// lines. It can also write the .prv record files of all three flavours.
//
// Example (the paper's Figure 4 setting — NAS-CG on 4 processes):
//
//	paraverdump -app cg -ranks 4 -width 120 -out /tmp/cg
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/paraver"
	"repro/internal/platformflag"
	"repro/internal/tracer"
)

func main() {
	app := flag.String("app", "cg", "application: sweep3d|pop|alya|specfem3d|bt|cg")
	ranks := flag.Int("ranks", 4, "number of ranks (Fig. 4 uses 4)")
	pf := platformflag.Register(flag.CommandLine)
	width := flag.Int("width", 120, "timeline width in characters")
	comms := flag.Int("comms", 12, "communication lines to print (0 = none)")
	out := flag.String("out", "", "directory for .prv files (optional)")
	views := flag.Bool("views", false, "also print comm matrix, wait histogram, and efficiency slices")
	flag.Parse()

	entry, ok := apps.ByName(*app, *ranks)
	if !ok {
		fmt.Fprintf(os.Stderr, "paraverdump: unknown app %q (known: %v)\n", *app, apps.Names)
		os.Exit(2)
	}
	plat, err := pf.Resolve(*app, *ranks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paraverdump: %v\n", err)
		os.Exit(2)
	}
	if pf.DumpRequested() {
		if err := pf.Dump(os.Stdout, plat); err != nil {
			fmt.Fprintf(os.Stderr, "paraverdump: %v\n", err)
			os.Exit(1)
		}
		return
	}
	rep, err := core.AnalyzeOn(context.Background(), nil, entry.App, *ranks, plat, tracer.DefaultConfig())
	if err != nil {
		fmt.Fprintf(os.Stderr, "paraverdump: %v\n", err)
		os.Exit(1)
	}

	fmt.Print(paraver.RenderComparison(rep.Base, rep.Real,
		*app+"/non-overlapped", *app+"/overlapped(real)", *width))
	fmt.Println()
	fmt.Print(paraver.Render(rep.Ideal, *app+"/overlapped(ideal)", *width))

	fmt.Println("\nnon-overlapped profile:")
	fmt.Print(paraver.ProfileOf(rep.Base).Format())
	fmt.Println("overlapped(real) profile:")
	fmt.Print(paraver.ProfileOf(rep.Real).Format())
	if plat.MultiNode() {
		fmt.Println()
		fmt.Print(paraver.TrafficSummaryOf(rep.Base).Format())
	}

	if *comms > 0 {
		fmt.Println("overlapped(real) transfers (send -> match lines):")
		fmt.Print(paraver.CommLines(rep.Real, *comms))
	}

	if *views {
		fmt.Println()
		fmt.Print(paraver.CommMatrixOf(rep.Base).Format())
		fmt.Println("\nnon-overlapped wait distribution:")
		fmt.Print(paraver.WaitHistogram(rep.Base, 8).Format())
		fmt.Println("overlapped(real) wait distribution:")
		fmt.Print(paraver.WaitHistogram(rep.Real, 8).Format())
		fmt.Println("non-overlapped  " + paraver.FormatEfficiency(paraver.EfficiencySlices(rep.Base, *width/2)))
		fmt.Println("overlapped(real)" + paraver.FormatEfficiency(paraver.EfficiencySlices(rep.Real, *width/2)))
	}

	if *out != "" {
		for _, f := range []core.Flavor{core.FlavorBase, core.FlavorReal, core.FlavorIdeal} {
			path := filepath.Join(*out, fmt.Sprintf("%s-%s.prv", *app, f))
			fh, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "paraverdump: %v\n", err)
				os.Exit(1)
			}
			if err := paraver.WritePRV(fh, rep.ResultOf(f), *app+"/"+string(f)); err != nil {
				fmt.Fprintf(os.Stderr, "paraverdump: %v\n", err)
				os.Exit(1)
			}
			fh.Close()
			fmt.Printf("wrote %s\n", path)
		}
	}
}
