// Package telemetry is the process-wide instrumentation core: atomic
// counters, gauges, and log-bucketed histograms with lock-free recording,
// collected in a registry that produces deterministic snapshots, a
// Prometheus text-format exposition page, and a human-readable timing
// summary.
//
// The package is built for hot paths. Recording — Counter.Add,
// Gauge.Set, Histogram.Observe — is a handful of atomic operations and
// never allocates, so instruments can sit inside the zero-alloc replay
// loop (the arena's warm path stays 0 allocs/op with telemetry enabled;
// see sim's alloc pins). Vec lookups read a copy-on-write map without
// locking; resolving a child the first time takes a mutex and copies the
// map, so callers on hot paths should resolve once and keep the handle.
//
// Snapshots are mergeable and deterministic: metrics sort by name,
// samples by label values, and histogram buckets are cumulative with
// trimmed zero runs — two snapshots of the same state are byte-identical
// through both the JSON and Prometheus encoders.
package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ---------------------------------------------------------------------------
// Instruments

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// AddInt adds n when positive; negative deltas are ignored (counters are
// monotone).
func (c *Counter) AddInt(n int64) {
	if n > 0 {
		c.v.Add(uint64(n))
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the fixed bucket count of every histogram: bucket i
// holds observations v with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i
// (bucket 0 holds exactly v == 0). 64-bit values need indexes 0..64.
const histBuckets = 65

// Histogram is a log2-bucketed histogram of non-negative integer
// observations (typically nanoseconds). Recording is lock-free — one
// atomic add into the value's bucket plus count and sum — and snapshots
// from concurrent recorders merge to exact totals.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records v. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
}

// ObserveSince records the elapsed nanoseconds since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Nanoseconds()) }

// HistogramData is a point-in-time copy of a histogram's buckets,
// suitable for merging across histograms or snapshots.
type HistogramData struct {
	Count   uint64
	Sum     uint64
	Buckets [histBuckets]uint64
}

// Load copies the histogram's current state into d. Each field is read
// atomically; with concurrent recorders the fields may straddle an
// in-flight observation, but once recorders quiesce a load is exact.
func (h *Histogram) Load(d *HistogramData) {
	d.Count = h.count.Load()
	d.Sum = h.sum.Load()
	for i := range h.buckets {
		d.Buckets[i] = h.buckets[i].Load()
	}
}

// Merge adds o's counts into d.
func (d *HistogramData) Merge(o *HistogramData) {
	d.Count += o.Count
	d.Sum += o.Sum
	for i := range d.Buckets {
		d.Buckets[i] += o.Buckets[i]
	}
}

// bucketBound returns the inclusive upper bound of bucket i in raw
// units: every observation in buckets 0..i is <= 2^i - 1.
func bucketBound(i int) float64 {
	if i >= 64 {
		return math.Inf(1)
	}
	return float64(uint64(1)<<uint(i)) - 1
}

// ---------------------------------------------------------------------------
// Registry

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one labeled instance of a vec metric.
type child struct {
	values []string
	c      *Counter
	h      *Histogram
}

// metric is one registered family: a single instrument, a callback, or a
// set of labeled children.
type metric struct {
	name   string
	help   string
	kind   metricKind
	scale  float64 // exposition multiplier over raw values (1 when unset)
	labels []string

	c  *Counter
	g  *Gauge
	h  *Histogram
	fn func() float64 // counterFunc / gaugeFunc; guarded by reg.mu on replace

	mu       sync.Mutex // guards children inserts
	children atomic.Pointer[map[string]*child]
}

// Registry holds named metrics and produces deterministic snapshots.
// The zero value is not usable; create with New or use Default.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// New returns an empty registry.
func New() *Registry { return &Registry{metrics: make(map[string]*metric)} }

var std = New()

// Default returns the process-wide registry that every package-level
// instrument registers into and that /metrics exposes.
func Default() *Registry { return std }

// validName reports whether name is a legal Prometheus metric or label
// name: [a-zA-Z_:][a-zA-Z0-9_:]* (labels additionally exclude ':', not
// enforced here — the codebase uses plain snake_case).
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// register returns the metric for name, creating it on first use.
// Registration is idempotent for a same-kind name; a kind clash or an
// invalid name panics — both are programmer errors at package init.
func (r *Registry) register(name, help string, kind metricKind, scale float64, labels []string) *metric {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("telemetry: invalid label name %q on %q", l, name))
		}
	}
	if scale == 0 {
		scale = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind || len(m.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with a different shape", name))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind, scale: scale, labels: labels}
	if len(labels) > 0 {
		empty := make(map[string]*child)
		m.children.Store(&empty)
	}
	r.metrics[name] = m
	return m
}

// Counter registers (or returns) a plain counter.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, help, kindCounter, 1, nil)
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// CounterScale registers a counter whose raw value is multiplied by
// scale at exposition — e.g. a nanosecond accumulator exposed in seconds
// with scale 1e-9.
func (r *Registry) CounterScale(name, help string, scale float64) *Counter {
	m := r.register(name, help, kindCounter, scale, nil)
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// CounterFunc registers a counter read from fn at snapshot time — the
// bridge for cumulative totals a component already tracks itself.
// Re-registering replaces the callback (latest wins).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	m := r.register(name, help, kindCounter, 1, nil)
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// Gauge registers (or returns) a plain gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, help, kindGauge, 1, nil)
	if m.g == nil {
		m.g = &Gauge{}
	}
	return m.g
}

// GaugeFunc registers a gauge read from fn at snapshot time.
// Re-registering replaces the callback (latest wins).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	m := r.register(name, help, kindGauge, 1, nil)
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// Histogram registers (or returns) a histogram. scale converts raw
// observed units to exposed units (1e-9 for nanosecond observations
// exposed as a *_seconds histogram); 0 means 1.
func (r *Registry) Histogram(name, help string, scale float64) *Histogram {
	m := r.register(name, help, kindHistogram, scale, nil)
	if m.h == nil {
		m.h = &Histogram{}
	}
	return m.h
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("telemetry: CounterVec needs at least one label")
	}
	return &CounterVec{r.register(name, help, kindCounter, 1, labels)}
}

// HistogramVec registers a labeled histogram family. scale is as for
// Histogram.
func (r *Registry) HistogramVec(name, help string, scale float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("telemetry: HistogramVec needs at least one label")
	}
	return &HistogramVec{r.register(name, help, kindHistogram, scale, labels)}
}

// childKey joins label values into a map key. Single-label vecs (the
// common case) use the value itself, so a hit allocates nothing.
func childKey(values []string) string {
	if len(values) == 1 {
		return values[0]
	}
	return strings.Join(values, "\x1f")
}

// lookup returns the child for values, creating it on first use via a
// copy-on-write map insert. A hit is a lock-free map read.
func (m *metric) lookup(values []string) *child {
	if len(values) != len(m.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d", m.name, len(m.labels), len(values)))
	}
	key := childKey(values)
	if ch, ok := (*m.children.Load())[key]; ok {
		return ch
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	old := *m.children.Load()
	if ch, ok := old[key]; ok {
		return ch
	}
	ch := &child{values: append([]string(nil), values...)}
	switch m.kind {
	case kindCounter:
		ch.c = &Counter{}
	case kindHistogram:
		ch.h = &Histogram{}
	}
	next := make(map[string]*child, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[key] = ch
	m.children.Store(&next)
	return ch
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ m *metric }

// With returns the counter for the given label values, creating it on
// first use. Hot paths should call With once and keep the handle.
func (v *CounterVec) With(values ...string) *Counter { return v.m.lookup(values).c }

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ m *metric }

// With returns the histogram for the given label values, creating it on
// first use. Hot paths should call With once and keep the handle.
func (v *HistogramVec) With(values ...string) *Histogram { return v.m.lookup(values).h }

// ---------------------------------------------------------------------------
// Snapshots

// Snapshot is a deterministic point-in-time view of a registry.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// MetricSnapshot is one metric family: name, type, and its samples.
type MetricSnapshot struct {
	Name    string   `json:"name"`
	Type    string   `json:"type"`
	Help    string   `json:"help,omitempty"`
	Samples []Sample `json:"samples"`
}

// Sample is one labeled instance. Counters and gauges carry Value;
// histograms carry Histogram.
type Sample struct {
	Labels    map[string]string `json:"labels,omitempty"`
	Value     float64           `json:"value,omitempty"`
	Histogram *HistogramSample  `json:"histogram,omitempty"`
}

// HistogramSample is a histogram in exposed units: cumulative buckets
// with trimmed zero tails, plus the exact count and scaled sum.
type HistogramSample struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is a cumulative bucket: Count observations were <= LE (in
// exposed units). The implicit +Inf bucket equals the sample count.
type Bucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// histSample converts raw histogram data to exposed units, emitting only
// the informative bucket range (first to last non-empty), cumulative.
func histSample(d *HistogramData, scale float64) *HistogramSample {
	hs := &HistogramSample{Count: d.Count, Sum: float64(d.Sum) * scale}
	lo, hi := -1, -1
	for i, c := range d.Buckets {
		if c != 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	if lo < 0 {
		return hs
	}
	var cum uint64
	for i := 0; i < lo; i++ {
		cum += d.Buckets[i] // all zero; keeps the loop honest if trimming changes
	}
	for i := lo; i <= hi; i++ {
		cum += d.Buckets[i]
		hs.Buckets = append(hs.Buckets, Bucket{LE: bucketBound(i) * scale, Count: cum})
	}
	return hs
}

// Quantile returns the approximate q-quantile (0..1) of a histogram
// sample in exposed units: the upper bound of the bucket holding the
// q-th observation. Returns 0 for an empty sample.
func (hs *HistogramSample) Quantile(q float64) float64 {
	if hs.Count == 0 || len(hs.Buckets) == 0 {
		return 0
	}
	rank := uint64(q * float64(hs.Count))
	if rank >= hs.Count {
		rank = hs.Count - 1
	}
	for _, b := range hs.Buckets {
		if b.Count > rank {
			return b.LE
		}
	}
	return hs.Buckets[len(hs.Buckets)-1].LE
}

// Mean returns the exact mean of a histogram sample in exposed units.
func (hs *HistogramSample) Mean() float64 {
	if hs.Count == 0 {
		return 0
	}
	return hs.Sum / float64(hs.Count)
}

// Snapshot captures every registered metric. Metrics sort by name and
// samples by label values, so equal registry states produce identical
// snapshots.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })

	snap := Snapshot{Metrics: make([]MetricSnapshot, 0, len(ms))}
	for _, m := range ms {
		s := MetricSnapshot{Name: m.name, Type: m.kind.String(), Help: m.help}
		switch {
		case len(m.labels) > 0:
			kids := *m.children.Load()
			keys := make([]string, 0, len(kids))
			for k := range kids {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				ch := kids[k]
				labels := make(map[string]string, len(m.labels))
				for i, lk := range m.labels {
					labels[lk] = ch.values[i]
				}
				smp := Sample{Labels: labels}
				if ch.c != nil {
					smp.Value = float64(ch.c.Value()) * m.scale
				} else {
					var d HistogramData
					ch.h.Load(&d)
					smp.Histogram = histSample(&d, m.scale)
				}
				s.Samples = append(s.Samples, smp)
			}
		case m.fn != nil:
			s.Samples = []Sample{{Value: m.fn()}}
		case m.c != nil:
			s.Samples = []Sample{{Value: float64(m.c.Value()) * m.scale}}
		case m.g != nil:
			s.Samples = []Sample{{Value: float64(m.g.Value())}}
		case m.h != nil:
			var d HistogramData
			m.h.Load(&d)
			s.Samples = []Sample{{Histogram: histSample(&d, m.scale)}}
		}
		snap.Metrics = append(snap.Metrics, s)
	}
	return snap
}

// Find returns the snapshot's metric family by name, or nil.
func (s *Snapshot) Find(name string) *MetricSnapshot {
	for i := range s.Metrics {
		if s.Metrics[i].Name == name {
			return &s.Metrics[i]
		}
	}
	return nil
}
