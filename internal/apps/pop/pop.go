// Package pop models the Parallel Ocean Program: a 2D-decomposed ocean
// grid whose time step combines a baroclinic stencil update with halo
// exchanges to the four neighbours and a small global reduction (the
// barotropic solver's dot product).
//
// POP's measured patterns (Table II: production 95.5/96.62/97.75/99.99,
// consumption 3.525/3.53/3.534) show halo buffers packed in a loop shortly
// before the send and unpacked in a tight burst after a small slice of
// independent work — Fig. 5c highlights that independent-work prefix as the
// one consumption property that buys a little overlap room.
package pop

import (
	"repro/internal/mpi"
	"repro/internal/tracer"
)

// Config sizes the kernel.
type Config struct {
	// Px, Py is the process grid (Px*Py ranks).
	Px, Py int
	// Iterations is the number of time steps.
	Iterations int
	// HaloLen is the per-direction halo length in elements.
	HaloLen int
	// StepInstr is the baroclinic compute per step, in instructions.
	StepInstr int64
	// IndepPct is the independent-work prefix before the halos are
	// unpacked (the paper measures ~3.5%).
	IndepPct int
	// PackPct is where the pack loop starts, as percent of the step
	// (the paper's halo elements settle from ~95.5% on).
	PackPct int
}

// DefaultConfig mirrors the measured shape on a square grid.
func DefaultConfig(ranks int) Config {
	px, py := gridFor(ranks)
	return Config{
		Px: px, Py: py,
		Iterations: 5,
		HaloLen:    400,
		StepInstr:  900_000,
		IndepPct:   4,
		PackPct:    95,
	}
}

func gridFor(ranks int) (int, int) {
	best := 1
	for d := 1; d*d <= ranks; d++ {
		if ranks%d == 0 {
			best = d
		}
	}
	return best, ranks / best
}

// Ranks returns the process count the config requires.
func (c Config) Ranks() int { return c.Px * c.Py }

// Halo exchange tags, one per direction.
const (
	tagEast = iota + 1
	tagWest
	tagNorth
	tagSouth
)

// Kernel runs one rank of POP on a torus: halo exchange with the four
// neighbours plus one barotropic reduction per step.
func Kernel(cfg Config) func(p *tracer.Proc) {
	return func(p *tracer.Proc) {
		me := p.Rank()
		px, py := cfg.Px, cfg.Py
		ix, iy := me%px, me/px
		wrap := func(x, y int) int { return ((y+py)%py)*px + (x+px)%px }
		east, west := wrap(ix+1, iy), wrap(ix-1, iy)
		north, south := wrap(ix, iy-1), wrap(ix, iy+1)
		n := cfg.HaloLen

		outE := p.NewArray("halo-out-e", n)
		outW := p.NewArray("halo-out-w", n)
		inE := p.NewArray("halo-in-e", n)
		inW := p.NewArray("halo-in-w", n)
		outN := p.NewArray("halo-out-n", n)
		outS := p.NewArray("halo-out-s", n)
		inN := p.NewArray("halo-in-n", n)
		inS := p.NewArray("halo-in-s", n)

		indep := cfg.StepInstr * int64(cfg.IndepPct) / 100
		prePack := cfg.StepInstr*int64(cfg.PackPct)/100 - indep
		post := cfg.StepInstr - indep - prePack
		dot := make([]float64, 1)

		unpack := func(a *tracer.Array) {
			for i := 0; i < n; i++ {
				_ = a.Load(i)
			}
		}
		pack := func(a *tracer.Array, seed float64) {
			for i := 0; i < n; i++ {
				p.Compute(2) // the pack loop interleaves a little work
				a.Store(i, seed+float64(i))
			}
		}

		for it := 0; it < cfg.Iterations; it++ {
			// Independent work before the halos are needed.
			p.Compute(indep)
			if it > 0 {
				if px > 1 {
					unpack(inE)
					unpack(inW)
				}
				if py > 1 {
					unpack(inN)
					unpack(inS)
				}
			}
			// Baroclinic stencil update.
			p.Compute(prePack)
			// Pack the four outgoing halos near the end of the step.
			pack(outE, float64(it))
			pack(outW, float64(it)+0.5)
			pack(outN, float64(it)+0.25)
			pack(outS, float64(it)+0.75)
			p.Compute(post)
			// Halo exchange, written the way POP's boundary module is:
			// post all receives, fire all sends, then complete — the
			// non-overlapped baseline already runs the four transfers
			// concurrently. Degenerate 1-wide dimensions have no
			// neighbours.
			var reqs []*tracer.RecvReq
			if px > 1 {
				reqs = append(reqs,
					p.Irecv(inW, west, tagEast),
					p.Irecv(inE, east, tagWest))
				p.Isend(east, tagEast, outE)
				p.Isend(west, tagWest, outW)
			}
			if py > 1 {
				reqs = append(reqs,
					p.Irecv(inS, south, tagNorth),
					p.Irecv(inN, north, tagSouth))
				p.Isend(north, tagNorth, outN)
				p.Isend(south, tagSouth, outS)
			}
			for _, r := range reqs {
				r.Wait()
			}
			// Barotropic solver: one small global reduction per step.
			p.Allreduce([]float64{float64(me)}, dot, mpi.OpSum)
		}
	}
}
