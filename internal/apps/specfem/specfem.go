// Package specfem models SPECFEM3D, the spectral-element seismic wave
// propagation code: each time step computes element-internal forces, then
// assembles the shared degrees of freedom across partition boundaries by
// exchanging contribution buffers with the neighbouring partitions.
//
// The measured patterns (Table II: production 95.3/96.48/97.65/98.87,
// consumption 0.032/0.034/0.036) show boundary contributions packed near
// the end of the step and the received contributions assembled *immediately*
// upon reception — there is no independent-work prefix at all, which makes
// SPECFEM3D's receptions impossible to postpone. Still, Fig. 6c finds the
// little overlap it does achieve is worth almost a 4x bandwidth increase,
// because the assembly exchange is strongly bandwidth-bound.
package specfem

import (
	"repro/internal/tracer"
)

// Config sizes the kernel.
type Config struct {
	// Iterations is the number of time steps.
	Iterations int
	// Neighbors is how many partition neighbours each rank exchanges
	// with (ring offsets 1..Neighbors).
	Neighbors int
	// BoundaryLen is the per-neighbour contribution length in elements.
	BoundaryLen int
	// StepInstr is the element-force compute per step, in instructions.
	StepInstr int64
	// PackPct is where the contribution pack starts, as percent of the
	// step.
	PackPct int
}

// DefaultConfig follows the measured shape with two ring neighbours and a
// bandwidth-heavy exchange.
func DefaultConfig() Config {
	return Config{
		Iterations:  5,
		Neighbors:   2,
		BoundaryLen: 400,
		StepInstr:   1_000_000,
		PackPct:     95,
	}
}

const tagAssembly = 1

// Kernel runs one rank of SPECFEM3D with ring-offset neighbours.
func Kernel(cfg Config) func(p *tracer.Proc) {
	return func(p *tracer.Proc) {
		me, size := p.Rank(), p.Size()
		nb := cfg.Neighbors
		if nb >= size {
			nb = size - 1
		}
		n := cfg.BoundaryLen

		outs := make([]*tracer.Array, nb)
		ins := make([]*tracer.Array, nb)
		for d := 0; d < nb; d++ {
			outs[d] = p.NewArray("contrib-out", n)
			ins[d] = p.NewArray("contrib-in", n)
		}

		prePack := cfg.StepInstr * int64(cfg.PackPct) / 100
		post := cfg.StepInstr - prePack

		for it := 0; it < cfg.Iterations; it++ {
			// Assemble received contributions immediately: the first
			// loads happen at the very start of the step (0.03%).
			if it > 0 {
				for d := 0; d < nb; d++ {
					for i := 0; i < n; i++ {
						_ = ins[d].Load(i)
					}
				}
			}
			// Element-internal forces.
			p.Compute(prePack)
			// Pack boundary contributions near the end of the step.
			for d := 0; d < nb; d++ {
				for i := 0; i < n; i++ {
					p.Compute(1)
					outs[d].Store(i, float64(it)+float64(i))
				}
			}
			p.Compute(post)
			// Pairwise assembly exchange with each ring-offset
			// neighbour: post every receive, fire every send, complete.
			var reqs []*tracer.RecvReq
			for d := 0; d < nb; d++ {
				off := d + 1
				up := (me + off) % size
				down := (me - off + size) % size
				if up == me {
					continue
				}
				reqs = append(reqs, p.Irecv(ins[d], down, tagAssembly+d))
				p.Isend(up, tagAssembly+d, outs[d])
			}
			for _, r := range reqs {
				r.Wait()
			}
		}
	}
}
