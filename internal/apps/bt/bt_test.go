package bt

import (
	"testing"

	"repro/internal/pattern"
	"repro/internal/tracer"
)

func traceIt(t *testing.T, ranks int, cfg Config) *tracer.Run {
	t.Helper()
	run, err := tracer.Trace("bt", ranks, tracer.DefaultConfig(), Kernel(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestTracesValidate(t *testing.T) {
	sizes := []int{1, 2, 3, 4, 8}
	if testing.Short() {
		sizes = []int{1, 2, 4} // the 8-rank trace dominates the cost
	}
	for _, ranks := range sizes {
		run := traceIt(t, ranks, DefaultConfig())
		for _, tr := range []interface{ Validate() error }{run.BaseTrace(), run.OverlapReal(), run.OverlapIdeal()} {
			if err := tr.Validate(); err != nil {
				t.Fatalf("ranks=%d: %v", ranks, err)
			}
		}
	}
}

func TestSingleRankComputesOnly(t *testing.T) {
	run := traceIt(t, 1, DefaultConfig())
	for _, e := range run.Logs[0].Events {
		switch e.Kind {
		case tracer.EvSend, tracer.EvISend, tracer.EvRecv, tracer.EvIRecvPost:
			t.Fatalf("single rank communicated: %+v", e)
		}
	}
}

func TestRingVolume(t *testing.T) {
	cfg := DefaultConfig()
	run := traceIt(t, 4, cfg)
	tr := run.BaseTrace()
	st := tr.Stats()
	wantMsgs := 4 * cfg.Iterations * cfg.Phases
	if st.Messages != wantMsgs {
		t.Fatalf("messages=%d, want %d", st.Messages, wantMsgs)
	}
	for _, pv := range tr.PairVolumes() {
		if (pv.Src+1)%4 != pv.Dst {
			t.Fatalf("non-ring traffic: %d->%d", pv.Src, pv.Dst)
		}
	}
}

func TestFourCopyPasses(t *testing.T) {
	// Fig. 5b: every received element is loaded exactly CopyPasses times
	// per phase.
	cfg := DefaultConfig()
	cfg.Iterations = 2
	run := traceIt(t, 2, cfg)
	var inID = -1
	for id, name := range run.Logs[0].ArrayNames {
		if name == "face-in" {
			inID = id
		}
	}
	loads := map[int]int{}
	for _, e := range run.Logs[0].Events {
		if e.Kind == tracer.EvLoad && e.Arr == inID {
			loads[e.Idx]++
		}
	}
	// Phases with consumption: all but the very first.
	phases := cfg.Iterations*cfg.Phases - 1
	for idx, n := range loads {
		if n != phases*cfg.CopyPasses {
			t.Fatalf("element %d loaded %d times, want %d", idx, n, phases*cfg.CopyPasses)
		}
	}
	if len(loads) != cfg.FaceLen {
		t.Fatalf("loaded %d of %d elements", len(loads), cfg.FaceLen)
	}
}

func TestUnfavourablePatterns(t *testing.T) {
	run := traceIt(t, 4, DefaultConfig())
	an := pattern.Analyze(run)
	p := an.AppProduction
	if p.FirstElem < 95 {
		t.Errorf("FirstElem=%.1f%%, pack loop must sit at the very end (paper: 99.1%%)", p.FirstElem)
	}
	c := an.AppConsumption
	if c.Nothing < 8 || c.Nothing > 20 {
		t.Errorf("Nothing=%.1f%%, want ~12-14%% independent work", c.Nothing)
	}
	// The copy passes are tight: quarter/half barely above nothing.
	if c.Half-c.Nothing > 3 {
		t.Errorf("copy bursts not tight: nothing=%.2f half=%.2f", c.Nothing, c.Half)
	}
}
