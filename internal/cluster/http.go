package cluster

import (
	"io"
	"net/http"
)

// The server half of the HTTP transport. One POST route carries every
// RPC: the envelope already multiplexes by op, so the HTTP layer stays
// a dumb pipe — strict decode, handle, encode. The client half lives in
// internal/service/client (ClusterTransport), where it reuses the
// client package's RetryPolicy for inter-node backoff.

// RPCPath is where ServeRPC mounts on the daemon's mux.
const RPCPath = "/v1/cluster/rpc"

// ServeRPC returns the handler for POST /v1/cluster/rpc. Malformed
// envelopes are 400s; valid ones always answer 200 with a Response
// (application-level failures travel in Response.Err, so transports
// never retry work the peer deliberately refused).
func ServeRPC(n *Node) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxValueBytes+MaxKeyBytes+MaxKindBytes+1024))
		if err != nil {
			http.Error(w, "cluster: read rpc: "+err.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		req, err := DecodeRequest(body)
		if err != nil {
			mRPCErrors.With("decode").Inc()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := n.HandleRPC(r.Context(), req)
		out, err := resp.Encode()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(out)
	}
}
