// Command experiments regenerates every table and figure of the paper's
// evaluation section from the Go reproduction:
//
//	Table I   — per-application Dimemas bus counts (configuration)
//	Figure 4  — Paraver-style timelines of NAS-CG, non-overlapped vs
//	            overlapped, plus the measured improvement
//	Figure 5  — production/consumption scatter plots (Sweep3D, BT, POP)
//	Table II  — production/consumption pattern statistics, all six apps
//	Figure 6a — overlap speedup, real and ideal patterns
//	Figure 6b — bandwidth relaxation of the overlapped execution
//	Figure 6c — equivalent bandwidth of the non-overlapped execution
//
// Usage:
//
//	experiments [-ranks N] [-chunks K] [-only table1,fig4,...]
//
// Output goes to stdout; -csvdir writes the Fig. 5 scatter data as CSV.
//
// The platform flags (-preset, -platform, -nodes, -map, ...) swap the
// platform under every per-app analysis (Fig. 4 stays pinned to the
// paper's testbed); "-only mapping" adds the hierarchical placement study:
// block vs round-robin per application plus a CG node-count sweep.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/paraver"
	"repro/internal/pattern"
	"repro/internal/platformflag"
	"repro/internal/plot"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/tracer"
)

func main() {
	ranks := flag.Int("ranks", 16, "ranks per application run (the paper uses 64)")
	chunks := flag.Int("chunks", 4, "chunks per message in the overlapped traces")
	only := flag.String("only", "all", "comma-separated subset: table1,fig4,fig5,table2,fig6a,fig6b,fig6c,mapping,extras")
	pf := platformflag.Register(flag.CommandLine)
	csvdir := flag.String("csvdir", "", "directory for Fig. 5 CSV scatter data (optional)")
	svgdir := flag.String("svgdir", "", "directory for SVG figures (optional)")
	width := flag.Int("width", 100, "timeline/scatter width in characters")
	workers := flag.Int("workers", 0, "experiment-engine worker pool size (0 = GOMAXPROCS)")
	scenarioPath := flag.String("scenario", "", "run a declarative scenario spec (JSON, the POST /v1/scenarios schema) instead of the paper artifacts")
	scenarioJSON := flag.Bool("scenario-json", false, "with -scenario, print the raw result JSON instead of the point table")
	tm := platformflag.RegisterTimings(flag.CommandLine)
	flag.Parse()
	defer tm.MaybeDump(os.Stderr)

	if *scenarioPath != "" {
		if *scenarioJSON {
			_, raw, err := service.RunScenarioFile(context.Background(), *scenarioPath, service.Options{Engine: engine.New(*workers), ReplayShards: pf.ReplayShards()})
			if err != nil {
				fatal("%v", err)
			}
			os.Stdout.Write(raw)
			fmt.Println()
			return
		}
		// The table prints incrementally: each grid point appears the
		// moment it (and its predecessors) finish simulating.
		if err := service.StreamScenarioFile(context.Background(), *scenarioPath, service.Options{Engine: engine.New(*workers), ReplayShards: pf.ReplayShards()}, os.Stdout); err != nil {
			fatal("%v", err)
		}
		return
	}

	want := map[string]bool{}
	for _, k := range strings.Split(*only, ",") {
		want[strings.TrimSpace(k)] = true
	}
	sel := func(k string) bool { return want["all"] || want[k] }

	tCfg := tracer.DefaultConfig()
	tCfg.Chunks = *chunks
	ctx := context.Background()
	eng := engine.New(*workers)

	// platFor resolves the active platform for one application: the
	// calibrated testbed by default, or whatever -preset/-platform plus
	// the override flags select.
	platFor := func(name string) network.Platform {
		p, err := pf.Resolve(name, *ranks)
		if err != nil {
			fatal("%v", err)
		}
		return p
	}
	if pf.DumpRequested() {
		// The default testbed carries per-app Table I bus calibrations;
		// one dump can only capture one of them.
		fmt.Fprintln(os.Stderr, "experiments: dumping the platform as resolved for app \"cg\" (Table I bus calibration varies per app)")
		if err := pf.Dump(os.Stdout, platFor("cg")); err != nil {
			fatal("%v", err)
		}
		return
	}

	if sel("table1") {
		table1()
	}

	// Analyze every app once on its active platform; the apps fan out
	// across the engine pool, each app is traced exactly once through the
	// shared cache, and the reports are reused across artifacts.
	reports := map[string]*core.Report{}
	runs := map[string]*tracer.Run{}
	if sel("fig4") || sel("fig5") || sel("table2") || sel("fig6a") || sel("fig6b") || sel("fig6c") {
		entries := apps.All(*ranks)
		type appAnalysis struct {
			rep *core.Report
			run *tracer.Run
		}
		results, err := engine.Map(ctx, eng, len(entries), func(ctx context.Context, i int) (appAnalysis, error) {
			name := entries[i].App.Name
			run, err := eng.Traces().Trace(name, *ranks, tCfg, entries[i].App.Kernel)
			if err != nil {
				return appAnalysis{}, fmt.Errorf("tracing %s: %w", name, err)
			}
			rep, err := core.AnalyzeRunOn(ctx, eng, run, platFor(name))
			if err != nil {
				return appAnalysis{}, fmt.Errorf("analyzing %s: %w", name, err)
			}
			return appAnalysis{rep: rep, run: run}, nil
		})
		if err != nil {
			fatal("%v", err)
		}
		for i, e := range entries {
			reports[e.App.Name] = results[i].rep
			runs[e.App.Name] = results[i].run
		}
	}

	if sel("fig4") {
		fig4(ctx, eng, tCfg, *width)
	}
	if sel("fig5") {
		fig5(runs, *csvdir, *svgdir, *width)
	}
	if sel("table2") {
		table2(runs)
	}
	if sel("fig6a") {
		fig6a(reports, *svgdir)
	}
	if sel("fig6b") {
		fig6b(reports)
	}
	if sel("fig6c") {
		fig6c(reports)
	}
	if sel("mapping") {
		mappingStudy(ctx, eng, *ranks, tCfg, platFor, *svgdir)
	}
	if sel("extras") {
		extras(ctx, eng, *ranks, tCfg)
	}
}

// mappingStudy is the hierarchical-platform artifact: per application,
// block vs round-robin placement on the active multi-node platform (the
// marenostrum-4x preset when the flags selected a flat one), plus a CG
// node-count sweep. The per-app sweeps run through the engine; traces come
// from the shared cache.
func mappingStudy(ctx context.Context, eng *engine.Engine, ranks int, tCfg tracer.Config, platFor func(string) network.Platform, svgdir string) {
	header("Mapping study — block vs round-robin placement (hierarchical platform)")
	basePlat := func(name string) network.Platform {
		p := platFor(name)
		if !p.MultiNode() {
			hp, err := network.PlatformPreset("marenostrum-4x", ranks)
			if err != nil {
				fatal("mapping: %v", err)
			}
			hp.Buses = p.Buses // keep the app's Table I calibration on the interconnect
			p = hp
		}
		return p
	}
	fmt.Printf("platform: %s\n\n", basePlat("cg").Describe())
	mappings := []network.Mapping{network.BlockMapping(), network.RoundRobinMapping()}
	entries := apps.All(ranks)
	swept, err := engine.Map(ctx, eng, len(entries), func(ctx context.Context, i int) ([]core.MappingPoint, error) {
		name := entries[i].App.Name
		run, err := eng.Traces().Trace(name, ranks, tCfg, entries[i].App.Kernel)
		if err != nil {
			return nil, fmt.Errorf("mapping tracing %s: %w", name, err)
		}
		pts := make([]core.MappingPoint, 0, len(mappings))
		for _, m := range mappings {
			pt, err := core.MappingPointOf(run, basePlat(name).WithMapping(m))
			if err != nil {
				return nil, fmt.Errorf("mapping %s/%s: %w", name, m, err)
			}
			pts = append(pts, pt)
		}
		return pts, nil
	})
	if err != nil {
		fatal("%v", err)
	}
	var groups []plot.BarGroup
	for i, e := range entries {
		fmt.Printf("-- %s --\n%s\n", e.App.Name, core.FormatMappingPoints(swept[i]))
		groups = append(groups, plot.BarGroup{
			Label:  e.App.Name,
			Values: []float64{swept[i][0].BaseFinishSec * 1e3, swept[i][1].BaseFinishSec * 1e3},
		})
	}
	if svgdir != "" {
		path := filepath.Join(svgdir, "mapping_block_vs_rr.svg")
		f, err := os.Create(path)
		if err != nil {
			fatal("mapping svg: %v", err)
		}
		if err := plot.WriteBarsSVG(f, "Placement — non-overlapped finish by mapping", "finish (ms)",
			[]string{"block", "round-robin"}, groups); err != nil {
			fatal("mapping svg: %v", err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", path)
	}

	fmt.Printf("\nCG node-count sweep (%d ranks packed onto N nodes):\n", ranks)
	e, _ := apps.ByName("cg", ranks)
	var counts []int
	for n := 1; n <= ranks; n *= 2 {
		counts = append(counts, n)
	}
	pts, err := core.NodeCountSweepWith(ctx, eng, e.App, ranks, basePlat("cg"), tCfg, counts)
	if err != nil {
		fatal("node-count sweep: %v", err)
	}
	fmt.Print(core.FormatNodeCountPoints(pts))
}

// extras prints the analyses this reproduction adds beyond the paper's
// artifacts: critical-path attribution and per-buffer what-if rankings.
// The per-app jobs run across the engine; output order stays the paper's
// app order because engine.Map preserves submission order.
func extras(ctx context.Context, eng *engine.Engine, ranks int, tCfg tracer.Config) {
	header("Extras — critical paths and per-buffer what-if (beyond the paper)")
	entries := apps.All(ranks)
	type extra struct {
		critPath string
		whatIf   string
	}
	results, err := engine.Map(ctx, eng, len(entries), func(ctx context.Context, i int) (extra, error) {
		e := entries[i]
		name := e.App.Name
		cfg := network.TestbedFor(name, ranks)
		// The shared cache makes this a hit when the main analysis loop
		// already traced the app (the default -only=all run).
		run, err := eng.Traces().Trace(name, ranks, tCfg, e.App.Kernel)
		if err != nil {
			return extra{}, fmt.Errorf("extras tracing %s: %w", name, err)
		}
		rep, err := core.AnalyzeRun(ctx, eng, run, cfg)
		if err != nil {
			return extra{}, fmt.Errorf("extras %s: %w", name, err)
		}
		wi, err := core.WhatIfRun(ctx, eng, run, cfg)
		if err != nil {
			return extra{}, fmt.Errorf("extras %s what-if: %w", name, err)
		}
		return extra{
			critPath: sim.CriticalPathOf(rep.Base).Format(4),
			whatIf:   wi.Format(),
		}, nil
	})
	if err != nil {
		fatal("%v", err)
	}
	for i, e := range entries {
		fmt.Printf("\n-- %s, non-overlapped --\n", e.App.Name)
		fmt.Print(results[i].critPath)
		fmt.Print(results[i].whatIf)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}

func header(title string) {
	fmt.Printf("\n================ %s ================\n", title)
}

func table1() {
	header("Table I — number of network buses used in Dimemas for each application")
	fmt.Printf("%-12s %s\n", "app", "buses")
	for _, name := range apps.Names {
		fmt.Printf("%-12s %d\n", name, network.TableIBuses[name])
	}
}

// fig4 reproduces the Figure 4 view: NAS-CG on 4 processes, first
// iterations, non-overlapped vs overlapped timeline.
func fig4(ctx context.Context, eng *engine.Engine, tCfg tracer.Config, width int) {
	header("Figure 4 — Paraver view of NAS-CG (4 ranks): non-overlapped vs overlapped")
	e, _ := apps.ByName("cg", 4)
	run, err := eng.Traces().Trace("cg", 4, tCfg, e.App.Kernel)
	if err != nil {
		fatal("fig4: %v", err)
	}
	rep, err := core.AnalyzeRun(ctx, eng, run, network.TestbedFor("cg", 4))
	if err != nil {
		fatal("fig4: %v", err)
	}
	fmt.Print(paraver.RenderComparison(rep.Base, rep.Real, "cg/non-overlapped", "cg/overlapped(real)", width))
	fmt.Println("\nnon-overlapped profile:")
	fmt.Print(paraver.ProfileOf(rep.Base).Format())
	fmt.Println("overlapped profile:")
	fmt.Print(paraver.ProfileOf(rep.Real).Format())
	fmt.Println("first transfers (watch the send->match lines lengthen under overlap):")
	fmt.Print(paraver.CommLines(rep.Real, 8))
}

var fig5Specs = []struct {
	app, buffer string
	side        pattern.Side
	rank        int
	caption     string
}{
	{"sweep3d", "outflow-east", pattern.Production, 0, "(a) SWEEP3D production pattern"},
	{"bt", "face-in", pattern.Consumption, 1, "(b) NAS-BT consumption pattern"},
	{"pop", "halo-in-e", pattern.Consumption, 0, "(c) POP consumption pattern"},
}

func fig5(runs map[string]*tracer.Run, csvdir, svgdir string, width int) {
	header("Figure 5 — production and consumption patterns")
	for _, spec := range fig5Specs {
		run := runs[spec.app]
		sc := pattern.ScatterFor(run, spec.buffer, spec.rank, spec.side)
		if sc == nil {
			fmt.Printf("%s: no data (buffer %q rank %d)\n", spec.caption, spec.buffer, spec.rank)
			continue
		}
		fmt.Println(spec.caption)
		fmt.Print(sc.ASCII(width, 16))
		fmt.Println()
		if csvdir != "" {
			path := filepath.Join(csvdir, fmt.Sprintf("fig5_%s_%s.csv", spec.app, sc.Side))
			f, err := os.Create(path)
			if err != nil {
				fatal("fig5 csv: %v", err)
			}
			if err := sc.WriteCSV(f); err != nil {
				fatal("fig5 csv: %v", err)
			}
			f.Close()
			fmt.Printf("wrote %s (%d points)\n", path, len(sc.Points))
		}
		if svgdir != "" {
			pts := make([]plot.ScatterPoint, len(sc.Points))
			for i, p := range sc.Points {
				pts[i] = plot.ScatterPoint{X: p.RelT, Y: float64(p.Elem)}
			}
			path := filepath.Join(svgdir, fmt.Sprintf("fig5_%s_%s.svg", spec.app, sc.Side))
			f, err := os.Create(path)
			if err != nil {
				fatal("fig5 svg: %v", err)
			}
			if err := plot.WriteScatterSVG(f, spec.caption, "relative interval time", "element offset", pts); err != nil {
				fatal("fig5 svg: %v", err)
			}
			f.Close()
			fmt.Printf("wrote %s\n", path)
		}
	}
}

func table2(runs map[string]*tracer.Run) {
	header("Table II — production and consumption average patterns")
	var rows []*pattern.Analysis
	for _, name := range apps.Names {
		rows = append(rows, pattern.Analyze(runs[name]))
	}
	fmt.Print(pattern.FormatTableII(rows))
}

func fig6a(reports map[string]*core.Report, svgdir string) {
	header("Figure 6a — speedup of the overlapped execution (250 MB/s testbed)")
	fmt.Printf("%-12s %14s %14s\n", "app", "real patterns", "ideal patterns")
	var groups []plot.BarGroup
	for _, name := range apps.Names {
		rep := reports[name]
		fmt.Printf("%-12s %14.3f %14.3f\n", name, rep.SpeedupReal, rep.SpeedupIdeal)
		groups = append(groups, plot.BarGroup{Label: name, Values: []float64{rep.SpeedupReal, rep.SpeedupIdeal}})
	}
	if svgdir != "" {
		path := filepath.Join(svgdir, "fig6a_speedup.svg")
		f, err := os.Create(path)
		if err != nil {
			fatal("fig6a svg: %v", err)
		}
		if err := plot.WriteBarsSVG(f, "Fig. 6a — overlap speedup", "speedup (x)",
			[]string{"real patterns", "ideal patterns"}, groups); err != nil {
			fatal("fig6a svg: %v", err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", path)
	}
}

func fig6b(reports map[string]*core.Report) {
	header("Figure 6b — bandwidth needed by the overlapped execution to match the non-overlapped at 250 MB/s")
	fmt.Printf("%-12s %s\n", "app", "real | ideal")
	for _, name := range apps.Names {
		rep := reports[name]
		re, err := rep.RelaxedBandwidth(core.FlavorReal, metrics.DefaultSearch())
		if err != nil {
			fatal("fig6b %s: %v", name, err)
		}
		id, err := rep.RelaxedBandwidth(core.FlavorIdeal, metrics.DefaultSearch())
		if err != nil {
			fatal("fig6b %s: %v", name, err)
		}
		fmt.Printf("%-12s %18s | %18s\n", name, metrics.FormatMBps(re), metrics.FormatMBps(id))
	}
}

func fig6c(reports map[string]*core.Report) {
	header("Figure 6c — bandwidth the non-overlapped execution needs to match the overlapped at 250 MB/s")
	fmt.Printf("%-12s %s\n", "app", "real | ideal (x = factor over 250 MB/s)")
	for _, name := range apps.Names {
		rep := reports[name]
		re, err := rep.EquivalentBandwidth(core.FlavorReal, metrics.DefaultSearch())
		if err != nil {
			fatal("fig6c %s: %v", name, err)
		}
		id, err := rep.EquivalentBandwidth(core.FlavorIdeal, metrics.DefaultSearch())
		if err != nil {
			fatal("fig6c %s: %v", name, err)
		}
		fmt.Printf("%-12s %18s (%.2fx) | %18s (%sx)\n", name,
			metrics.FormatMBps(re), metrics.BandwidthFactor(re, 250),
			metrics.FormatMBps(id), factorStr(metrics.BandwidthFactor(id, 250)))
	}
}

func factorStr(f float64) string {
	if math.IsInf(f, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.2f", f)
}
