package core

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/apps/cg"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracer"
)

func scenarioApp() App {
	return App{Name: "cg", Kernel: cg.Kernel(cg.DefaultConfig())}
}

func scenarioPlatform(t *testing.T, ranks int) network.Platform {
	t.Helper()
	plat, err := network.PlatformPreset("marenostrum-4x", ranks)
	if err != nil {
		t.Fatal(err)
	}
	return plat
}

// TestScenarioGridDeterminism is the planner's core contract: the same
// spec expands to the same point order and the same digest, and two
// independent runs — on engines with different worker counts — return
// byte-identical marshalled results.
func TestScenarioGridDeterminism(t *testing.T) {
	const ranks = 8
	spec := Scenario{
		App: scenarioApp(), Ranks: ranks, Platform: scenarioPlatform(t, ranks),
		Flavors: []Flavor{FlavorBase, FlavorReal},
		Axes: []Axis{
			BandwidthAxis(125, 500),
			MappingAxis("block", "rr"),
		},
		Output: OutputTraffic,
	}
	ctx := context.Background()
	first, err := RunScenario(ctx, engine.New(1), spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunScenario(ctx, engine.New(8), spec)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := json.Marshal(first)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("results differ across engines:\n%s\n%s", b1, b2)
	}
	d1, err := spec.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != first.SpecDigest {
		t.Fatalf("spec digest %s, result carries %s", d1, first.SpecDigest)
	}
	// Row-major order, last axis fastest: (125,block) (125,rr) (500,block) (500,rr).
	want := [][2]string{{"125", "block"}, {"125", "rr"}, {"500", "block"}, {"500", "rr"}}
	if len(first.Points) != len(want) {
		t.Fatalf("%d points, want %d", len(first.Points), len(want))
	}
	for i, pt := range first.Points {
		if pt.Coords[0].Value != want[i][0] || pt.Coords[1].Value != want[i][1] {
			t.Fatalf("point %d at (%s,%s), want (%s,%s)",
				i, pt.Coords[0].Value, pt.Coords[1].Value, want[i][0], want[i][1])
		}
		if len(pt.Flavors) != 2 || pt.Flavors[0].Flavor != FlavorBase || pt.Flavors[1].Flavor != FlavorReal {
			t.Fatalf("point %d flavors %+v", i, pt.Flavors)
		}
	}
}

// TestScenarioDigestNormalizes checks default spellings collapse: an
// explicit default output/flavor set digests equal to the implicit one,
// and a different axis point list digests differently.
func TestScenarioDigestNormalizes(t *testing.T) {
	const ranks = 8
	base := Scenario{
		App: scenarioApp(), Ranks: ranks, Platform: scenarioPlatform(t, ranks),
		Axes: []Axis{BandwidthAxis(125, 500)},
	}
	explicit := base
	explicit.Output = OutputFinish
	explicit.Flavors = []Flavor{FlavorBase, FlavorReal}
	explicit.Tracer = tracer.DefaultConfig()
	d1, err := base.Digest()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := explicit.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("default and explicit spellings digest differently: %s vs %s", d1, d2)
	}
	other := base
	other.Axes = []Axis{BandwidthAxis(125, 501)}
	d3, err := other.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Fatal("different grids share a digest")
	}
}

// TestMappingSweepIsScenarioTranslation proves the legacy core function
// returns byte-identical JSON to an independent serial replay of the
// same study — the golden-equivalence contract of the wrapper rewrite.
func TestMappingSweepIsScenarioTranslation(t *testing.T) {
	const ranks = 8
	plat := scenarioPlatform(t, ranks)
	app := scenarioApp()
	mappings := []network.Mapping{network.BlockMapping(), network.RoundRobinMapping()}

	got, err := MappingSweepWith(context.Background(), engine.New(4), app, ranks, plat, tracer.DefaultConfig(), mappings)
	if err != nil {
		t.Fatal(err)
	}

	// Serial reference: trace privately, replay each mapping with the
	// plain simulator — no scenario machinery, no pooled arenas.
	run, err := tracer.Trace(app.Name, ranks, tracer.DefaultConfig(), app.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]MappingPoint, 0, len(mappings))
	for _, m := range mappings {
		p := plat.WithMapping(m)
		baseRes, err := sim.RunOn(p, run.BaseTrace())
		if err != nil {
			t.Fatal(err)
		}
		realRes, err := sim.RunOn(p, run.OverlapReal())
		if err != nil {
			t.Fatal(err)
		}
		ib, eb, _, _ := baseRes.TrafficSplit()
		want = append(want, MappingPoint{
			Mapping:       m,
			BaseFinishSec: baseRes.FinishSec,
			RealFinishSec: realRes.FinishSec,
			SpeedupReal:   metrics.Speedup(baseRes.FinishSec, realRes.FinishSec),
			IntraBytes:    ib,
			InterBytes:    eb,
		})
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("scenario-backed sweep differs from serial reference:\n%s\n%s", gotJSON, wantJSON)
	}
}

// TestWhatIfIsScenarioTranslation proves the wrapped WhatIf entry point
// matches the primitive it translates to.
func TestWhatIfIsScenarioTranslation(t *testing.T) {
	const ranks = 4
	app := scenarioApp()
	cfg := network.TestbedFor("cg", ranks)

	got, err := WhatIfWith(context.Background(), engine.New(2), app, ranks, cfg, tracer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	run, err := tracer.Trace(app.Name, ranks, tracer.DefaultConfig(), app.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	want, err := WhatIfRunOn(context.Background(), engine.New(2), run, cfg.Platform())
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("what-if wrapper differs from primitive:\n%s\n%s", gotJSON, wantJSON)
	}
}

// TestScenarioRanksAxis sweeps the world size through a factory and
// checks the platform is resized per point.
func TestScenarioRanksAxis(t *testing.T) {
	factory := func(ranks int) (App, error) {
		return App{Name: "cg", Kernel: cg.Kernel(cg.DefaultConfig())}, nil
	}
	res, err := RunScenario(context.Background(), engine.New(4), Scenario{
		Factory: factory, Ranks: 4, Platform: network.TestbedFor("cg", 4).Platform(),
		Flavors: []Flavor{FlavorBase},
		Axes:    []Axis{RanksAxis(2, 4, 8)},
		Output:  OutputFinish,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("%d points, want 3", len(res.Points))
	}
	digests := map[string]bool{}
	for i, pt := range res.Points {
		if pt.Flavors[0].FinishSec <= 0 {
			t.Fatalf("point %d finish %g", i, pt.Flavors[0].FinishSec)
		}
		digests[pt.Flavors[0].TraceDigest] = true
	}
	if len(digests) != 3 {
		t.Fatalf("ranks axis produced %d distinct traces, want 3", len(digests))
	}
}

// TestScenarioNodesAxisSurvivesRanksAxis: the ranks-axis platform
// resize must not clobber an explicitly swept node count, whatever the
// spec order of the axes — each coordinate owns its own platform field.
func TestScenarioNodesAxisSurvivesRanksAxis(t *testing.T) {
	// Round-robin placement: on one node everything is intra; on four
	// nodes every CG partner pair (0,1), (2,3), ... tears across nodes.
	plat := network.TestbedFor("cg", 4).Platform().WithMapping(network.RoundRobinMapping())
	res, err := RunScenario(context.Background(), engine.New(2), Scenario{
		App: scenarioApp(), Ranks: 4, Platform: plat,
		Flavors: []Flavor{FlavorBase},
		Axes: []Axis{
			NodeCountAxis(1, 4),
			RanksAxis(8),
		},
		Output: OutputTraffic,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points, want 2", len(res.Points))
	}
	one, four := res.Points[0].Flavors[0].Traffic, res.Points[1].Flavors[0].Traffic
	if one.InterBytes != 0 || one.IntraBytes == 0 {
		t.Fatalf("nodes=1 point not all-intra: %+v (node count clobbered by the ranks resize?)", one)
	}
	if four.InterBytes == 0 {
		t.Fatalf("nodes=4 point moved no inter-node bytes: %+v", four)
	}
}

// TestScenarioDedupesIdenticalReplays: a chunks axis varies only the
// overlapped flavors, so the chunk-independent base must replay once for
// the whole sweep — observable as exactly one engine job per distinct
// (program, platform) pair.
func TestScenarioDedupesIdenticalReplays(t *testing.T) {
	const ranks = 4
	eng := engine.New(2)
	before := eng.Stats().Started
	res, err := RunScenario(context.Background(), eng, Scenario{
		App: scenarioApp(), Ranks: ranks, Platform: network.TestbedFor("cg", ranks).Platform(),
		Flavors: []Flavor{FlavorBase, FlavorReal},
		Axes:    []Axis{ChunksAxis(2, 4, 8)},
		Output:  OutputFinish,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1 base replay + 3 per-chunk overlap replays = 4 engine jobs.
	if jobs := eng.Stats().Started - before; jobs != 4 {
		t.Fatalf("%d engine jobs for a 3-point two-flavor chunk sweep, want 4 (base deduped)", jobs)
	}
	base := res.Points[0].Flavors[0]
	for i, pt := range res.Points {
		if pt.Flavors[0] != base {
			t.Fatalf("point %d base measure %+v differs from point 0's %+v", i, pt.Flavors[0], base)
		}
	}
}

// TestScenarioValidation rejects malformed specs before any tracing.
func TestScenarioValidation(t *testing.T) {
	const ranks = 4
	plat := network.TestbedFor("cg", ranks).Platform()
	tr := testScenarioTrace()
	cases := []struct {
		name string
		spec Scenario
		want string
	}{
		{"no workload", Scenario{Ranks: ranks, Platform: plat}, "no workload"},
		{"unknown axis", Scenario{App: scenarioApp(), Ranks: ranks, Platform: plat,
			Axes: []Axis{{Kind: "voltage", Values: []float64{1}}}}, "unknown axis"},
		{"duplicate axis", Scenario{App: scenarioApp(), Ranks: ranks, Platform: plat,
			Axes: []Axis{BandwidthAxis(1), BandwidthAxis(2)}}, "duplicate"},
		{"values on count axis", Scenario{App: scenarioApp(), Ranks: ranks, Platform: plat,
			Axes: []Axis{{Kind: AxisChunks, Values: []float64{4}}}}, "takes counts"},
		{"trace mode report", Scenario{Trace: tr, Platform: plat, Output: OutputReport}, "stored trace"},
		{"trace mode chunk axis", Scenario{Trace: tr, Platform: plat,
			Axes: []Axis{ChunksAxis(2)}}, "stored trace"},
		{"wrong flavor for trace", Scenario{Trace: tr, Platform: plat,
			Flavors: []Flavor{FlavorIdeal}}, "cannot measure"},
		{"unknown output", Scenario{App: scenarioApp(), Ranks: ranks, Platform: plat,
			Output: "everything"}, "unknown scenario output"},
		{"bad mapping", Scenario{App: scenarioApp(), Ranks: ranks, Platform: plat,
			Axes: []Axis{MappingAxis("zigzag?")}}, "mapping"},
	}
	for _, tc := range cases {
		_, err := RunScenario(context.Background(), nil, tc.spec)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// testScenarioTrace builds a tiny valid base trace for trace-mode specs.
func testScenarioTrace() *trace.Trace {
	tr := trace.New("tiny", "base", 2)
	tr.Append(0, trace.Record{Kind: trace.KindCompute, Instr: 1000})
	tr.Append(0, trace.Record{Kind: trace.KindSend, Peer: 1, Tag: 1, Bytes: 800, MsgID: 1})
	tr.Append(1, trace.Record{Kind: trace.KindRecv, Peer: 0, Tag: 1, Bytes: 800, MsgID: 1})
	tr.Append(1, trace.Record{Kind: trace.KindCompute, Instr: 500})
	return tr
}
