package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/sim"
)

// The streaming scenario planner. RunScenarioStream is the one
// execution path behind every study: grid points leave the planner one
// at a time, in deterministic row-major order, as soon as they (and all
// their predecessors) finish — the engine's out-of-order completions
// pass through a bounded reorder window (engine.MapStream), so a slow
// consumer exerts backpressure on simulation instead of the planner
// materializing the whole grid. RunScenario collects the stream into
// the batch table, which makes batch and stream byte-identical by
// construction.

// streamEmitter delivers grid points to the caller's yield in row-major
// order, interleaving cached points (known up front) with computed ones
// as they become ready.
type streamEmitter struct {
	ctx     context.Context
	sc      *Scenario
	grid    []gridPoint
	digests []string
	cached  []*ScenarioPoint
	// build assembles the computed point at grid index p, reporting
	// false while its measurements are still in flight.
	build func(p int) (ScenarioPoint, bool)
	yield func(ScenarioPoint) error
	next  int
}

// advance emits every point that is ready, stopping at the first one
// still in flight. Cancellation is checked per point so a mid-grid
// cancel stops the stream promptly even while draining cached points.
func (e *streamEmitter) advance() error {
	for e.next < len(e.grid) {
		if err := context.Cause(e.ctx); err != nil {
			return err
		}
		p := e.next
		if c := e.cached[p]; c != nil {
			t0 := time.Now()
			if err := e.yield(*c); err != nil {
				return err
			}
			mStageEmit.ObserveSince(t0)
			mPtsCached.Inc()
			e.next++
			continue
		}
		t0 := time.Now()
		pt, ok := e.build(p)
		if !ok {
			return nil
		}
		mStageCopyout.ObserveSince(t0)
		if e.sc.PointCache != nil {
			e.sc.PointCache.PutPoint(e.digests[p], pt)
		}
		t0 = time.Now()
		if err := e.yield(pt); err != nil {
			return err
		}
		mStageEmit.ObserveSince(t0)
		mPtsComputed.Inc()
		e.next++
	}
	return nil
}

// RunScenarioStream canonicalizes the spec, expands the axes into a run
// grid, and executes the points on pooled replayers through the engine
// (nil selects the default engine), compiling each replayed trace
// flavor exactly once. Completed points are delivered to yield in
// row-major spec order (last axis group fastest) — identical point
// values and order to RunScenario's table — with at most a bounded
// window of results held between the engine's completion order and the
// emission order. An error from yield aborts the run, as does ctx
// cancellation; unstarted grid points are then never simulated. The
// returned header is what a complete result carries alongside the
// points.
//
// When spec.PointCache is set, each grid point is first looked up by
// its per-point digest and cache hits are emitted without scheduling
// any simulation — a spec overlapping a previously computed grid
// simulates only the gap. Freshly computed points are stored back.
func RunScenarioStream(ctx context.Context, eng *engine.Engine, spec Scenario, yield func(ScenarioPoint) error) (*ScenarioHeader, error) {
	sc, err := spec.normalized()
	if err != nil {
		return nil, err
	}
	hdr, err := sc.header()
	if err != nil {
		return nil, err
	}
	base, err := sc.canonicalBase()
	if err != nil {
		return nil, err
	}
	grid, err := sc.grid()
	if err != nil {
		return nil, err
	}
	digests := make([]string, len(grid))
	cached := make([]*ScenarioPoint, len(grid))
	for p := range grid {
		if digests[p], err = pointDigest(base, grid[p].coords); err != nil {
			return nil, err
		}
		if sc.PointCache != nil {
			if cp, ok := sc.PointCache.GetPoint(digests[p]); ok {
				cached[p] = &cp
			}
		}
	}
	x := newScenarioExec(&sc)
	em := &streamEmitter{ctx: ctx, sc: &sc, grid: grid, digests: digests, cached: cached, yield: yield}

	switch sc.Output {
	case OutputFinish, OutputTraffic:
		// Distinct (program, platform) pairs replay once however many
		// grid points share them: a chunks axis varies only the
		// overlapped flavors, so the chunk-independent base replays one
		// time, not once per chunk count. Deduped points reuse the same
		// measurement — deterministic replays make that byte-identical
		// to replaying each point independently.
		nf := len(sc.Flavors)
		type measureJob struct {
			pt gridPoint
			f  Flavor
		}
		jobOf := make([]int, len(grid)*nf)
		maxJob := make([]int, len(grid))
		var jobs []measureJob
		var uses []int
		seen := map[string]int{}
		for p, pt := range grid {
			maxJob[p] = -1
			if cached[p] != nil {
				continue
			}
			platJSON, err := pt.plat.CanonicalJSON()
			if err != nil {
				return nil, err
			}
			for k, f := range sc.Flavors {
				ranks, chunks := pt.ranks, pt.chunks
				if sc.Trace != nil {
					ranks, chunks = 0, 0
				} else if f == FlavorBase {
					chunks = sc.Tracer.Chunks // mirrors progFor's normalization
				}
				key := fmt.Sprintf("%d|%d|%s|%s", ranks, chunks, f, platJSON)
				j, ok := seen[key]
				if !ok {
					j = len(jobs)
					seen[key] = j
					jobs = append(jobs, measureJob{pt: pt, f: f})
					uses = append(uses, 0)
				}
				jobOf[p*nf+k] = j
				uses[j]++
				if j > maxJob[p] {
					maxJob[p] = j
				}
			}
		}
		// A measurement is retained only while some unemitted point still
		// references it; jobsDone tracks the contiguous prefix of
		// completed jobs, which (job indices being assigned in first-use
		// order) is exactly what makes a point's measurements complete.
		measures := map[int]FlavorMeasure{}
		jobsDone := 0
		em.build = func(p int) (ScenarioPoint, bool) {
			if maxJob[p] >= jobsDone {
				return ScenarioPoint{}, false
			}
			ms := make([]FlavorMeasure, nf)
			for k := 0; k < nf; k++ {
				j := jobOf[p*nf+k]
				ms[k] = measures[j]
				if uses[j]--; uses[j] == 0 {
					delete(measures, j)
				}
			}
			return ScenarioPoint{Coords: grid[p].coords, Digest: digests[p], Flavors: ms}, true
		}
		if err := em.advance(); err != nil { // cached prefix before any job
			return nil, err
		}
		shards := sc.ReplayShards
		if shards == 0 {
			shards = pointShards(eng, len(jobs))
		}
		err = engine.MapStream(ctx, eng, len(jobs), 0, func(ctx context.Context, j int) (FlavorMeasure, error) {
			pt, f := jobs[j].pt, jobs[j].f
			t0 := time.Now()
			prog, digest, err := x.progFor(pt.ranks, pt.chunks, f)
			if err != nil {
				return FlavorMeasure{}, err
			}
			mStageCompile.ObserveSince(t0)
			t0 = time.Now()
			sum, err := sim.ReplayShardsSummary(pt.plat, prog, shards)
			if err != nil {
				var dl *sim.DeadlockError
				if errors.As(err, &dl) && dl.FaultInduced() {
					// Injected hard faults severed ranks this flavor
					// needed. In a what-breaks-first grid that is a result,
					// not a failure: report the point as faulted instead of
					// aborting the study. Genuine trace deadlocks (nothing
					// dropped) stay hard errors below.
					mStageReplay.ObserveSince(t0)
					mPtsFaulted.Inc()
					return FlavorMeasure{
						Flavor:      f,
						TraceDigest: digest,
						Fault:       fmt.Sprintf("deadlock: %d ranks blocked, %d transfers lost to downed NICs/links", len(dl.Blocked), dl.Dropped),
					}, nil
				}
				return FlavorMeasure{}, fmt.Errorf("core: scenario point %v %s: %w", pt.coords, f, err)
			}
			mStageReplay.ObserveSince(t0)
			m := FlavorMeasure{Flavor: f, TraceDigest: digest, FinishSec: sum.FinishSec}
			if sc.Output == OutputTraffic {
				m.Traffic = &WireTraffic{
					IntraBytes: sum.IntraBytes,
					InterBytes: sum.InterBytes,
					IntraMsgs:  sum.IntraMsgs,
					InterMsgs:  sum.InterMsgs,
				}
			}
			return m, nil
		}, func(j int, m FlavorMeasure) error {
			measures[j] = m
			jobsDone = j + 1
			return em.advance()
		})
		if err != nil {
			return nil, err
		}
	case OutputWhatIf:
		err = streamPerPoint(ctx, eng, em, func(ctx context.Context, pt gridPoint) (ScenarioPoint, error) {
			t0 := time.Now()
			run, err := x.runAt(pt)
			if err != nil {
				return ScenarioPoint{}, err
			}
			mStageCompile.ObserveSince(t0)
			t0 = time.Now()
			wi, err := WhatIfRunOn(ctx, eng, run, pt.plat)
			if err != nil {
				return ScenarioPoint{}, err
			}
			mStageReplay.ObserveSince(t0)
			pd, err := pt.plat.Digest()
			if err != nil {
				return ScenarioPoint{}, err
			}
			return ScenarioPoint{WhatIf: wi.Wire(pt.ranks, pd)}, nil
		})
		if err != nil {
			return nil, err
		}
	case OutputReport:
		err = streamPerPoint(ctx, eng, em, func(ctx context.Context, pt gridPoint) (ScenarioPoint, error) {
			t0 := time.Now()
			run, err := x.runAt(pt)
			if err != nil {
				return ScenarioPoint{}, err
			}
			mStageCompile.ObserveSince(t0)
			t0 = time.Now()
			rep, err := AnalyzeRunOn(ctx, eng, run, pt.plat)
			if err != nil {
				return ScenarioPoint{}, err
			}
			mStageReplay.ObserveSince(t0)
			wire, err := rep.Wire()
			if err != nil {
				return ScenarioPoint{}, err
			}
			return ScenarioPoint{Report: wire}, nil
		})
		if err != nil {
			return nil, err
		}
	}
	// Trailing cached points (and the whole grid when nothing computed).
	if err := em.advance(); err != nil {
		return nil, err
	}
	return hdr, nil
}

// pointShards picks the intra-point shard request for a grid of njobs
// replay jobs. A grid with at least as many jobs as the engine has
// workers already saturates the cores through inter-point parallelism,
// so every point replays serially; a small grid (one point, a handful of
// flavors) leaves workers idle, and those move inside each replay as
// conservative-PDES shards instead (sim.RunProgramShards). Sharded and
// serial replays are byte-identical, so the choice is pure scheduling —
// it can never change a result. Platforms that cannot shard fall back to
// serial inside sim.EffectiveShards.
func pointShards(eng *engine.Engine, njobs int) int {
	if eng == nil {
		eng = engine.Default()
	}
	w := eng.Workers()
	if njobs <= 0 || njobs >= w {
		return 1
	}
	// Split the worker pool evenly across the in-flight jobs.
	return w / njobs
}

// streamPerPoint runs one engine job per uncached grid point (what-if
// and report outputs have no cross-point sharing to dedupe) and streams
// the assembled points through the emitter.
func streamPerPoint(ctx context.Context, eng *engine.Engine, em *streamEmitter, fn func(ctx context.Context, pt gridPoint) (ScenarioPoint, error)) error {
	var uncached []int
	for p := range em.grid {
		if em.cached[p] == nil {
			uncached = append(uncached, p)
		}
	}
	done := map[int]ScenarioPoint{} // grid index → computed payload
	em.build = func(p int) (ScenarioPoint, bool) {
		pt, ok := done[p]
		if !ok {
			return ScenarioPoint{}, false
		}
		delete(done, p)
		pt.Coords = em.grid[p].coords
		pt.Digest = em.digests[p]
		return pt, true
	}
	if err := em.advance(); err != nil { // cached prefix before any job
		return err
	}
	return engine.MapStream(ctx, eng, len(uncached), 0, func(ctx context.Context, i int) (ScenarioPoint, error) {
		return fn(ctx, em.grid[uncached[i]])
	}, func(i int, pt ScenarioPoint) error {
		done[uncached[i]] = pt
		return em.advance()
	})
}
