package service

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/network"
	"repro/internal/trace"
)

func testTrace() *trace.Trace {
	t := trace.New("store-test", "base", 2)
	t.Append(0, trace.Record{Kind: trace.KindCompute, Instr: 1000})
	t.Append(0, trace.Record{Kind: trace.KindSend, Peer: 1, Tag: 1, Bytes: 800, MsgID: 1})
	t.Append(1, trace.Record{Kind: trace.KindRecv, Peer: 0, Tag: 1, Bytes: 800, MsgID: 1})
	t.Append(1, trace.Record{Kind: trace.KindCompute, Instr: 500})
	return t
}

func TestStoreMemoryTier(t *testing.T) {
	s, err := NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	tr := testTrace()
	d, err := s.PutTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !trace.ValidDigest(d) {
		t.Fatalf("malformed digest %q", d)
	}
	got, err := s.GetTrace(d)
	if err != nil {
		t.Fatal(err)
	}
	if got != tr {
		t.Fatal("memory tier returned a different object")
	}
	// Idempotent second put.
	d2, err := s.PutTrace(testTrace())
	if err != nil {
		t.Fatal(err)
	}
	if d2 != d {
		t.Fatalf("same content, different digests: %s vs %s", d, d2)
	}
	if traces, _ := s.Counts(); traces != 1 {
		t.Fatalf("store holds %d traces, want 1", traces)
	}
	if _, err := s.GetTrace("sha256:" + strings.Repeat("0", 64)); err == nil {
		t.Fatal("unknown digest resolved")
	}
	if _, err := s.GetTrace("not-a-digest"); err == nil {
		t.Fatal("malformed digest resolved")
	}
}

func TestStoreDiskTier(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	td, err := s1.PutTrace(testTrace())
	if err != nil {
		t.Fatal(err)
	}
	plat := network.Testbed(4).Platform()
	pd, err := s1.PutPlatform(plat)
	if err != nil {
		t.Fatal(err)
	}

	// A second store over the same directory — a daemon restart — serves
	// both artifacts from disk.
	s2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s2.GetTrace(td)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := trace.Digest(tr); got != td {
		t.Fatalf("disk trace digest %s, want %s", got, td)
	}
	p, err := s2.GetPlatform(pd)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Digest(); got != pd {
		t.Fatalf("disk platform digest %s, want %s", got, pd)
	}
}

func TestStoreDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	td, err := s1.PutTrace(testTrace())
	if err != nil {
		t.Fatal(err)
	}
	// Swap the file's content for a different (valid) trace: the content
	// no longer matches its address.
	other := testTrace()
	other.Name = "tampered"
	path := filepath.Join(dir, strings.ReplaceAll(td, ":", "-")+".dimbin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBinary(f, other); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.GetTrace(td); err == nil || !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("corruption not detected: %v", err)
	}
	// The corrupt file was quarantined: moved aside as *.corrupt, so the
	// digest now reads as plainly unknown and a later put of the true
	// content can re-store it.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt file still at its content address (stat: %v)", err)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if _, err := s2.GetTrace(td); err == nil || strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("post-quarantine read should be a plain not-found: %v", err)
	}
	if d, err := s2.PutTrace(testTrace()); err != nil || d != td {
		t.Fatalf("re-store after quarantine: %s, %v (want %s)", d, err, td)
	}
	if _, err := s2.GetTrace(td); err != nil {
		t.Fatalf("re-stored trace unreadable: %v", err)
	}
}

// TestStoreQuarantinesBitFlip flips one bit of each disk artifact — the
// simplest disk-corruption model — and verifies the store never serves
// the damaged bytes: the read fails, the file is quarantined, and the
// corruption counter moves.
func TestStoreQuarantinesBitFlip(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	td, err := s1.PutTrace(testTrace())
	if err != nil {
		t.Fatal(err)
	}
	pd, err := s1.PutPlatform(network.Testbed(4).Platform())
	if err != nil {
		t.Fatal(err)
	}
	flip := func(path string, off int) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2+off] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	tracePath := filepath.Join(dir, strings.ReplaceAll(td, ":", "-")+".dimbin")
	platPath := filepath.Join(dir, strings.ReplaceAll(pd, ":", "-")+".platform.json")
	flip(tracePath, 0)
	flip(platPath, 0)

	before := mStoreCorrupt.Value()
	s2, err := NewStore(dir) // fresh store: nothing in the memory tier
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.GetTrace(td); err == nil {
		t.Fatal("bit-flipped trace served")
	}
	if _, err := s2.GetPlatform(pd); err == nil {
		t.Fatal("bit-flipped platform served")
	}
	for _, p := range []string{tracePath, platPath} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("%s not quarantined (stat: %v)", p, err)
		}
		if _, err := os.Stat(p + ".corrupt"); err != nil {
			t.Fatalf("quarantine file for %s missing: %v", p, err)
		}
	}
	if got := mStoreCorrupt.Value() - before; got != 2 {
		t.Fatalf("store_corrupt_artifacts_total moved by %v, want 2", got)
	}
}

// traceWithInstr builds distinct tiny traces (distinct digests).
func traceWithInstr(instr int64) *trace.Trace {
	t := trace.New("evict-test", "base", 2)
	t.Append(0, trace.Record{Kind: trace.KindCompute, Instr: instr})
	t.Append(0, trace.Record{Kind: trace.KindSend, Peer: 1, Tag: 1, Bytes: 800, MsgID: 1})
	t.Append(1, trace.Record{Kind: trace.KindRecv, Peer: 0, Tag: 1, Bytes: 800, MsgID: 1})
	t.Append(1, trace.Record{Kind: trace.KindCompute, Instr: 500})
	return t
}

// TestStoreEvictionDropsCompiledPrograms is the ROADMAP bugfix: the
// manager's digest-keyed program cache must follow the store. With a
// disk tier the memory tier evicts LRU at capacity, and each eviction —
// as well as an explicit delete — must drop the digest's compiled
// program instead of pinning it forever.
func TestStoreEvictionDropsCompiledPrograms(t *testing.T) {
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store.SetTraceCapacity(2)
	mgr, err := NewManager(Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	var digests []string
	for i := 0; i < 3; i++ {
		tr := traceWithInstr(int64(1000 + i))
		d, err := store.PutTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		if i < 2 {
			// Compile the first two as a stored-trace scenario would.
			if _, err := mgr.compiledTrace(d, tr); err != nil {
				t.Fatal(err)
			}
		}
		digests = append(digests, d)
	}
	// Capacity 2: the third put evicted the least recently used entry
	// (the first trace), and its program must be gone with it.
	if store.HasTrace(digests[0]) {
		t.Fatal("first trace still resident past capacity")
	}
	if mgr.CompiledProgramCached(digests[0]) {
		t.Fatal("evicted trace's compiled program still cached")
	}
	if !mgr.CompiledProgramCached(digests[1]) {
		t.Fatal("resident trace's compiled program dropped")
	}
	// The evicted trace still serves from disk — and promotes back in,
	// evicting another entry whose program follows it out.
	if _, err := store.GetTrace(digests[0]); err != nil {
		t.Fatalf("disk tier lost the evicted trace: %v", err)
	}
	if mgr.CompiledProgramCached(digests[1]) {
		t.Fatal("second trace evicted by promotion but program kept")
	}
	// Explicit deletion fires the hook too.
	tr2, err := store.GetTrace(digests[2])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.compiledTrace(digests[2], tr2); err != nil {
		t.Fatal(err)
	}
	found, err := store.DeleteTrace(digests[2])
	if err != nil || !found {
		t.Fatalf("delete: found=%v err=%v", found, err)
	}
	if mgr.CompiledProgramCached(digests[2]) {
		t.Fatal("deleted trace's compiled program still cached")
	}
	// A memory-only store stays authoritative: at capacity it refuses the
	// put instead of silently dropping data.
	memOnly, err := NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	memOnly.SetTraceCapacity(1)
	if _, err := memOnly.PutTrace(traceWithInstr(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := memOnly.PutTrace(traceWithInstr(2)); !errors.Is(err, ErrStoreFull) {
		t.Fatalf("memory-only store over capacity: err %v, want ErrStoreFull", err)
	}
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted early")
	}
	c.Put("c", []byte("3")) // evicts b (least recently used)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived past capacity")
	}
	if v, ok := c.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("a lost: %q %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || string(v) != "3" {
		t.Fatalf("c lost: %q %v", v, ok)
	}
	hits, misses := c.Counters()
	if hits != 3 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 3/1", hits, misses)
	}

	disabled := newResultCache(-1)
	disabled.Put("x", []byte("1"))
	if _, ok := disabled.Get("x"); ok {
		t.Fatal("disabled cache cached")
	}
}
