// Command overlapsim is the end-to-end CLI of the framework: it traces one
// application of the pool, replays the non-overlapped and both overlapped
// executions on a configurable platform, and reports timings, state
// profiles, pattern statistics, and optional timeline/trace dumps.
//
// Examples:
//
//	overlapsim -app cg -ranks 4
//	overlapsim -app sweep3d -ranks 16 -bw 125 -buses 12 -timeline
//	overlapsim -app pop -ranks 16 -dump-traces /tmp/pop
//	overlapsim -app cg -ranks 16 -preset marenostrum-4x -map rr
//	overlapsim -app cg -ranks 16 -platform cluster.json -dump-platform
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/paraver"
	"repro/internal/pattern"
	"repro/internal/platformflag"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracer"
)

func main() {
	app := flag.String("app", "cg", "application: sweep3d|pop|alya|specfem3d|bt|cg")
	ranks := flag.Int("ranks", 16, "number of ranks")
	chunks := flag.Int("chunks", 4, "chunks per message in the overlapped traces")
	pf := platformflag.Register(flag.CommandLine)
	timeline := flag.Bool("timeline", false, "render ASCII timelines")
	width := flag.Int("width", 100, "timeline width")
	dump := flag.String("dump-traces", "", "directory to write the three .dim traces")
	prv := flag.String("prv", "", "directory to write .prv files for the three runs")
	critpath := flag.Bool("critpath", false, "print the critical-path attribution of each flavour")
	whatif := flag.Bool("whatif", false, "rank buffers by what idealizing each one alone would gain")
	sizeScale := flag.Float64("size-scale", 1, "multiply communicated-buffer sizes")
	iterScale := flag.Float64("iter-scale", 1, "multiply iteration counts")
	workers := flag.Int("workers", 0, "experiment-engine worker pool size (0 = GOMAXPROCS)")
	flag.Parse()

	entry, ok := apps.ByNameScaled(*app, *ranks, apps.Scale{SizeScale: *sizeScale, IterScale: *iterScale})
	if !ok {
		fmt.Fprintf(os.Stderr, "overlapsim: unknown app %q (known: %v)\n", *app, apps.Names)
		os.Exit(2)
	}
	plat, err := pf.Resolve(*app, *ranks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "overlapsim: %v\n", err)
		os.Exit(2)
	}
	if pf.DumpRequested() {
		if err := pf.Dump(os.Stdout, plat); err != nil {
			fmt.Fprintf(os.Stderr, "overlapsim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	tCfg := tracer.DefaultConfig()
	tCfg.Chunks = *chunks

	ctx := context.Background()
	eng := engine.New(*workers)
	rep, err := core.AnalyzeOn(ctx, eng, entry.App, *ranks, plat, tCfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "overlapsim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("app %s (%s)\n", *app, entry.Description)
	fmt.Printf("platform: %s\n", plat.Describe())
	fmt.Printf("\n%-16s %12s %12s %12s %10s %12s\n", "flavor", "finish (s)", "wait (s)", "send-blk (s)", "messages", "bytes")
	for _, f := range []core.Flavor{core.FlavorBase, core.FlavorReal, core.FlavorIdeal} {
		r := rep.ResultOf(f)
		st := rep.TraceOf(f).Stats()
		var sendBlk float64
		for i := range r.Ranks {
			sendBlk += r.Ranks[i].SendBlockedSec
		}
		fmt.Printf("%-16s %12.6f %12.6f %12.6f %10d %12d\n",
			string(f), r.FinishSec, r.TotalWaitSec(), sendBlk, st.Messages, st.BytesSent)
	}
	fmt.Printf("\nspeedup real=%.3f ideal=%.3f\n", rep.SpeedupReal, rep.SpeedupIdeal)
	if plat.MultiNode() {
		fmt.Println()
		fmt.Print(paraver.TrafficSummaryOf(rep.Base).Format())
	}

	fmt.Println("\npattern summary (Table II row):")
	fmt.Print(pattern.FormatTableII([]*pattern.Analysis{rep.Patterns}))

	if *timeline {
		fmt.Println()
		fmt.Print(paraver.RenderComparison(rep.Base, rep.Real, *app+"/base", *app+"/overlap-real", *width))
		fmt.Print(paraver.Render(rep.Ideal, *app+"/overlap-ideal", *width))
	}
	if *critpath {
		for _, f := range []core.Flavor{core.FlavorBase, core.FlavorReal, core.FlavorIdeal} {
			fmt.Printf("\n[%s] ", f)
			fmt.Print(sim.CriticalPathOf(rep.ResultOf(f)).Format(8))
		}
	}
	if *whatif {
		wi, err := core.WhatIfOn(ctx, eng, entry.App, *ranks, plat, tCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "overlapsim: what-if: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(wi.Format())
	}
	if *dump != "" {
		for _, f := range []core.Flavor{core.FlavorBase, core.FlavorReal, core.FlavorIdeal} {
			path := filepath.Join(*dump, fmt.Sprintf("%s-%s.dim", *app, f))
			if err := writeTrace(path, rep.TraceOf(f)); err != nil {
				fmt.Fprintf(os.Stderr, "overlapsim: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	if *prv != "" {
		for _, f := range []core.Flavor{core.FlavorBase, core.FlavorReal, core.FlavorIdeal} {
			path := filepath.Join(*prv, fmt.Sprintf("%s-%s.prv", *app, f))
			if err := writePRV(path, rep.ResultOf(f), *app+"/"+string(f)); err != nil {
				fmt.Fprintf(os.Stderr, "overlapsim: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}

func writeTrace(path string, tr *trace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.Write(f, tr)
}

func writePRV(path string, res *sim.Result, name string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return paraver.WritePRV(f, res, name)
}
