package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracer"
)

// The unified declarative study API. A Scenario names one workload, one
// base platform, a flavor set, and a list of sweep axes whose cross
// product defines a run grid; RunScenario canonicalizes the spec,
// compiles each replayed trace flavor exactly once, expands the grid,
// executes the points on pooled replayers through the experiment engine,
// and returns a flat, deterministically ordered result table. Every
// bespoke study of this package — chunk ablation, placement and
// node-count sweeps, per-buffer what-if — is a thin wrapper over a
// scenario spec, and the service layer's endpoints translate their wire
// requests into the same specs, so a new sweep axis lands everywhere at
// once instead of spawning a new API family.

// AxisKind names one sweep dimension of a scenario grid.
type AxisKind string

// The sweep axes. Platform axes vary the interconnect (the knob a
// cluster buyer controls; intra-node links stay fixed), workload axes
// re-derive the replayed traces.
const (
	// AxisBandwidth sweeps the inter-node bandwidth in MB/s.
	AxisBandwidth AxisKind = "bandwidth"
	// AxisLatency sweeps the inter-node latency in seconds.
	AxisLatency AxisKind = "latency"
	// AxisBuses sweeps the global interconnect bus pool size.
	AxisBuses AxisKind = "buses"
	// AxisChunks sweeps the overlapped-trace chunk count (rebuilds the
	// overlapped flavors from the one traced run, like ChunkSweep).
	AxisChunks AxisKind = "chunks"
	// AxisMapping sweeps the rank→node placement.
	AxisMapping AxisKind = "mapping"
	// AxisNodes sweeps the node count ranks are packed onto.
	AxisNodes AxisKind = "nodes"
	// AxisRanks sweeps the world size (re-traces the application per
	// point; the platform is resized to match).
	AxisRanks AxisKind = "ranks"
	// AxisDerate sweeps the interconnect bandwidth derate factor in
	// (0, 1]; 1 is the healthy platform (faults.Spec.DerateInter).
	AxisDerate AxisKind = "derate"
	// AxisJitter sweeps the deterministic inter-node latency jitter
	// fraction; 0 is the healthy platform (faults.Spec.JitterFrac).
	AxisJitter AxisKind = "jitter"
	// AxisStragglers sweeps the number of seeded straggler ranks; 0 is
	// the healthy platform (faults.Spec.Stragglers).
	AxisStragglers AxisKind = "stragglers"
	// AxisLinkDown sweeps the number of seeded downed inter-node links;
	// 0 is the healthy platform (faults.Spec.LinkDown).
	AxisLinkDown AxisKind = "link-down"
)

// Axis is one sweep dimension: a kind plus its points. Exactly one of
// Values, Counts, or Mappings must be populated, matching the kind:
// bandwidth and latency take Values, buses/chunks/nodes/ranks take
// Counts, mapping takes Mappings (CLI spellings: "block", "rr", or an
// explicit node list like "0,0,1,1").
type Axis struct {
	Kind     AxisKind  `json:"kind"`
	Values   []float64 `json:"values,omitempty"`
	Counts   []int     `json:"counts,omitempty"`
	Mappings []string  `json:"mappings,omitempty"`
	// Zip names an advance-together group: axes sharing a Zip label
	// contribute one grid dimension whose i-th point sets the i-th value
	// of every member (bandwidth[i] paired with latency[i]), instead of
	// entering the cross product independently. Member axes must have
	// equal lengths. Empty means the axis sweeps on its own.
	Zip string `json:"zip,omitempty"`
}

// BandwidthAxis sweeps the inter-node bandwidth (MB/s).
func BandwidthAxis(mbps ...float64) Axis { return Axis{Kind: AxisBandwidth, Values: mbps} }

// LatencyAxis sweeps the inter-node latency (seconds).
func LatencyAxis(sec ...float64) Axis { return Axis{Kind: AxisLatency, Values: sec} }

// BusesAxis sweeps the global interconnect bus pool size.
func BusesAxis(buses ...int) Axis { return Axis{Kind: AxisBuses, Counts: buses} }

// ChunksAxis sweeps the overlapped-trace chunk count.
func ChunksAxis(counts ...int) Axis { return Axis{Kind: AxisChunks, Counts: counts} }

// MappingAxis sweeps rank→node placements given in their CLI spellings.
func MappingAxis(specs ...string) Axis { return Axis{Kind: AxisMapping, Mappings: specs} }

// NodeCountAxis sweeps the node count.
func NodeCountAxis(counts ...int) Axis { return Axis{Kind: AxisNodes, Counts: counts} }

// RanksAxis sweeps the world size.
func RanksAxis(counts ...int) Axis { return Axis{Kind: AxisRanks, Counts: counts} }

// DerateAxis sweeps the interconnect bandwidth derate factor (1 = healthy).
func DerateAxis(factors ...float64) Axis { return Axis{Kind: AxisDerate, Values: factors} }

// JitterAxis sweeps the deterministic latency jitter fraction (0 = healthy).
func JitterAxis(fracs ...float64) Axis { return Axis{Kind: AxisJitter, Values: fracs} }

// StragglersAxis sweeps the seeded straggler rank count (0 = healthy).
func StragglersAxis(counts ...int) Axis { return Axis{Kind: AxisStragglers, Counts: counts} }

// LinkDownAxis sweeps the seeded downed-link count (0 = healthy).
func LinkDownAxis(counts ...int) Axis { return Axis{Kind: AxisLinkDown, Counts: counts} }

// Len returns the number of points on the axis.
func (a Axis) Len() int { return len(a.Values) + len(a.Counts) + len(a.Mappings) }

// Validate checks the axis shape: a known kind whose matching value list
// (and only it) is populated with sane points.
func (a Axis) Validate() error {
	populated := 0
	if len(a.Values) > 0 {
		populated++
	}
	if len(a.Counts) > 0 {
		populated++
	}
	if len(a.Mappings) > 0 {
		populated++
	}
	if populated > 1 {
		return fmt.Errorf("core: axis %q populates %d of values/counts/mappings, want one", a.Kind, populated)
	}
	switch a.Kind {
	case AxisBandwidth, AxisLatency, AxisDerate, AxisJitter:
		if len(a.Counts) > 0 || len(a.Mappings) > 0 {
			return fmt.Errorf("core: axis %q takes values, not counts or mappings", a.Kind)
		}
		for _, v := range a.Values {
			switch a.Kind {
			case AxisBandwidth:
				if v <= 0 {
					return fmt.Errorf("core: axis %q: bandwidth %g MB/s, must be positive", a.Kind, v)
				}
			case AxisLatency:
				if v < 0 {
					return fmt.Errorf("core: axis %q: latency %g s, must be non-negative", a.Kind, v)
				}
			case AxisDerate:
				if v <= 0 || v > 1 {
					return fmt.Errorf("core: axis %q: derate factor %g, must be in (0, 1]", a.Kind, v)
				}
			case AxisJitter:
				if v < 0 {
					return fmt.Errorf("core: axis %q: jitter fraction %g, must be non-negative", a.Kind, v)
				}
			}
		}
	case AxisBuses, AxisChunks, AxisNodes, AxisRanks, AxisStragglers, AxisLinkDown:
		if len(a.Values) > 0 || len(a.Mappings) > 0 {
			return fmt.Errorf("core: axis %q takes counts, not values or mappings", a.Kind)
		}
		for _, k := range a.Counts {
			switch {
			case k > 0:
			case k == 0 && (a.Kind == AxisBuses || a.Kind == AxisStragglers || a.Kind == AxisLinkDown):
				// Meaningful zeros: an unlimited bus pool, or the healthy
				// point of a fault axis.
			default:
				return fmt.Errorf("core: axis %q: count %d, must be positive", a.Kind, k)
			}
		}
	case AxisMapping:
		if len(a.Values) > 0 || len(a.Counts) > 0 {
			return fmt.Errorf("core: axis %q takes mappings, not values or counts", a.Kind)
		}
		for _, s := range a.Mappings {
			if _, err := network.ParseMapping(s); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("core: unknown axis kind %q", a.Kind)
	}
	return nil
}

// labels returns the canonical point labels of the axis — the strings
// that appear both in the canonical spec (the digest input) and in the
// result table's coordinates, so a result row names its grid point in
// exactly the spelling the spec digested through.
func (a Axis) labels() ([]string, error) {
	out := make([]string, 0, a.Len())
	switch a.Kind {
	case AxisMapping:
		for _, s := range a.Mappings {
			m, err := network.ParseMapping(s)
			if err != nil {
				return nil, err
			}
			out = append(out, m.String())
		}
	case AxisBandwidth, AxisLatency, AxisDerate, AxisJitter:
		for _, v := range a.Values {
			out = append(out, strconv.FormatFloat(v, 'g', -1, 64))
		}
	default:
		for _, k := range a.Counts {
			out = append(out, strconv.Itoa(k))
		}
	}
	return out, nil
}

// OutputKind selects what each grid point of a scenario retains.
type OutputKind string

// The output selectors, from cheapest to heaviest per point.
const (
	// OutputFinish retains each flavor's makespan (pooled replay).
	OutputFinish OutputKind = "finish"
	// OutputTraffic adds the intra/inter traffic split per flavor.
	OutputTraffic OutputKind = "traffic"
	// OutputWhatIf runs the per-buffer idealization ranking per point.
	OutputWhatIf OutputKind = "whatif"
	// OutputReport runs the full three-flavor analysis (wire report,
	// patterns included) per point.
	OutputReport OutputKind = "report"
)

// Scenario is the declarative spec of one study.
//
// The workload is either an application (App, or Factory when a ranks
// axis must rebuild it per world size) traced through Tracer, or one
// pre-built trace (Trace) replayed as its own single flavor. The sweep
// axes' cross product — last axis fastest, like nested loops — defines
// the run grid executed on Platform.
type Scenario struct {
	// App is the fixed-workload application. Its kernel must tolerate
	// every swept rank count if a ranks axis is present and Factory is
	// nil.
	App App
	// Factory, when set, rebuilds the application per rank count and
	// takes precedence over App.
	Factory AppFactory
	// Ranks is the base world size (required in app mode).
	Ranks int
	// Tracer configures the instrumentation; the zero value selects
	// tracer.DefaultConfig().
	Tracer tracer.Config

	// Trace selects trace mode: replay this one validated trace instead
	// of tracing an application. Chunks/ranks axes, what-if, and report
	// outputs need the traced run and are rejected in trace mode.
	Trace *trace.Trace
	// TraceDigest optionally pins Trace's content address (computed when
	// empty).
	TraceDigest string
	// Program optionally supplies Trace's compiled replay program (e.g.
	// from a digest-keyed cache); when nil the scenario compiles it.
	Program *sim.Program
	// CompileTrace, when set, compiles Trace on demand — the hook the
	// service layer uses to route compilation through its digest-keyed
	// program cache. Ignored when Program is set.
	CompileTrace func(*trace.Trace) (*sim.Program, error)

	// Platform is the base platform every grid point starts from.
	Platform network.Platform
	// Degradations, when non-zero, replaces the platform's own fault-
	// injection spec: the declarative "what breaks" block of a degradation
	// study. Fault axes (derate, jitter, stragglers, link-down) then vary
	// the corresponding field per grid point on top of it. It enters the
	// canonical digest through the platform, so the zero value digests
	// identically to a spec written before the field existed.
	Degradations faults.Spec
	// Flavors lists the execution flavors measured per grid point for
	// finish/traffic outputs (default: base and overlap-real; trace mode
	// forces the trace's own flavor). Report and what-if outputs ignore
	// it — they define their own flavor sets.
	Flavors []Flavor
	// Axes are the sweep dimensions; empty means a single grid point.
	Axes []Axis
	// Output selects what each point retains (default OutputFinish).
	Output OutputKind

	// Traces, when set, routes tracing and flavor compilation through a
	// shared cache so concurrent scenarios over one application dedupe
	// their instrumentation runs. Leave nil unless the app-name-equals-
	// kernel invariant of the cache holds (the apps registry maintains
	// it; ad-hoc kernels should not share a cache).
	Traces *engine.TraceCache

	// PointCache, when set, is consulted per grid point before any
	// simulation is scheduled and fed every freshly computed point: the
	// partial-grid resume hook. Keys are per-point spec digests
	// (ScenarioPoint.Digest), so a spec whose grid overlaps an earlier
	// run's reuses those points and simulates only the gap. Like Traces,
	// it is an execution hook, not part of the spec's identity — it never
	// enters the canonical digest.
	PointCache PointCache

	// ReplayShards overrides the planner's intra-point parallelism choice
	// for finish/traffic replays: 0 lets the planner decide by grid size,
	// 1 forces serial replay, n > 1 requests n conservative-PDES shards
	// per replay (sim.RunProgramShards; platforms that cannot shard fall
	// back to serial). Sharded and serial replays are byte-identical, so
	// this is pure scheduling — like Traces and PointCache it never
	// enters the canonical digest.
	ReplayShards int
}

// PointCache is the point-level resume store RunScenarioStream consults
// and populates. Implementations must be safe for concurrent use and
// treat stored points as immutable.
type PointCache interface {
	// GetPoint returns the completed point stored under a per-point spec
	// digest.
	GetPoint(digest string) (ScenarioPoint, bool)
	// PutPoint stores a completed point under its digest.
	PutPoint(digest string, pt ScenarioPoint)
}

// normalized returns a validated copy with defaults applied.
func (s Scenario) normalized() (Scenario, error) {
	if s.Tracer == (tracer.Config{}) {
		s.Tracer = tracer.DefaultConfig()
	}
	if s.Output == "" {
		s.Output = OutputFinish
	}
	switch s.Output {
	case OutputFinish, OutputTraffic, OutputWhatIf, OutputReport:
	default:
		return s, fmt.Errorf("core: unknown scenario output %q", s.Output)
	}
	traceMode := s.Trace != nil
	if traceMode {
		if s.App.Kernel != nil || s.Factory != nil {
			return s, fmt.Errorf("core: scenario sets both an app and a trace workload")
		}
		if s.Output == OutputWhatIf || s.Output == OutputReport {
			return s, fmt.Errorf("core: %s output needs a traced application, not a stored trace", s.Output)
		}
		if err := s.Trace.Validate(); err != nil {
			return s, fmt.Errorf("core: scenario trace: %w", err)
		}
		if s.TraceDigest == "" {
			// Pin the content address once; the canonical spec, the
			// result header, and the compile path all reuse it instead of
			// re-hashing the trace.
			digest, err := trace.Digest(s.Trace)
			if err != nil {
				return s, err
			}
			s.TraceDigest = digest
		}
		s.Ranks = s.Trace.NumRanks
		own := Flavor(s.Trace.Flavor)
		if len(s.Flavors) == 0 {
			s.Flavors = []Flavor{own}
		}
		for _, f := range s.Flavors {
			if f != own {
				return s, fmt.Errorf("core: stored trace is flavor %q, cannot measure %q", own, f)
			}
		}
	} else {
		if s.App.Kernel == nil && s.Factory == nil {
			return s, fmt.Errorf("core: scenario has no workload (app kernel, factory, or trace)")
		}
		if s.Ranks <= 0 {
			return s, fmt.Errorf("core: scenario ranks=%d, must be positive", s.Ranks)
		}
		if s.Tracer.Chunks <= 0 {
			return s, fmt.Errorf("core: scenario tracer chunks=%d, must be positive", s.Tracer.Chunks)
		}
		if len(s.Flavors) == 0 {
			s.Flavors = []Flavor{FlavorBase, FlavorReal}
		}
		for _, f := range s.Flavors {
			switch f {
			case FlavorBase, FlavorReal, FlavorIdeal:
			default:
				return s, fmt.Errorf("core: unknown flavor %q", f)
			}
		}
	}
	if !s.Degradations.IsZero() {
		s.Platform = s.Platform.WithDegradations(s.Degradations)
	}
	if err := s.Platform.Validate(); err != nil {
		return s, err
	}
	if s.Ranks > s.Platform.Processors {
		return s, fmt.Errorf("core: %d ranks exceed the platform's %d processors", s.Ranks, s.Platform.Processors)
	}
	seen := map[AxisKind]bool{}
	for _, ax := range s.Axes {
		if err := ax.Validate(); err != nil {
			return s, err
		}
		if seen[ax.Kind] {
			return s, fmt.Errorf("core: duplicate %q axis", ax.Kind)
		}
		seen[ax.Kind] = true
		if traceMode && (ax.Kind == AxisChunks || ax.Kind == AxisRanks) {
			return s, fmt.Errorf("core: %q axis needs a traced application, not a stored trace", ax.Kind)
		}
	}
	// Zip groups advance together, so every member must offer the same
	// number of points.
	zipLen := map[string]int{}
	zipMembers := map[string]int{}
	for _, ax := range s.Axes {
		if ax.Zip == "" {
			continue
		}
		if n, ok := zipLen[ax.Zip]; ok && n != ax.Len() {
			return s, fmt.Errorf("core: zip group %q mixes axis lengths %d and %d", ax.Zip, n, ax.Len())
		}
		zipLen[ax.Zip] = ax.Len()
		zipMembers[ax.Zip]++
	}
	// Canonicalize away zips that don't constrain the grid: a group with
	// one member, or whose axes hold a single point each, expands exactly
	// like the plain cross product, so both spellings must digest — and
	// execute — identically. Clearing happens on a copied slice; the
	// caller's spec is never mutated.
	clear := func(ax Axis) bool {
		return ax.Zip != "" && (zipMembers[ax.Zip] == 1 || ax.Len() == 1)
	}
	for _, ax := range s.Axes {
		if clear(ax) {
			axes := make([]Axis, len(s.Axes))
			copy(axes, s.Axes)
			for i := range axes {
				if clear(axes[i]) {
					axes[i].Zip = ""
				}
			}
			s.Axes = axes
			break
		}
	}
	return s, nil
}

// axisGroups partitions axis indices into grid dimensions: zipped axes
// share one group (ordered by their first member's spec position),
// every other axis is its own group.
func (s Scenario) axisGroups() [][]int {
	groups := make([][]int, 0, len(s.Axes))
	byZip := map[string]int{}
	for i, ax := range s.Axes {
		if ax.Zip == "" {
			groups = append(groups, []int{i})
			continue
		}
		if g, ok := byZip[ax.Zip]; ok {
			groups[g] = append(groups[g], i)
		} else {
			byZip[ax.Zip] = len(groups)
			groups = append(groups, []int{i})
		}
	}
	return groups
}

// groupLen returns the point count of one axis group (the shortest
// member, though validation makes them equal).
func (s Scenario) groupLen(group []int) int {
	n := s.Axes[group[0]].Len()
	for _, i := range group[1:] {
		if l := s.Axes[i].Len(); l < n {
			n = l
		}
	}
	return n
}

// GridSize returns the number of grid points the axes expand to (1 with
// no axes; 0 if any axis is empty): the product over axis groups, a zip
// group counting once. The spec is not validated.
func (s Scenario) GridSize() int {
	n := 1
	for _, g := range s.axisGroups() {
		n *= s.groupLen(g)
	}
	return n
}

// canonicalAxis is an axis reduced to its canonical point labels.
type canonicalAxis struct {
	Kind   AxisKind `json:"kind"`
	Points []string `json:"points"`
	Zip    string   `json:"zip,omitempty"`
}

// canonicalScenario is what a scenario digests through: every field that
// changes the result, nothing that doesn't. The platform appears as its
// canonical JSON (mapping materialized), traces as content digests, and
// mapping-axis points in their parsed spelling — so equivalent spellings
// of one study collapse to one digest.
type canonicalScenario struct {
	App         string          `json:"app,omitempty"`
	Ranks       int             `json:"ranks,omitempty"`
	Tracer      *tracer.Config  `json:"tracer,omitempty"`
	TraceDigest string          `json:"trace_digest,omitempty"`
	Platform    json.RawMessage `json:"platform"`
	Flavors     []Flavor        `json:"flavors"`
	Axes        []canonicalAxis `json:"axes"`
	Output      OutputKind      `json:"output"`
}

// canonicalBase builds the canonical form of an already-normalized spec
// with Axes left empty — the shared trunk of the spec digest (full axes
// grafted on) and the per-point digests (one pinned value per axis).
func (s *Scenario) canonicalBase() (canonicalScenario, error) {
	platJSON, err := s.Platform.CanonicalJSON()
	if err != nil {
		return canonicalScenario{}, err
	}
	c := canonicalScenario{
		Platform: platJSON,
		Flavors:  s.Flavors,
		Output:   s.Output,
	}
	if s.Trace != nil {
		c.TraceDigest = s.TraceDigest // pinned by normalized()
	} else {
		c.App = s.App.Name
		if s.Factory != nil {
			app, err := s.Factory(s.Ranks)
			if err != nil {
				return canonicalScenario{}, err
			}
			c.App = app.Name
		}
		c.Ranks = s.Ranks
		c.Tracer = &s.Tracer
	}
	return c, nil
}

// CanonicalJSON returns the canonical serialized form of the scenario:
// compact JSON with a fixed field order, the platform canonicalized, the
// workload content-addressed, and axis points in canonical spellings.
// Two specs produce the same canonical bytes exactly when they define
// the same study.
func (s Scenario) CanonicalJSON() ([]byte, error) {
	norm, err := s.normalized()
	if err != nil {
		return nil, err
	}
	c, err := norm.canonicalBase()
	if err != nil {
		return nil, err
	}
	c.Axes = make([]canonicalAxis, 0, len(norm.Axes))
	for _, ax := range norm.Axes {
		labels, err := ax.labels()
		if err != nil {
			return nil, err
		}
		c.Axes = append(c.Axes, canonicalAxis{Kind: ax.Kind, Points: labels, Zip: ax.Zip})
	}
	b, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("core: canonicalize scenario: %w", err)
	}
	return b, nil
}

// Digest returns the content address of the scenario spec, spelled like
// trace and platform digests ("sha256:<64 hex digits>").
func (s Scenario) Digest() (string, error) {
	b, err := s.CanonicalJSON()
	if err != nil {
		return "", err
	}
	return digestBytes(b), nil
}

func digestBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// pointDigest returns the spec digest of the single-point scenario that
// pins one grid coordinate: base must be the spec's canonicalBase, and
// every axis narrows to the point's value on it. It equals
// Scenario.Digest() of that pinned spec — zip groups collapse away on
// single-point axes — so overlapping grids submitted as different specs
// meet at the same point keys, which is what lets a point-level cache
// resume a partially-computed grid.
func pointDigest(base canonicalScenario, coords []Coord) (string, error) {
	axes := make([]canonicalAxis, len(coords))
	for i, c := range coords {
		axes[i] = canonicalAxis{Kind: c.Axis, Points: []string{c.Value}}
	}
	base.Axes = axes
	b, err := json.Marshal(base)
	if err != nil {
		return "", fmt.Errorf("core: canonicalize scenario point: %w", err)
	}
	return digestBytes(b), nil
}

// Coord names one grid point's position on one axis, in the axis's
// canonical point spelling.
type Coord struct {
	Axis  AxisKind `json:"axis"`
	Value string   `json:"value"`
}

// PointKey names one grid point of a scenario without running it: its
// coordinates (canonical axis spellings) and the point digest a cache
// or cluster shards on.
type PointKey struct {
	Coords []Coord
	Digest string
}

// PointKeys expands the grid and returns every point's key in run
// order, without simulating anything. Distributed schedulers use this
// to decide point ownership before execution: each key's Digest is the
// spec digest of the pinned single-point scenario (see pointDigest), so
// a single-point spec built from Coords digests back to the same key.
func (s Scenario) PointKeys() ([]PointKey, error) {
	norm, err := s.normalized()
	if err != nil {
		return nil, err
	}
	base, err := norm.canonicalBase()
	if err != nil {
		return nil, err
	}
	pts, err := norm.grid()
	if err != nil {
		return nil, err
	}
	keys := make([]PointKey, len(pts))
	for i, pt := range pts {
		d, err := pointDigest(base, pt.coords)
		if err != nil {
			return nil, err
		}
		keys[i] = PointKey{Coords: pt.coords, Digest: d}
	}
	return keys, nil
}

// WireTraffic is the per-flavor traffic split of a traffic-output point.
type WireTraffic struct {
	IntraBytes int64 `json:"intra_bytes"`
	InterBytes int64 `json:"inter_bytes"`
	IntraMsgs  int   `json:"intra_msgs"`
	InterMsgs  int   `json:"inter_msgs"`
}

// FlavorMeasure is one flavor's measurement at one grid point.
type FlavorMeasure struct {
	Flavor Flavor `json:"flavor"`
	// TraceDigest content-addresses the exact trace this row replayed.
	TraceDigest string  `json:"trace_digest"`
	FinishSec   float64 `json:"finish_sec"`
	// Fault, when non-empty, reports that injected hard faults (downed
	// NICs or inter-node links) severed ranks this flavor needed: the
	// replay stalled instead of finishing, FinishSec is 0, and Fault
	// describes the stall. Genuine trace deadlocks on healthy platforms
	// remain hard errors, not Fault rows.
	Fault string `json:"fault,omitempty"`
	// Traffic is present for traffic output.
	Traffic *WireTraffic `json:"traffic,omitempty"`
}

// ScenarioPoint is one row of the result table: a grid coordinate plus
// the output selected by the spec.
type ScenarioPoint struct {
	Coords []Coord `json:"coords"`
	// Digest is the spec digest of the single-point scenario pinning this
	// coordinate — the key the service's point-level cache resumes
	// overlapping grids through.
	Digest string `json:"point_digest,omitempty"`
	// Flavors carries finish/traffic measurements, in spec flavor order.
	Flavors []FlavorMeasure `json:"flavors,omitempty"`
	// WhatIf carries the per-buffer ranking (what-if output).
	WhatIf *WireWhatIf `json:"whatif,omitempty"`
	// Report carries the full analysis (report output).
	Report *WireReport `json:"report,omitempty"`
}

// ScenarioHeader is everything a scenario result says besides its
// points: the resolved workload, the digests, and the grid shape. It is
// the first frame of the streaming wire protocol, and ScenarioResult
// embeds it so the batch JSON is the header's fields followed by the
// point array.
type ScenarioHeader struct {
	App   string `json:"app"`
	Ranks int    `json:"ranks,omitempty"`
	// TraceDigest is set for trace-mode workloads.
	TraceDigest string `json:"trace_digest,omitempty"`
	// SpecDigest is the canonical digest of the spec that produced this
	// result — the key the service caches under.
	SpecDigest string `json:"spec_digest"`
	// PlatformDigest content-addresses the base platform (before axis
	// transforms).
	PlatformDigest string     `json:"platform_digest"`
	Output         OutputKind `json:"output"`
	Axes           []AxisKind `json:"axes"`
	// GridPoints is the expanded grid size — how many points a complete
	// result (or stream) carries.
	GridPoints int `json:"grid_points"`
}

// Header canonicalizes the spec and returns the result header without
// running anything — what a streaming consumer sees before the first
// point.
func (s Scenario) Header() (*ScenarioHeader, error) {
	sc, err := s.normalized()
	if err != nil {
		return nil, err
	}
	return sc.header()
}

// header builds the result header of an already-normalized spec.
func (s *Scenario) header() (*ScenarioHeader, error) {
	specDigest, err := s.Digest()
	if err != nil {
		return nil, err
	}
	platDigest, err := s.Platform.Digest()
	if err != nil {
		return nil, err
	}
	h := &ScenarioHeader{
		Ranks:          s.Ranks,
		SpecDigest:     specDigest,
		PlatformDigest: platDigest,
		Output:         s.Output,
		Axes:           make([]AxisKind, 0, len(s.Axes)),
		GridPoints:     s.GridSize(),
	}
	for _, ax := range s.Axes {
		h.Axes = append(h.Axes, ax.Kind)
	}
	if s.Trace != nil {
		h.App = s.Trace.Name
		h.TraceDigest = s.TraceDigest // pinned by normalized()
	} else {
		app := s.App
		if s.Factory != nil {
			if app, err = s.Factory(s.Ranks); err != nil {
				return nil, err
			}
		}
		h.App = app.Name
	}
	return h, nil
}

// ScenarioResult is the flat, deterministically ordered result table of
// one scenario: grid points in row-major spec order (last axis fastest),
// flavors in spec order within a point. It is also the wire form the
// service's POST /v1/scenarios serves, and byte-for-byte the
// concatenation of the streaming protocol's header and point frames.
type ScenarioResult struct {
	ScenarioHeader
	Points []ScenarioPoint `json:"points"`
}

// gridPoint is one expanded coordinate of the run grid.
type gridPoint struct {
	coords []Coord
	plat   network.Platform
	ranks  int
	chunks int
}

// grid expands the axes into concrete run points, row-major with the
// last axis group fastest (zipped axes advance together as one group).
// Platform axes transform the base platform; chunks/ranks axes
// re-parameterize the workload. Each point's platform is validated
// after all transforms.
func (s *Scenario) grid() ([]gridPoint, error) {
	type axisPoints struct {
		ax       Axis
		labels   []string
		mappings []network.Mapping
	}
	axes := make([]axisPoints, len(s.Axes))
	for i, ax := range s.Axes {
		labels, err := ax.labels()
		if err != nil {
			return nil, err
		}
		axes[i] = axisPoints{ax: ax, labels: labels}
		if ax.Kind == AxisMapping {
			axes[i].mappings = make([]network.Mapping, len(ax.Mappings))
			for j, spec := range ax.Mappings {
				m, err := network.ParseMapping(spec)
				if err != nil {
					return nil, err
				}
				axes[i].mappings[j] = m
			}
		}
	}
	groups := s.axisGroups()
	total := s.GridSize()
	pts := make([]gridPoint, 0, total)
	for i := 0; i < total; i++ {
		idx := make([]int, len(axes))
		rem := i
		for g := len(groups) - 1; g >= 0; g-- {
			n := s.groupLen(groups[g])
			k := rem % n
			rem /= n
			for _, a := range groups[g] {
				idx[a] = k
			}
		}
		pt := gridPoint{
			coords: make([]Coord, len(axes)),
			plat:   s.Platform,
			ranks:  s.Ranks,
			chunks: s.Tracer.Chunks,
		}
		// Workload axes apply first: the ranks resize rewrites the
		// platform's Processors (and, for flat platforms, Nodes), and
		// applying it before the platform axes lets an explicit nodes or
		// mapping coordinate override it — each axis owns its own field
		// regardless of spec order.
		for a, ap := range axes {
			k := idx[a]
			pt.coords[a] = Coord{Axis: ap.ax.Kind, Value: ap.labels[k]}
			switch ap.ax.Kind {
			case AxisChunks:
				pt.chunks = ap.ax.Counts[k]
			case AxisRanks:
				r := ap.ax.Counts[k]
				pt.ranks = r
				// Resize the platform to the swept world size: a flat
				// (one-rank-per-node) platform stays flat, a multi-node
				// platform keeps its node structure.
				if !s.Platform.MultiNode() {
					pt.plat = pt.plat.WithProcessors(r).WithNodes(r)
				} else {
					pt.plat = pt.plat.WithProcessors(r)
				}
			}
		}
		for a, ap := range axes {
			k := idx[a]
			switch ap.ax.Kind {
			case AxisBandwidth:
				pt.plat = pt.plat.WithInterBandwidth(ap.ax.Values[k])
			case AxisLatency:
				pt.plat = pt.plat.WithInterLatency(ap.ax.Values[k])
			case AxisBuses:
				pt.plat = pt.plat.WithBuses(ap.ax.Counts[k])
			case AxisNodes:
				pt.plat = pt.plat.WithNodes(ap.ax.Counts[k])
			case AxisMapping:
				pt.plat = pt.plat.WithMapping(ap.mappings[k])
			case AxisDerate:
				pt.plat = pt.plat.WithDerateInter(ap.ax.Values[k])
			case AxisJitter:
				pt.plat = pt.plat.WithJitter(ap.ax.Values[k])
			case AxisStragglers:
				pt.plat = pt.plat.WithStragglers(ap.ax.Counts[k])
			case AxisLinkDown:
				pt.plat = pt.plat.WithLinkDown(ap.ax.Counts[k])
			}
		}
		if err := pt.plat.Validate(); err != nil {
			return nil, fmt.Errorf("core: grid point %v: %w", pt.coords, err)
		}
		if pt.ranks > pt.plat.Processors {
			return nil, fmt.Errorf("core: grid point %v: %d ranks exceed the platform's %d processors",
				pt.coords, pt.ranks, pt.plat.Processors)
		}
		pts = append(pts, pt)
	}
	return pts, nil
}

// ---------------------------------------------------------------------------
// Execution

// progKey identifies one compiled replay program of the scenario's
// workload. The base flavor ignores the chunk coordinate (chunking only
// reshapes the overlapped builds), so a chunk axis compiles it once.
type progKey struct {
	ranks, chunks int
	flavor        Flavor
}

type progEntry struct {
	once   sync.Once
	prog   *sim.Program
	digest string
	err    error
}

type runEntry struct {
	once sync.Once
	run  *tracer.Run
	err  error
}

// scenarioExec owns the per-run memoization: traced runs per rank count
// and compiled programs per (ranks, chunks, flavor). Every memo entry
// resolves exactly once however many grid points share it — the
// compile-once guarantee of the planner.
type scenarioExec struct {
	sc  *Scenario
	mu  sync.Mutex
	run map[int]*runEntry
	pg  map[progKey]*progEntry
}

func newScenarioExec(sc *Scenario) *scenarioExec {
	return &scenarioExec{sc: sc, run: map[int]*runEntry{}, pg: map[progKey]*progEntry{}}
}

// appFor resolves the application for one world size.
func (x *scenarioExec) appFor(ranks int) (App, error) {
	if x.sc.Factory != nil {
		return x.sc.Factory(ranks)
	}
	return x.sc.App, nil
}

// runFor returns the traced run for one world size, tracing once.
func (x *scenarioExec) runFor(ranks int) (*tracer.Run, error) {
	x.mu.Lock()
	ent, ok := x.run[ranks]
	if !ok {
		ent = &runEntry{}
		x.run[ranks] = ent
	}
	x.mu.Unlock()
	ent.once.Do(func() {
		app, err := x.appFor(ranks)
		if err != nil {
			ent.err = err
			return
		}
		if app.Kernel == nil {
			ent.err = fmt.Errorf("core: app %q has no kernel", app.Name)
			return
		}
		if x.sc.Traces != nil {
			ent.run, ent.err = x.sc.Traces.Trace(app.Name, ranks, x.sc.Tracer, app.Kernel)
			return
		}
		ent.run, ent.err = tracer.Trace(app.Name, ranks, x.sc.Tracer, app.Kernel)
		if ent.err != nil {
			ent.err = fmt.Errorf("core: scenario tracing %q: %w", app.Name, ent.err)
		}
	})
	return ent.run, ent.err
}

// runAt returns the traced run re-parameterized for one grid point.
func (x *scenarioExec) runAt(pt gridPoint) (*tracer.Run, error) {
	run, err := x.runFor(pt.ranks)
	if err != nil {
		return nil, err
	}
	if pt.chunks != x.sc.Tracer.Chunks {
		run = run.WithChunks(pt.chunks)
	}
	return run, nil
}

// progFor returns the compiled program and trace digest of one flavor at
// one (ranks, chunks) workload coordinate, building/validating/compiling
// exactly once per distinct key.
func (x *scenarioExec) progFor(ranks, chunks int, f Flavor) (*sim.Program, string, error) {
	if x.sc.Trace != nil {
		ranks, chunks = 0, 0 // trace mode has one workload
	} else if f == FlavorBase {
		chunks = x.sc.Tracer.Chunks // the base trace is chunk-independent
	}
	key := progKey{ranks: ranks, chunks: chunks, flavor: f}
	x.mu.Lock()
	ent, ok := x.pg[key]
	if !ok {
		ent = &progEntry{}
		x.pg[key] = ent
	}
	x.mu.Unlock()
	ent.once.Do(func() { ent.prog, ent.digest, ent.err = x.compile(ranks, chunks, f) })
	return ent.prog, ent.digest, ent.err
}

// compile resolves one program entry: trace-mode programs come from the
// spec (or its CompileTrace hook), app-mode programs from the shared
// trace cache when available, else from a private build of the flavor.
func (x *scenarioExec) compile(ranks, chunks int, f Flavor) (*sim.Program, string, error) {
	if tr := x.sc.Trace; tr != nil {
		digest := x.sc.TraceDigest // pinned by normalized()
		switch {
		case x.sc.Program != nil:
			return x.sc.Program, digest, nil
		case x.sc.CompileTrace != nil:
			prog, err := x.sc.CompileTrace(tr)
			return prog, digest, err
		}
		prog, err := sim.Compile(tr)
		return prog, digest, err
	}
	if x.sc.Traces != nil && chunks == x.sc.Tracer.Chunks {
		// The shared cache builds, validates, and compiles each flavor
		// once per (app, ranks, config) — across scenarios, not just
		// within this one.
		app, err := x.appFor(ranks)
		if err != nil {
			return nil, "", err
		}
		tr, prog, err := x.sc.Traces.CompiledTrace(app.Name, ranks, x.sc.Tracer, app.Kernel, string(f))
		if err != nil {
			return nil, "", err
		}
		digest, err := trace.Digest(tr)
		return prog, digest, err
	}
	run, err := x.runFor(ranks)
	if err != nil {
		return nil, "", err
	}
	if chunks != x.sc.Tracer.Chunks {
		run = run.WithChunks(chunks)
	}
	var tr *trace.Trace
	switch f {
	case FlavorBase:
		tr = run.BaseTrace()
	case FlavorReal:
		tr = run.OverlapReal()
	case FlavorIdeal:
		tr = run.OverlapIdeal()
	default:
		return nil, "", fmt.Errorf("core: unknown flavor %q", f)
	}
	if err := tr.Validate(); err != nil {
		return nil, "", fmt.Errorf("core: generated %s trace invalid: %w", f, err)
	}
	digest, err := trace.Digest(tr)
	if err != nil {
		return nil, "", err
	}
	prog, err := sim.Compile(tr)
	return prog, digest, err
}

// RunScenario is the one planner behind every study: it canonicalizes
// the spec, expands the axes into a run grid, executes the points on
// pooled replayers through the engine (nil selects the default engine),
// compiling each replayed trace flavor exactly once, and returns the
// flat result table in deterministic row-major order. It is a thin
// collector over RunScenarioStream — the batch result is exactly the
// stream's points, so the two paths cannot drift.
func RunScenario(ctx context.Context, eng *engine.Engine, spec Scenario) (*ScenarioResult, error) {
	pts := make([]ScenarioPoint, 0, spec.GridSize())
	hdr, err := RunScenarioStream(ctx, eng, spec, func(pt ScenarioPoint) error {
		pts = append(pts, pt)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &ScenarioResult{ScenarioHeader: *hdr, Points: pts}, nil
}

// coordsLabel joins a point's coordinates into "axis=value" pairs.
func coordsLabel(coords []Coord) string {
	out := ""
	for i, c := range coords {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%s", c.Axis, c.Value)
	}
	return out
}
