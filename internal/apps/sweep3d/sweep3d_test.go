package sweep3d

import (
	"testing"

	"repro/internal/pattern"
	"repro/internal/tracer"
)

func TestGridFor(t *testing.T) {
	cases := []struct{ ranks, px, py int }{
		{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {6, 2, 3}, {8, 2, 4},
		{9, 3, 3}, {12, 3, 4}, {16, 4, 4}, {64, 8, 8}, {7, 1, 7},
	}
	for _, tc := range cases {
		px, py := gridFor(tc.ranks)
		if px != tc.px || py != tc.py {
			t.Errorf("gridFor(%d)=(%d,%d), want (%d,%d)", tc.ranks, px, py, tc.px, tc.py)
		}
		if px*py != tc.ranks {
			t.Errorf("gridFor(%d) does not cover the ranks", tc.ranks)
		}
	}
}

func TestDefaultConfigRanks(t *testing.T) {
	cfg := DefaultConfig(16)
	if cfg.Ranks() != 16 {
		t.Fatalf("Ranks()=%d, want 16", cfg.Ranks())
	}
	if cfg.Boundary != 600 {
		t.Fatalf("Boundary=%d, the paper's Fig. 5a buffer has 600 elements", cfg.Boundary)
	}
}

func traceIt(t *testing.T, ranks int) *tracer.Run {
	t.Helper()
	cfg := DefaultConfig(ranks)
	run, err := tracer.Trace("sweep3d", ranks, tracer.DefaultConfig(), Kernel(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestKernelRunsOnVariousGrids(t *testing.T) {
	for _, ranks := range []int{1, 2, 4, 6, 9, 16} {
		run := traceIt(t, ranks)
		for _, tr := range []interface{ Validate() error }{run.BaseTrace(), run.OverlapReal(), run.OverlapIdeal()} {
			if err := tr.Validate(); err != nil {
				t.Fatalf("ranks=%d: %v", ranks, err)
			}
		}
	}
}

func TestWavefrontCommunicationStructure(t *testing.T) {
	// On a 2x2 grid: rank 0 sends east+south, rank 3 only receives,
	// ranks 1 and 2 do both.
	run := traceIt(t, 4)
	count := func(rank int, kind tracer.EvKind) int {
		n := 0
		for _, e := range run.Logs[rank].Events {
			if e.Kind == kind {
				n++
			}
		}
		return n
	}
	iters := DefaultConfig(4).Iterations
	if got := count(0, tracer.EvSend); got != 2*iters {
		t.Errorf("corner rank sends %d, want %d", got, 2*iters)
	}
	if got := count(0, tracer.EvRecv); got != 0 {
		t.Errorf("corner rank receives %d, want 0", got)
	}
	if got := count(3, tracer.EvRecv); got != 2*iters {
		t.Errorf("sink rank receives %d, want %d", got, 2*iters)
	}
	if got := count(3, tracer.EvSend); got != 0 {
		t.Errorf("sink rank sends %d, want 0", got)
	}
}

func TestProductionPatternShape(t *testing.T) {
	run := traceIt(t, 4)
	an := pattern.Analyze(run)
	p := an.Production["outflow-east"]
	if p == nil {
		t.Fatal("no production stats for the east outflow buffer")
	}
	// The wavefront corner settles around two thirds; the bulk at the end.
	if p.FirstElem < 50 || p.FirstElem > 85 {
		t.Errorf("FirstElem=%.1f%%, want ~66%%", p.FirstElem)
	}
	if p.Quarter < 90 || p.Whole < 99 {
		t.Errorf("tail not back-loaded: quarter=%.1f whole=%.1f", p.Quarter, p.Whole)
	}
	// Consumption is immediate.
	c := an.Consumption["inflow-west"]
	if c == nil {
		t.Fatal("no consumption stats for the west inflow buffer")
	}
	if c.Nothing > 8 {
		t.Errorf("Nothing=%.1f%%, wavefront needs inflow immediately", c.Nothing)
	}
}

func TestBufferRevisits(t *testing.T) {
	// Fig. 5a: every element is "revisited and accessed many times during
	// one production interval" — at least AccumPasses+1 stores per
	// element per iteration on a sending rank.
	cfg := DefaultConfig(4)
	run := traceIt(t, 4)
	stores := map[int]int{}
	var eastID = -1
	for id, name := range run.Logs[0].ArrayNames {
		if name == "outflow-east" {
			eastID = id
		}
	}
	if eastID < 0 {
		t.Fatal("outflow-east not found")
	}
	for _, e := range run.Logs[0].Events {
		if e.Kind == tracer.EvStore && e.Arr == eastID {
			stores[e.Idx]++
		}
	}
	wantMin := cfg.Iterations * cfg.AccumPasses
	for idx, n := range stores {
		if n < wantMin {
			t.Fatalf("element %d stored %d times, want >= %d (revisits)", idx, n, wantMin)
		}
	}
	if len(stores) != cfg.Boundary {
		t.Fatalf("only %d of %d elements stored", len(stores), cfg.Boundary)
	}
}
