// Command promcheck validates a Prometheus text-format metrics page and
// asserts sample values — the CI smoke harness for simd's /metrics.
//
// The page is read from -url (an HTTP scrape) or stdin, strictly parsed
// (malformed exposition is a failure by itself), and then checked
// against assertion arguments of the form
//
//	promcheck -url http://127.0.0.1:8199/metrics \
//	  'engine_jobs_started_total>=1' \
//	  'http_requests_total{code="200",endpoint="POST /v1/scenarios"}>=1' \
//	  'sim_pdes_replays_total==0'
//
// A bare family name sums every labelled sample of that family
// (scenario_stage_seconds_count matches all four stages). Supported
// operators: ==, !=, >=, <=, >, <. With -list the parsed samples print
// instead, one `key value` per line — handy for discovering keys.
//
// Exit status: 0 when the page parses and every assertion holds, 1
// otherwise.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"

	"repro/internal/telemetry"
)

func main() {
	url := flag.String("url", "", "metrics URL to scrape (default: read the page from stdin)")
	list := flag.Bool("list", false, "print the parsed samples (key value per line) and exit")
	flag.Parse()

	var page = os.Stdin
	if *url != "" {
		resp, err := http.Get(*url)
		if err != nil {
			fatal("scrape %s: %v", *url, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fatal("scrape %s: HTTP %d", *url, resp.StatusCode)
		}
		pm, err := telemetry.ParseMetrics(resp.Body)
		if err != nil {
			fatal("parse %s: %v", *url, err)
		}
		run(pm, *list)
		return
	}
	pm, err := telemetry.ParseMetrics(page)
	if err != nil {
		fatal("parse stdin: %v", err)
	}
	run(pm, *list)
}

func run(pm telemetry.ParsedMetrics, list bool) {
	if list {
		for _, k := range pm.Keys() {
			v, _ := pm.Value(k)
			fmt.Printf("%s %g\n", k, v)
		}
		return
	}
	failed := 0
	for _, a := range flag.Args() {
		if err := check(pm, a); err != nil {
			fmt.Fprintf(os.Stderr, "promcheck: FAIL %v\n", err)
			failed++
			continue
		}
		fmt.Printf("promcheck: ok %s\n", a)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// ops in matching order: two-character operators before their
// one-character prefixes.
var ops = []string{">=", "<=", "==", "!=", ">", "<"}

func check(pm telemetry.ParsedMetrics, assertion string) error {
	for _, op := range ops {
		// Split at the last occurrence: label values may contain any
		// character, but the numeric right side never does.
		i := strings.LastIndex(assertion, op)
		if i < 0 {
			continue
		}
		key := strings.TrimSpace(assertion[:i])
		want, err := strconv.ParseFloat(strings.TrimSpace(assertion[i+len(op):]), 64)
		if err != nil {
			return fmt.Errorf("%s: bad number: %v", assertion, err)
		}
		got, found := pm.Value(key)
		if !found {
			return fmt.Errorf("%s: no sample %q on the page", assertion, key)
		}
		ok := false
		switch op {
		case ">=":
			ok = got >= want
		case "<=":
			ok = got <= want
		case "==":
			ok = got == want
		case "!=":
			ok = got != want
		case ">":
			ok = got > want
		case "<":
			ok = got < want
		}
		if !ok {
			return fmt.Errorf("%s: have %g", assertion, got)
		}
		return nil
	}
	return fmt.Errorf("%s: no operator (want one of %v)", assertion, ops)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "promcheck: "+format+"\n", args...)
	os.Exit(1)
}
