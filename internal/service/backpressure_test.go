// Internal tests of admission control: they hold the manager's
// execution slots directly to force the queue-full condition
// deterministically, something the public API can't stage without
// timing games.
package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/engine"
)

// TestSubmitQueueFull: with one execution slot held and a queue depth of
// one, the first submission queues and the second is rejected with
// ErrQueueFull; the counters record both sides. Draining the slot lets
// the queued job run to completion.
func TestSubmitQueueFull(t *testing.T) {
	eng := engine.New(1)
	m, err := NewManager(Options{Engine: eng, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.slots <- struct{}{} // occupy the only slot

	j1, err := m.Submit(AnalyzeRequest{App: "cg", Ranks: 4})
	if err != nil {
		t.Fatalf("first submission should queue: %v", err)
	}
	if _, err := m.Submit(AnalyzeRequest{App: "cg", Ranks: 8}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second submission err = %v, want ErrQueueFull", err)
	}
	met := m.MetricsSnapshot()
	if met.QueueDepth != 1 || met.QueueLimit != 1 || met.Rejected != 1 {
		t.Fatalf("metrics %+v, want depth 1, limit 1, rejected 1", met)
	}

	<-m.slots // release; the queued job acquires it and runs
	if _, err := j1.Wait(t.Context()); err != nil {
		t.Fatal(err)
	}
	if met := m.MetricsSnapshot(); met.QueueDepth != 0 {
		t.Fatalf("queue depth %d after completion, want 0", met.QueueDepth)
	}
}

// TestHTTPQueueFull429 maps the same condition through the HTTP face:
// both the batch submit path and the streaming scenario path answer 429
// with Retry-After while the queue is full.
func TestHTTPQueueFull429(t *testing.T) {
	eng := engine.New(1)
	m, err := NewManager(Options{Engine: eng, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	m.slots <- struct{}{}

	post := func(path string, body string, ndjson bool) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, srv.URL+path, bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if ndjson {
			req.Header.Set("Accept", NDJSONContentType)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// First job queues (async, so the request returns immediately).
	resp := post("/v1/analyze?async=1", `{"app":"cg","ranks":4}`, false)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit status %d", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}

	// Batch submission past the bound: 429 + Retry-After.
	resp = post("/v1/analyze", `{"app":"cg","ranks":8}`, false)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("batch overflow status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Streaming submission past the bound: same rejection, before any
	// frame is written.
	resp = post("/v1/scenarios", `{"app":"cg","ranks":8,"output":"finish"}`, true)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("stream overflow status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("stream 429 without Retry-After")
	}

	if met := m.MetricsSnapshot(); met.Rejected != 2 {
		t.Fatalf("rejected %d, want 2", met.Rejected)
	}

	// Cache hits are never rejected: nothing to queue. (Prime one by
	// letting the queued job finish first.)
	<-m.slots
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, ok := m.Job(st.ID)
		if !ok {
			t.Fatalf("job %s vanished", st.ID)
		}
		if j.Finished() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queued job never finished after slot release")
		}
		time.Sleep(10 * time.Millisecond)
	}
	m.slots <- struct{}{} // refill: the next fresh job would queue again
	resp = post("/v1/analyze", `{"app":"cg","ranks":4}`, false)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached request status %d, want 200 despite held slot", resp.StatusCode)
	}
	<-m.slots
}
