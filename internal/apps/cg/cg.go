// Package cg models the NAS-CG conjugate-gradient kernel: each iteration a
// sparse matrix-vector product consumes the iterate received from the
// partner rank while producing the local result vector element by element;
// partner ranks then exchange halves (the NPB reduce-exchange), and the
// received vector feeds the next iteration's matvec.
//
// CG is the paper's favourable case: because the heavy matvec phase both
// consumes the received vector and produces the sent vector *sequentially*,
// its production and consumption patterns are close to linear — Table II
// reports 3.98/27.98/51.99/99.97 for production and 2.175/18.35/34.53 for
// consumption — and CG is the only application whose measured patterns
// yield a visible overlap speedup (~8% on Fig. 4).
//
// The kernel reproduces that structure: a short reduction prelude (the
// paper's ~4% offset) precedes a matvec loop that loads the received
// element and stores the produced element in stride order, followed by a
// small dot-product tail and the pairwise exchange.
package cg

import (
	"repro/internal/tracer"
)

// Config sizes the kernel.
type Config struct {
	// Iterations is the number of CG iterations.
	Iterations int
	// VectorLen is the exchanged vector length in elements.
	VectorLen int
	// WorkPerElem is the instruction cost of one sparse row product.
	WorkPerElem int64
	// PreludePct sizes the reduction prelude, in percent of the matvec.
	PreludePct int
	// TailPct sizes the local dot-product tail, in percent of the matvec.
	TailPct int
}

// DefaultConfig sizes CG so communication is a visible but minor share of
// an iteration, like class B on the testbed.
func DefaultConfig() Config {
	return Config{
		Iterations:  6,
		VectorLen:   800,
		WorkPerElem: 1000,
		PreludePct:  4,
		TailPct:     5,
	}
}

const tagExchange = 1

// Kernel runs one rank of CG. Ranks pair up (0,1), (2,3), ... and exchange
// their halves of the iterate. Odd world sizes leave the last rank
// computing locally.
func Kernel(cfg Config) func(p *tracer.Proc) {
	return func(p *tracer.Proc) {
		me, size := p.Rank(), p.Size()
		partner := me ^ 1
		hasPartner := partner < size
		n := cfg.VectorLen

		q := p.NewArray("q", n)    // locally produced matvec result
		r := p.NewArray("iter", n) // partner's half, input of the next matvec

		matvecInstr := int64(n) * cfg.WorkPerElem
		preludeWork := int64(cfg.PreludePct) * matvecInstr / 100
		tailWork := int64(cfg.TailPct) * matvecInstr / 100

		for it := 0; it < cfg.Iterations; it++ {
			// Reduction prelude: rho = r.r (local part).
			p.Compute(preludeWork)

			// Sparse matvec: q[i] = A[i,:]*p. Row i consumes the
			// received iterate and produces the result, in stride order.
			for i := 0; i < n; i++ {
				p.Compute(cfg.WorkPerElem)
				x := 1.0
				if hasPartner && it > 0 {
					x = r.Load(i)
				}
				q.Store(i, x+float64(it*n+i))
			}

			// Local dot products / axpy tail.
			p.Compute(tailWork)

			// Reduce-exchange with the partner.
			if hasPartner {
				if me < partner {
					p.Send(partner, tagExchange, q)
					p.Recv(r, partner, tagExchange)
				} else {
					p.Recv(r, partner, tagExchange)
					p.Send(partner, tagExchange, q)
				}
			}
		}
	}
}
