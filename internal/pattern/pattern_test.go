package pattern

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mpi"
	"repro/internal/tracer"
)

// sequentialProducer sends a buffer produced element-by-element (near-ideal
// pattern) and consumes it element-by-element.
func sequentialProducer(n, iters int) func(p *tracer.Proc) {
	return func(p *tracer.Proc) {
		buf := p.NewArray("seq", n)
		for it := 0; it < iters; it++ {
			if p.Rank() == 0 {
				for i := 0; i < n; i++ {
					p.Compute(100)
					buf.Store(i, float64(i))
				}
				p.Send(1, 0, buf)
			} else {
				p.Recv(buf, 0, 0)
				for i := 0; i < n; i++ {
					p.Compute(100)
					_ = buf.Load(i)
				}
			}
		}
	}
}

// lateProducer stores the whole buffer in a tight pack loop at the very end
// of each interval (the BT/POP production shape).
func lateProducer(n, iters int) func(p *tracer.Proc) {
	return func(p *tracer.Proc) {
		buf := p.NewArray("late", n)
		for it := 0; it < iters; it++ {
			if p.Rank() == 0 {
				p.Compute(100_000)
				for i := 0; i < n; i++ {
					buf.Store(i, 1)
				}
				p.Send(1, 0, buf)
			} else {
				p.Recv(buf, 0, 0)
				for i := 0; i < n; i++ {
					_ = buf.Load(i)
				}
				p.Compute(100_000)
			}
		}
	}
}

func mustTrace(t *testing.T, name string, ranks int, app func(p *tracer.Proc)) *tracer.Run {
	t.Helper()
	run, err := tracer.Trace(name, ranks, tracer.DefaultConfig(), app)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestSequentialProductionNearIdeal(t *testing.T) {
	run := mustTrace(t, "seqapp", 2, sequentialProducer(100, 4))
	an := Analyze(run)
	p := an.AppProduction
	if p.Intervals != 3 { // 4 sends -> 3 intervals
		t.Fatalf("intervals=%d, want 3", p.Intervals)
	}
	if !p.Chunkable {
		t.Fatal("100-element buffer must be chunkable")
	}
	// Sequential production: first element finalized right after the
	// interval starts, quarter near 25%, half near 50%, whole at 100%.
	if p.FirstElem > 5 {
		t.Errorf("FirstElem=%.2f%%, want near 0", p.FirstElem)
	}
	if math.Abs(p.Quarter-25) > 5 {
		t.Errorf("Quarter=%.2f%%, want near 25", p.Quarter)
	}
	if math.Abs(p.Half-50) > 5 {
		t.Errorf("Half=%.2f%%, want near 50", p.Half)
	}
	if p.Whole < 95 {
		t.Errorf("Whole=%.2f%%, want near 100", p.Whole)
	}
}

func TestSequentialConsumptionNearIdeal(t *testing.T) {
	run := mustTrace(t, "seqapp", 2, sequentialProducer(100, 4))
	an := Analyze(run)
	c := an.AppConsumption
	if c.Intervals != 3 {
		t.Fatalf("intervals=%d, want 3", c.Intervals)
	}
	if c.Nothing > 5 {
		t.Errorf("Nothing=%.2f%%, want near 0 (consumes immediately)", c.Nothing)
	}
	if math.Abs(c.Quarter-25) > 6 {
		t.Errorf("Quarter=%.2f%%, want near 25", c.Quarter)
	}
	if math.Abs(c.Half-50) > 6 {
		t.Errorf("Half=%.2f%%, want near 50", c.Half)
	}
}

func TestLateProductionUnfavourable(t *testing.T) {
	run := mustTrace(t, "lateapp", 2, lateProducer(64, 4))
	an := Analyze(run)
	p := an.AppProduction
	// The pack loop sits at the end: everything finalized past ~99%.
	if p.FirstElem < 95 || p.Whole < 99 {
		t.Errorf("late producer: first=%.2f whole=%.2f, want >95/>99", p.FirstElem, p.Whole)
	}
	c := an.AppConsumption
	// Consumed in a copy burst right after the receive.
	if c.Nothing > 2 {
		t.Errorf("late consumer Nothing=%.2f%%, want ~0", c.Nothing)
	}
}

func TestSingleElementBuffersNotChunkable(t *testing.T) {
	app := func(p *tracer.Proc) {
		in := p.NewArray("dot", 1)
		out := p.NewArray("res", 1)
		for it := 0; it < 3; it++ {
			p.Compute(1000)
			in.Store(0, 1)
			p.AllreduceTracked(in, out, mpi.OpSum)
			_ = out.Load(0)
			p.Compute(1000)
		}
	}
	run := mustTrace(t, "alya-like", 2, app)
	an := Analyze(run)
	p := an.AppProduction
	if p.Chunkable {
		t.Fatal("single-element buffers must not be chunkable")
	}
	if math.IsNaN(p.FirstElem) {
		t.Fatal("FirstElem must still be measured")
	}
	if !math.IsNaN(p.Quarter) || !math.IsNaN(p.Half) {
		t.Fatal("partial-message columns must be NaN for unchunkable apps")
	}
	if p.FirstElem < 40 {
		t.Errorf("FirstElem=%.2f%%, expected late production (store just before reduce)", p.FirstElem)
	}
	c := an.AppConsumption
	if c.Nothing > 5 {
		t.Errorf("Nothing=%.2f%%, result is consumed immediately", c.Nothing)
	}
}

func TestEmptyRunYieldsNaN(t *testing.T) {
	run := mustTrace(t, "empty", 1, func(p *tracer.Proc) { p.Compute(10) })
	an := Analyze(run)
	if !math.IsNaN(an.AppProduction.FirstElem) || !math.IsNaN(an.AppConsumption.Nothing) {
		t.Fatal("run without tracked communication must produce NaN stats")
	}
}

func TestPerBufferKeys(t *testing.T) {
	app := func(p *tracer.Proc) {
		a := p.NewArray("alpha", 8)
		b := p.NewArray("beta", 8)
		for it := 0; it < 3; it++ {
			if p.Rank() == 0 {
				for i := 0; i < 8; i++ {
					a.Store(i, 1)
					b.Store(i, 2)
				}
				p.Compute(100)
				p.Send(1, 0, a)
				p.Send(1, 1, b)
			} else {
				p.Recv(a, 0, 0)
				p.Recv(b, 0, 1)
				for i := 0; i < 8; i++ {
					_ = a.Load(i)
					_ = b.Load(i)
				}
				p.Compute(100)
			}
		}
	}
	run := mustTrace(t, "two-buffers", 2, app)
	an := Analyze(run)
	if _, ok := an.Production["alpha"]; !ok {
		t.Error("missing production stats for alpha")
	}
	if _, ok := an.Production["beta"]; !ok {
		t.Error("missing production stats for beta")
	}
	if _, ok := an.Consumption["alpha"]; !ok {
		t.Error("missing consumption stats for alpha")
	}
}

func TestScatterProduction(t *testing.T) {
	run := mustTrace(t, "seqapp", 2, sequentialProducer(50, 3))
	sc := ScatterFor(run, "seq", 0, Production)
	if sc == nil {
		t.Fatal("no scatter for rank 0")
	}
	if sc.Intervals != 2 {
		t.Fatalf("scatter intervals=%d, want 2", sc.Intervals)
	}
	if len(sc.Points) != 2*50 {
		t.Fatalf("points=%d, want 100", len(sc.Points))
	}
	// Sequential producer: RelT should grow with element offset.
	for _, p := range sc.Points {
		if p.RelT < 0 || p.RelT > 1 {
			t.Fatalf("RelT out of range: %v", p.RelT)
		}
		expected := float64(p.Elem+1) / 50
		if math.Abs(p.RelT-expected) > 0.1 {
			t.Fatalf("elem %d at RelT %.3f, want near %.3f", p.Elem, p.RelT, expected)
		}
	}
}

func TestScatterConsumption(t *testing.T) {
	run := mustTrace(t, "seqapp", 2, sequentialProducer(50, 3))
	sc := ScatterFor(run, "seq", 1, Consumption)
	if sc == nil || len(sc.Points) == 0 {
		t.Fatal("no consumption scatter for rank 1")
	}
	if sc.Side != Consumption || sc.Side.String() != "consumption" {
		t.Fatal("side metadata wrong")
	}
}

func TestScatterUnknownBufferOrRank(t *testing.T) {
	run := mustTrace(t, "seqapp", 2, sequentialProducer(10, 2))
	if ScatterFor(run, "nope", 0, Production) != nil {
		t.Error("unknown buffer should return nil")
	}
	if ScatterFor(run, "seq", 99, Production) != nil {
		t.Error("out-of-range rank should return nil")
	}
}

func TestScatterASCIIAndCSV(t *testing.T) {
	run := mustTrace(t, "seqapp", 2, sequentialProducer(40, 3))
	sc := ScatterFor(run, "seq", 0, Production)
	art := sc.ASCII(40, 12)
	if !strings.Contains(art, "*") {
		t.Fatal("ASCII scatter has no points")
	}
	if !strings.Contains(art, "production") {
		t.Fatal("ASCII scatter missing title")
	}
	var sb strings.Builder
	if err := sc.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2+len(sc.Points) {
		t.Fatalf("CSV lines=%d, want %d", len(lines), 2+len(sc.Points))
	}
}

func TestFormatTableII(t *testing.T) {
	run := mustTrace(t, "seqapp", 2, sequentialProducer(20, 3))
	out := FormatTableII([]*Analysis{Analyze(run)})
	if !strings.Contains(out, "seqapp") || !strings.Contains(out, "ideal") {
		t.Fatalf("table missing rows:\n%s", out)
	}
	if !strings.Contains(out, "advancing sends") || !strings.Contains(out, "post-postponing") {
		t.Fatalf("table missing captions:\n%s", out)
	}
}

func TestPropertyStatsWithinRange(t *testing.T) {
	f := func(nRaw, itRaw uint8) bool {
		n := int(nRaw%80) + 2
		iters := int(itRaw%4) + 2
		run, err := tracer.Trace("prop", 2, tracer.DefaultConfig(), sequentialProducer(n, iters))
		if err != nil {
			return false
		}
		an := Analyze(run)
		p, c := an.AppProduction, an.AppConsumption
		inRange := func(v float64) bool { return v >= 0 && v <= 100.000001 }
		if !inRange(p.FirstElem) || !inRange(p.Quarter) || !inRange(p.Half) || !inRange(p.Whole) {
			return false
		}
		if !(p.FirstElem <= p.Quarter+1e-9 && p.Quarter <= p.Half+1e-9 && p.Half <= p.Whole+1e-9) {
			return false // order statistics must be monotone
		}
		if !inRange(c.Nothing) || !inRange(c.Quarter) || !inRange(c.Half) {
			return false
		}
		return c.Nothing <= c.Quarter+1e-9 && c.Quarter <= c.Half+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
