// Package tracer is the Valgrind-equivalent front end of the framework: it
// instruments an application run and produces, from that single run, the
// non-overlapped trace and the two overlapped (real-pattern and
// ideal-pattern) traces described in the paper.
//
// The paper's tool executes each MPI process in a binary-translation VM,
// wrapping every MPI call and intercepting every load and store to
// communicated buffers; time-stamps are executed-instruction counts scaled
// by an average MIPS rate. Our substitute asks the application to express
// the same information directly:
//
//   - Proc.Compute(n) advances the rank's virtual clock by n instructions
//     (the compute bursts Valgrind would have counted);
//   - communicated buffers are tracker-owned Arrays whose Load and Store
//     methods record (virtual time, element) access pairs and charge a
//     configurable per-access instruction cost;
//   - Proc.Send/Proc.Recv transfer whole tracked Arrays through the mpi
//     substrate, and collectives decompose into instrumented raw
//     point-to-point transfers.
//
// A Run therefore holds per-rank event logs carrying exactly the
// information the paper's tracer extracts, and the builders in build.go
// turn those logs into the three Dimemas-style traces.
package tracer

import (
	"fmt"
	"sync"

	"repro/internal/mpi"
)

// Config tunes the instrumentation and the chunking transformation.
type Config struct {
	// Chunks is the number of chunks each tracked message is split into
	// in the overlapped traces (the paper uses 4). Messages with fewer
	// elements than Chunks get one chunk per element; one-element
	// messages are never chunked (the Alya rule).
	Chunks int
	// ElemBytes is the wire size of one tracked element (8 = float64).
	ElemBytes int64
	// LoadCost and StoreCost are the instructions charged per tracked
	// access, modelling the work of the instruction stream around each
	// memory operation.
	LoadCost, StoreCost int64
}

// DefaultConfig mirrors the paper's setup: four chunks per message,
// 8-byte elements, one instruction per tracked access.
func DefaultConfig() Config {
	return Config{Chunks: 4, ElemBytes: 8, LoadCost: 1, StoreCost: 1}
}

func (c Config) validate() error {
	switch {
	case c.Chunks <= 0:
		return fmt.Errorf("tracer: Chunks=%d, must be positive", c.Chunks)
	case c.ElemBytes <= 0:
		return fmt.Errorf("tracer: ElemBytes=%d, must be positive", c.ElemBytes)
	case c.LoadCost < 0 || c.StoreCost < 0:
		return fmt.Errorf("tracer: negative access cost (load=%d store=%d)", c.LoadCost, c.StoreCost)
	}
	return nil
}

// EvKind discriminates event-log entries.
type EvKind uint8

// Event kinds recorded in a rank's log.
const (
	// EvSend: a tracked array was sent (blocking at the MPI level).
	EvSend EvKind = iota
	// EvRecv: a tracked array was received.
	EvRecv
	// EvSendRaw / EvRecvRaw: untracked point-to-point transfers
	// (collective internals and scalar control traffic). Never chunked.
	EvSendRaw
	EvRecvRaw
	// EvStore / EvLoad: one tracked element access.
	EvStore
	EvLoad
	// EvCollSend / EvCollRecv mark a tracked array passing through a
	// collective (contribution and result, respectively). They carry no
	// transfer themselves — the collective's raw point-to-point events do
	// — but they delimit production/consumption intervals for the
	// pattern analyzer (how Table II reports Alya).
	EvCollSend
	EvCollRecv
	// EvISend: a tracked array was sent with a non-blocking send.
	EvISend
	// EvIRecvPost / EvRecvWait: a tracked non-blocking receive was
	// posted / waited. Handle links the pair.
	EvIRecvPost
	EvRecvWait
)

// Event is one instrumentation record. T is the rank's virtual time, in
// instructions, when the event occurred.
type Event struct {
	T     int64
	Kind  EvKind
	Arr   int // array id, -1 for raw transfers
	Idx   int // element index (EvStore/EvLoad)
	Peer  int // partner rank (comm events)
	Tag   int
	Elems int // element count of the transfer or marked buffer
	// Handle pairs EvIRecvPost with its EvRecvWait (rank-local).
	Handle int
}

// Log is the complete event stream of one rank.
type Log struct {
	Rank       int
	Events     []Event
	FinalClock int64
	// ArrayLens maps array id to element count, for analysis.
	ArrayLens []int
	// ArrayNames maps array id to the name given at NewArray.
	ArrayNames []string
}

// Run is the output of tracing one application execution.
//
// A Run is immutable once Trace returns: the trace builders only read the
// event logs, so one Run may back any number of concurrent replays and
// variant builds. Derive re-parameterized variants with WithChunks (or
// WithConfig) instead of mutating Cfg in place — a shallow struct copy
// (`v := *run`) would alias Logs and its event slices, and writing through
// either copy would race with readers of the other.
type Run struct {
	Name     string
	NumRanks int
	Cfg      Config
	Logs     []*Log // indexed by rank; treat as immutable
}

// WithConfig returns a copy-on-write variant of the run whose traces are
// built under cfg. The variant owns its Run header and Logs slice (so
// appends or element writes through one cannot reach the other) while the
// per-rank logs — immutable after Trace — stay shared, keeping variant
// creation O(ranks) instead of O(events).
func (r *Run) WithConfig(cfg Config) *Run {
	v := *r
	v.Cfg = cfg
	v.Logs = append([]*Log(nil), r.Logs...)
	return &v
}

// WithChunks returns a copy-on-write variant of the run whose overlapped
// traces split each message into k chunks. This is the safe spelling of
// the chunk-count ablation's per-point rebuild; see WithConfig for the
// sharing contract.
func (r *Run) WithChunks(k int) *Run {
	cfg := r.Cfg
	cfg.Chunks = k
	return r.WithConfig(cfg)
}

// Proc is the instrumented per-rank endpoint handed to application kernels.
type Proc struct {
	mp       *mpi.Proc
	cfg      Config
	clock    int64
	events   []Event
	arrays   []*Array
	seq      int // collective sequence counter
	irecvSeq int // tracked non-blocking receive handles
}

// Trace executes app once per rank under instrumentation and returns the
// collected run.
func Trace(name string, ranks int, cfg Config, app func(p *Proc)) (*Run, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	run := &Run{Name: name, NumRanks: ranks, Cfg: cfg, Logs: make([]*Log, ranks)}
	var mu sync.Mutex
	err := mpi.Run(ranks, func(mp *mpi.Proc) {
		p := &Proc{mp: mp, cfg: cfg}
		app(p)
		log := &Log{
			Rank:       mp.Rank(),
			Events:     p.events,
			FinalClock: p.clock,
			ArrayLens:  make([]int, len(p.arrays)),
			ArrayNames: make([]string, len(p.arrays)),
		}
		for i, a := range p.arrays {
			log.ArrayLens[i] = len(a.data)
			log.ArrayNames[i] = a.name
		}
		mu.Lock()
		run.Logs[mp.Rank()] = log
		mu.Unlock()
	})
	if err != nil {
		return nil, err
	}
	return run, nil
}

// Rank returns the rank id.
func (p *Proc) Rank() int { return p.mp.Rank() }

// Size returns the world size.
func (p *Proc) Size() int { return p.mp.Size() }

// Clock returns the rank's current virtual time in instructions.
func (p *Proc) Clock() int64 { return p.clock }

// Compute advances the virtual clock by n executed instructions. Negative
// n is ignored.
func (p *Proc) Compute(n int64) {
	if n > 0 {
		p.clock += n
	}
}

func (p *Proc) record(e Event) {
	e.T = p.clock
	p.events = append(p.events, e)
}

// ---------------------------------------------------------------------------
// Tracked arrays

// Array is a tracked communication buffer. Every Load and Store is recorded
// with its virtual time, exactly the information the paper's tracer
// extracts by intercepting memory accesses.
type Array struct {
	p    *Proc
	id   int
	name string
	data []float64
}

// NewArray allocates a tracked buffer of n elements.
func (p *Proc) NewArray(name string, n int) *Array {
	a := &Array{p: p, id: len(p.arrays), name: name, data: make([]float64, n)}
	p.arrays = append(p.arrays, a)
	return a
}

// Len returns the element count.
func (a *Array) Len() int { return len(a.data) }

// Name returns the name given at creation.
func (a *Array) Name() string { return a.name }

// Load reads element i, recording the access and charging LoadCost
// instructions.
func (a *Array) Load(i int) float64 {
	a.p.clock += a.p.cfg.LoadCost
	a.p.record(Event{Kind: EvLoad, Arr: a.id, Idx: i})
	return a.data[i]
}

// Store writes element i, recording the access and charging StoreCost
// instructions.
func (a *Array) Store(i int, v float64) {
	a.p.clock += a.p.cfg.StoreCost
	a.p.record(Event{Kind: EvStore, Arr: a.id, Idx: i})
	a.data[i] = v
}

// Data exposes the raw storage without instrumentation. Use it only for
// initialization and verification; accesses through Data are invisible to
// the tracer, like accesses outside the traced region in the paper's tool.
func (a *Array) Data() []float64 { return a.data }

// ---------------------------------------------------------------------------
// Instrumented communication

// Send transfers the whole tracked array to dst (blocking at the MPI
// level). In the overlapped traces this message is the unit that gets
// chunked. Tracked sends must be received by Recv into a tracked array of
// the same length on the destination rank.
func (p *Proc) Send(dst, tag int, a *Array) {
	p.record(Event{Kind: EvSend, Arr: a.id, Peer: dst, Tag: tag, Elems: len(a.data)})
	p.mp.Send(dst, tag, a.data)
}

// Recv receives a tracked array previously sent with Send.
func (p *Proc) Recv(a *Array, src, tag int) {
	p.record(Event{Kind: EvRecv, Arr: a.id, Peer: src, Tag: tag, Elems: len(a.data)})
	p.mp.Recv(a.data, src, tag)
}

// Isend transfers the whole tracked array to dst without blocking, the way
// halo-exchange codes post their sends. In the overlapped traces it is
// chunked exactly like a blocking Send. The transport is buffered, so no
// completion wait is needed (double buffering is assumed throughout, as in
// the paper).
func (p *Proc) Isend(dst, tag int, a *Array) {
	p.record(Event{Kind: EvISend, Arr: a.id, Peer: dst, Tag: tag, Elems: len(a.data)})
	p.mp.Send(dst, tag, a.data)
}

// RecvReq is an outstanding tracked non-blocking receive.
type RecvReq struct {
	p      *Proc
	req    *mpi.Request
	arr    *Array
	handle int
	waited bool
}

// Irecv posts a tracked non-blocking receive. The returned request must be
// waited exactly once before the buffer is read or reposted.
func (p *Proc) Irecv(a *Array, src, tag int) *RecvReq {
	p.irecvSeq++
	h := p.irecvSeq
	p.record(Event{Kind: EvIRecvPost, Arr: a.id, Peer: src, Tag: tag, Elems: len(a.data), Handle: h})
	return &RecvReq{p: p, req: p.mp.Irecv(a.data, src, tag), arr: a, handle: h}
}

// Wait blocks until the receive completed. Waiting twice is a no-op.
func (r *RecvReq) Wait() {
	if r.waited {
		return
	}
	r.waited = true
	r.p.record(Event{Kind: EvRecvWait, Arr: r.arr.id, Handle: r.handle})
	r.req.Wait()
}

// SendRaw transfers an untracked buffer: traced as a plain (unchunkable)
// message. Collectives use this path internally.
func (p *Proc) SendRaw(dst, tag int, data []float64) {
	p.record(Event{Kind: EvSendRaw, Arr: -1, Peer: dst, Tag: tag, Elems: len(data)})
	p.mp.Send(dst, tag, data)
}

// RecvRaw receives an untracked buffer.
func (p *Proc) RecvRaw(buf []float64, src, tag int) {
	p.record(Event{Kind: EvRecvRaw, Arr: -1, Peer: src, Tag: tag, Elems: len(buf)})
	p.mp.Recv(buf, src, tag)
}

// rawAdapter exposes the instrumented raw path as mpi.PointToPoint so the
// mpi collectives decompose into traced transfers.
type rawAdapter struct{ p *Proc }

func (r rawAdapter) Rank() int                         { return r.p.Rank() }
func (r rawAdapter) Size() int                         { return r.p.Size() }
func (r rawAdapter) Send(dst, tag int, data []float64) { r.p.SendRaw(dst, tag, data) }
func (r rawAdapter) Recv(buf []float64, src, tag int)  { r.p.RecvRaw(buf, src, tag) }

var _ mpi.PointToPoint = rawAdapter{}

func (p *Proc) nextSeq() int {
	s := p.seq
	p.seq += 2
	return s
}

// Barrier blocks until all ranks reach it; the dissemination exchanges are
// traced as raw transfers.
func (p *Proc) Barrier() { mpi.Barrier(rawAdapter{p}, p.nextSeq()) }

// Bcast broadcasts buf from root through instrumented transfers.
func (p *Proc) Bcast(buf []float64, root int) { mpi.Bcast(rawAdapter{p}, buf, root, p.nextSeq()) }

// Reduce reduces into out on root through instrumented transfers.
func (p *Proc) Reduce(buf, out []float64, op mpi.Op, root int) {
	mpi.Reduce(rawAdapter{p}, buf, out, op, root, p.nextSeq())
}

// Allreduce reduces into out on all ranks through instrumented transfers.
func (p *Proc) Allreduce(buf, out []float64, op mpi.Op) {
	mpi.Allreduce(rawAdapter{p}, buf, out, op, p.nextSeq())
}

// Gather gathers into out on root through instrumented transfers.
func (p *Proc) Gather(buf, out []float64, root int) {
	mpi.Gather(rawAdapter{p}, buf, out, root, p.nextSeq())
}

// Allgather gathers into out on all ranks through instrumented transfers.
func (p *Proc) Allgather(buf, out []float64) { mpi.Allgather(rawAdapter{p}, buf, out, p.nextSeq()) }

// Alltoall exchanges personalized blocks through instrumented transfers.
func (p *Proc) Alltoall(buf, out []float64, m int) {
	mpi.Alltoall(rawAdapter{p}, buf, out, m, p.nextSeq())
}

// ReduceScatter reduces and scatters through instrumented transfers.
func (p *Proc) ReduceScatter(buf, out []float64, op mpi.Op) {
	mpi.ReduceScatter(rawAdapter{p}, buf, out, op, p.nextSeq())
}

// AllreduceTracked performs an Allreduce whose contribution and result
// buffers are tracked arrays. The transfer itself is raw (reduction
// messages cannot be chunked — the Alya case), but EvCollSend/EvCollRecv
// markers delimit the production interval of `in` and the consumption
// interval of `out` for the pattern analyzer.
func (p *Proc) AllreduceTracked(in, out *Array, op mpi.Op) {
	p.record(Event{Kind: EvCollSend, Arr: in.id, Peer: -1, Elems: len(in.data)})
	p.record(Event{Kind: EvCollRecv, Arr: out.id, Peer: -1, Elems: len(out.data)})
	mpi.Allreduce(rawAdapter{p}, in.data, out.data, op, p.nextSeq())
}

// ---------------------------------------------------------------------------
// Chunk geometry

// ChunkCount returns how many chunks an n-element message splits into under
// this config: never more than n, never more than cfg.Chunks, and
// one-element messages stay whole.
func (c Config) ChunkCount(n int) int {
	if n <= 1 {
		return 1
	}
	if n < c.Chunks {
		return n
	}
	return c.Chunks
}

// ChunkBounds returns the half-open element range [lo, hi) of chunk k out
// of kTotal for an n-element message. Chunks differ in size by at most one
// element.
func ChunkBounds(n, kTotal, k int) (lo, hi int) {
	lo = k * n / kTotal
	hi = (k + 1) * n / kTotal
	return lo, hi
}

// ChunkBytes returns the wire size of chunk k.
func (c Config) ChunkBytes(n, kTotal, k int) int64 {
	lo, hi := ChunkBounds(n, kTotal, k)
	return int64(hi-lo) * c.ElemBytes
}

// ChunkOf returns which chunk element idx belongs to.
func ChunkOf(n, kTotal, idx int) int {
	// Inverse of ChunkBounds: chunk k holds [k*n/kTotal, (k+1)*n/kTotal).
	k := (idx*kTotal + kTotal - 1) / n
	for k > 0 && idx < k*n/kTotal {
		k--
	}
	for (k+1)*n/kTotal <= idx {
		k++
	}
	return k
}
