package pop

import (
	"testing"

	"repro/internal/pattern"
	"repro/internal/tracer"
)

func traceIt(t *testing.T, ranks int, cfg Config) *tracer.Run {
	t.Helper()
	run, err := tracer.Trace("pop", ranks, tracer.DefaultConfig(), Kernel(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestTracesValidateOnVariousGrids(t *testing.T) {
	for _, ranks := range []int{1, 2, 4, 6, 9, 16} {
		run := traceIt(t, ranks, DefaultConfig(ranks))
		for _, tr := range []interface{ Validate() error }{run.BaseTrace(), run.OverlapReal(), run.OverlapIdeal()} {
			if err := tr.Validate(); err != nil {
				t.Fatalf("ranks=%d: %v", ranks, err)
			}
		}
	}
}

func TestDegenerateGridsSkipMissingDimensions(t *testing.T) {
	// 1xN grids must not self-send on the east/west axis.
	cfg := DefaultConfig(2) // gridFor(2) = 1x2
	if cfg.Px != 1 || cfg.Py != 2 {
		t.Fatalf("unexpected grid %dx%d", cfg.Px, cfg.Py)
	}
	run := traceIt(t, 2, cfg)
	for _, e := range run.Logs[0].Events {
		if e.Kind == tracer.EvISend && e.Peer == 0 {
			t.Fatalf("self send: %+v", e)
		}
	}
}

func TestTorusNeighbourTraffic(t *testing.T) {
	cfg := DefaultConfig(4) // 2x2 torus
	run := traceIt(t, 4, cfg)
	tr := run.BaseTrace()
	// On a 2x2 torus every rank exchanges with exactly 2 distinct
	// neighbours (east==west, north==south) plus the reduction tree.
	vols := tr.PairVolumes()
	seen := map[[2]int]bool{}
	for _, pv := range vols {
		seen[[2]int{pv.Src, pv.Dst}] = true
	}
	// Halo traffic from rank 0: east/west both to rank 1, north/south to
	// rank 2.
	if !seen[[2]int{0, 1}] || !seen[[2]int{0, 2}] {
		t.Fatalf("missing 2x2 torus neighbours in %v", vols)
	}
}

func TestHaloCountsAndReduction(t *testing.T) {
	cfg := DefaultConfig(16)
	run := traceIt(t, 16, cfg)
	var isends, raws int
	for _, e := range run.Logs[0].Events {
		switch e.Kind {
		case tracer.EvISend:
			isends++
		case tracer.EvSendRaw:
			raws++
		}
	}
	if isends != 4*cfg.Iterations {
		t.Fatalf("halo isends=%d, want %d", isends, 4*cfg.Iterations)
	}
	if raws == 0 {
		t.Fatal("the barotropic Allreduce must produce raw transfers")
	}
}

func TestPOPPatterns(t *testing.T) {
	run := traceIt(t, 16, DefaultConfig(16))
	an := pattern.Analyze(run)
	p := an.AppProduction
	if p.FirstElem < 85 {
		t.Errorf("FirstElem=%.1f%%, halos pack late (paper: 95.5%%)", p.FirstElem)
	}
	c := an.AppConsumption
	if c.Nothing < 1 || c.Nothing > 10 {
		t.Errorf("Nothing=%.1f%%, want the small independent prefix (paper: 3.5%%)", c.Nothing)
	}
	if c.Half-c.Nothing > 5 {
		t.Errorf("unpack must be tight: nothing=%.2f half=%.2f", c.Nothing, c.Half)
	}
}
