package service

import (
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Request-path instruments. The histogram vecs are labelled by mux
// pattern ("POST /v1/scenarios"), so every route gets its own latency
// distribution without per-path registration.
var (
	mHTTPRequests = telemetry.Default().CounterVec("http_requests_total", "HTTP requests served, by route pattern and status code", "endpoint", "code")
	mHTTPSeconds  = telemetry.Default().HistogramVec("http_request_seconds", "HTTP request latency, by route pattern", 1e-9, "endpoint")
	mQueueWait    = telemetry.Default().Histogram("service_queue_wait_seconds", "delay between job admission and execution-slot acquisition", 1e-9)
	mStoreCorrupt = telemetry.Default().Counter("store_corrupt_artifacts_total", "disk-tier artifacts that failed digest verification and were quarantined (*.corrupt)")
)

// Manager-state instruments: gauges and counters that read the live
// manager at scrape time instead of being incremented inline. Funcs are
// registered once per process and indirect through activeManager — the
// handler most recently built, i.e. the one the daemon runs — so tests
// building many handlers neither panic nor double-register.
var (
	metricsOnce   sync.Once
	activeManager atomic.Pointer[Manager]
)

func publishMetrics(m *Manager) {
	activeManager.Store(m)
	metricsOnce.Do(func() {
		reg := telemetry.Default()
		read := func(get func(*Manager) float64) func() float64 {
			return func() float64 {
				mgr := activeManager.Load()
				if mgr == nil {
					return 0
				}
				return get(mgr)
			}
		}
		reg.CounterFunc("service_result_cache_hits_total", "spec-level result cache hits", read(func(m *Manager) float64 {
			h, _ := m.cache.Counters()
			return float64(h)
		}))
		reg.CounterFunc("service_result_cache_misses_total", "spec-level result cache misses", read(func(m *Manager) float64 {
			_, miss := m.cache.Counters()
			return float64(miss)
		}))
		reg.CounterFunc("service_point_cache_hits_total", "point-level scenario cache hits (partial-grid resume)", read(func(m *Manager) float64 {
			if m.points == nil {
				return 0
			}
			h, _ := m.points.Counters()
			return float64(h)
		}))
		reg.CounterFunc("service_point_cache_misses_total", "point-level scenario cache misses", read(func(m *Manager) float64 {
			if m.points == nil {
				return 0
			}
			_, miss := m.points.Counters()
			return float64(miss)
		}))
		reg.CounterFunc("service_deduped_total", "submissions attached to an identical in-flight job (singleflight)", read(func(m *Manager) float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(m.deduped)
		}))
		reg.CounterFunc("service_rejected_total", "submissions refused with queue-full (HTTP 429)", read(func(m *Manager) float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(m.rejected)
		}))
		reg.GaugeFunc("service_queue_depth", "jobs admitted but waiting for an execution slot", read(func(m *Manager) float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(m.queued)
		}))
		reg.GaugeFunc("service_stored_traces", "traces resident in the artifact store", read(func(m *Manager) float64 {
			traces, _ := m.store.Counts()
			return float64(traces)
		}))
		reg.GaugeFunc("service_stored_platforms", "platforms resident in the artifact store", read(func(m *Manager) float64 {
			_, platforms := m.store.Counts()
			return float64(platforms)
		}))
		reg.GaugeFunc("service_uptime_seconds", "seconds since the serving manager started", read(func(m *Manager) float64 {
			return m.UptimeSec()
		}))
	})
}
