package service

// Cluster glue: how one job manager becomes a member of a DHT-sharded
// simulation cluster (internal/cluster). The division of labor:
//
//   - the cluster.Node owns membership (routing table, liveness, drain
//     politeness) and the replicated blob store;
//   - this file owns the simulation semantics on top of it: whole specs
//     forward to the node that owns their digest (cross-node
//     singleflight — a hot spec simulates exactly once cluster-wide),
//     scenario grids fan individual points out to their owner nodes,
//     freshly computed points replicate back into the DHT as a
//     cooperative cache, and uploaded artifacts (traces, platforms)
//     replicate so any member can serve a spec that references them.
//
// Execution arriving over the cluster (the node's Executor) runs inline
// on the serving goroutine and never waits for a manager slot. Slots
// are only held by locally submitted jobs, so no cycle of forwarded
// work can deadlock the slot gates of two saturated nodes — remote work
// is bounded by the engine's own semaphore instead.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strconv"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ExecKindScenario labels cluster exec payloads carrying a JSON
// ScenarioRequest — both whole forwarded specs and pinned single-point
// fan-out requests travel under it.
const ExecKindScenario = "scenario"

// Blob kinds stored in the DHT. Everything is keyed by content digest,
// so replicas are self-verifying in principle; the kind label routes
// decoding.
const (
	// BlobTrace is a trace in the binary codec (trace.WriteBinary).
	BlobTrace = "trace"
	// BlobPlatform is a platform JSON document.
	BlobPlatform = "platform"
	// BlobPoint is a JSON core.ScenarioPoint keyed by its point digest.
	BlobPoint = "point"
)

// clusterFanout bounds how many grid points one scenario prefetches
// from the cluster concurrently (lookups and remote executions alike).
const clusterFanout = 4

// clusterReplicators bounds the background replication goroutines; the
// queue beyond it applies backpressure to PutPoint callers only in the
// sense that spawning waits, never that results are dropped.
const clusterReplicators = 4

// replicateTimeout bounds one background replication; content
// addressing makes a timed-out replica safe to simply lose.
const replicateTimeout = 30 * time.Second

// Service-level cluster instruments, beside the node's own cluster_rpcs
// families (internal/cluster/telemetry.go).
var (
	mClusterPointHits = telemetry.Default().Counter("cluster_remote_point_hits_total",
		"grid points served from the cluster's cooperative point cache instead of simulating")
	mClusterFanout = telemetry.Default().CounterVec("cluster_point_fanout_total",
		"grid points fanned out to their remote owner node, by result", "result")
	mClusterForwards = telemetry.Default().CounterVec("cluster_forwarded_jobs_total",
		"whole specs forwarded to their owner node, by result (fallback = executed locally after a forward failure)", "result")
	mClusterExecs = telemetry.Default().CounterVec("cluster_execs_served_total",
		"cluster exec requests served for peers, by kind", "kind")
	mClusterReplications = telemetry.Default().CounterVec("cluster_artifact_replications_total",
		"artifacts pushed into the DHT's replica sets, by kind", "kind")
	mClusterFetches = telemetry.Default().CounterVec("cluster_artifact_fetches_total",
		"artifacts fetched from the cluster to satisfy a forwarded spec, by kind and result", "kind", "result")
)

// attachCluster wires the manager into a cluster node: the node routes
// exec RPCs here, and the manager routes owned-elsewhere work there.
func (m *Manager) attachCluster(n *cluster.Node) {
	m.node = n
	m.replSem = make(chan struct{}, clusterReplicators)
	n.SetExecutor(m.clusterExecutor())
}

// Cluster returns the attached cluster node, or nil when the manager
// serves standalone.
func (m *Manager) Cluster() *cluster.Node { return m.node }

// ---------------------------------------------------------------------------
// Inbound: serving peers

// clusterExecutor is the node's Executor: peers send ScenarioRequests
// here (whole forwarded specs and pinned single points alike), and the
// manager runs them with full singleflight/cache semantics.
func (m *Manager) clusterExecutor() cluster.Executor {
	return func(ctx context.Context, kind string, payload []byte) ([]byte, error) {
		if kind != ExecKindScenario {
			return nil, fmt.Errorf("service: unknown cluster exec kind %q", kind)
		}
		mClusterExecs.With(kind).Inc()
		var req ScenarioRequest
		dec := json.NewDecoder(bytes.NewReader(payload))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return nil, fmt.Errorf("service: cluster exec payload: %w", err)
		}
		m.fetchScenarioArtifacts(ctx, req)
		return m.runInline(ctx, req)
	}
}

// runInline executes a request on the calling goroutine with the
// manager's usual identity semantics — singleflight attach, result
// cache, cache fill before inflight detach — but without the slot
// gate. Cluster-forwarded work must not wait for slots: a slot-holding
// job on node A may be waiting on node B whose slot-holding job waits
// on A, and with one worker per node that cycle would deadlock. The
// engine's own semaphore still bounds actual simulation parallelism.
func (m *Manager) runInline(ctx context.Context, req Request) ([]byte, error) {
	t, err := req.prepare(m)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if j, ok := m.inflight[t.key]; ok {
		m.deduped++
		m.mu.Unlock()
		return j.Wait(ctx)
	}
	if b, ok := m.cache.Get(t.key); ok {
		m.mu.Unlock()
		return b, nil
	}
	if m.draining {
		// Peers fall back to computing locally, so refusing here never
		// strands anyone — while accepting would admit new computation to
		// a manager trying to flush.
		m.mu.Unlock()
		return nil, ErrDraining
	}
	j := m.newJobLocked(t, false)
	m.inflight[t.key] = j
	m.mu.Unlock()
	// Cancel the job if the serving RPC is abandoned; singleflight
	// attachers share the outcome either way, as with local jobs.
	stop := context.AfterFunc(ctx, j.cancel)
	defer stop()
	j.markRunning()
	out, err := t.run(j.ctx, m)
	var payload []byte
	if err == nil {
		payload, err = json.Marshal(out)
	}
	if err == nil {
		m.cache.Put(t.key, payload)
	}
	m.mu.Lock()
	delete(m.inflight, t.key)
	m.mu.Unlock()
	j.complete(payload, err)
	return payload, err
}

// fetchScenarioArtifacts read-throughs any artifacts a peer's spec
// references by digest but this store lacks — the replica set holds
// them if the uploading node replicated successfully. Best effort: a
// miss surfaces later as the usual unknown-digest error.
func (m *Manager) fetchScenarioArtifacts(ctx context.Context, req ScenarioRequest) {
	if m.node == nil {
		return
	}
	if req.Trace != "" && !m.store.ContainsTrace(req.Trace) {
		if b, kind, ok := m.node.Get(ctx, req.Trace); ok && kind == BlobTrace {
			if tr, err := decodeTrace(b); err == nil {
				if _, err := m.store.PutTrace(tr); err == nil {
					mClusterFetches.With(BlobTrace, "ok").Inc()
				} else {
					mClusterFetches.With(BlobTrace, "error").Inc()
				}
			} else {
				mClusterFetches.With(BlobTrace, "error").Inc()
			}
		} else {
			mClusterFetches.With(BlobTrace, "miss").Inc()
		}
	}
	if req.Platform != nil && req.Platform.Digest != "" {
		if _, err := m.store.GetPlatform(req.Platform.Digest); err != nil {
			if b, kind, ok := m.node.Get(ctx, req.Platform.Digest); ok && kind == BlobPlatform {
				if p, err := network.ReadAnyPlatform(bytes.NewReader(b)); err == nil {
					if _, err := m.store.PutPlatform(p); err == nil {
						mClusterFetches.With(BlobPlatform, "ok").Inc()
					} else {
						mClusterFetches.With(BlobPlatform, "error").Inc()
					}
				} else {
					mClusterFetches.With(BlobPlatform, "error").Inc()
				}
			} else {
				mClusterFetches.With(BlobPlatform, "miss").Inc()
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Outbound: forwarding whole specs

// forwardPlan is a decided forward: where the spec's owner lives and
// the serialized request to send there.
type forwardPlan struct {
	owner   cluster.Contact
	payload []byte
}

// forwardTarget decides whether a freshly admitted job should forward
// to a remote owner node instead of running here. Only scenario
// requests forward (the gridded workhorse with a faithful wire form);
// the legacy per-kind sweeps run wherever they land.
func (m *Manager) forwardTarget(req Request, t *task, forward bool) (forwardPlan, bool) {
	if !forward || m.node == nil || t.kind != KindScenario {
		return forwardPlan{}, false
	}
	sr, ok := req.(ScenarioRequest)
	if !ok {
		if p, isPtr := req.(*ScenarioRequest); isPtr {
			sr, ok = *p, true
		}
	}
	if !ok {
		return forwardPlan{}, false
	}
	owner := m.node.Owner(t.key)
	if owner.ID == m.node.Self().ID {
		return forwardPlan{}, false
	}
	payload, err := json.Marshal(sr)
	if err != nil {
		return forwardPlan{}, false
	}
	return forwardPlan{owner: owner, payload: payload}, true
}

// runForwarded drives a job whose spec another node owns: execute it
// there (holding no local slot — the owner's engine does the work) and
// serve the returned bytes verbatim, so responses are byte-identical
// wherever the spec lands. Any forward failure falls back to the
// ordinary local run; the forward is an optimization for cluster-wide
// exactly-once, never a requirement for availability.
func (m *Manager) runForwarded(j *Job, t *task, plan forwardPlan) {
	j.markRunning()
	out, err := m.node.Exec(j.ctx, plan.owner, ExecKindScenario, plan.payload)
	if err != nil {
		mClusterForwards.With("fallback").Inc()
		m.log.LogAttrs(context.Background(), slog.LevelWarn, "cluster forward failed, running locally",
			slog.String("job_id", j.ID()),
			slog.String("spec_digest", t.key),
			slog.String("owner", plan.owner.Addr),
			slog.String("error", err.Error()))
		m.run(j, t)
		return
	}
	mClusterForwards.With("ok").Inc()
	m.unqueue()
	m.cache.Put(t.key, out)
	m.mu.Lock()
	delete(m.inflight, t.key)
	m.mu.Unlock()
	j.complete(out, nil)
	m.log.LogAttrs(context.Background(), slog.LevelInfo, "job served by owner node",
		slog.String("job_id", j.ID()),
		slog.String("spec_digest", t.key),
		slog.String("owner", plan.owner.Addr))
}

// ---------------------------------------------------------------------------
// Point fan-out

// clusterPrefetchPoints runs before a scenario grid executes: for every
// grid point this node does not own, it tries the cooperative cache
// and then asks the point's owner to simulate it, feeding hits into the
// local point cache so the planner schedules no engine work for them.
// Self-owned points are left for the grid run (recursion terminates
// because a pinned single-point spec's digest IS its point digest, so
// its owner always computes it locally). Everything here is best
// effort: any failure leaves the point to the local planner.
func (m *Manager) clusterPrefetchPoints(ctx context.Context, r ScenarioRequest, sc *core.Scenario) {
	if m.node == nil || m.points == nil {
		return
	}
	keys, err := sc.PointKeys()
	if err != nil || len(keys) <= 1 {
		// A single-point spec is routed whole by the spec forwarder;
		// fanning it out again would be a cycle.
		return
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, clusterFanout)
	for _, k := range keys {
		if _, ok := m.points.Get(k.Digest); ok {
			continue
		}
		// A replicated copy already on this node is free to use whether or
		// not we own the point.
		if pt, ok := m.decodeCachedPoint(k.Digest); ok {
			m.points.Put(k.Digest, pt)
			mClusterPointHits.Inc()
			continue
		}
		owner := m.node.Owner(k.Digest)
		if owner.ID == m.node.Self().ID {
			continue // ours: the grid run computes it
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(k core.PointKey, owner cluster.Contact) {
			defer wg.Done()
			defer func() { <-sem }()
			m.fetchRemotePoint(ctx, r, k, owner)
		}(k, owner)
	}
	wg.Wait()
}

// decodeCachedPoint reads a point blob already replicated to this node.
func (m *Manager) decodeCachedPoint(digest string) (core.ScenarioPoint, bool) {
	b, kind, ok := m.node.GetCached(digest)
	if !ok || kind != BlobPoint {
		return core.ScenarioPoint{}, false
	}
	var pt core.ScenarioPoint
	if err := json.Unmarshal(b, &pt); err != nil {
		return core.ScenarioPoint{}, false
	}
	return pt, true
}

// fetchRemotePoint resolves one remote-owned grid point: cluster
// lookup first (someone may have computed it already), then an exec on
// its owner with the pinned single-point spec.
func (m *Manager) fetchRemotePoint(ctx context.Context, r ScenarioRequest, k core.PointKey, owner cluster.Contact) {
	if b, kind, ok := m.node.Get(ctx, k.Digest); ok && kind == BlobPoint {
		var pt core.ScenarioPoint
		if json.Unmarshal(b, &pt) == nil {
			m.points.Put(k.Digest, pt)
			mClusterPointHits.Inc()
			return
		}
	}
	preq, err := pinnedScenarioRequest(r, k.Coords)
	if err != nil {
		mClusterFanout.With("error").Inc()
		return
	}
	payload, err := json.Marshal(preq)
	if err != nil {
		mClusterFanout.With("error").Inc()
		return
	}
	out, err := m.node.Exec(ctx, owner, ExecKindScenario, payload)
	if err != nil {
		mClusterFanout.With("error").Inc()
		m.log.LogAttrs(context.Background(), slog.LevelDebug, "point fan-out failed, computing locally",
			slog.String("point_digest", k.Digest),
			slog.String("owner", owner.Addr),
			slog.String("error", err.Error()))
		return
	}
	var res core.ScenarioResult
	if err := json.Unmarshal(out, &res); err != nil || len(res.Points) != 1 || res.Points[0].Digest != k.Digest {
		// A result that is not exactly our point means the owner and we
		// disagree about the spec — recompute locally rather than cache a
		// wrong row.
		mClusterFanout.With("error").Inc()
		return
	}
	// The owner's PutPoint already replicated the blob; feed only the
	// local planner cache here.
	m.points.Put(k.Digest, res.Points[0])
	mClusterFanout.With("ok").Inc()
}

// pinnedScenarioRequest narrows a scenario request to one grid point:
// every axis becomes a singleton holding that point's coordinate. The
// coordinate labels are the canonical spellings (core.Axis.labels), so
// parsing them back yields a spec whose digest is exactly the point
// digest — the invariant that makes point keys route consistently.
func pinnedScenarioRequest(r ScenarioRequest, coords []core.Coord) (ScenarioRequest, error) {
	axes := make([]core.Axis, len(coords))
	for i, c := range coords {
		ax := core.Axis{Kind: c.Axis}
		switch c.Axis {
		case core.AxisBandwidth, core.AxisLatency, core.AxisDerate, core.AxisJitter:
			v, err := strconv.ParseFloat(c.Value, 64)
			if err != nil {
				return ScenarioRequest{}, fmt.Errorf("service: pin axis %q: %w", c.Axis, err)
			}
			ax.Values = []float64{v}
		case core.AxisMapping:
			ax.Mappings = []string{c.Value}
		default:
			n, err := strconv.Atoi(c.Value)
			if err != nil {
				return ScenarioRequest{}, fmt.Errorf("service: pin axis %q: %w", c.Axis, err)
			}
			ax.Counts = []int{n}
		}
		axes[i] = ax
	}
	r.Axes = axes
	return r, nil
}

// ---------------------------------------------------------------------------
// Replication

// clusterPointStore wraps the planner-facing point cache: every freshly
// computed point also replicates (asynchronously, bounded) into the
// DHT, which is what makes a rerun against a different node
// cache-served instead of re-simulated.
type clusterPointStore struct {
	scenarioPointStore
	m *Manager
}

func (s clusterPointStore) PutPoint(d string, pt core.ScenarioPoint) {
	s.scenarioPointStore.PutPoint(d, pt)
	if b, err := json.Marshal(pt); err == nil {
		s.m.replicateAsync(d, BlobPoint, b)
	}
}

// ReplicateTrace pushes a stored trace into its DHT replica set (called
// after uploads). No-op without a cluster or when the replica set
// already holds it locally.
func (m *Manager) ReplicateTrace(digest string, tr *trace.Trace) {
	if m.node == nil || m.node.Has(digest) {
		return
	}
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		return
	}
	m.replicateAsync(digest, BlobTrace, buf.Bytes())
}

// replicatePlatform pushes a resolved platform into the DHT so peers
// can serve specs referencing its digest. Platforms are a few hundred
// bytes; replicating on every resolve is cheap and idempotent.
func (m *Manager) replicatePlatform(digest string, p network.Platform) {
	if m.node == nil || m.node.Has(digest) {
		return
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		return
	}
	m.replicateAsync(digest, BlobPlatform, buf.Bytes())
}

// replicateAsync stores a blob to its key's replica set in the
// background, bounded by clusterReplicators. Drain flushes the
// outstanding set — a departing node never strands results it promised
// to the cooperative cache.
func (m *Manager) replicateAsync(key, kind string, value []byte) {
	if m.node == nil {
		return
	}
	m.replWG.Add(1)
	go func() {
		defer m.replWG.Done()
		// The semaphore bounds in-flight stores without blocking the
		// computing goroutine that handed us the blob.
		m.replSem <- struct{}{}
		defer func() { <-m.replSem }()
		ctx, cancel := context.WithTimeout(context.Background(), replicateTimeout)
		defer cancel()
		if m.node.Store(ctx, key, kind, value) > 0 {
			mClusterReplications.With(kind).Inc()
		}
	}()
}

// flushReplications waits for outstanding background replications.
func (m *Manager) flushReplications(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		m.replWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}
