package client

import (
	"context"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"
)

// Retry defaults. BaseWait seeds the exponential backoff and MaxWait
// caps a single sleep; both are per-attempt, the whole retry budget is
// additionally bounded by the request context.
const (
	DefaultRetryBaseWait = 100 * time.Millisecond
	DefaultRetryMaxWait  = 2 * time.Second
)

// RetryPolicy controls the client's transparent retries. Every request
// the daemon answers is keyed by content digest and served through the
// result cache and singleflight table, so replaying a POST is safe: a
// retry either attaches to the surviving computation or hits the cache.
// Retries fire on transport errors (connection refused while the daemon
// restarts, reset mid-flight) and on 429 Too Many Requests, 502 Bad
// Gateway, and 503 Service Unavailable — the backpressure and drain
// signals — waiting between attempts with exponential backoff and full
// jitter, never less than the server's Retry-After. The zero value
// disables retries (one attempt).
type RetryPolicy struct {
	// Retries is how many times a failed request is reissued; 0 means a
	// single attempt.
	Retries int
	// BaseWait seeds the backoff (DefaultRetryBaseWait when 0). Attempt
	// n sleeps a uniformly random duration in [0, min(BaseWait·2ⁿ,
	// MaxWait)] — full jitter, so a herd of clients retrying against one
	// restarted daemon spreads out instead of stampeding.
	BaseWait time.Duration
	// MaxWait caps one backoff sleep (DefaultRetryMaxWait when 0).
	MaxWait time.Duration
}

// wait picks the sleep before retry attempt (attempt counts from 0) —
// full jitter over the exponential ceiling, floored at the server's
// Retry-After when one arrived.
func (p RetryPolicy) wait(attempt int, retryAfter time.Duration) time.Duration {
	base := p.BaseWait
	if base <= 0 {
		base = DefaultRetryBaseWait
	}
	maxw := p.MaxWait
	if maxw <= 0 {
		maxw = DefaultRetryMaxWait
	}
	ceil := base
	for i := 0; i < attempt && ceil < maxw; i++ {
		ceil *= 2
	}
	if ceil > maxw {
		ceil = maxw
	}
	w := time.Duration(rand.Int64N(int64(ceil) + 1))
	if w < retryAfter {
		w = retryAfter
	}
	return w
}

// retryableStatus reports whether the status is a back-off-and-retry
// signal rather than a real answer.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable:
		return true
	}
	return false
}

// parseRetryAfter decodes a Retry-After header's delay-seconds form
// (the only form the daemon emits); 0 when absent or unparseable.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// sleepCtx sleeps d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
