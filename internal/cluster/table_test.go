package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestKClosestMatchesBruteForce is the property test for lookup
// ordering: against random tables and targets, KClosest must agree
// with an independent brute-force sort by XOR distance.
func TestKClosestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		self := randID(rng)
		tbl := NewRoutingTable(self, DefaultK, nil)
		n := 1 + rng.Intn(60)
		var all []Contact
		for i := 0; i < n; i++ {
			c := Contact{ID: randID(rng), Addr: fmt.Sprintf("n%d", i)}
			tbl.Update(c)
			all = append(all, c)
		}
		// The table may hold fewer than n contacts (full buckets drop
		// newcomers with a nil pinger); brute-force over what it kept.
		kept := tbl.Contacts()
		target := randID(rng)
		want := append([]Contact(nil), kept...)
		sort.Slice(want, func(i, j int) bool {
			return CompareDistance(target, want[i].ID, want[j].ID) < 0
		})
		k := 1 + rng.Intn(DefaultK)
		if len(want) > k {
			want = want[:k]
		}
		got := tbl.KClosest(target, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: KClosest returned %d contacts, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				t.Fatalf("trial %d: position %d: got %s want %s", trial, i, got[i].ID, want[i].ID)
			}
		}
		// Ordering invariant: distances are non-decreasing.
		for i := 1; i < len(got); i++ {
			if Closer(target, got[i].ID, got[i-1].ID) {
				t.Fatalf("trial %d: KClosest not sorted at %d", trial, i)
			}
		}
	}
}

// sameBucketContacts builds contacts that all land in self's bucket 0
// (highest bit differs), so bucket-capacity behavior is observable.
func sameBucketContacts(n int) (ID, []Contact) {
	var self ID // zero
	out := make([]Contact, n)
	for i := range out {
		var id ID
		id[0] = 0x80
		id[IDBytes-1] = byte(i + 1)
		id[IDBytes-2] = byte((i + 1) >> 8)
		out[i] = Contact{ID: id, Addr: fmt.Sprintf("peer-%d", i)}
	}
	return self, out
}

// TestBucketEvictsDeadOldest: a full bucket whose least-recently-seen
// member fails its liveness probe evicts it in the newcomer's favor.
func TestBucketEvictsDeadOldest(t *testing.T) {
	self, cs := sameBucketContacts(DefaultK + 1)
	tbl := NewRoutingTable(self, DefaultK, func(Contact) bool { return false })
	for _, c := range cs[:DefaultK] {
		tbl.Update(c)
	}
	if tbl.Len() != DefaultK {
		t.Fatalf("table has %d contacts, want %d", tbl.Len(), DefaultK)
	}
	tbl.Update(cs[DefaultK]) // bucket full; cs[0] is least recently seen and dead
	got := tbl.Contacts()
	if len(got) != DefaultK {
		t.Fatalf("table has %d contacts after eviction, want %d", len(got), DefaultK)
	}
	has := func(id ID) bool {
		for _, c := range got {
			if c.ID == id {
				return true
			}
		}
		return false
	}
	if has(cs[0].ID) {
		t.Fatal("dead least-recently-seen contact survived")
	}
	if !has(cs[DefaultK].ID) {
		t.Fatal("newcomer not admitted after eviction")
	}
}

// TestBucketKeepsAliveOldest: the classic Kademlia preference — a full
// bucket whose oldest member still answers drops the newcomer, because
// node uptime predicts future uptime.
func TestBucketKeepsAliveOldest(t *testing.T) {
	pinged := 0
	self, cs := sameBucketContacts(DefaultK + 1)
	tbl := NewRoutingTable(self, DefaultK, func(c Contact) bool {
		pinged++
		if c.ID != cs[0].ID {
			t.Fatalf("probed %s, want least-recently-seen %s", c.ID, cs[0].ID)
		}
		return true
	})
	for _, c := range cs[:DefaultK] {
		tbl.Update(c)
	}
	tbl.Update(cs[DefaultK])
	if pinged != 1 {
		t.Fatalf("pinged %d times, want 1", pinged)
	}
	got := tbl.Contacts()
	for _, c := range got {
		if c.ID == cs[DefaultK].ID {
			t.Fatal("newcomer displaced a live contact")
		}
	}
	// The survivor moved to the most-recently-seen end: the next
	// overflow probes cs[1], not cs[0].
	var probed Contact
	tbl.ping = func(c Contact) bool { probed = c; return true }
	tbl.Update(cs[DefaultK])
	if probed.ID != cs[1].ID {
		t.Fatalf("second overflow probed %s, want %s (LRS rotation)", probed.ID, cs[1].ID)
	}
}

// TestUpdateRefreshesKnownContact: re-seeing a contact moves it to the
// most-recently-seen end and refreshes its address without growing the
// bucket.
func TestUpdateRefreshesKnownContact(t *testing.T) {
	self, cs := sameBucketContacts(DefaultK + 1)
	tbl := NewRoutingTable(self, DefaultK, nil)
	for _, c := range cs[:DefaultK] {
		tbl.Update(c)
	}
	moved := cs[0]
	moved.Addr = "peer-0-new-addr"
	tbl.Update(moved)
	if tbl.Len() != DefaultK {
		t.Fatalf("table has %d contacts, want %d", tbl.Len(), DefaultK)
	}
	for _, c := range tbl.Contacts() {
		if c.ID == moved.ID && c.Addr != "peer-0-new-addr" {
			t.Fatalf("address not refreshed: %s", c.Addr)
		}
	}
	// Overflow the bucket: the probe must now hit cs[1] (the refresh
	// rotated cs[0] to the most-recently-seen end).
	var probed Contact
	tbl.ping = func(c Contact) bool { probed = c; return true }
	tbl.Update(cs[DefaultK])
	if probed.ID != cs[1].ID {
		t.Fatalf("probe hit %s, want %s", probed.ID, cs[1].ID)
	}
}

// TestTableIgnoresSelfAndZero: the table never stores its own node or
// malformed contacts.
func TestTableIgnoresSelfAndZero(t *testing.T) {
	self := NodeID("self")
	tbl := NewRoutingTable(self, DefaultK, nil)
	tbl.Update(Contact{ID: self, Addr: "me"})
	tbl.Update(Contact{Addr: "zero-id"})
	tbl.Update(Contact{ID: NodeID("x")}) // empty addr
	if tbl.Len() != 0 {
		t.Fatalf("table stored %d invalid contacts", tbl.Len())
	}
}

func TestRemove(t *testing.T) {
	self, cs := sameBucketContacts(3)
	tbl := NewRoutingTable(self, DefaultK, nil)
	for _, c := range cs {
		tbl.Update(c)
	}
	tbl.Remove(cs[1].ID)
	if tbl.Len() != 2 {
		t.Fatalf("table has %d contacts after remove, want 2", tbl.Len())
	}
	for _, c := range tbl.Contacts() {
		if c.ID == cs[1].ID {
			t.Fatal("removed contact still present")
		}
	}
	tbl.Remove(randID(rand.New(rand.NewSource(1)))) // unknown: no-op
	if tbl.Len() != 2 {
		t.Fatal("removing an unknown contact changed the table")
	}
}
