package plot

import (
	"math"
	"strings"
	"testing"
)

func TestWriteScatterSVG(t *testing.T) {
	pts := []ScatterPoint{{0, 0}, {0.5, 10}, {1, 20}}
	var sb strings.Builder
	if err := WriteScatterSVG(&sb, "Fig 5a <test>", "time", "element", pts); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(out, "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	if strings.Count(out, "<circle") != 3 {
		t.Fatalf("circles=%d, want 3", strings.Count(out, "<circle"))
	}
	if !strings.Contains(out, "Fig 5a &lt;test&gt;") {
		t.Fatal("title not escaped")
	}
}

func TestWriteBarsSVG(t *testing.T) {
	groups := []BarGroup{
		{Label: "cg", Values: []float64{1.18, 1.17}},
		{Label: "sweep3d", Values: []float64{1.05, math.Inf(1)}},
	}
	var sb strings.Builder
	if err := WriteBarsSVG(&sb, "Fig 6a", "speedup", []string{"real", "ideal"}, groups); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// 3 solid bars + 1 hatched inf bar + 2 legend swatches.
	if got := strings.Count(out, "<rect"); got < 6 {
		t.Fatalf("rects=%d, want >=6", got)
	}
	if !strings.Contains(out, "stroke-dasharray") {
		t.Fatal("infinite value not drawn hatched")
	}
	if !strings.Contains(out, ">inf<") {
		t.Fatal("infinite value not labelled")
	}
	for _, want := range []string{"cg", "sweep3d", "real", "ideal"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestWriteLinesSVG(t *testing.T) {
	lines := []Line{
		{Label: "base", X: []float64{10, 100, 1000}, Y: []float64{3, 2, 1}},
		{Label: "overlap", X: []float64{10, 100, 1000}, Y: []float64{2, 1.5, 1}},
	}
	var sb strings.Builder
	if err := WriteLinesSVG(&sb, "sweep", "MB/s", "finish", lines); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "<path") != 2 {
		t.Fatalf("paths=%d, want 2", strings.Count(out, "<path"))
	}
	if !strings.Contains(out, "base") || !strings.Contains(out, "overlap") {
		t.Fatal("legend missing")
	}
}

func TestWriteLinesSVGEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteLinesSVG(&sb, "empty", "x", "y", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(sb.String(), "</svg>") {
		t.Fatal("empty chart must still be a valid document")
	}
}

func TestScatterDegenerateRanges(t *testing.T) {
	// Points collapsing to one value must not divide by zero.
	var sb strings.Builder
	if err := WriteScatterSVG(&sb, "t", "x", "y", []ScatterPoint{{0.5, 0}, {0.5, 0}}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "NaN") {
		t.Fatal("NaN leaked into SVG coordinates")
	}
}
