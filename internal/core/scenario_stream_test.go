package core

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/engine"
)

// memPointCache is a PointCache over a plain map, for resume tests.
type memPointCache struct {
	m    map[string]ScenarioPoint
	hits int
}

func newMemPointCache() *memPointCache { return &memPointCache{m: map[string]ScenarioPoint{}} }

func (c *memPointCache) GetPoint(d string) (ScenarioPoint, bool) {
	pt, ok := c.m[d]
	if ok {
		c.hits++
	}
	return pt, ok
}

func (c *memPointCache) PutPoint(d string, pt ScenarioPoint) { c.m[d] = pt }

// assembleStreamJSON splices a streamed header and point frames into the
// batch wire form the way the service does: the header object minus its
// closing brace, a points array of the marshalled points, done.
func assembleStreamJSON(t *testing.T, hdr *ScenarioHeader, pts [][]byte) []byte {
	t.Helper()
	hj, err := json.Marshal(hdr)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	b.Write(hj[:len(hj)-1])
	b.WriteString(`,"points":[`)
	for i, p := range pts {
		if i > 0 {
			b.WriteByte(',')
		}
		b.Write(p)
	}
	b.WriteString(`]}`)
	return b.Bytes()
}

// TestScenarioStreamMatchesBatch is the refactor's core property: for
// every output kind, the streamed point sequence concatenates to the
// batch result's wire JSON byte-for-byte, across different engine
// widths.
func TestScenarioStreamMatchesBatch(t *testing.T) {
	const ranks = 4
	specs := map[string]Scenario{
		"traffic": {
			App: scenarioApp(), Ranks: ranks, Platform: scenarioPlatform(t, ranks),
			Flavors: []Flavor{FlavorBase, FlavorReal},
			Axes:    []Axis{BandwidthAxis(125, 500), MappingAxis("block", "rr")},
			Output:  OutputTraffic,
		},
		"finish": {
			App: scenarioApp(), Ranks: ranks, Platform: scenarioPlatform(t, ranks),
			Axes:   []Axis{ChunksAxis(2, 4)},
			Output: OutputFinish,
		},
		"whatif": {
			App: scenarioApp(), Ranks: ranks, Platform: scenarioPlatform(t, ranks),
			Axes:   []Axis{BandwidthAxis(125, 500)},
			Output: OutputWhatIf,
		},
		"report": {
			App: scenarioApp(), Ranks: ranks, Platform: scenarioPlatform(t, ranks),
			Axes:   []Axis{BandwidthAxis(125, 500)},
			Output: OutputReport,
		},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			batch, err := RunScenario(context.Background(), engine.New(4), spec)
			if err != nil {
				t.Fatal(err)
			}
			batchJSON, err := json.Marshal(batch)
			if err != nil {
				t.Fatal(err)
			}
			var pts [][]byte
			hdr, err := RunScenarioStream(context.Background(), engine.New(2), spec, func(pt ScenarioPoint) error {
				b, err := json.Marshal(pt)
				if err != nil {
					return err
				}
				pts = append(pts, b)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if hdr.GridPoints != len(pts) {
				t.Fatalf("header says %d grid points, stream yielded %d", hdr.GridPoints, len(pts))
			}
			if got := assembleStreamJSON(t, hdr, pts); !bytes.Equal(got, batchJSON) {
				t.Fatalf("stream concatenation differs from batch wire JSON:\n%s\n%s", got, batchJSON)
			}
		})
	}
}

// TestScenarioStreamFormatIncremental: feeding the stream through a
// ScenarioPrinter reproduces the batch Format byte-for-byte.
func TestScenarioStreamFormatIncremental(t *testing.T) {
	const ranks = 4
	spec := Scenario{
		App: scenarioApp(), Ranks: ranks, Platform: scenarioPlatform(t, ranks),
		Axes:   []Axis{BandwidthAxis(125, 500), MappingAxis("block", "rr")},
		Output: OutputTraffic,
	}
	batch, err := RunScenario(context.Background(), engine.New(2), spec)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	var p *ScenarioPrinter
	_, err = RunScenarioStream(context.Background(), engine.New(2), spec, func(pt ScenarioPoint) error {
		if p == nil {
			hdr, err := spec.Header()
			if err != nil {
				return err
			}
			if p, err = NewScenarioPrinter(&b, hdr); err != nil {
				return err
			}
		}
		return p.Point(pt)
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != batch.Format() {
		t.Fatalf("incremental rendering differs from batch Format:\n%q\n%q", b.String(), batch.Format())
	}
}

// TestScenarioStreamCancel: cancelling mid-grid stops the stream
// promptly — no point is yielded after the cancellation, and the
// context's error comes back.
func TestScenarioStreamCancel(t *testing.T) {
	plat := scenarioPlatform(t, 8)
	spec := Scenario{
		Trace: testScenarioTrace(), Platform: plat,
		Axes:   []Axis{BandwidthAxis(125, 250, 500, 1000)},
		Output: OutputFinish,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	yields := 0
	_, err := RunScenarioStream(ctx, engine.New(2), spec, func(pt ScenarioPoint) error {
		yields++
		cancel()
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if yields != 1 {
		t.Fatalf("%d points yielded after a cancel on the first, want 1", yields)
	}
}

// TestScenarioZipAxes: zipped axes advance together as one grid
// dimension instead of entering the cross product — the golden
// expansion check — and zip participates in the spec digest.
func TestScenarioZipAxes(t *testing.T) {
	plat := scenarioPlatform(t, 8)
	zipped := Scenario{
		Trace: testScenarioTrace(), Platform: plat,
		Axes: []Axis{
			{Kind: AxisBandwidth, Values: []float64{125, 250}, Zip: "net"},
			{Kind: AxisLatency, Values: []float64{1e-6, 2e-6}, Zip: "net"},
			MappingAxis("block", "rr"),
		},
		Output: OutputFinish,
	}
	if n := zipped.GridSize(); n != 4 {
		t.Fatalf("zipped grid has %d points, want 4 (2 zipped × 2 mappings)", n)
	}
	res, err := RunScenario(context.Background(), engine.New(2), zipped)
	if err != nil {
		t.Fatal(err)
	}
	want := [][3]string{
		{"125", "1e-06", "block"},
		{"125", "1e-06", "rr"},
		{"250", "2e-06", "block"},
		{"250", "2e-06", "rr"},
	}
	if len(res.Points) != len(want) {
		t.Fatalf("%d points, want %d", len(res.Points), len(want))
	}
	for i, pt := range res.Points {
		for j, v := range want[i] {
			if pt.Coords[j].Value != v {
				t.Fatalf("point %d coords %v, want %v", i, pt.Coords, want[i])
			}
		}
	}

	cross := zipped
	cross.Axes = []Axis{
		BandwidthAxis(125, 250),
		LatencyAxis(1e-6, 2e-6),
		MappingAxis("block", "rr"),
	}
	if cross.GridSize() != 8 {
		t.Fatalf("cross grid has %d points, want 8", cross.GridSize())
	}
	dz, err := zipped.Digest()
	if err != nil {
		t.Fatal(err)
	}
	dc, err := cross.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if dz == dc {
		t.Fatal("zipped and cross-product specs share a digest")
	}

	// A zip that doesn't constrain the grid — a single-member group —
	// canonicalizes away: both spellings are the same study.
	solo := cross
	solo.Axes = []Axis{
		{Kind: AxisBandwidth, Values: []float64{125, 250}, Zip: "solo"},
		LatencyAxis(1e-6, 2e-6),
		MappingAxis("block", "rr"),
	}
	ds, err := solo.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if ds != dc {
		t.Fatalf("singleton zip group digests differently from plain axis: %s vs %s", ds, dc)
	}

	// Members of one group must have equal lengths.
	bad := zipped
	bad.Axes = []Axis{
		{Kind: AxisBandwidth, Values: []float64{125}, Zip: "net"},
		{Kind: AxisLatency, Values: []float64{1e-6, 2e-6}, Zip: "net"},
	}
	if _, err := RunScenario(context.Background(), nil, bad); err == nil || !strings.Contains(err.Error(), "mixes axis lengths") {
		t.Fatalf("unequal zip lengths: err %v, want length mismatch", err)
	}
}

// TestScenarioPointDigests: each streamed point carries the spec digest
// of the single-point scenario pinning its coordinate — the key
// overlapping grids meet at — so pinning the spec by hand reproduces
// it.
func TestScenarioPointDigests(t *testing.T) {
	plat := scenarioPlatform(t, 8)
	spec := Scenario{
		Trace: testScenarioTrace(), Platform: plat,
		Axes:   []Axis{BandwidthAxis(125, 250), MappingAxis("block", "rr")},
		Output: OutputFinish,
	}
	res, err := RunScenario(context.Background(), engine.New(2), spec)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i, pt := range res.Points {
		if pt.Digest == "" {
			t.Fatalf("point %d has no digest", i)
		}
		if seen[pt.Digest] {
			t.Fatalf("point %d reuses digest %s", i, pt.Digest)
		}
		seen[pt.Digest] = true
	}
	pinned := spec
	pinned.Axes = []Axis{BandwidthAxis(250), MappingAxis("block")}
	d, err := pinned.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d != res.Points[2].Digest {
		t.Fatalf("pinned spec digest %s, point carries %s", d, res.Points[2].Digest)
	}
}

// TestScenarioPointCacheResume: a spec whose grid overlaps an earlier
// run's reuses the cached points and simulates only the gap, and a full
// rerun simulates nothing — observable through engine job counters —
// while the results stay byte-identical to a cold run.
func TestScenarioPointCacheResume(t *testing.T) {
	plat := scenarioPlatform(t, 8)
	base := Scenario{
		Trace: testScenarioTrace(), Platform: plat,
		Axes:   []Axis{BandwidthAxis(125, 250)},
		Output: OutputFinish,
	}
	cache := newMemPointCache()
	eng := engine.New(2)
	sub := base
	sub.PointCache = cache
	if _, err := RunScenario(context.Background(), eng, sub); err != nil {
		t.Fatal(err)
	}

	sup := base
	sup.Axes = []Axis{BandwidthAxis(125, 250, 500)}
	sup.PointCache = cache
	before := eng.Stats().Started
	got, err := RunScenario(context.Background(), eng, sup)
	if err != nil {
		t.Fatal(err)
	}
	if jobs := eng.Stats().Started - before; jobs != 1 {
		t.Fatalf("superset run started %d engine jobs, want 1 (only the 500 MB/s gap)", jobs)
	}

	cold := base
	cold.Axes = sup.Axes
	want, err := RunScenario(context.Background(), engine.New(2), cold)
	if err != nil {
		t.Fatal(err)
	}
	gb, _ := json.Marshal(got)
	wb, _ := json.Marshal(want)
	if !bytes.Equal(gb, wb) {
		t.Fatalf("resumed result differs from cold run:\n%s\n%s", gb, wb)
	}

	// Full rerun: everything cached, zero new simulations.
	before = eng.Stats().Started
	again, err := RunScenario(context.Background(), eng, sup)
	if err != nil {
		t.Fatal(err)
	}
	if jobs := eng.Stats().Started - before; jobs != 0 {
		t.Fatalf("fully cached rerun started %d engine jobs, want 0", jobs)
	}
	ab, _ := json.Marshal(again)
	if !bytes.Equal(ab, wb) {
		t.Fatalf("cached rerun differs from cold run:\n%s\n%s", ab, wb)
	}
}
