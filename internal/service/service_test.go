// Tests of the service subsystem through its public face: the HTTP
// handler behind an httptest server, spoken to through the client
// package — the same path production traffic takes. Run with -race (CI
// does): the singleflight and cache paths are exactly where data races
// would live.
package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/network"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/tracer"
)

// newService spins up a full stack: engine, manager, handler, httptest
// server, client.
func newService(t *testing.T, workers int) (*service.Manager, *client.Client) {
	t.Helper()
	eng := engine.New(workers)
	mgr, err := service.NewManager(service.Options{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewHandler(mgr))
	t.Cleanup(srv.Close)
	return mgr, client.New(srv.URL, srv.Client())
}

// TestEndToEndCachedByteIdentical is the acceptance path: the same
// analyze request twice returns byte-identical reports, the second served
// from cache with no new engine jobs, and the report matches what the
// core pipeline (the cmd/experiments code path) computes directly.
func TestEndToEndCachedByteIdentical(t *testing.T) {
	mgr, cl := newService(t, 2)
	ctx := context.Background()
	req := service.AnalyzeRequest{App: "cg", Ranks: 4}

	first, err := cl.AnalyzeRaw(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := mgr.Engine().Stats()

	second, err := cl.AnalyzeRaw(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("responses differ:\n%s\n%s", first, second)
	}
	afterSecond := mgr.Engine().Stats()
	if afterSecond.Started != afterFirst.Started {
		t.Fatalf("cached request spawned engine jobs: %d -> %d", afterFirst.Started, afterSecond.Started)
	}
	met := mgr.MetricsSnapshot()
	if met.CacheHits == 0 {
		t.Fatalf("no cache hit recorded: %+v", met)
	}

	// The served report matches the direct core pipeline — the same
	// entry point cmd/experiments drives — for the same app, platform,
	// and flavours, down to the marshalled bytes.
	entry, _ := apps.ByName("cg", 4)
	plat := network.TestbedFor("cg", 4).Platform()
	rep, err := core.AnalyzeOn(ctx, mgr.Engine(), entry.App, 4, plat, tracer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wire, err := rep.Wire()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, direct) {
		t.Fatalf("service report differs from the core pipeline:\nservice: %s\ndirect:  %s", first, direct)
	}
	// And the Fig. 6a line the experiments CLI would print is identical.
	var served core.WireReport
	if err := json.Unmarshal(first, &served); err != nil {
		t.Fatal(err)
	}
	cliLine := fmt.Sprintf("%-12s %14.3f %14.3f", "cg", rep.SpeedupReal, rep.SpeedupIdeal)
	servedLine := fmt.Sprintf("%-12s %14.3f %14.3f", served.App, served.SpeedupReal, served.SpeedupIdeal)
	if cliLine != servedLine {
		t.Fatalf("CLI line mismatch:\n%q\n%q", cliLine, servedLine)
	}
}

// TestSingleflightIdenticalInFlight fires N identical requests
// concurrently and proves the computation ran once: every later request
// either joined the in-flight job (deduped) or hit the result cache, and
// all N responses are byte-identical.
func TestSingleflightIdenticalInFlight(t *testing.T) {
	mgr, cl := newService(t, 2)
	const n = 8
	req := service.AnalyzeRequest{App: "bt", Ranks: 4}

	responses := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i], errs[i] = cl.AnalyzeRaw(context.Background(), req)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(responses[0], responses[i]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
	met := mgr.MetricsSnapshot()
	if met.Deduped+met.CacheHits != n-1 {
		t.Fatalf("deduped=%d + hits=%d != %d: %d computations ran",
			met.Deduped, met.CacheHits, n-1, 1+n-1-int(met.Deduped)-int(met.CacheHits))
	}
	if met.CacheMisses != 1 {
		t.Fatalf("cache misses = %d, want exactly 1", met.CacheMisses)
	}
}

// TestDistinctConcurrentRequestsDeterministic runs M distinct in-flight
// requests and checks they all complete, each deterministically: a rerun
// of every request returns the same bytes.
func TestDistinctConcurrentRequestsDeterministic(t *testing.T) {
	_, cl := newService(t, 4)
	reqs := []service.AnalyzeRequest{
		{App: "cg", Ranks: 4},
		{App: "cg", Ranks: 8},
		{App: "bt", Ranks: 4},
		{App: "sweep3d", Ranks: 4},
		{App: "cg", Ranks: 4, Chunks: 8},
		{App: "cg", Ranks: 4, Platform: &service.PlatformSpec{Preset: "marenostrum-4x"}},
	}
	firstPass := make([][]byte, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r service.AnalyzeRequest) {
			defer wg.Done()
			firstPass[i], errs[i] = cl.AnalyzeRaw(context.Background(), r)
		}(i, r)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d (%+v): %v", i, reqs[i], err)
		}
	}
	// Distinct requests produce distinct results…
	for i := 1; i < len(firstPass); i++ {
		if bytes.Equal(firstPass[0], firstPass[i]) {
			t.Fatalf("distinct requests 0 and %d returned identical reports", i)
		}
	}
	// …and each rerun reproduces its bytes exactly.
	for i, r := range reqs {
		again, err := cl.AnalyzeRaw(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(firstPass[i], again) {
			t.Fatalf("request %d not deterministic", i)
		}
	}
}

// TestPlatformSpellingsShareCache checks content addressing does its job:
// naming a platform by preset and uploading the identical platform inline
// collapse to one cache entry.
func TestPlatformSpellingsShareCache(t *testing.T) {
	mgr, cl := newService(t, 2)
	ctx := context.Background()

	byPreset, err := cl.AnalyzeRaw(ctx, service.AnalyzeRequest{
		App: "cg", Ranks: 4,
		Platform: &service.PlatformSpec{Preset: "marenostrum-4x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Spell the same platform as an inline JSON document.
	plat, err := network.PlatformPreset("marenostrum-4x", 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := plat.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	before := mgr.Engine().Stats()
	inline, err := cl.AnalyzeRaw(ctx, service.AnalyzeRequest{
		App: "cg", Ranks: 4,
		Platform: &service.PlatformSpec{Inline: json.RawMessage(buf.Bytes())},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(byPreset, inline) {
		t.Fatal("preset and inline spellings of one platform returned different reports")
	}
	if after := mgr.Engine().Stats(); after.Started != before.Started {
		t.Fatal("inline spelling re-simulated instead of hitting the cache")
	}
}

// TestAsyncJobLifecycle drives the submit/poll path and the job listing.
func TestAsyncJobLifecycle(t *testing.T) {
	_, cl := newService(t, 2)
	ctx := context.Background()
	st, err := cl.AnalyzeAsync(ctx, service.AnalyzeRequest{App: "cg", Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatalf("no job id: %+v", st)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err = cl.Job(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == service.JobDone {
			break
		}
		if st.State == service.JobFailed || st.State == service.JobCancelled {
			t.Fatalf("job ended %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(st.Result) == 0 {
		t.Fatal("done job carries no result")
	}
	var rep core.WireReport
	if err := json.Unmarshal(st.Result, &rep); err != nil {
		t.Fatalf("result not a wire report: %v", err)
	}
	if rep.App != "cg" || len(rep.Flavors) != 3 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	jobs, err := cl.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) == 0 {
		t.Fatal("job listing empty")
	}
	if err := cl.Cancel(ctx, "job-99999999"); err == nil {
		t.Fatal("cancelling an unknown job succeeded")
	}
}

// TestTraceUploadAndBandwidthSweep uploads a traced run's base trace and
// sweeps it across bandwidths — the replay-without-retracing workflow.
func TestTraceUploadAndBandwidthSweep(t *testing.T) {
	_, cl := newService(t, 2)
	ctx := context.Background()

	entry, _ := apps.ByName("cg", 4)
	run, err := tracer.Trace("cg", 4, tracer.DefaultConfig(), entry.App.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	tr := run.BaseTrace()
	info, err := cl.UploadTrace(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	if info.Ranks != 4 || info.Name != "cg" {
		t.Fatalf("upload summary %+v", info)
	}

	// Round trip: the stored trace digests to its address.
	back, err := cl.DownloadTrace(ctx, info.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRanks != tr.NumRanks || len(back.Ranks[0].Records) != len(tr.Ranks[0].Records) {
		t.Fatal("download mangled the trace")
	}

	sweep, err := cl.SweepBandwidth(ctx, service.BandwidthSweepRequest{
		Trace:      info.Digest,
		Bandwidths: []float64{50, 250, 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Points) != 3 || sweep.TraceDigest != info.Digest {
		t.Fatalf("sweep %+v", sweep)
	}
	if !(sweep.Points[0].FinishSec >= sweep.Points[1].FinishSec && sweep.Points[1].FinishSec >= sweep.Points[2].FinishSec) {
		t.Fatalf("finish time not monotone in bandwidth: %+v", sweep.Points)
	}
}

// TestWhatIfAndMappingSweep exercises the two remaining job kinds end to
// end.
func TestWhatIfAndMappingSweep(t *testing.T) {
	_, cl := newService(t, 2)
	ctx := context.Background()

	wi, err := cl.WhatIf(ctx, service.WhatIfRequest{App: "cg", Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if wi.App != "cg" || len(wi.Buffers) == 0 {
		t.Fatalf("what-if %+v", wi)
	}

	ms, err := cl.SweepMapping(ctx, service.MappingSweepRequest{
		App: "cg", Ranks: 8,
		Platform: &service.PlatformSpec{Preset: "marenostrum-4x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Points) != 2 || ms.Points[0].Mapping != "block" || ms.Points[1].Mapping != "rr" {
		t.Fatalf("mapping sweep %+v", ms)
	}
	if ms.Points[0].IntraBytes == 0 {
		t.Fatal("block mapping on a 4-way-node platform moved no intra-node bytes")
	}
}

// TestMappingSpellingsShareCache checks that "block" and its explicit
// node-list spelling collapse to one cache key (placement, not spelling,
// is what the key addresses).
func TestMappingSpellingsShareCache(t *testing.T) {
	mgr, cl := newService(t, 2)
	ctx := context.Background()
	if _, err := cl.SweepMapping(ctx, service.MappingSweepRequest{
		App: "cg", Ranks: 8,
		Platform: &service.PlatformSpec{Preset: "marenostrum-4x"},
		Mappings: []string{"block"},
	}); err != nil {
		t.Fatal(err)
	}
	before := mgr.Engine().Stats()
	// marenostrum-4x at 8 ranks packs 4 ranks per node: block = 0,0,0,0,1,1,1,1.
	if _, err := cl.SweepMapping(ctx, service.MappingSweepRequest{
		App: "cg", Ranks: 8,
		Platform: &service.PlatformSpec{Preset: "marenostrum-4x"},
		Mappings: []string{"0,0,0,0,1,1,1,1"},
	}); err != nil {
		t.Fatal(err)
	}
	if after := mgr.Engine().Stats(); after.Started != before.Started {
		t.Fatal("explicit spelling of block re-simulated instead of hitting the cache")
	}
}

// TestRequestValidation checks the daemon rejects malformed work without
// touching the engine.
func TestRequestValidation(t *testing.T) {
	mgr, cl := newService(t, 1)
	ctx := context.Background()
	before := mgr.Engine().Stats()
	cases := []service.Request{
		service.AnalyzeRequest{App: "nonesuch", Ranks: 4},
		service.AnalyzeRequest{App: "cg", Ranks: 0},
		service.AnalyzeRequest{App: "cg", Ranks: 4, Chunks: -1},
		service.AnalyzeRequest{App: "cg", Ranks: 4, Platform: &service.PlatformSpec{Preset: "nonesuch"}},
		service.AnalyzeRequest{App: "cg", Ranks: 4, Platform: &service.PlatformSpec{Preset: "ideal", Digest: "sha256:abc"}},
		service.AnalyzeRequest{App: "cg", Ranks: 4, Platform: &service.PlatformSpec{Digest: "../../../etc/passwd"}},
		service.BandwidthSweepRequest{App: "cg", Ranks: 4},
		service.BandwidthSweepRequest{App: "cg", Ranks: 4, Bandwidths: []float64{-5}},
		service.BandwidthSweepRequest{Bandwidths: []float64{100}},
		// Trace mode must reject the app-mode knobs instead of silently
		// ignoring them.
		service.BandwidthSweepRequest{Trace: "sha256:" + strings.Repeat("0", 64), Flavor: "base", Bandwidths: []float64{100}},
		service.MappingSweepRequest{App: "cg", Ranks: 4, Mappings: []string{"zigzag?"}},
	}
	for i, req := range cases {
		var err error
		switch r := req.(type) {
		case service.AnalyzeRequest:
			_, err = cl.Analyze(ctx, r)
		case service.BandwidthSweepRequest:
			_, err = cl.SweepBandwidth(ctx, r)
		case service.MappingSweepRequest:
			_, err = cl.SweepMapping(ctx, r)
		}
		if err == nil {
			t.Errorf("case %d (%+v) accepted", i, req)
		}
	}
	if after := mgr.Engine().Stats(); after.Started != before.Started {
		t.Fatalf("invalid requests spawned engine jobs: %d -> %d", before.Started, after.Started)
	}
}
