package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOld = `goos: linux
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimCompiledReplay/flat-degenerate         	     100	    600000 ns/op	      4800 records/replay	       0 B/op	       0 allocs/op
BenchmarkSimCompiledReplay/flat-degenerate         	     100	    580000 ns/op	      4800 records/replay	       0 B/op	       0 allocs/op
BenchmarkScenarioStream/batch-4                    	     100	   5000000 ns/op	        24.00 points	  296980 B/op	     702 allocs/op
BenchmarkOther/ignored                             	     100	    100000 ns/op
PASS
`

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchMinAndProcsSuffix(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOld))
	if err != nil {
		t.Fatal(err)
	}
	// Min across repetitions.
	if got["BenchmarkSimCompiledReplay/flat-degenerate"] != 580000 {
		t.Fatalf("min ns/op = %v, want 580000", got["BenchmarkSimCompiledReplay/flat-degenerate"])
	}
	// -4 procs suffix stripped.
	if got["BenchmarkScenarioStream/batch"] != 5000000 {
		t.Fatalf("procs suffix not stripped: %v", got)
	}
}

func TestGatePassAndFail(t *testing.T) {
	old := writeFile(t, "old.txt", sampleOld)

	// Within threshold (+5%): passes. The unmatched BenchmarkOther
	// regression must not trip the gate.
	pass := writeFile(t, "new-pass.txt", strings.NewReplacer(
		"580000", "580000", "600000", "609000", "5000000", "5200000", "100000", "900000",
	).Replace(sampleOld))
	if err := run(old, pass, "", "", "BenchmarkSimCompiledReplay|BenchmarkScenarioStream", 10, os.Stderr); err != nil {
		t.Fatalf("gate failed on a within-threshold run: %v", err)
	}

	// +25% on a gated benchmark: fails.
	fail := writeFile(t, "new-fail.txt", strings.NewReplacer(
		"600000", "750000", "580000", "725000",
	).Replace(sampleOld))
	if err := run(old, fail, "", "", "BenchmarkSimCompiledReplay|BenchmarkScenarioStream", 10, os.Stderr); err == nil {
		t.Fatal("gate passed a +25% regression")
	}
}

func TestGateAgainstCommittedBaseline(t *testing.T) {
	// The committed multicore baseline must itself be readable and
	// contain the gated benchmarks — this is what keeps the JSON schema
	// and the gate in sync.
	rows, err := readBaselineJSON("../../BENCH_sim_multicore.json", "gomaxprocs=1")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"BenchmarkSimCompiledReplay/flat-degenerate",
		"BenchmarkSimCompiledReplay/fatnode-shards2",
		"BenchmarkScenarioStream/stream",
	} {
		if rows[name] <= 0 {
			t.Fatalf("baseline missing %s (got %v)", name, rows[name])
		}
	}
}

func TestGateRejectsEmptyMatch(t *testing.T) {
	old := writeFile(t, "old.txt", sampleOld)
	cur := writeFile(t, "new.txt", sampleOld)
	if err := run(old, cur, "", "", "BenchmarkNothingMatchesThis", 10, os.Stderr); err == nil {
		t.Fatal("gate passed with zero matched benchmarks")
	}
}
