// Scenario API: one declarative spec, one planner, every study. This
// example runs the cross-product study the bespoke sweep families could
// not express — bandwidth × mapping — as a single core.Scenario: does
// buying a faster interconnect help, and does the answer depend on rank
// placement?
//
// Run with:
//
//	go run ./examples/scenario
//
// The same study as a service request (scenario.json in this directory):
//
//	simd -addr :8080 &
//	curl -X POST localhost:8080/v1/scenarios -d @examples/scenario/scenario.json
//
// or locally through any CLI's -scenario flag:
//
//	go run ./cmd/experiments -scenario examples/scenario/scenario.json
//
// Expected shape of the output: under block placement the CG exchange
// stays on shared memory, so the interconnect bandwidth column doesn't
// matter — all three bandwidths finish alike. Under round-robin every
// byte crosses the interconnect: the base execution speeds up with
// bandwidth, and the overlapped execution hides most of the remaining
// cost. Placement, bandwidth, and overlap are one coupled design space —
// which is why the grid is one spec, not three nested scripts.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/network"
)

func main() {
	const ranks = 16
	entry, _ := apps.ByName("cg", ranks)
	platform, err := network.PlatformPreset("marenostrum-4x", ranks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform: %s\n\n", platform.Describe())

	spec := core.Scenario{
		App:      entry.App,
		Ranks:    ranks,
		Platform: platform,
		Flavors:  []core.Flavor{core.FlavorBase, core.FlavorReal},
		Axes: []core.Axis{
			core.BandwidthAxis(125, 250, 1000),
			core.MappingAxis("block", "rr"),
		},
		Output: core.OutputTraffic,
	}

	// Results stream: the planner yields grid points in deterministic
	// row-major order as simulations finish, and the printer renders each
	// row the moment it arrives — same bytes a batch RunScenario +
	// Format() would print, without materializing the grid first.
	hdr, err := spec.Header()
	if err != nil {
		log.Fatal(err)
	}
	printer, err := core.NewScenarioPrinter(os.Stdout, hdr)
	if err != nil {
		log.Fatal(err)
	}
	var points []core.ScenarioPoint
	if _, err := core.RunScenarioStream(context.Background(), nil, spec, func(pt core.ScenarioPoint) error {
		points = append(points, pt)
		return printer.Point(pt)
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspec digest %s — the same spec POSTed to /v1/scenarios is cached under this key.\n", hdr.SpecDigest)

	// Read the conclusion out of the flat table: per mapping, how much
	// does 8x bandwidth buy the non-overlapped execution?
	finish := map[string]map[string]float64{} // mapping → bandwidth → base finish
	for _, pt := range points {
		bw, mp := pt.Coords[0].Value, pt.Coords[1].Value
		if finish[mp] == nil {
			finish[mp] = map[string]float64{}
		}
		finish[mp][bw] = pt.Flavors[0].FinishSec
	}
	for _, mp := range []string{"block", "rr"} {
		slow, fast := finish[mp]["125"], finish[mp]["1000"]
		fmt.Printf("%-6s 125→1000 MB/s cuts the non-overlapped run by %.1f%%\n",
			mp, 100*(slow-fast)/slow)
	}
}
