// Network design study: how much network can overlap replace?
//
// The paper's motivation is economic: high-bandwidth interconnects dominate
// system cost, and overlap "relaxes the application's network requirements,
// and hence allows to deploy more cost-effective network designs". This
// example sweeps the link bandwidth for every application of the pool and
// prints, per application:
//
//   - the finish-time-vs-bandwidth curves of the non-overlapped and
//     overlapped executions (the raw series behind Fig. 6), and
//   - the two derived design numbers: the relaxed bandwidth (Fig. 6b) and
//     the equivalent bandwidth (Fig. 6c).
//
// Run with:
//
//	go run ./examples/bandwidth
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/tracer"
)

func main() {
	const ranks = 16
	bandwidths := []float64{8, 31, 62, 125, 250, 500, 1000}

	for _, entry := range apps.All(ranks) {
		name := entry.App.Name
		report, err := core.Analyze(entry.App, ranks, network.TestbedFor(name, ranks), tracer.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", name)
		fmt.Printf("%-8s %12s %12s\n", "MB/s", "base (ms)", "ideal (ms)")
		base, err := report.BandwidthSweep(core.FlavorBase, bandwidths)
		if err != nil {
			log.Fatal(err)
		}
		ideal, err := report.BandwidthSweep(core.FlavorIdeal, bandwidths)
		if err != nil {
			log.Fatal(err)
		}
		for i, bw := range bandwidths {
			fmt.Printf("%-8.0f %12.3f %12.3f\n", bw, base.Y[i]*1e3, ideal.Y[i]*1e3)
		}
		relax, err := report.RelaxedBandwidth(core.FlavorIdeal, metrics.DefaultSearch())
		if err != nil {
			log.Fatal(err)
		}
		equiv, err := report.EquivalentBandwidth(core.FlavorIdeal, metrics.DefaultSearch())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("overlap keeps 250 MB/s performance down to: %s\n", metrics.FormatMBps(relax))
		fmt.Printf("bandwidth that buys the same benefit:       %s\n\n", metrics.FormatMBps(equiv))
	}
}
