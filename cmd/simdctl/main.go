// Command simdctl is the command-line client of a running simd daemon.
// It speaks the same HTTP API the Go client package wraps, adding the
// operational knobs a flaky network or a restarting daemon needs:
// transparent retries with exponential backoff and full jitter,
// honoring the server's Retry-After on 429/502/503.
//
// Examples:
//
//	simdctl -addr http://127.0.0.1:8080 health
//	simdctl apps
//	simdctl -retries 5 scenario spec.json      # streamed point table
//	simdctl -retries 5 -json scenario spec.json
//	simdctl jobs
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/service/client"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	retries := flag.Int("retries", 3, "how many times to retry a failed request (transport errors and 429/502/503); 0 disables")
	retryBase := flag.Duration("retry-base-wait", client.DefaultRetryBaseWait, "exponential-backoff seed between retries (full jitter)")
	retryMax := flag.Duration("retry-max-wait", client.DefaultRetryMaxWait, "cap on a single backoff wait; the server's Retry-After is always honored as a floor")
	timeout := flag.Duration("timeout", 0, "overall deadline for the command (0 = none)")
	asJSON := flag.Bool("json", false, "with scenario: print the raw result JSON instead of the streamed point table")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: simdctl [flags] health|apps|platforms|jobs|metrics|cluster status|scenario <spec.json>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	c := client.New(*addr, nil).WithRetry(client.RetryPolicy{
		Retries:  *retries,
		BaseWait: *retryBase,
		MaxWait:  *retryMax,
	})

	var err error
	switch cmd := flag.Arg(0); cmd {
	case "health":
		var h service.Health
		if h, err = c.Health(ctx); err == nil {
			err = printJSON(h)
		}
	case "apps":
		var list []service.AppInfo
		if list, err = c.Apps(ctx); err == nil {
			err = printJSON(list)
		}
	case "platforms":
		var list []service.PlatformInfo
		if list, err = c.Platforms(ctx); err == nil {
			err = printJSON(list)
		}
	case "jobs":
		var list []service.Status
		if list, err = c.Jobs(ctx); err == nil {
			err = printJSON(list)
		}
	case "metrics":
		var raw []byte
		if raw, err = c.MetricsText(ctx); err == nil {
			_, err = os.Stdout.Write(raw)
		}
	case "scenario":
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "simdctl: scenario needs a spec file")
			os.Exit(2)
		}
		err = runScenario(ctx, c, flag.Arg(1), *asJSON)
	case "cluster":
		if flag.NArg() != 2 || flag.Arg(1) != "status" {
			fmt.Fprintln(os.Stderr, "simdctl: usage: cluster status")
			os.Exit(2)
		}
		var st cluster.Status
		if st, err = c.ClusterStatus(ctx); err == nil {
			err = printJSON(st)
		}
	default:
		fmt.Fprintf(os.Stderr, "simdctl: unknown command %q\n", cmd)
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "simdctl: %v\n", err)
		os.Exit(1)
	}
}

// runScenario submits a spec file. The default path streams (NDJSON on
// the wire, the incremental point table on stdout); -json runs the
// batch endpoint and prints its exact payload.
func runScenario(ctx context.Context, c *client.Client, path string, asJSON bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var req service.ScenarioRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return fmt.Errorf("scenario file %s: %w", path, err)
	}
	if asJSON {
		raw, err := c.ScenarioRaw(ctx, req)
		if err != nil {
			return err
		}
		os.Stdout.Write(raw)
		fmt.Println()
		return nil
	}
	st, err := c.ScenarioStream(ctx, req)
	if err != nil {
		return err
	}
	defer st.Close()
	hdr := st.Header()
	p, err := core.NewScenarioPrinter(os.Stdout, &hdr)
	if err != nil {
		return err
	}
	for {
		pt, err := st.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := p.Point(pt); err != nil {
			return err
		}
	}
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
