package service

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/network"
	"repro/internal/trace"
)

// Memory-tier capacity bounds: a long-lived daemon must not grow without
// limit under adversarial or merely enthusiastic upload traffic. Traces
// can be megabytes, platforms are a few hundred bytes; the bounds differ
// accordingly. Storing content already present never counts against them.
const (
	maxStoredTraces    = 1024
	maxStoredPlatforms = 65536
)

// ErrStoreFull reports a memory tier at capacity; the HTTP layer maps it
// to 507 Insufficient Storage.
var ErrStoreFull = errors.New("service: artifact store full")

// Store is the content-addressed artifact store of the service: traces and
// platforms are stored and retrieved by digest ("sha256:..."). The memory
// tier is authoritative for the running process; the optional disk tier
// (Dir != "") persists artifacts across restarts and is consulted on
// memory misses. Because names are content addresses, disk entries are
// verified against their digest on load — a corrupted file is reported,
// never served.
type Store struct {
	dir string

	mu        sync.Mutex
	traces    map[string]*trace.Trace
	platforms map[string]network.Platform
}

// NewStore returns a store with a memory tier and, when dir is non-empty,
// a disk tier rooted there (created if missing).
func NewStore(dir string) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: store dir: %w", err)
		}
	}
	return &Store{
		dir:       dir,
		traces:    make(map[string]*trace.Trace),
		platforms: make(map[string]network.Platform),
	}, nil
}

// tracePath and platformPath name the disk-tier files. The "sha256:"
// prefix becomes "sha256-" so names stay portable.
func (s *Store) tracePath(digest string) string {
	return filepath.Join(s.dir, strings.ReplaceAll(digest, ":", "-")+".dimbin")
}

func (s *Store) platformPath(digest string) string {
	return filepath.Join(s.dir, strings.ReplaceAll(digest, ":", "-")+".platform.json")
}

// PutTrace stores a validated trace and returns its digest. Storing the
// same content twice is an idempotent no-op. The disk tier is written
// before the memory tier commits, so a failed disk write fails the whole
// put and a retry really retries — success always means "persisted
// everywhere the store is configured to persist".
func (s *Store) PutTrace(t *trace.Trace) (string, error) {
	if err := t.Validate(); err != nil {
		return "", fmt.Errorf("service: store trace: %w", err)
	}
	digest, err := trace.Digest(t)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if _, seen := s.traces[digest]; seen {
		s.mu.Unlock()
		return digest, nil
	}
	if len(s.traces) >= maxStoredTraces {
		s.mu.Unlock()
		return "", fmt.Errorf("%w: %d traces", ErrStoreFull, maxStoredTraces)
	}
	s.mu.Unlock()
	if s.dir != "" {
		var buf bytes.Buffer
		if err := trace.WriteBinary(&buf, t); err != nil {
			return "", err
		}
		if err := atomicWrite(s.tracePath(digest), buf.Bytes()); err != nil {
			return "", fmt.Errorf("service: store trace to disk: %w", err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, seen := s.traces[digest]; !seen {
		if len(s.traces) >= maxStoredTraces {
			return "", fmt.Errorf("%w: %d traces", ErrStoreFull, maxStoredTraces)
		}
		s.traces[digest] = t
	}
	return digest, nil
}

// GetTrace resolves a digest to its trace, trying memory then disk. A disk
// hit is re-verified against the digest and promoted to memory.
func (s *Store) GetTrace(digest string) (*trace.Trace, error) {
	if !trace.ValidDigest(digest) {
		return nil, fmt.Errorf("service: malformed trace digest %q", digest)
	}
	s.mu.Lock()
	t, ok := s.traces[digest]
	s.mu.Unlock()
	if ok {
		return t, nil
	}
	if s.dir == "" {
		return nil, fmt.Errorf("service: unknown trace %s", digest)
	}
	f, err := os.Open(s.tracePath(digest))
	if err != nil {
		return nil, fmt.Errorf("service: unknown trace %s", digest)
	}
	defer f.Close()
	t, err = trace.ReadBinary(f)
	if err != nil {
		return nil, fmt.Errorf("service: disk trace %s: %w", digest, err)
	}
	got, err := trace.Digest(t)
	if err != nil {
		return nil, err
	}
	if got != digest {
		return nil, fmt.Errorf("service: disk trace %s corrupted (content digests %s)", digest, got)
	}
	// Promote to the memory tier only while under the cap; a full tier
	// still serves the disk copy, it just stays cold.
	s.mu.Lock()
	if len(s.traces) < maxStoredTraces {
		s.traces[digest] = t
	}
	s.mu.Unlock()
	return t, nil
}

// PutPlatform stores a validated platform and returns its digest, with
// the same disk-before-memory commit order as PutTrace.
func (s *Store) PutPlatform(p network.Platform) (string, error) {
	digest, err := p.Digest() // validates
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if _, seen := s.platforms[digest]; seen {
		s.mu.Unlock()
		return digest, nil
	}
	if len(s.platforms) >= maxStoredPlatforms {
		s.mu.Unlock()
		return "", fmt.Errorf("%w: %d platforms", ErrStoreFull, maxStoredPlatforms)
	}
	s.mu.Unlock()
	if s.dir != "" {
		var buf bytes.Buffer
		if err := p.WriteJSON(&buf); err != nil {
			return "", err
		}
		if err := atomicWrite(s.platformPath(digest), buf.Bytes()); err != nil {
			return "", fmt.Errorf("service: store platform to disk: %w", err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, seen := s.platforms[digest]; !seen {
		if len(s.platforms) >= maxStoredPlatforms {
			return "", fmt.Errorf("%w: %d platforms", ErrStoreFull, maxStoredPlatforms)
		}
		s.platforms[digest] = p
	}
	return digest, nil
}

// GetPlatform resolves a digest to its platform, trying memory then disk.
func (s *Store) GetPlatform(digest string) (network.Platform, error) {
	// Same digest grammar as traces; rejecting malformed input here also
	// keeps attacker-controlled strings out of the disk tier's paths.
	if !trace.ValidDigest(digest) {
		return network.Platform{}, fmt.Errorf("service: malformed platform digest %q", digest)
	}
	s.mu.Lock()
	p, ok := s.platforms[digest]
	s.mu.Unlock()
	if ok {
		return p, nil
	}
	if s.dir == "" {
		return network.Platform{}, fmt.Errorf("service: unknown platform %s", digest)
	}
	f, err := os.Open(s.platformPath(digest))
	if err != nil {
		return network.Platform{}, fmt.Errorf("service: unknown platform %s", digest)
	}
	defer f.Close()
	p, err = network.ReadAnyPlatform(f)
	if err != nil {
		return network.Platform{}, fmt.Errorf("service: disk platform %s: %w", digest, err)
	}
	got, err := p.Digest()
	if err != nil {
		return network.Platform{}, err
	}
	if got != digest {
		return network.Platform{}, fmt.Errorf("service: disk platform %s corrupted (content digests %s)", digest, got)
	}
	s.mu.Lock()
	if len(s.platforms) < maxStoredPlatforms {
		s.platforms[digest] = p
	}
	s.mu.Unlock()
	return p, nil
}

// TraceDigests lists the digests of every trace in the memory tier,
// sorted.
func (s *Store) TraceDigests() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.traces))
	for d := range s.traces {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Counts reports how many traces and platforms the memory tier holds.
func (s *Store) Counts() (traces, platforms int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.traces), len(s.platforms)
}

// atomicWrite writes data via a temp file + rename, so a crashed write
// never leaves a half-written artifact under a content address.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
