package engine

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/tracer"
)

// compiledKernel is a two-rank exchange with enough records that a replay
// is non-trivial.
func compiledKernel(p *tracer.Proc) {
	buf := p.NewArray("buf", 64)
	for it := 0; it < 4; it++ {
		if p.Rank() == 0 {
			for i := 0; i < 64; i++ {
				p.Compute(500)
				buf.Store(i, float64(i))
			}
			p.Send(1, it, buf)
		} else {
			p.Recv(buf, 0, it)
			for i := 0; i < 64; i++ {
				p.Compute(200)
				_ = buf.Load(i)
			}
		}
	}
}

// TestCompiledTraceMemoizes: the (trace, program) pair of one flavour is
// built once per cache entry and shared by every caller, concurrent ones
// included; distinct flavours get distinct programs.
func TestCompiledTraceMemoizes(t *testing.T) {
	c := NewTraceCache()
	cfg := tracer.DefaultConfig()
	type pair struct {
		tr   any
		prog *sim.Program
	}
	results := make([]pair, 8)
	var wg sync.WaitGroup
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tr, prog, err := c.CompiledTrace("compiled-app", 2, cfg, compiledKernel, FlavorBase)
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = pair{tr: tr, prog: prog}
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(results); g++ {
		if results[g] != results[0] {
			t.Fatal("concurrent CompiledTrace calls returned distinct trace/program pairs")
		}
	}
	_, real, err := c.CompiledTrace("compiled-app", 2, cfg, compiledKernel, FlavorReal)
	if err != nil {
		t.Fatal(err)
	}
	if real == results[0].prog {
		t.Fatal("base and overlap-real flavours share one program")
	}
	if _, _, err := c.CompiledTrace("compiled-app", 2, cfg, compiledKernel, "bogus"); err == nil {
		t.Fatal("unknown flavor accepted")
	}
}

// TestCompiledTraceReplaysIdentically: the cached program replays exactly
// like the one-shot path over the trace it was compiled from.
func TestCompiledTraceReplaysIdentically(t *testing.T) {
	c := NewTraceCache()
	tr, prog, err := c.CompiledTrace("compiled-app-replay", 2, tracer.DefaultConfig(), compiledKernel, FlavorReal)
	if err != nil {
		t.Fatal(err)
	}
	cfg := network.Testbed(2)
	want, err := sim.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sim.RunProgram(cfg.Platform(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("cached program diverges: finish %g vs %g", want.FinishSec, got.FinishSec)
	}
}

// TestSweepFinishMatchesReplayConfigs: the arena-pooled finish sweep and
// the full-result replay path agree point for point.
func TestSweepFinishMatchesReplayConfigs(t *testing.T) {
	run, err := NewTraceCache().Trace("compiled-app-sweep", 2, tracer.DefaultConfig(), compiledKernel)
	if err != nil {
		t.Fatal(err)
	}
	tr := run.BaseTrace()
	var cfgs []network.Config
	var plats []network.Platform
	for _, bw := range []float64{50, 100, 250, 1000} {
		cfg := network.Testbed(2)
		cfg.BandwidthMBps = bw
		cfgs = append(cfgs, cfg)
		plats = append(plats, cfg.Platform())
	}
	e := New(2)
	results, err := ReplayConfigs(t.Context(), e, cfgs, tr)
	if err != nil {
		t.Fatal(err)
	}
	fins, err := SweepFinish(t.Context(), e, plats, tr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fins {
		if fins[i] != results[i].FinishSec {
			t.Fatalf("point %d: SweepFinish %g != ReplayConfigs %g", i, fins[i], results[i].FinishSec)
		}
	}
}
