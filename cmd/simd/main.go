// Command simd is the simulation-as-a-service daemon: the trace-replay
// framework behind cmd/experiments and friends, exposed as a long-lived
// HTTP JSON API with a content-addressed artifact store, singleflight
// dedupe of identical in-flight requests, and an LRU result cache —
// identical requests hit the cache instead of re-simulating, concurrent
// distinct requests saturate the worker pool.
//
// Examples:
//
//	simd -addr :8080 -workers 8 -store-dir /var/lib/simd
//	curl localhost:8080/healthz
//	curl -X POST localhost:8080/v1/analyze -d '{"app":"cg","ranks":16}'
//	curl -X POST localhost:8080/v1/whatif -d '{"app":"sweep3d","ranks":16}'
//	curl -N -H 'Accept: application/x-ndjson' -X POST \
//	  localhost:8080/v1/scenarios -d '{"app":"cg","ranks":16,"output":"finish"}'
//	curl 'localhost:8080/v1/jobs'
//
// See the README's "Running as a service" section for the full API.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/platformflag"
	"repro/internal/service"
	"repro/internal/service/client"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache", service.DefaultCacheEntries, "result cache capacity in entries (0 or negative disables)")
	queueDepth := flag.Int("queue", service.DefaultQueueDepth, "admission queue bound: jobs beyond it are rejected with 429 (0 or negative = unbounded)")
	pointCache := flag.Int("point-cache", service.DefaultPointCacheEntries, "point-level scenario cache capacity — overlapping grids resume each other (0 or negative disables)")
	replayShards := flag.Int("replay-shards", 0, "parallel (PDES) shards per scenario replay: 0 = planner's choice, 1 = serial, N = force N (results identical either way)")
	storeDir := flag.String("store-dir", "", "disk tier for the content-addressed artifact store (empty = memory only)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (profiling; leave off in untrusted networks)")
	scenarioPath := flag.String("scenario", "", "one-shot mode: run a scenario spec (JSON, the POST /v1/scenarios schema) against -store-dir, stream the point table, and exit without serving")
	scenarioJSON := flag.Bool("scenario-json", false, "with -scenario, print the raw result JSON instead of the streamed point table")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "on SIGTERM/SIGINT, how long to wait for in-flight jobs and streams to finish before closing the server")
	logFormat := flag.String("log-format", "text", "structured log format: text|json")
	clusterListen := flag.String("cluster-listen", "", "enable clustering: listen address of the peer RPC endpoint (e.g. 127.0.0.1:9201); peers dial http://<this address>")
	nodeID := flag.String("node-id", "", "operator-chosen cluster node name (default: the advertised cluster address); the node's DHT identity is derived from it")
	join := flag.String("join", "", "comma-separated cluster addresses of existing members to bootstrap from (e.g. http://127.0.0.1:9201,http://127.0.0.1:9202)")
	tm := platformflag.RegisterTimings(flag.CommandLine)
	flag.Parse()

	var handlerOpts slog.Handler
	switch *logFormat {
	case "text":
		handlerOpts = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handlerOpts = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "simd: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handlerOpts)
	slog.SetDefault(logger)

	store, err := service.NewStore(*storeDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simd: %v\n", err)
		os.Exit(1)
	}
	if *scenarioPath != "" {
		// One-shot: the same spec POST /v1/scenarios accepts, executed on
		// this process's store and engine. The default table streams —
		// each point prints as it finishes; -scenario-json prints the
		// batch JSON instead. -timings appends the per-stage telemetry
		// summary to stderr.
		opts := service.Options{Engine: engine.New(*workers), Store: store, ReplayShards: *replayShards, Logger: logger}
		if *scenarioJSON {
			_, raw, err := service.RunScenarioFile(context.Background(), *scenarioPath, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "simd: %v\n", err)
				os.Exit(1)
			}
			os.Stdout.Write(raw)
			fmt.Println()
			tm.MaybeDump(os.Stderr)
			return
		}
		if err := service.StreamScenarioFile(context.Background(), *scenarioPath, opts, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "simd: %v\n", err)
			os.Exit(1)
		}
		tm.MaybeDump(os.Stderr)
		return
	}
	// The flags' 0 means "disabled"/"unbounded"; Options reserves 0 for
	// "default" so the zero value stays usable as a library.
	entries := *cacheEntries
	if entries <= 0 {
		entries = -1
	}
	queue := *queueDepth
	if queue <= 0 {
		queue = -1
	}
	points := *pointCache
	if points <= 0 {
		points = -1
	}
	eng := engine.New(*workers)

	// Clustering: the node's RPC endpoint gets its own listener (peer
	// traffic stays off the client port, though the API server mounts
	// /v1/cluster/ too), and outbound RPCs ride the HTTP transport with
	// a modest retry budget.
	var node *cluster.Node
	if *clusterListen != "" {
		advertise := clusterAdvertise(*clusterListen)
		name := *nodeID
		if name == "" {
			name = advertise
		}
		var err error
		node, err = cluster.NewNode(cluster.Config{
			Name:      name,
			Addr:      advertise,
			Transport: &client.ClusterTransport{Retry: client.RetryPolicy{Retries: 2}},
			Logger:    logger,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "simd: %v\n", err)
			os.Exit(1)
		}
	}

	mgr, err := service.NewManager(service.Options{
		Engine:            eng,
		Store:             store,
		CacheEntries:      entries,
		QueueDepth:        queue,
		PointCacheEntries: points,
		ReplayShards:      *replayShards,
		Logger:            logger,
		Cluster:           node,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "simd: %v\n", err)
		os.Exit(1)
	}

	handler := service.NewHandler(mgr)
	if *pprofOn {
		// Explicit registrations on a private mux: the daemon never
		// serves http.DefaultServeMux, so the import's side effects
		// alone would expose nothing.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Header and body reads are bounded so a stalled or malicious
		// client cannot pin a connection; idle keep-alives are reaped.
		// No WriteTimeout: scenario streams legitimately write for as
		// long as the grid takes, and a hung client is already bounded
		// by the job's context (closing the connection cancels it).
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The cluster RPC listener and the join loop. Joining retries: in a
	// cluster booting all at once, the bootstrap peers may come up after
	// this node does.
	var clusterSrv *http.Server
	if node != nil {
		cmux := http.NewServeMux()
		cmux.Handle("POST "+cluster.RPCPath, cluster.ServeRPC(node))
		clusterSrv = &http.Server{
			Addr:              *clusterListen,
			Handler:           cmux,
			ReadHeaderTimeout: 10 * time.Second,
			ReadTimeout:       60 * time.Second,
			IdleTimeout:       120 * time.Second,
		}
		go func() {
			logger.Info("cluster listening",
				slog.String("addr", *clusterListen),
				slog.String("node", node.Name()),
				slog.String("id", node.Self().ID.String()))
			if err := clusterSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("cluster listener failed", slog.String("error", err.Error()))
			}
		}()
		go func() {
			peers := splitJoin(*join)
			for attempt := 0; ; attempt++ {
				err := node.Join(ctx, peers...)
				if err == nil {
					logger.Info("cluster joined", slog.Int("peers", node.Table().Len()))
					return
				}
				if attempt >= 9 || ctx.Err() != nil {
					logger.Warn("cluster join failed", slog.String("error", err.Error()))
					return
				}
				select {
				case <-ctx.Done():
					return
				case <-time.After(time.Second):
				}
			}
		}()
	}
	go func() {
		<-ctx.Done()
		// Graceful drain, in two phases. First the manager stops
		// admitting new computations — fresh submissions get 503 +
		// Retry-After while the listener is still up, so clients see a
		// clean backoff signal instead of a connection reset — and every
		// in-flight job and stream runs to completion. Only then does
		// the HTTP server close: accepted work is never truncated.
		logger.Info("draining: new submissions get 503")
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		flushed, err := mgr.Drain(drainCtx)
		cancel()
		if err != nil {
			logger.Warn("drain timed out; shutting down anyway",
				slog.Int("inflight_at_drain", flushed),
				slog.String("error", err.Error()))
		} else {
			logger.Info("drained", slog.Int("flushed_jobs", flushed))
		}
		logger.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
		if clusterSrv != nil {
			// Peer RPCs close last: Drain already marked the node draining,
			// so peers spent the whole drain window reading any values they
			// still wanted and aging this node out of their tables.
			clusterSrv.Shutdown(shutdownCtx)
		}
	}()

	tier := "memory"
	if *storeDir != "" {
		tier = *storeDir
	}
	logger.Info("listening",
		slog.String("addr", *addr),
		slog.Int("workers", eng.Workers()),
		slog.Int("cache_entries", *cacheEntries),
		slog.String("store", tier))
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "simd: %v\n", err)
		os.Exit(1)
	}
}

// clusterAdvertise turns a -cluster-listen address into the base URL
// peers dial. A bare ":port" advertises the loopback host — fine for
// single-machine clusters and CI; multi-host deployments pass an
// explicit host:port.
func clusterAdvertise(listen string) string {
	if strings.HasPrefix(listen, ":") {
		return "http://127.0.0.1" + listen
	}
	return "http://" + listen
}

// splitJoin parses the -join flag's comma-separated peer list.
func splitJoin(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
