// Package bt models the NAS-BT block-tridiagonal kernel: each iteration
// performs directional solve phases; at the end of each phase the boundary
// faces are packed into a buffer and exchanged with the ring neighbour, and
// the received faces are copied out into working storage right away.
//
// BT is the paper's textbook *unfavourable* case:
//
//   - Production (Table II: 99.1/99.37/99.56/99.98): the message is packed
//     in a tight copy loop immediately before the send, so nothing can be
//     advanced.
//   - Consumption (Fig. 5b, Table II: 13.68/13.71/13.74): after ~13.7% of
//     independent work, "all the elements of the received buffer are loaded
//     four times, each time in an extremely short interval, implying that
//     the data is copied to some other location" — the four tight copy
//     passes this kernel performs. Such patterns leave almost no room to
//     postpone receptions.
package bt

import (
	"repro/internal/tracer"
)

// Config sizes the kernel.
type Config struct {
	// Iterations is the number of outer time steps.
	Iterations int
	// Phases is the directional solves per step (x, y, z in BT).
	Phases int
	// FaceLen is the exchanged face-buffer length in elements.
	FaceLen int
	// PhaseInstr is the main solve cost per phase, in instructions.
	PhaseInstr int64
	// IndepPct is the share of the phase executed before the received
	// data is first touched (the paper measures 13.68%).
	IndepPct int
	// CopyPasses is how many tight copy passes read the received buffer
	// (the paper observes four).
	CopyPasses int
}

// DefaultConfig follows the measured shape: three directional phases, four
// copy passes, ~13.7% independent work.
func DefaultConfig() Config {
	return Config{
		Iterations: 4,
		Phases:     3,
		FaceLen:    2800,
		PhaseInstr: 1_200_000,
		IndepPct:   12,
		CopyPasses: 4,
	}
}

const tagFace = 1

// Kernel runs one rank of BT on a ring: each phase sends the packed face to
// the next rank and receives from the previous one.
func Kernel(cfg Config) func(p *tracer.Proc) {
	return func(p *tracer.Proc) {
		me, size := p.Rank(), p.Size()
		if size == 1 {
			for it := 0; it < cfg.Iterations*cfg.Phases; it++ {
				p.Compute(cfg.PhaseInstr)
			}
			return
		}
		next := (me + 1) % size
		prev := (me - 1 + size) % size
		n := cfg.FaceLen

		out := p.NewArray("face-out", n)
		in := p.NewArray("face-in", n)

		indep := cfg.PhaseInstr * int64(cfg.IndepPct) / 100
		main := cfg.PhaseInstr - indep

		for it := 0; it < cfg.Iterations; it++ {
			for ph := 0; ph < cfg.Phases; ph++ {
				first := it == 0 && ph == 0
				// Independent work: cell updates that do not touch the
				// incoming face.
				p.Compute(indep)
				// Four tight copy passes pull the received face into
				// working storage (skipped before the first exchange).
				if !first {
					for pass := 0; pass < cfg.CopyPasses; pass++ {
						for i := 0; i < n; i++ {
							_ = in.Load(i)
						}
					}
				}
				// Main directional solve.
				p.Compute(main)
				// Pack the outgoing face in a tight loop just before
				// sending: the 99% production pattern.
				for i := 0; i < n; i++ {
					out.Store(i, float64(it*cfg.Phases+ph)+float64(i))
				}
				// Ring exchange with non-blocking transfers, the way
				// the NPB implementation overlaps its own face traffic.
				req := p.Irecv(in, prev, tagFace)
				p.Isend(next, tagFace, out)
				req.Wait()
			}
		}
	}
}
