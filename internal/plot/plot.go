// Package plot renders the reproduction's figures as standalone SVG files
// using only the standard library: scatter plots (Fig. 5), grouped bar
// charts (Fig. 6), and line charts (bandwidth sweep curves). The goal is
// publication-shaped artifacts from `cmd/experiments -svgdir`, not a
// general plotting toolkit.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Size of the drawing canvas and margins, in SVG user units.
const (
	width   = 640
	height  = 420
	marginL = 70
	marginR = 20
	marginT = 40
	marginB = 55
)

var palette = []string{"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b"}

type svgBuilder struct {
	b strings.Builder
}

func (s *svgBuilder) open(title string) {
	fmt.Fprintf(&s.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		width, height, width, height)
	s.b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&s.b, `<text x="%d" y="24" font-family="sans-serif" font-size="16" text-anchor="middle">%s</text>`,
		width/2, esc(title))
}

func (s *svgBuilder) axes(xlabel, ylabel string) {
	fmt.Fprintf(&s.b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(&s.b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginL, marginT, marginL, height-marginB)
	fmt.Fprintf(&s.b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`,
		(marginL+width-marginR)/2, height-12, esc(xlabel))
	fmt.Fprintf(&s.b, `<text x="16" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`,
		(marginT+height-marginB)/2, (marginT+height-marginB)/2, esc(ylabel))
}

func (s *svgBuilder) close() string {
	s.b.WriteString(`</svg>`)
	return s.b.String()
}

func esc(t string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(t)
}

// plotArea maps data coordinates to canvas coordinates.
type plotArea struct {
	x0, x1, y0, y1 float64 // data ranges
}

func (a plotArea) px(x float64) float64 {
	if a.x1 == a.x0 {
		return marginL
	}
	return marginL + (x-a.x0)/(a.x1-a.x0)*float64(width-marginL-marginR)
}

func (a plotArea) py(y float64) float64 {
	if a.y1 == a.y0 {
		return float64(height - marginB)
	}
	return float64(height-marginB) - (y-a.y0)/(a.y1-a.y0)*float64(height-marginT-marginB)
}

// ticks emits n axis ticks with labels along each axis.
func (s *svgBuilder) ticks(a plotArea, n int, fmtX, fmtY string) {
	for i := 0; i <= n; i++ {
		x := a.x0 + (a.x1-a.x0)*float64(i)/float64(n)
		px := a.px(x)
		fmt.Fprintf(&s.b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`,
			px, height-marginB, px, height-marginB+5)
		fmt.Fprintf(&s.b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`,
			px, height-marginB+18, fmt.Sprintf(fmtX, x))
		y := a.y0 + (a.y1-a.y0)*float64(i)/float64(n)
		py := a.py(y)
		fmt.Fprintf(&s.b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`,
			marginL-5, py, marginL, py)
		fmt.Fprintf(&s.b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`,
			marginL-8, py+3, fmt.Sprintf(fmtY, y))
	}
}

// ScatterPoint is one (x, y) sample.
type ScatterPoint struct {
	X, Y float64
}

// WriteScatterSVG renders a Fig. 5-style scatter: x is the relative
// interval time (0..1), y the element offset.
func WriteScatterSVG(w io.Writer, title, xlabel, ylabel string, pts []ScatterPoint) error {
	var s svgBuilder
	s.open(title)
	s.axes(xlabel, ylabel)
	ymax := 1.0
	for _, p := range pts {
		if p.Y > ymax {
			ymax = p.Y
		}
	}
	a := plotArea{x0: 0, x1: 1, y0: 0, y1: ymax}
	s.ticks(a, 4, "%.2f", "%.0f")
	for _, p := range pts {
		fmt.Fprintf(&s.b, `<circle cx="%.1f" cy="%.1f" r="1.5" fill="%s" fill-opacity="0.6"/>`,
			a.px(p.X), a.py(p.Y), palette[0])
	}
	_, err := io.WriteString(w, s.close())
	return err
}

// BarGroup is one labelled cluster of bars (one per series).
type BarGroup struct {
	Label  string
	Values []float64 // one value per series; NaN/Inf drawn as a hatched max bar
}

// WriteBarsSVG renders a Fig. 6-style grouped bar chart.
func WriteBarsSVG(w io.Writer, title, ylabel string, series []string, groups []BarGroup) error {
	var s svgBuilder
	s.open(title)
	s.axes("", ylabel)
	ymax := 1.0
	for _, g := range groups {
		for _, v := range g.Values {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && v > ymax {
				ymax = v
			}
		}
	}
	ymax *= 1.1
	a := plotArea{x0: 0, x1: float64(len(groups)), y0: 0, y1: ymax}
	s.ticks(a, 4, "%.0f", "%.2f")
	groupW := (float64(width-marginL-marginR) / float64(len(groups)))
	barW := groupW * 0.8 / float64(len(series))
	for gi, g := range groups {
		gx := float64(marginL) + groupW*float64(gi) + groupW*0.1
		for si, v := range g.Values {
			x := gx + barW*float64(si)
			col := palette[si%len(palette)]
			if math.IsInf(v, 1) || math.IsNaN(v) {
				// Unbounded value: full-height hatched bar.
				fmt.Fprintf(&s.b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" fill-opacity="0.3" stroke="%s" stroke-dasharray="3,2"/>`,
					x, marginT, barW, height-marginT-marginB, col, col)
				fmt.Fprintf(&s.b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="9" text-anchor="middle">inf</text>`,
					x+barW/2, marginT-4)
				continue
			}
			top := a.py(v)
			fmt.Fprintf(&s.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`,
				x, top, barW, float64(height-marginB)-top, col)
		}
		fmt.Fprintf(&s.b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`,
			gx+groupW*0.4, height-marginB+18, esc(g.Label))
	}
	for si, name := range series {
		fmt.Fprintf(&s.b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`,
			width-marginR-130, marginT+16*si, palette[si%len(palette)])
		fmt.Fprintf(&s.b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`,
			width-marginR-115, marginT+9+16*si, esc(name))
	}
	_, err := io.WriteString(w, s.close())
	return err
}

// Line is one curve of a line chart.
type Line struct {
	Label string
	X, Y  []float64
}

// WriteLinesSVG renders bandwidth-sweep-style curves with log-scaled x.
func WriteLinesSVG(w io.Writer, title, xlabel, ylabel string, lines []Line) error {
	var s svgBuilder
	s.open(title)
	s.axes(xlabel, ylabel)
	x0, x1 := math.Inf(1), math.Inf(-1)
	y1 := math.Inf(-1)
	for _, l := range lines {
		for i := range l.X {
			lx := math.Log10(l.X[i])
			x0 = math.Min(x0, lx)
			x1 = math.Max(x1, lx)
			y1 = math.Max(y1, l.Y[i])
		}
	}
	if math.IsInf(x0, 1) {
		x0, x1, y1 = 0, 1, 1
	}
	a := plotArea{x0: x0, x1: x1, y0: 0, y1: y1 * 1.05}
	s.ticks(a, 4, "10^%.1f", "%.4f")
	for li, l := range lines {
		col := palette[li%len(palette)]
		var path strings.Builder
		for i := range l.X {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, a.px(math.Log10(l.X[i])), a.py(l.Y[i]))
		}
		fmt.Fprintf(&s.b, `<path d="%s" fill="none" stroke="%s" stroke-width="2"/>`, path.String(), col)
		fmt.Fprintf(&s.b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`,
			width-marginR-150, marginT+16*li, col)
		fmt.Fprintf(&s.b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`,
			width-marginR-135, marginT+9+16*li, esc(l.Label))
	}
	_, err := io.WriteString(w, s.close())
	return err
}
