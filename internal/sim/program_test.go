package sim

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/network"
	"repro/internal/trace"
)

// cloneResult deep-copies a result so it survives arena reuse.
func cloneResult(r *Result) *Result {
	return &Result{
		FinishSec: r.FinishSec,
		Ranks:     append([]RankStats(nil), r.Ranks...),
		Intervals: append([]Interval(nil), r.Intervals...),
		Comms:     append([]Comm(nil), r.Comms...),
	}
}

// programTestPlatforms exercises every resource pool and both link
// classes.
func programTestPlatforms(procs int) []network.Platform {
	flat := testCfg(procs).Platform()
	constrained := testCfg(procs)
	constrained.Buses = 3
	constrained.InPorts = 1
	constrained.OutPorts = 1
	constrained.EagerThresholdBytes = 10_000
	multi := testCfg(procs).Platform().WithNodes((procs + 1) / 2)
	multi.Intra = network.Link{LatencySec: 0.5e-6, BandwidthMBps: 5000}
	multi.IntraBuses = 2
	multi.Buses = 4
	multi.InPorts = 1
	multi.OutPorts = 1
	congested := multi.WithMapping(network.RoundRobinMapping())
	congested.CongestionFactor = 1.5
	return []network.Platform{flat, constrained.Platform(), multi, congested}
}

// TestProgramReplayEquivalence is the compiled-core keystone: replaying a
// precompiled program — through a fresh arena, a reused arena, and the
// pooled summary helpers — must be byte-identical to the one-shot
// trace-replay path on every platform class.
func TestProgramReplayEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomBalancedTrace(rng, 3+rng.Intn(5), 30+rng.Intn(40))
		prog, err := Compile(tr)
		if err != nil {
			t.Logf("compile: %v", err)
			return false
		}
		arena := NewArena()
		for pi, plat := range programTestPlatforms(tr.NumRanks) {
			want, err := RunOn(plat, tr)
			if err != nil {
				t.Logf("platform %d: one-shot replay: %v", pi, err)
				return false
			}
			got, err := RunProgram(plat, prog)
			if err != nil {
				t.Logf("platform %d: program replay: %v", pi, err)
				return false
			}
			if !reflect.DeepEqual(want, got) {
				t.Logf("platform %d: program replay diverges (finish %g vs %g)", pi, want.FinishSec, got.FinishSec)
				return false
			}
			reused, err := arena.RunProgram(plat, prog)
			if err != nil {
				t.Logf("platform %d: arena replay: %v", pi, err)
				return false
			}
			if !reflect.DeepEqual(want, reused) {
				t.Logf("platform %d: reused-arena replay diverges", pi)
				return false
			}
			sum, err := ReplaySummary(plat, prog)
			if err != nil {
				t.Logf("platform %d: pooled replay: %v", pi, err)
				return false
			}
			ib, eb, im, em := want.TrafficSplit()
			if sum.FinishSec != want.FinishSec || sum.IntraBytes != ib || sum.InterBytes != eb ||
				sum.IntraMsgs != im || sum.InterMsgs != em {
				t.Logf("platform %d: summary diverges: %+v", pi, sum)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestArenaReuseByteIdentical replays A, B, A on one arena: the buffers of
// the first A replay are recycled twice in between, and the final A replay
// must still equal the first bit for bit.
func TestArenaReuseByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trA := randomBalancedTrace(rng, 6, 60)
	trB := randomBalancedTrace(rng, 4, 80)
	plat := programTestPlatforms(6)[2]
	arena := NewArena()

	first, err := arena.RunOn(plat, trA)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := cloneResult(first)
	if _, err := arena.RunOn(plat, trB); err != nil {
		t.Fatal(err)
	}
	again, err := arena.RunOn(plat, trA)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snapshot, cloneResult(again)) {
		t.Fatalf("arena reuse changed the result: finish %g vs %g", snapshot.FinishSec, again.FinishSec)
	}
}

// TestArenaCompileMemo: replaying the same *trace.Trace across platform
// variants on one arena compiles once.
func TestArenaCompileMemo(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := randomBalancedTrace(rng, 4, 30)
	arena := NewArena()
	if _, err := arena.RunOn(testCfg(4).Platform(), tr); err != nil {
		t.Fatal(err)
	}
	prog := arena.memoProg
	if prog == nil {
		t.Fatal("no memoized program after RunOn")
	}
	if _, err := arena.RunOn(testCfg(4).Platform().WithInterBandwidth(500), tr); err != nil {
		t.Fatal(err)
	}
	if arena.memoProg != prog {
		t.Fatal("same trace recompiled on the same arena")
	}
}

func TestCompileRejectsBadTraces(t *testing.T) {
	if _, err := Compile(nil); err != ErrNilTrace {
		t.Fatalf("nil trace: got %v, want ErrNilTrace", err)
	}
	bad := trace.New("bad", "base", 2)
	bad.Append(0, trace.Record{Kind: trace.KindISend, Peer: 7, Bytes: 8})
	if _, err := Compile(bad); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range peer: got %v", err)
	}
	short := &trace.Trace{Name: "short", NumRanks: 3, Ranks: make([]trace.RankTrace, 1)}
	if _, err := Compile(short); err == nil {
		t.Fatal("missing rank streams accepted")
	}
}

// TestDeadlockReportInRange: a stalled rank whose pc sits on a real record
// names that record.
func TestDeadlockReportInRange(t *testing.T) {
	tr := trace.New("dl", "base", 2)
	tr.Append(0, trace.Record{Kind: trace.KindRecv, Peer: 1, Tag: 9, Chunk: 2, Bytes: 8})
	tr.Append(1, trace.Record{Kind: trace.KindRecv, Peer: 0, Tag: 4, Bytes: 8})
	_, err := Run(testCfg(2), tr)
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if len(de.Blocked) != 2 || !strings.Contains(de.Blocked[0], "recv peer=1 tag=9 chunk=2") {
		t.Fatalf("blocked report: %v", de.Blocked)
	}
}

// TestDeadlockReportEndOfTrace: a pc at or past the end of the rank's
// record stream must say so instead of printing a zero-valued record
// ("compute peer=0 tag=0").
func TestDeadlockReportEndOfTrace(t *testing.T) {
	prog, err := Compile(trace.New("dl", "base", 1))
	if err != nil {
		t.Fatal(err)
	}
	got := blockedDesc(prog, 0, 0)
	if !strings.Contains(got, "at end of trace") {
		t.Fatalf("end-of-trace pc described as %q", got)
	}
	if strings.Contains(got, "peer=") {
		t.Fatalf("end-of-trace pc still formats a zero-valued record: %q", got)
	}
}
