package engine

import (
	"context"

	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ReplayOptions tunes how the batch replay helpers execute each point.
// The zero value is the default: serial replay per point, with the
// parallelism coming from the engine's worker pool across points.
type ReplayOptions struct {
	// Shards requests conservative parallel (PDES) replay inside each
	// point: 1 (or 0 on an unshardable platform) replays serially, n > 1
	// asks for n shards, and -1 asks for the automatic shard count
	// (sim.EffectiveShards). Intra-point sharding competes with the
	// pool's inter-point parallelism for the same cores — prefer it only
	// when points are few and large (see core's planner).
	Shards int
}

// shards maps the option onto sim's convention, where 0 means automatic.
func (o ReplayOptions) shards() int {
	switch {
	case o.Shards < 0:
		return 0
	case o.Shards == 0:
		return 1
	default:
		return o.Shards
	}
}

func replayOpts(opts []ReplayOptions) ReplayOptions {
	if len(opts) > 0 {
		return opts[0]
	}
	return ReplayOptions{}
}

// ReplayAll replays every trace on the platform cfg through the pool and
// returns the results in input order. Traces may repeat (replaying one
// shared trace N times is race-free: the simulator never mutates its
// trace) and nil results mark failed replays, whose errors come back
// aggregated per index. Each point replays on a pooled arena and copies
// out into a fresh caller-owned Result — the copy is sized exactly, so a
// batch costs four allocations per point, not an arena per point.
// Workloads that only need makespans should prefer SweepFinish.
func ReplayAll(ctx context.Context, e *Engine, cfg network.Config, traces []*trace.Trace, opts ...ReplayOptions) ([]*sim.Result, error) {
	opt := replayOpts(opts)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	plat := cfg.Platform()
	return Map(ctx, e, len(traces), func(ctx context.Context, i int) (*sim.Result, error) {
		prog, err := sim.Compile(traces[i])
		if err != nil {
			return nil, err
		}
		return sim.ReplayInto(plat, prog, opt.shards(), new(sim.Result))
	})
}

// ReplayConfigs replays one trace on every platform configuration through
// the pool — the shape of a bandwidth sweep — returning results in input
// order. The trace is compiled once and the program shared by every
// replay; results copy out of pooled arenas like ReplayAll's.
func ReplayConfigs(ctx context.Context, e *Engine, cfgs []network.Config, tr *trace.Trace, opts ...ReplayOptions) ([]*sim.Result, error) {
	opt := replayOpts(opts)
	if tr == nil {
		return nil, sim.ErrNilTrace
	}
	prog, err := sim.Compile(tr)
	if err != nil {
		return nil, err
	}
	return Map(ctx, e, len(cfgs), func(ctx context.Context, i int) (*sim.Result, error) {
		if err := cfgs[i].Validate(); err != nil {
			return nil, err
		}
		return sim.ReplayInto(cfgs[i].Platform(), prog, opt.shards(), new(sim.Result))
	})
}

// SweepFinish replays one trace across platform variants through the pool
// and returns only the makespans, in input order. The trace compiles once;
// each point replays the shared program on a pooled arena, so a saturated
// sweep allocates no per-replay simulator state.
func SweepFinish(ctx context.Context, e *Engine, plats []network.Platform, tr *trace.Trace, opts ...ReplayOptions) ([]float64, error) {
	if tr == nil {
		return nil, sim.ErrNilTrace
	}
	prog, err := sim.Compile(tr)
	if err != nil {
		return nil, err
	}
	return SweepFinishProgram(ctx, e, plats, prog, opts...)
}

// SweepFinishProgram is SweepFinish for an already-compiled program (e.g.
// one shared through TraceCache.CompiledTrace or a service-layer digest
// cache).
func SweepFinishProgram(ctx context.Context, e *Engine, plats []network.Platform, prog *sim.Program, opts ...ReplayOptions) ([]float64, error) {
	opt := replayOpts(opts)
	if opt.shards() == 1 {
		return Map(ctx, e, len(plats), func(ctx context.Context, i int) (float64, error) {
			return sim.ReplayFinish(plats[i], prog)
		})
	}
	return Map(ctx, e, len(plats), func(ctx context.Context, i int) (float64, error) {
		s, err := sim.ReplayShardsSummary(plats[i], prog, opt.shards())
		return s.FinishSec, err
	})
}
