package pattern

import (
	"math"
	"testing"
	"testing/quick"
)

func idealProd() ProductionStats {
	return ProductionStats{FirstElem: 0, Quarter: 25, Half: 50, Whole: 100, Chunkable: true, Intervals: 1}
}

func idealCons() ConsumptionStats {
	return ConsumptionStats{Nothing: 0, Quarter: 25, Half: 50, Chunkable: true, Intervals: 1}
}

func TestOverlapPotentialIdealMatchesClosedForm(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8} {
		got := OverlapPotential(idealProd(), idealCons(), k)
		want := IdealPotential(k)
		if len(got.PerChunkPct) != k {
			t.Fatalf("k=%d: len=%d", k, len(got.PerChunkPct))
		}
		for i := range got.PerChunkPct {
			if math.Abs(got.PerChunkPct[i]-want.PerChunkPct[i]) > 1e-9 {
				t.Fatalf("k=%d chunk %d: %.3f vs closed form %.3f", k, i, got.PerChunkPct[i], want.PerChunkPct[i])
			}
		}
	}
}

func TestOverlapPotentialLateProducerIsPoor(t *testing.T) {
	// BT-like: production at 99%+, consumption ~13.7% flat.
	p := ProductionStats{FirstElem: 99.1, Quarter: 99.37, Half: 99.56, Whole: 99.98, Chunkable: true}
	c := ConsumptionStats{Nothing: 13.68, Quarter: 13.71, Half: 13.74, Chunkable: true}
	pot := OverlapPotential(p, c, 4)
	// Chunk 0 gets almost nothing from production (everything settles at
	// 99%+) and nothing from consumption (no chunks before it): ~1%+13.7%.
	if pot.PerChunkPct[0] > 20 {
		t.Fatalf("chunk 0 potential %.1f%%, want small", pot.PerChunkPct[0])
	}
	if pot.AvgPct > 25 {
		t.Fatalf("avg potential %.1f%%, BT patterns must be unfavourable", pot.AvgPct)
	}
	// Compare with CG-like near-ideal patterns: must be far better.
	cg := OverlapPotential(
		ProductionStats{FirstElem: 3.98, Quarter: 27.98, Half: 51.99, Whole: 99.97, Chunkable: true},
		ConsumptionStats{Nothing: 2.175, Quarter: 18.35, Half: 34.53, Chunkable: true}, 4)
	if cg.AvgPct <= pot.AvgPct+20 {
		t.Fatalf("CG potential %.1f%% not clearly above BT %.1f%%", cg.AvgPct, pot.AvgPct)
	}
}

func TestOverlapPotentialUnchunkable(t *testing.T) {
	p := ProductionStats{FirstElem: 98.8, Quarter: math.NaN(), Half: math.NaN(), Whole: math.NaN(), Chunkable: false}
	c := ConsumptionStats{Nothing: 0.4, Quarter: math.NaN(), Half: math.NaN(), Chunkable: false}
	pot := OverlapPotential(p, c, 4)
	if len(pot.PerChunkPct) != 0 {
		t.Fatal("unchunkable patterns must yield an empty potential")
	}
}

func TestIdealPotentialClosedForm(t *testing.T) {
	if got := IdealPotential(4).MinPct; math.Abs(got-75) > 1e-9 {
		t.Fatalf("4-chunk ideal potential %.2f, want 75", got)
	}
	if got := IdealPotential(1).MinPct; got != 0 {
		t.Fatalf("1-chunk potential %.2f, want 0 (no overlap without chunking)", got)
	}
	if len(IdealPotential(0).PerChunkPct) != 0 {
		t.Fatal("0 chunks must be empty")
	}
}

func TestPropertyPotentialWithinBounds(t *testing.T) {
	f := func(a, b, c0, d uint8) bool {
		// Build a monotone production curve and a monotone consumption
		// curve from random offsets.
		f1 := float64(a) / 255 * 100
		q := f1 + float64(b)/255*(100-f1)
		h := q + float64(c0)/255*(100-q)
		p := ProductionStats{FirstElem: f1, Quarter: q, Half: h, Whole: 100, Chunkable: true}
		n0 := float64(d) / 255 * 100
		cs := ConsumptionStats{Nothing: n0, Quarter: math.Min(100, n0+10), Half: math.Min(100, n0+20), Chunkable: true}
		pot := OverlapPotential(p, cs, 4)
		for _, v := range pot.PerChunkPct {
			if v < -1e-9 || v > 200+1e-9 { // at most one full phase each side
				return false
			}
		}
		return pot.MinPct <= pot.AvgPct+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasuredPotentialPredictsSimulatedOrdering(t *testing.T) {
	// The Eq. 1 estimate from measured patterns must rank the
	// sequential pipeline above the late producer, mirroring what the
	// replay finds.
	seq := Analyze(mustTrace(t, "seq", 2, sequentialProducer(64, 4)))
	late := Analyze(mustTrace(t, "late", 2, lateProducer(64, 4)))
	pSeq := OverlapPotential(seq.AppProduction, seq.AppConsumption, 4)
	pLate := OverlapPotential(late.AppProduction, late.AppConsumption, 4)
	if pSeq.AvgPct <= pLate.AvgPct {
		t.Fatalf("Eq.1: sequential %.1f%% not above late %.1f%%", pSeq.AvgPct, pLate.AvgPct)
	}
}
