// Package metrics holds the quantitative machinery of the evaluation
// section: speedups (Fig. 6a) and the bandwidth searches behind the
// bandwidth-relaxation (Fig. 6b) and equivalent-bandwidth (Fig. 6c)
// results.
package metrics

import (
	"fmt"
	"math"
)

// Speedup returns base/variant, the paper's speedup definition: how many
// times faster the (overlapped) variant finishes compared with the
// (non-overlapped) base.
func Speedup(baseFinish, variantFinish float64) float64 {
	if variantFinish <= 0 {
		return math.Inf(1)
	}
	return baseFinish / variantFinish
}

// FinishFunc reports the simulated makespan of some execution at a given
// network bandwidth (MB/s). math.Inf(1) asks for the latency-only network.
type FinishFunc func(bandwidthMBps float64) (float64, error)

// SearchOptions tunes MinBandwidth.
type SearchOptions struct {
	// Lo and Hi bracket the search in MB/s.
	Lo, Hi float64
	// RelTol is the relative tolerance on the returned bandwidth.
	RelTol float64
	// MaxIter bounds the bisection.
	MaxIter int
}

// DefaultSearch spans 0.01 MB/s .. 1 TB/s with 0.5% tolerance.
func DefaultSearch() SearchOptions {
	return SearchOptions{Lo: 0.01, Hi: 1e6, RelTol: 0.005, MaxIter: 200}
}

// MinBandwidth finds the minimum bandwidth at which finish(bw) <= target,
// assuming finish is non-increasing in bandwidth. It returns:
//
//   - +Inf when even an infinitely fast network cannot reach the target
//     (the Fig. 6c Sweep3D case: "tends to infinity");
//   - opts.Lo when the target is already met at the lower bracket;
//   - otherwise the bisected threshold.
func MinBandwidth(finish FinishFunc, target float64, opts SearchOptions) (float64, error) {
	if opts.Lo <= 0 || opts.Hi <= opts.Lo {
		return 0, fmt.Errorf("metrics: bad search bracket [%g, %g]", opts.Lo, opts.Hi)
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 200
	}
	// Unreachable even without serialization delays?
	fInf, err := finish(math.Inf(1))
	if err != nil {
		return 0, err
	}
	if fInf > target {
		return math.Inf(1), nil
	}
	fLo, err := finish(opts.Lo)
	if err != nil {
		return 0, err
	}
	if fLo <= target {
		return opts.Lo, nil
	}
	fHi, err := finish(opts.Hi)
	if err != nil {
		return 0, err
	}
	if fHi > target {
		// Target met only beyond the bracket; report infinity rather
		// than extrapolating.
		return math.Inf(1), nil
	}
	lo, hi := opts.Lo, opts.Hi
	for i := 0; i < opts.MaxIter && (hi-lo) > opts.RelTol*hi; i++ {
		mid := math.Sqrt(lo * hi) // geometric: bandwidth spans decades
		f, err := finish(mid)
		if err != nil {
			return 0, err
		}
		if f <= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// BandwidthFactor expresses a bandwidth threshold relative to a reference:
// >1 means "needs that many times more bandwidth than the reference".
// Infinite thresholds stay infinite.
func BandwidthFactor(threshold, reference float64) float64 {
	if math.IsInf(threshold, 1) {
		return math.Inf(1)
	}
	if reference <= 0 {
		return math.NaN()
	}
	return threshold / reference
}

// FormatMBps renders a bandwidth for reports, using the paper's "tends to
// infinity" wording for unbounded results.
func FormatMBps(bw float64) string {
	if math.IsInf(bw, 1) {
		return "inf (not reachable at any bandwidth)"
	}
	return fmt.Sprintf("%.2f MB/s", bw)
}

// Series is a labelled sequence of (x, y) measurements, the unit in which
// the benchmark harness reports figure data.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Add appends one measurement.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// MinY returns the smallest Y value, or NaN when empty.
func (s *Series) MinY() float64 {
	if len(s.Y) == 0 {
		return math.NaN()
	}
	m := s.Y[0]
	for _, v := range s.Y[1:] {
		if v < m {
			m = v
		}
	}
	return m
}
