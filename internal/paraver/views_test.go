package paraver

import (
	"math"
	"strings"
	"testing"

	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ringResult simulates a small ring exchange for the view tests.
func ringResult(t *testing.T, ranks, iters int) *sim.Result {
	t.Helper()
	tr := trace.New("ring", "base", ranks)
	for it := 0; it < iters; it++ {
		for r := 0; r < ranks; r++ {
			next := (r + 1) % ranks
			prev := (r - 1 + ranks) % ranks
			tr.Append(r, trace.Record{Kind: trace.KindCompute, Instr: 1_000_000})
			tr.Append(r, trace.Record{Kind: trace.KindISend, Peer: next, Tag: it, Bytes: 10_000})
			tr.Append(r, trace.Record{Kind: trace.KindRecv, Peer: prev, Tag: it, Bytes: 10_000})
		}
	}
	cfg := network.Config{Processors: ranks, LatencySec: 1e-5, BandwidthMBps: 100, MIPS: 1000, EagerThresholdBytes: -1, RelativeSpeed: 1}
	res, err := sim.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCommMatrixOf(t *testing.T) {
	res := ringResult(t, 4, 3)
	m := CommMatrixOf(res)
	if m.Ranks != 4 {
		t.Fatalf("ranks=%d", m.Ranks)
	}
	for r := 0; r < 4; r++ {
		next := (r + 1) % 4
		if m.Messages[r][next] != 3 || m.Bytes[r][next] != 30_000 {
			t.Fatalf("ring edge %d->%d: %d msgs %d B", r, next, m.Messages[r][next], m.Bytes[r][next])
		}
		if m.Bytes[r][r] != 0 {
			t.Fatalf("self traffic on %d", r)
		}
	}
	if m.TotalBytes() != 4*3*10_000 {
		t.Fatalf("total=%d", m.TotalBytes())
	}
}

func TestCommMatrixFormat(t *testing.T) {
	res := ringResult(t, 4, 2)
	out := CommMatrixOf(res).Format()
	if !strings.Contains(out, "communication matrix") || !strings.Contains(out, "P0") {
		t.Fatalf("format:\n%s", out)
	}
	if !strings.ContainsAny(out, ".#+") {
		t.Fatalf("no density glyphs:\n%s", out)
	}
}

func TestTopTalkers(t *testing.T) {
	res := ringResult(t, 4, 2)
	m := CommMatrixOf(res)
	top := m.TopTalkers(2)
	if len(top) != 2 {
		t.Fatalf("top=%d", len(top))
	}
	// All ring edges carry equal traffic; ordering falls back to rank.
	if top[0].Src != 0 || top[0].Dst != 1 {
		t.Fatalf("deterministic tiebreak broken: %+v", top[0])
	}
	all := m.TopTalkers(0)
	if len(all) != 4 {
		t.Fatalf("all edges=%d, want 4", len(all))
	}
}

func TestWaitHistogram(t *testing.T) {
	res := ringResult(t, 4, 3)
	h := WaitHistogram(res, 5)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	waits := 0
	for _, iv := range res.Intervals {
		if iv.State == sim.StateWaitRecv {
			waits++
		}
	}
	if total != waits {
		t.Fatalf("histogram holds %d samples, want %d", total, waits)
	}
	if len(h.Edges) != 6 {
		t.Fatalf("edges=%d", len(h.Edges))
	}
	out := h.Format()
	if !strings.Contains(out, "wait durations") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestMessageSizeHistogramUniform(t *testing.T) {
	res := ringResult(t, 4, 2)
	h := MessageSizeHistogram(res, 3)
	// All messages are 10 kB: a single bin holds everything.
	nonzero := 0
	for _, c := range h.Counts {
		if c > 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("uniform sizes spread over %d bins", nonzero)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := histogramOf("x", nil, 4)
	if out := h.Format(); !strings.Contains(out, "no samples") {
		t.Fatalf("empty histogram format:\n%s", out)
	}
}

func TestEfficiencySlices(t *testing.T) {
	res := ringResult(t, 4, 3)
	slices := EfficiencySlices(res, 10)
	if len(slices) != 10 {
		t.Fatalf("slices=%d", len(slices))
	}
	var sum float64
	for _, e := range slices {
		if e < 0 || e > 1 {
			t.Fatalf("efficiency out of range: %v", slices)
		}
		sum += e
	}
	// Overall efficiency must match the profile's compute share.
	p := ProfileOf(res)
	if math.Abs(sum/10-p.ComputeShare) > 0.06 {
		t.Fatalf("slice mean %.3f vs profile %.3f", sum/10, p.ComputeShare)
	}
	out := FormatEfficiency(slices)
	if !strings.Contains(out, "overall") {
		t.Fatalf("efficiency format:\n%s", out)
	}
}

func TestEfficiencySlicesDegenerate(t *testing.T) {
	if got := EfficiencySlices(&sim.Result{}, 5); len(got) != 5 {
		t.Fatal("empty result must still return slices")
	}
	if out := FormatEfficiency(nil); !strings.Contains(out, "|") {
		t.Fatal("empty slices format")
	}
}

// hierRingResult simulates the same ring on a 2-node platform so both
// traffic classes appear.
func hierRingResult(t *testing.T, ranks int) *sim.Result {
	t.Helper()
	tr := trace.New("ring", "base", ranks)
	for r := 0; r < ranks; r++ {
		next := (r + 1) % ranks
		prev := (r - 1 + ranks) % ranks
		tr.Append(r, trace.Record{Kind: trace.KindCompute, Instr: 1_000_000})
		tr.Append(r, trace.Record{Kind: trace.KindISend, Peer: next, Tag: 0, Bytes: 10_000})
		tr.Append(r, trace.Record{Kind: trace.KindRecv, Peer: prev, Tag: 0, Bytes: 10_000})
	}
	cfg := network.Config{Processors: ranks, LatencySec: 1e-5, BandwidthMBps: 100, MIPS: 1000, EagerThresholdBytes: -1, RelativeSpeed: 1}
	p := cfg.Platform().WithNodes(2)
	p.Intra = network.Link{LatencySec: 1e-6, BandwidthMBps: 5000}
	res, err := sim.RunOn(p, tr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTrafficSummaryClassifies(t *testing.T) {
	res := hierRingResult(t, 8)
	s := TrafficSummaryOf(res)
	// An 8-rank ring on 2 block-mapped nodes: 6 hops stay inside a node,
	// 2 hops (3->4 and 7->0) cross the interconnect.
	if s.IntraMsgs != 6 || s.InterMsgs != 2 {
		t.Fatalf("split %d intra / %d inter, want 6/2", s.IntraMsgs, s.InterMsgs)
	}
	if s.IntraBytes != 60_000 || s.InterBytes != 20_000 {
		t.Fatalf("bytes %d intra / %d inter", s.IntraBytes, s.InterBytes)
	}
	if s.IntraLineSec <= 0 || s.InterLineSec <= 0 {
		t.Fatalf("line lengths not populated: %+v", s)
	}
	out := s.Format()
	for _, want := range []string{"intra-node", "inter-node", "75.0%", "25.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestCommLinesAnnotateIntra(t *testing.T) {
	res := hierRingResult(t, 8)
	out := CommLines(res, 0)
	if strings.Count(out, "[intra]") != 6 {
		t.Fatalf("want 6 [intra] markers:\n%s", out)
	}
	// Flat replays must not grow markers.
	flat := ringResult(t, 4, 1)
	if strings.Contains(CommLines(flat, 0), "[intra]") {
		t.Fatal("flat replay annotated as intra-node")
	}
}
