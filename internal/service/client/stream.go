package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/core"
	"repro/internal/service"
)

// ScenarioStream is a pull iterator over a streaming scenario response
// (POST /v1/scenarios with Accept: application/x-ndjson). Points arrive
// in the same deterministic order the batch result lists them, each one
// as soon as the daemon finishes it. Not safe for concurrent use; Close
// when done (early Close abandons — and thereby cancels — the run on
// the daemon if no other client shares it).
type ScenarioStream struct {
	body   io.ReadCloser
	sc     *bufio.Scanner
	header core.ScenarioHeader
	points int
	done   bool
	err    error
}

// Scenario opens a streaming scenario run. The returned stream has
// already consumed the header frame, so Header is immediately valid;
// call Next until io.EOF for the points. The opening POST retries per
// the client's RetryPolicy (a mid-stream failure does not: replaying
// frames already delivered is the caller's call to make).
func (c *Client) ScenarioStream(ctx context.Context, req service.ScenarioRequest) (*ScenarioStream, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var resp *http.Response
	for attempt := 0; ; attempt++ {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/scenarios", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set("Accept", service.NDJSONContentType)
		resp, err = c.hc.Do(hreq)
		if err != nil {
			if attempt >= c.retry.Retries || ctx.Err() != nil {
				return nil, err
			}
			if sleepCtx(ctx, c.retry.wait(attempt, 0)) != nil {
				return nil, err
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			payload, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			serr := statusError(http.MethodPost, "/v1/scenarios", resp.StatusCode, payload)
			if retryableStatus(resp.StatusCode) && attempt < c.retry.Retries {
				if sleepCtx(ctx, c.retry.wait(attempt, parseRetryAfter(resp.Header.Get("Retry-After")))) != nil {
					return nil, serr
				}
				continue
			}
			return nil, serr
		}
		break
	}
	s := &ScenarioStream{body: resp.Body, sc: bufio.NewScanner(resp.Body)}
	s.sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	frame, err := s.frame()
	if err != nil {
		s.Close()
		return nil, err
	}
	if frame.Header == nil {
		s.Close()
		return nil, fmt.Errorf("client: scenario stream: first frame is not a header")
	}
	if err := json.Unmarshal(frame.Header, &s.header); err != nil {
		s.Close()
		return nil, fmt.Errorf("client: scenario stream: decode header: %w", err)
	}
	return s, nil
}

// Header returns the stream's scenario header (spec digest, axes, grid
// size) — available before any point has arrived.
func (s *ScenarioStream) Header() core.ScenarioHeader { return s.header }

// frame reads and decodes one NDJSON line.
func (s *ScenarioStream) frame() (service.StreamFrame, error) {
	var f service.StreamFrame
	if !s.sc.Scan() {
		if err := s.sc.Err(); err != nil {
			return f, err
		}
		return f, io.ErrUnexpectedEOF
	}
	if err := json.Unmarshal(s.sc.Bytes(), &f); err != nil {
		return f, fmt.Errorf("client: scenario stream: decode frame: %w", err)
	}
	return f, nil
}

// Next returns the next grid point. io.EOF signals a complete stream
// (the done frame arrived and its count matched); any other error means
// the stream failed or was truncated.
func (s *ScenarioStream) Next() (core.ScenarioPoint, error) {
	var pt core.ScenarioPoint
	if s.done || s.err != nil {
		if s.err != nil {
			return pt, s.err
		}
		return pt, io.EOF
	}
	frame, err := s.frame()
	if err != nil {
		s.err = err
		return pt, err
	}
	switch {
	case frame.Point != nil:
		if err := json.Unmarshal(frame.Point, &pt); err != nil {
			s.err = fmt.Errorf("client: scenario stream: decode point: %w", err)
			return pt, s.err
		}
		s.points++
		return pt, nil
	case frame.Done != nil:
		s.done = true
		if frame.Done.Points != s.points {
			s.err = fmt.Errorf("client: scenario stream: done frame counts %d points, received %d", frame.Done.Points, s.points)
			return pt, s.err
		}
		return pt, io.EOF
	case frame.Error != "":
		s.err = fmt.Errorf("client: scenario stream: %s", frame.Error)
		return pt, s.err
	default:
		s.err = fmt.Errorf("client: scenario stream: empty frame")
		return pt, s.err
	}
}

// Close releases the stream's connection. Safe to call at any time,
// including after io.EOF.
func (s *ScenarioStream) Close() error { return s.body.Close() }
