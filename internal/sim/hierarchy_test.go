package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/network"
	"repro/internal/trace"
)

// testPlatform returns a multi-node platform with a markedly faster intra
// link, constrained enough (ports, buses) to exercise every resource pool.
func testPlatform(procs, nodes int) network.Platform {
	p := testCfg(procs).Platform().WithNodes(nodes)
	p.Intra = network.Link{LatencySec: 0.5e-6, BandwidthMBps: 5000}
	p.IntraBuses = 2
	p.Inter = network.Link{LatencySec: 10e-6, BandwidthMBps: 100}
	p.Buses = 4
	p.InPorts = 1
	p.OutPorts = 1
	return p
}

// TestFlatPlatformEquivalence is the refactor's keystone property: a
// platform with one rank per node and identical intra/inter link
// parameters must reproduce the flat model's Result byte for byte — same
// finish, same intervals, same per-rank stats, same comm timestamps.
func TestFlatPlatformEquivalence(t *testing.T) {
	cfgs := []network.Config{
		testCfg(8),
		func() network.Config { c := testCfg(8); c.Buses = 3; c.InPorts = 1; c.OutPorts = 1; return c }(),
		func() network.Config { c := testCfg(8); c.EagerThresholdBytes = 10_000; return c }(),
		func() network.Config { c := testCfg(8); c.Buses = 2; c.CongestionFactor = 1.5; return c }(),
	}
	mappings := []network.Mapping{network.BlockMapping(), network.RoundRobinMapping()}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomBalancedTrace(rng, 3+rng.Intn(5), 30+rng.Intn(40))
		for ci, cfg := range cfgs {
			flat, err := Run(cfg, tr)
			if err != nil {
				t.Logf("cfg %d flat replay: %v", ci, err)
				return false
			}
			for _, m := range mappings {
				// One rank per node: both mappings are bijections, and
				// intra==inter by construction of Config.Platform().
				p := cfg.Platform().WithMapping(m)
				hier, err := RunOn(p, tr)
				if err != nil {
					t.Logf("cfg %d mapping %s: %v", ci, m, err)
					return false
				}
				if !reflect.DeepEqual(flat, hier) {
					t.Logf("cfg %d mapping %s: results diverge (finish %g vs %g)",
						ci, m, flat.FinishSec, hier.FinishSec)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestHierarchyConservation: under any mapping, the replay must neither
// create nor destroy traffic, and every message must be classified into
// exactly one link class.
func TestHierarchyConservation(t *testing.T) {
	mappings := []network.Mapping{
		network.BlockMapping(),
		network.RoundRobinMapping(),
		network.ExplicitMapping([]int{1, 1, 0, 0, 1, 0, 0, 1}),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomBalancedTrace(rng, 3+rng.Intn(6), 30+rng.Intn(40))
		st := tr.Stats()
		for _, m := range mappings {
			p := testPlatform(8, 2).WithMapping(m)
			res, err := RunOn(p, tr)
			if err != nil {
				t.Logf("mapping %s: %v", m, err)
				return false
			}
			var bytes int64
			var msgs int
			for r := range res.Ranks {
				bytes += res.Ranks[r].BytesSent
				msgs += res.Ranks[r].MsgsSent
			}
			if bytes != st.BytesSent || msgs != st.Messages {
				t.Logf("mapping %s: sent %d B/%d msgs, trace has %d B/%d msgs", m, bytes, msgs, st.BytesSent, st.Messages)
				return false
			}
			ib, eb, im, em := res.TrafficSplit()
			if ib+eb != st.BytesSent || im+em != st.Messages {
				t.Logf("mapping %s: split %d+%d B / %d+%d msgs does not cover the trace", m, ib, eb, im, em)
				return false
			}
			// The classification must agree with the mapping itself.
			for _, c := range res.Comms {
				if c.Intra != (p.NodeOf(c.Src) == p.NodeOf(c.Dst)) {
					t.Logf("mapping %s: comm %d->%d misclassified intra=%v", m, c.Src, c.Dst, c.Intra)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestHierarchyDeadlockFree: random balanced traces complete under every
// mapping policy and under tight resource bounds (1 bus, 1 port per
// class), including with rendezvous sends.
func TestHierarchyDeadlockFree(t *testing.T) {
	mappings := []network.Mapping{
		network.BlockMapping(),
		network.RoundRobinMapping(),
		network.ExplicitMapping([]int{2, 0, 1, 2, 0, 1, 2, 0}),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomBalancedTrace(rng, 3+rng.Intn(6), 30+rng.Intn(40))
		for _, m := range mappings {
			p := testPlatform(8, 3).WithMapping(m)
			p.IntraBuses = 1
			p.Buses = 1
			p.EagerThresholdBytes = 50_000 // large messages rendezvous
			if err := p.Validate(); err != nil {
				t.Logf("platform invalid: %v", err)
				return false
			}
			res, err := RunOn(p, tr)
			if err != nil {
				t.Logf("mapping %s deadlocked or failed: %v", m, err)
				return false
			}
			if res.FinishSec < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestMappingChangesElapsedTime: on a ring, block placement keeps most
// neighbour exchanges inside a node while round-robin forces every hop
// across the slow interconnect, so the two placements must produce
// measurably different makespans.
func TestMappingChangesElapsedTime(t *testing.T) {
	tr := ringTrace(8, 10, 100_000, 200_000)
	p := testPlatform(8, 2)
	block, err := RunOn(p.WithMapping(network.BlockMapping()), tr)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := RunOn(p.WithMapping(network.RoundRobinMapping()), tr)
	if err != nil {
		t.Fatal(err)
	}
	if block.FinishSec >= rr.FinishSec {
		t.Fatalf("block placement (%g s) not faster than round-robin (%g s) on a ring with fast intra links",
			block.FinishSec, rr.FinishSec)
	}
	bi, _, _, _ := block.TrafficSplit()
	ri, _, _, _ := rr.TrafficSplit()
	if bi == 0 {
		t.Fatal("block placement produced no intra-node traffic on a ring")
	}
	if ri != 0 {
		t.Fatalf("round-robin on 2 nodes x 4 ranks should alternate nodes every hop, got %d intra bytes", ri)
	}
}

// TestIntraTransfersBypassInterconnect: with a single global bus and a
// single NIC port pair per node, concurrent intra-node transfers must not
// queue behind inter-node traffic.
func TestIntraTransfersBypassInterconnect(t *testing.T) {
	// Ranks 0,1 on node 0; ranks 2,3 on node 1. Rank 0 sends a huge
	// message to rank 2 (inter), then rank 1 sends to rank 0 (intra).
	tr := trace.New("bypass", "base", 4)
	tr.Append(0, trace.Record{Kind: trace.KindISend, Peer: 2, Tag: 1, Bytes: 10_000_000})
	tr.Append(2, trace.Record{Kind: trace.KindRecv, Peer: 0, Tag: 1, Bytes: 10_000_000})
	tr.Append(1, trace.Record{Kind: trace.KindISend, Peer: 0, Tag: 2, Bytes: 1_000})
	tr.Append(0, trace.Record{Kind: trace.KindRecv, Peer: 1, Tag: 2, Bytes: 1_000})
	p := testPlatform(4, 2)
	p.Buses = 1
	res, err := RunOn(p, tr)
	if err != nil {
		t.Fatal(err)
	}
	var intraMatch, interMatch float64
	for _, c := range res.Comms {
		if c.Intra {
			intraMatch = c.MatchT
		} else {
			interMatch = c.MatchT
		}
	}
	if intraMatch >= interMatch {
		t.Fatalf("intra-node transfer (match %g) queued behind the 10 MB inter-node transfer (match %g)",
			intraMatch, interMatch)
	}
}

// TestIntraBusPoolSerializes: two concurrent intra-node transfers on a
// 1-bus node must serialize, and relaxing the pool must restore overlap.
func TestIntraBusPoolSerializes(t *testing.T) {
	build := func() *trace.Trace {
		tr := trace.New("pair", "base", 4)
		tr.Append(0, trace.Record{Kind: trace.KindISend, Peer: 1, Tag: 1, Bytes: 5_000_000})
		tr.Append(1, trace.Record{Kind: trace.KindRecv, Peer: 0, Tag: 1, Bytes: 5_000_000})
		tr.Append(2, trace.Record{Kind: trace.KindISend, Peer: 3, Tag: 2, Bytes: 5_000_000})
		tr.Append(3, trace.Record{Kind: trace.KindRecv, Peer: 2, Tag: 2, Bytes: 5_000_000})
		return tr
	}
	p := testPlatform(4, 1) // all four ranks on one node
	p.IntraBuses = 1
	tight, err := RunOn(p, build())
	if err != nil {
		t.Fatal(err)
	}
	p.IntraBuses = 0 // unlimited
	loose, err := RunOn(p, build())
	if err != nil {
		t.Fatal(err)
	}
	if tight.FinishSec <= loose.FinishSec {
		t.Fatalf("1-bus intra pool (%g s) should be slower than unlimited (%g s)", tight.FinishSec, loose.FinishSec)
	}
}
