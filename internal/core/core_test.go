package core

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/tracer"
)

// pipelineKernel is a minimal overlap-friendly app: rank 0 produces and
// sends, rank 1 consumes, both sequentially.
func pipelineKernel(n, iters int, work int64) func(p *tracer.Proc) {
	return func(p *tracer.Proc) {
		buf := p.NewArray("pipe", n)
		for it := 0; it < iters; it++ {
			if p.Rank() == 0 {
				for i := 0; i < n; i++ {
					p.Compute(work)
					buf.Store(i, float64(i))
				}
				p.Send(1, 0, buf)
			} else {
				p.Recv(buf, 0, 0)
				for i := 0; i < n; i++ {
					p.Compute(work)
					_ = buf.Load(i)
				}
			}
		}
	}
}

func testNet(procs int) network.Config {
	c := network.Testbed(procs)
	return c
}

func TestAnalyzeRejectsBadInputs(t *testing.T) {
	if _, err := Analyze(App{Name: "x"}, 2, testNet(2), tracer.DefaultConfig()); err == nil {
		t.Fatal("nil kernel accepted")
	}
	bad := testNet(2)
	bad.MIPS = 0
	if _, err := Analyze(App{Name: "x", Kernel: pipelineKernel(8, 1, 1)}, 2, bad, tracer.DefaultConfig()); err == nil {
		t.Fatal("invalid network accepted")
	}
}

func TestAnalyzePipeline(t *testing.T) {
	app := App{Name: "pipe", Kernel: pipelineKernel(4000, 4, 200)}
	rep, err := Analyze(app, 2, testNet(2), tracer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Base == nil || rep.Real == nil || rep.Ideal == nil {
		t.Fatal("missing results")
	}
	// Overlap must never slow this pipeline down, and with sequential
	// production/consumption the real overlap should help measurably.
	if rep.SpeedupReal < 1.0 {
		t.Fatalf("real overlap slowed the pipeline: speedup=%.4f", rep.SpeedupReal)
	}
	if rep.SpeedupIdeal < 1.0 {
		t.Fatalf("ideal overlap slowed the pipeline: speedup=%.4f", rep.SpeedupIdeal)
	}
	if rep.SpeedupReal < 1.01 {
		t.Fatalf("sequential pipeline should gain from real overlap, got %.4f", rep.SpeedupReal)
	}
	// Patterns of a sequential pipeline are near ideal.
	p := rep.Patterns.AppProduction
	if math.Abs(p.Quarter-25) > 8 || math.Abs(p.Half-50) > 8 {
		t.Errorf("production pattern off: %+v", p)
	}
}

func TestReportAccessors(t *testing.T) {
	app := App{Name: "pipe", Kernel: pipelineKernel(100, 2, 50)}
	rep, err := Analyze(app, 2, testNet(2), tracer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Flavor{FlavorBase, FlavorReal, FlavorIdeal} {
		if rep.TraceOf(f) == nil || rep.ResultOf(f) == nil {
			t.Fatalf("missing artifacts for flavor %s", f)
		}
	}
	if rep.TraceOf("nope") != nil || rep.ResultOf("nope") != nil {
		t.Fatal("unknown flavor should be nil")
	}
}

func TestFinishAtHigherBandwidthIsFaster(t *testing.T) {
	app := App{Name: "pipe", Kernel: pipelineKernel(4000, 3, 100)}
	rep, err := Analyze(app, 2, testNet(2), tracer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	slow, err := rep.FinishAt(FlavorBase, rep.Network.WithBandwidth(10))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := rep.FinishAt(FlavorBase, rep.Network.WithBandwidth(1000))
	if err != nil {
		t.Fatal(err)
	}
	if fast >= slow {
		t.Fatalf("bandwidth had no effect: slow=%g fast=%g", slow, fast)
	}
}

func TestRelaxedBandwidthBelowReference(t *testing.T) {
	app := App{Name: "pipe", Kernel: pipelineKernel(4000, 3, 100)}
	rep, err := Analyze(app, 2, testNet(2), tracer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bw, err := rep.RelaxedBandwidth(FlavorReal, metrics.DefaultSearch())
	if err != nil {
		t.Fatal(err)
	}
	// The overlapped run matches the base at most at the reference
	// bandwidth; overlap-friendly pipelines tolerate much less.
	if bw > rep.Network.BandwidthMBps {
		t.Fatalf("relaxed bandwidth %g above reference %g", bw, rep.Network.BandwidthMBps)
	}
	if _, err := rep.RelaxedBandwidth(FlavorBase, metrics.DefaultSearch()); err == nil {
		t.Fatal("base flavor must be rejected")
	}
}

func TestEquivalentBandwidthAboveReference(t *testing.T) {
	app := App{Name: "pipe", Kernel: pipelineKernel(4000, 3, 100)}
	rep, err := Analyze(app, 2, testNet(2), tracer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bw, err := rep.EquivalentBandwidth(FlavorReal, metrics.DefaultSearch())
	if err != nil {
		t.Fatal(err)
	}
	// Matching the overlapped run requires at least the reference
	// bandwidth (possibly infinity).
	if !math.IsInf(bw, 1) && bw < rep.Network.BandwidthMBps*0.9 {
		t.Fatalf("equivalent bandwidth %g below reference %g", bw, rep.Network.BandwidthMBps)
	}
	if _, err := rep.EquivalentBandwidth(FlavorBase, metrics.DefaultSearch()); err == nil {
		t.Fatal("base flavor must be rejected")
	}
}

func TestBandwidthSweepMonotone(t *testing.T) {
	app := App{Name: "pipe", Kernel: pipelineKernel(2000, 2, 100)}
	rep, err := Analyze(app, 2, testNet(2), tracer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := rep.BandwidthSweep(FlavorBase, []float64{5, 25, 125, 625})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Y) != 4 {
		t.Fatalf("series length %d", len(s.Y))
	}
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] > s.Y[i-1]*1.0000001 {
			t.Fatalf("finish not monotone in bandwidth: %v", s.Y)
		}
	}
}
