// The observability acceptance path: one scenario through the full
// stack, then both exposition endpoints — /metrics (Prometheus text
// format, parsed with the repo's own parser) and /v1/debug/telemetry
// (deterministic JSON snapshot) — must serve the engine, service,
// scenario-stage, and PDES shard-phase families, all advanced by the
// work the scenario caused.
package service_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/engine"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/telemetry"
)

// val reads one sample (or label-summed family) from a parsed scrape,
// treating absence as zero.
func val(pm telemetry.ParsedMetrics, key string) float64 {
	v, _ := pm.Value(key)
	return v
}

func TestObservabilityEndpoints(t *testing.T) {
	eng := engine.New(4)
	// ReplayShards=2 forces the PDES path so the shard-phase families
	// advance; fatnode-smp at 32 ranks is 2 nodes with unlimited intra
	// buses, which is exactly what EffectiveShards requires.
	mgr, err := service.NewManager(service.Options{Engine: eng, ReplayShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewHandler(mgr))
	t.Cleanup(srv.Close)
	cl := client.New(srv.URL, srv.Client())
	ctx := context.Background()

	// Baseline scrape: proves the body parses as Prometheus text format
	// even before this test causes any work (the registry is process
	// global, so absolute values belong to the whole test binary).
	before, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}

	req := service.ScenarioRequest{
		App: "cg", Ranks: 32,
		Platform: &service.PlatformSpec{Preset: "fatnode-smp"},
		Output:   "finish",
	}
	if _, err := cl.ScenarioRaw(ctx, req); err != nil {
		t.Fatal(err)
	}

	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("middleware did not stamp X-Request-Id")
	}

	after, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Every layer's family must exist and have advanced past the
	// pre-scenario scrape.
	advanced := []string{
		"engine_jobs_started_total",                // engine
		"engine_job_seconds_count",                 // engine histogram
		"sim_replays_total",                        // sim replay core
		"sim_replay_events_total",                  // calendar-queue pops
		"sim_pdes_replays_total",                   // PDES path taken
		"sim_pdes_windows_total",                   // horizon advances
		"sim_pdes_shard_events_total",              // per-shard events (summed over labels)
		"sim_pdes_parallel_seconds_total",          // shard-phase wall time
		"scenario_stage_seconds_count",             // per-stage timings (all stages)
		"http_requests_total",                      // middleware counter
		"service_result_cache_misses_total",        // manager funcs
		`scenario_points_total{source="computed"}`, // the point we computed
	}
	for _, key := range advanced {
		b, a := val(before, key), val(after, key)
		if a <= b {
			t.Errorf("%s did not advance: %v -> %v", key, b, a)
		}
	}
	// The endpoint-labelled series carries the mux pattern, not the path.
	if val(after, `http_requests_total{code="200",endpoint="POST /v1/scenarios"}`) < 1 {
		t.Errorf("no pattern-labelled request count for POST /v1/scenarios; keys: %v", after.Keys())
	}
	if val(after, `scenario_stage_seconds_count{stage="replay"}`) < 1 {
		t.Errorf("no replay-stage timing recorded")
	}

	// The JSON snapshot serves the same families.
	snap, err := cl.Telemetry(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"engine_jobs_started_total", "engine_job_wait_seconds",
		"sim_replays_total", "sim_pdes_windows_total", "sim_pdes_shard_events_total",
		"scenario_stage_seconds", "scenario_points_total",
		"http_requests_total", "http_request_seconds",
		"service_queue_wait_seconds", "service_result_cache_hits_total",
		"service_queue_depth", "service_uptime_seconds",
	} {
		m := snap.Find(name)
		if m == nil {
			t.Errorf("snapshot is missing %s", name)
			continue
		}
		if len(m.Samples) == 0 {
			t.Errorf("snapshot family %s has no samples", name)
		}
	}
	if m := snap.Find("service_uptime_seconds"); m != nil && m.Samples[0].Value <= 0 {
		t.Errorf("service_uptime_seconds = %v, want > 0", m.Samples[0].Value)
	}

	// A cached rerun serves bytes without engine work: the engine job
	// counter must not move, while the result-cache hit counter must.
	beforeRerun := after
	if _, err := cl.ScenarioRaw(ctx, req); err != nil {
		t.Fatal(err)
	}
	rerun, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := val(rerun, "engine_jobs_started_total"), val(beforeRerun, "engine_jobs_started_total"); got != want {
		t.Errorf("cached rerun spawned engine jobs: %v -> %v", want, got)
	}
	if val(rerun, "service_result_cache_hits_total") <= val(beforeRerun, "service_result_cache_hits_total") {
		t.Errorf("cached rerun did not count a result-cache hit")
	}
}
