package cluster

import (
	"context"
	"fmt"
	"testing"
)

// testCluster spins up n in-process nodes, fully joined through node 0.
func testCluster(t *testing.T, n int) (*MemNetwork, []*Node) {
	t.Helper()
	net := NewMemNetwork()
	nodes := make([]*Node, n)
	for i := range nodes {
		addr := fmt.Sprintf("node-%d", i)
		node, err := NewNode(Config{Name: addr, Addr: addr, Transport: net})
		if err != nil {
			t.Fatal(err)
		}
		net.Attach(addr, node.HandleRPC)
		nodes[i] = node
	}
	for i := 1; i < n; i++ {
		if err := nodes[i].Join(context.Background(), nodes[0].Self().Addr); err != nil {
			t.Fatalf("node %d join: %v", i, err)
		}
	}
	// One more self-lookup round so early joiners learn late ones.
	for _, nd := range nodes {
		nd.iterate(context.Background(), nd.Self().ID, "", false)
	}
	return net, nodes
}

func TestJoinPopulatesTables(t *testing.T) {
	_, nodes := testCluster(t, 5)
	for i, nd := range nodes {
		if got := nd.Table().Len(); got != 4 {
			t.Fatalf("node %d knows %d peers, want 4", i, got)
		}
	}
}

func TestStoreGetAcrossCluster(t *testing.T) {
	ctx := context.Background()
	_, nodes := testCluster(t, 5)
	key := "sha256:aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
	val := []byte("the artifact")
	if stored := nodes[1].Store(ctx, key, "blob", val); stored == 0 {
		t.Fatal("no replica acknowledged the store")
	}
	// Every node — including ones outside the replica set — finds it.
	for i, nd := range nodes {
		got, kind, ok := nd.Get(ctx, key)
		if !ok {
			t.Fatalf("node %d did not find the key", i)
		}
		if string(got) != string(val) || kind != "blob" {
			t.Fatalf("node %d got %q kind %q", i, got, kind)
		}
	}
	// The K closest replicated it locally (5 nodes < DefaultK, so all
	// of them hold a copy after the store alone).
	holders := 0
	for _, nd := range nodes {
		if nd.Has(key) {
			holders++
		}
	}
	if holders != 5 {
		t.Fatalf("%d holders after store, want 5 (cluster smaller than K)", holders)
	}
}

func TestGetMissingKey(t *testing.T) {
	ctx := context.Background()
	_, nodes := testCluster(t, 3)
	if _, _, ok := nodes[0].Get(ctx, "sha256:bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"); ok {
		t.Fatal("found a key never stored")
	}
}

// TestOwnerAgreement: with converged tables every node names the same
// owner for a key, and that owner is the globally XOR-closest node —
// the invariant the cross-node singleflight leans on.
func TestOwnerAgreement(t *testing.T) {
	_, nodes := testCluster(t, 5)
	for trial := 0; trial < 50; trial++ {
		key := fmt.Sprintf("sha256:%064x", trial*7919)
		target := KeyID(key)
		want := nodes[0].Self()
		for _, nd := range nodes[1:] {
			if Closer(target, nd.Self().ID, want.ID) {
				want = nd.Self()
			}
		}
		for i, nd := range nodes {
			if got := nd.Owner(key); got.ID != want.ID {
				t.Fatalf("key %s: node %d names owner %s, global closest is %s", key, i, got.ID, want.ID)
			}
		}
	}
}

func TestExecRoundTrip(t *testing.T) {
	ctx := context.Background()
	_, nodes := testCluster(t, 3)
	nodes[2].SetExecutor(func(_ context.Context, kind string, payload []byte) ([]byte, error) {
		return []byte(kind + ":" + string(payload)), nil
	})
	out, err := nodes[0].Exec(ctx, nodes[2].Self(), "echo", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "echo:hi" {
		t.Fatalf("exec returned %q", out)
	}
	// A node with no executor answers with an application error.
	if _, err := nodes[0].Exec(ctx, nodes[1].Self(), "echo", []byte("hi")); err == nil {
		t.Fatal("exec on executor-less node succeeded")
	}
	// Executor errors travel back as errors.
	nodes[2].SetExecutor(func(context.Context, string, []byte) ([]byte, error) {
		return nil, fmt.Errorf("boom")
	})
	if _, err := nodes[0].Exec(ctx, nodes[2].Self(), "echo", nil); err == nil {
		t.Fatal("executor error not propagated")
	} else if err.Error() == "" {
		t.Fatal("empty error")
	}
}

// TestDrainLeavesPolitely is the drain satellite's unit half: a
// draining node refuses fresh keys, keeps serving the ones it holds
// (never strands results), and its Draining responses age it out of
// peers' routing tables.
func TestDrainLeavesPolitely(t *testing.T) {
	ctx := context.Background()
	_, nodes := testCluster(t, 4)
	held := "sha256:cccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccc"
	nodes[3].Store(ctx, held, "blob", []byte("kept"))
	if !nodes[3].Has(held) {
		t.Fatal("node 3 should hold the key (cluster smaller than K)")
	}

	nodes[3].Drain()

	// Fresh stores are refused...
	fresh := &Request{Op: OpStore, From: nodes[0].Self(), Key: "sha256:dddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddd", Kind: "blob", Value: []byte("new")}
	if resp := nodes[3].HandleRPC(ctx, fresh); resp.Stored || resp.Err == "" || !resp.Draining {
		t.Fatalf("draining node accepted a fresh key: %+v", resp)
	}
	// ...but held keys still serve, and re-replication of them is fine.
	if resp := nodes[3].HandleRPC(ctx, &Request{Op: OpFindValue, From: nodes[0].Self(), Key: held}); !resp.Found {
		t.Fatal("draining node stranded a held value")
	}
	if resp := nodes[3].HandleRPC(ctx, &Request{Op: OpStore, From: nodes[0].Self(), Key: held, Kind: "blob", Value: []byte("kept")}); !resp.Stored {
		t.Fatal("draining node refused re-replication of a held key")
	}

	// Peers that talk to it see Draining and drop it from their tables.
	if _, err := nodes[0].Ping(ctx, nodes[3].Self().Addr); err != nil {
		t.Fatal(err)
	}
	for _, c := range nodes[0].Table().Contacts() {
		if c.ID == nodes[3].Self().ID {
			t.Fatal("draining node still in a peer's table after contact")
		}
	}
	// And the draining node itself skips its local replica on stores.
	k2 := "sha256:eeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeee"
	nodes[3].Store(ctx, k2, "blob", []byte("flushed"))
	if nodes[3].Has(k2) {
		t.Fatal("draining node kept a local replica of flushed data")
	}
	found := false
	for _, nd := range nodes[:3] {
		if nd.Has(k2) {
			found = true
		}
	}
	if !found {
		t.Fatal("flushed value reached no healthy peer")
	}
}

// TestTransportFailureEvictsContact: a dead peer disappears from the
// caller's table on the first failed RPC.
func TestTransportFailureEvictsContact(t *testing.T) {
	ctx := context.Background()
	net, nodes := testCluster(t, 3)
	net.SetDown(nodes[2].Self().Addr, true)
	if _, err := nodes[0].Exec(ctx, nodes[2].Self(), "x", []byte("y")); err == nil {
		t.Fatal("call to downed node succeeded")
	}
	for _, c := range nodes[0].Table().Contacts() {
		if c.ID == nodes[2].Self().ID {
			t.Fatal("downed node still in the table")
		}
	}
}

func TestStatus(t *testing.T) {
	ctx := context.Background()
	_, nodes := testCluster(t, 3)
	key := "sha256:abababababababababababababababababababababababababababababababab"
	nodes[0].Store(ctx, key, "point", []byte("v"))
	st := nodes[0].Status()
	if st.Name != "node-0" || st.Addr != "node-0" || st.Draining {
		t.Fatalf("bad status identity: %+v", st)
	}
	if len(st.Peers) != 2 {
		t.Fatalf("status lists %d peers, want 2", len(st.Peers))
	}
	if st.StoredKeys != 1 || st.KeysByKind["point"] != 1 {
		t.Fatalf("bad key accounting: %+v", st)
	}
	if st.K != DefaultK {
		t.Fatalf("K = %d", st.K)
	}
}

func TestJoinNoBootstrapReachable(t *testing.T) {
	net := NewMemNetwork()
	node, err := NewNode(Config{Name: "loner", Addr: "loner", Transport: net})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Join(context.Background(), "ghost-1", "ghost-2"); err == nil {
		t.Fatal("join with no reachable bootstrap succeeded")
	}
	// Joining with no addresses at all is fine: a single-node cluster.
	if err := node.Join(context.Background()); err != nil {
		t.Fatal(err)
	}
}
