package core

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/tracer"
)

// Placement studies on hierarchical platforms: which rank→node mapping and
// which node count serve an application best? Both sweeps trace the
// application once and fan the per-point replays out across the experiment
// engine, exactly like the chunk and bandwidth sweeps.

// MappingPoint is one measurement of a placement sweep.
type MappingPoint struct {
	// Mapping is the placement this point measured.
	Mapping network.Mapping
	// BaseFinishSec and RealFinishSec are the non-overlapped and
	// overlapped(real) makespans under this placement.
	BaseFinishSec, RealFinishSec float64
	// SpeedupReal compares the overlapped against the non-overlapped
	// execution under this placement.
	SpeedupReal float64
	// IntraBytes and InterBytes split the non-overlapped traffic by link
	// class — the quantity a placement optimizer drives up and down.
	IntraBytes, InterBytes int64
}

// MappingSweep replays the application under each rank→node mapping on the
// given platform. Points run concurrently on the default engine.
func MappingSweep(app App, ranks int, plat network.Platform, tCfg tracer.Config, mappings []network.Mapping) ([]MappingPoint, error) {
	return MappingSweepWith(context.Background(), nil, app, ranks, plat, tCfg, mappings)
}

// MappingSweepWith is MappingSweep under an explicit context and engine
// (nil selects the default engine). It is a thin wrapper over a scenario
// spec — a mapping axis with traffic output — so the application is
// traced once, each flavor compiles once, and the per-mapping replays
// run on pooled arenas across the worker pool.
func MappingSweepWith(ctx context.Context, eng *engine.Engine, app App, ranks int, plat network.Platform, tCfg tracer.Config, mappings []network.Mapping) ([]MappingPoint, error) {
	specs := make([]string, len(mappings))
	for i, m := range mappings {
		specs[i] = m.String()
	}
	res, err := RunScenario(ctx, eng, Scenario{
		App: app, Ranks: ranks, Tracer: tCfg, Platform: plat,
		Flavors: []Flavor{FlavorBase, FlavorReal},
		Axes:    []Axis{MappingAxis(specs...)},
		Output:  OutputTraffic,
	})
	if err != nil {
		return nil, err
	}
	out := make([]MappingPoint, len(res.Points))
	for i, pt := range res.Points {
		out[i] = mappingPointFrom(mappings[i], pt)
	}
	return out, nil
}

// mappingPointFrom converts one traffic-output scenario point (flavors
// base, overlap-real) back to the legacy sweep vocabulary.
func mappingPointFrom(m network.Mapping, pt ScenarioPoint) MappingPoint {
	base, real := pt.Flavors[0], pt.Flavors[1]
	return MappingPoint{
		Mapping:       m,
		BaseFinishSec: base.FinishSec,
		RealFinishSec: real.FinishSec,
		SpeedupReal:   metrics.Speedup(base.FinishSec, real.FinishSec),
		IntraBytes:    base.Traffic.IntraBytes,
		InterBytes:    base.Traffic.InterBytes,
	}
}

// NodeCountPoint is one measurement of a node-count sweep.
type NodeCountPoint struct {
	// Nodes is the cluster size this point measured (ranks fixed).
	Nodes int
	// BaseFinishSec and RealFinishSec are the two makespans; SpeedupReal
	// compares them.
	BaseFinishSec, RealFinishSec float64
	SpeedupReal                  float64
	// IntraBytes and InterBytes split the non-overlapped traffic.
	IntraBytes, InterBytes int64
}

// NodeCountSweep replays the application across cluster shapes: the same
// ranks packed onto each of the given node counts under the platform's
// mapping. Points run concurrently on the default engine.
func NodeCountSweep(app App, ranks int, plat network.Platform, tCfg tracer.Config, nodeCounts []int) ([]NodeCountPoint, error) {
	return NodeCountSweepWith(context.Background(), nil, app, ranks, plat, tCfg, nodeCounts)
}

// NodeCountSweepWith is NodeCountSweep under an explicit context and
// engine (nil selects the default engine) — a thin wrapper over a
// node-count-axis scenario spec.
func NodeCountSweepWith(ctx context.Context, eng *engine.Engine, app App, ranks int, plat network.Platform, tCfg tracer.Config, nodeCounts []int) ([]NodeCountPoint, error) {
	for _, n := range nodeCounts {
		if n <= 0 {
			return nil, fmt.Errorf("core: node count %d", n)
		}
	}
	res, err := RunScenario(ctx, eng, Scenario{
		App: app, Ranks: ranks, Tracer: tCfg, Platform: plat,
		Flavors: []Flavor{FlavorBase, FlavorReal},
		Axes:    []Axis{NodeCountAxis(nodeCounts...)},
		Output:  OutputTraffic,
	})
	if err != nil {
		return nil, err
	}
	out := make([]NodeCountPoint, len(res.Points))
	for i, pt := range res.Points {
		mp := mappingPointFrom(plat.Mapping, pt)
		out[i] = NodeCountPoint{
			Nodes:         nodeCounts[i],
			BaseFinishSec: mp.BaseFinishSec,
			RealFinishSec: mp.RealFinishSec,
			SpeedupReal:   mp.SpeedupReal,
			IntraBytes:    mp.IntraBytes,
			InterBytes:    mp.InterBytes,
		}
	}
	return out, nil
}

// placementPrograms is the compiled (base, overlapped-real) trace pair a
// placement sweep replays at every point.
type placementPrograms struct {
	base, real *sim.Program
}

// compilePlacementPrograms builds, validates, and compiles the two traces
// once, so an N-point sweep replays N times but compiles twice.
func compilePlacementPrograms(run *tracer.Run) (placementPrograms, error) {
	base := run.BaseTrace()
	if err := base.Validate(); err != nil {
		return placementPrograms{}, err
	}
	basePg, err := sim.Compile(base)
	if err != nil {
		return placementPrograms{}, err
	}
	real := run.OverlapReal()
	if err := real.Validate(); err != nil {
		return placementPrograms{}, err
	}
	realPg, err := sim.Compile(real)
	if err != nil {
		return placementPrograms{}, err
	}
	return placementPrograms{base: basePg, real: realPg}, nil
}

// point measures one platform variant: both replays run on pooled arenas
// and only scalar summaries are retained.
func (p placementPrograms) point(plat network.Platform) (MappingPoint, error) {
	if err := plat.Validate(); err != nil {
		return MappingPoint{}, err
	}
	baseSum, err := sim.ReplaySummary(plat, p.base)
	if err != nil {
		return MappingPoint{}, fmt.Errorf("core: mapping %s base: %w", plat.Mapping, err)
	}
	realFin, err := sim.ReplayFinish(plat, p.real)
	if err != nil {
		return MappingPoint{}, fmt.Errorf("core: mapping %s real: %w", plat.Mapping, err)
	}
	return MappingPoint{
		Mapping:       plat.Mapping,
		BaseFinishSec: baseSum.FinishSec,
		RealFinishSec: realFin,
		SpeedupReal:   metrics.Speedup(baseSum.FinishSec, realFin),
		IntraBytes:    baseSum.IntraBytes,
		InterBytes:    baseSum.InterBytes,
	}, nil
}

// PlacementReplayer replays one traced run's (base, overlapped-real) pair
// across platform variants, compiling both traces exactly once — the
// low-level primitive for drivers that manage their own traced runs
// (cmd/experiments' mapping study); spec-driven sweeps go through
// RunScenario instead.
type PlacementReplayer struct {
	progs placementPrograms
}

// NewPlacementReplayer builds, validates, and compiles the pair.
func NewPlacementReplayer(run *tracer.Run) (*PlacementReplayer, error) {
	progs, err := compilePlacementPrograms(run)
	if err != nil {
		return nil, err
	}
	return &PlacementReplayer{progs: progs}, nil
}

// Point measures one platform variant. Safe for concurrent use.
func (p *PlacementReplayer) Point(plat network.Platform) (MappingPoint, error) {
	return p.progs.point(plat)
}

// MappingPointOf replays the base and overlapped(real) traces of one
// already-traced run on one platform variant — the unit of both sweeps,
// exported for callers that reuse a run from the engine's trace cache.
// Sweeping many variants should go through NewPlacementReplayer, which
// compiles the pair once instead of per point.
func MappingPointOf(run *tracer.Run, plat network.Platform) (MappingPoint, error) {
	progs, err := compilePlacementPrograms(run)
	if err != nil {
		return MappingPoint{}, err
	}
	return progs.point(plat)
}
