package core

import (
	"testing"

	"repro/internal/network"
	"repro/internal/tracer"
)

func TestChunkSweep(t *testing.T) {
	app := App{Name: "pipe", Kernel: pipelineKernel(4000, 3, 150)}
	pts, err := ChunkSweep(app, 2, testNet(2), tracer.DefaultConfig(), []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points=%d", len(pts))
	}
	// One chunk = no chunking: the overlapped trace differs from base
	// only by the async sends and postponed wait, so it can never lose.
	if pts[0].Chunks != 1 || pts[0].SpeedupReal < 0.99 {
		t.Fatalf("chunks=1 point: %+v", pts[0])
	}
	// More chunks must help this sequential pipeline: 4 chunks beats 1.
	if pts[2].SpeedupReal <= pts[0].SpeedupReal {
		t.Fatalf("4 chunks (%.3f) not better than 1 (%.3f)", pts[2].SpeedupReal, pts[0].SpeedupReal)
	}
	for _, p := range pts {
		if p.SpeedupIdeal < p.SpeedupReal*0.9 {
			t.Fatalf("ideal far below real at %d chunks: %+v", p.Chunks, p)
		}
	}
}

func TestChunkSweepRejectsBadCount(t *testing.T) {
	app := App{Name: "pipe", Kernel: pipelineKernel(100, 1, 10)}
	if _, err := ChunkSweep(app, 2, testNet(2), tracer.DefaultConfig(), []int{0}); err == nil {
		t.Fatal("chunk count 0 accepted")
	}
}

func TestScalingStudy(t *testing.T) {
	factory := func(ranks int) (App, error) {
		return App{Name: "pipe", Kernel: pipelineKernel(1000, 2, 100)}, nil
	}
	pts, err := ScalingStudy(factory, []int{2, 2}, func(r int) network.Config { return testNet(r) }, tracer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points=%d", len(pts))
	}
	for _, p := range pts {
		if p.BaseFinishSec <= 0 || p.SpeedupReal <= 0 {
			t.Fatalf("degenerate point: %+v", p)
		}
	}
	// Determinism: identical configurations give identical results.
	if pts[0] != pts[1] {
		t.Fatalf("nondeterministic study: %+v vs %+v", pts[0], pts[1])
	}
}
