package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Critical-path extraction: starting from the rank that finishes last, walk
// the reconstructed timeline backwards; whenever the walk reaches a receive
// wait, jump through the transfer that satisfied it to the sending rank.
// The result attributes the makespan to computation, transfer flight time,
// resource queuing, and blocked-send time along one dominant dependency
// chain — the quantitative version of the paper's "an implementer can
// easily identify bottlenecks in the overlapping technique and try to fix
// them" use of the Paraver views.

// StepKind classifies one critical-path step.
type StepKind uint8

// Step kinds.
const (
	// StepCompute: time spent computing on the step's rank.
	StepCompute StepKind = iota
	// StepSendBlocked: the rank was blocked in a (rendezvous) send.
	StepSendBlocked
	// StepTransfer: the path crosses a message: flight plus resource
	// queuing between the send record and the receive completion.
	StepTransfer
	// StepIdle: unattributed time (gaps between intervals).
	StepIdle
)

// String names the step kind.
func (k StepKind) String() string {
	switch k {
	case StepCompute:
		return "compute"
	case StepSendBlocked:
		return "send-blocked"
	case StepTransfer:
		return "transfer"
	case StepIdle:
		return "idle"
	default:
		return fmt.Sprintf("step(%d)", uint8(k))
	}
}

// PathStep is one segment of the critical path, in chronological order.
type PathStep struct {
	Kind       StepKind
	Rank       int // rank the time is spent on (destination for transfers)
	Start, End float64
	// Comm is set for StepTransfer: the message the path crosses.
	Comm *Comm
}

// Duration returns End-Start.
func (s PathStep) Duration() float64 { return s.End - s.Start }

// CriticalPath is the dominant dependency chain of one replay.
type CriticalPath struct {
	// Steps in chronological order; the last step ends at the makespan.
	Steps []PathStep
	// Attribution of the makespan to step kinds, in seconds.
	ComputeSec, SendBlockedSec, TransferSec, IdleSec float64
	// Hops is the number of rank-to-rank transitions.
	Hops int
	// FinishSec echoes the replay makespan.
	FinishSec float64
}

const cpEps = 1e-12

// CriticalPathOf extracts the critical path from a replay result.
func CriticalPathOf(res *Result) *CriticalPath {
	cp := &CriticalPath{FinishSec: res.FinishSec}
	if len(res.Ranks) == 0 {
		return cp
	}
	// Index intervals per rank (they are already sorted by rank, start).
	perRank := make([][]Interval, len(res.Ranks))
	for _, iv := range res.Intervals {
		perRank[iv.Rank] = append(perRank[iv.Rank], iv)
	}
	// Index comms per destination, sorted by match time.
	commsByDst := make([][]int, len(res.Ranks))
	for i := range res.Comms {
		c := &res.Comms[i]
		if c.Dst >= 0 && c.Dst < len(commsByDst) && !math.IsNaN(c.MatchT) {
			commsByDst[c.Dst] = append(commsByDst[c.Dst], i)
		}
	}
	for d := range commsByDst {
		idx := commsByDst[d]
		sort.Slice(idx, func(a, b int) bool { return res.Comms[idx[a]].MatchT < res.Comms[idx[b]].MatchT })
	}

	rank := 0
	for r := range res.Ranks {
		if res.Ranks[r].FinishSec > res.Ranks[rank].FinishSec {
			rank = r
		}
	}
	t := res.Ranks[rank].FinishSec
	var steps []PathStep // built backwards
	guard := 0
	maxSteps := 4 * (len(res.Intervals) + len(res.Comms) + 1)
	for t > cpEps && guard < maxSteps {
		guard++
		iv, ok := lastIntervalBefore(perRank[rank], t)
		if !ok {
			steps = append(steps, PathStep{Kind: StepIdle, Rank: rank, Start: 0, End: t})
			break
		}
		if iv.End < t-cpEps {
			steps = append(steps, PathStep{Kind: StepIdle, Rank: rank, Start: iv.End, End: t})
			t = iv.End
			continue
		}
		switch iv.State {
		case StateCompute:
			steps = append(steps, PathStep{Kind: StepCompute, Rank: rank, Start: iv.Start, End: t})
			t = iv.Start
		case StateSendBlocked:
			steps = append(steps, PathStep{Kind: StepSendBlocked, Rank: rank, Start: iv.Start, End: t})
			t = iv.Start
		case StateWaitRecv:
			c := commEndingAt(res, commsByDst[rank], iv.End)
			if c == nil || math.IsNaN(c.SendT) || c.SendT >= iv.End-cpEps || c.SendT < 0 {
				// No resolvable transfer (or a degenerate one): charge
				// the wait as idle on this rank and keep walking.
				steps = append(steps, PathStep{Kind: StepIdle, Rank: rank, Start: iv.Start, End: t})
				t = iv.Start
				continue
			}
			steps = append(steps, PathStep{Kind: StepTransfer, Rank: rank, Start: c.SendT, End: t, Comm: c})
			rank = c.Src
			t = c.SendT
			cp.Hops++
		}
	}
	// Reverse into chronological order and accumulate the attribution.
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	cp.Steps = steps
	for _, s := range steps {
		switch s.Kind {
		case StepCompute:
			cp.ComputeSec += s.Duration()
		case StepSendBlocked:
			cp.SendBlockedSec += s.Duration()
		case StepTransfer:
			cp.TransferSec += s.Duration()
		case StepIdle:
			cp.IdleSec += s.Duration()
		}
	}
	return cp
}

// lastIntervalBefore returns the latest interval starting before t.
func lastIntervalBefore(ivs []Interval, t float64) (Interval, bool) {
	lo, hi := 0, len(ivs)
	for lo < hi {
		mid := (lo + hi) / 2
		if ivs[mid].Start < t-cpEps {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return Interval{}, false
	}
	return ivs[lo-1], true
}

// commEndingAt finds the transfer whose match completed the wait ending at
// time t (the latest match within a small window of t).
func commEndingAt(res *Result, idx []int, t float64) *Comm {
	lo, hi := 0, len(idx)
	for lo < hi {
		mid := (lo + hi) / 2
		if res.Comms[idx[mid]].MatchT <= t+cpEps {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil
	}
	c := &res.Comms[idx[lo-1]]
	if c.MatchT < t-1e-9 && c.MatchT < t*(1-1e-9) {
		return nil // the wait did not end on a match (should not happen)
	}
	return c
}

// Format renders the path attribution and its longest steps.
func (cp *CriticalPath) Format(maxSteps int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical path: %.6f s over %d steps, %d rank hops\n", cp.FinishSec, len(cp.Steps), cp.Hops)
	total := cp.FinishSec
	if total <= 0 {
		total = 1
	}
	fmt.Fprintf(&b, "  compute      %10.6f s (%5.1f%%)\n", cp.ComputeSec, 100*cp.ComputeSec/total)
	fmt.Fprintf(&b, "  transfer     %10.6f s (%5.1f%%)\n", cp.TransferSec, 100*cp.TransferSec/total)
	fmt.Fprintf(&b, "  send-blocked %10.6f s (%5.1f%%)\n", cp.SendBlockedSec, 100*cp.SendBlockedSec/total)
	fmt.Fprintf(&b, "  idle         %10.6f s (%5.1f%%)\n", cp.IdleSec, 100*cp.IdleSec/total)
	if maxSteps <= 0 || maxSteps > len(cp.Steps) {
		maxSteps = len(cp.Steps)
	}
	// Show the longest steps, they are the bottlenecks.
	order := make([]int, len(cp.Steps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return cp.Steps[order[a]].Duration() > cp.Steps[order[b]].Duration()
	})
	fmt.Fprintf(&b, "longest steps:\n")
	for i := 0; i < maxSteps && i < 8; i++ {
		s := cp.Steps[order[i]]
		if s.Kind == StepTransfer && s.Comm != nil {
			fmt.Fprintf(&b, "  %-12s P%d<-P%d %8d B tag %d chunk %d  %.6f s\n",
				s.Kind, s.Rank, s.Comm.Src, s.Comm.Bytes, s.Comm.Tag, s.Comm.Chunk, s.Duration())
		} else {
			fmt.Fprintf(&b, "  %-12s P%-3d %.6f s\n", s.Kind, s.Rank, s.Duration())
		}
	}
	return b.String()
}
