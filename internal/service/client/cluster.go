package client

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/cluster"
)

// ClusterTransport carries cluster RPCs over the daemons' HTTP API —
// the production counterpart of the in-process transport cluster tests
// use. Peer addresses are daemon base URLs ("http://host:port"); each
// call POSTs the encoded envelope to /v1/cluster/rpc.
//
// Retries reuse the client's RetryPolicy discipline: transport errors
// and backpressure statuses (429/502/503) back off with full jitter.
// Application-level refusals (a draining peer, a missing key) arrive
// inside a 200 response's envelope and are never retried — the cluster
// layer's own fallbacks handle those.
type ClusterTransport struct {
	// HC is the underlying HTTP client; nil selects http.DefaultClient.
	HC *http.Client
	// Retry controls transparent retries; the zero value means one
	// attempt.
	Retry RetryPolicy
}

// maxRPCResponseBytes bounds a peer response — the same ceiling the
// server enforces on requests, plus envelope slack.
const maxRPCResponseBytes = cluster.MaxValueBytes + cluster.MaxKeyBytes + cluster.MaxKindBytes + 4096

// Call implements cluster.Transport.
func (t *ClusterTransport) Call(ctx context.Context, addr string, req *cluster.Request) (*cluster.Response, error) {
	body, err := req.Encode()
	if err != nil {
		return nil, err
	}
	hc := t.HC
	if hc == nil {
		hc = http.DefaultClient
	}
	url := strings.TrimRight(addr, "/") + cluster.RPCPath
	for attempt := 0; ; attempt++ {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		hresp, err := hc.Do(hreq)
		if err != nil {
			if attempt >= t.Retry.Retries || ctx.Err() != nil {
				return nil, err
			}
			if sleepCtx(ctx, t.Retry.wait(attempt, 0)) != nil {
				return nil, err
			}
			continue
		}
		payload, rerr := io.ReadAll(io.LimitReader(hresp.Body, maxRPCResponseBytes))
		hresp.Body.Close()
		switch {
		case rerr != nil:
			err = rerr
		case hresp.StatusCode == http.StatusOK:
			return cluster.DecodeResponse(payload)
		default:
			err = fmt.Errorf("client: cluster rpc %s: status %d: %s", url, hresp.StatusCode, strings.TrimSpace(string(payload)))
			if !retryableStatus(hresp.StatusCode) {
				return nil, err
			}
		}
		if attempt >= t.Retry.Retries || ctx.Err() != nil {
			return nil, err
		}
		if sleepCtx(ctx, t.Retry.wait(attempt, parseRetryAfter(hresp.Header.Get("Retry-After")))) != nil {
			return nil, err
		}
	}
}

// ClusterStatus fetches GET /v1/cluster/status — the node's identity,
// peers, and stored-key accounting. Fails with the daemon's 404 error
// when it is not a cluster member.
func (c *Client) ClusterStatus(ctx context.Context) (cluster.Status, error) {
	var st cluster.Status
	err := c.do(ctx, http.MethodGet, "/v1/cluster/status", nil, "", &st)
	return st, err
}
