package cluster

import (
	"sort"
	"sync"
)

// Contact is one known peer: its ID plus the transport address RPCs
// reach it at.
type Contact struct {
	ID   ID     `json:"id"`
	Addr string `json:"addr"`
}

// RoutingTable is the Kademlia view of the cluster: IDBits k-buckets of
// up to K contacts each, bucket i holding peers whose highest differing
// bit from self is bit i. Within a bucket contacts are ordered least
// recently seen first — the classic eviction discipline: a full
// bucket pings its stalest member and only replaces it if the ping
// fails, so long-lived peers (the ones most likely to stay up) are
// never displaced by churn. Safe for concurrent use.
type RoutingTable struct {
	self ID
	k    int
	// ping probes a contact when a full bucket must choose between its
	// least-recently-seen member and a newcomer; nil treats the old
	// member as alive (newcomers are dropped — the conservative choice).
	ping func(Contact) bool

	mu      sync.Mutex
	buckets [IDBits][]Contact // least recently seen first
}

// NewRoutingTable builds a table for the node self with bucket capacity
// k. ping, when non-nil, is called outside the table lock to liveness-
// probe the least-recently-seen member of a full bucket.
func NewRoutingTable(self ID, k int, ping func(Contact) bool) *RoutingTable {
	if k <= 0 {
		k = DefaultK
	}
	return &RoutingTable{self: self, k: k, ping: ping}
}

// Update records that c was just seen. Known contacts move to the
// most-recently-seen end (their address refreshed), fresh contacts fill
// spare bucket room, and a full bucket probes its least-recently-seen
// member: alive keeps its seat (the newcomer is dropped), dead is
// evicted in the newcomer's favor.
func (t *RoutingTable) Update(c Contact) {
	if c.ID == t.self || c.ID.IsZero() || c.Addr == "" {
		return
	}
	b := BucketIndex(t.self, c.ID)
	t.mu.Lock()
	bucket := t.buckets[b]
	for i := range bucket {
		if bucket[i].ID == c.ID {
			// Seen again: slide to the tail, keeping the freshest address.
			copy(bucket[i:], bucket[i+1:])
			bucket[len(bucket)-1] = c
			t.mu.Unlock()
			return
		}
	}
	if len(bucket) < t.k {
		t.buckets[b] = append(bucket, c)
		t.mu.Unlock()
		return
	}
	oldest := bucket[0]
	t.mu.Unlock()

	alive := t.ping == nil || t.ping(oldest)

	t.mu.Lock()
	defer t.mu.Unlock()
	bucket = t.buckets[b]
	// The bucket may have changed while pinging; find the probed member
	// again and act only if it is still present.
	for i := range bucket {
		if bucket[i].ID != oldest.ID {
			continue
		}
		if alive {
			// The old-timer answered: it moves to the tail and the
			// newcomer is dropped — uptime is the best predictor of
			// future uptime.
			copy(bucket[i:], bucket[i+1:])
			bucket[len(bucket)-1] = oldest
			return
		}
		copy(bucket[i:], bucket[i+1:])
		bucket[len(bucket)-1] = c
		return
	}
	if len(bucket) < t.k {
		t.buckets[b] = append(bucket, c)
	}
}

// Remove drops a contact (a peer that announced it is draining, or
// whose RPCs fail hard).
func (t *RoutingTable) Remove(id ID) {
	b := BucketIndex(t.self, id)
	if b < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	bucket := t.buckets[b]
	for i := range bucket {
		if bucket[i].ID == id {
			t.buckets[b] = append(bucket[:i], bucket[i+1:]...)
			return
		}
	}
}

// Contacts returns every known peer (no particular order).
func (t *RoutingTable) Contacts() []Contact {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Contact
	for _, b := range t.buckets {
		out = append(out, b...)
	}
	return out
}

// Len returns how many peers the table knows.
func (t *RoutingTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, b := range t.buckets {
		n += len(b)
	}
	return n
}

// KClosest returns up to n known contacts ordered by XOR distance to
// target, nearest first. The scan is over the whole table — cluster
// sizes here are tens, not millions, so the simple global sort is both
// exact and cheap (and trivially property-testable against a brute
// force, because it is one).
func (t *RoutingTable) KClosest(target ID, n int) []Contact {
	out := t.Contacts()
	sortByDistance(target, out)
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// sortByDistance orders contacts by XOR distance to target, nearest
// first; ID order (ascending) breaks exact ties, which cannot occur
// between distinct IDs.
func sortByDistance(target ID, cs []Contact) {
	sort.Slice(cs, func(i, j int) bool {
		return CompareDistance(target, cs[i].ID, cs[j].ID) < 0
	})
}
