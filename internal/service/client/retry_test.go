package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

func TestRetryPolicyWait(t *testing.T) {
	p := RetryPolicy{BaseWait: 10 * time.Millisecond, MaxWait: 80 * time.Millisecond}
	for attempt := 0; attempt < 8; attempt++ {
		ceil := 10 * time.Millisecond << attempt
		if ceil > p.MaxWait {
			ceil = p.MaxWait
		}
		for i := 0; i < 50; i++ {
			if w := p.wait(attempt, 0); w < 0 || w > ceil {
				t.Fatalf("attempt %d: wait %v outside [0, %v]", attempt, w, ceil)
			}
		}
	}
	// The server's Retry-After is a floor, even past the backoff ceiling.
	if w := p.wait(0, 200*time.Millisecond); w != 200*time.Millisecond {
		t.Fatalf("Retry-After floor ignored: %v", w)
	}
	// Zero values fall back to the defaults.
	var zero RetryPolicy
	if w := zero.wait(0, 0); w > DefaultRetryBaseWait {
		t.Fatalf("zero policy first wait %v exceeds the default base", w)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := map[string]time.Duration{
		"":        0,
		"1":       time.Second,
		"30":      30 * time.Second,
		"-5":      0,
		"soon":    0,
		"1.5":     0,
		"Wed, 21": 0, // HTTP-date form: the daemon never sends it
	}
	for h, want := range cases {
		if got := parseRetryAfter(h); got != want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", h, got, want)
		}
	}
}

// flakyProxy fronts a real service handler, failing the first `fail`
// requests the way a restarting or draining daemon would, then serving
// normally — the client's retry loop must ride through it.
func flakyProxy(t *testing.T, fail int, mode string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	mgr, err := service.NewManager(service.Options{})
	if err != nil {
		t.Fatal(err)
	}
	real := service.NewHandler(mgr)
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n := calls.Add(1); int(n) <= fail {
			switch mode {
			case "drop":
				// Simulate a daemon dying mid-request: sever the
				// connection so the client sees a transport error.
				hj, ok := w.(http.Hijacker)
				if !ok {
					t.Error("recorder not hijackable")
					return
				}
				conn, _, err := hj.Hijack()
				if err != nil {
					t.Error(err)
					return
				}
				conn.Close()
			default:
				w.Header().Set("Retry-After", "0")
				http.Error(w, "draining", http.StatusServiceUnavailable)
			}
			return
		}
		real.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func fastRetry(n int) RetryPolicy {
	return RetryPolicy{Retries: n, BaseWait: time.Millisecond, MaxWait: 4 * time.Millisecond}
}

// TestClientRetriesThroughRestart: a POST that lands on a daemon twice
// answering 503 + Retry-After succeeds on the third attempt without the
// caller noticing, and the streaming path's opening POST retries the
// same way.
func TestClientRetriesThroughRestart(t *testing.T) {
	ctx := context.Background()
	req := service.ScenarioRequest{App: "cg", Ranks: 4, Output: "finish"}

	srv, calls := flakyProxy(t, 2, "503")
	c := New(srv.URL, srv.Client()).WithRetry(fastRetry(3))
	res, err := c.Scenario(ctx, req)
	if err != nil {
		t.Fatalf("batch through flaky daemon: %v", err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("batch result %+v", res)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("batch took %d attempts, want 3", got)
	}

	srv2, calls2 := flakyProxy(t, 2, "503")
	c2 := New(srv2.URL, srv2.Client()).WithRetry(fastRetry(3))
	st, err := c2.ScenarioStream(ctx, req)
	if err != nil {
		t.Fatalf("stream through flaky daemon: %v", err)
	}
	st.Close()
	if got := calls2.Load(); got != 3 {
		t.Fatalf("stream took %d attempts, want 3", got)
	}
}

// TestClientRetriesTransportError: severed connections (the daemon
// genuinely down between attempts) retry like retryable statuses.
func TestClientRetriesTransportError(t *testing.T) {
	srv, calls := flakyProxy(t, 1, "drop")
	c := New(srv.URL, srv.Client()).WithRetry(fastRetry(2))
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("health through dropped connection: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("took %d attempts, want 2", got)
	}
}

// TestClientRetriesExhausted: a daemon that never recovers costs
// exactly Retries+1 attempts and surfaces the final status.
func TestClientRetriesExhausted(t *testing.T) {
	srv, calls := flakyProxy(t, 1<<30, "503")
	c := New(srv.URL, srv.Client()).WithRetry(fastRetry(2))
	_, err := c.Scenario(context.Background(), service.ScenarioRequest{App: "cg", Ranks: 4})
	if err == nil {
		t.Fatal("request against a dead daemon succeeded")
	}
	if !strings.Contains(err.Error(), "503") {
		t.Fatalf("error %v does not carry the final status", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("%d attempts, want 3 (1 + 2 retries)", got)
	}
}

// TestClientRetryRespectsContext: cancellation beats the backoff sleep —
// no retry fires after the caller gives up.
func TestClientRetryRespectsContext(t *testing.T) {
	srv, calls := flakyProxy(t, 1<<30, "503")
	c := New(srv.URL, srv.Client()).WithRetry(RetryPolicy{Retries: 5, BaseWait: time.Hour, MaxWait: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Health(ctx)
	if err == nil {
		t.Fatal("cancelled request succeeded")
	}
	if !errors.Is(err, context.Canceled) && !strings.Contains(err.Error(), "503") {
		t.Fatalf("unexpected error: %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not interrupt the backoff sleep")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d attempts before cancellation, want 1", got)
	}
}

// TestRetryAfterIsFloor: with a zero-jitter window the sleep is exactly
// the server's Retry-After — observable as elapsed wall time.
func TestRetryAfterIsFloor(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "busy", http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer srv.Close()
	c := New(srv.URL, srv.Client()).WithRetry(RetryPolicy{Retries: 1, BaseWait: time.Nanosecond, MaxWait: time.Nanosecond})
	start := time.Now()
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("retry fired after %v, before the server's Retry-After of 1s", elapsed)
	}
}
