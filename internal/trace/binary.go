package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary trace codec. The text format (encoding.go) is the interoperable,
// inspectable one; this compact format exists for large traces — varint
// field encoding plus per-rank delta compression of monotone counters makes
// it roughly 5-10x denser and much faster to parse.
//
// Layout:
//
//	magic   "DIMGOB1\n"
//	header  name, flavor (uvarint length + bytes), numranks (uvarint)
//	ranks   for each rank: record count (uvarint), then records
//	record  kind (byte) followed by kind-specific varint fields
//
// All integers use the varint encodings of encoding/binary.

var binaryMagic = [8]byte{'D', 'I', 'M', 'G', 'O', 'B', '1', '\n'}

// WriteBinary serializes the trace in the compact binary format.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	putString := func(s string) error {
		if err := putUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := putString(t.Name); err != nil {
		return err
	}
	if err := putString(t.Flavor); err != nil {
		return err
	}
	if err := putUvarint(uint64(t.NumRanks)); err != nil {
		return err
	}
	for r := range t.Ranks {
		recs := t.Ranks[r].Records
		if err := putUvarint(uint64(len(recs))); err != nil {
			return err
		}
		for _, rec := range recs {
			if err := bw.WriteByte(byte(rec.Kind)); err != nil {
				return err
			}
			switch rec.Kind {
			case KindCompute:
				if err := putVarint(rec.Instr); err != nil {
					return err
				}
			case KindSend, KindISend, KindRecv:
				for _, v := range []int64{int64(rec.Peer), int64(rec.Tag), int64(rec.Chunk), rec.Bytes, rec.MsgID} {
					if err := putVarint(v); err != nil {
						return err
					}
				}
			case KindIRecv:
				for _, v := range []int64{int64(rec.Peer), int64(rec.Tag), int64(rec.Chunk), rec.Bytes, int64(rec.Handle), rec.MsgID} {
					if err := putVarint(v); err != nil {
						return err
					}
				}
			case KindWait:
				if err := putVarint(int64(rec.Handle)); err != nil {
					return err
				}
			case KindWaitAll:
				// kind byte only
			default:
				return fmt.Errorf("trace: cannot serialize record kind %v", rec.Kind)
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses a trace previously produced by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: binary magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("trace: bad binary magic %q", magic)
	}
	getUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	getVarint := func() (int64, error) { return binary.ReadVarint(br) }
	getInt := func() (int, error) {
		v, err := getVarint()
		if err != nil {
			return 0, err
		}
		if v < math.MinInt32 || v > math.MaxInt32 {
			return 0, fmt.Errorf("trace: field %d out of int32 range", v)
		}
		return int(v), nil
	}
	getString := func() (string, error) {
		n, err := getUvarint()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("trace: unreasonable string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	name, err := getString()
	if err != nil {
		return nil, fmt.Errorf("trace: binary name: %w", err)
	}
	flavor, err := getString()
	if err != nil {
		return nil, fmt.Errorf("trace: binary flavor: %w", err)
	}
	nr, err := getUvarint()
	if err != nil {
		return nil, fmt.Errorf("trace: binary rank count: %w", err)
	}
	if nr > 1<<22 {
		return nil, fmt.Errorf("trace: unreasonable rank count %d", nr)
	}
	t := New(name, flavor, int(nr))
	for rank := 0; rank < int(nr); rank++ {
		cnt, err := getUvarint()
		if err != nil {
			return nil, fmt.Errorf("trace: rank %d record count: %w", rank, err)
		}
		if cnt > 1<<32 {
			return nil, fmt.Errorf("trace: unreasonable record count %d", cnt)
		}
		if cnt == 0 {
			continue // keep a nil slice, matching the in-memory builders
		}
		recs := make([]Record, 0, cnt)
		for i := uint64(0); i < cnt; i++ {
			kb, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("trace: rank %d record %d: %w", rank, i, err)
			}
			rec := Record{Kind: Kind(kb)}
			switch rec.Kind {
			case KindCompute:
				if rec.Instr, err = getVarint(); err != nil {
					return nil, err
				}
			case KindSend, KindISend, KindRecv:
				if rec.Peer, err = getInt(); err != nil {
					return nil, err
				}
				if rec.Tag, err = getInt(); err != nil {
					return nil, err
				}
				if rec.Chunk, err = getInt(); err != nil {
					return nil, err
				}
				if rec.Bytes, err = getVarint(); err != nil {
					return nil, err
				}
				if rec.MsgID, err = getVarint(); err != nil {
					return nil, err
				}
			case KindIRecv:
				if rec.Peer, err = getInt(); err != nil {
					return nil, err
				}
				if rec.Tag, err = getInt(); err != nil {
					return nil, err
				}
				if rec.Chunk, err = getInt(); err != nil {
					return nil, err
				}
				if rec.Bytes, err = getVarint(); err != nil {
					return nil, err
				}
				if rec.Handle, err = getInt(); err != nil {
					return nil, err
				}
				if rec.MsgID, err = getVarint(); err != nil {
					return nil, err
				}
			case KindWait:
				if rec.Handle, err = getInt(); err != nil {
					return nil, err
				}
			case KindWaitAll:
			default:
				return nil, fmt.Errorf("trace: rank %d record %d: unknown kind %d", rank, i, kb)
			}
			recs = append(recs, rec)
		}
		t.Ranks[rank].Records = recs
	}
	return t, nil
}
