package engine

import (
	"fmt"
	"sync"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracer"
)

// TraceCache deduplicates tracer runs across experiments: the first request
// for a (name, ranks, config) triple executes the application under
// instrumentation, every later or concurrent request for the same triple
// shares the one cached *tracer.Run. Concurrent first requests are
// single-flighted — the application is traced exactly once.
//
// Cached runs are shared across goroutines; callers must treat them as
// immutable, which the tracer API guarantees (see tracer.Run). Variant
// building goes through copy-on-write helpers such as Run.WithChunks.
//
// The key deliberately excludes the kernel function: kernels are not
// comparable, so the cache trusts the application name to identify the
// kernel, the invariant the apps registry maintains. Do not share one
// cache between distinct kernels registered under one name.
type TraceCache struct {
	mu sync.Mutex
	m  map[traceKey]*traceEntry
}

type traceKey struct {
	name  string
	ranks int
	cfg   tracer.Config
}

type traceEntry struct {
	once sync.Once
	run  *tracer.Run
	err  error

	// compiled memoizes, per flavor, the built trace together with its
	// replay program, so repeated sweeps over one cached run share one
	// trace build, one validation, and one compilation.
	compiledMu sync.Mutex
	compiled   map[string]*compiledFlavor
}

type compiledFlavor struct {
	once sync.Once
	tr   *trace.Trace
	prog *sim.Program
	err  error
}

// NewTraceCache returns an empty cache.
func NewTraceCache() *TraceCache {
	return &TraceCache{m: map[traceKey]*traceEntry{}}
}

// Trace returns the cached run for (name, ranks, cfg), tracing the
// application on a miss. Failed traces are cached too: retrying a
// deterministic failure would only repeat it.
func (c *TraceCache) Trace(name string, ranks int, cfg tracer.Config, kernel func(p *tracer.Proc)) (*tracer.Run, error) {
	return c.entry(name, ranks, cfg).trace(name, ranks, cfg, kernel)
}

// trace resolves the entry's run, tracing on first use.
func (ent *traceEntry) trace(name string, ranks int, cfg tracer.Config, kernel func(p *tracer.Proc)) (*tracer.Run, error) {
	ent.once.Do(func() {
		ent.run, ent.err = tracer.Trace(name, ranks, cfg, kernel)
	})
	return ent.run, ent.err
}

// entry returns (creating if needed) the cache slot for one triple.
func (c *TraceCache) entry(name string, ranks int, cfg tracer.Config) *traceEntry {
	key := traceKey{name: name, ranks: ranks, cfg: cfg}
	c.mu.Lock()
	ent, ok := c.m[key]
	if !ok {
		ent = &traceEntry{}
		c.m[key] = ent
	}
	c.mu.Unlock()
	return ent
}

// Flavor names accepted by CompiledTrace, matching trace.Trace.Flavor.
const (
	FlavorBase  = "base"
	FlavorReal  = "overlap-real"
	FlavorIdeal = "overlap-ideal"
)

// CompiledTrace returns one flavor of the cached run as a validated trace
// plus its compiled replay program. The trace build, validation, and
// compilation all run once per (triple, flavor) and are shared by every
// later caller — the entry point for sweep paths that replay one flavour
// many times.
func (c *TraceCache) CompiledTrace(name string, ranks int, cfg tracer.Config, kernel func(p *tracer.Proc), flavor string) (*trace.Trace, *sim.Program, error) {
	ent := c.entry(name, ranks, cfg)
	run, err := ent.trace(name, ranks, cfg, kernel)
	if err != nil {
		return nil, nil, err
	}
	var build func() *trace.Trace
	switch flavor {
	case FlavorBase:
		build = run.BaseTrace
	case FlavorReal:
		build = run.OverlapReal
	case FlavorIdeal:
		build = run.OverlapIdeal
	default:
		return nil, nil, fmt.Errorf("engine: unknown trace flavor %q", flavor)
	}
	ent.compiledMu.Lock()
	if ent.compiled == nil {
		ent.compiled = make(map[string]*compiledFlavor)
	}
	cf, ok := ent.compiled[flavor]
	if !ok {
		cf = &compiledFlavor{}
		ent.compiled[flavor] = cf
	}
	ent.compiledMu.Unlock()
	cf.once.Do(func() {
		tr := build()
		if err := tr.Validate(); err != nil {
			cf.err = fmt.Errorf("engine: generated %s trace invalid: %w", flavor, err)
			return
		}
		prog, err := sim.Compile(tr)
		if err != nil {
			cf.err = err
			return
		}
		cf.tr, cf.prog = tr, prog
	})
	return cf.tr, cf.prog, cf.err
}

// Len reports how many distinct runs the cache holds (including cached
// failures).
func (c *TraceCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Purge empties the cache.
func (c *TraceCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = map[traceKey]*traceEntry{}
}
