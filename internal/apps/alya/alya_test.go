package alya

import (
	"math"
	"testing"

	"repro/internal/pattern"
	"repro/internal/tracer"
)

func traceIt(t *testing.T, ranks int, cfg Config) *tracer.Run {
	t.Helper()
	run, err := tracer.Trace("alya", ranks, tracer.DefaultConfig(), Kernel(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestTracesValidate(t *testing.T) {
	for _, ranks := range []int{1, 2, 3, 4, 8} {
		run := traceIt(t, ranks, DefaultConfig())
		for _, tr := range []interface{ Validate() error }{run.BaseTrace(), run.OverlapReal(), run.OverlapIdeal()} {
			if err := tr.Validate(); err != nil {
				t.Fatalf("ranks=%d: %v", ranks, err)
			}
		}
	}
}

func TestReductionsPerIteration(t *testing.T) {
	cfg := DefaultConfig()
	run := traceIt(t, 4, cfg)
	var marks int
	for _, e := range run.Logs[0].Events {
		if e.Kind == tracer.EvCollSend {
			marks++
		}
	}
	if marks != cfg.Iterations*cfg.InnerReductions {
		t.Fatalf("collective marks=%d, want %d", marks, cfg.Iterations*cfg.InnerReductions)
	}
}

func TestOneElementMessagesNeverChunked(t *testing.T) {
	run := traceIt(t, 4, DefaultConfig())
	real := run.OverlapReal()
	if s := real.Stats(); s.MaxChunkIndex != 0 {
		t.Fatalf("Alya traffic was chunked (max chunk %d)", s.MaxChunkIndex)
	}
	// The overlapped trace must carry the same message count as the base
	// one: nothing can be split.
	if b, r := run.BaseTrace().Stats().Messages, real.Stats().Messages; b != r {
		t.Fatalf("message count changed: base %d, overlap %d", b, r)
	}
}

func TestUnchunkablePatternRow(t *testing.T) {
	run := traceIt(t, 4, DefaultConfig())
	an := pattern.Analyze(run)
	p := an.AppProduction
	if p.Chunkable {
		t.Fatal("Alya must be unchunkable")
	}
	if p.FirstElem < 80 {
		t.Errorf("FirstElem=%.1f%%, accumulator settles just before the reduce (paper: 98.8%%)", p.FirstElem)
	}
	if !math.IsNaN(p.Quarter) || !math.IsNaN(p.Half) || !math.IsNaN(p.Whole) {
		t.Error("partial-message columns must be undefined for one-element messages")
	}
	c := an.AppConsumption
	if c.Nothing > 5 {
		t.Errorf("Nothing=%.1f%%, the reduced scalar steers the solver immediately (paper: 0.4%%)", c.Nothing)
	}
}

func TestReductionValuesCorrect(t *testing.T) {
	// The kernel is symmetric in its *tracked* behaviour: every rank
	// performs the same stores, loads, and collective marks (the raw
	// transfer counts differ per rank — binomial tree roles are not
	// symmetric).
	run := traceIt(t, 4, DefaultConfig())
	countTracked := func(rank int) (n int) {
		for _, e := range run.Logs[rank].Events {
			switch e.Kind {
			case tracer.EvStore, tracer.EvLoad, tracer.EvCollSend, tracer.EvCollRecv:
				n++
			}
		}
		return n
	}
	want := countTracked(0)
	for r := range run.Logs {
		if got := countTracked(r); got != want {
			t.Fatalf("rank %d has %d tracked events, rank 0 has %d", r, got, want)
		}
	}
}
