package sim

import (
	"sync"

	"repro/internal/network"
)

// Pooled replays: the sweep and search paths (bandwidth searches, what-if
// studies, service sweeps) replay a compiled program many times and retain
// only scalars. They borrow a warm arena from a process-wide pool, so a
// saturated worker pool converges on one arena per worker and the
// steady-state replay allocates nothing.

var arenaPool = sync.Pool{New: func() any { return NewArena() }}

// ReplayFinish replays prog on p using a pooled arena and returns only the
// makespan. Safe for concurrent use.
func ReplayFinish(p network.Platform, prog *Program) (float64, error) {
	s, err := ReplaySummary(p, prog)
	return s.FinishSec, err
}

// ReplaySummary replays prog on p using a pooled arena and returns the
// replay's scalar summary (makespan plus the traffic split). Safe for
// concurrent use.
func ReplaySummary(p network.Platform, prog *Program) (Summary, error) {
	a := arenaPool.Get().(*ReplayArena)
	defer arenaPool.Put(a)
	res, err := a.RunProgram(p, prog)
	if err != nil {
		return Summary{}, err
	}
	return summarize(res), nil
}

// ReplayShardsSummary is ReplaySummary with a shard request: the replay
// runs sharded when shards != 1 and the platform allows it (see
// EffectiveShards). Safe for concurrent use.
func ReplayShardsSummary(p network.Platform, prog *Program, shards int) (Summary, error) {
	a := arenaPool.Get().(*ReplayArena)
	defer arenaPool.Put(a)
	res, err := a.RunProgramShards(p, prog, shards)
	if err != nil {
		return Summary{}, err
	}
	return summarize(res), nil
}

// ReplayInto replays prog on p using a pooled arena — sharded when shards
// != 1 and the platform allows it (see EffectiveShards) — and deep-copies
// the result into dst, which must be non-nil and is returned. Reusing dst
// across calls makes the full-result replay allocation-free once dst has
// grown to the program's high-water mark; this is what the engine's batch
// replays use instead of a fresh arena per point. Safe for concurrent use
// (with distinct dst).
func ReplayInto(p network.Platform, prog *Program, shards int, dst *Result) (*Result, error) {
	a := arenaPool.Get().(*ReplayArena)
	defer arenaPool.Put(a)
	res, err := a.RunProgramShards(p, prog, shards)
	if err != nil {
		return nil, err
	}
	return res.CloneInto(dst), nil
}
