package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// WriteTimings renders a human-readable timing summary of the registry:
// every histogram as count/mean/p50/p90/max, every counter and gauge as
// a plain value. This backs the -timings flag of the scenario CLIs.
func WriteTimings(w io.Writer, r *Registry) error {
	snap := r.Snapshot()
	var b strings.Builder
	b.WriteString("timings:\n")
	for _, m := range snap.Metrics {
		for _, s := range m.Samples {
			name := m.Name
			if len(s.Labels) > 0 {
				keys := make([]string, 0, len(s.Labels))
				for k := range s.Labels {
					keys = append(keys, k)
				}
				for i := 1; i < len(keys); i++ {
					for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
						keys[j], keys[j-1] = keys[j-1], keys[j]
					}
				}
				parts := make([]string, len(keys))
				for i, k := range keys {
					parts[i] = k + "=" + s.Labels[k]
				}
				name += "{" + strings.Join(parts, ",") + "}"
			}
			if h := s.Histogram; h != nil {
				if h.Count == 0 {
					continue
				}
				fmt.Fprintf(&b, "  %-58s count=%-8d total=%-12s mean=%-10s p50=%-10s p90=%s\n",
					name, h.Count, fmtDur(h.Sum), fmtDur(h.Mean()), fmtDur(h.Quantile(0.5)), fmtDur(h.Quantile(0.9)))
				continue
			}
			if s.Value == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %-58s %s\n", name, fmtFloat(s.Value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// fmtDur formats a duration in seconds with a readable unit.
func fmtDur(sec float64) string {
	switch {
	case sec == 0:
		return "0"
	case sec < 1e-6:
		return fmt.Sprintf("%.0fns", sec*1e9)
	case sec < 1e-3:
		return fmt.Sprintf("%.1fus", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.2fms", sec*1e3)
	default:
		return fmt.Sprintf("%.3fs", sec)
	}
}
