package main

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
)

const page = `# HELP jobs_total jobs
# TYPE jobs_total counter
jobs_total 12
# HELP req_total requests
# TYPE req_total counter
req_total{code="200",endpoint="POST /v1/scenarios"} 5
req_total{code="429",endpoint="POST /v1/scenarios"} 2
`

func TestCheckAssertions(t *testing.T) {
	pm, err := telemetry.ParseMetrics(strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	pass := []string{
		"jobs_total==12",
		"jobs_total>=12",
		"jobs_total>11",
		"jobs_total<13",
		"jobs_total!=11",
		"req_total==7", // bare family name sums the labelled samples
		`req_total{code="200",endpoint="POST /v1/scenarios"}==5`,
		`req_total{code="429",endpoint="POST /v1/scenarios"}<=2`,
	}
	for _, a := range pass {
		if err := check(pm, a); err != nil {
			t.Errorf("%s unexpectedly failed: %v", a, err)
		}
	}
	fail := []string{
		"jobs_total==11",
		"jobs_total<12",
		"missing_total>=0", // absent samples fail, they are not zero
		"jobs_total~12",    // unknown operator
		"jobs_total>=x",    // malformed number
	}
	for _, a := range fail {
		if err := check(pm, a); err == nil {
			t.Errorf("%s unexpectedly passed", a)
		}
	}
}
