package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// A tiny Prometheus text-format parser — enough to validate an
// exposition page and read sample values back. Used by cmd/promcheck in
// CI smoke tests and by the round-trip tests in this package.

// ParsedMetrics maps sample keys to values. A sample without labels is
// keyed by its bare name; a labeled sample by name{k="v",...} with label
// pairs sorted by key.
type ParsedMetrics map[string]float64

// Value returns the sample with the exact key, or the sum of every
// sample of the family when key is a bare name with labeled samples.
// ok is false when no sample matches.
func (pm ParsedMetrics) Value(key string) (v float64, ok bool) {
	if val, hit := pm[key]; hit {
		return val, true
	}
	prefix := key + "{"
	sum, n := 0.0, 0
	for k, val := range pm {
		if strings.HasPrefix(k, prefix) {
			sum += val
			n++
		}
	}
	return sum, n > 0
}

// Keys returns every sample key in sorted order.
func (pm ParsedMetrics) Keys() []string {
	keys := make([]string, 0, len(pm))
	for k := range pm {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ParseMetrics reads a Prometheus text-format page, validating comment
// lines, metric names, label syntax, and values. Duplicate sample keys
// are an error (a well-formed page never repeats one).
func ParseMetrics(r io.Reader) (ParsedMetrics, error) {
	pm := make(ParsedMetrics)
	typed := make(map[string]string)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, typed); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		key, val, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if _, dup := pm[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate sample %q", lineNo, key)
		}
		pm[key] = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return pm, nil
}

// parseComment validates # HELP / # TYPE lines; other comments pass.
func parseComment(line string, typed map[string]string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
	case "TYPE":
		if len(fields) != 4 || !validName(fields[2]) {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		if prev, ok := typed[fields[2]]; ok && prev != fields[3] {
			return fmt.Errorf("metric %q re-typed %s -> %s", fields[2], prev, fields[3])
		}
		typed[fields[2]] = fields[3]
	}
	return nil
}

// parseSample parses `name{labels} value [timestamp]`, returning the
// canonical sample key (labels sorted by key) and the value.
func parseSample(line string) (string, float64, error) {
	nameEnd := strings.IndexAny(line, "{ \t")
	if nameEnd <= 0 {
		return "", 0, fmt.Errorf("malformed sample %q", line)
	}
	name := line[:nameEnd]
	if !validName(name) {
		return "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[nameEnd:]
	var labels []string
	if rest[0] == '{' {
		end := -1
		inQuote, esc := false, false
		for i := 1; i < len(rest); i++ {
			c := rest[i]
			switch {
			case esc:
				esc = false
			case inQuote && c == '\\':
				esc = true
			case c == '"':
				inQuote = !inQuote
			case !inQuote && c == '}':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", 0, fmt.Errorf("unterminated label set in %q", line)
		}
		var err error
		labels, err = parseLabels(rest[1:end])
		if err != nil {
			return "", 0, fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", 0, fmt.Errorf("malformed sample %q", line)
	}
	val, err := parseValue(fields[0])
	if err != nil {
		return "", 0, fmt.Errorf("bad value %q in %q", fields[0], line)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", 0, fmt.Errorf("bad timestamp %q in %q", fields[1], line)
		}
	}
	key := name
	if len(labels) > 0 {
		sort.Strings(labels)
		key = name + "{" + strings.Join(labels, ",") + "}"
	}
	return key, val, nil
}

// parseLabels splits `k="v",k2="v2"` into canonical `k="v"` pairs,
// unescaping values only to validate them (keys stay escaped in the
// canonical form so round-trips are exact).
func parseLabels(s string) ([]string, error) {
	var pairs []string
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("malformed label pair")
		}
		key := strings.TrimSpace(s[:eq])
		if !validName(key) {
			return nil, fmt.Errorf("invalid label name %q", key)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("unquoted label value")
		}
		end := -1
		esc := false
		for i := 1; i < len(s); i++ {
			switch {
			case esc:
				esc = false
			case s[i] == '\\':
				esc = true
			case s[i] == '"':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated label value")
		}
		pairs = append(pairs, key+"="+s[:end+1])
		s = s[end+1:]
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return pairs, nil
}

// parseValue accepts floats plus the exposition spellings of infinities
// and NaN.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf", "-Inf", "NaN":
		return strconv.ParseFloat(strings.TrimPrefix(s, "+"), 64)
	}
	return strconv.ParseFloat(s, 64)
}
