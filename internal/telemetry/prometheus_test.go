package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func testRegistry() *Registry {
	r := New()
	r.Counter("jobs_total", "jobs run").Add(3)
	r.Gauge("depth", "queue depth").Set(2)
	v := r.CounterVec("req_total", "requests", "endpoint", "code")
	v.With("POST /v1/scenarios", "200").Add(5)
	v.With("GET /healthz", "200").Add(1)
	h := r.Histogram("replay_seconds", "replay wall time", 1e-9)
	h.Observe(1_000_000)
	h.Observe(2_000_000)
	hv := r.HistogramVec("stage_seconds", "per-stage time", 1e-9, "stage")
	hv.With("compile").Observe(500)
	r.GaugeFunc("uptime_seconds", "", func() float64 { return 12.5 })
	r.CounterVec("esc_total", "label escaping", "path").With("a\"b\\c\nd").Inc()
	return r
}

func TestPrometheusRoundTrip(t *testing.T) {
	r := testRegistry()
	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	pm, err := ParseMetrics(strings.NewReader(out))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, out)
	}
	checks := map[string]float64{
		"jobs_total": 3,
		"depth":      2,
		"req_total{code=\"200\",endpoint=\"POST /v1/scenarios\"}": 5,
		"replay_seconds_count":                   2,
		"uptime_seconds":                         12.5,
		"stage_seconds_count{stage=\"compile\"}": 1,
	}
	for key, want := range checks {
		got, ok := pm.Value(key)
		if !ok || got != want {
			t.Fatalf("%s = %g (ok=%v), want %g\n%s", key, got, ok, want, out)
		}
	}
	// Bare-name lookup over a labeled family sums its samples.
	if got, ok := pm.Value("req_total"); !ok || got != 6 {
		t.Fatalf("req_total sum = %g (ok=%v), want 6", got, ok)
	}
	// Histogram structure: +Inf bucket present and equal to the count.
	if got, ok := pm.Value(`replay_seconds_bucket{le="+Inf"}`); !ok || got != 2 {
		t.Fatalf("+Inf bucket = %g (ok=%v)", got, ok)
	}
	if !strings.Contains(out, "# TYPE replay_seconds histogram") {
		t.Fatalf("missing TYPE line:\n%s", out)
	}
}

func TestPrometheusDeterministic(t *testing.T) {
	r := testRegistry()
	var a, b strings.Builder
	_ = WritePrometheus(&a, r)
	_ = WritePrometheus(&b, r)
	if a.String() != b.String() {
		t.Fatal("exposition is not deterministic")
	}
}

func TestPrometheusHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(testRegistry()).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if _, err := ParseMetrics(rec.Body); err != nil {
		t.Fatal(err)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	bad := []string{
		"1metric 3\n",
		"metric{k=unquoted} 3\n",
		"metric{k=\"v\" 3\n",
		"metric notanumber\n",
		"# TYPE metric frobnitz\n",
		"dup 1\ndup 2\n",
	}
	for _, in := range bad {
		if _, err := ParseMetrics(strings.NewReader(in)); err == nil {
			t.Fatalf("ParseMetrics accepted %q", in)
		}
	}
	ok := "# HELP m help text\n# TYPE m counter\nm 4 1699999999\n\n# plain comment\n"
	pm, err := ParseMetrics(strings.NewReader(ok))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := pm.Value("m"); v != 4 {
		t.Fatalf("m = %g", v)
	}
}
