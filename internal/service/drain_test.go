// Internal tests of graceful drain: like the admission tests they hold
// the manager's execution slots directly, staging an in-flight job
// deterministically while Drain is underway.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/engine"
)

// TestDrainFlushesInflightAndRejects: Drain stops new computations —
// ErrDraining internally, 503 + Retry-After over HTTP — while in-flight
// jobs run to completion; the flushed count reports what it waited for,
// and cached results keep serving after the drain.
func TestDrainFlushesInflightAndRejects(t *testing.T) {
	eng := engine.New(1)
	m, err := NewManager(Options{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	m.slots <- struct{}{} // park the first job in the queue

	j1, err := m.Submit(AnalyzeRequest{App: "cg", Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}

	type drained struct {
		flushed int
		err     error
	}
	done := make(chan drained, 1)
	go func() {
		flushed, err := m.Drain(context.Background())
		done <- drained{flushed, err}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for !m.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("Drain never marked the manager draining")
		}
		time.Sleep(time.Millisecond)
	}

	// New computations are refused while the flush is in progress.
	if _, err := m.Submit(AnalyzeRequest{App: "cg", Ranks: 8}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: %v, want ErrDraining", err)
	}
	post := func(path, body string, ndjson bool) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, srv.URL+path, bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if ndjson {
			req.Header.Set("Accept", NDJSONContentType)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	resp := post("/v1/analyze", `{"app":"cg","ranks":8}`, false)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("batch submit while draining: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	resp = post("/v1/scenarios", `{"app":"cg","ranks":8,"output":"finish"}`, true)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stream submit while draining: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("stream 503 without Retry-After")
	}

	// The parked job is not a casualty: release the slot, it finishes,
	// and the drain reports it flushed.
	<-m.slots
	res1, err := j1.Wait(t.Context())
	if err != nil {
		t.Fatalf("in-flight job failed during drain: %v", err)
	}
	select {
	case d := <-done:
		if d.err != nil {
			t.Fatalf("Drain: %v", d.err)
		}
		if d.flushed != 1 {
			t.Fatalf("Drain flushed %d jobs, want 1", d.flushed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Drain never returned after the last job finished")
	}

	// Cached reads outlive the drain: the same request answers from the
	// result cache with no admission, byte-identical to the live run.
	j2, err := m.Submit(AnalyzeRequest{App: "cg", Ranks: 4})
	if err != nil {
		t.Fatalf("cached submit while drained: %v", err)
	}
	res2, err := j2.Wait(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res1, res2) {
		t.Fatal("cached result differs from the drained job's bytes")
	}
	resp = post("/v1/analyze", `{"app":"cg","ranks":4}`, false)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached request while drained: status %d, want 200", resp.StatusCode)
	}
	var out json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
}

// TestDrainTimeout: a drain whose context expires reports the cause but
// leaves the manager draining — a retried Drain keeps waiting instead
// of re-admitting work.
func TestDrainTimeout(t *testing.T) {
	eng := engine.New(1)
	m, err := NewManager(Options{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	m.slots <- struct{}{}
	j, err := m.Submit(AnalyzeRequest{App: "cg", Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	flushed, err := m.Drain(ctx)
	if err == nil {
		t.Fatal("Drain returned clean with a job still in flight")
	}
	if flushed != 1 {
		t.Fatalf("expired Drain reported %d in flight, want 1", flushed)
	}
	if !m.Draining() {
		t.Fatal("manager stopped draining after Drain's context expired")
	}
	<-m.slots
	if _, err := j.Wait(t.Context()); err != nil {
		t.Fatal(err)
	}
	if flushed, err := m.Drain(context.Background()); err != nil || flushed != 0 {
		t.Fatalf("retried Drain: flushed %d, err %v", flushed, err)
	}
}
