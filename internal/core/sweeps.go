package core

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/tracer"
)

// Parameter-sweep studies built on the pipeline: chunk-count ablation and
// strong-scaling runs. Both retrace the application per point (the traced
// execution itself depends on neither, but chunking happens at
// trace-build time and scaling changes the rank count).

// ChunkPoint is one measurement of the chunk-count ablation.
type ChunkPoint struct {
	Chunks                    int
	SpeedupReal, SpeedupIdeal float64
}

// ChunkSweep measures overlap speedups across chunk counts. The paper
// fixes 4 chunks; the sweep quantifies that design choice.
func ChunkSweep(app App, ranks int, netCfg network.Config, tCfg tracer.Config, counts []int) ([]ChunkPoint, error) {
	if err := netCfg.Validate(); err != nil {
		return nil, err
	}
	run, err := tracer.Trace(app.Name, ranks, tCfg, app.Kernel)
	if err != nil {
		return nil, err
	}
	base := run.BaseTrace()
	if err := base.Validate(); err != nil {
		return nil, err
	}
	baseRes, err := sim.Run(netCfg, base)
	if err != nil {
		return nil, err
	}
	out := make([]ChunkPoint, 0, len(counts))
	for _, k := range counts {
		if k <= 0 {
			return nil, fmt.Errorf("core: chunk count %d", k)
		}
		// Rebuild the overlapped traces under a different chunking of
		// the same event log.
		kRun := *run
		kRun.Cfg.Chunks = k
		real := kRun.OverlapReal()
		ideal := kRun.OverlapIdeal()
		if err := real.Validate(); err != nil {
			return nil, fmt.Errorf("core: chunks=%d real: %w", k, err)
		}
		if err := ideal.Validate(); err != nil {
			return nil, fmt.Errorf("core: chunks=%d ideal: %w", k, err)
		}
		realRes, err := sim.Run(netCfg, real)
		if err != nil {
			return nil, err
		}
		idealRes, err := sim.Run(netCfg, ideal)
		if err != nil {
			return nil, err
		}
		out = append(out, ChunkPoint{
			Chunks:       k,
			SpeedupReal:  metrics.Speedup(baseRes.FinishSec, realRes.FinishSec),
			SpeedupIdeal: metrics.Speedup(baseRes.FinishSec, idealRes.FinishSec),
		})
	}
	return out, nil
}

// ScalePoint is one measurement of a strong-scaling study.
type ScalePoint struct {
	Ranks                     int
	BaseFinishSec             float64
	SpeedupReal, SpeedupIdeal float64
}

// AppFactory builds the application configured for a given rank count
// (kernels whose decomposition depends on the world size need this).
type AppFactory func(ranks int) (App, error)

// ScalingStudy analyzes the application across rank counts on platforms
// derived from cfgFor.
func ScalingStudy(factory AppFactory, rankCounts []int, cfgFor func(ranks int) network.Config, tCfg tracer.Config) ([]ScalePoint, error) {
	out := make([]ScalePoint, 0, len(rankCounts))
	for _, ranks := range rankCounts {
		app, err := factory(ranks)
		if err != nil {
			return nil, err
		}
		rep, err := Analyze(app, ranks, cfgFor(ranks), tCfg)
		if err != nil {
			return nil, fmt.Errorf("core: scaling at %d ranks: %w", ranks, err)
		}
		out = append(out, ScalePoint{
			Ranks:         ranks,
			BaseFinishSec: rep.Base.FinishSec,
			SpeedupReal:   rep.SpeedupReal,
			SpeedupIdeal:  rep.SpeedupIdeal,
		})
	}
	return out, nil
}
