package sim

import (
	"strconv"
	"time"

	"repro/internal/telemetry"
)

// Replay flight recording. Every replay aggregates a ReplayStats into
// its arena — plain single-owner counters bumped where the work happens
// (the event queue counts its own pops, each PDES shard its own queue,
// the coordinator the phase clock) — and finishReplay harvests the
// totals into the process-wide telemetry registry with a handful of
// atomic adds. The warm serial path stays 0 allocs/op with the
// recording enabled (pinned by TestReplayAllocs*).

// ReplayStats is the flight record of one replay.
type ReplayStats struct {
	// Events is the number of events dispatched, across all owners.
	Events int64
	// CursorJumps counts calendar-queue gap jumps (a full bucket cycle
	// without a hit; the cursor warped to the next populated year).
	CursorJumps int64
	// Rebuilds counts calendar-queue redistributions.
	Rebuilds int64
	// ReplayNanos is the replay's wall time, reset to finish.
	ReplayNanos int64

	// Shards is the effective shard count: 1 for a serial replay.
	Shards int
	// Windows counts conservative parallel windows (each one horizon
	// advance: shards drained everything below the global queue head).
	Windows int64
	// SerialPhases counts coordinator drains of the global stream.
	SerialPhases int64
	// ParallelNanos / SerialNanos split the sharded replay's wall time
	// into its two phases, measured at the coordinator.
	ParallelNanos int64
	SerialNanos   int64
	// ShardEvents is the per-shard event count. It aliases arena memory
	// and is valid only until the arena's next replay; nil when serial.
	ShardEvents []int64
}

// LastStats returns the stats of the arena's most recent completed
// replay. ShardEvents aliases arena memory (see ReplayStats).
func (a *ReplayArena) LastStats() ReplayStats { return a.stats }

// Process-wide replay instruments (see internal/telemetry). Durations
// accumulate in nanoseconds and expose in seconds.
var (
	mReplays       = telemetry.Default().Counter("sim_replays_total", "completed trace replays")
	mReplayEvents  = telemetry.Default().Counter("sim_replay_events_total", "events dispatched by the replay event loop, all owners")
	mReplaySeconds = telemetry.Default().Histogram("sim_replay_seconds", "wall time of one replay, reset to finish", 1e-9)
	mCalJumps      = telemetry.Default().Counter("sim_calqueue_cursor_jumps_total", "calendar-queue gap jumps (full bucket cycle without a hit)")
	mCalRebuilds   = telemetry.Default().Counter("sim_calqueue_rebuilds_total", "calendar-queue redistributions")
	mFaultDropped  = telemetry.Default().Counter("sim_fault_dropped_transfers_total", "transfers suppressed by injected hard faults (downed NICs/links)")

	mPDESReplays       = telemetry.Default().Counter("sim_pdes_replays_total", "replays executed on the sharded (PDES) path")
	mPDESWindows       = telemetry.Default().Counter("sim_pdes_windows_total", "conservative parallel windows (horizon advances)")
	mPDESSerialPhases  = telemetry.Default().Counter("sim_pdes_serial_phases_total", "coordinator drains of the global event stream")
	mPDESParallelSecs  = telemetry.Default().CounterScale("sim_pdes_parallel_seconds_total", "wall time spent in PDES parallel phases", 1e-9)
	mPDESSerialSecs    = telemetry.Default().CounterScale("sim_pdes_serial_seconds_total", "wall time spent in PDES serial (coordinator) phases", 1e-9)
	mPDESShardEvents   = telemetry.Default().CounterVec("sim_pdes_shard_events_total", "events executed by each PDES shard", "shard")
	shardLabelsPrecomp = func() (ls [64]string) {
		for i := range ls {
			ls[i] = strconv.Itoa(i)
		}
		return
	}()
)

// shardLabel returns the label value for shard i without allocating for
// realistic shard counts.
func shardLabel(i int) string {
	if i < len(shardLabelsPrecomp) {
		return shardLabelsPrecomp[i]
	}
	return strconv.Itoa(i)
}

// harvestStats folds the replay's single-owner counters into the
// arena's ReplayStats and flushes the totals to telemetry. Called once
// per completed replay from finishReplay; costs a few atomic adds and
// never allocates on the serial path.
func (a *ReplayArena) harvestStats() {
	st := &a.stats
	st.ReplayNanos = time.Since(a.replayStart).Nanoseconds()
	st.Events = a.evq.popped
	st.CursorJumps = a.evq.jumps
	st.Rebuilds = a.evq.rebuilds
	if st.Shards > 1 {
		pd := &a.pdes
		st.Windows = pd.windows
		st.SerialPhases = pd.serialPhases
		st.ParallelNanos = pd.parNanos
		st.SerialNanos = pd.serNanos
		a.shardEventsBuf = grow(a.shardEventsBuf, len(pd.shards))
		for i := range pd.shards {
			sh := &pd.shards[i]
			a.shardEventsBuf[i] = sh.q.popped
			st.Events += sh.q.popped
			st.CursorJumps += sh.q.jumps
			st.Rebuilds += sh.q.rebuilds
		}
		st.ShardEvents = a.shardEventsBuf
	}

	mReplays.Inc()
	if a.fxDropped > 0 {
		mFaultDropped.AddInt(a.fxDropped)
	}
	mReplayEvents.AddInt(st.Events)
	mReplaySeconds.Observe(st.ReplayNanos)
	mCalJumps.AddInt(st.CursorJumps)
	mCalRebuilds.AddInt(st.Rebuilds)
	if st.Shards > 1 {
		mPDESReplays.Inc()
		mPDESWindows.AddInt(st.Windows)
		mPDESSerialPhases.AddInt(st.SerialPhases)
		mPDESParallelSecs.AddInt(st.ParallelNanos)
		mPDESSerialSecs.AddInt(st.SerialNanos)
		for i, ev := range st.ShardEvents {
			mPDESShardEvents.With(shardLabel(i)).AddInt(ev)
		}
	}
}
