package network

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/faults"
)

// Platform presets and JSON persistence: Dimemas reads its platform from a
// configuration file; this file provides the equivalent. The presets cover
// the networks the paper's introduction discusses — the Myrinet testbed and
// the InfiniBand QDR generation whose cost motivates the study — plus a
// commodity Ethernet point for contrast and two hierarchical multi-node
// shapes for placement studies.

// presetEntry is one row of the preset table. Flat presets define flat;
// hierarchical presets define platform. Every entry is reachable through
// PlatformPreset; only flat entries are reachable through Preset. Keeping
// names, docs, and builders in one table means PresetNames can never drift
// from what Preset and PlatformPreset resolve.
type presetEntry struct {
	name     string
	describe string
	flat     func(processors int) Config
	platform func(processors int) Platform
}

// presetTable is the single source of truth for all presets.
var presetTable = []presetEntry{
	{
		name:     "marenostrum",
		describe: "the paper's testbed: 250 MB/s, 8 us (default elsewhere)",
		flat:     Testbed,
	},
	{
		name:     "ib-qdr",
		describe: "InfiniBand QDR: 1000 MB/s effective, 1.3 us MPI latency",
		flat: func(p int) Config {
			c := Testbed(p)
			c.BandwidthMBps = 1000
			c.LatencySec = 1.3e-6
			return c
		},
	},
	{
		name:     "ib-qdr-4x",
		describe: "four aggregated QDR links (4000 MB/s)",
		flat: func(p int) Config {
			c := Testbed(p)
			c.BandwidthMBps = 4000
			c.LatencySec = 1.3e-6
			return c
		},
	},
	{
		name:     "gige",
		describe: "commodity gigabit Ethernet: 125 MB/s, 50 us",
		flat: func(p int) Config {
			c := Testbed(p)
			c.BandwidthMBps = 125
			c.LatencySec = 50e-6
			return c
		},
	},
	{
		name:     "ideal",
		describe: "zero latency, infinite bandwidth, no contention",
		flat: func(p int) Config {
			c := Testbed(p)
			c.BandwidthMBps = math.Inf(1)
			c.LatencySec = 0
			c.InPorts = 0
			c.OutPorts = 0
			c.Buses = 0
			return c
		},
	},
	{
		name:     "marenostrum-4x",
		describe: "the testbed as 4-way nodes: shared memory inside a blade, Myrinet across",
		platform: func(p int) Platform {
			pl := Testbed(p).Platform()
			pl.Nodes = nodesFor(p, 4)
			pl.Intra = Link{LatencySec: 0.5e-6, BandwidthMBps: 6000}
			pl.IntraBuses = 4
			return pl
		},
	},
	{
		name:     "fatnode-smp",
		describe: "modern fat nodes: 16 ranks/node over shared memory, IB QDR NICs between",
		platform: func(p int) Platform {
			pl := Testbed(p).Platform()
			pl.Nodes = nodesFor(p, 16)
			pl.Intra = Link{LatencySec: 0.2e-6, BandwidthMBps: 12000}
			pl.IntraBuses = 0
			pl.Inter = Link{LatencySec: 1.3e-6, BandwidthMBps: 1000}
			pl.InPorts = 2
			pl.OutPorts = 2
			return pl
		},
	},
}

// nodesFor computes how many nodes hold processors ranks at perNode each.
func nodesFor(processors, perNode int) int {
	n := (processors + perNode - 1) / perNode
	if n < 1 {
		n = 1
	}
	return n
}

func presetByName(name string) (presetEntry, bool) {
	for _, e := range presetTable {
		if e.name == name {
			return e, true
		}
	}
	return presetEntry{}, false
}

// Preset returns a named flat platform configuration; PresetNames lists
// what resolves. Hierarchical presets (marenostrum-4x, fatnode-smp) are
// only reachable through PlatformPreset and are rejected here with a hint.
func Preset(name string, processors int) (Config, error) {
	e, ok := presetByName(name)
	if !ok {
		return Config{}, fmt.Errorf("network: unknown preset %q (known: %v)", name, PresetNames())
	}
	if e.flat == nil {
		return Config{}, fmt.Errorf("network: preset %q is hierarchical; resolve it with PlatformPreset", name)
	}
	return e.flat(processors), nil
}

// PlatformPreset returns a named platform — flat presets in their
// degenerate one-rank-per-node form, hierarchical presets as built.
func PlatformPreset(name string, processors int) (Platform, error) {
	e, ok := presetByName(name)
	if !ok {
		return Platform{}, fmt.Errorf("network: unknown preset %q (known: %v)", name, PresetNames())
	}
	if e.platform != nil {
		return e.platform(processors), nil
	}
	return e.flat(processors).Platform(), nil
}

// PresetNames lists the available presets, sorted.
func PresetNames() []string {
	names := make([]string, len(presetTable))
	for i, e := range presetTable {
		names[i] = e.name
	}
	sort.Strings(names)
	return names
}

// PresetDescriptions returns a name→summary table for CLI help text.
func PresetDescriptions() map[string]string {
	m := make(map[string]string, len(presetTable))
	for _, e := range presetTable {
		m[e.name] = e.describe
	}
	return m
}

// ---------------------------------------------------------------------------
// JSON persistence

// configJSON mirrors Config for serialization; infinite bandwidth is
// encoded as the string "inf" since JSON has no Inf literal.
type configJSON struct {
	Processors          int     `json:"processors"`
	LatencySec          float64 `json:"latency_sec"`
	BandwidthMBps       any     `json:"bandwidth_mbps"`
	Buses               int     `json:"buses"`
	InPorts             int     `json:"in_ports"`
	OutPorts            int     `json:"out_ports"`
	MIPS                float64 `json:"mips"`
	EagerThresholdBytes int64   `json:"eager_threshold_bytes"`
	RelativeSpeed       float64 `json:"relative_speed"`
}

// WriteJSON serializes the configuration.
func (c Config) WriteJSON(w io.Writer) error {
	j := configJSON{
		Processors:          c.Processors,
		LatencySec:          c.LatencySec,
		BandwidthMBps:       encodeBW(c.BandwidthMBps),
		Buses:               c.Buses,
		InPorts:             c.InPorts,
		OutPorts:            c.OutPorts,
		MIPS:                c.MIPS,
		EagerThresholdBytes: c.EagerThresholdBytes,
		RelativeSpeed:       c.RelativeSpeed,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(j)
}

// ReadJSON parses a configuration written by WriteJSON and validates it.
func ReadJSON(r io.Reader) (Config, error) {
	var j configJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&j); err != nil {
		return Config{}, fmt.Errorf("network: parse config: %w", err)
	}
	c := Config{
		Processors:          j.Processors,
		LatencySec:          j.LatencySec,
		Buses:               j.Buses,
		InPorts:             j.InPorts,
		OutPorts:            j.OutPorts,
		MIPS:                j.MIPS,
		EagerThresholdBytes: j.EagerThresholdBytes,
		RelativeSpeed:       j.RelativeSpeed,
	}
	bw, err := decodeBW(j.BandwidthMBps)
	if err != nil {
		return Config{}, err
	}
	c.BandwidthMBps = bw
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

func encodeBW(bw float64) any {
	if math.IsInf(bw, 1) {
		return "inf"
	}
	return bw
}

func decodeBW(v any) (float64, error) {
	switch bw := v.(type) {
	case string:
		if bw != "inf" {
			return 0, fmt.Errorf("network: bad bandwidth %q", bw)
		}
		return math.Inf(1), nil
	case float64:
		return bw, nil
	case nil:
		return 0, fmt.Errorf("network: missing bandwidth")
	default:
		return 0, fmt.Errorf("network: bad bandwidth type %T", bw)
	}
}

// linkJSON mirrors Link for serialization.
type linkJSON struct {
	LatencySec    float64 `json:"latency_sec"`
	BandwidthMBps any     `json:"bandwidth_mbps"`
}

func (l Link) toJSON() linkJSON {
	return linkJSON{LatencySec: l.LatencySec, BandwidthMBps: encodeBW(l.BandwidthMBps)}
}

func (j linkJSON) toLink() (Link, error) {
	bw, err := decodeBW(j.BandwidthMBps)
	if err != nil {
		return Link{}, err
	}
	return Link{LatencySec: j.LatencySec, BandwidthMBps: bw}, nil
}

// platformJSON mirrors Platform. The mapping is either the string "block",
// the string "rr", or an explicit per-rank node array.
type platformJSON struct {
	Processors          int      `json:"processors"`
	Nodes               int      `json:"nodes"`
	Mapping             any      `json:"mapping"`
	Intra               linkJSON `json:"intra"`
	IntraBuses          int      `json:"intra_buses"`
	Inter               linkJSON `json:"inter"`
	Buses               int      `json:"buses"`
	InPorts             int      `json:"in_ports"`
	OutPorts            int      `json:"out_ports"`
	MIPS                float64  `json:"mips"`
	EagerThresholdBytes int64    `json:"eager_threshold_bytes"`
	RelativeSpeed       float64  `json:"relative_speed"`
	CongestionFactor    float64  `json:"congestion_factor"`
	// Degradations is optional: absent in healthy platform files (so
	// files written before the field existed round-trip unchanged) and
	// in files written for healthy platforms.
	Degradations *faults.Spec `json:"degradations,omitempty"`
}

// WriteJSON serializes the platform.
func (p Platform) WriteJSON(w io.Writer) error {
	var mapping any
	switch p.Mapping.Kind {
	case MapBlock:
		mapping = "block"
	case MapRoundRobin:
		mapping = "rr"
	case MapExplicit:
		mapping = p.Mapping.Explicit
	}
	j := platformJSON{
		Processors:          p.Processors,
		Nodes:               p.Nodes,
		Mapping:             mapping,
		Intra:               p.Intra.toJSON(),
		IntraBuses:          p.IntraBuses,
		Inter:               p.Inter.toJSON(),
		Buses:               p.Buses,
		InPorts:             p.InPorts,
		OutPorts:            p.OutPorts,
		MIPS:                p.MIPS,
		EagerThresholdBytes: p.EagerThresholdBytes,
		RelativeSpeed:       p.RelativeSpeed,
		CongestionFactor:    p.CongestionFactor,
	}
	if d := p.Degradations.Canonical(); !d.IsZero() {
		j.Degradations = &d
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(j)
}

// ReadPlatformJSON parses a platform written by Platform.WriteJSON and
// validates it.
func ReadPlatformJSON(r io.Reader) (Platform, error) {
	var j platformJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&j); err != nil {
		return Platform{}, fmt.Errorf("network: parse platform: %w", err)
	}
	intra, err := j.Intra.toLink()
	if err != nil {
		return Platform{}, fmt.Errorf("network: intra link: %w", err)
	}
	inter, err := j.Inter.toLink()
	if err != nil {
		return Platform{}, fmt.Errorf("network: inter link: %w", err)
	}
	p := Platform{
		Processors:          j.Processors,
		Nodes:               j.Nodes,
		Intra:               intra,
		IntraBuses:          j.IntraBuses,
		Inter:               inter,
		Buses:               j.Buses,
		InPorts:             j.InPorts,
		OutPorts:            j.OutPorts,
		MIPS:                j.MIPS,
		EagerThresholdBytes: j.EagerThresholdBytes,
		RelativeSpeed:       j.RelativeSpeed,
		CongestionFactor:    j.CongestionFactor,
	}
	if j.Degradations != nil {
		p.Degradations = *j.Degradations
	}
	switch m := j.Mapping.(type) {
	case string:
		p.Mapping, err = ParseMapping(m)
		if err != nil {
			return Platform{}, err
		}
	case []any:
		nodes := make([]int, len(m))
		for i, v := range m {
			f, ok := v.(float64)
			if !ok || f != math.Trunc(f) {
				return Platform{}, fmt.Errorf("network: bad mapping entry %v", v)
			}
			nodes[i] = int(f)
		}
		p.Mapping = ExplicitMapping(nodes)
	case nil:
		p.Mapping = BlockMapping()
	default:
		return Platform{}, fmt.Errorf("network: bad mapping type %T", m)
	}
	if err := p.Validate(); err != nil {
		return Platform{}, err
	}
	return p, nil
}

// ReadAnyPlatform parses either a hierarchical platform file (the
// Platform.WriteJSON schema, recognized by its "nodes" key) or a flat
// Config file (lifted to its degenerate platform). This is the decoder
// behind every CLI's -platform flag, so both generations of files work
// everywhere.
func ReadAnyPlatform(r io.Reader) (Platform, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return Platform{}, fmt.Errorf("network: read platform: %w", err)
	}
	var probe map[string]any
	if err := json.Unmarshal(raw, &probe); err != nil {
		return Platform{}, fmt.Errorf("network: parse platform: %w", err)
	}
	if _, hier := probe["nodes"]; hier {
		return ReadPlatformJSON(bytes.NewReader(raw))
	}
	c, err := ReadJSON(bytes.NewReader(raw))
	if err != nil {
		return Platform{}, err
	}
	return c.Platform(), nil
}

// ReadPlatformFile opens and parses a platform file via ReadAnyPlatform.
func ReadPlatformFile(path string) (Platform, error) {
	f, err := os.Open(path)
	if err != nil {
		return Platform{}, fmt.Errorf("network: %w", err)
	}
	defer f.Close()
	p, err := ReadAnyPlatform(f)
	if err != nil {
		return Platform{}, fmt.Errorf("network: %s: %w", path, err)
	}
	return p, nil
}
