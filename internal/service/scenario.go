package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/faults"
)

// KindScenario labels generic scenario jobs (POST /v1/scenarios).
const KindScenario = "scenario"

// maxGridPoints bounds a scenario's expanded run grid — the same budget
// the per-kind sweeps enforce per request, applied to the cross product.
const maxGridPoints = maxSweepPoints

// ScenarioRequest is the generic declarative study request (the POST
// /v1/scenarios body): one workload, one platform, a flavor set, and a
// list of sweep axes whose cross product defines the run grid. It
// subsumes every per-kind endpoint — those are served as translations
// into this spec.
type ScenarioRequest struct {
	// App mode: trace the registry application on Ranks processes.
	App    string `json:"app,omitempty"`
	Ranks  int    `json:"ranks,omitempty"`
	Chunks int    `json:"chunks,omitempty"`
	// Trace mode: replay a stored trace, referenced by digest. Exactly
	// one of App or Trace must be set.
	Trace string `json:"trace,omitempty"`

	Platform *PlatformSpec `json:"platform,omitempty"`
	// Flavors lists the flavors measured per grid point for finish and
	// traffic outputs (default: base and overlap-real).
	Flavors []string `json:"flavors,omitempty"`
	// Axes are the sweep dimensions; their cross product is the grid.
	Axes []core.Axis `json:"axes,omitempty"`
	// Output is finish (default), traffic, whatif, or report.
	Output string `json:"output,omitempty"`
	// Degradations is the base fault-injection spec every grid point
	// starts from (see internal/faults); fault axes vary its fields per
	// point. Omitted or zero means the healthy platform.
	Degradations *faults.Spec `json:"degradations,omitempty"`
}

func (r ScenarioRequest) prepare(m *Manager) (*task, error) {
	sc, key, err := r.spec(m)
	if err != nil {
		return nil, err
	}
	return &task{
		kind: KindScenario,
		key:  key,
		run: func(ctx context.Context, m *Manager) (any, error) {
			// In a cluster, resolve remote-owned grid points first: the
			// planner then schedules engine work only for the points this
			// node owns (cluster.go; no-op standalone).
			m.clusterPrefetchPoints(ctx, r, sc)
			return core.RunScenario(ctx, m.eng, *sc)
		},
	}, nil
}

// spec translates the wire request into the planner's scenario plus its
// canonical digest (the cache key). Both the batch path (prepare) and
// the streaming path build on it, so the two serve the same study under
// the same key — and both run with the manager's point-level resume
// store attached.
func (r ScenarioRequest) spec(m *Manager) (*core.Scenario, string, error) {
	if (r.App == "") == (r.Trace == "") {
		return nil, "", fmt.Errorf("service: scenario needs exactly one of app or trace")
	}
	sc := core.Scenario{
		Axes:   r.Axes,
		Output: core.OutputKind(r.Output),
	}
	if r.Degradations != nil {
		sc.Degradations = *r.Degradations
	}
	for _, f := range r.Flavors {
		sc.Flavors = append(sc.Flavors, core.Flavor(f))
	}
	for _, ax := range r.Axes {
		if ax.Len() == 0 {
			return nil, "", fmt.Errorf("service: scenario axis %q has no points", ax.Kind)
		}
	}

	if r.Trace != "" {
		if r.Ranks != 0 || r.Chunks != 0 {
			return nil, "", fmt.Errorf("service: trace-mode scenario does not take ranks or chunks")
		}
		tr, err := m.store.GetTrace(r.Trace)
		if err != nil {
			return nil, "", err
		}
		digest := r.Trace
		sc.Trace = tr
		sc.TraceDigest = digest
		// Compilation routes through the manager's digest-keyed program
		// cache, so repeated scenarios over one stored trace compile it
		// once — and eviction from the store drops the program too.
		sc.CompileTrace = m.traceCompiler(digest)
		plat, _, err := m.resolvePlatform(r.Platform, tr.Name, tr.NumRanks)
		if err != nil {
			return nil, "", err
		}
		sc.Platform = plat
	} else {
		if _, err := appEntry(r.App, r.Ranks); err != nil {
			return nil, "", err
		}
		tCfg, err := tracerConfig(r.Chunks)
		if err != nil {
			return nil, "", err
		}
		app := r.App
		sc.Ranks = r.Ranks
		sc.Tracer = tCfg
		sc.Factory = func(ranks int) (core.App, error) { return appEntry(app, ranks) }
		// A ranks axis re-traces per point: every swept world size must
		// resolve in the registry (and respect the ranks cap) up front.
		for _, ax := range r.Axes {
			if ax.Kind == core.AxisRanks {
				for _, k := range ax.Counts {
					if _, err := appEntry(r.App, k); err != nil {
						return nil, "", err
					}
				}
			}
		}
		plat, _, err := m.resolvePlatform(r.Platform, r.App, r.Ranks)
		if err != nil {
			return nil, "", err
		}
		sc.Platform = plat
		sc.Traces = m.eng.Traces()
	}

	if n := sc.GridSize(); n > maxGridPoints {
		return nil, "", fmt.Errorf("service: scenario grid has %d points, limit %d", sc.GridSize(), maxGridPoints)
	}
	// The canonical spec digest is the cache key: equivalent spellings of
	// one study (preset vs inline platform, "block" vs its node list)
	// collapse to one entry. Digest also validates the spec, so malformed
	// scenarios fail here, before any engine work.
	key, err := sc.Digest()
	if err != nil {
		return nil, "", err
	}
	// The point-level resume store rides along as an execution hook (it
	// never enters the digest): any scenario run through this manager —
	// batch or streamed — reuses completed points from overlapping grids
	// and contributes its own. The replay-shards setting is the same kind
	// of hook: pure scheduling, byte-identical results.
	sc.PointCache = m.scenarioPointCache()
	sc.ReplayShards = m.replayShards
	return &sc, key, nil
}

// RunScenarioFile loads a scenario spec (the POST /v1/scenarios body,
// unknown fields rejected) from path and executes it locally on a
// one-off manager built from opts — the shared implementation of every
// CLI's -scenario flag. Only opts.Engine, opts.Store, and
// opts.ReplayShards matter here (caches are disabled for a single local
// run); a nil store serves app-mode scenarios only, while a disk-tier
// store lets specs reference stored trace digests. Returns the decoded
// result and the exact marshalled bytes the daemon would have served.
func RunScenarioFile(ctx context.Context, path string, opts Options) (*core.ScenarioResult, []byte, error) {
	req, mgr, err := loadScenarioFile(path, opts)
	if err != nil {
		return nil, nil, err
	}
	job, err := mgr.Submit(req)
	if err != nil {
		return nil, nil, err
	}
	payload, err := job.Wait(ctx)
	if err != nil {
		return nil, nil, err
	}
	var res core.ScenarioResult
	if err := json.Unmarshal(payload, &res); err != nil {
		return nil, nil, err
	}
	return &res, payload, nil
}

// StreamScenarioFile is RunScenarioFile's streaming sibling: it loads
// the spec from path, executes it locally, and renders the result table
// to w incrementally — each grid point prints the moment it (and its
// predecessors) finish, with final output byte-identical to printing
// the batch result's Format. The CLIs' -scenario flags drive it.
func StreamScenarioFile(ctx context.Context, path string, opts Options, w io.Writer) error {
	req, mgr, err := loadScenarioFile(path, opts)
	if err != nil {
		return err
	}
	sc, _, err := req.spec(mgr)
	if err != nil {
		return err
	}
	hdr, err := sc.Header()
	if err != nil {
		return err
	}
	p, err := core.NewScenarioPrinter(w, hdr)
	if err != nil {
		return err
	}
	_, err = core.RunScenarioStream(ctx, mgr.eng, *sc, p.Point)
	return err
}

// loadScenarioFile decodes a scenario request file (unknown fields
// rejected) and builds the one-off manager the CLIs run it on, with
// both result caches disabled — a single local run has nothing to
// resume.
func loadScenarioFile(path string, opts Options) (ScenarioRequest, *Manager, error) {
	var req ScenarioRequest
	data, err := os.ReadFile(path)
	if err != nil {
		return req, nil, fmt.Errorf("service: scenario file: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, nil, fmt.Errorf("service: scenario file %s: %w", path, err)
	}
	opts.CacheEntries = -1
	opts.PointCacheEntries = -1
	mgr, err := NewManager(opts)
	if err != nil {
		return req, nil, err
	}
	return req, mgr, nil
}
