package mpi

import (
	"testing"
)

func TestSendrecvExchange(t *testing.T) {
	err := Run(2, func(p *Proc) {
		me := p.Rank()
		peer := 1 - me
		out := []float64{float64(me * 10)}
		in := make([]float64, 1)
		p.Sendrecv(peer, 5, out, peer, 5, in)
		if in[0] != float64(peer*10) {
			t.Errorf("rank %d got %v", me, in[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvRing(t *testing.T) {
	// Every rank forwards to the right and receives from the left; with
	// symmetric call order this deadlocks on synchronous transports but
	// must pass here.
	n := 5
	err := Run(n, func(p *Proc) {
		me := p.Rank()
		out := []float64{float64(me)}
		in := make([]float64, 1)
		p.Sendrecv((me+1)%n, 0, out, (me-1+n)%n, 0, in)
		if in[0] != float64((me-1+n)%n) {
			t.Errorf("rank %d got %v", me, in[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatter(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		for root := 0; root < n; root += 1 + n/2 {
			err := Run(n, func(p *Proc) {
				var in []float64
				if p.Rank() == root {
					in = make([]float64, n*2)
					for i := range in {
						in[i] = float64(i)
					}
				}
				out := make([]float64, 2)
				p.Scatter(in, out, root)
				if out[0] != float64(p.Rank()*2) || out[1] != float64(p.Rank()*2+1) {
					t.Errorf("n=%d root=%d rank=%d: out=%v", n, root, p.Rank(), out)
				}
			})
			if err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
		}
	}
}

func TestScatterSizeMismatchPanics(t *testing.T) {
	// Single rank so no peer can be left blocked by the failing root.
	err := Run(1, func(p *Proc) {
		out := make([]float64, 2)
		p.Scatter([]float64{1, 2, 3}, out, 0) // want 1*2 elements
	})
	if err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestScanInclusive(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7} {
		err := Run(n, func(p *Proc) {
			in := []float64{float64(p.Rank() + 1)}
			out := make([]float64, 1)
			p.Scan(in, out, OpSum)
			want := float64((p.Rank() + 1) * (p.Rank() + 2) / 2)
			if out[0] != want {
				t.Errorf("n=%d rank=%d: scan=%v, want %v", n, p.Rank(), out[0], want)
			}
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestExscanExclusive(t *testing.T) {
	err := Run(4, func(p *Proc) {
		in := []float64{float64(p.Rank() + 1)}
		out := []float64{-1} // sentinel: rank 0 keeps it
		p.Exscan(in, out, OpSum)
		if p.Rank() == 0 {
			if out[0] != -1 {
				t.Errorf("rank 0 out overwritten: %v", out[0])
			}
			return
		}
		want := float64(p.Rank() * (p.Rank() + 1) / 2)
		if out[0] != want {
			t.Errorf("rank %d: exscan=%v, want %v", p.Rank(), out[0], want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScanMaxOperator(t *testing.T) {
	err := Run(5, func(p *Proc) {
		vals := []float64{3, 1, 4, 1, 5}
		in := []float64{vals[p.Rank()]}
		out := make([]float64, 1)
		p.Scan(in, out, OpMax)
		want := []float64{3, 3, 4, 4, 5}[p.Rank()]
		if out[0] != want {
			t.Errorf("rank %d: %v, want %v", p.Rank(), out[0], want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
