package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// tinyTrace builds a well-formed two-rank trace: rank 0 computes and sends,
// rank 1 posts an irecv, computes, waits, and computes again.
func tinyTrace() *Trace {
	t := New("unit", "base", 2)
	t.Append(0, Record{Kind: KindCompute, Instr: 1000})
	t.Append(0, Record{Kind: KindSend, Peer: 1, Tag: 7, Bytes: 4096, MsgID: 1})
	t.Append(1, Record{Kind: KindIRecv, Peer: 0, Tag: 7, Bytes: 4096, Handle: 1, MsgID: 1})
	t.Append(1, Record{Kind: KindCompute, Instr: 500})
	t.Append(1, Record{Kind: KindWait, Handle: 1})
	t.Append(1, Record{Kind: KindCompute, Instr: 250})
	return t
}

func TestNewInitializesRanks(t *testing.T) {
	tr := New("n", "f", 4)
	if tr.NumRanks != 4 || len(tr.Ranks) != 4 {
		t.Fatalf("got NumRanks=%d len=%d, want 4/4", tr.NumRanks, len(tr.Ranks))
	}
	for i, r := range tr.Ranks {
		if r.Rank != i {
			t.Errorf("rank stream %d labelled %d", i, r.Rank)
		}
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := tinyTrace().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestValidateRejectsBadPeer(t *testing.T) {
	tr := tinyTrace()
	tr.Append(0, Record{Kind: KindSend, Peer: 9, Tag: 0, Bytes: 1})
	if err := tr.Validate(); err == nil {
		t.Fatal("out-of-range peer accepted")
	}
}

func TestValidateRejectsSelfMessage(t *testing.T) {
	tr := New("n", "f", 2)
	tr.Append(0, Record{Kind: KindSend, Peer: 0, Bytes: 1})
	if err := tr.Validate(); err == nil {
		t.Fatal("self message accepted")
	}
}

func TestValidateRejectsNegativeBurst(t *testing.T) {
	tr := New("n", "f", 1)
	tr.Append(0, Record{Kind: KindCompute, Instr: -5})
	if err := tr.Validate(); err == nil {
		t.Fatal("negative burst accepted")
	}
}

func TestValidateRejectsWaitWithoutPost(t *testing.T) {
	tr := New("n", "f", 1)
	tr.Append(0, Record{Kind: KindWait, Handle: 3})
	if err := tr.Validate(); err == nil {
		t.Fatal("wait on unknown handle accepted")
	}
}

func TestValidateRejectsDoubleWait(t *testing.T) {
	tr := New("n", "f", 2)
	tr.Append(0, Record{Kind: KindSend, Peer: 1, Bytes: 8})
	tr.Append(1, Record{Kind: KindIRecv, Peer: 0, Bytes: 8, Handle: 1})
	tr.Append(1, Record{Kind: KindWait, Handle: 1})
	tr.Append(1, Record{Kind: KindWait, Handle: 1})
	if err := tr.Validate(); err == nil {
		t.Fatal("double wait accepted")
	}
}

func TestValidateRejectsRepostedOutstandingHandle(t *testing.T) {
	tr := New("n", "f", 2)
	tr.Append(0, Record{Kind: KindSend, Peer: 1, Bytes: 8})
	tr.Append(0, Record{Kind: KindSend, Peer: 1, Bytes: 8})
	tr.Append(1, Record{Kind: KindIRecv, Peer: 0, Bytes: 8, Handle: 1})
	tr.Append(1, Record{Kind: KindIRecv, Peer: 0, Bytes: 8, Handle: 1})
	if err := tr.Validate(); err == nil {
		t.Fatal("reposted outstanding handle accepted")
	}
}

func TestValidateRejectsUnbalancedFlows(t *testing.T) {
	tr := New("n", "f", 2)
	tr.Append(0, Record{Kind: KindSend, Peer: 1, Bytes: 100})
	// Rank 1 never receives it.
	if err := tr.Validate(); err == nil {
		t.Fatal("unbalanced flow accepted")
	}
	tr2 := New("n", "f", 2)
	tr2.Append(1, Record{Kind: KindRecv, Peer: 0, Bytes: 100})
	if err := tr2.Validate(); err == nil {
		t.Fatal("receive without send accepted")
	}
}

func TestWaitAllClearsOutstandingHandles(t *testing.T) {
	tr := New("n", "f", 2)
	tr.Append(0, Record{Kind: KindSend, Peer: 1, Bytes: 8})
	tr.Append(0, Record{Kind: KindSend, Peer: 1, Bytes: 8})
	tr.Append(1, Record{Kind: KindIRecv, Peer: 0, Bytes: 8, Handle: 1})
	tr.Append(1, Record{Kind: KindIRecv, Peer: 0, Bytes: 8, Handle: 2})
	tr.Append(1, Record{Kind: KindWaitAll})
	tr.Append(1, Record{Kind: KindIRecv, Peer: 0, Bytes: 8, Handle: 1})
	tr.Append(1, Record{Kind: KindWait, Handle: 1})
	tr.Append(0, Record{Kind: KindSend, Peer: 1, Bytes: 8})
	if err := tr.Validate(); err != nil {
		t.Fatalf("waitall did not clear handles: %v", err)
	}
}

func TestStats(t *testing.T) {
	tr := tinyTrace()
	s := tr.Stats()
	if s.Records != 6 {
		t.Errorf("Records=%d, want 6", s.Records)
	}
	if s.ComputeInstr != 1750 {
		t.Errorf("ComputeInstr=%d, want 1750", s.ComputeInstr)
	}
	if s.Messages != 1 || s.BytesSent != 4096 {
		t.Errorf("Messages=%d BytesSent=%d, want 1/4096", s.Messages, s.BytesSent)
	}
	if s.IRecvs != 1 || s.Waits != 1 {
		t.Errorf("IRecvs=%d Waits=%d, want 1/1", s.IRecvs, s.Waits)
	}
}

func TestTotalInstructions(t *testing.T) {
	tr := tinyTrace()
	if got := tr.TotalInstructions(0); got != 1000 {
		t.Errorf("rank 0 instr=%d, want 1000", got)
	}
	if got := tr.TotalInstructions(1); got != 750 {
		t.Errorf("rank 1 instr=%d, want 750", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := tinyTrace()
	c := tr.Clone()
	c.Ranks[0].Records[0].Instr = 42
	if tr.Ranks[0].Records[0].Instr != 1000 {
		t.Fatal("Clone shares record storage with original")
	}
	if c.Name != tr.Name || c.NumRanks != tr.NumRanks {
		t.Fatal("Clone lost metadata")
	}
}

func TestPairVolumes(t *testing.T) {
	tr := New("n", "f", 3)
	tr.Append(0, Record{Kind: KindSend, Peer: 1, Bytes: 10})
	tr.Append(0, Record{Kind: KindISend, Peer: 1, Bytes: 5})
	tr.Append(2, Record{Kind: KindSend, Peer: 0, Bytes: 7})
	got := tr.PairVolumes()
	want := []PairVolume{{Src: 0, Dst: 1, Bytes: 15}, {Src: 2, Dst: 0, Bytes: 7}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PairVolumes=%v, want %v", got, want)
	}
}

func TestRoundTripTiny(t *testing.T) {
	tr := tinyTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestRoundTripEscapedNames(t *testing.T) {
	tr := New("name with spaces %", "", 1)
	tr.Append(0, Record{Kind: KindCompute, Instr: 1})
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Name != tr.Name || got.Flavor != tr.Flavor {
		t.Fatalf("metadata round trip: got %q/%q want %q/%q", got.Name, got.Flavor, tr.Name, tr.Flavor)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"#DIMGO 2\nT a b 1\n",
		"#DIMGO 1\nT a b notanumber\n",
		"#DIMGO 1\nT a b 1\nc 5\n", // record before R line
		"#DIMGO 1\nT a b 1\nR 5\n", // rank out of range
		"#DIMGO 1\nT a b 1\nR 0\nz 1\n",
		"#DIMGO 1\nT a b 1\nR 0\nc\n",
		"#DIMGO 1\nT a b 1\nR 0\ns 1 2\n",
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: garbage accepted: %q", i, in)
		}
	}
}

func TestReadIgnoresCommentsAndBlankLines(t *testing.T) {
	in := "#DIMGO 1\n\nT app base 1\n# a comment\nR 0\n\nc 10\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(tr.Ranks[0].Records) != 1 || tr.Ranks[0].Records[0].Instr != 10 {
		t.Fatalf("unexpected parse result: %+v", tr.Ranks[0].Records)
	}
}

// randomTrace builds a structurally valid random trace for property tests:
// every send on rank a is paired with an irecv+wait or blocking recv on a
// fixed partner, keeping flows balanced.
func randomTrace(rng *rand.Rand) *Trace {
	n := 2 + rng.Intn(5)
	tr := New("prop", "base", n)
	handle := make([]int, n)
	nmsg := rng.Intn(40)
	var msgid int64
	for i := 0; i < nmsg; i++ {
		src := rng.Intn(n)
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		size := int64(rng.Intn(1 << 16))
		tag := rng.Intn(8)
		chunk := rng.Intn(4)
		msgid++
		if rng.Intn(3) == 0 {
			tr.Append(src, Record{Kind: KindISend, Peer: dst, Tag: tag, Chunk: chunk, Bytes: size, MsgID: msgid})
		} else {
			tr.Append(src, Record{Kind: KindSend, Peer: dst, Tag: tag, Chunk: chunk, Bytes: size, MsgID: msgid})
		}
		tr.Append(src, Record{Kind: KindCompute, Instr: int64(rng.Intn(10000))})
		if rng.Intn(2) == 0 {
			tr.Append(dst, Record{Kind: KindRecv, Peer: src, Tag: tag, Chunk: chunk, Bytes: size, MsgID: msgid})
		} else {
			handle[dst]++
			h := handle[dst]
			tr.Append(dst, Record{Kind: KindIRecv, Peer: src, Tag: tag, Chunk: chunk, Bytes: size, Handle: h, MsgID: msgid})
			tr.Append(dst, Record{Kind: KindCompute, Instr: int64(rng.Intn(1000))})
			tr.Append(dst, Record{Kind: KindWait, Handle: h})
		}
	}
	return tr
}

func TestPropertyRandomTracesValidate(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTrace(rand.New(rand.NewSource(seed)))
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRoundTripPreservesTrace(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTrace(rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyStatsMatchManualCount(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTrace(rand.New(rand.NewSource(seed)))
		s := tr.Stats()
		var records, msgs int
		var bytesSent, instr int64
		for r := range tr.Ranks {
			records += len(tr.Ranks[r].Records)
			for _, rec := range tr.Ranks[r].Records {
				switch rec.Kind {
				case KindSend, KindISend:
					msgs++
					bytesSent += rec.Bytes
				case KindCompute:
					instr += rec.Instr
				}
			}
		}
		return s.Records == records && s.Messages == msgs && s.BytesSent == bytesSent && s.ComputeInstr == instr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindCompute: "compute", KindSend: "send", KindISend: "isend",
		KindRecv: "recv", KindIRecv: "irecv", KindWait: "wait", KindWaitAll: "waitall",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String()=%q, want %q", k, k.String(), s)
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Errorf("unknown kind string: %q", Kind(99).String())
	}
}
