package paraver

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Additional analysis views in the spirit of Paraver's configurable
// windows: the communication matrix, per-state time histograms, and a
// time-sliced parallel-efficiency profile.

// CommMatrix aggregates the traffic of one replay into a src x dst matrix.
type CommMatrix struct {
	Ranks    int
	Bytes    [][]int64 // [src][dst]
	Messages [][]int   // [src][dst]
}

// CommMatrixOf builds the communication matrix of a result.
func CommMatrixOf(res *sim.Result) *CommMatrix {
	n := len(res.Ranks)
	m := &CommMatrix{Ranks: n, Bytes: make([][]int64, n), Messages: make([][]int, n)}
	for i := 0; i < n; i++ {
		m.Bytes[i] = make([]int64, n)
		m.Messages[i] = make([]int, n)
	}
	for _, c := range res.Comms {
		if c.Src >= 0 && c.Src < n && c.Dst >= 0 && c.Dst < n {
			m.Bytes[c.Src][c.Dst] += c.Bytes
			m.Messages[c.Src][c.Dst]++
		}
	}
	return m
}

// TotalBytes sums all traffic.
func (m *CommMatrix) TotalBytes() int64 {
	var s int64
	for i := range m.Bytes {
		for j := range m.Bytes[i] {
			s += m.Bytes[i][j]
		}
	}
	return s
}

// Format renders the byte matrix with a density glyph per cell (".", "+",
// "#", scaled to the maximum cell) plus exact totals per rank — compact
// enough for dozens of ranks.
func (m *CommMatrix) Format() string {
	var max int64
	for i := range m.Bytes {
		for j := range m.Bytes[i] {
			if m.Bytes[i][j] > max {
				max = m.Bytes[i][j]
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "communication matrix (%d ranks, %d B total; rows send, cols receive)\n", m.Ranks, m.TotalBytes())
	b.WriteString("      ")
	for j := 0; j < m.Ranks; j++ {
		fmt.Fprintf(&b, "%d", j%10)
	}
	b.WriteString("   bytes-out\n")
	for i := 0; i < m.Ranks; i++ {
		fmt.Fprintf(&b, "P%-4d ", i)
		var rowSum int64
		for j := 0; j < m.Ranks; j++ {
			v := m.Bytes[i][j]
			rowSum += v
			switch {
			case v == 0:
				b.WriteByte(' ')
			case max > 0 && v*3 <= max:
				b.WriteByte('.')
			case max > 0 && v*3 <= 2*max:
				b.WriteByte('+')
			default:
				b.WriteByte('#')
			}
		}
		fmt.Fprintf(&b, "   %d\n", rowSum)
	}
	return b.String()
}

// Histogram is the distribution of one quantity over fixed bins.
type Histogram struct {
	Label  string
	Edges  []float64 // len(Counts)+1 ascending bin edges
	Counts []int
}

// WaitHistogram bins the per-wait durations of a result (each StateWaitRecv
// interval is one sample) into nbins equal-width bins.
func WaitHistogram(res *sim.Result, nbins int) *Histogram {
	var samples []float64
	for _, iv := range res.Intervals {
		if iv.State == sim.StateWaitRecv {
			samples = append(samples, iv.End-iv.Start)
		}
	}
	return histogramOf("wait durations (s)", samples, nbins)
}

// MessageSizeHistogram bins the transfer sizes of a result.
func MessageSizeHistogram(res *sim.Result, nbins int) *Histogram {
	samples := make([]float64, 0, len(res.Comms))
	for _, c := range res.Comms {
		samples = append(samples, float64(c.Bytes))
	}
	return histogramOf("message sizes (B)", samples, nbins)
}

func histogramOf(label string, samples []float64, nbins int) *Histogram {
	if nbins < 1 {
		nbins = 1
	}
	h := &Histogram{Label: label, Counts: make([]int, nbins), Edges: make([]float64, nbins+1)}
	if len(samples) == 0 {
		return h
	}
	lo, hi := samples[0], samples[0]
	for _, s := range samples[1:] {
		lo = math.Min(lo, s)
		hi = math.Max(hi, s)
	}
	if hi == lo {
		hi = lo + 1
	}
	for i := range h.Edges {
		h.Edges[i] = lo + (hi-lo)*float64(i)/float64(nbins)
	}
	for _, s := range samples {
		bin := int((s - lo) / (hi - lo) * float64(nbins))
		if bin >= nbins {
			bin = nbins - 1
		}
		h.Counts[bin]++
	}
	return h
}

// Format renders the histogram with proportional bars.
func (h *Histogram) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", h.Label)
	max := 0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		b.WriteString("  (no samples)\n")
		return b.String()
	}
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*40/max)
		fmt.Fprintf(&b, "  [%10.3e, %10.3e) %6d %s\n", h.Edges[i], h.Edges[i+1], c, bar)
	}
	return b.String()
}

// EfficiencySlices splits [0, FinishSec] into nslices windows and reports
// the parallel efficiency (fraction of rank-time computing) per window —
// the "where does the run lose time" view.
func EfficiencySlices(res *sim.Result, nslices int) []float64 {
	if nslices < 1 {
		nslices = 1
	}
	out := make([]float64, nslices)
	if res.FinishSec <= 0 || len(res.Ranks) == 0 {
		return out
	}
	width := res.FinishSec / float64(nslices)
	for _, iv := range res.Intervals {
		if iv.State != sim.StateCompute {
			continue
		}
		first := int(iv.Start / width)
		last := int(iv.End / width)
		for s := first; s <= last && s < nslices; s++ {
			winLo := float64(s) * width
			winHi := winLo + width
			lo := math.Max(iv.Start, winLo)
			hi := math.Min(iv.End, winHi)
			if hi > lo {
				out[s] += hi - lo
			}
		}
	}
	denom := width * float64(len(res.Ranks))
	for s := range out {
		out[s] /= denom
		if out[s] > 1 {
			out[s] = 1
		}
	}
	return out
}

// FormatEfficiency renders the slice efficiencies as a sparkline-style bar
// row plus the overall value.
func FormatEfficiency(slices []float64) string {
	glyphs := []byte(" .:-=+*#%@")
	var b strings.Builder
	b.WriteString("parallel efficiency per time slice: |")
	var sum float64
	for _, e := range slices {
		sum += e
		g := int(e * float64(len(glyphs)-1))
		if g < 0 {
			g = 0
		}
		if g >= len(glyphs) {
			g = len(glyphs) - 1
		}
		b.WriteByte(glyphs[g])
	}
	if len(slices) > 0 {
		fmt.Fprintf(&b, "|  overall %.1f%%\n", 100*sum/float64(len(slices)))
	} else {
		b.WriteString("|\n")
	}
	return b.String()
}

// TopTalkers returns the k directed rank pairs with the most traffic,
// descending.
func (m *CommMatrix) TopTalkers(k int) []PairTraffic {
	var all []PairTraffic
	for i := range m.Bytes {
		for j := range m.Bytes[i] {
			if m.Bytes[i][j] > 0 {
				all = append(all, PairTraffic{Src: i, Dst: j, Bytes: m.Bytes[i][j], Messages: m.Messages[i][j]})
			}
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Bytes != all[b].Bytes {
			return all[a].Bytes > all[b].Bytes
		}
		if all[a].Src != all[b].Src {
			return all[a].Src < all[b].Src
		}
		return all[a].Dst < all[b].Dst
	})
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	return all
}

// PairTraffic is the aggregate traffic of one directed rank pair.
type PairTraffic struct {
	Src, Dst int
	Bytes    int64
	Messages int
}

// TrafficClassSummary aggregates one replay's traffic by link class — the
// intra- vs inter-node annotation of the hierarchical platform model.
type TrafficClassSummary struct {
	IntraBytes, InterBytes int64
	IntraMsgs, InterMsgs   int
	// IntraLineSec and InterLineSec are the mean send→match line lengths
	// per class (0 when the class carried no traffic).
	IntraLineSec, InterLineSec float64
}

// TrafficSummaryOf classifies a result's transfers by locality.
func TrafficSummaryOf(res *sim.Result) TrafficClassSummary {
	var s TrafficClassSummary
	var intraLine, interLine float64
	for _, c := range res.Comms {
		line := c.MatchT - c.SendT
		if c.Intra {
			s.IntraBytes += c.Bytes
			s.IntraMsgs++
			intraLine += line
		} else {
			s.InterBytes += c.Bytes
			s.InterMsgs++
			interLine += line
		}
	}
	if s.IntraMsgs > 0 {
		s.IntraLineSec = intraLine / float64(s.IntraMsgs)
	}
	if s.InterMsgs > 0 {
		s.InterLineSec = interLine / float64(s.InterMsgs)
	}
	return s
}

// Format renders the class split as a small table.
func (s TrafficClassSummary) Format() string {
	var b strings.Builder
	total := s.IntraBytes + s.InterBytes
	pct := func(v int64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(v) / float64(total)
	}
	b.WriteString("traffic by link class (hierarchical platform)\n")
	fmt.Fprintf(&b, "%-12s %10s %14s %8s %14s\n", "class", "messages", "bytes", "share", "avg line (s)")
	fmt.Fprintf(&b, "%-12s %10d %14d %7.1f%% %14.6f\n", "intra-node", s.IntraMsgs, s.IntraBytes, pct(s.IntraBytes), s.IntraLineSec)
	fmt.Fprintf(&b, "%-12s %10d %14d %7.1f%% %14.6f\n", "inter-node", s.InterMsgs, s.InterBytes, pct(s.InterBytes), s.InterLineSec)
	return b.String()
}
