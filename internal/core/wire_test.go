package core

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/network"
	"repro/internal/tracer"
)

// reportFor builds a small report for wire tests. apps imports core, so
// the app registry can't be used here; a minimal two-rank kernel suffices.
func reportFor(t *testing.T) *Report {
	t.Helper()
	app := App{Name: "wiretest", Kernel: func(p *tracer.Proc) {
		a := p.NewArray("buf", 64)
		for i := 0; i < a.Len(); i++ {
			a.Store(i, float64(i))
		}
		p.Compute(1000)
		if p.Rank() == 0 {
			p.Send(1, 1, a)
		} else if p.Rank() == 1 {
			b := p.NewArray("in", 64)
			p.Recv(b, 0, 1)
			for i := 0; i < b.Len(); i++ {
				b.Load(i)
			}
		}
	}}
	rep, err := Analyze(app, 2, network.Testbed(2), tracer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestWireReportDeterministic(t *testing.T) {
	rep := reportFor(t)
	w1, err := rep.Wire()
	if err != nil {
		t.Fatal(err)
	}
	b1, err := json.Marshal(w1)
	if err != nil {
		t.Fatal(err)
	}
	// A second wire conversion of a freshly recomputed report marshals to
	// the same bytes — the property the service result cache relies on.
	w2, err := reportFor(t).Wire()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(w2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("wire bytes differ:\n%s\n%s", b1, b2)
	}
	if len(w1.Flavors) != 3 || w1.Flavors[0].Flavor != FlavorBase {
		t.Fatalf("flavors = %+v", w1.Flavors)
	}
	if w1.PlatformDigest == "" || w1.Flavors[1].TraceDigest == "" {
		t.Fatal("digests missing from wire report")
	}
}

// TestWireReportNaNSafe marshals an Alya-style report whose pattern
// statistics carry NaN (unchunkable single-element buffers, which the
// tracer never chunks): json.Marshal must produce nulls, not fail on NaN.
func TestWireReportNaNSafe(t *testing.T) {
	app := App{Name: "scalar", Kernel: func(p *tracer.Proc) {
		a := p.NewArray("x", 1)
		a.Store(0, 1)
		p.Compute(100)
		if p.Rank() == 0 {
			p.Send(1, 1, a)
		} else if p.Rank() == 1 {
			b := p.NewArray("y", 1)
			p.Recv(b, 0, 1)
			b.Load(0)
		}
	}}
	rep, err := Analyze(app, 2, network.Testbed(2), tracer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Patterns == nil || !math.IsNaN(rep.Patterns.AppProduction.Quarter) {
		t.Skip("kernel did not produce unchunkable statistics; NaN path not reachable")
	}
	w, err := rep.Wire()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(w)
	if err != nil {
		t.Fatalf("marshal with NaN stats: %v", err)
	}
	if !strings.Contains(string(b), `"quarter_pct":null`) {
		t.Fatalf("NaN did not become null: %s", b)
	}
	if w.Patterns.AppProduction.Chunkable {
		t.Fatal("chunkable flag lost")
	}
}
