package cluster

import (
	"encoding/json"
	"testing"
)

// FuzzDecodeRequest chews on the RPC envelope decoder — the bytes every
// node accepts from the network. Properties: no panics, a nil request
// on error and a valid one on success, and accept/encode/decode is a
// fixed point.
func FuzzDecodeRequest(f *testing.F) {
	seed := [][]byte{
		[]byte(`{"op":"ping","from":{"id":"00112233445566778899aabbccddeeff00112233","addr":"n1"}}`),
		[]byte(`{"op":"store","from":{"id":"00112233445566778899aabbccddeeff00112233","addr":"n1"},"key":"sha256:abc","kind":"point","value":"aGk="}`),
		[]byte(`{"op":"find_node","from":{"id":"00112233445566778899aabbccddeeff00112233","addr":"n1"},"key":"sha256:abc"}`),
		[]byte(`{"op":"find_value","key":"k","from":{"id":"00112233445566778899aabbccddeeff00112233","addr":"n1"}}`),
		[]byte(`{"op":"exec","kind":"scenario","value":"e30=","from":{"id":"00112233445566778899aabbccddeeff00112233","addr":"n1"}}`),
		[]byte(`{"op":"bogus"}`),
		[]byte(`{"op":"ping","extra":1}`),
		[]byte(`{"op":"ping"}{"op":"ping"}`),
		[]byte(`{}`),
		[]byte(``),
		[]byte(`null`),
		[]byte(`[1,2,3]`),
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			if req != nil {
				t.Fatal("error with non-nil request")
			}
			return
		}
		if req == nil {
			t.Fatal("nil request without error")
		}
		if !validOp(req.Op) {
			t.Fatalf("decoder passed invalid op %q", req.Op)
		}
		if err := req.Validate(); err != nil {
			t.Fatalf("decoded request fails validation: %v", err)
		}
		// Round trip: encode and decode again, must be identical.
		enc, err := req.Encode()
		if err != nil {
			t.Fatalf("encode accepted request: %v", err)
		}
		back, err := DecodeRequest(enc)
		if err != nil {
			t.Fatalf("re-decode encoded request: %v", err)
		}
		a, _ := json.Marshal(req)
		b, _ := json.Marshal(back)
		if string(a) != string(b) {
			t.Fatalf("round trip drifted: %s vs %s", a, b)
		}
	})
}

// FuzzDecodeResponse covers the response decoder the HTTP transport's
// client half trusts.
func FuzzDecodeResponse(f *testing.F) {
	seed := [][]byte{
		[]byte(`{"from":{"id":"00112233445566778899aabbccddeeff00112233","addr":"n1"}}`),
		[]byte(`{"from":{"id":"00112233445566778899aabbccddeeff00112233","addr":"n1"},"found":true,"value":"aGk=","kind":"point"}`),
		[]byte(`{"from":{"id":"00112233445566778899aabbccddeeff00112233","addr":"n1"},"contacts":[{"id":"ffeeddccbbaa99887766554433221100ffeeddcc","addr":"n2"}]}`),
		[]byte(`{"error":"draining","draining":true,"from":{"id":"00112233445566778899aabbccddeeff00112233","addr":"n1"}}`),
		[]byte(`{"unknown":true}`),
		[]byte(``),
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeResponse(data)
		if err != nil {
			if resp != nil {
				t.Fatal("error with non-nil response")
			}
			return
		}
		if resp == nil {
			t.Fatal("nil response without error")
		}
		if len(resp.Contacts) > MaxContacts {
			t.Fatalf("decoder passed %d contacts", len(resp.Contacts))
		}
	})
}
