package sim

// Calendar event queue: the replay's priority queue, replacing the 4-ary
// heap of the first compiled-replay engine. Events hash into time buckets
// of a fixed width; each bucket stays sorted (descending by eventBefore),
// so a pop inspects only the tail of the cursor's bucket instead of
// sifting a heap. In the common regime — O(1) bucket occupancy — push and
// pop are constant-time, and even the degenerate lockstep case (dozens of
// same-time events in one bucket) costs one binary search plus a short
// memmove per push instead of a full min-scan per pop.
//
// The queue is EXACT: pops follow the static eventBefore order bit-for-bit
// no matter how the buckets are sized. Each event records its placement
// year at push time — year = int(t/width), clamped up to the cursor (PDES
// shards legally receive events "from the past", see pdes.go; they land in
// the cursor's own year and are seen by the very next scan). Three
// invariants follow:
//
//  1. Placement and qualification agree by construction: a scan at cursor
//     c considers exactly the events whose recorded year is <= c, so float
//     rounding can never disagree about a bucket boundary.
//
//  2. Resident events always have year >= cursor, and the cursor only
//     advances past a year once no event of that year remains. Push keeps
//     it true (clamp), pops preserve it.
//
//  3. Years never invert the event order: for resident events a and b
//     with eventBefore(a, b), year(a) <= year(b). (If year(a) > year(b),
//     a was clamped to a cursor beyond b's year while b was resident —
//     contradicting invariant 2.) Hence popping by increasing year, and
//     by eventBefore within a year, is the global eventBefore order — and
//     a bucket's eventBefore-minimum (its sorted tail) is also its
//     minimum year, so qualification checks the tail alone.
//
// When the cursor's year is empty the scan walks forward; if a full cycle
// over the buckets finds nothing (the replay jumped a time gap larger
// than the calendar), the scan jumps the cursor straight to the smallest
// resident year — tracked during that same walk, so a gap costs one
// bucket cycle, not a rebuild. Rebuilds (redistribute + re-derive the
// width from the observed event-time span) happen only when the
// population outgrows the bucket array.
//
// Buckets and their capacities persist across replays (reset only
// truncates), so a warm arena's replay stays allocation-free.

const (
	cqMinWidth   = 1e-12   // keeps year = t/width far below int64 overflow for sane times
	cqMaxBuckets = 1 << 14 // growth cap; beyond this occupancy grows linearly
	cqGrowFactor = 4       // rebuild with 2x buckets when n exceeds cqGrowFactor*buckets
	cqFarFuture  = 1 << 62 // year for times beyond integer range (defensive)
)

type eventQueue struct {
	buckets [][]event // each sorted descending by eventBefore; min at the tail
	mask    int       // len(buckets)-1; bucket count is a power of two
	inv     float64   // 1/width
	width   float64
	cur     int64 // absolute (unwrapped) year of the scan cursor
	n       int
	scratch []event // rebuild staging, reused

	// Flight-recorder counters, single-owner like the queue itself:
	// zeroed by reset, harvested per replay (see stats.go).
	popped   int64 // events removed via pop/popBefore
	jumps    int64 // cursor gap jumps (full cycle without a hit)
	rebuilds int64 // redistributions
}

// reset empties the queue, keeping every bucket's capacity. Width and
// bucket count persist too: consecutive replays of the same program see
// the same event-time distribution, so the steady state rebuilds nothing.
func (q *eventQueue) reset() {
	if q.buckets == nil {
		q.buckets = make([][]event, 1)
		q.mask = 0
		q.width = 1
		q.inv = 1
	}
	for i := range q.buckets {
		q.buckets[i] = q.buckets[i][:0]
	}
	q.cur = 0
	q.n = 0
	q.popped = 0
	q.jumps = 0
	q.rebuilds = 0
}

func (q *eventQueue) len() int { return q.n }

// yearOf maps a time to its virtual year, before cursor clamping.
// Monotone in t.
func (q *eventQueue) yearOf(t float64) int64 {
	f := t * q.inv
	if f >= cqFarFuture {
		return cqFarFuture
	}
	return int64(f)
}

// insertSorted places e into a descending-sorted bucket: binary search for
// the first resident ordering before e, shift, insert. eventBefore is a
// total order over live events, so no equal-keys tie exists to break.
func insertSorted(b []event, e event) []event {
	lo, hi := 0, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if eventBefore(&b[mid], &e) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	b = append(b, event{})
	copy(b[lo+1:], b[lo:])
	b[lo] = e
	return b
}

// push enqueues an event, recording its placement year.
func (q *eventQueue) push(e event) {
	y := q.yearOf(e.t)
	if y < q.cur {
		y = q.cur
	}
	e.year = y
	slot := int(y) & q.mask
	q.buckets[slot] = insertSorted(q.buckets[slot], e)
	q.n++
	if q.n > cqGrowFactor*len(q.buckets) && len(q.buckets) < cqMaxBuckets {
		q.rebuild(len(q.buckets) * 2)
	}
}

// scan advances the cursor to the first year holding an event and returns
// its bucket slot; the slot's tail is the global eventBefore-minimum. The
// queue must be non-empty.
func (q *eventQueue) scan() int {
	for {
		minYear := int64(cqFarFuture + 1)
		for cycle := 0; cycle <= q.mask; cycle++ {
			s := int(q.cur) & q.mask
			if b := q.buckets[s]; len(b) > 0 {
				// The tail is the bucket's minimum event and (invariant 3)
				// its minimum year.
				if y := b[len(b)-1].year; y <= q.cur {
					return s
				} else if y < minYear {
					minYear = y
				}
			}
			q.cur++
		}
		// Full cycle without a hit: the population lies beyond a time gap
		// wider than the calendar. Jump straight to its first year —
		// tracked during the cycle above — and rescan (guaranteed hit).
		q.cur = minYear
		q.jumps++
	}
}

// pop removes and returns the eventBefore-minimum event. The queue must
// be non-empty.
func (q *eventQueue) pop() event {
	slot := q.scan()
	b := q.buckets[slot]
	last := len(b) - 1
	e := b[last]
	q.buckets[slot] = b[:last]
	q.n--
	q.popped++
	return e
}

// popBefore pops the minimum event only if it orders strictly before
// bound (or unconditionally when hasBound is false). Used by PDES shards
// to drain a conservative window without a separate peek.
func (q *eventQueue) popBefore(bound *event, hasBound bool) (event, bool) {
	if q.n == 0 {
		return event{}, false
	}
	slot := q.scan()
	b := q.buckets[slot]
	last := len(b) - 1
	if hasBound && !eventBefore(&b[last], bound) {
		return event{}, false
	}
	e := b[last]
	q.buckets[slot] = b[:last]
	q.n--
	q.popped++
	return e, true
}

// peek returns the eventBefore-minimum event without removing it, and
// false on an empty queue.
func (q *eventQueue) peek() (event, bool) {
	if q.n == 0 {
		return event{}, false
	}
	b := q.buckets[q.scan()]
	return b[len(b)-1], true
}

// rebuild redistributes every event over nb buckets (a power of two),
// recomputing the width from the observed event-time span and resetting
// the cursor to the population's first year.
func (q *eventQueue) rebuild(nb int) {
	q.rebuilds++
	if cap(q.scratch) < q.n {
		q.scratch = make([]event, 0, q.n+q.n/2)
	}
	q.scratch = q.scratch[:0]
	minT, maxT := 0.0, 0.0
	first := true
	for i := range q.buckets {
		for _, e := range q.buckets[i] {
			if first {
				minT, maxT = e.t, e.t
				first = false
			} else {
				if e.t < minT {
					minT = e.t
				}
				if e.t > maxT {
					maxT = e.t
				}
			}
			q.scratch = append(q.scratch, e)
		}
		q.buckets[i] = q.buckets[i][:0]
	}
	if nb > len(q.buckets) {
		grown := make([][]event, nb)
		copy(grown, q.buckets)
		q.buckets = grown
	}
	q.mask = nb - 1
	// Width targets O(1) occupancy: the span spread over ~n buckets. A
	// degenerate span (all events at one instant) keeps the old width.
	if span := maxT - minT; span > 0 && q.n > 0 {
		w := span / float64(q.n)
		if w < cqMinWidth {
			w = cqMinWidth
		}
		q.width = w
		q.inv = 1 / w
	}
	q.cur = 0
	if q.n > 0 {
		q.cur = q.yearOf(minT)
	}
	for _, e := range q.scratch {
		y := q.yearOf(e.t)
		if y < q.cur {
			y = q.cur
		}
		e.year = y
		slot := int(y) & q.mask
		q.buckets[slot] = insertSorted(q.buckets[slot], e)
	}
}
