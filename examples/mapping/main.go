// Mapping study: does rank placement matter? NAS-CG exchanges vectors
// between partner ranks (0,1), (2,3), ... — block placement keeps every
// partner pair inside one 4-way node (shared memory), while round-robin
// placement tears every pair across the interconnect.
//
// Run with:
//
//	go run ./examples/mapping
//
// Expected shape of the output (exact times vary only with the model
// parameters, not the machine):
//
//	platform: 16 ranks on 4 nodes (map block), intra 6000 MB/s 0.50 us ...
//
//	mapping            base (s)    overlap (s)    speedup    intra bytes    inter bytes
//	block              0.002297       0.002279      1.008         614400              0
//	rr                 0.002759       0.002295      1.202              0         614400
//
// Block placement: all traffic stays on the fast intra-node links, the
// exchange is nearly free, and overlapping buys little (~1%). Round-robin:
// every byte crosses the 250 MB/s Myrinet, the exchange is expensive — and
// automatic overlap wins back most of the loss (~20%). Placement and
// overlap are complementary levers on the same communication cost.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/tracer"
)

func main() {
	const ranks = 16

	entry, _ := apps.ByName("cg", ranks)

	// The paper's testbed re-clustered into 4-way nodes: shared memory
	// inside a blade, the Myrinet-like network across blades.
	platform, err := network.PlatformPreset("marenostrum-4x", ranks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform: %s\n\n", platform.Describe())

	// Replay the same traced execution under both placements. The app is
	// traced once; the per-mapping replays fan out across the engine.
	points, err := core.MappingSweep(entry.App, ranks, platform, tracer.DefaultConfig(),
		[]network.Mapping{network.BlockMapping(), network.RoundRobinMapping()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(core.FormatMappingPoints(points))

	block, rr := points[0], points[1]
	fmt.Printf("\nblock placement keeps %d bytes on shared memory; round-robin pushes %d bytes onto the interconnect.\n",
		block.IntraBytes, rr.InterBytes)
	if rr.BaseFinishSec > block.BaseFinishSec {
		fmt.Printf("bad placement costs %.1f%% elapsed time — and overlap recovers %.1f%% of it.\n",
			100*(rr.BaseFinishSec-block.BaseFinishSec)/block.BaseFinishSec,
			100*(rr.BaseFinishSec-rr.RealFinishSec)/(rr.BaseFinishSec-block.BaseFinishSec))
	}
}
