package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/apps/cg"
	"repro/internal/engine"
	"repro/internal/network"
	"repro/internal/tracer"
)

func cgApp() App {
	return App{Name: "cg", Kernel: cg.Kernel(cg.DefaultConfig())}
}

// TestMappingSweepBlockVsRoundRobinDiffers is the PR's acceptance
// criterion: on a multi-node preset, placement must matter — block and
// round-robin mappings yield measurably different elapsed times for a
// bundled application.
func TestMappingSweepBlockVsRoundRobinDiffers(t *testing.T) {
	const ranks = 8
	plat, err := network.PlatformPreset("marenostrum-4x", ranks)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := MappingSweep(cgApp(), ranks, plat, tracer.DefaultConfig(),
		[]network.Mapping{network.BlockMapping(), network.RoundRobinMapping()})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	block, rr := pts[0], pts[1]
	if block.BaseFinishSec == rr.BaseFinishSec {
		t.Fatalf("block and round-robin placements identical (%g s) — hierarchy has no effect", block.BaseFinishSec)
	}
	if block.IntraBytes+block.InterBytes != rr.IntraBytes+rr.InterBytes {
		t.Fatalf("total traffic differs across placements: %d+%d vs %d+%d",
			block.IntraBytes, block.InterBytes, rr.IntraBytes, rr.InterBytes)
	}
	if block.IntraBytes == rr.IntraBytes {
		t.Fatalf("placements split traffic identically (%d intra bytes) — mapping not applied", block.IntraBytes)
	}
	t.Logf("block: %s", FormatMappingPoints(pts[:1]))
	t.Logf("rr:    %s", FormatMappingPoints(pts[1:]))
}

// TestAnalyzeOnFlatMatchesAnalyze: the platform-aware analysis of a
// degenerate platform must agree with the flat path (same traces, same
// results — the pipelines share every stage).
func TestAnalyzeOnFlatMatchesAnalyze(t *testing.T) {
	const ranks = 4
	cfg := network.TestbedFor("cg", ranks)
	app := cgApp()
	flat, err := Analyze(app, ranks, cfg, tracer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	hier, err := AnalyzeOn(context.Background(), nil, app, ranks, cfg.Platform(), tracer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if flat.Base.FinishSec != hier.Base.FinishSec ||
		flat.Real.FinishSec != hier.Real.FinishSec ||
		flat.Ideal.FinishSec != hier.Ideal.FinishSec {
		t.Fatalf("degenerate platform diverged: flat (%g, %g, %g) vs platform (%g, %g, %g)",
			flat.Base.FinishSec, flat.Real.FinishSec, flat.Ideal.FinishSec,
			hier.Base.FinishSec, hier.Real.FinishSec, hier.Ideal.FinishSec)
	}
	if !reflect.DeepEqual(flat.Base, hier.Base) {
		t.Fatal("base results not byte-identical between flat and degenerate-platform analysis")
	}
	if flat.Network != hier.Network {
		t.Fatalf("legacy Network view diverged: %+v vs %+v", flat.Network, hier.Network)
	}
}

// TestNodeCountSweep packs 8 CG ranks onto 1, 2, 4, and 8 nodes: fewer
// nodes keep more traffic on the fast intra links, so the base finish must
// be non-increasing as the node count drops, and the traffic split must
// move monotonically toward the interconnect as nodes are added.
func TestNodeCountSweep(t *testing.T) {
	const ranks = 8
	plat, err := network.PlatformPreset("marenostrum-4x", ranks)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := NodeCountSweepWith(context.Background(), engine.New(2), cgApp(), ranks, plat,
		tracer.DefaultConfig(), []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].IntraBytes > pts[i-1].IntraBytes {
			t.Errorf("intra traffic grew from %d to %d when adding nodes (%d -> %d)",
				pts[i-1].IntraBytes, pts[i].IntraBytes, pts[i-1].Nodes, pts[i].Nodes)
		}
	}
	if pts[0].InterBytes != 0 {
		t.Errorf("single-node cluster still sent %d bytes over the interconnect", pts[0].InterBytes)
	}
	if last := pts[len(pts)-1]; last.IntraBytes != 0 {
		t.Errorf("one-rank-per-node cluster kept %d bytes intra-node", last.IntraBytes)
	}
	if pts[0].BaseFinishSec >= pts[3].BaseFinishSec {
		t.Errorf("single fat node (%g s) not faster than fully distributed (%g s) with fast intra links",
			pts[0].BaseFinishSec, pts[3].BaseFinishSec)
	}
	t.Logf("\n%s", FormatNodeCountPoints(pts))
}

// TestMappingSweepDeterministicAcrossEngines: the parallel sweep must be
// byte-identical regardless of worker count, like every other engine path.
func TestMappingSweepDeterministicAcrossEngines(t *testing.T) {
	const ranks = 8
	plat, err := network.PlatformPreset("fatnode-smp", ranks)
	if err != nil {
		t.Fatal(err)
	}
	plat = plat.WithNodes(2)
	mappings := []network.Mapping{
		network.BlockMapping(),
		network.RoundRobinMapping(),
		network.ExplicitMapping([]int{0, 1, 0, 1, 1, 0, 1, 0}),
	}
	ctx := context.Background()
	app := cgApp()
	serial, err := MappingSweepWith(ctx, engine.New(1), app, ranks, plat, tracer.DefaultConfig(), mappings)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := MappingSweepWith(ctx, engine.New(4), app, ranks, plat, tracer.DefaultConfig(), mappings)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("mapping sweep nondeterministic:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

func TestNodeCountSweepRejectsBadCounts(t *testing.T) {
	plat := network.Testbed(4).Platform()
	if _, err := NodeCountSweep(cgApp(), 4, plat, tracer.DefaultConfig(), []int{2, 0}); err == nil {
		t.Fatal("zero node count accepted")
	}
}
