//go:build !race

// The race detector instruments allocations, so the zero-alloc pins only
// run in regular test builds; -race runs still execute the equivalence
// suite in program_test.go.

package sim

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/network"
	"repro/internal/trace"
)

// pinReplayAllocs replays prog on a warm arena and fails if the replay
// allocates more than maxPerReplay — the regression guard for the
// zero-alloc property. The bound is a handful of allocations per *replay*
// (not per record): runtime-internal bookkeeping can show up sporadically,
// but per-record allocation (the old engine's closures and map inserts
// cost ~5 allocs/record) trips it immediately.
func pinReplayAllocs(t *testing.T, plat network.Platform, tr *trace.Trace, maxPerReplay float64) {
	t.Helper()
	prog, err := Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	arena := NewArena()
	for i := 0; i < 3; i++ { // warm every buffer past its high-water mark
		if _, err := arena.RunProgram(plat, prog); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := arena.RunProgram(plat, prog); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > maxPerReplay {
		t.Fatalf("warm arena replay allocates %.1f times per replay (%d records), want <= %g",
			allocs, prog.Records(), maxPerReplay)
	}
}

func TestReplayAllocsFlat(t *testing.T) {
	pinReplayAllocs(t, network.Testbed(16).Platform(), allocRing(16, 25), 2)
}

func TestReplayAllocsHandleReuse(t *testing.T) {
	pinReplayAllocs(t, network.Testbed(16).Platform(), allocHandleReuse(16, 25), 2)
}

func TestReplayAllocsHierarchical(t *testing.T) {
	plat, err := network.PlatformPreset("fatnode-smp", 16)
	if err != nil {
		t.Fatal(err)
	}
	pinReplayAllocs(t, plat, allocRing(16, 25), 2)
	pinReplayAllocs(t, plat.WithMapping(network.RoundRobinMapping()), allocRing(16, 25), 2)
}

// TestReplayAllocsFaulted pins the degraded path: soft faults (derate,
// jitter, seeded stragglers) must not cost the warm replay its
// zero-allocation property. All seeded draws resolve into arena-owned
// buffers at reset time; the replay itself reads immutable fault state.
func TestReplayAllocsFaulted(t *testing.T) {
	plat := pdesPlatform(16, 4).WithDegradations(faults.Spec{
		DerateInter:     0.6,
		DerateIntra:     0.8,
		JitterFrac:      0.25,
		Stragglers:      2,
		StragglerFactor: 3,
		Seed:            11,
	})
	pinReplayAllocs(t, plat, allocRing(16, 25), 2)
}

// TestReplayAllocsHardFaulted pins the list-valued hard-fault path.
// Canonicalizing explicit DownNodes/DownLinks lists copies them once
// per replay — a small per-replay constant, never per-record. The
// downed link joins two nodes the block-mapped ring never connects, so
// the linkFaulted check runs on every inter-node transfer without
// severing the run.
func TestReplayAllocsHardFaulted(t *testing.T) {
	plat := pdesPlatform(16, 4).WithDegradations(faults.Spec{
		DerateInter: 0.6,
		DownLinks:   [][2]int{{0, 2}},
		Seed:        11,
	})
	pinReplayAllocs(t, plat, allocRing(16, 25), 6)
}

// TestPooledReplayAllocs pins the sweep primitive: after warm-up,
// ReplayFinish on a pooled arena must not allocate per point.
func TestPooledReplayAllocs(t *testing.T) {
	tr := allocRing(8, 20)
	prog, err := Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	plat := network.Testbed(8).Platform()
	for i := 0; i < 3; i++ {
		if _, err := ReplayFinish(plat, prog); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := ReplayFinish(plat, prog); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("pooled replay allocates %.1f times per point, want <= 2", allocs)
	}
}

// TestReplayIntoAllocs pins the arena-aware copy-out: replaying into a
// reused Result must not allocate once the destination has grown to the
// program's high-water mark.
func TestReplayIntoAllocs(t *testing.T) {
	tr := allocRing(8, 20)
	prog, err := Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	plat := network.Testbed(8).Platform()
	var dst Result
	for i := 0; i < 3; i++ {
		if _, err := ReplayInto(plat, prog, 1, &dst); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := ReplayInto(plat, prog, 1, &dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("copy-out replay allocates %.1f times per point, want <= 2", allocs)
	}
}
