// Package engine is the concurrent experiment engine of the framework: it
// runs independent experiment jobs — trace replays, sweep points, what-if
// variants, whole-app analyses — across a bounded goroutine worker pool.
//
// The trace-replay methodology of the paper is embarrassingly parallel:
// an application is traced once and the resulting event log is replayed
// many times under varied parameters (chunk counts, bandwidths, idealized
// buffers, platform configurations). Every replay is a pure function of
// (platform config, trace), so the engine fans replays out across workers
// while guaranteeing:
//
//   - bounded concurrency: at most Workers jobs run at once, regardless of
//     how many jobs are submitted or how submissions nest;
//   - deterministic result ordering: Map returns results indexed exactly
//     like its inputs, so parallel sweeps are byte-identical to serial ones;
//   - per-job error aggregation: every failing job is reported with its
//     index (Errors), not just the first failure;
//   - context-based cancellation: unstarted jobs inherit ctx.Err() and the
//     submitting loop stops promptly.
//
// Deadlock-freedom comes from the caller-runs discipline: a submitter
// never blocks waiting for a pool slot. It opportunistically hands jobs to
// free workers and otherwise runs them inline on its own goroutine. A job
// may therefore call Map on the same engine — directly or through any of
// the context-free convenience wrappers in package core — without risking
// a pool whose every worker waits on sub-jobs. The cost is that each
// concurrently-submitting goroutine may execute at most one job itself, so
// total parallelism is bounded by Workers plus the number of concurrent
// Map callers (each of which would otherwise sit idle).
package engine

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
)

// Engine is a bounded worker pool plus a shared trace cache. The zero
// value is not usable; create one with New. An Engine is safe for
// concurrent use and may be shared by any number of experiments.
type Engine struct {
	workers int
	sem     chan struct{}
	traces  *TraceCache

	started   atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	observer  atomic.Pointer[JobObserver]
}

// New returns an engine running at most workers jobs concurrently.
// workers <= 0 selects GOMAXPROCS, the number of usable CPUs.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		workers: workers,
		sem:     make(chan struct{}, workers),
		traces:  NewTraceCache(),
	}
}

// Workers returns the concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// Traces returns the engine's shared trace cache: trace an application
// once, fan its replays out across the pool.
func (e *Engine) Traces() *TraceCache { return e.traces }

// Stats is a snapshot of the engine's job lifecycle counters over its
// whole lifetime. Completed counts every finished job, including failed
// ones; Started - Completed is the number of jobs currently executing.
type Stats struct {
	Started   uint64 `json:"started"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
}

// Stats returns the engine's lifetime job counters. Callers such as the
// service layer diff two snapshots to prove that a cached result spawned
// no new engine work.
func (e *Engine) Stats() Stats {
	// Read completion counters before Started so a concurrent job can
	// never make the snapshot claim more completions than starts.
	failed := e.failed.Load()
	completed := e.completed.Load()
	return Stats{
		Started:   e.started.Load(),
		Completed: completed,
		Failed:    failed,
	}
}

// JobEvent is one job lifecycle notification: Done=false when the job
// starts executing, Done=true (with its error, if any) when it finishes.
type JobEvent struct {
	Index int
	Done  bool
	Err   error
}

// JobObserver receives job lifecycle events. Observers run inline on the
// executing goroutine and must be fast and safe for concurrent calls.
type JobObserver func(JobEvent)

// SetObserver installs fn as the engine's job lifecycle hook (nil removes
// it). At most one observer is active; later calls replace earlier ones.
func (e *Engine) SetObserver(fn JobObserver) {
	if fn == nil {
		e.observer.Store(nil)
		return
	}
	e.observer.Store(&fn)
}

// noteStart records (and publishes) the start of one job.
func (e *Engine) noteStart(i int) {
	e.started.Add(1)
	if obs := e.observer.Load(); obs != nil {
		(*obs)(JobEvent{Index: i})
	}
}

// noteDone records (and publishes) the completion of one job.
func (e *Engine) noteDone(i int, err error) {
	if err != nil {
		e.failed.Add(1)
	}
	e.completed.Add(1)
	if obs := e.observer.Load(); obs != nil {
		(*obs)(JobEvent{Index: i, Done: true, Err: err})
	}
}

var (
	defaultOnce   sync.Once
	defaultEngine *Engine
)

// Default returns the process-wide engine, created on first use with
// GOMAXPROCS workers. Library entry points that take an optional *Engine
// fall back to it when handed nil.
func Default() *Engine {
	defaultOnce.Do(func() { defaultEngine = New(0) })
	return defaultEngine
}

// JobError is the failure of one job, tagged with its submission index.
type JobError struct {
	Index int
	Err   error
}

func (e *JobError) Error() string { return fmt.Sprintf("job %d: %v", e.Index, e.Err) }

// Unwrap exposes the job's underlying error to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// Errors aggregates every failed job of one Map call, ordered by job
// index. Map returns it (as error) when at least one job failed.
type Errors []*JobError

func (e Errors) Error() string {
	if len(e) == 1 {
		return "engine: " + e[0].Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "engine: %d jobs failed: ", len(e))
	for i, je := range e {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(je.Error())
	}
	return b.String()
}

// Unwrap exposes the individual job errors to errors.Is/As.
func (e Errors) Unwrap() []error {
	out := make([]error, len(e))
	for i, je := range e {
		out[i] = je
	}
	return out
}

// Map runs n jobs across the pool and returns their results in submission
// order: out[i] is job i's result. All jobs run to completion (or
// cancellation) before Map returns; failures are aggregated into an Errors
// value carrying each failed job's index, with out[i] left at the zero
// value for failed jobs. When ctx is cancelled, running jobs are expected
// to honour ctx themselves; jobs not yet started fail with ctx.Err().
// A nil engine uses Default(). A panicking job is reported as that job's
// error instead of crashing the pool.
//
// Submission follows the caller-runs discipline (see the package comment):
// a job goes to a pool worker when a slot is free and otherwise runs
// inline on the submitting goroutine, so Map never deadlocks however it
// nests.
func Map[T any](ctx context.Context, e *Engine, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if e == nil {
		e = Default()
	}
	out := make([]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			cancelFrom(errs, i, ctx)
			break
		}
		select {
		case e.sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-e.sem }()
				out[i], errs[i] = runJob(e, ctx, i, fn)
			}(i)
		default:
			// Pool saturated: the submitter works instead of waiting.
			out[i], errs[i] = runJob(e, ctx, i, fn)
		}
	}
	wg.Wait()
	return out, aggregate(errs)
}

// ForEach is Map for jobs that produce no result.
func ForEach(ctx context.Context, e *Engine, n int, fn func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, e, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}

func runJob[T any](e *Engine, ctx context.Context, i int, fn func(ctx context.Context, i int) (T, error)) (out T, err error) {
	e.noteStart(i)
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: job %d panicked: %v", i, r)
		}
		e.noteDone(i, err)
	}()
	return fn(ctx, i)
}

// cancelFrom marks jobs [i, n) as failed with the context's error.
func cancelFrom(errs []error, i int, ctx context.Context) {
	err := context.Cause(ctx)
	if err == nil {
		err = ctx.Err()
	}
	for j := i; j < len(errs); j++ {
		errs[j] = err
	}
}

func aggregate(errs []error) error {
	var agg Errors
	for i, err := range errs {
		if err != nil {
			agg = append(agg, &JobError{Index: i, Err: err})
		}
	}
	if len(agg) == 0 {
		return nil
	}
	return agg
}
