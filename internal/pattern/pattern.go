// Package pattern analyzes the production/consumption memory-access
// patterns recorded by the tracer, reproducing Section V.A of the paper:
// the scatter plots of Figure 5 and the statistics of Table II.
//
// Definitions follow the paper: one *production interval* of a buffer is
// the time between two consecutive sends of that buffer; during it every
// store to the buffer is recorded with its relative time. One *consumption
// interval* is the period between two consecutive receives of the same
// buffer; during it every load is recorded. Tracked collective markers
// (EvCollSend/EvCollRecv) delimit intervals the same way, which is how the
// Alya reduction buffers are measured.
package pattern

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/tracer"
)

// Side selects production (stores before sends) or consumption (loads
// after receives).
type Side uint8

// Sides of the analysis.
const (
	Production Side = iota
	Consumption
)

// String names the side.
func (s Side) String() string {
	if s == Production {
		return "production"
	}
	return "consumption"
}

// ProductionStats is one row of Table II(a): the percent of the production
// interval needed to produce the first element, the first quarter, the
// first half, and the whole message (final versions, averaged over
// intervals).
type ProductionStats struct {
	FirstElem float64
	Quarter   float64
	Half      float64
	Whole     float64
	// Intervals is how many (rank, buffer, interval) instances were
	// averaged.
	Intervals int
	// Chunkable is false when every measured buffer has a single
	// element, so no partial message exists (the Alya case); then only
	// FirstElem is meaningful and the others are NaN.
	Chunkable bool
}

// ConsumptionStats is one row of Table II(b): the percent of the
// consumption phase that can be passed upon reception of nothing, of the
// first quarter, and of the first half of the message.
type ConsumptionStats struct {
	Nothing   float64
	Quarter   float64
	Half      float64
	Intervals int
	Chunkable bool
}

// Analysis aggregates the pattern statistics of one traced run.
type Analysis struct {
	// App is the run name.
	App string
	// Production/Consumption hold per-buffer statistics keyed by the
	// array name given at NewArray, aggregated across ranks.
	Production  map[string]*ProductionStats
	Consumption map[string]*ConsumptionStats
	// AppProduction/AppConsumption aggregate over all tracked buffers,
	// the numbers Table II reports per application.
	AppProduction  ProductionStats
	AppConsumption ConsumptionStats
}

type accessRec struct {
	t   int64
	idx int
}

type bufferTrack struct {
	name      string
	n         int
	sendMarks []int64
	recvMarks []int64
	stores    []accessRec
	loads     []accessRec
}

// collectTracks extracts per-(rank, array) communication marks and access
// lists from the run's logs.
func collectTracks(run *tracer.Run) [][]*bufferTrack {
	out := make([][]*bufferTrack, run.NumRanks)
	for rank, log := range run.Logs {
		tracks := make([]*bufferTrack, len(log.ArrayLens))
		for id := range tracks {
			tracks[id] = &bufferTrack{name: log.ArrayNames[id], n: log.ArrayLens[id]}
		}
		for _, e := range log.Events {
			switch e.Kind {
			case tracer.EvSend, tracer.EvISend, tracer.EvCollSend:
				tracks[e.Arr].sendMarks = append(tracks[e.Arr].sendMarks, e.T)
			case tracer.EvRecv, tracer.EvRecvWait, tracer.EvCollRecv:
				// For non-blocking receives the data becomes available
				// at the completion wait, so that is the interval mark.
				tracks[e.Arr].recvMarks = append(tracks[e.Arr].recvMarks, e.T)
			case tracer.EvStore:
				tracks[e.Arr].stores = append(tracks[e.Arr].stores, accessRec{t: e.T, idx: e.Idx})
			case tracer.EvLoad:
				tracks[e.Arr].loads = append(tracks[e.Arr].loads, accessRec{t: e.T, idx: e.Idx})
			}
		}
		out[rank] = tracks
	}
	return out
}

// orderStat returns the k-th smallest value (k is 1-based) of a sorted
// slice.
func orderStat(sorted []float64, k int) float64 {
	if k < 1 {
		k = 1
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[k-1]
}

// productionIntervalStats computes the per-interval order statistics of
// final-version store times. Returns ok=false when the interval has no
// stores (nothing was produced: the interval carries no information).
func productionIntervalStats(tk *bufferTrack, stores []accessRec, start, end int64) (first, quarter, half, whole float64, ok bool) {
	if len(stores) == 0 || end <= start {
		return 0, 0, 0, 0, false
	}
	final := make([]int64, tk.n)
	touched := make([]bool, tk.n)
	for _, a := range stores {
		if a.idx >= 0 && a.idx < tk.n {
			if !touched[a.idx] || a.t > final[a.idx] {
				final[a.idx] = a.t
				touched[a.idx] = true
			}
		}
	}
	l := float64(end - start)
	rel := make([]float64, 0, tk.n)
	for i := 0; i < tk.n; i++ {
		if touched[i] {
			rel = append(rel, 100*float64(final[i]-start)/l)
		} else {
			// Untouched elements were ready when the interval began.
			rel = append(rel, 0)
		}
	}
	sort.Float64s(rel)
	n := len(rel)
	first = rel[0]
	quarter = orderStat(rel, (n+3)/4)
	half = orderStat(rel, (n+1)/2)
	whole = rel[n-1]
	return first, quarter, half, whole, true
}

// consumptionIntervalStats computes how far into the interval execution
// can progress given prefixes of the message. Returns ok=false when the
// interval has no loads at all (the buffer was not consumed).
func consumptionIntervalStats(tk *bufferTrack, loads []accessRec, start, end int64) (nothing, quarter, half float64, ok bool) {
	if len(loads) == 0 || end <= start {
		return 0, 0, 0, false
	}
	l := float64(end - start)
	qIdx := (tk.n + 3) / 4 // first element index beyond the first quarter
	hIdx := (tk.n + 1) / 2
	firstAny := int64(math.MaxInt64)
	firstBeyondQ := int64(math.MaxInt64)
	firstBeyondH := int64(math.MaxInt64)
	for _, a := range loads {
		if a.t < firstAny {
			firstAny = a.t
		}
		if a.idx >= qIdx && a.t < firstBeyondQ {
			firstBeyondQ = a.t
		}
		if a.idx >= hIdx && a.t < firstBeyondH {
			firstBeyondH = a.t
		}
	}
	toPct := func(t int64) float64 {
		if t == math.MaxInt64 {
			return 100 // never needed: the whole phase is passable
		}
		return 100 * float64(t-start) / l
	}
	return toPct(firstAny), toPct(firstBeyondQ), toPct(firstBeyondH), true
}

// accum averages interval statistics.
type accum struct {
	first, quarter, half, whole float64
	n                           int
	anyMulti                    bool // any buffer with >1 element
}

func (a *accum) addProd(f, q, h, w float64, multi bool) {
	a.first += f
	a.quarter += q
	a.half += h
	a.whole += w
	a.n++
	a.anyMulti = a.anyMulti || multi
}

func (a *accum) prodStats() ProductionStats {
	if a.n == 0 {
		return ProductionStats{Chunkable: false, FirstElem: math.NaN(), Quarter: math.NaN(), Half: math.NaN(), Whole: math.NaN()}
	}
	s := ProductionStats{
		FirstElem: a.first / float64(a.n),
		Quarter:   a.quarter / float64(a.n),
		Half:      a.half / float64(a.n),
		Whole:     a.whole / float64(a.n),
		Intervals: a.n,
		Chunkable: a.anyMulti,
	}
	if !s.Chunkable {
		s.Quarter, s.Half, s.Whole = math.NaN(), math.NaN(), math.NaN()
	}
	return s
}

func (a *accum) consStats() ConsumptionStats {
	if a.n == 0 {
		return ConsumptionStats{Nothing: math.NaN(), Quarter: math.NaN(), Half: math.NaN()}
	}
	s := ConsumptionStats{
		Nothing:   a.first / float64(a.n),
		Quarter:   a.quarter / float64(a.n),
		Half:      a.half / float64(a.n),
		Intervals: a.n,
		Chunkable: a.anyMulti,
	}
	if !s.Chunkable {
		s.Quarter, s.Half = math.NaN(), math.NaN()
	}
	return s
}

// Analyze computes the Table II statistics for one traced run.
func Analyze(run *tracer.Run) *Analysis {
	an := &Analysis{
		App:         run.Name,
		Production:  map[string]*ProductionStats{},
		Consumption: map[string]*ConsumptionStats{},
	}
	prodAcc := map[string]*accum{}
	consAcc := map[string]*accum{}
	var appProd, appCons accum
	for _, tracks := range collectTracks(run) {
		for _, tk := range tracks {
			// Production intervals: between consecutive sends.
			si := 0
			for j := 1; j < len(tk.sendMarks); j++ {
				start, end := tk.sendMarks[j-1], tk.sendMarks[j]
				var stores []accessRec
				for si < len(tk.stores) && tk.stores[si].t <= start {
					si++
				}
				k := si
				for k < len(tk.stores) && tk.stores[k].t <= end {
					stores = append(stores, tk.stores[k])
					k++
				}
				if f, q, h, w, ok := productionIntervalStats(tk, stores, start, end); ok {
					acc := prodAcc[tk.name]
					if acc == nil {
						acc = &accum{}
						prodAcc[tk.name] = acc
					}
					acc.addProd(f, q, h, w, tk.n > 1)
					appProd.addProd(f, q, h, w, tk.n > 1)
				}
			}
			// Consumption intervals: between consecutive receives.
			li := 0
			for j := 0; j+1 < len(tk.recvMarks); j++ {
				start, end := tk.recvMarks[j], tk.recvMarks[j+1]
				var loads []accessRec
				for li < len(tk.loads) && tk.loads[li].t <= start {
					li++
				}
				k := li
				for k < len(tk.loads) && tk.loads[k].t <= end {
					loads = append(loads, tk.loads[k])
					k++
				}
				if nth, q, h, ok := consumptionIntervalStats(tk, loads, start, end); ok {
					acc := consAcc[tk.name]
					if acc == nil {
						acc = &accum{}
						consAcc[tk.name] = acc
					}
					acc.addProd(nth, q, h, 0, tk.n > 1)
					appCons.addProd(nth, q, h, 0, tk.n > 1)
				}
			}
		}
	}
	for name, acc := range prodAcc {
		s := acc.prodStats()
		an.Production[name] = &s
	}
	for name, acc := range consAcc {
		s := acc.consStats()
		an.Consumption[name] = &s
	}
	an.AppProduction = appProd.prodStats()
	an.AppConsumption = appCons.consStats()
	return an
}

// ---------------------------------------------------------------------------
// Figure 5: scatter datasets

// Point is one access in a normalized interval: RelT in [0,1] is the
// relative time within the interval, Elem the element offset in the buffer.
type Point struct {
	RelT float64
	Elem int
}

// Scatter is the Figure 5 dataset of one buffer and side: every access of
// every interval overlaid on the normalized interval.
type Scatter struct {
	App       string
	Buffer    string
	Side      Side
	BufferLen int
	Intervals int
	Points    []Point
}

// ScatterFor extracts the scatter dataset of the named buffer on one rank.
// It returns nil when the rank never communicates that buffer.
func ScatterFor(run *tracer.Run, bufferName string, rank int, side Side) *Scatter {
	if rank < 0 || rank >= run.NumRanks {
		return nil
	}
	tracks := collectTracks(run)[rank]
	var tk *bufferTrack
	for _, cand := range tracks {
		if cand.name == bufferName {
			tk = cand
			break
		}
	}
	if tk == nil {
		return nil
	}
	sc := &Scatter{App: run.Name, Buffer: bufferName, Side: side, BufferLen: tk.n}
	var marks []int64
	var accesses []accessRec
	if side == Production {
		marks, accesses = tk.sendMarks, tk.stores
	} else {
		marks, accesses = tk.recvMarks, tk.loads
	}
	if side == Production {
		for j := 1; j < len(marks); j++ {
			sc.appendInterval(accesses, marks[j-1], marks[j])
		}
	} else {
		for j := 0; j+1 < len(marks); j++ {
			sc.appendInterval(accesses, marks[j], marks[j+1])
		}
	}
	return sc
}

func (sc *Scatter) appendInterval(accesses []accessRec, start, end int64) {
	if end <= start {
		return
	}
	added := false
	for _, a := range accesses {
		if a.t > start && a.t <= end {
			sc.Points = append(sc.Points, Point{
				RelT: float64(a.t-start) / float64(end-start),
				Elem: a.idx,
			})
			added = true
		}
	}
	if added {
		sc.Intervals++
	}
}

// WriteCSV emits "rel_time,element" rows.
func (sc *Scatter) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s %s of buffer %q (%d elements, %d intervals)\nrel_time,element\n",
		sc.App, sc.Side, sc.Buffer, sc.BufferLen, sc.Intervals); err != nil {
		return err
	}
	for _, p := range sc.Points {
		if _, err := fmt.Fprintf(w, "%.6f,%d\n", p.RelT, p.Elem); err != nil {
			return err
		}
	}
	return nil
}

// ASCII renders the scatter as a width x height character grid, x = relative
// time within the interval, y = element offset (top = last element), the
// same axes as Figure 5.
func (sc *Scatter) ASCII(width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	maxElem := sc.BufferLen - 1
	if maxElem < 1 {
		maxElem = 1
	}
	for _, p := range sc.Points {
		x := int(p.RelT * float64(width-1))
		y := height - 1 - int(float64(p.Elem)/float64(maxElem)*float64(height-1))
		if x < 0 {
			x = 0
		}
		if x >= width {
			x = width - 1
		}
		if y < 0 {
			y = 0
		}
		if y >= height {
			y = height - 1
		}
		grid[y][x] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s of %q: element offset (y) vs relative interval time (x)\n",
		sc.App, sc.Side, sc.Buffer)
	for _, row := range grid {
		b.WriteByte('|')
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteString("\n 0%")
	b.WriteString(strings.Repeat(" ", width-7))
	b.WriteString("100%\n")
	return b.String()
}

// FormatTableII renders production and consumption rows in the layout of
// Table II, with the ideal row included for reference.
func FormatTableII(rows []*Analysis) string {
	var b strings.Builder
	b.WriteString("(a) Potential for advancing sends — % of production phase to produce a part of a message\n")
	fmt.Fprintf(&b, "%-12s %12s %12s %12s %12s\n", "app", "1st element", "quarter", "half", "whole")
	fmt.Fprintf(&b, "%-12s %12s %12s %12s %12s\n", "ideal", "0%", "25%", "50%", "100%")
	for _, an := range rows {
		p := an.AppProduction
		fmt.Fprintf(&b, "%-12s %12s %12s %12s %12s\n", an.App,
			pct(p.FirstElem), pct(p.Quarter), pct(p.Half), pct(p.Whole))
	}
	b.WriteString("\n(b) Potential for post-postponing receptions — % of consumption phase passable upon reception of a part\n")
	fmt.Fprintf(&b, "%-12s %12s %12s %12s\n", "app", "nothing", "quarter", "half")
	fmt.Fprintf(&b, "%-12s %12s %12s %12s\n", "ideal", "0%", "25%", "50%")
	for _, an := range rows {
		c := an.AppConsumption
		fmt.Fprintf(&b, "%-12s %12s %12s %12s\n", an.App,
			pct(c.Nothing), pct(c.Quarter), pct(c.Half))
	}
	return b.String()
}

func pct(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.2f%%", v)
}
