package core

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/tracer"
)

// What-if analysis: which buffer's production/consumption pattern limits
// the overlap? For every communicated buffer, the analysis rebuilds the
// overlapped trace with *only that buffer* given the ideal schedule (all
// others keep their measured patterns) and replays it. The resulting
// ranking tells a developer which buffer to restructure first — the
// bottleneck-identification workflow the paper describes for its Paraver
// views, quantified.

// BufferPotential is the outcome of idealizing one buffer.
type BufferPotential struct {
	// Buffer is the tracked array name.
	Buffer string
	// FinishSec is the makespan with only this buffer idealized.
	FinishSec float64
	// Speedup compares against the non-overlapped execution.
	Speedup float64
	// GainOverReal is the speedup relative to the all-real overlapped
	// execution: the marginal value of restructuring just this buffer.
	GainOverReal float64
}

// WhatIf runs the per-buffer idealization study for an application. It
// traces the application once and replays len(buffers)+2 traces.
func WhatIf(app App, ranks int, netCfg network.Config, tCfg tracer.Config) (*WhatIfReport, error) {
	if err := netCfg.Validate(); err != nil {
		return nil, err
	}
	run, err := tracer.Trace(app.Name, ranks, tCfg, app.Kernel)
	if err != nil {
		return nil, fmt.Errorf("core: what-if tracing %q: %w", app.Name, err)
	}
	base := run.BaseTrace()
	real := run.OverlapReal()
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if err := real.Validate(); err != nil {
		return nil, err
	}
	baseRes, err := sim.Run(netCfg, base)
	if err != nil {
		return nil, err
	}
	realRes, err := sim.Run(netCfg, real)
	if err != nil {
		return nil, err
	}
	rep := &WhatIfReport{
		App:           app.Name,
		BaseFinishSec: baseRes.FinishSec,
		RealFinishSec: realRes.FinishSec,
	}
	for _, name := range run.BufferNames() {
		tr := run.OverlapSelective(map[string]bool{name: true})
		if err := tr.Validate(); err != nil {
			return nil, fmt.Errorf("core: selective trace for %q: %w", name, err)
		}
		res, err := sim.Run(netCfg, tr)
		if err != nil {
			return nil, fmt.Errorf("core: replaying selective %q: %w", name, err)
		}
		rep.Buffers = append(rep.Buffers, BufferPotential{
			Buffer:       name,
			FinishSec:    res.FinishSec,
			Speedup:      metrics.Speedup(baseRes.FinishSec, res.FinishSec),
			GainOverReal: metrics.Speedup(realRes.FinishSec, res.FinishSec),
		})
	}
	sort.Slice(rep.Buffers, func(i, j int) bool {
		return rep.Buffers[i].GainOverReal > rep.Buffers[j].GainOverReal
	})
	return rep, nil
}

// WhatIfReport ranks the buffers of one application by restructuring
// potential.
type WhatIfReport struct {
	App           string
	BaseFinishSec float64
	RealFinishSec float64
	// Buffers sorted by GainOverReal, best first.
	Buffers []BufferPotential
}

// Format renders the ranking as a table.
func (r *WhatIfReport) Format() string {
	out := fmt.Sprintf("what-if (idealize one buffer at a time) for %s\n", r.App)
	out += fmt.Sprintf("non-overlapped %.6f s, overlapped(real) %.6f s\n", r.BaseFinishSec, r.RealFinishSec)
	out += fmt.Sprintf("%-20s %12s %12s %14s\n", "buffer", "finish (s)", "speedup", "gain vs real")
	for _, b := range r.Buffers {
		out += fmt.Sprintf("%-20s %12.6f %12.3f %14.3f\n", b.Buffer, b.FinishSec, b.Speedup, b.GainOverReal)
	}
	return out
}
