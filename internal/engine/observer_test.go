package engine

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestAddObserverComposes is the satellite requirement: multiple
// observers coexist, each sees every event, removal detaches exactly one
// registration, and SetObserver keeps its replace-all semantics.
func TestAddObserverComposes(t *testing.T) {
	e := New(2)
	var a, b, c atomic.Int64
	removeA := e.AddObserver(func(ev JobEvent) {
		if ev.Done {
			a.Add(1)
		}
	})
	removeB := e.AddObserver(func(ev JobEvent) {
		if ev.Done {
			b.Add(1)
		}
	})

	run := func(n int) {
		t.Helper()
		if _, err := Map(context.Background(), e, n, func(ctx context.Context, i int) (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	run(5)
	if a.Load() != 5 || b.Load() != 5 {
		t.Fatalf("after 5 jobs: a=%d b=%d, want 5/5", a.Load(), b.Load())
	}

	// Removing one observer must not touch the other.
	removeA()
	run(3)
	if a.Load() != 5 || b.Load() != 8 {
		t.Fatalf("after removeA: a=%d b=%d, want 5/8", a.Load(), b.Load())
	}
	removeA() // double-remove is a no-op
	removeB()
	run(2)
	if b.Load() != 8 {
		t.Fatalf("after removeB: b=%d, want 8", b.Load())
	}

	// SetObserver replaces the whole chain (legacy semantics)...
	e.AddObserver(func(ev JobEvent) {
		if ev.Done {
			a.Add(1)
		}
	})
	e.SetObserver(func(ev JobEvent) {
		if ev.Done {
			c.Add(1)
		}
	})
	run(4)
	if a.Load() != 5 || c.Load() != 4 {
		t.Fatalf("after SetObserver: a=%d c=%d, want 5/4", a.Load(), c.Load())
	}
	// ...and AddObserver composes on top of a SetObserver hook.
	e.AddObserver(func(ev JobEvent) {
		if ev.Done {
			b.Add(1)
		}
	})
	run(1)
	if c.Load() != 5 || b.Load() != 9 {
		t.Fatalf("after compose: c=%d b=%d, want 5/9", c.Load(), b.Load())
	}
}

// TestJobEventDurations checks that Done events carry the execution
// duration and that the telemetry job histograms advance.
func TestJobEventDurations(t *testing.T) {
	e := New(2)
	before := telemetry.Default().Counter("engine_jobs_started_total", "").Value()
	var sawElapsed atomic.Bool
	e.SetObserver(func(ev JobEvent) {
		if ev.Done && ev.Elapsed >= 2*time.Millisecond {
			sawElapsed.Store(true)
		}
		if ev.Wait < 0 || ev.Elapsed < 0 {
			t.Errorf("negative durations: %+v", ev)
		}
	})
	_, err := Map(context.Background(), e, 4, func(ctx context.Context, i int) (int, error) {
		time.Sleep(3 * time.Millisecond)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawElapsed.Load() {
		t.Fatal("no Done event carried the job's elapsed time")
	}
	if after := telemetry.Default().Counter("engine_jobs_started_total", "").Value(); after != before+4 {
		t.Fatalf("engine_jobs_started_total advanced %d -> %d, want +4", before, after)
	}
}
