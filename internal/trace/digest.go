package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
)

// DigestPrefix tags every trace digest with the hash algorithm, so a
// digest string is self-describing and future algorithms can coexist.
const DigestPrefix = "sha256:"

// Digest returns the content address of the trace: the SHA-256 of its
// binary encoding, spelled "sha256:<64 hex digits>". The binary codec is
// canonical — field order is fixed and carries no timestamps or padding —
// so two traces digest equal exactly when they are semantically equal,
// regardless of which codec they travelled through. The digest is the key
// of the service layer's content-addressed trace store and result cache.
func Digest(t *Trace) (string, error) {
	h := sha256.New()
	if err := WriteBinary(h, t); err != nil {
		return "", err
	}
	return DigestPrefix + hex.EncodeToString(h.Sum(nil)), nil
}

// ValidDigest reports whether s is a well-formed trace digest string.
func ValidDigest(s string) bool {
	if !strings.HasPrefix(s, DigestPrefix) {
		return false
	}
	hx := s[len(DigestPrefix):]
	if len(hx) != 2*sha256.Size {
		return false
	}
	_, err := hex.DecodeString(hx)
	return err == nil
}
