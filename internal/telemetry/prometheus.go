package telemetry

import (
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// Prometheus text-format (version 0.0.4) exposition over a registry
// snapshot. The output is deterministic: families sort by name, samples
// by label values, and numbers format with the shortest exact
// representation.

// fmtFloat formats a value the way Prometheus clients expect: shortest
// exact decimal, "+Inf"/"-Inf" for infinities.
func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the text format: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// writeLabels renders {k="v",...} with keys in sorted order (the sample
// map is rebuilt from the family's label slice, so order follows the
// registration order; sortedKeys keeps the output stable regardless).
func writeLabels(b *strings.Builder, labels map[string]string, extraKey, extraVal string) {
	if len(labels) == 0 && extraKey == "" {
		return
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	// insertion sort; label sets are tiny
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	b.WriteByte('{')
	first := true
	for _, k := range keys {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// WritePrometheus writes the registry's current state to w in the
// Prometheus text exposition format.
func WritePrometheus(w io.Writer, r *Registry) error {
	snap := r.Snapshot()
	var b strings.Builder
	for _, m := range snap.Metrics {
		if m.Help != "" {
			b.WriteString("# HELP ")
			b.WriteString(m.Name)
			b.WriteByte(' ')
			b.WriteString(strings.ReplaceAll(m.Help, "\n", " "))
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(m.Name)
		b.WriteByte(' ')
		b.WriteString(m.Type)
		b.WriteByte('\n')
		for _, s := range m.Samples {
			if s.Histogram == nil {
				b.WriteString(m.Name)
				writeLabels(&b, s.Labels, "", "")
				b.WriteByte(' ')
				b.WriteString(fmtFloat(s.Value))
				b.WriteByte('\n')
				continue
			}
			h := s.Histogram
			for _, bk := range h.Buckets {
				b.WriteString(m.Name)
				b.WriteString("_bucket")
				writeLabels(&b, s.Labels, "le", fmtFloat(bk.LE))
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(bk.Count, 10))
				b.WriteByte('\n')
			}
			b.WriteString(m.Name)
			b.WriteString("_bucket")
			writeLabels(&b, s.Labels, "le", "+Inf")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(h.Count, 10))
			b.WriteByte('\n')
			b.WriteString(m.Name)
			b.WriteString("_sum")
			writeLabels(&b, s.Labels, "", "")
			b.WriteByte(' ')
			b.WriteString(fmtFloat(h.Sum))
			b.WriteByte('\n')
			b.WriteString(m.Name)
			b.WriteString("_count")
			writeLabels(&b, s.Labels, "", "")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(h.Count, 10))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns an http.Handler serving the registry in the
// Prometheus text format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r)
	})
}
