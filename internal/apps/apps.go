// Package apps registers the paper's six-application pool (Section IV):
// Sweep3D, POP, Alya, SPECFEM3D, and the NAS benchmarks BT and CG, each
// rebuilt as a synthetic kernel with the communication structure and the
// production/consumption patterns the paper measures for it.
package apps

import (
	"repro/internal/apps/alya"
	"repro/internal/apps/bt"
	"repro/internal/apps/cg"
	"repro/internal/apps/pop"
	"repro/internal/apps/specfem"
	"repro/internal/apps/sweep3d"
	"repro/internal/core"
	"repro/internal/tracer"
)

// Names lists the pool in the paper's Table I order.
var Names = []string{"sweep3d", "pop", "alya", "specfem3d", "bt", "cg"}

// Entry pairs an application with its descriptive metadata.
type Entry struct {
	App         core.App
	Description string
}

// Scale adjusts an application's workload: SizeScale multiplies the
// communicated-buffer lengths (and with them the transferred bytes),
// IterScale the iteration counts. 1/1 is the calibrated default workload.
// Scaling preserves each kernel's pattern *shape* while moving its
// communication/computation balance — the workload-generation knob for
// parameter sweeps.
type Scale struct {
	SizeScale float64
	IterScale float64
}

// DefaultScale is the calibrated workload.
func DefaultScale() Scale { return Scale{SizeScale: 1, IterScale: 1} }

func scaleInt(v int, f float64) int {
	if f <= 0 {
		f = 1
	}
	s := int(float64(v)*f + 0.5)
	if s < 1 {
		s = 1
	}
	return s
}

// ByName returns the named application configured with its defaults for
// the given rank count. The boolean reports whether the name is known.
func ByName(name string, ranks int) (Entry, bool) {
	return ByNameScaled(name, ranks, DefaultScale())
}

// ByNameScaled returns the named application with a scaled workload.
func ByNameScaled(name string, ranks int, sc Scale) (Entry, bool) {
	var kernel func(p *tracer.Proc)
	var desc string
	switch name {
	case "sweep3d":
		cfg := sweep3d.DefaultConfig(ranks)
		cfg.Boundary = scaleInt(cfg.Boundary, sc.SizeScale)
		cfg.Iterations = scaleInt(cfg.Iterations, sc.IterScale)
		kernel = sweep3d.Kernel(cfg)
		desc = "wavefront neutron transport (pipeline dependencies, late production)"
	case "pop":
		cfg := pop.DefaultConfig(ranks)
		cfg.HaloLen = scaleInt(cfg.HaloLen, sc.SizeScale)
		cfg.Iterations = scaleInt(cfg.Iterations, sc.IterScale)
		kernel = pop.Kernel(cfg)
		desc = "ocean model (2D halo exchange, late pack, small independent work)"
	case "alya":
		cfg := alya.DefaultConfig()
		// Single-element reductions cannot scale in size; scale the
		// solver depth instead.
		cfg.InnerReductions = scaleInt(cfg.InnerReductions, sc.SizeScale)
		cfg.Iterations = scaleInt(cfg.Iterations, sc.IterScale)
		kernel = alya.Kernel(cfg)
		desc = "NASTIN Navier-Stokes (one-element reductions, unchunkable)"
	case "specfem3d":
		cfg := specfem.DefaultConfig()
		cfg.BoundaryLen = scaleInt(cfg.BoundaryLen, sc.SizeScale)
		cfg.Iterations = scaleInt(cfg.Iterations, sc.IterScale)
		kernel = specfem.Kernel(cfg)
		desc = "seismic wave propagation (assembly exchange, immediate consumption)"
	case "bt":
		cfg := bt.DefaultConfig()
		cfg.FaceLen = scaleInt(cfg.FaceLen, sc.SizeScale)
		cfg.Iterations = scaleInt(cfg.Iterations, sc.IterScale)
		kernel = bt.Kernel(cfg)
		desc = "NAS block-tridiagonal (pack at 99%, four copy passes)"
	case "cg":
		cfg := cg.DefaultConfig()
		cfg.VectorLen = scaleInt(cfg.VectorLen, sc.SizeScale)
		cfg.Iterations = scaleInt(cfg.Iterations, sc.IterScale)
		kernel = cg.Kernel(cfg)
		desc = "NAS conjugate gradient (near-linear patterns, overlap friendly)"
	default:
		return Entry{}, false
	}
	return Entry{App: core.App{Name: name, Kernel: kernel}, Description: desc}, true
}

// All returns the whole pool configured for the given rank count, in the
// paper's order.
func All(ranks int) []Entry {
	out := make([]Entry, 0, len(Names))
	for _, n := range Names {
		e, _ := ByName(n, ranks)
		out = append(out, e)
	}
	return out
}
