package network

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidateAcceptsTestbed(t *testing.T) {
	if err := Testbed(64).Validate(); err != nil {
		t.Fatalf("testbed invalid: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := Testbed(4)
	cases := []struct {
		name string
		mut  func(Config) Config
	}{
		{"zero processors", func(c Config) Config { c.Processors = 0; return c }},
		{"negative latency", func(c Config) Config { c.LatencySec = -1; return c }},
		{"zero bandwidth", func(c Config) Config { c.BandwidthMBps = 0; return c }},
		{"negative bandwidth", func(c Config) Config { c.BandwidthMBps = -3; return c }},
		{"negative buses", func(c Config) Config { c.Buses = -1; return c }},
		{"negative inports", func(c Config) Config { c.InPorts = -1; return c }},
		{"negative outports", func(c Config) Config { c.OutPorts = -2; return c }},
		{"zero mips", func(c Config) Config { c.MIPS = 0; return c }},
		{"zero speed", func(c Config) Config { c.RelativeSpeed = 0; return c }},
	}
	for _, tc := range cases {
		if err := tc.mut(base).Validate(); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestInfiniteBandwidthValidatesAndZeroesSerialization(t *testing.T) {
	c := Testbed(4).InfiniteBandwidth()
	if err := c.Validate(); err != nil {
		t.Fatalf("infinite bandwidth config invalid: %v", err)
	}
	if got := c.SerializationSec(1 << 30); got != 0 {
		t.Fatalf("serialization at infinite bandwidth = %g, want 0", got)
	}
	if got := c.TransferSec(1 << 30); got != c.LatencySec {
		t.Fatalf("transfer at infinite bandwidth = %g, want latency %g", got, c.LatencySec)
	}
}

func TestTransferSecLinearModel(t *testing.T) {
	c := Testbed(2)
	// 250 MB/s, 1e6-scale: 250e6 bytes per second.
	got := c.TransferSec(250e6)
	want := c.LatencySec + 1.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("TransferSec(250 MB)=%g, want %g", got, want)
	}
	if c.TransferSec(0) != c.LatencySec {
		t.Fatalf("zero-byte transfer should cost exactly the latency")
	}
}

func TestComputeSecScaling(t *testing.T) {
	c := Testbed(2)
	// 2300 MIPS: 2.3e9 instructions per second.
	got := c.ComputeSec(2_300_000_000)
	if math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("ComputeSec(2.3e9)=%g, want 1.0", got)
	}
	c.RelativeSpeed = 2
	if got := c.ComputeSec(2_300_000_000); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("ComputeSec at 2x speed=%g, want 0.5", got)
	}
}

func TestEagerThreshold(t *testing.T) {
	c := Testbed(2)
	c.EagerThresholdBytes = 1024
	if !c.Eager(1024) {
		t.Error("message at threshold should be eager")
	}
	if c.Eager(1025) {
		t.Error("message above threshold should be rendezvous")
	}
	c.EagerThresholdBytes = -1
	if !c.Eager(1 << 40) {
		t.Error("negative threshold must disable rendezvous")
	}
}

func TestWithHelpersDoNotMutateReceiver(t *testing.T) {
	c := Testbed(8)
	_ = c.WithBandwidth(10)
	_ = c.WithBuses(3)
	_ = c.WithProcessors(2)
	if c.BandwidthMBps != 250 || c.Buses != 0 || c.Processors != 8 {
		t.Fatal("With* helpers mutated the receiver")
	}
}

func TestTableIBusesMatchesPaper(t *testing.T) {
	want := map[string]int{"sweep3d": 12, "pop": 12, "alya": 11, "specfem3d": 8, "bt": 22, "cg": 6}
	if len(TableIBuses) != len(want) {
		t.Fatalf("TableIBuses has %d entries, want %d", len(TableIBuses), len(want))
	}
	for app, buses := range want {
		if TableIBuses[app] != buses {
			t.Errorf("TableIBuses[%q]=%d, want %d", app, TableIBuses[app], buses)
		}
	}
}

func TestTestbedFor(t *testing.T) {
	c := TestbedFor("cg", 64)
	if c.Buses != 6 || c.Processors != 64 {
		t.Fatalf("TestbedFor(cg): buses=%d procs=%d, want 6/64", c.Buses, c.Processors)
	}
	u := TestbedFor("unknown-app", 4)
	if u.Buses != 0 {
		t.Fatalf("unknown app should keep unlimited buses, got %d", u.Buses)
	}
}

func TestPropertyTransferMonotoneInSize(t *testing.T) {
	c := Testbed(2)
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return c.TransferSec(x) <= c.TransferSec(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTransferMonotoneInBandwidth(t *testing.T) {
	f := func(sz uint32, bw1, bw2 uint16) bool {
		lo := float64(bw1%1000) + 1
		hi := lo + float64(bw2%1000) + 1
		c := Testbed(2)
		return c.WithBandwidth(hi).TransferSec(int64(sz)) <= c.WithBandwidth(lo).TransferSec(int64(sz))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
