package engine

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapStreamOrder: results arrive through emit in submission order,
// exactly once each, regardless of completion order.
func TestMapStreamOrder(t *testing.T) {
	e := New(8)
	const n = 100
	rng := rand.New(rand.NewSource(42))
	delays := make([]time.Duration, n)
	for i := range delays {
		delays[i] = time.Duration(rng.Intn(3)) * time.Millisecond
	}
	var got []int
	err := MapStream(context.Background(), e, n, 0, func(ctx context.Context, i int) (int, error) {
		time.Sleep(delays[i])
		return i * i, nil
	}, func(i, v int) error {
		if v != i*i {
			t.Errorf("emit(%d) = %d, want %d", i, v, i*i)
		}
		got = append(got, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("%d emissions, want %d", len(got), n)
	}
	for i, g := range got {
		if g != i {
			t.Fatalf("emission %d carried index %d (out of order)", i, g)
		}
	}
}

// TestMapStreamBackpressure: a slow consumer bounds how far submission
// runs ahead — at most window jobs are ever in flight beyond the last
// emitted result.
func TestMapStreamBackpressure(t *testing.T) {
	e := New(4)
	const n, window = 64, 8
	var started atomic.Int64
	emitted := 0
	err := MapStream(context.Background(), e, n, window, func(ctx context.Context, i int) (int, error) {
		started.Add(1)
		return i, nil
	}, func(i, v int) error {
		// Everything started so far holds a window token that is only
		// released when its result is emitted.
		if s := started.Load(); s > int64(emitted+window) {
			t.Errorf("at emission %d, %d jobs started (window %d)", emitted, s, window)
		}
		emitted++
		time.Sleep(time.Millisecond) // slow consumer
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if emitted != n {
		t.Fatalf("%d emissions, want %d", emitted, n)
	}
}

// TestMapStreamFailFast: the first failing job (in submission order)
// aborts the stream with its JobError after its predecessors emitted.
func TestMapStreamFailFast(t *testing.T) {
	e := New(4)
	boom := errors.New("boom")
	var emitted []int
	err := MapStream(context.Background(), e, 20, 4, func(ctx context.Context, i int) (int, error) {
		if i == 7 {
			return 0, boom
		}
		return i, nil
	}, func(i, v int) error {
		emitted = append(emitted, i)
		return nil
	})
	var je *JobError
	if !errors.As(err, &je) || je.Index != 7 || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want JobError{7, boom}", err)
	}
	if len(emitted) != 7 {
		t.Fatalf("emitted %v, want exactly 0..6", emitted)
	}
	for i, g := range emitted {
		if g != i {
			t.Fatalf("emission %d carried index %d", i, g)
		}
	}
}

// TestMapStreamEmitError: an error from the consumer aborts the stream
// and is returned as-is.
func TestMapStreamEmitError(t *testing.T) {
	e := New(2)
	stop := errors.New("stop")
	count := 0
	err := MapStream(context.Background(), e, 50, 4, func(ctx context.Context, i int) (int, error) {
		return i, nil
	}, func(i, v int) error {
		count++
		if i == 3 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want stop", err)
	}
	if count != 4 {
		t.Fatalf("%d emissions, want 4 (0..3)", count)
	}
}

// TestMapStreamCancel: cancelling the context mid-stream stops emission
// promptly — no result is delivered after the cancellation, even ones
// already buffered — and MapStream returns the context's error.
func TestMapStreamCancel(t *testing.T) {
	e := New(4)
	ctx, cancel := context.WithCancel(context.Background())
	var after atomic.Bool
	emitted := 0
	err := MapStream(ctx, e, 100, 8, func(ctx context.Context, i int) (int, error) {
		return i, nil
	}, func(i, v int) error {
		if after.Load() {
			t.Error("emission after cancellation")
		}
		emitted++
		if emitted == 3 {
			cancel()
			after.Store(true)
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if emitted < 3 {
		t.Fatalf("%d emissions before cancel, want 3", emitted)
	}
}

// TestMapStreamNested: jobs may fan out through Map on the same engine
// without deadlocking (the caller-runs discipline extends to streams).
func TestMapStreamNested(t *testing.T) {
	e := New(2)
	err := MapStream(context.Background(), e, 8, 2, func(ctx context.Context, i int) (int, error) {
		inner, err := Map(ctx, e, 4, func(ctx context.Context, j int) (int, error) {
			return j, nil
		})
		if err != nil {
			return 0, err
		}
		sum := 0
		for _, v := range inner {
			sum += v
		}
		return sum, nil
	}, func(i, v int) error {
		if v != 6 {
			t.Errorf("job %d sum %d, want 6", i, v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
