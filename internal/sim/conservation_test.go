package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Conservation properties: the replay may schedule work but never create
// or destroy it.

func TestPropertyComputeTimeConserved(t *testing.T) {
	// Each rank's simulated compute time must equal its trace's
	// instruction count divided by the CPU rate, independent of any
	// communication behaviour.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomBalancedTrace(rng, 3+rng.Intn(4), 20+rng.Intn(30))
		cfg := testCfg(8)
		res, err := Run(cfg, tr)
		if err != nil {
			return false
		}
		for r := 0; r < tr.NumRanks; r++ {
			want := cfg.ComputeSec(tr.TotalInstructions(r))
			if math.Abs(res.Ranks[r].ComputeSec-want) > 1e-9*math.Max(1, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMessageCountConserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomBalancedTrace(rng, 3+rng.Intn(4), 20+rng.Intn(30))
		res, err := Run(testCfg(8), tr)
		if err != nil {
			return false
		}
		st := tr.Stats()
		if len(res.Comms) != st.Messages {
			return false
		}
		var bytes int64
		var msgs int
		for r := range res.Ranks {
			bytes += res.Ranks[r].BytesSent
			msgs += res.Ranks[r].MsgsSent
		}
		return bytes == st.BytesSent && msgs == st.Messages
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFinishBoundsPerRankWork(t *testing.T) {
	// The makespan can never undercut any rank's pure compute time, and
	// with unlimited resources it can never exceed compute + all waits +
	// all sends serialized end to end (a very loose upper bound).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomBalancedTrace(rng, 3+rng.Intn(4), 15+rng.Intn(25))
		cfg := testCfg(8)
		res, err := Run(cfg, tr)
		if err != nil {
			return false
		}
		for r := 0; r < tr.NumRanks; r++ {
			if res.FinishSec < cfg.ComputeSec(tr.TotalInstructions(r))-eps {
				return false
			}
		}
		var total float64
		for r := range res.Ranks {
			total += res.Ranks[r].ComputeSec + res.Ranks[r].WaitSec + res.Ranks[r].SendBlockedSec
		}
		return res.FinishSec <= total+cfg.LatencySec*float64(len(res.Comms))+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyOverlapFlavoursConserveCompute(t *testing.T) {
	// Cross-check against the tracer contract: replaying chunked traces
	// must keep per-rank compute identical to the base trace (sim side
	// of the tracer's instruction-conservation property).
	base := ringTrace(4, 6, 700_000, 30_000)
	cfg := testCfg(4)
	res, err := Run(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		want := cfg.ComputeSec(base.TotalInstructions(r))
		if math.Abs(res.Ranks[r].ComputeSec-want) > 1e-12 {
			t.Fatalf("rank %d compute %g, want %g", r, res.Ranks[r].ComputeSec, want)
		}
	}
}
