package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/network"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// maxUploadBytes bounds trace uploads (the binary codec is 5-10x denser
// than this, so the limit is generous).
const maxUploadBytes = 64 << 20

// AppInfo is one row of GET /v1/apps.
type AppInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// PlatformInfo is one row of GET /v1/platforms.
type PlatformInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// TraceInfo describes a stored trace (the POST /v1/traces response).
type TraceInfo struct {
	Digest  string `json:"digest"`
	Name    string `json:"name"`
	Flavor  string `json:"flavor"`
	Ranks   int    `json:"ranks"`
	Records int    `json:"records"`
}

// Health is the GET /healthz response. Status is "ok" while serving
// and "draining" once shutdown began; the cluster fields appear only
// when the daemon is a cluster member.
type Health struct {
	Status    string  `json:"status"`
	UptimeSec float64 `json:"uptime_sec"`
	Workers   int     `json:"workers"`
	Draining  bool    `json:"draining,omitempty"`
	// Node is the operator-chosen node name (-node-id), NodeID its
	// 160-bit DHT identity, ClusterPeers the routing-table size.
	Node         string `json:"node,omitempty"`
	NodeID       string `json:"node_id,omitempty"`
	ClusterPeers int    `json:"cluster_peers,omitempty"`
}

// NewHandler builds the daemon's HTTP API around a manager. The routes:
//
//	GET    /healthz              liveness + uptime
//	GET    /metrics              Prometheus text format (engine, service,
//	                             scenario-stage, and replay/PDES families)
//	GET    /v1/debug/telemetry   the same instruments as deterministic JSON
//	GET    /v1/apps              application catalog
//	GET    /v1/platforms         platform preset catalog
//	POST   /v1/traces            upload a trace (text or binary codec)
//	GET    /v1/traces            list stored trace digests
//	GET    /v1/traces/{digest}   download a stored trace (binary codec)
//	DELETE /v1/traces/{digest}   delete a stored trace (drops its
//	                             compiled programs too)
//	POST   /v1/scenarios         generic declarative study:    } sync by
//	                             workload × platform × axes    } default;
//	POST   /v1/analyze           three-flavour analysis        } ?async=1
//	POST   /v1/whatif            per-buffer idealization       } returns
//	POST   /v1/sweep/bandwidth   bandwidth sweep               } 202
//	POST   /v1/sweep/mapping     placement sweep               }
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         poll one job (result inlined when done)
//	DELETE /v1/jobs/{id}         cancel one job
//
// The four per-kind POST endpoints are spec translators over the same
// scenario planner POST /v1/scenarios drives; their request and response
// formats are unchanged.
//
// POST /v1/scenarios additionally streams: with Accept:
// application/x-ndjson (and without ?async=1, which takes precedence),
// the response is NDJSON frames — header, one frame per grid point in
// deterministic order, then done — whose concatenation is byte-identical
// to the batch JSON body. See stream.go for the frame protocol.
//
// All submitting endpoints answer 429 with Retry-After when the
// manager's admission queue is full; queue depth and rejection counts
// are visible on /metrics.
func NewHandler(m *Manager) http.Handler {
	publishMetrics(m)
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h := Health{
			Status:    "ok",
			UptimeSec: m.UptimeSec(),
			Workers:   m.eng.Workers(),
		}
		if m.Draining() {
			h.Status = "draining"
			h.Draining = true
		}
		if n := m.Cluster(); n != nil {
			h.Node = n.Name()
			h.NodeID = n.Self().ID.String()
			h.ClusterPeers = n.Table().Len()
		}
		writeJSON(w, http.StatusOK, h)
	})
	mux.Handle("GET /metrics", telemetry.Handler(telemetry.Default()))

	mux.HandleFunc("GET /v1/debug/telemetry", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, telemetry.Default().Snapshot())
	})

	mux.HandleFunc("GET /v1/apps", func(w http.ResponseWriter, r *http.Request) {
		// The registry's descriptions are rank-independent; 16 is only a
		// valid instantiation size.
		list := make([]AppInfo, 0, len(apps.Names))
		for _, e := range apps.All(16) {
			list = append(list, AppInfo{Name: e.App.Name, Description: e.Description})
		}
		writeJSON(w, http.StatusOK, list)
	})

	mux.HandleFunc("GET /v1/platforms", func(w http.ResponseWriter, r *http.Request) {
		desc := network.PresetDescriptions()
		list := make([]PlatformInfo, 0, len(desc))
		for _, name := range network.PresetNames() {
			list = append(list, PlatformInfo{Name: name, Description: desc[name]})
		}
		writeJSON(w, http.StatusOK, list)
	})

	mux.HandleFunc("POST /v1/traces", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxUploadBytes))
		if err != nil {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("read upload: %w", err))
			return
		}
		tr, err := decodeTrace(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		digest, err := m.store.PutTrace(tr)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, ErrStoreFull) {
				status = http.StatusInsufficientStorage
			}
			writeError(w, status, err)
			return
		}
		// In a cluster the upload also replicates to the digest's replica
		// set, so any member can serve specs referencing it.
		m.ReplicateTrace(digest, tr)
		writeJSON(w, http.StatusCreated, traceInfo(digest, tr))
	})

	mux.HandleFunc("GET /v1/traces", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.store.TraceDigests())
	})

	mux.HandleFunc("GET /v1/traces/{digest}", func(w http.ResponseWriter, r *http.Request) {
		tr, err := m.store.GetTrace(r.PathValue("digest"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := trace.WriteBinary(w, tr); err != nil {
			// Headers are gone; all we can do is drop the connection.
			return
		}
	})

	mux.HandleFunc("DELETE /v1/traces/{digest}", func(w http.ResponseWriter, r *http.Request) {
		digest := r.PathValue("digest")
		if !trace.ValidDigest(digest) {
			writeError(w, http.StatusBadRequest, fmt.Errorf("malformed trace digest %q", digest))
			return
		}
		found, err := m.store.DeleteTrace(digest)
		if err != nil {
			// The digest parsed; a delete that still fails is a disk-tier
			// fault, the server's problem, not the client's.
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		if !found {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown trace %s", digest))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"deleted": digest})
	})

	submit := func(w http.ResponseWriter, r *http.Request, req Request) {
		job, err := m.Submit(req)
		if err != nil {
			if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrDraining) {
				m.log.LogAttrs(r.Context(), slog.LevelWarn, "submission rejected",
					slog.String("request_id", RequestID(r.Context())),
					slog.String("error", err.Error()))
				status := http.StatusTooManyRequests
				if errors.Is(err, ErrDraining) {
					status = http.StatusServiceUnavailable
				}
				w.Header().Set("Retry-After", "1")
				writeError(w, status, err)
				return
			}
			writeError(w, http.StatusBadRequest, err)
			return
		}
		m.log.LogAttrs(r.Context(), slog.LevelInfo, "job submitted",
			slog.String("request_id", RequestID(r.Context())),
			slog.String("job_id", job.ID()),
			slog.String("kind", job.Kind()),
			slog.String("spec_digest", job.Key()),
			slog.Bool("cached", job.Cached()))
		if async, _ := strconv.ParseBool(r.URL.Query().Get("async")); async {
			writeJSON(w, http.StatusAccepted, job.Status(false))
			return
		}
		payload, err := job.Wait(r.Context())
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		// The payload is served verbatim: identical requests receive
		// byte-identical responses, cached or not.
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Job-Id", job.ID())
		w.Header().Set("X-Cache", cacheHeader(job))
		w.WriteHeader(http.StatusOK)
		w.Write(payload)
	}

	mux.HandleFunc("POST /v1/scenarios", func(w http.ResponseWriter, r *http.Request) {
		var req ScenarioRequest
		if !decodeRequest(w, r, &req) {
			return
		}
		// ?async=1 wins over the Accept header: an async submission has
		// nothing to stream yet.
		if async, _ := strconv.ParseBool(r.URL.Query().Get("async")); !async && wantsNDJSON(r) {
			streamScenario(m, w, r, req)
			return
		}
		submit(w, r, req)
	})
	mux.HandleFunc("POST /v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		var req AnalyzeRequest
		if !decodeRequest(w, r, &req) {
			return
		}
		submit(w, r, req)
	})
	mux.HandleFunc("POST /v1/whatif", func(w http.ResponseWriter, r *http.Request) {
		var req WhatIfRequest
		if !decodeRequest(w, r, &req) {
			return
		}
		submit(w, r, req)
	})
	mux.HandleFunc("POST /v1/sweep/bandwidth", func(w http.ResponseWriter, r *http.Request) {
		var req BandwidthSweepRequest
		if !decodeRequest(w, r, &req) {
			return
		}
		submit(w, r, req)
	})
	mux.HandleFunc("POST /v1/sweep/mapping", func(w http.ResponseWriter, r *http.Request) {
		var req MappingSweepRequest
		if !decodeRequest(w, r, &req) {
			return
		}
		submit(w, r, req)
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := m.Jobs()
		list := make([]Status, 0, len(jobs))
		for _, j := range jobs {
			list = append(list, j.Status(false))
		}
		writeJSON(w, http.StatusOK, list)
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, j.Status(true))
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		j, ok := m.Cancel(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
			return
		}
		writeJSON(w, http.StatusOK, j.Status(false))
	})

	// Cluster members additionally serve the peer RPC endpoint and a
	// status document:
	//
	//	POST /v1/cluster/rpc      the DHT RPC envelope (peers only)
	//	GET  /v1/cluster/status   node identity, peers, stored keys
	if n := m.Cluster(); n != nil {
		mux.Handle("POST "+cluster.RPCPath, cluster.ServeRPC(n))
		mux.HandleFunc("GET /v1/cluster/status", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, n.Status())
		})
	}

	return instrument(mux, m.log)
}

// wantsNDJSON reports whether the request's Accept header selects the
// streaming scenario response.
func wantsNDJSON(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(mt) == NDJSONContentType {
			return true
		}
	}
	return false
}

func cacheHeader(j *Job) string {
	if j.Cached() {
		return "hit"
	}
	return "miss"
}

func traceInfo(digest string, tr *trace.Trace) TraceInfo {
	return TraceInfo{
		Digest:  digest,
		Name:    tr.Name,
		Flavor:  tr.Flavor,
		Ranks:   tr.NumRanks,
		Records: tr.Stats().Records,
	}
}

// decodeTrace parses an uploaded trace in either codec, sniffing the
// text magic like tracecat does.
func decodeTrace(body []byte) (*trace.Trace, error) {
	if len(body) >= 7 && string(body[:7]) == "#DIMGO " {
		return trace.Read(bytes.NewReader(body))
	}
	return trace.ReadBinary(bytes.NewReader(body))
}

// decodeRequest parses a JSON request body strictly; unknown fields are
// errors so typos (e.g. "bandwidths" for "bandwidths_mbps") don't silently
// select defaults.
func decodeRequest(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUploadBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parse request: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
