// Package service turns the reproduction into a serving system: a job
// manager layered on the experiment engine that submits, polls, and
// cancels analysis jobs, deduplicates identical in-flight requests
// (singleflight), and answers repeated requests from an LRU result cache
// keyed by content digests — so identical requests hit the cache instead
// of re-simulating, and concurrent distinct requests saturate the worker
// pool. The HTTP face of the package is in http.go; cmd/simd is the
// daemon.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DefaultCacheEntries is the result-cache capacity when Options leaves it
// zero.
const DefaultCacheEntries = 256

// DefaultQueueDepth is the admission bound when Options leaves it zero:
// how many submitted jobs may wait for an execution slot before new
// submissions are rejected with ErrQueueFull (HTTP 429).
const DefaultQueueDepth = 256

// DefaultPointCacheEntries sizes the point-level scenario cache when
// Options leaves it zero. Points are small (a coordinate plus a few
// measurements), so the default keeps several full grids resident.
const DefaultPointCacheEntries = 4096

// ErrQueueFull rejects a submission when the admission queue is at
// capacity — the backpressure signal the HTTP layer maps to 429 +
// Retry-After.
var ErrQueueFull = errors.New("service: job queue full")

// ErrDraining rejects a submission while the manager drains for
// shutdown — the signal the HTTP layer maps to 503 + Retry-After so
// well-behaved clients back off and retry against a restarted server.
// Cache hits and singleflight attaches are still served while draining:
// they cost no new computation.
var ErrDraining = errors.New("service: draining, not accepting new jobs")

// maxRetainedJobs bounds the completed-job history kept for polling;
// oldest finished jobs are pruned first. In-flight jobs are never pruned.
const maxRetainedJobs = 1024

// Options configures a Manager. The zero value is usable: default engine,
// memory-only store, DefaultCacheEntries.
type Options struct {
	// Engine is the worker pool jobs run on; nil selects engine.Default().
	Engine *engine.Engine
	// Store is the content-addressed artifact store; nil creates a
	// memory-only store.
	Store *Store
	// CacheEntries sizes the LRU result cache: 0 means
	// DefaultCacheEntries, negative disables caching.
	CacheEntries int
	// QueueDepth bounds how many jobs may wait for an execution slot: 0
	// means DefaultQueueDepth, negative disables admission control.
	// Submissions beyond the bound fail with ErrQueueFull instead of
	// queueing without limit.
	QueueDepth int
	// PointCacheEntries sizes the point-level scenario cache (the
	// partial-grid resume store): 0 means DefaultPointCacheEntries,
	// negative disables it.
	PointCacheEntries int
	// ReplayShards sets every scenario's intra-point replay parallelism
	// (core.Scenario.ReplayShards): 0 lets the planner choose by grid
	// size, 1 forces serial replay, n > 1 requests n PDES shards per
	// replay. Results are byte-identical either way.
	ReplayShards int
	// Logger receives the manager's structured logs (job lifecycle, HTTP
	// access lines). Nil discards them — the library default, so tests
	// and embedders stay quiet unless they opt in.
	Logger *slog.Logger
	// Cluster, when set, makes the manager a member of a DHT-sharded
	// simulation cluster: specs forward to their owner node, scenario
	// grids fan points out by point digest, and computed results
	// replicate as a cooperative cache (see cluster.go). The manager
	// registers itself as the node's executor.
	Cluster *cluster.Node
}

// Manager is the job manager: it owns the result cache, the singleflight
// table of in-flight requests, and the job registry. Safe for concurrent
// use.
type Manager struct {
	eng   *engine.Engine
	store *Store
	cache *resultCache
	log   *slog.Logger
	start time.Time
	// slots bounds how many jobs execute concurrently. The engine's own
	// semaphore only bounds intra-job fan-out — its caller-runs
	// discipline executes jobs inline on saturated pools — so without
	// this gate every concurrent Submit would run a simulation on its
	// own goroutine regardless of -workers. Jobs beyond the bound queue
	// in state pending.
	slots chan struct{}

	// progs is an LRU of compiled replay programs of stored traces, keyed
	// by trace digest — the content address the artifact store already
	// hands out — so repeated sweeps over one uploaded trace compile it
	// once. LRU-bounded because a disk-tier store can resolve more
	// digests than its memory bound, and a long-lived daemon must not
	// accumulate a program per digest ever swept.
	progs *lruCache[*sim.Program]

	// points is the point-level scenario cache: completed grid points
	// keyed by per-point spec digests, consulted by the planner before
	// scheduling any simulation. It sits beside the spec-level result
	// cache — that one answers identical specs byte-for-byte, this one
	// lets overlapping specs resume each other's grids. Nil when
	// disabled.
	points *lruCache[core.ScenarioPoint]

	// queueDepth bounds how many jobs may wait for a slot (0 = no bound).
	queueDepth int

	// replayShards is Options.ReplayShards, stamped onto every scenario
	// spec the manager executes.
	replayShards int

	// node is the cluster membership (nil when standalone); replSem and
	// replWG bound and track background DHT replication (cluster.go).
	node    *cluster.Node
	replSem chan struct{}
	replWG  sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // job IDs in submission order, for listing/pruning
	inflight map[string]*Job
	seq      int64
	deduped  uint64
	queued   int    // jobs admitted but not yet holding a slot
	rejected uint64 // submissions refused with ErrQueueFull
	draining bool   // Drain called: no new computations admitted
}

// scenarioPointStore adapts the point LRU to the planner's PointCache.
type scenarioPointStore struct{ c *lruCache[core.ScenarioPoint] }

func (s scenarioPointStore) GetPoint(d string) (core.ScenarioPoint, bool) { return s.c.Get(d) }
func (s scenarioPointStore) PutPoint(d string, pt core.ScenarioPoint)     { s.c.Put(d, pt) }

// scenarioPointCache returns the manager's point-level resume store in
// the planner's shape, or nil when disabled. In a cluster the store
// also replicates fresh points into the DHT (cluster.go).
func (m *Manager) scenarioPointCache() core.PointCache {
	if m.points == nil {
		return nil
	}
	if m.node != nil {
		return clusterPointStore{scenarioPointStore{m.points}, m}
	}
	return scenarioPointStore{m.points}
}

// admit reserves an admission-queue place for a fresh job; m.mu must be
// held. Reports false — after counting the rejection — when the queue
// is full.
func (m *Manager) admitLocked() bool {
	if m.queueDepth > 0 && m.queued >= m.queueDepth {
		m.rejected++
		return false
	}
	m.queued++
	return true
}

// unqueue releases the admission-queue place (the job acquired a slot
// or was cancelled while waiting).
func (m *Manager) unqueue() {
	m.mu.Lock()
	m.queued--
	m.mu.Unlock()
}

// maxCompiledPrograms bounds the digest-keyed program cache, mirroring
// the store's memory-tier trace capacity. The bound is the backstop; the
// store's eviction hook (registered in NewManager) is what actually
// keeps the two in lockstep — a trace leaving the store drops its
// program immediately.
const maxCompiledPrograms = 1024

// compiledTrace returns the replay program for a stored trace, compiling
// on a cache miss. Concurrent misses on one digest may compile twice;
// both compilations yield equivalent immutable programs.
func (m *Manager) compiledTrace(digest string, tr *trace.Trace) (*sim.Program, error) {
	if prog, ok := m.progs.Get(digest); ok {
		return prog, nil
	}
	prog, err := sim.Compile(tr)
	if err != nil {
		return nil, err
	}
	m.progs.Put(digest, prog)
	// Re-validate after the Put: if the trace was deleted from the store
	// while we compiled, its eviction hook fired before the program
	// existed and would have deleted nothing — drop the entry now so a
	// deleted trace's program is never pinned. (An eviction that races
	// past this check fires the hook after our Put and wins anyway.)
	if !m.store.ContainsTrace(digest) {
		m.progs.Delete(digest)
	}
	return prog, nil
}

// traceCompiler adapts compiledTrace to the scenario planner's
// CompileTrace hook for one stored digest.
func (m *Manager) traceCompiler(digest string) func(*trace.Trace) (*sim.Program, error) {
	return func(tr *trace.Trace) (*sim.Program, error) {
		return m.compiledTrace(digest, tr)
	}
}

// CompiledProgramCached reports whether the digest's compiled program is
// resident — the observable the eviction tests assert on.
func (m *Manager) CompiledProgramCached(digest string) bool {
	_, ok := m.progs.Get(digest)
	return ok
}

// NewManager builds a manager from opts.
func NewManager(opts Options) (*Manager, error) {
	eng := opts.Engine
	if eng == nil {
		eng = engine.Default()
	}
	store := opts.Store
	if store == nil {
		var err error
		store, err = NewStore("")
		if err != nil {
			return nil, err
		}
	}
	entries := opts.CacheEntries
	if entries == 0 {
		entries = DefaultCacheEntries
	}
	depth := opts.QueueDepth
	if depth == 0 {
		depth = DefaultQueueDepth
	}
	if depth < 0 {
		depth = 0 // unbounded
	}
	pointEntries := opts.PointCacheEntries
	if pointEntries == 0 {
		pointEntries = DefaultPointCacheEntries
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	m := &Manager{
		eng:          eng,
		store:        store,
		cache:        newResultCache(entries),
		log:          logger,
		progs:        newLRU[*sim.Program](maxCompiledPrograms),
		start:        time.Now(),
		slots:        make(chan struct{}, eng.Workers()),
		queueDepth:   depth,
		replayShards: opts.ReplayShards,
		jobs:         make(map[string]*Job),
		inflight:     make(map[string]*Job),
	}
	if pointEntries > 0 {
		m.points = newLRU[core.ScenarioPoint](pointEntries)
	}
	// Tie the compiled-program cache to the store's capacity: a trace
	// evicted (or deleted) from the store drops its program instead of
	// pinning it until the program LRU happens to cycle.
	store.OnTraceEvict(func(digest string) { m.progs.Delete(digest) })
	if opts.Cluster != nil {
		m.attachCluster(opts.Cluster)
	}
	return m, nil
}

// Engine returns the manager's worker pool.
func (m *Manager) Engine() *engine.Engine { return m.eng }

// Store returns the manager's artifact store.
func (m *Manager) Store() *Store { return m.store }

// Submit prepares and schedules a request. Three outcomes:
//
//   - result cache hit: the returned job is already done, carrying the
//     cached bytes, and no engine work was (or will be) spawned;
//   - identical request in flight: the existing job is returned
//     (singleflight dedupe) — both submitters wait on one computation;
//   - otherwise a new job starts on the manager's engine — unless the
//     admission queue is full, which fails with ErrQueueFull (cache hits
//     and singleflight attaches are never rejected: they cost no slot).
//
// Validation and reference-resolution errors surface synchronously.
//
// In a cluster there is a fourth outcome: a scenario spec whose digest
// another node owns is forwarded there (runForwarded, cluster.go) and
// the returned bytes are served and cached verbatim — the cross-node
// singleflight. The returned Job looks the same either way.
func (m *Manager) Submit(req Request) (*Job, error) {
	return m.submit(req, true)
}

// submit is Submit with the forwarding decision explicit: the cluster
// executor resubmits received work with forward=false so ownership
// routing never cycles — the owner always computes locally.
func (m *Manager) submit(req Request, forward bool) (*Job, error) {
	t, err := req.prepare(m)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	// Singleflight before cache: while a job is in flight its result may
	// be landing in the cache concurrently, but attaching to the job is
	// always correct. Once it left the inflight table its result is
	// cached (run() fills the cache before detaching), so the two checks
	// under one lock leave no window where identical work reruns.
	if j, ok := m.inflight[t.key]; ok {
		m.deduped++
		m.mu.Unlock()
		return j, nil
	}
	if b, ok := m.cache.Get(t.key); ok {
		j := m.newJobLocked(t, true)
		m.mu.Unlock()
		j.complete(b, nil)
		return j, nil
	}
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	if !m.admitLocked() {
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	j := m.newJobLocked(t, false)
	m.inflight[t.key] = j
	m.mu.Unlock()
	if plan, ok := m.forwardTarget(req, t, forward); ok {
		go m.runForwarded(j, t, plan)
	} else {
		go m.run(j, t)
	}
	return j, nil
}

// newJobLocked registers a fresh job; m.mu must be held.
func (m *Manager) newJobLocked(t *task, cached bool) *Job {
	m.seq++
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		id:      fmt.Sprintf("job-%08d", m.seq),
		kind:    t.kind,
		key:     t.key,
		cached:  cached,
		created: time.Now(),
		state:   JobPending,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.pruneLocked()
	return j
}

// pruneLocked evicts the oldest finished jobs beyond maxRetainedJobs.
func (m *Manager) pruneLocked() {
	if len(m.order) <= maxRetainedJobs {
		return
	}
	kept := m.order[:0]
	excess := len(m.order) - maxRetainedJobs
	for _, id := range m.order {
		j := m.jobs[id]
		if excess > 0 && j.Finished() {
			delete(m.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// run executes one job and publishes its result.
func (m *Manager) run(j *Job, t *task) {
	// Wait for an execution slot — or for cancellation while queued.
	admitted := time.Now()
	select {
	case m.slots <- struct{}{}:
		m.unqueue()
		mQueueWait.ObserveSince(admitted)
		defer func() { <-m.slots }()
	case <-j.ctx.Done():
		m.unqueue()
		m.mu.Lock()
		delete(m.inflight, t.key)
		m.mu.Unlock()
		j.complete(nil, j.ctx.Err())
		m.log.LogAttrs(context.Background(), slog.LevelInfo, "job cancelled while queued",
			slog.String("job_id", j.ID()), slog.String("kind", j.Kind()))
		return
	}
	j.markRunning()
	m.log.LogAttrs(j.ctx, slog.LevelInfo, "job running",
		slog.String("job_id", j.ID()),
		slog.String("kind", j.Kind()),
		slog.String("spec_digest", j.Key()),
		slog.Duration("queue_wait", time.Since(admitted)))
	out, err := t.run(j.ctx, m)
	var payload []byte
	if err == nil {
		payload, err = json.Marshal(out)
	}
	if err == nil {
		// Fill the cache before leaving the inflight table (see Submit).
		m.cache.Put(t.key, payload)
	}
	m.mu.Lock()
	delete(m.inflight, t.key)
	m.mu.Unlock()
	j.complete(payload, err)
	attrs := []slog.Attr{
		slog.String("job_id", j.ID()),
		slog.String("kind", j.Kind()),
		slog.String("state", string(j.State())),
		slog.Duration("elapsed", time.Since(j.created)),
	}
	level := slog.LevelInfo
	if err != nil {
		level = slog.LevelWarn
		attrs = append(attrs, slog.String("error", err.Error()))
	}
	m.log.LogAttrs(context.Background(), level, "job finished", attrs...)
}

// Drain stops admitting new computations and waits for every in-flight
// job — batch and streamed — to reach a terminal state. It returns how
// many jobs were still in flight when the drain began (the flushed
// count). Cached reads, singleflight attaches, and job polling keep
// working throughout: the point is to stop new work, not to break
// waiters. If ctx expires first Drain returns its cause; the manager
// stays draining either way, so a retried Drain only waits, never
// re-admits.
// In a cluster the node drains first — it stops accepting fresh keys
// and marks every response Draining so peers age it out of their
// routing tables — and outstanding DHT replications are flushed after
// the jobs, so a departing node strands no point results.
func (m *Manager) Drain(ctx context.Context) (int, error) {
	if m.node != nil {
		m.node.Drain()
	}
	m.mu.Lock()
	m.draining = true
	flushing := len(m.inflight)
	m.mu.Unlock()
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		m.mu.Lock()
		n := len(m.inflight)
		m.mu.Unlock()
		if n == 0 {
			return flushing, m.flushReplications(ctx)
		}
		select {
		case <-ctx.Done():
			return flushing, context.Cause(ctx)
		case <-tick.C:
		}
	}
}

// Draining reports whether Drain has been called.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Job returns a job by ID.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs lists the retained jobs in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Cancel cancels a job's context and returns the job. Jobs sharing the
// computation through singleflight dedupe are all cancelled — the
// computation is one. Returns false for unknown IDs; cancelling a
// finished job is a no-op.
func (m *Manager) Cancel(id string) (*Job, bool) {
	j, ok := m.Job(id)
	if !ok {
		return nil, false
	}
	j.cancel()
	return j, true
}

// UptimeSec reports how long the manager has been serving. Cheap —
// liveness probes hit it; the full MetricsSnapshot walks the job table.
func (m *Manager) UptimeSec() float64 { return time.Since(m.start).Seconds() }

// Metrics is a point-in-time snapshot of the manager's serving counters.
type Metrics struct {
	UptimeSec    float64 `json:"uptime_sec"`
	Workers      int     `json:"workers"`
	CacheEntries int     `json:"cache_entries"`
	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	Deduped      uint64  `json:"deduped"`
	// QueueDepth is how many admitted jobs currently wait for an
	// execution slot; QueueLimit is the admission bound (0 = unbounded);
	// Rejected counts submissions refused with ErrQueueFull.
	QueueDepth int    `json:"queue_depth"`
	QueueLimit int    `json:"queue_limit"`
	Rejected   uint64 `json:"rejected"`
	// The point-level scenario cache (partial-grid resume store).
	PointCacheEntries int            `json:"point_cache_entries"`
	PointCacheHits    uint64         `json:"point_cache_hits"`
	PointCacheMisses  uint64         `json:"point_cache_misses"`
	StoredTraces      int            `json:"stored_traces"`
	StoredPlatform    int            `json:"stored_platforms"`
	Jobs              map[string]int `json:"jobs"`
	Engine            engine.Stats   `json:"engine"`
}

// MetricsSnapshot gathers the current serving counters.
func (m *Manager) MetricsSnapshot() Metrics {
	hits, misses := m.cache.Counters()
	traces, platforms := m.store.Counts()
	byState := map[string]int{}
	m.mu.Lock()
	deduped := m.deduped
	queued, rejected := m.queued, m.rejected
	for _, id := range m.order {
		byState[string(m.jobs[id].State())]++
	}
	m.mu.Unlock()
	out := Metrics{
		UptimeSec:      time.Since(m.start).Seconds(),
		Workers:        m.eng.Workers(),
		CacheEntries:   m.cache.Len(),
		CacheHits:      hits,
		CacheMisses:    misses,
		Deduped:        deduped,
		QueueDepth:     queued,
		QueueLimit:     m.queueDepth,
		Rejected:       rejected,
		StoredTraces:   traces,
		StoredPlatform: platforms,
		Jobs:           byState,
		Engine:         m.eng.Stats(),
	}
	if m.points != nil {
		out.PointCacheEntries = m.points.Len()
		out.PointCacheHits, out.PointCacheMisses = m.points.Counters()
	}
	return out
}

// ---------------------------------------------------------------------------
// Job

// JobState is a job's lifecycle position.
type JobState string

// The job lifecycle: Pending -> Running -> Done | Failed | Cancelled.
// Cache hits are born Done.
const (
	JobPending   JobState = "pending"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Job is one submitted request. All exported methods are safe for
// concurrent use.
type Job struct {
	id      string
	kind    string
	key     string
	cached  bool
	created time.Time

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu       sync.Mutex
	state    JobState
	started  time.Time
	finished time.Time
	result   []byte
	err      error
}

// ID returns the job's identifier ("job-00000001").
func (j *Job) ID() string { return j.id }

// Kind returns the request kind ("analyze", ...).
func (j *Job) Kind() string { return j.kind }

// Key returns the canonical request digest the job computes.
func (j *Job) Key() string { return j.key }

// Cached reports whether the job was answered from the result cache.
func (j *Job) Cached() bool { return j.cached }

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Finished reports whether the job reached a terminal state.
func (j *Job) Finished() bool {
	switch j.State() {
	case JobDone, JobFailed, JobCancelled:
		return true
	}
	return false
}

func (j *Job) markRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == JobPending {
		j.state = JobRunning
		j.started = time.Now()
	}
}

// complete moves the job to its terminal state and wakes every waiter.
func (j *Job) complete(result []byte, err error) {
	j.mu.Lock()
	switch {
	case err == nil:
		j.state = JobDone
		j.result = result
	case j.ctx.Err() != nil:
		j.state = JobCancelled
		j.err = j.ctx.Err()
	default:
		j.state = JobFailed
		j.err = err
	}
	j.finished = time.Now()
	j.mu.Unlock()
	j.cancel() // release the context's resources
	close(j.done)
}

// Wait blocks until the job finishes (or ctx expires) and returns the
// marshalled result.
func (j *Job) Wait(ctx context.Context) ([]byte, error) {
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return nil, j.err
	}
	return j.result, nil
}

// Status is the pollable JSON view of a job (GET /v1/jobs/{id}).
type Status struct {
	ID         string          `json:"id"`
	Kind       string          `json:"kind"`
	RequestKey string          `json:"request_digest"`
	State      JobState        `json:"state"`
	Cached     bool            `json:"cached"`
	CreatedAt  time.Time       `json:"created_at"`
	StartedAt  *time.Time      `json:"started_at,omitempty"`
	FinishedAt *time.Time      `json:"finished_at,omitempty"`
	ElapsedSec float64         `json:"elapsed_sec"`
	Error      string          `json:"error,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// Status snapshots the job. withResult embeds the result payload for
// terminal Done jobs.
func (j *Job) Status(withResult bool) Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Status{
		ID:         j.id,
		Kind:       j.kind,
		RequestKey: j.key,
		State:      j.state,
		Cached:     j.cached,
		CreatedAt:  j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		s.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.FinishedAt = &t
		s.ElapsedSec = j.finished.Sub(j.created).Seconds()
	} else {
		s.ElapsedSec = time.Since(j.created).Seconds()
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	if withResult && j.state == JobDone {
		s.Result = j.result
	}
	return s
}
