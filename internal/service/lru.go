package service

import (
	"container/list"
	"sync"
)

// lruCache is a small LRU keyed by digest strings. Values are treated as
// immutable by convention; callers must not modify what Get returns. Safe
// for concurrent use.
type lruCache[V any] struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	entries  map[string]*list.Element

	hits, misses uint64
}

type cacheItem[V any] struct {
	key   string
	value V
}

// newLRU returns an LRU holding at most capacity entries; capacity <= 0
// disables caching (every Get misses, Put is a no-op).
func newLRU[V any](capacity int) *lruCache[V] {
	return &lruCache[V]{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Get returns the cached value for key, marking the entry most recently
// used.
func (c *lruCache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheItem[V]).value, true
}

// Put inserts (or refreshes) key, evicting the least recently used entry
// beyond capacity.
func (c *lruCache[V]) Put(key string, value V) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheItem[V]).value = value
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheItem[V]{key: key, value: value})
	for c.order.Len() > c.capacity {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheItem[V]).key)
	}
}

// Delete drops key from the cache, reporting whether it was present.
func (c *lruCache[V]) Delete(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	c.order.Remove(el)
	delete(c.entries, key)
	return true
}

// Len reports how many entries are cached.
func (c *lruCache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Counters returns the lifetime hit/miss counts.
func (c *lruCache[V]) Counters() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// resultCache is the LRU of marshalled results keyed by request digest.
type resultCache = lruCache[[]byte]

func newResultCache(capacity int) *resultCache {
	return newLRU[[]byte](capacity)
}
