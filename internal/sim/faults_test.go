package sim

import (
	"errors"
	"testing"

	"repro/internal/faults"
	"repro/internal/network"
	"repro/internal/trace"
)

// deadlockTrace is a genuinely broken trace: rank 0 receives a message
// rank 2 never sends, on an otherwise healthy platform.
func deadlockTrace() *trace.Trace {
	tr := trace.New("bad", "base", 4)
	tr.Append(0, trace.Record{Kind: trace.KindCompute, Instr: 1000})
	tr.Append(0, trace.Record{Kind: trace.KindRecv, Peer: 2, Tag: 7, Bytes: 100})
	tr.Append(2, trace.Record{Kind: trace.KindCompute, Instr: 1000})
	return tr
}

// faultedPlatform is the soft-degradation testbed: every axis active at
// once (derated interconnect, jittered latency, seeded stragglers) on a
// shardable multi-node platform.
func faultedPlatform(ranks, nodes int) network.Platform {
	return pdesPlatform(ranks, nodes).WithDegradations(faults.Spec{
		DerateInter:     0.6,
		JitterFrac:      0.25,
		Stragglers:      2,
		StragglerFactor: 3,
		Seed:            11,
	})
}

// TestDegradationsIdentityByteIdentical is the golden equivalence pin:
// a Degradations spec whose every field is an identity value must digest
// and replay byte-for-byte like a platform with no spec at all — so
// pre-fault-injection results (and their content-addressed cache
// entries) stay valid.
func TestDegradationsIdentityByteIdentical(t *testing.T) {
	tr := allocRing(16, 10)
	prog, err := Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	healthy := pdesPlatform(16, 4)
	want, err := RunProgram(healthy, prog)
	if err != nil {
		t.Fatal(err)
	}
	wantDigest, err := healthy.Digest()
	if err != nil {
		t.Fatal(err)
	}
	inert := []faults.Spec{
		{DerateInter: 1},
		{DerateInter: 1, DerateIntra: 1, Seed: 42},
		{StragglerFactor: 2}, // a factor with no ranks straggles nobody
		{Seed: 9},            // a seed with nothing to perturb
	}
	for _, spec := range inert {
		plat := healthy.WithDegradations(spec)
		d, err := plat.Digest()
		if err != nil {
			t.Fatal(err)
		}
		if d != wantDigest {
			t.Fatalf("identity spec %+v changed the platform digest: %s vs %s", spec, d, wantDigest)
		}
		got, err := RunProgram(plat, prog)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, "identity-spec", want, got)
	}
}

// TestFaultReplayDeterministic: the same degraded spec replayed cold,
// replayed again, and replayed twice more on a warm recycled arena must
// produce byte-identical results — every fault draw is a pure function
// of the spec, never of allocator or scheduling state.
func TestFaultReplayDeterministic(t *testing.T) {
	tr := allocRing(16, 10)
	prog, err := Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	plat := faultedPlatform(16, 4)
	first, err := RunProgram(plat, prog)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunProgram(plat, prog)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "cold-rerun", first, second)
	arena := NewArena()
	// Interleave a healthy replay so the warm runs see dirty fault
	// buffers from a *different* spec before re-resolving their own.
	if _, err := arena.RunProgram(pdesPlatform(16, 4).WithStragglers(3), prog); err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 2; rep++ {
		warm, err := arena.RunProgram(plat, prog)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, "warm-rerun", first, warm)
	}
}

// TestFaultShardsByteIdentical: conservative PDES sharding must stay
// byte-identical to the serial replay with every soft-fault axis live.
// Fault draws are keyed on compile-time identities and hard-fault drops
// are coordinator-only, so shard count must never leak into results.
func TestFaultShardsByteIdentical(t *testing.T) {
	tr := allocRing(32, 12)
	plat := faultedPlatform(32, 4)
	checkShardsIdentical(t, "faulted-ring", plat, tr, []int{1, 2, 4, 8})
	// Round-robin mapping: nearly every transfer is inter-node, so the
	// derate and jitter paths run almost entirely on the coordinator.
	checkShardsIdentical(t, "faulted-ring-rr", plat.WithMapping(network.RoundRobinMapping()), tr, []int{2, 4})
}

// TestSoftFaultsSlowReplay: degradations must hurt, and only in their
// own lane — a derated interconnect and a straggling rank each push the
// finish time past healthy, and the straggler's own compute time scales
// by exactly its factor.
func TestSoftFaultsSlowReplay(t *testing.T) {
	tr := allocRing(16, 10)
	prog, err := Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	healthy := pdesPlatform(16, 4)
	base, err := RunProgram(healthy, prog)
	if err != nil {
		t.Fatal(err)
	}

	derated, err := RunProgram(healthy.WithDerateInter(0.5), prog)
	if err != nil {
		t.Fatal(err)
	}
	if derated.FinishSec <= base.FinishSec {
		t.Fatalf("derate 0.5 finish %.9f, healthy %.9f — derating did not slow the run", derated.FinishSec, base.FinishSec)
	}

	jittered, err := RunProgram(healthy.WithJitter(0.5), prog)
	if err != nil {
		t.Fatal(err)
	}
	if jittered.FinishSec <= base.FinishSec {
		t.Fatalf("jitter 0.5 finish %.9f, healthy %.9f — jitter never drew a delay", jittered.FinishSec, base.FinishSec)
	}

	slow := healthy.WithDegradations(faults.Spec{StragglerFactor: 4, StragglerRanks: []int{3}})
	straggled, err := RunProgram(slow, prog)
	if err != nil {
		t.Fatal(err)
	}
	if straggled.FinishSec <= base.FinishSec {
		t.Fatalf("straggler finish %.9f, healthy %.9f — straggler did not slow the run", straggled.FinishSec, base.FinishSec)
	}
	got := straggled.Ranks[3].ComputeSec
	want := base.Ranks[3].ComputeSec * 4
	if !f64bits(got, want) {
		t.Fatalf("straggler rank 3 compute %.9f, want exactly 4x healthy (%.9f)", got, want)
	}
	if !f64bits(straggled.Ranks[5].ComputeSec, base.Ranks[5].ComputeSec) {
		t.Fatal("non-straggler rank 5 compute time changed")
	}
}

// TestHardFaultsDeadlockFaultInduced: severing a required path stalls
// the replay with a DeadlockError that *identifies itself* as
// fault-induced (Dropped > 0), and the sharded replay reports the
// identical stall. A genuine trace deadlock keeps Dropped == 0 so the
// two are never confused.
func TestHardFaultsDeadlockFaultInduced(t *testing.T) {
	tr := allocRing(8, 6)
	prog, err := Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string, plat network.Platform) *DeadlockError {
		t.Helper()
		_, err := RunProgram(plat, prog)
		var dl *DeadlockError
		if !errors.As(err, &dl) {
			t.Fatalf("%s: replay over a severed platform returned %v, want DeadlockError", label, err)
		}
		if !dl.FaultInduced() || dl.Dropped == 0 {
			t.Fatalf("%s: stall not marked fault-induced: %+v", label, dl)
		}
		if len(dl.Blocked) == 0 {
			t.Fatalf("%s: no blocked ranks reported", label)
		}
		return dl
	}
	// Downed NIC: node 1 (ranks 2-3 under block mapping) unreachable.
	nic := check("nic-down", pdesPlatform(8, 4).WithDegradations(faults.Spec{DownNodes: []int{1}}))
	// Explicit downed link: severs only the node 1 -> node 2 hop.
	check("link-down", pdesPlatform(8, 4).WithDegradations(faults.Spec{DownLinks: [][2]int{{1, 2}}}))
	// Seeded draw: with every inter-node pair down the draw cannot miss.
	check("link-down-drawn", pdesPlatform(8, 4).WithDegradations(faults.Spec{LinkDown: 6, Seed: 5}))

	// The sharded replay must stall identically to serial: same dropped
	// count, same blocked set.
	arena := NewArena()
	for _, shards := range []int{2, 4} {
		_, err := arena.RunProgramShards(pdesPlatform(8, 4).WithDegradations(faults.Spec{DownNodes: []int{1}}), prog, shards)
		var dl *DeadlockError
		if !errors.As(err, &dl) {
			t.Fatalf("shards=%d: %v, want DeadlockError", shards, err)
		}
		if dl.Dropped != nic.Dropped {
			t.Fatalf("shards=%d dropped %d transfers, serial dropped %d", shards, dl.Dropped, nic.Dropped)
		}
		if len(dl.Blocked) != len(nic.Blocked) {
			t.Fatalf("shards=%d blocked %v, serial blocked %v", shards, dl.Blocked, nic.Blocked)
		}
		for i := range dl.Blocked {
			if dl.Blocked[i] != nic.Blocked[i] {
				t.Fatalf("shards=%d blocked %v, serial blocked %v", shards, dl.Blocked, nic.Blocked)
			}
		}
	}

	// A genuine deadlock — a receive whose send never exists — stays a
	// plain stall: Dropped == 0, FaultInduced false, even with faults on.
	bad := deadlockTrace()
	badProg, err := Compile(bad)
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunProgram(pdesPlatform(4, 2).WithDerateInter(0.5), badProg)
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("genuine deadlock returned %v", err)
	}
	if dl.FaultInduced() || dl.Dropped != 0 {
		t.Fatalf("genuine deadlock misreported as fault-induced: %+v", dl)
	}
}
