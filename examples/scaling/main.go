// Scaling study: how do the overlap benefits evolve with the number of
// processes? The paper's motivation is large-scale behaviour
// ("communication delays might substantially decrease the application
// performance, specially at large scale"); this example runs Sweep3D and
// CG across process counts and shows two effects:
//
//   - the wavefront's ideal-pattern speedup *grows* with scale (deeper
//     pipelines profit more from finer-grain chunk dependencies),
//   - CG's real-pattern speedup stays roughly flat (it hides a fixed
//     per-iteration exchange).
//
// Run with:
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/tracer"
)

func main() {
	sizes := []int{4, 8, 16, 32}
	for _, name := range []string{"sweep3d", "cg"} {
		fmt.Printf("== %s ==\n", name)
		fmt.Printf("%-8s %12s %14s %14s\n", "ranks", "base (ms)", "speedup real", "speedup ideal")
		for _, ranks := range sizes {
			entry, _ := apps.ByName(name, ranks)
			rep, err := core.Analyze(entry.App, ranks, network.TestbedFor(name, ranks), tracer.DefaultConfig())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8d %12.3f %14.3f %14.3f\n",
				ranks, rep.Base.FinishSec*1e3, rep.SpeedupReal, rep.SpeedupIdeal)
		}
		fmt.Println()
	}
	fmt.Println("(the Sweep3D ideal column growing with scale is the pipeline effect the")
	fmt.Println(" paper attributes to 'finer-grain dependencies among processes')")
}
