// Package cluster is the peer layer that turns a set of simd daemons
// into one cooperative simulation cluster. It is a compact Kademlia:
// nodes carry 160-bit IDs, keep each other in XOR-distance k-buckets
// with least-recently-seen eviction, and speak PING / STORE /
// FIND_NODE / FIND_VALUE-shaped RPCs over a pluggable transport (an
// in-process network for tests and CI, HTTP under /v1/cluster/ in
// production). Everything the service layer stores is already
// content-addressed — SHA-256 trace, platform, scenario, and per-point
// digests — so those digests are the DHT keys: a key's K closest nodes
// replicate its value, the closest one owns the computation, and a
// grid's points scatter across the cluster by digest.
//
// The package is deliberately below the service layer: it knows about
// keys, blobs, and one opaque "exec" RPC, never about scenarios. The
// service glue (forwarding, fan-out, the cooperative point cache) lives
// in internal/service; the HTTP client-side transport lives in
// internal/service/client so inter-node calls reuse the client's
// RetryPolicy.
package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/bits"
	"strings"
)

// IDBytes is the width of a node/key identifier: 160 bits, Kademlia's
// classic size and a prefix of every SHA-256 content digest.
const IDBytes = 20

// ID is a 160-bit identifier in the shared node/key space. Nodes and
// keys are compared by XOR distance, so a key's owners are simply the
// nodes whose IDs its digest lands closest to.
type ID [IDBytes]byte

// NodeID derives a stable node ID from a human-chosen name (the -node-id
// flag). The "node:" prefix keeps operator names out of the content-key
// space: a node named after a digest string still hashes elsewhere.
func NodeID(name string) ID {
	sum := sha256.Sum256([]byte("node:" + name))
	var id ID
	copy(id[:], sum[:IDBytes])
	return id
}

// KeyID maps a service-layer key into the ID space. Content digests
// ("sha256:<64 hex>") are already uniform hashes, so their first 160
// bits are used directly — the DHT key of an artifact is literally a
// prefix of its content address. Anything else is hashed.
func KeyID(key string) ID {
	var id ID
	if hexPart, ok := strings.CutPrefix(key, "sha256:"); ok && len(hexPart) == 64 {
		if raw, err := hex.DecodeString(hexPart[:2*IDBytes]); err == nil {
			copy(id[:], raw)
			return id
		}
	}
	sum := sha256.Sum256([]byte(key))
	copy(id[:], sum[:IDBytes])
	return id
}

// IsZero reports whether the ID is the (invalid) zero value.
func (id ID) IsZero() bool { return id == ID{} }

// String renders the ID as 40 hex digits.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// MarshalText implements encoding.TextMarshaler (IDs travel in JSON
// RPCs and status documents as hex strings).
func (id ID) MarshalText() ([]byte, error) {
	out := make([]byte, hex.EncodedLen(len(id)))
	hex.Encode(out, id[:])
	return out, nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (id *ID) UnmarshalText(b []byte) error {
	if hex.DecodedLen(len(b)) != IDBytes {
		return fmt.Errorf("cluster: ID %q: want %d hex digits", b, 2*IDBytes)
	}
	_, err := hex.Decode(id[:], b)
	return err
}

// Distance returns the XOR metric between two IDs. XOR is a genuine
// metric (symmetric, zero iff equal, triangle inequality holds
// bitwise), and it is unidirectional: for any target and distance there
// is exactly one ID at that distance, so lookups from different nodes
// converge on the same owners.
func Distance(a, b ID) ID {
	var d ID
	for i := range d {
		d[i] = a[i] ^ b[i]
	}
	return d
}

// Closer reports whether a is strictly closer to target than b in the
// XOR metric (big-endian comparison of the distances).
func Closer(target, a, b ID) bool {
	for i := range target {
		da, db := a[i]^target[i], b[i]^target[i]
		if da != db {
			return da < db
		}
	}
	return false
}

// CompareDistance orders a and b by distance to target: -1 if a is
// closer, +1 if b is, 0 at equal distance (which means a == b).
func CompareDistance(target, a, b ID) int {
	da, db := Distance(target, a), Distance(target, b)
	return bytes.Compare(da[:], db[:])
}

// BucketIndex returns which k-bucket the other ID falls into relative
// to self: the index of the highest differing bit, 0 for the farthest
// half of the space down to IDBits-1 for the nearest non-equal IDs.
// Equal IDs share no bucket; the call returns -1.
func BucketIndex(self, other ID) int {
	for i := range self {
		if d := self[i] ^ other[i]; d != 0 {
			return 8*i + bits.LeadingZeros8(d)
		}
	}
	return -1
}

// IDBits is the number of k-buckets a routing table holds — one per
// possible highest-differing-bit position.
const IDBits = 8 * IDBytes
