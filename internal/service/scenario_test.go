// Golden equivalence and caching tests of the scenario endpoint: the
// acceptance criteria of the unified Scenario API. Each legacy endpoint
// must serve bytes identical to its scenario-spec translation, and a
// repeated scenario submission must be served from cache byte-identically
// with zero new engine jobs.
package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/tracer"
)

// rawScenarioResult mirrors core.ScenarioResult but keeps the per-point
// payloads as raw bytes, so byte-level comparisons against the legacy
// endpoints see the exact served JSON.
type rawScenarioResult struct {
	PlatformDigest string `json:"platform_digest"`
	Points         []struct {
		Flavors []core.FlavorMeasure `json:"flavors"`
		WhatIf  json.RawMessage      `json:"whatif"`
		Report  json.RawMessage      `json:"report"`
	} `json:"points"`
}

// TestScenarioCrossProductCached is the headline acceptance path: one
// spec with two sweep axes (bandwidth × mapping) executes as one
// cross-product grid, and resubmitting the same spec is served from
// cache byte-identically with zero new engine jobs.
func TestScenarioCrossProductCached(t *testing.T) {
	mgr, cl := newService(t, 4)
	ctx := context.Background()
	req := service.ScenarioRequest{
		App: "cg", Ranks: 8,
		Platform: &service.PlatformSpec{Preset: "marenostrum-4x"},
		Axes: []core.Axis{
			core.BandwidthAxis(125, 500),
			core.MappingAxis("block", "rr"),
		},
		Output: "traffic",
	}
	first, err := cl.ScenarioRaw(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	var res core.ScenarioResult
	if err := json.Unmarshal(first, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("%d grid points, want 4 (2 bandwidths x 2 mappings)", len(res.Points))
	}
	if res.SpecDigest == "" || res.Points[0].Coords[0].Axis != core.AxisBandwidth {
		t.Fatalf("malformed result: %+v", res)
	}
	afterFirst := mgr.Engine().Stats()
	second, err := cl.ScenarioRaw(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("cached scenario response not byte-identical")
	}
	if afterSecond := mgr.Engine().Stats(); afterSecond.Started != afterFirst.Started {
		t.Fatalf("cached scenario spawned engine jobs: %d -> %d", afterFirst.Started, afterSecond.Started)
	}
	// Equivalent spelling — the same platform inline instead of by preset
	// name — must also hit the cache (canonical spec digests collapse).
	before := mgr.Engine().Stats()
	plat := res.PlatformDigest
	respell := req
	respell.Platform = &service.PlatformSpec{Digest: plat}
	third, err := cl.ScenarioRaw(ctx, respell)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, third) {
		t.Fatal("platform-digest spelling returned different bytes")
	}
	if after := mgr.Engine().Stats(); after.Started != before.Started {
		t.Fatal("equivalent spelling re-simulated instead of hitting the cache")
	}
}

// TestAnalyzeIsScenarioTranslation: POST /v1/analyze serves exactly the
// report a zero-axis report-output scenario embeds in its single point.
func TestAnalyzeIsScenarioTranslation(t *testing.T) {
	_, cl := newService(t, 2)
	ctx := context.Background()
	legacy, err := cl.AnalyzeRaw(ctx, service.AnalyzeRequest{App: "cg", Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := cl.ScenarioRaw(ctx, service.ScenarioRequest{App: "cg", Ranks: 4, Output: "report"})
	if err != nil {
		t.Fatal(err)
	}
	var res rawScenarioResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("%d points, want 1", len(res.Points))
	}
	if !bytes.Equal(legacy, res.Points[0].Report) {
		t.Fatalf("legacy analyze differs from scenario translation:\n%s\n%s", legacy, res.Points[0].Report)
	}
}

// TestWhatIfIsScenarioTranslation: POST /v1/whatif == the scenario
// point's whatif payload, byte for byte.
func TestWhatIfIsScenarioTranslation(t *testing.T) {
	_, cl := newService(t, 2)
	ctx := context.Background()
	wi, err := cl.WhatIf(ctx, service.WhatIfRequest{App: "cg", Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := json.Marshal(wi)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := cl.ScenarioRaw(ctx, service.ScenarioRequest{App: "cg", Ranks: 4, Output: "whatif"})
	if err != nil {
		t.Fatal(err)
	}
	var res rawScenarioResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("%d points, want 1", len(res.Points))
	}
	if !bytes.Equal(legacy, res.Points[0].WhatIf) {
		t.Fatalf("legacy whatif differs from scenario translation:\n%s\n%s", legacy, res.Points[0].WhatIf)
	}
}

// TestBandwidthSweepIsScenarioTranslation: the legacy sweep response is
// reconstructible byte-for-byte from a bandwidth-axis scenario.
func TestBandwidthSweepIsScenarioTranslation(t *testing.T) {
	_, cl := newService(t, 2)
	ctx := context.Background()
	bandwidths := []float64{50, 250, 1000}
	legacy, err := cl.SweepBandwidth(ctx, service.BandwidthSweepRequest{
		App: "cg", Ranks: 4, Bandwidths: bandwidths,
	})
	if err != nil {
		t.Fatal(err)
	}
	legacyJSON, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	scen, err := cl.Scenario(ctx, service.ScenarioRequest{
		App: "cg", Ranks: 4,
		Flavors: []string{"overlap-real"},
		Axes:    []core.Axis{core.BandwidthAxis(bandwidths...)},
	})
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := &core.WireBandwidthSweep{
		App:            scen.App,
		Flavor:         string(scen.Points[0].Flavors[0].Flavor),
		TraceDigest:    scen.Points[0].Flavors[0].TraceDigest,
		PlatformDigest: scen.PlatformDigest,
	}
	for i, pt := range scen.Points {
		rebuilt.Points = append(rebuilt.Points, core.WireSweepPoint{
			BandwidthMBps: bandwidths[i],
			FinishSec:     pt.Flavors[0].FinishSec,
		})
	}
	rebuiltJSON, err := json.Marshal(rebuilt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacyJSON, rebuiltJSON) {
		t.Fatalf("legacy bandwidth sweep differs from scenario translation:\n%s\n%s", legacyJSON, rebuiltJSON)
	}
}

// TestMappingSweepIsScenarioTranslation: the legacy mapping sweep is
// reconstructible byte-for-byte from a mapping-axis traffic scenario.
func TestMappingSweepIsScenarioTranslation(t *testing.T) {
	_, cl := newService(t, 2)
	ctx := context.Background()
	legacy, err := cl.SweepMapping(ctx, service.MappingSweepRequest{
		App: "cg", Ranks: 8,
		Platform: &service.PlatformSpec{Preset: "marenostrum-4x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	legacyJSON, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	scen, err := cl.Scenario(ctx, service.ScenarioRequest{
		App: "cg", Ranks: 8,
		Platform: &service.PlatformSpec{Preset: "marenostrum-4x"},
		Flavors:  []string{"base", "overlap-real"},
		Axes:     []core.Axis{core.MappingAxis("block", "rr")},
		Output:   "traffic",
	})
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := &core.WireMappingSweep{
		App:            scen.App,
		Ranks:          scen.Ranks,
		PlatformDigest: scen.PlatformDigest,
	}
	for _, pt := range scen.Points {
		base, real := pt.Flavors[0], pt.Flavors[1]
		rebuilt.Points = append(rebuilt.Points, core.WireMappingPoint{
			Mapping:       pt.Coords[0].Value,
			BaseFinishSec: base.FinishSec,
			RealFinishSec: real.FinishSec,
			SpeedupReal:   metrics.Speedup(base.FinishSec, real.FinishSec),
			IntraBytes:    base.Traffic.IntraBytes,
			InterBytes:    base.Traffic.InterBytes,
		})
	}
	rebuiltJSON, err := json.Marshal(rebuilt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacyJSON, rebuiltJSON) {
		t.Fatalf("legacy mapping sweep differs from scenario translation:\n%s\n%s", legacyJSON, rebuiltJSON)
	}
}

// TestScenarioTraceWorkload runs a scenario over an uploaded trace and
// checks it matches the legacy trace-mode sweep, that the compiled
// program lands in the digest-keyed cache, and that deleting the trace
// drops the program (the store-eviction tie-in, via the HTTP surface).
func TestScenarioTraceWorkload(t *testing.T) {
	mgr, cl := newService(t, 2)
	ctx := context.Background()
	entry, _ := apps.ByName("cg", 4)
	run, err := tracer.Trace("cg", 4, tracer.DefaultConfig(), entry.App.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	info, err := cl.UploadTrace(ctx, run.BaseTrace())
	if err != nil {
		t.Fatal(err)
	}
	bandwidths := []float64{50, 250, 1000}
	legacy, err := cl.SweepBandwidth(ctx, service.BandwidthSweepRequest{
		Trace: info.Digest, Bandwidths: bandwidths,
	})
	if err != nil {
		t.Fatal(err)
	}
	scen, err := cl.Scenario(ctx, service.ScenarioRequest{
		Trace: info.Digest,
		Axes:  []core.Axis{core.BandwidthAxis(bandwidths...)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if scen.TraceDigest != info.Digest || scen.App != "cg" {
		t.Fatalf("scenario workload %+v", scen)
	}
	for i, pt := range scen.Points {
		if pt.Flavors[0].FinishSec != legacy.Points[i].FinishSec {
			t.Fatalf("point %d: scenario %g, legacy %g", i, pt.Flavors[0].FinishSec, legacy.Points[i].FinishSec)
		}
	}
	if !mgr.CompiledProgramCached(info.Digest) {
		t.Fatal("stored-trace scenario did not populate the program cache")
	}
	// Deleting the trace drops its compiled program too.
	if err := cl.DeleteTrace(ctx, info.Digest); err != nil {
		t.Fatal(err)
	}
	if mgr.CompiledProgramCached(info.Digest) {
		t.Fatal("deleted trace's compiled program still cached")
	}
	if err := cl.DeleteTrace(ctx, info.Digest); err == nil {
		t.Fatal("deleting an unknown trace succeeded")
	}
}

// TestScenarioRequestValidation rejects malformed scenario specs without
// touching the engine.
func TestScenarioRequestValidation(t *testing.T) {
	mgr, cl := newService(t, 1)
	ctx := context.Background()
	before := mgr.Engine().Stats()
	big := make([]int, 40)
	for i := range big {
		big[i] = i + 1
	}
	wide := make([]int, 30)
	for i := range wide {
		wide[i] = i + 1
	}
	cases := []service.ScenarioRequest{
		{}, // no workload
		{App: "cg", Ranks: 4, Trace: "sha256:" + strings.Repeat("0", 64)}, // both workloads
		{App: "nonesuch", Ranks: 4},
		{App: "cg", Ranks: 4, Output: "everything"},
		{App: "cg", Ranks: 4, Flavors: []string{"quantum"}},
		{App: "cg", Ranks: 4, Axes: []core.Axis{{Kind: core.AxisBandwidth}}},                       // empty axis
		{App: "cg", Ranks: 4, Axes: []core.Axis{core.ChunksAxis(big...), core.BusesAxis(wide...)}}, // 1200-point grid
		{App: "cg", Ranks: 4, Axes: []core.Axis{core.RanksAxis(4096)}},                             // over maxRanks
		{Trace: "sha256:" + strings.Repeat("0", 64)},                                               // unknown trace
	}
	for i, req := range cases {
		if _, err := cl.Scenario(ctx, req); err == nil {
			t.Errorf("case %d (%+v) accepted", i, req)
		}
	}
	if after := mgr.Engine().Stats(); after.Started != before.Started {
		t.Fatalf("invalid scenarios spawned engine jobs: %d -> %d", before.Started, after.Started)
	}
}
