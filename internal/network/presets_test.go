package network

import (
	"math"
	"strings"
	"testing"
)

func TestPresetsAllValid(t *testing.T) {
	// Every listed name must resolve through PlatformPreset and validate;
	// the name list and the builders live in one table, so this also
	// proves they cannot drift.
	for _, name := range PresetNames() {
		p, err := PlatformPreset(name, 16)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", name, err)
		}
		if p.Processors != 16 {
			t.Fatalf("%s: processors=%d", name, p.Processors)
		}
		if desc := PresetDescriptions()[name]; desc == "" {
			t.Fatalf("%s: no description", name)
		}
		// Flat presets must also resolve through the legacy entry point
		// and agree with their degenerate platform form.
		cfg, err := Preset(name, 16)
		if err != nil {
			if !strings.Contains(err.Error(), "hierarchical") {
				t.Fatalf("%s: %v", name, err)
			}
			if !p.MultiNode() {
				t.Fatalf("%s rejected as hierarchical but is single-rank-per-node", name)
			}
			continue
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", name, err)
		}
		if got := cfg.Platform(); got.Inter != p.Inter || got.Nodes != p.Nodes {
			t.Fatalf("%s: flat and platform forms disagree: %+v vs %+v", name, got, p)
		}
	}
}

func TestPresetHierarchicalShapes(t *testing.T) {
	for _, tc := range []struct {
		name         string
		procs, nodes int
		intraFaster  bool
	}{
		{"marenostrum-4x", 16, 4, true},
		{"fatnode-smp", 64, 4, true},
	} {
		p, err := PlatformPreset(tc.name, tc.procs)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if p.Nodes != tc.nodes {
			t.Errorf("%s: nodes=%d want %d", tc.name, p.Nodes, tc.nodes)
		}
		if !p.MultiNode() {
			t.Errorf("%s: not multi-node", tc.name)
		}
		if tc.intraFaster && !(p.Intra.BandwidthMBps > p.Inter.BandwidthMBps && p.Intra.LatencySec < p.Inter.LatencySec) {
			t.Errorf("%s: intra link not faster than inter: %+v vs %+v", tc.name, p.Intra, p.Inter)
		}
	}
}

func TestPresetUnknown(t *testing.T) {
	if _, err := Preset("quantum-entangled", 4); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestPresetOrdering(t *testing.T) {
	mn, _ := Preset("marenostrum", 2)
	qdr, _ := Preset("ib-qdr", 2)
	qdr4, _ := Preset("ib-qdr-4x", 2)
	ge, _ := Preset("gige", 2)
	if !(qdr4.BandwidthMBps > qdr.BandwidthMBps && qdr.BandwidthMBps > mn.BandwidthMBps && mn.BandwidthMBps > ge.BandwidthMBps) {
		t.Fatal("preset bandwidth ordering broken")
	}
	if qdr.LatencySec >= mn.LatencySec {
		t.Fatal("InfiniBand latency should beat Myrinet-era latency")
	}
	ideal, _ := Preset("ideal", 2)
	if !math.IsInf(ideal.BandwidthMBps, 1) || ideal.LatencySec != 0 {
		t.Fatalf("ideal preset: %+v", ideal)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := TestbedFor("cg", 64)
	var sb strings.Builder
	if err := orig.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Fatalf("round trip: got %+v want %+v", got, orig)
	}
}

func TestJSONRoundTripInfiniteBandwidth(t *testing.T) {
	orig := Testbed(4).InfiniteBandwidth()
	var sb strings.Builder
	if err := orig.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"inf"`) {
		t.Fatalf("infinite bandwidth not encoded as string:\n%s", sb.String())
	}
	got, err := ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got.BandwidthMBps, 1) {
		t.Fatalf("bandwidth lost: %v", got.BandwidthMBps)
	}
}

func TestReadJSONRejectsBadInput(t *testing.T) {
	cases := []string{
		``,
		`{`,
		`{"bandwidth_mbps": "fast"}`,
		`{"processors": 2, "latency_sec": 0, "mips": 100, "relative_speed": 1}`, // missing bandwidth
		`{"processors": 2, "latency_sec": 0, "bandwidth_mbps": 100, "mips": 0, "relative_speed": 1}`,
		`{"processors": 2, "bandwidth_mbps": 100, "mips": 100, "relative_speed": 1, "unknown_field": 3}`,
		`{"processors": 2, "bandwidth_mbps": true, "mips": 100, "relative_speed": 1}`,
	}
	for i, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %s", i, in)
		}
	}
}
