package tracer

import (
	"testing"

	"repro/internal/trace"
)

// haloApp exchanges a buffer bidirectionally with non-blocking transfers:
// post, send, wait, consume next iteration.
func haloApp(n, iters int, step int64) func(p *Proc) {
	return func(p *Proc) {
		me := p.Rank()
		peer := 1 - me
		out := p.NewArray("out", n)
		in := p.NewArray("in", n)
		for it := 0; it < iters; it++ {
			if it > 0 {
				for i := 0; i < n; i++ {
					_ = in.Load(i)
				}
			}
			p.Compute(step)
			for i := 0; i < n; i++ {
				out.Store(i, float64(it*n+i))
			}
			req := p.Irecv(in, peer, 7)
			p.Isend(peer, 7, out)
			req.Wait()
		}
	}
}

func TestNonblockingEventsRecorded(t *testing.T) {
	run, err := Trace("halo", 2, DefaultConfig(), haloApp(16, 3, 1000))
	if err != nil {
		t.Fatal(err)
	}
	var posts, waits, isends int
	for _, e := range run.Logs[0].Events {
		switch e.Kind {
		case EvIRecvPost:
			posts++
			if e.Elems != 16 || e.Handle == 0 {
				t.Errorf("bad post event: %+v", e)
			}
		case EvRecvWait:
			waits++
		case EvISend:
			isends++
		}
	}
	if posts != 3 || waits != 3 || isends != 3 {
		t.Fatalf("posts=%d waits=%d isends=%d, want 3 each", posts, waits, isends)
	}
}

func TestNonblockingDataMoves(t *testing.T) {
	err := func() error {
		_, err := Trace("halo", 2, DefaultConfig(), func(p *Proc) {
			out := p.NewArray("o", 4)
			in := p.NewArray("i", 4)
			for i := 0; i < 4; i++ {
				out.Store(i, float64(p.Rank()*100+i))
			}
			req := p.Irecv(in, 1-p.Rank(), 0)
			p.Isend(1-p.Rank(), 0, out)
			req.Wait()
			for i := 0; i < 4; i++ {
				want := float64((1-p.Rank())*100 + i)
				if got := in.Load(i); got != want {
					panic("wrong data")
				}
			}
		})
		return err
	}()
	if err != nil {
		t.Fatal(err)
	}
}

func TestDoubleWaitIsNoop(t *testing.T) {
	run, err := Trace("halo", 2, DefaultConfig(), func(p *Proc) {
		a := p.NewArray("a", 2)
		if p.Rank() == 0 {
			a.Store(0, 1)
			a.Store(1, 2)
			p.Isend(1, 0, a)
		} else {
			req := p.Irecv(a, 0, 0)
			req.Wait()
			req.Wait() // must not record a second wait
			_ = a.Load(0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	waits := 0
	for _, e := range run.Logs[1].Events {
		if e.Kind == EvRecvWait {
			waits++
		}
	}
	if waits != 1 {
		t.Fatalf("waits=%d, want 1", waits)
	}
}

func TestNonblockingBaseTraceStructure(t *testing.T) {
	run, err := Trace("halo", 2, DefaultConfig(), haloApp(16, 3, 1000))
	if err != nil {
		t.Fatal(err)
	}
	base := run.BaseTrace()
	if err := base.Validate(); err != nil {
		t.Fatalf("base invalid: %v", err)
	}
	s := base.Stats()
	if s.IRecvs != 6 || s.Waits != 6 {
		t.Fatalf("irecvs=%d waits=%d, want 6 each", s.IRecvs, s.Waits)
	}
	// All sends are non-blocking ISend records.
	for r := 0; r < 2; r++ {
		for _, rec := range base.Ranks[r].Records {
			if rec.Kind == trace.KindSend {
				t.Fatalf("blocking send in non-blocking app: %+v", rec)
			}
		}
	}
}

func TestNonblockingOverlapTraces(t *testing.T) {
	run, err := Trace("halo", 2, DefaultConfig(), haloApp(16, 3, 1000))
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range []*trace.Trace{run.OverlapReal(), run.OverlapIdeal()} {
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", tr.Flavor, err)
		}
		s := tr.Stats()
		// 3 exchanges per rank, 4 chunks each: 24 chunk messages.
		if s.Messages != 24 {
			t.Fatalf("%s: messages=%d, want 24", tr.Flavor, s.Messages)
		}
		if s.IRecvs != 24 || s.Waits != 24 {
			t.Fatalf("%s: irecvs=%d waits=%d, want 24", tr.Flavor, s.IRecvs, s.Waits)
		}
	}
}

func TestBufferNames(t *testing.T) {
	run, err := Trace("halo", 2, DefaultConfig(), haloApp(8, 2, 100))
	if err != nil {
		t.Fatal(err)
	}
	names := run.BufferNames()
	if len(names) != 2 || names[0] != "in" || names[1] != "out" {
		t.Fatalf("buffer names: %v", names)
	}
}

func TestOverlapSelective(t *testing.T) {
	run, err := Trace("halo", 2, DefaultConfig(), haloApp(64, 3, 100_000))
	if err != nil {
		t.Fatal(err)
	}
	sel := run.OverlapSelective(map[string]bool{"out": true})
	if err := sel.Validate(); err != nil {
		t.Fatalf("selective trace invalid: %v", err)
	}
	if sel.Flavor != "overlap-selective" {
		t.Fatalf("flavor=%q", sel.Flavor)
	}
	// The selective trace must differ from both pure flavours: "out"
	// gets the ideal send schedule while the waits keep the measured
	// first-load placement.
	real := run.OverlapReal()
	ideal := run.OverlapIdeal()
	if tracesEqual(sel, real) {
		t.Fatal("selective trace equals overlap-real")
	}
	if tracesEqual(sel, ideal) {
		t.Fatal("selective trace equals overlap-ideal")
	}
}

func tracesEqual(a, b *trace.Trace) bool {
	if a.NumRanks != b.NumRanks {
		return false
	}
	for r := range a.Ranks {
		if len(a.Ranks[r].Records) != len(b.Ranks[r].Records) {
			return false
		}
		for i := range a.Ranks[r].Records {
			if a.Ranks[r].Records[i] != b.Ranks[r].Records[i] {
				return false
			}
		}
	}
	return true
}
