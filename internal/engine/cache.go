package engine

import (
	"sync"

	"repro/internal/tracer"
)

// TraceCache deduplicates tracer runs across experiments: the first request
// for a (name, ranks, config) triple executes the application under
// instrumentation, every later or concurrent request for the same triple
// shares the one cached *tracer.Run. Concurrent first requests are
// single-flighted — the application is traced exactly once.
//
// Cached runs are shared across goroutines; callers must treat them as
// immutable, which the tracer API guarantees (see tracer.Run). Variant
// building goes through copy-on-write helpers such as Run.WithChunks.
//
// The key deliberately excludes the kernel function: kernels are not
// comparable, so the cache trusts the application name to identify the
// kernel, the invariant the apps registry maintains. Do not share one
// cache between distinct kernels registered under one name.
type TraceCache struct {
	mu sync.Mutex
	m  map[traceKey]*traceEntry
}

type traceKey struct {
	name  string
	ranks int
	cfg   tracer.Config
}

type traceEntry struct {
	once sync.Once
	run  *tracer.Run
	err  error
}

// NewTraceCache returns an empty cache.
func NewTraceCache() *TraceCache {
	return &TraceCache{m: map[traceKey]*traceEntry{}}
}

// Trace returns the cached run for (name, ranks, cfg), tracing the
// application on a miss. Failed traces are cached too: retrying a
// deterministic failure would only repeat it.
func (c *TraceCache) Trace(name string, ranks int, cfg tracer.Config, kernel func(p *tracer.Proc)) (*tracer.Run, error) {
	key := traceKey{name: name, ranks: ranks, cfg: cfg}
	c.mu.Lock()
	ent, ok := c.m[key]
	if !ok {
		ent = &traceEntry{}
		c.m[key] = ent
	}
	c.mu.Unlock()
	ent.once.Do(func() {
		ent.run, ent.err = tracer.Trace(name, ranks, cfg, kernel)
	})
	return ent.run, ent.err
}

// Len reports how many distinct runs the cache holds (including cached
// failures).
func (c *TraceCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Purge empties the cache.
func (c *TraceCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = map[traceKey]*traceEntry{}
}
