package platformflag

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/network"
)

func resolve(t *testing.T, args []string, app string, ranks int) (network.Platform, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f.Resolve(app, ranks)
}

func TestResolveDefaultIsCalibratedTestbed(t *testing.T) {
	p, err := resolve(t, nil, "sweep3d", 16)
	if err != nil {
		t.Fatal(err)
	}
	want := network.TestbedFor("sweep3d", 16).Platform()
	if p.Buses != want.Buses || p.Inter != want.Inter || p.Nodes != 16 {
		t.Fatalf("default platform %+v, want %+v", p, want)
	}
}

func TestResolvePresetAndOverrides(t *testing.T) {
	p, err := resolve(t, []string{"-preset", "marenostrum-4x", "-map", "rr", "-bw", "500", "-lat", "2", "-buses", "7"}, "cg", 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes != 4 || p.Mapping.Kind != network.MapRoundRobin {
		t.Fatalf("preset/mapping not applied: %+v", p)
	}
	if p.Inter.BandwidthMBps != 500 || p.Inter.LatencySec != 2e-6 || p.Buses != 7 {
		t.Fatalf("overrides not applied: %+v", p)
	}
	// Overrides must not touch the intra link.
	if p.Intra.BandwidthMBps != 6000 {
		t.Fatalf("intra link clobbered: %+v", p.Intra)
	}
}

func TestResolvePlatformFileWinsOverPreset(t *testing.T) {
	plat, err := network.PlatformPreset("fatnode-smp", 32)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "plat.json")
	fh, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := plat.WriteJSON(fh); err != nil {
		t.Fatal(err)
	}
	fh.Close()
	p, err := resolve(t, []string{"-platform", path, "-preset", "gige"}, "cg", 32)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, plat) || p.Nodes != 2 {
		t.Fatalf("file not loaded: %+v", p)
	}
}

func TestResolveRejects(t *testing.T) {
	if _, err := resolve(t, []string{"-preset", "warp-drive"}, "cg", 4); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if _, err := resolve(t, []string{"-map", "diagonal"}, "cg", 4); err == nil {
		t.Fatal("bad mapping accepted")
	}
	if _, err := resolve(t, []string{"-nodes", "3", "-map", "0,0,9,0"}, "cg", 4); err == nil {
		t.Fatal("out-of-range explicit mapping accepted")
	}
}

func TestDumpRoundTrips(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-preset", "marenostrum-4x", "-dump-platform"}); err != nil {
		t.Fatal(err)
	}
	if !f.DumpRequested() {
		t.Fatal("dump flag lost")
	}
	p, err := f.Resolve("cg", 8)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := f.Dump(&sb, p); err != nil {
		t.Fatal(err)
	}
	got, err := network.ReadAnyPlatform(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Nodes != p.Nodes || got.Intra != p.Intra {
		t.Fatalf("dump round trip: %+v vs %+v", got, p)
	}
}
