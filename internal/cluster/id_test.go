package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"math/big"
	"math/rand"
	"testing"
)

func randID(rng *rand.Rand) ID {
	var id ID
	rng.Read(id[:])
	return id
}

// TestXORMetricProperties checks that Distance is a genuine metric:
// identity of indiscernibles, symmetry, and the triangle inequality
// (as big-endian integers — XOR distances satisfy d(a,c) <= d(a,b) +
// d(b,c) because XOR is carry-free addition).
func TestXORMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		a, b, c := randID(rng), randID(rng), randID(rng)
		if !Distance(a, a).IsZero() {
			t.Fatalf("d(a,a) != 0 for %s", a)
		}
		if Distance(a, b) != Distance(b, a) {
			t.Fatalf("asymmetric distance between %s and %s", a, b)
		}
		if a != b && Distance(a, b).IsZero() {
			t.Fatalf("zero distance between distinct IDs %s and %s", a, b)
		}
		dac := Distance(a, c)
		dab := Distance(a, b)
		dbc := Distance(b, c)
		// XOR consistency: d(a,c) == d(a,b) XOR d(b,c).
		if dac != Distance(dab, Distance(ID{}, dbc)) {
			t.Fatalf("XOR inconsistency for %s %s %s", a, b, c)
		}
		iac := new(big.Int).SetBytes(dac[:])
		sum := new(big.Int).Add(new(big.Int).SetBytes(dab[:]), new(big.Int).SetBytes(dbc[:]))
		if iac.Cmp(sum) > 0 {
			t.Fatalf("triangle inequality violated for %s %s %s", a, b, c)
		}
		// Closer and CompareDistance agree.
		target := randID(rng)
		if Closer(target, a, b) != (CompareDistance(target, a, b) < 0) {
			t.Fatalf("Closer and CompareDistance disagree for %s %s target %s", a, b, target)
		}
	}
}

// TestBucketIndexProperties: unidirectionality of the bucket mapping —
// the index is the highest differing bit, shared distance prefixes land
// in the same bucket, and self has no bucket.
func TestBucketIndexProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		self, other := randID(rng), randID(rng)
		if self == other {
			continue
		}
		b := BucketIndex(self, other)
		if b < 0 || b >= IDBits {
			t.Fatalf("bucket index %d out of range", b)
		}
		// The highest differing bit is bit b: distances agree above it,
		// differ at it.
		d := Distance(self, other)
		if got := d[b/8] & (0x80 >> (b % 8)); got == 0 {
			t.Fatalf("bit %d not set in distance %s", b, d)
		}
		for j := 0; j < b/8; j++ {
			if d[j] != 0 {
				t.Fatalf("byte %d nonzero below bucket %d", j, b)
			}
		}
	}
	var id ID
	if got := BucketIndex(id, id); got != -1 {
		t.Fatalf("self bucket index = %d, want -1", got)
	}
}

// TestKeyIDUsesDigestPrefix: content digests map into the ID space by
// prefix, not by re-hashing — the DHT key of an artifact is literally
// the front of its content address.
func TestKeyIDUsesDigestPrefix(t *testing.T) {
	sum := sha256.Sum256([]byte("some artifact"))
	key := "sha256:" + hex.EncodeToString(sum[:])
	id := KeyID(key)
	var want ID
	copy(want[:], sum[:IDBytes])
	if id != want {
		t.Fatalf("KeyID(%q) = %s, want digest prefix %s", key, id, want)
	}
	// Non-digest keys hash; distinct keys separate.
	if KeyID("foo") == KeyID("bar") {
		t.Fatal("distinct non-digest keys collide")
	}
	if KeyID("sha256:zz") == (ID{}) {
		// malformed digests must still map somewhere, not to zero
		t.Fatal("malformed digest mapped to zero ID")
	}
}

// TestNodeIDDomainSeparation: a node named after a digest string does
// not collide with that digest's key.
func TestNodeIDDomainSeparation(t *testing.T) {
	sum := sha256.Sum256([]byte("x"))
	key := "sha256:" + hex.EncodeToString(sum[:])
	if NodeID(key) == KeyID(key) {
		t.Fatal("node ID collides with key ID of the same string")
	}
	if NodeID("a") == NodeID("b") {
		t.Fatal("distinct names collide")
	}
}

func TestIDJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	id := randID(rng)
	b, err := json.Marshal(id)
	if err != nil {
		t.Fatal(err)
	}
	var back ID
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Fatalf("round trip %s -> %s", id, back)
	}
	if err := json.Unmarshal([]byte(`"zz"`), &back); err == nil {
		t.Fatal("short hex accepted")
	}
}
