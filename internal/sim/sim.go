// Package sim implements the Dimemas-equivalent trace-driven simulator: an
// offline discrete-event engine that replays per-rank trace records on a
// configurable parallel platform (see package network) and reconstructs the
// application's time behaviour.
//
// The engine honours the model described in the paper: compute bursts are
// instruction counts scaled by a MIPS rate; point-to-point transfers cost
// latency + size/bandwidth; a finite pool of global buses bounds the number
// of concurrently flying messages; and per-node input/output ports bound
// each node's injection and drain concurrency. Matching follows MPI
// non-overtaking order: the n-th send of a (source, tag, chunk) stream pairs
// with the n-th receive posted for that stream.
//
// The platform may be hierarchical (network.Platform): ranks are placed on
// nodes by a mapping, transfers between ranks sharing a node cross the
// intra-node link class (shared memory, per-node bus pool), and transfers
// between nodes cross the inter-node link class (NIC ports, global buses).
// A flat network.Config is replayed as its degenerate one-rank-per-node
// platform and reproduces the original single-link model exactly.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/network"
	"repro/internal/trace"
)

// State labels what a rank is doing during a timeline interval.
type State uint8

// Timeline states, the vocabulary of the Paraver-style views.
const (
	// StateCompute: the rank is executing a CPU burst.
	StateCompute State = iota
	// StateSendBlocked: the rank is blocked in a blocking send (resource
	// queuing, rendezvous handshake, injection).
	StateSendBlocked
	// StateWaitRecv: the rank is blocked in Recv, Wait, or WaitAll.
	StateWaitRecv
)

// String returns a short state mnemonic.
func (s State) String() string {
	switch s {
	case StateCompute:
		return "compute"
	case StateSendBlocked:
		return "send"
	case StateWaitRecv:
		return "wait"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Interval is one timeline segment of one rank.
type Interval struct {
	Rank       int
	Start, End float64
	State      State
}

// Comm describes one simulated point-to-point transfer.
type Comm struct {
	Src, Dst   int
	Tag, Chunk int
	Bytes      int64
	MsgID      int64
	// Intra reports whether both endpoints share a node, i.e. the
	// transfer crossed the platform's intra-node link class instead of
	// the interconnect. Always false on a flat (one-rank-per-node)
	// platform.
	Intra bool
	// SendT is the virtual time the send record executed on the source.
	SendT float64
	// StartT is when the transfer acquired its resources and left the
	// sender (>= SendT under contention or rendezvous).
	StartT float64
	// ArriveT is when the last byte reached the destination.
	ArriveT float64
	// MatchT is when the receiver's matching receive completed.
	MatchT float64
}

// RankStats aggregates per-rank time accounting.
type RankStats struct {
	ComputeSec     float64
	SendBlockedSec float64
	WaitSec        float64
	FinishSec      float64
	BytesSent      int64
	MsgsSent       int
}

// Result is the full output of one replay.
type Result struct {
	// FinishSec is the simulated makespan: the max rank finish time.
	FinishSec float64
	// Ranks holds per-rank accounting, indexed by rank.
	Ranks []RankStats
	// Intervals is the state timeline of every rank, sorted by rank then
	// start time.
	Intervals []Interval
	// Comms lists every simulated transfer in send order.
	Comms []Comm
}

// TotalWaitSec sums receive-wait time over all ranks.
func (r *Result) TotalWaitSec() float64 {
	var s float64
	for i := range r.Ranks {
		s += r.Ranks[i].WaitSec
	}
	return s
}

// TotalComputeSec sums compute time over all ranks.
func (r *Result) TotalComputeSec() float64 {
	var s float64
	for i := range r.Ranks {
		s += r.Ranks[i].ComputeSec
	}
	return s
}

// TrafficSplit partitions the replay's traffic by link class: bytes and
// message counts that stayed inside a node versus those that crossed the
// interconnect. On a flat platform everything is inter-node.
func (r *Result) TrafficSplit() (intraBytes, interBytes int64, intraMsgs, interMsgs int) {
	for i := range r.Comms {
		if r.Comms[i].Intra {
			intraBytes += r.Comms[i].Bytes
			intraMsgs++
		} else {
			interBytes += r.Comms[i].Bytes
			interMsgs++
		}
	}
	return intraBytes, interBytes, intraMsgs, interMsgs
}

// DeadlockError reports a replay that stalled before all ranks finished.
type DeadlockError struct {
	Trace   string
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock replaying %q: %v", e.Trace, e.Blocked)
}

// ---------------------------------------------------------------------------
// Event queue

type event struct {
	t   float64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// ---------------------------------------------------------------------------
// Simulated-time resources

// resource models a pool of identical units (buses, ports) reserved for
// simulated-time spans. A nil resource is unlimited.
//
// Each unit keeps a calendar of busy intervals so that a reservation made
// for the future (a chunk burst serialized behind a port) does not render
// the unit's earlier idle time unusable: later requests may backfill gaps,
// which is what the physical resource would allow.
type resource struct {
	units []unitCalendar
}

type busyInterval struct {
	start, end float64
}

type unitCalendar struct {
	busy []busyInterval // sorted by start, non-overlapping
}

func newResource(units int) *resource {
	if units <= 0 {
		return nil
	}
	return &resource{units: make([]unitCalendar, units)}
}

// earliestFit returns the earliest start >= t at which the unit can host a
// reservation of the given duration.
func (u *unitCalendar) earliestFit(t, hold float64) float64 {
	// Binary search for the first busy interval ending after t.
	lo, hi := 0, len(u.busy)
	for lo < hi {
		mid := (lo + hi) / 2
		if u.busy[mid].end <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start := t
	for i := lo; i < len(u.busy); i++ {
		if u.busy[i].start-start >= hold {
			return start
		}
		if u.busy[i].end > start {
			start = u.busy[i].end
		}
	}
	return start
}

// earliestFit returns the unit index and earliest start >= t across the
// pool.
func (r *resource) earliestFit(t, hold float64) (int, float64) {
	best, bt := 0, r.units[0].earliestFit(t, hold)
	for i := 1; i < len(r.units); i++ {
		if s := r.units[i].earliestFit(t, hold); s < bt {
			best, bt = i, s
		}
		if bt == t {
			break // cannot start earlier than asked
		}
	}
	return best, bt
}

// commit reserves unit i for [start, start+hold). Zero-length holds are
// no-ops.
func (r *resource) commit(i int, start, hold float64) {
	if hold <= 0 {
		return
	}
	u := &r.units[i]
	iv := busyInterval{start: start, end: start + hold}
	// Insert keeping the calendar sorted; requests mostly arrive in
	// increasing time, so scanning from the back is near O(1).
	pos := len(u.busy)
	for pos > 0 && u.busy[pos-1].start > iv.start {
		pos--
	}
	u.busy = append(u.busy, busyInterval{})
	copy(u.busy[pos+1:], u.busy[pos:])
	u.busy[pos] = iv
}

// ---------------------------------------------------------------------------
// Message matching

type matchKey struct {
	src, tag, chunk int
}

type postKind uint8

const (
	postBlocking postKind = iota
	postNonBlocking
)

type post struct {
	kind   postKind
	handle int
	t      float64
}

// stream is the per-(dst,key) non-overtaking match state. The n-th send of
// the stream pairs with the n-th post; a pair completes as soon as both its
// message has arrived and its receive is posted, independently of other
// pairs.
type stream struct {
	arrivals []float64 // arrival time per send seq; NaN while in flight
	commIdx  []int     // Comms index per send seq
	posts    []post
	matched  []bool
	nSends   int
	// pendingSend queues rendezvous senders waiting for their matching
	// post, by seq.
	pendingSend map[int]*pendingTransfer
}

type pendingTransfer struct {
	seq      int
	bytes    int64
	readyT   float64 // sender reached the record at this time
	blocking bool
	src      int
	commIdx  int
}

// ---------------------------------------------------------------------------
// Rank state machine

type blockReason uint8

const (
	blockNone blockReason = iota
	blockRecv
	blockWait
	blockWaitAll
	blockSendRendezvous
	blockSendInject
)

type rankState struct {
	rank       int
	pc         int
	clock      float64
	done       bool
	blocked    blockReason
	blockStart float64
	waitHandle int
	// outstanding maps posted-but-unwaited irecv handles to their
	// completion time (NaN while incomplete).
	outstanding map[int]float64
	stats       RankStats
}

// ---------------------------------------------------------------------------
// Simulator

// Simulator replays one trace on one platform. Create with New (flat
// Config) or NewOn (hierarchical Platform), run with Run; a Simulator is
// single-use.
//
// Every transfer is classified by the platform's rank→node mapping:
// transfers whose endpoints share a node cross the intra-node link class
// and queue only on that node's intra bus pool; transfers between nodes
// cross the interconnect link class and queue on the global bus pool plus
// the two nodes' NIC ports. On a one-rank-per-node platform (any flat
// Config) everything is inter-node and the engine reduces exactly to the
// validated single-link model.
type Simulator struct {
	plat   network.Platform
	nodeOf []int // rank → node, precomputed from the mapping
	tr     *trace.Trace

	interBuses *resource   // global interconnect pool
	intraBuses []*resource // per-node shared-memory pool
	nodeIn     []*resource // per-node NIC drain ports
	nodeOut    []*resource // per-node NIC injection ports

	ranks   []*rankState
	streams []map[matchKey]*stream // per destination rank

	eq       eventHeap
	eseq     int64
	now      float64
	inFlight int // inter-node messages currently in the interconnect (congestion model)
	result   Result
}

// ErrNilTrace reports a replay requested without a trace.
var ErrNilTrace = errors.New("sim: nil trace")

// New prepares a replay of tr on the flat platform cfg — the degenerate
// one-rank-per-node case of NewOn. The trace rank count must not exceed
// cfg.Processors. A nil trace yields ErrNilTrace.
func New(cfg network.Config, tr *trace.Trace) (*Simulator, error) {
	if tr == nil {
		return nil, ErrNilTrace
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return NewOn(cfg.Platform(), tr)
}

// NewOn prepares a replay of tr on the hierarchical platform p. The trace
// rank count must not exceed p.Processors. A nil trace yields ErrNilTrace.
func NewOn(p network.Platform, tr *trace.Trace) (*Simulator, error) {
	if tr == nil {
		return nil, ErrNilTrace
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if tr.NumRanks > p.Processors {
		return nil, fmt.Errorf("sim: trace has %d ranks but platform has %d processors", tr.NumRanks, p.Processors)
	}
	s := &Simulator{plat: p, nodeOf: p.NodeTable(), tr: tr}
	s.interBuses = newResource(p.Buses)
	s.intraBuses = make([]*resource, p.Nodes)
	s.nodeIn = make([]*resource, p.Nodes)
	s.nodeOut = make([]*resource, p.Nodes)
	for n := 0; n < p.Nodes; n++ {
		s.intraBuses[n] = newResource(p.IntraBuses)
		s.nodeIn[n] = newResource(p.InPorts)
		s.nodeOut[n] = newResource(p.OutPorts)
	}
	s.ranks = make([]*rankState, tr.NumRanks)
	s.streams = make([]map[matchKey]*stream, tr.NumRanks)
	for r := 0; r < tr.NumRanks; r++ {
		s.ranks[r] = &rankState{rank: r, outstanding: map[int]float64{}}
		s.streams[r] = map[matchKey]*stream{}
	}
	s.result.Ranks = make([]RankStats, tr.NumRanks)
	return s, nil
}

// Run builds a Simulator for (cfg, tr) and executes the replay.
func Run(cfg network.Config, tr *trace.Trace) (*Result, error) {
	s, err := New(cfg, tr)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// RunOn builds a Simulator for the hierarchical platform and executes the
// replay.
func RunOn(p network.Platform, tr *trace.Trace) (*Result, error) {
	s, err := NewOn(p, tr)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// Run executes the replay and returns the reconstructed time behaviour.
func (s *Simulator) Run() (*Result, error) {
	for _, rs := range s.ranks {
		rs := rs
		s.schedule(0, func() { s.advance(rs) })
	}
	for len(s.eq) > 0 {
		e := heap.Pop(&s.eq).(event)
		if e.t < s.now {
			return nil, fmt.Errorf("sim: time ran backwards: %g < %g", e.t, s.now)
		}
		s.now = e.t
		e.fn()
	}
	var blocked []string
	for _, rs := range s.ranks {
		if !rs.done {
			rec := trace.Record{}
			if rs.pc < len(s.tr.Ranks[rs.rank].Records) {
				rec = s.tr.Ranks[rs.rank].Records[rs.pc]
			}
			blocked = append(blocked, fmt.Sprintf("rank %d at record %d (%s peer=%d tag=%d chunk=%d)",
				rs.rank, rs.pc, rec.Kind, rec.Peer, rec.Tag, rec.Chunk))
		}
	}
	if blocked != nil {
		return nil, &DeadlockError{Trace: s.tr.Name, Blocked: blocked}
	}
	for _, rs := range s.ranks {
		s.result.Ranks[rs.rank] = rs.stats
		if rs.stats.FinishSec > s.result.FinishSec {
			s.result.FinishSec = rs.stats.FinishSec
		}
	}
	sort.Slice(s.result.Intervals, func(i, j int) bool {
		a, b := s.result.Intervals[i], s.result.Intervals[j]
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.Start < b.Start
	})
	return &s.result, nil
}

func (s *Simulator) schedule(t float64, fn func()) {
	s.eseq++
	heap.Push(&s.eq, event{t: t, seq: s.eseq, fn: fn})
}

func (s *Simulator) addInterval(rank int, start, end float64, st State) {
	if end <= start {
		return
	}
	s.result.Intervals = append(s.result.Intervals, Interval{Rank: rank, Start: start, End: end, State: st})
}

func (s *Simulator) streamFor(dst int, k matchKey) *stream {
	st, ok := s.streams[dst][k]
	if !ok {
		st = &stream{pendingSend: map[int]*pendingTransfer{}}
		s.streams[dst][k] = st
	}
	return st
}

// advance runs the rank's record stream from its program counter until it
// blocks, needs to let simulated time pass, or finishes.
func (s *Simulator) advance(rs *rankState) {
	rs.clock = s.now
	recs := s.tr.Ranks[rs.rank].Records
	for {
		if rs.pc >= len(recs) {
			rs.done = true
			rs.stats.FinishSec = rs.clock
			return
		}
		rec := recs[rs.pc]
		switch rec.Kind {
		case trace.KindCompute:
			d := s.plat.ComputeSec(rec.Instr)
			if d <= 0 {
				rs.pc++
				continue
			}
			s.addInterval(rs.rank, rs.clock, rs.clock+d, StateCompute)
			rs.stats.ComputeSec += d
			rs.pc++
			s.schedule(rs.clock+d, func() { s.advance(rs) })
			return
		case trace.KindSend, trace.KindISend:
			if s.startSend(rs, rec, rec.Kind == trace.KindSend) {
				rs.pc++
				continue
			}
			return // parked: rendezvous handshake or blocking injection
		case trace.KindRecv:
			k := matchKey{src: rec.Peer, tag: rec.Tag, chunk: rec.Chunk}
			st := s.streamFor(rs.rank, k)
			seq := len(st.posts)
			st.posts = append(st.posts, post{kind: postBlocking, t: rs.clock})
			s.wakeRendezvous(rs.rank, k, st, seq)
			if seq < len(st.arrivals) && !math.IsNaN(st.arrivals[seq]) {
				s.completePair(rs.rank, k, st, seq)
				rs.pc++
				continue
			}
			rs.blocked = blockRecv
			rs.blockStart = rs.clock
			return
		case trace.KindIRecv:
			k := matchKey{src: rec.Peer, tag: rec.Tag, chunk: rec.Chunk}
			st := s.streamFor(rs.rank, k)
			seq := len(st.posts)
			st.posts = append(st.posts, post{kind: postNonBlocking, handle: rec.Handle, t: rs.clock})
			rs.outstanding[rec.Handle] = math.NaN()
			s.wakeRendezvous(rs.rank, k, st, seq)
			if seq < len(st.arrivals) && !math.IsNaN(st.arrivals[seq]) {
				s.completePair(rs.rank, k, st, seq)
			}
			rs.pc++
			continue
		case trace.KindWait:
			tc, ok := rs.outstanding[rec.Handle]
			if !ok {
				rs.pc++ // Validate() prevents this; defensive.
				continue
			}
			if !math.IsNaN(tc) {
				delete(rs.outstanding, rec.Handle)
				rs.pc++
				continue
			}
			rs.blocked = blockWait
			rs.waitHandle = rec.Handle
			rs.blockStart = rs.clock
			return
		case trace.KindWaitAll:
			if s.waitAllDone(rs) {
				rs.pc++
				continue
			}
			rs.blocked = blockWaitAll
			rs.blockStart = rs.clock
			return
		default:
			rs.pc++ // unknown records are skipped
			continue
		}
	}
}

func (s *Simulator) waitAllDone(rs *rankState) bool {
	for _, tc := range rs.outstanding {
		if math.IsNaN(tc) {
			return false
		}
	}
	for h := range rs.outstanding {
		delete(rs.outstanding, h)
	}
	return true
}

// startSend initiates the transfer for a send record. It returns true when
// the rank may continue immediately (ISend, or zero-cost injection) and
// false when the rank parked (blocking injection or rendezvous handshake).
func (s *Simulator) startSend(rs *rankState, rec trace.Record, blocking bool) bool {
	k := matchKey{src: rs.rank, tag: rec.Tag, chunk: rec.Chunk}
	st := s.streamFor(rec.Peer, k)
	seq := st.nSends
	st.nSends++
	for len(st.arrivals) <= seq {
		st.arrivals = append(st.arrivals, math.NaN())
		st.commIdx = append(st.commIdx, -1)
	}
	rs.stats.MsgsSent++
	rs.stats.BytesSent += rec.Bytes
	commIdx := len(s.result.Comms)
	st.commIdx[seq] = commIdx
	s.result.Comms = append(s.result.Comms, Comm{
		Src: rs.rank, Dst: rec.Peer, Tag: rec.Tag, Chunk: rec.Chunk,
		Bytes: rec.Bytes, MsgID: rec.MsgID, SendT: rs.clock,
		Intra:  s.nodeOf[rs.rank] == s.nodeOf[rec.Peer],
		StartT: math.NaN(), ArriveT: math.NaN(), MatchT: math.NaN(),
	})
	if !s.plat.Eager(rec.Bytes) && seq >= len(st.posts) {
		// Rendezvous: the matching receive is not posted yet.
		st.pendingSend[seq] = &pendingTransfer{
			seq: seq, bytes: rec.Bytes, readyT: rs.clock,
			blocking: blocking, src: rs.rank, commIdx: commIdx,
		}
		if blocking {
			rs.blocked = blockSendRendezvous
			rs.blockStart = rs.clock
			return false
		}
		return true
	}
	// Eager transfers follow Dimemas's asynchronous-send default: the
	// sender resumes immediately and the NIC performs the transfer in
	// the background (the OS-bypass capability the paper assumes). Only
	// rendezvous sends block the issuing rank.
	s.launch(rs.rank, rec.Peer, k, st, seq, rec.Bytes, rs.clock, commIdx)
	return true
}

// launch performs resource acquisition, schedules the arrival event, and
// returns the injection-complete time on the sender.
//
// The transfer's locality decides both its cost model and its resource
// set: intra-node transfers pay the intra link's latency/bandwidth and
// queue only on the node's shared-memory bus pool (they never touch the
// NIC or the interconnect); inter-node transfers pay the inter link and
// queue on a global bus, the source node's output port, and the
// destination node's input port.
//
// Ports and buses are occupied for the serialization time: latency models
// pipeline depth (wire time plus software overhead), not channel
// occupancy, so concurrent messages only queue on each other's
// size/bandwidth terms. This keeps the chunked traces from paying the
// latency once per chunk in *occupancy* (they still pay it per chunk in
// flight time).
func (s *Simulator) launch(src, dst int, k matchKey, st *stream, seq int, bytes int64, t float64, commIdx int) float64 {
	intra := s.nodeOf[src] == s.nodeOf[dst]
	link := s.plat.LinkFor(intra)
	ser := link.SerializationSec(bytes)
	if !intra && s.plat.CongestionFactor > 0 && s.plat.Buses > 0 {
		// Nonlinear congestion extension: transfers entering a loaded
		// interconnect serialize slower. inFlight counts inter-node
		// messages and is sampled at launch; intra-node traffic never
		// contributes.
		over := float64(s.inFlight)/float64(s.plat.Buses) - 1
		if over > 0 {
			ser *= 1 + s.plat.CongestionFactor*over
		}
	}
	flight := link.LatencySec + ser
	// Joint acquisition: find the earliest common start at which every
	// pool of the transfer's resource set is free for the serialization
	// window. The fixpoint loop converges because each probe only moves
	// the candidate start forward.
	pools := [3]*resource{s.intraBuses[s.nodeOf[src]], nil, nil}
	if !intra {
		pools = [3]*resource{s.interBuses, s.nodeOut[s.nodeOf[src]], s.nodeIn[s.nodeOf[dst]]}
	}
	var units [3]int
	start := t
	for iter := 0; iter < 64; iter++ {
		moved := false
		for i, pool := range pools {
			if pool == nil {
				continue
			}
			u, ft := pool.earliestFit(start, ser)
			units[i] = u
			if ft > start {
				start = ft
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	for i, pool := range pools {
		if pool != nil {
			pool.commit(units[i], start, ser)
		}
	}
	arrive := start + flight
	s.result.Comms[commIdx].StartT = start
	s.result.Comms[commIdx].ArriveT = arrive
	if !intra {
		s.inFlight++
	}
	s.schedule(arrive, func() {
		if !intra {
			s.inFlight--
		}
		st.arrivals[seq] = arrive
		if seq < len(st.posts) {
			s.completePair(dst, k, st, seq)
		}
	})
	return start + ser
}

// wakeRendezvous starts any rendezvous transfer whose matching post just
// appeared.
func (s *Simulator) wakeRendezvous(dst int, k matchKey, st *stream, postSeq int) {
	pt, ok := st.pendingSend[postSeq]
	if !ok {
		return
	}
	delete(st.pendingSend, postSeq)
	start := pt.readyT
	if s.now > start {
		start = s.now
	}
	injectEnd := s.launch(pt.src, dst, k, st, pt.seq, pt.bytes, start, pt.commIdx)
	if pt.blocking {
		rs := s.ranks[pt.src]
		s.addInterval(rs.rank, rs.blockStart, injectEnd, StateSendBlocked)
		rs.stats.SendBlockedSec += injectEnd - rs.blockStart
		s.schedule(injectEnd, func() {
			rs.blocked = blockNone
			rs.pc++
			s.advance(rs)
		})
	}
}

// completePair finishes the match of pair seq of one stream: it stamps the
// comm event, completes the receive (blocking or handle), and wakes the
// destination rank if it was blocked on this completion.
func (s *Simulator) completePair(dst int, k matchKey, st *stream, seq int) {
	for len(st.matched) <= seq {
		st.matched = append(st.matched, false)
	}
	if st.matched[seq] {
		return
	}
	if seq >= len(st.posts) || seq >= len(st.arrivals) || math.IsNaN(st.arrivals[seq]) {
		return
	}
	st.matched[seq] = true
	p := st.posts[seq]
	done := st.arrivals[seq]
	if p.t > done {
		done = p.t
	}
	if s.now > done {
		done = s.now
	}
	if ci := st.commIdx[seq]; ci >= 0 {
		s.result.Comms[ci].MatchT = done
	}
	rs := s.ranks[dst]
	switch p.kind {
	case postBlocking:
		if rs.blocked == blockRecv {
			// The rank can only be blocked on the oldest unmatched
			// blocking post, which is this one (a rank posts at most
			// one blocking recv at a time).
			s.wakeFromWait(rs, done)
		}
	case postNonBlocking:
		rs.outstanding[p.handle] = done
		switch rs.blocked {
		case blockWait:
			if rs.waitHandle == p.handle {
				delete(rs.outstanding, p.handle)
				s.wakeFromWait(rs, done)
			}
		case blockWaitAll:
			if s.waitAllDone(rs) {
				s.wakeFromWait(rs, done)
			}
		}
	}
}

func (s *Simulator) wakeFromWait(rs *rankState, done float64) {
	resume := done
	if resume < rs.blockStart {
		resume = rs.blockStart
	}
	s.addInterval(rs.rank, rs.blockStart, resume, StateWaitRecv)
	rs.stats.WaitSec += resume - rs.blockStart
	rs.blocked = blockNone
	rs.pc++
	s.schedule(resume, func() { s.advance(rs) })
}
