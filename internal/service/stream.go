package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/core"
)

// The streaming face of POST /v1/scenarios. When a client asks with
// Accept: application/x-ndjson, the response is newline-delimited
// frames instead of one batch object:
//
//	{"header":{...}}          the ScenarioHeader, first
//	{"point":{...}}           one frame per grid point, in result order
//	{"done":{"points":N}}     terminal frame of a successful stream
//	{"error":"..."}           terminal frame of a failed one
//
// Frames are spliced from exactly the bytes the batch reply is built
// of, so concatenating the header and point payloads (with the points
// wrapped back into a "points" array) reproduces the batch JSON
// byte-for-byte — cached or fresh, streamed or not, one spec has one
// serialized result. Completed streams land in the spec-level result
// cache like batch runs do, and cached reruns replay the stored bytes
// frame by frame without touching the engine.

// NDJSONContentType is the media type that selects (and labels) the
// streaming scenario response.
const NDJSONContentType = "application/x-ndjson"

// StreamDone is the payload of a successful stream's terminal frame.
type StreamDone struct {
	// Points is how many point frames preceded it.
	Points int `json:"points"`
}

// StreamFrame is one decoded line of the NDJSON stream — exactly one
// field is set. Clients normally consume it through
// client.ScenarioStream rather than decoding frames by hand.
type StreamFrame struct {
	Header json.RawMessage `json:"header,omitempty"`
	Point  json.RawMessage `json:"point,omitempty"`
	Done   *StreamDone     `json:"done,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// writeFrame emits one `{"<name>":<payload>}` line. Frames are spliced
// by hand from already-marshalled payloads so a cached replay and a
// fresh run emit byte-identical lines.
func writeFrame(w http.ResponseWriter, name string, payload []byte) error {
	var b bytes.Buffer
	b.Grow(len(name) + len(payload) + 6)
	b.WriteString(`{"`)
	b.WriteString(name)
	b.WriteString(`":`)
	b.Write(payload)
	b.WriteString("}\n")
	if _, err := w.Write(b.Bytes()); err != nil {
		return err
	}
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	return nil
}

func writeErrorFrame(w http.ResponseWriter, err error) {
	msg, merr := json.Marshal(err.Error())
	if merr != nil {
		return
	}
	writeFrame(w, "error", msg)
}

// splitScenarioPayload decomposes a cached batch payload back into its
// header bytes and raw point payloads. The header re-marshal is exact:
// ScenarioHeader carries no floats, so unmarshal∘marshal is the
// identity on the bytes the assembler produced.
func splitScenarioPayload(payload []byte) ([]byte, []json.RawMessage, error) {
	var res struct {
		core.ScenarioHeader
		Points []json.RawMessage `json:"points"`
	}
	if err := json.Unmarshal(payload, &res); err != nil {
		return nil, nil, fmt.Errorf("service: split scenario payload: %w", err)
	}
	hdr, err := json.Marshal(res.ScenarioHeader)
	if err != nil {
		return nil, nil, err
	}
	return hdr, res.Points, nil
}

// payloadAssembler accumulates streamed frames into exactly the bytes
// json.Marshal(*core.ScenarioResult) would produce — the batch reply,
// and the spec-level cache entry a completed stream deposits.
type payloadAssembler struct {
	buf    bytes.Buffer
	points int
}

func newPayloadAssembler(hdrJSON []byte) *payloadAssembler {
	a := &payloadAssembler{}
	a.buf.Write(hdrJSON[:len(hdrJSON)-1]) // drop the header's closing brace
	a.buf.WriteString(`,"points":[`)
	return a
}

func (a *payloadAssembler) point(pointJSON []byte) {
	if a.points > 0 {
		a.buf.WriteByte(',')
	}
	a.buf.Write(pointJSON)
	a.points++
}

func (a *payloadAssembler) finish() []byte {
	a.buf.WriteString(`]}`)
	return a.buf.Bytes()
}

// grantScenarioStream decides how a streaming scenario request is
// served, under the same singleflight/cache/admission discipline as
// Submit. Outcomes:
//
//   - cached spec: a born-done job plus the cached payload to replay;
//   - identical request in flight: the existing job to wait on (its
//     payload replays once it completes);
//   - otherwise a fresh job the caller owns: it must acquire a slot,
//     run the stream, and complete the job — or ErrQueueFull when the
//     admission queue is at capacity.
func (m *Manager) grantScenarioStream(key string) (j *Job, payload []byte, owner bool, err error) {
	t := &task{kind: KindScenario, key: key}
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.inflight[key]; ok {
		m.deduped++
		return j, nil, false, nil
	}
	if b, ok := m.cache.Get(key); ok {
		j := m.newJobLocked(t, true)
		j.complete(b, nil)
		return j, b, false, nil
	}
	if m.draining {
		return nil, nil, false, ErrDraining
	}
	if !m.admitLocked() {
		return nil, nil, false, ErrQueueFull
	}
	j = m.newJobLocked(t, false)
	m.inflight[key] = j
	return j, nil, true, nil
}

// streamScenario serves POST /v1/scenarios as NDJSON.
func streamScenario(m *Manager, w http.ResponseWriter, r *http.Request, req ScenarioRequest) {
	sc, key, err := req.spec(m)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	hdr, err := sc.Header()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	hdrJSON, err := json.Marshal(hdr)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	j, cachedPayload, owner, err := m.grantScenarioStream(key)
	if err != nil {
		// Queue full or draining: tell the client to back off and retry
		// (against the restarted server, in the draining case).
		status := http.StatusTooManyRequests
		if errors.Is(err, ErrDraining) {
			status = http.StatusServiceUnavailable
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, status, err)
		return
	}
	if !owner {
		if cachedPayload == nil {
			// Attached to an in-flight computation: its completed payload
			// replays as one burst of frames.
			if cachedPayload, err = j.Wait(r.Context()); err != nil {
				writeError(w, http.StatusInternalServerError, err)
				return
			}
		}
		streamPayload(w, j, cachedPayload)
		return
	}

	// Fresh execution, owned by this request goroutine. The client
	// vanishing cancels the job; the job's context is what the planner
	// watches.
	stop := context.AfterFunc(r.Context(), j.cancel)
	defer stop()

	// In a cluster, a spec whose digest another node owns streams from
	// the owner's bytes: execute it there (no local slot held), cache the
	// payload, and replay it as frames — byte-identical to streaming it
	// here. Forward failures fall through to the local run.
	if plan, ok := m.forwardTarget(req, &task{kind: KindScenario, key: key}, true); ok {
		j.markRunning()
		if out, err := m.node.Exec(j.ctx, plan.owner, ExecKindScenario, plan.payload); err == nil {
			mClusterForwards.With("ok").Inc()
			m.unqueue()
			m.cache.Put(key, out)
			m.mu.Lock()
			delete(m.inflight, key)
			m.mu.Unlock()
			j.complete(out, nil)
			streamPayload(w, j, out)
			return
		}
		mClusterForwards.With("fallback").Inc()
	}

	admitted := time.Now()
	select {
	case m.slots <- struct{}{}:
		m.unqueue()
		mQueueWait.ObserveSince(admitted)
		defer func() { <-m.slots }()
	case <-j.ctx.Done():
		m.unqueue()
		m.mu.Lock()
		delete(m.inflight, key)
		m.mu.Unlock()
		j.complete(nil, j.ctx.Err())
		writeError(w, http.StatusInternalServerError, j.ctx.Err())
		return
	}
	j.markRunning()
	m.log.LogAttrs(r.Context(), slog.LevelInfo, "scenario stream running",
		slog.String("request_id", RequestID(r.Context())),
		slog.String("job_id", j.ID()),
		slog.String("spec_digest", key),
		slog.Duration("queue_wait", time.Since(admitted)))

	w.Header().Set("Content-Type", NDJSONContentType)
	w.Header().Set("X-Job-Id", j.ID())
	w.Header().Set("X-Cache", cacheHeader(j))
	w.WriteHeader(http.StatusOK)
	if err := writeFrame(w, "header", hdrJSON); err != nil {
		// The client is gone; finish bookkeeping without streaming.
		j.cancel()
	}
	asm := newPayloadAssembler(hdrJSON)
	// Resolve remote-owned grid points through the cluster before the
	// planner schedules anything (no-op standalone; see cluster.go).
	m.clusterPrefetchPoints(j.ctx, req, sc)
	_, err = core.RunScenarioStream(j.ctx, m.eng, *sc, func(pt core.ScenarioPoint) error {
		ptJSON, err := json.Marshal(pt)
		if err != nil {
			return err
		}
		asm.point(ptJSON)
		return writeFrame(w, "point", ptJSON)
	})
	if err != nil {
		m.mu.Lock()
		delete(m.inflight, key)
		m.mu.Unlock()
		j.complete(nil, err)
		writeErrorFrame(w, err)
		return
	}
	payload := asm.finish()
	// Fill the cache before leaving the inflight table, like run() does:
	// a later identical spec replays these exact bytes.
	m.cache.Put(key, payload)
	m.mu.Lock()
	delete(m.inflight, key)
	m.mu.Unlock()
	j.complete(payload, nil)
	done, _ := json.Marshal(StreamDone{Points: asm.points})
	writeFrame(w, "done", done)
}

// streamPayload replays a completed batch payload as NDJSON frames —
// the cached-rerun path. The frames are byte-identical to the ones the
// original stream emitted.
func streamPayload(w http.ResponseWriter, j *Job, payload []byte) {
	hdrJSON, points, err := splitScenarioPayload(payload)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", NDJSONContentType)
	w.Header().Set("X-Job-Id", j.ID())
	w.Header().Set("X-Cache", cacheHeader(j))
	w.WriteHeader(http.StatusOK)
	if err := writeFrame(w, "header", hdrJSON); err != nil {
		return
	}
	for _, pt := range points {
		if err := writeFrame(w, "point", pt); err != nil {
			return
		}
	}
	done, _ := json.Marshal(StreamDone{Points: len(points)})
	writeFrame(w, "done", done)
}
