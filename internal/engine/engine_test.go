package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/tracer"
)

func TestMapOrdersResultsDeterministically(t *testing.T) {
	e := New(4)
	out, err := Map(context.Background(), e, 100, func(ctx context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	e := New(workers)
	var cur, peak atomic.Int32
	_, err := Map(context.Background(), e, 50, func(ctx context.Context, i int) (struct{}, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Caller-runs discipline: the pool contributes at most `workers`
	// concurrent jobs and the one submitting goroutine at most one more.
	if p := peak.Load(); p > workers+1 {
		t.Fatalf("peak concurrency %d exceeds pool bound %d + 1 submitter", p, workers)
	}
}

func TestMapAggregatesPerJobErrors(t *testing.T) {
	e := New(2)
	boom := errors.New("boom")
	out, err := Map(context.Background(), e, 6, func(ctx context.Context, i int) (int, error) {
		if i%2 == 1 {
			return 0, fmt.Errorf("job-specific %d: %w", i, boom)
		}
		return i + 1, nil
	})
	if err == nil {
		t.Fatal("expected aggregated error")
	}
	var agg Errors
	if !errors.As(err, &agg) {
		t.Fatalf("error %T is not engine.Errors", err)
	}
	if len(agg) != 3 {
		t.Fatalf("aggregated %d errors, want 3: %v", len(agg), err)
	}
	for k, je := range agg {
		if want := 2*k + 1; je.Index != want {
			t.Fatalf("error %d has index %d, want %d", k, je.Index, want)
		}
	}
	if !errors.Is(err, boom) {
		t.Fatal("errors.Is cannot reach the wrapped job error")
	}
	// Successful jobs still delivered their results.
	for i := 0; i < 6; i += 2 {
		if out[i] != i+1 {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], i+1)
		}
	}
}

func TestMapRecoversJobPanics(t *testing.T) {
	e := New(2)
	_, err := Map(context.Background(), e, 3, func(ctx context.Context, i int) (int, error) {
		if i == 1 {
			panic("kaboom")
		}
		return i, nil
	})
	var agg Errors
	if !errors.As(err, &agg) || len(agg) != 1 || agg[0].Index != 1 {
		t.Fatalf("panic not reported as job 1's error: %v", err)
	}
}

func TestMapCancellation(t *testing.T) {
	e := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	bothStarted := make(chan struct{})
	var ran atomic.Int32
	done := make(chan struct{})
	var out []int
	var err error
	go func() {
		defer close(done)
		out, err = Map(ctx, e, 10, func(ctx context.Context, i int) (int, error) {
			if ran.Add(1) == 2 {
				close(bothStarted)
			}
			<-ctx.Done() // jobs honour the context, as real replays would
			return i, nil
		})
	}()
	// Job 0 holds the single pool slot; job 1 runs inline on the
	// submitting goroutine. Both block until cancel, so the loop cannot
	// reach job 2 before the context dies.
	<-bothStarted
	cancel()
	<-done
	if err == nil {
		t.Fatal("cancelled Map returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if n := ran.Load(); n != 2 {
		t.Fatalf("%d jobs ran, want exactly 2 (one pooled, one inline)", n)
	}
	var agg Errors
	if !errors.As(err, &agg) || len(agg) != 8 || agg[0].Index != 2 {
		t.Fatalf("unstarted jobs not reported from index 2: %v", err)
	}
	if out[9] != 0 {
		t.Fatalf("cancelled job left non-zero result %d", out[9])
	}
}

func TestNestedMapDoesNotDeadlock(t *testing.T) {
	// Every worker of a tiny pool submits sub-jobs: with blocking nested
	// acquisition this deadlocks; the inline fallback must complete it.
	e := New(2)
	done := make(chan error, 1)
	go func() {
		_, err := Map(context.Background(), e, 4, func(ctx context.Context, i int) (int, error) {
			subs, err := Map(ctx, e, 4, func(ctx context.Context, j int) (int, error) {
				return i*10 + j, nil
			})
			if err != nil {
				return 0, err
			}
			sum := 0
			for _, v := range subs {
				sum += v
			}
			return sum, nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("nested Map deadlocked")
	}
}

func TestTraceCacheSingleFlight(t *testing.T) {
	c := NewTraceCache()
	var traced atomic.Int32
	kernel := func(p *tracer.Proc) {
		if p.Rank() == 0 {
			traced.Add(1)
		}
		a := p.NewArray("buf", 8)
		for i := 0; i < 8; i++ {
			a.Store(i, float64(i))
		}
	}
	var wg sync.WaitGroup
	runs := make([]*tracer.Run, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			run, err := c.Trace("cached-app", 2, tracer.DefaultConfig(), kernel)
			if err != nil {
				t.Error(err)
				return
			}
			runs[g] = run
		}(g)
	}
	wg.Wait()
	if n := traced.Load(); n != 1 {
		t.Fatalf("kernel traced %d times, want 1", n)
	}
	for g := 1; g < 16; g++ {
		if runs[g] != runs[0] {
			t.Fatal("concurrent gets returned distinct runs")
		}
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.Len())
	}
	// A different config is a different experiment: separate entry.
	cfg := tracer.DefaultConfig()
	cfg.Chunks = 8
	if _, err := c.Trace("cached-app", 2, cfg, kernel); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries after config change, want 2", c.Len())
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatal("purge left entries behind")
	}
}

func TestDefaultEngineIsUsedForNil(t *testing.T) {
	out, err := Map(context.Background(), nil, 3, func(ctx context.Context, i int) (int, error) {
		return i, nil
	})
	if err != nil || len(out) != 3 {
		t.Fatalf("nil-engine Map: out=%v err=%v", out, err)
	}
	if Default().Workers() < 1 {
		t.Fatal("default engine has no workers")
	}
}
