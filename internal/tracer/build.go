package tracer

import (
	"sort"

	"repro/internal/trace"
)

// This file turns a Run's event logs into the three Dimemas-style traces:
//
//   - BaseTrace: the original execution — compute bursts between MPI events
//     plus blocking Send/Recv records, exactly what the legacy code did.
//   - OverlapReal: every tracked message split into chunks; each chunk's
//     ISend is placed at the virtual time of the chunk's *last store*
//     within its production interval (advancing sends), the chunk IRecvs
//     are posted where the original receive was (the paper's tracer emits
//     one non-blocking-receive record per chunk on intercepting the
//     receive call), and each chunk's Wait is placed at the virtual time of
//     the chunk's *first load* within its consumption interval
//     (post-postponing receptions).
//   - OverlapIdeal: the same transformation but with chunk sends and waits
//     uniformly distributed across the original computation bursts — the
//     best case of Eq. 1 in the paper.
//
// Production intervals span consecutive sends of the same buffer and
// consumption intervals span consecutive receives of the same buffer,
// matching the definitions in Section V.A of the paper. Double buffering is
// what lets the transformed execution keep only one outstanding generation
// per buffer; the builder enforces it by draining un-consumed chunk waits
// just before the buffer's next reception, and a final WaitAll at the end
// of each rank.

// BaseTrace builds the non-overlapped trace of the original execution.
func (r *Run) BaseTrace() *trace.Trace {
	tr := trace.New(r.Name, "base", r.NumRanks)
	for rank, log := range r.Logs {
		var lastT int64
		var msgSeq int64
		emitCompute := func(to int64) {
			if to > lastT {
				tr.Append(rank, trace.Record{Kind: trace.KindCompute, Instr: to - lastT})
				lastT = to
			}
		}
		anyIRecv := false
		for _, e := range log.Events {
			switch e.Kind {
			case EvSend, EvSendRaw:
				emitCompute(e.T)
				msgSeq++
				tr.Append(rank, trace.Record{
					Kind: trace.KindSend, Peer: e.Peer, Tag: e.Tag,
					Bytes: int64(e.Elems) * r.Cfg.ElemBytes,
					MsgID: msgID(rank, msgSeq),
				})
			case EvISend:
				emitCompute(e.T)
				msgSeq++
				tr.Append(rank, trace.Record{
					Kind: trace.KindISend, Peer: e.Peer, Tag: e.Tag,
					Bytes: int64(e.Elems) * r.Cfg.ElemBytes,
					MsgID: msgID(rank, msgSeq),
				})
			case EvRecv, EvRecvRaw:
				emitCompute(e.T)
				msgSeq++
				tr.Append(rank, trace.Record{
					Kind: trace.KindRecv, Peer: e.Peer, Tag: e.Tag,
					Bytes: int64(e.Elems) * r.Cfg.ElemBytes,
					MsgID: msgID(rank, msgSeq),
				})
			case EvIRecvPost:
				emitCompute(e.T)
				msgSeq++
				anyIRecv = true
				tr.Append(rank, trace.Record{
					Kind: trace.KindIRecv, Peer: e.Peer, Tag: e.Tag,
					Bytes:  int64(e.Elems) * r.Cfg.ElemBytes,
					Handle: e.Handle, MsgID: msgID(rank, msgSeq),
				})
			case EvRecvWait:
				emitCompute(e.T)
				tr.Append(rank, trace.Record{Kind: trace.KindWait, Handle: e.Handle})
			}
		}
		emitCompute(log.FinalClock)
		if anyIRecv {
			// Defensive drain should an application have skipped a wait.
			tr.Append(rank, trace.Record{Kind: trace.KindWaitAll})
		}
	}
	return tr
}

// msgID derives a run-unique logical message id.
func msgID(rank int, seq int64) int64 { return int64(rank)*1_000_000_000 + seq }

// OverlapReal builds the overlapped trace driven by the measured
// production/consumption patterns.
func (r *Run) OverlapReal() *trace.Trace {
	return r.buildOverlap("overlap-real", func(string) bool { return false })
}

// OverlapIdeal builds the overlapped trace with ideal (uniform)
// production/consumption patterns.
func (r *Run) OverlapIdeal() *trace.Trace {
	return r.buildOverlap("overlap-ideal", func(string) bool { return true })
}

// OverlapSelective builds an overlapped trace in which only the named
// buffers get the ideal (uniform) chunk schedule while all others keep
// their measured patterns. Comparing selective traces quantifies which
// buffer's production/consumption pattern limits the overlap — the
// "identify bottlenecks and fix them" workflow of the paper, one buffer at
// a time.
func (r *Run) OverlapSelective(idealBuffers map[string]bool) *trace.Trace {
	return r.buildOverlap("overlap-selective", func(name string) bool { return idealBuffers[name] })
}

// BufferNames returns the names of all tracked buffers that participate in
// communication anywhere in the run, sorted.
func (r *Run) BufferNames() []string {
	seen := map[string]bool{}
	for _, log := range r.Logs {
		for _, e := range log.Events {
			switch e.Kind {
			case EvSend, EvISend, EvRecv, EvIRecvPost, EvCollSend, EvCollRecv:
				if e.Arr >= 0 && e.Arr < len(log.ArrayNames) {
					seen[log.ArrayNames[e.Arr]] = true
				}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// synthOp is a chunk ISend or chunk Wait scheduled at virtual time t.
// minEv gates emission: the op may only be emitted once the merge walk has
// processed the original event with that index, which keeps a chunk Wait
// scheduled at exactly its receive's timestamp behind the IRecv that
// defines its handle. ISends carry minEv -1 (no gate).
type synthOp struct {
	t     int64
	minEv int
	rec   trace.Record
}

// irecvSpec is one chunk IRecv to insert at a replaced receive event.
type irecvSpec struct {
	rec trace.Record
}

func (r *Run) buildOverlap(flavor string, idealFor func(bufferName string) bool) *trace.Trace {
	tr := trace.New(r.Name, flavor, r.NumRanks)
	for rank, log := range r.Logs {
		r.buildRankOverlap(tr, rank, log, idealFor)
	}
	return tr
}

func (r *Run) buildRankOverlap(tr *trace.Trace, rank int, log *Log, idealFor func(string) bool) {
	events := log.Events

	// Pass 0: index per-array send/receive event positions, per-array
	// access lists, and the positions of all comm events (for the ideal
	// variant's burst boundaries).
	type access struct {
		evIdx int
		t     int64
		idx   int
	}
	nArr := len(log.ArrayLens)
	// A receive instance pairs the posting event with the event at which
	// the data became available on the rank: for blocking receives both
	// are the EvRecv itself, for non-blocking ones the EvIRecvPost and
	// its EvRecvWait.
	type recvInst struct {
		postIdx, waitIdx int
	}
	sendsOf := make([][]int, nArr) // EvSend/EvISend event indices per array
	recvsOf := make([][]recvInst, nArr)
	storesOf := make([][]access, nArr)
	loadsOf := make([][]access, nArr)
	pendingWait := map[int]int{} // tracked irecv handle -> recvsOf position (by array)
	pendingArr := map[int]int{}  // tracked irecv handle -> array id
	var commTimes []int64        // times of all comm events in program order
	commIdxBefore := make([]int, len(events))
	for i, e := range events {
		commIdxBefore[i] = len(commTimes)
		switch e.Kind {
		case EvSend, EvISend:
			sendsOf[e.Arr] = append(sendsOf[e.Arr], i)
			commTimes = append(commTimes, e.T)
		case EvRecv:
			recvsOf[e.Arr] = append(recvsOf[e.Arr], recvInst{postIdx: i, waitIdx: i})
			commTimes = append(commTimes, e.T)
		case EvIRecvPost:
			recvsOf[e.Arr] = append(recvsOf[e.Arr], recvInst{postIdx: i, waitIdx: i})
			pendingWait[e.Handle] = len(recvsOf[e.Arr]) - 1
			pendingArr[e.Handle] = e.Arr
			commTimes = append(commTimes, e.T)
		case EvRecvWait:
			if pos, ok := pendingWait[e.Handle]; ok {
				recvsOf[pendingArr[e.Handle]][pos].waitIdx = i
				delete(pendingWait, e.Handle)
				delete(pendingArr, e.Handle)
			}
			commTimes = append(commTimes, e.T)
		case EvSendRaw, EvRecvRaw:
			commTimes = append(commTimes, e.T)
		case EvStore:
			storesOf[e.Arr] = append(storesOf[e.Arr], access{evIdx: i, t: e.T, idx: e.Idx})
		case EvLoad:
			loadsOf[e.Arr] = append(loadsOf[e.Arr], access{evIdx: i, t: e.T, idx: e.Idx})
		}
	}
	// Burst boundaries for the ideal variant: the producing/consuming
	// computation burst is delimited by the nearest comm events at a
	// *strictly different* time. Consecutive comm events at the same
	// virtual instant (a halo-exchange phase, a collective's internal
	// steps) belong to one communication phase and must not collapse the
	// burst to zero length. Precomputed in O(n).
	prevStrict := make([]int64, len(commTimes))
	nextStrict := make([]int64, len(commTimes))
	for k := range commTimes {
		if k == 0 {
			prevStrict[k] = 0
		} else if commTimes[k-1] < commTimes[k] {
			prevStrict[k] = commTimes[k-1]
		} else {
			prevStrict[k] = prevStrict[k-1]
		}
	}
	for k := len(commTimes) - 1; k >= 0; k-- {
		if k == len(commTimes)-1 {
			nextStrict[k] = log.FinalClock
		} else if commTimes[k+1] > commTimes[k] {
			nextStrict[k] = commTimes[k+1]
		} else {
			nextStrict[k] = nextStrict[k+1]
		}
	}
	prevCommTime := func(evIdx int) int64 {
		// The comm event at evIdx occupies slot commIdxBefore[evIdx].
		return prevStrict[commIdxBefore[evIdx]]
	}
	nextCommTime := func(evIdx int) int64 {
		return nextStrict[commIdxBefore[evIdx]]
	}

	// Pass 1: plan synthetic chunk ISends and Waits, plus the IRecv
	// inserts at each replaced receive.
	var synth []synthOp
	irecvAt := map[int][]irecvSpec{} // original event index -> chunk irecvs
	handleCounter := 0
	var msgSeq int64

	for a := 0; a < nArr; a++ {
		n := log.ArrayLens[a]
		k := r.Cfg.ChunkCount(n)
		ideal := idealFor(log.ArrayNames[a])

		// Sends: chunk c leaves at its last update (real) or uniformly
		// through the producing burst (ideal).
		si := 0 // cursor into storesOf[a]
		for j, evIdx := range sendsOf[a] {
			e := events[evIdx]
			msgSeq++
			id := msgID(rank, msgSeq) + 500_000 // offset avoids clashing with base ids
			prevSendIdx := -1
			if j > 0 {
				prevSendIdx = sendsOf[a][j-1]
			}
			last := make([]int64, k)
			intervalStart := int64(0)
			if j > 0 {
				intervalStart = events[prevSendIdx].T
			}
			for c := range last {
				last[c] = intervalStart
			}
			for si < len(storesOf[a]) && storesOf[a][si].evIdx < evIdx {
				acc := storesOf[a][si]
				si++
				if acc.evIdx <= prevSendIdx {
					continue
				}
				c := ChunkOf(n, k, acc.idx)
				if acc.t > last[c] {
					last[c] = acc.t
				}
			}
			if ideal {
				burstStart := prevCommTime(evIdx)
				for c := 0; c < k; c++ {
					last[c] = burstStart + (e.T-burstStart)*int64(c+1)/int64(k)
				}
			}
			for c := 0; c < k; c++ {
				synth = append(synth, synthOp{
					t:     last[c],
					minEv: -1,
					rec: trace.Record{
						Kind: trace.KindISend, Peer: e.Peer, Tag: e.Tag, Chunk: c,
						Bytes: r.Cfg.ChunkBytes(n, k, c), MsgID: id,
					},
				})
			}
		}

		// Receives: chunk IRecvs post where the original receive was
		// posted; chunk c's Wait sits at its first load (real) or
		// uniformly across the consuming burst (ideal); chunks never
		// loaded drain at the end of the consumption interval.
		li := 0 // cursor into loadsOf[a]
		for j, inst := range recvsOf[a] {
			post := events[inst.postIdx]
			waitT := events[inst.waitIdx].T
			msgSeq++
			id := msgID(rank, msgSeq) + 500_000
			nextPostIdx := len(events)
			intervalEnd := log.FinalClock
			if j+1 < len(recvsOf[a]) {
				nextPostIdx = recvsOf[a][j+1].postIdx
				intervalEnd = events[nextPostIdx].T
			}
			first := make([]int64, k)
			for c := range first {
				first[c] = intervalEnd
			}
			for li < len(loadsOf[a]) && loadsOf[a][li].evIdx < inst.waitIdx {
				li++ // loads before this receive belong to the previous interval
			}
			for li < len(loadsOf[a]) && loadsOf[a][li].evIdx < nextPostIdx {
				acc := loadsOf[a][li]
				li++
				c := ChunkOf(n, k, acc.idx)
				if acc.t < first[c] {
					first[c] = acc.t
				}
			}
			if ideal {
				burstEnd := nextCommTime(inst.waitIdx)
				for c := 0; c < k; c++ {
					first[c] = waitT + (burstEnd-waitT)*int64(c)/int64(k)
				}
			}
			specs := make([]irecvSpec, k)
			for c := 0; c < k; c++ {
				handleCounter++
				h := handleCounter
				specs[c] = irecvSpec{rec: trace.Record{
					Kind: trace.KindIRecv, Peer: post.Peer, Tag: post.Tag, Chunk: c,
					Bytes: r.Cfg.ChunkBytes(n, k, c), Handle: h, MsgID: id,
				}}
				synth = append(synth, synthOp{
					t:     first[c],
					minEv: inst.postIdx,
					rec:   trace.Record{Kind: trace.KindWait, Handle: h},
				})
			}
			irecvAt[inst.postIdx] = specs
		}
	}
	sort.SliceStable(synth, func(i, j int) bool { return synth[i].t < synth[j].t })

	// Pass 2: merge the original comm events with the synthetic schedule,
	// splitting compute bursts at every injection point.
	var lastT int64
	var rawSeq int64
	emitCompute := func(to int64) {
		if to > lastT {
			tr.Append(rank, trace.Record{Kind: trace.KindCompute, Instr: to - lastT})
			lastT = to
		}
	}
	si := 0
	// flush emits synthetic ops scheduled strictly before upTo, plus ops
	// at exactly upTo whose gating event (minEv) has been processed. On
	// an equal-time gate the cursor stops — head-of-line order at a
	// single virtual instant is immaterial to the reconstruction.
	flush := func(upTo int64, curEv int) {
		for si < len(synth) && (synth[si].t < upTo || (synth[si].t == upTo && synth[si].minEv <= curEv)) {
			emitCompute(synth[si].t)
			tr.Append(rank, synth[si].rec)
			si++
		}
	}
	for i, e := range events {
		switch e.Kind {
		case EvSend, EvISend:
			flush(e.T, i)
			emitCompute(e.T)
			// The original send is fully replaced by the already-flushed
			// chunk ISends.
		case EvRecvWait:
			flush(e.T, i)
			emitCompute(e.T)
			// The original completion wait dissolves into the per-chunk
			// Waits at the chunks' first use.
		case EvRecv, EvIRecvPost:
			flush(e.T, i-1)
			emitCompute(e.T)
			for _, spec := range irecvAt[i] {
				tr.Append(rank, spec.rec)
			}
			flush(e.T, i)
		case EvSendRaw:
			flush(e.T, i)
			emitCompute(e.T)
			rawSeq++
			tr.Append(rank, trace.Record{
				Kind: trace.KindSend, Peer: e.Peer, Tag: e.Tag,
				Bytes: int64(e.Elems) * r.Cfg.ElemBytes,
				MsgID: msgID(rank, rawSeq) + 800_000,
			})
		case EvRecvRaw:
			flush(e.T, i)
			emitCompute(e.T)
			rawSeq++
			tr.Append(rank, trace.Record{
				Kind: trace.KindRecv, Peer: e.Peer, Tag: e.Tag,
				Bytes: int64(e.Elems) * r.Cfg.ElemBytes,
				MsgID: msgID(rank, rawSeq) + 800_000,
			})
		}
	}
	flush(log.FinalClock, len(events))
	emitCompute(log.FinalClock)
	tr.Append(rank, trace.Record{Kind: trace.KindWaitAll})
}
