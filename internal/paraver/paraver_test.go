package paraver

import (
	"strings"
	"testing"

	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/trace"
)

func pingResult(t *testing.T) *sim.Result {
	t.Helper()
	tr := trace.New("ping", "base", 2)
	tr.Append(0, trace.Record{Kind: trace.KindCompute, Instr: 1_000_000})
	tr.Append(0, trace.Record{Kind: trace.KindSend, Peer: 1, Tag: 0, Bytes: 100_000})
	tr.Append(1, trace.Record{Kind: trace.KindRecv, Peer: 0, Tag: 0, Bytes: 100_000})
	tr.Append(1, trace.Record{Kind: trace.KindCompute, Instr: 500_000})
	cfg := network.Config{Processors: 2, LatencySec: 1e-5, BandwidthMBps: 100, MIPS: 1000, EagerThresholdBytes: -1, RelativeSpeed: 1}
	res, err := sim.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRenderContainsAllRanksAndStates(t *testing.T) {
	res := pingResult(t)
	out := Render(res, "ping", 60)
	if !strings.Contains(out, "P0") || !strings.Contains(out, "P1") {
		t.Fatalf("missing rank rows:\n%s", out)
	}
	if !strings.ContainsRune(out, GlyphCompute) {
		t.Fatalf("no compute glyph:\n%s", out)
	}
	if !strings.ContainsRune(out, GlyphWait) {
		t.Fatalf("no wait glyph (receiver must wait):\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d lines", len(lines))
	}
}

func TestRenderMinimumWidth(t *testing.T) {
	res := pingResult(t)
	out := Render(res, "tiny", 1) // clamped to 10
	rows := strings.Split(strings.TrimSpace(out), "\n")[1:]
	for _, row := range rows {
		inner := row[strings.Index(row, "|")+1 : strings.LastIndex(row, "|")]
		if len(inner) != 10 {
			t.Fatalf("row width %d, want 10: %q", len(inner), row)
		}
	}
}

func TestRenderComparisonSharedScale(t *testing.T) {
	res := pingResult(t)
	out := RenderComparison(res, res, "base", "overlap", 50)
	if !strings.Contains(out, "improvement of") {
		t.Fatalf("missing improvement line:\n%s", out)
	}
	if !strings.Contains(out, "0.00%") {
		t.Fatalf("identical runs must show 0%% improvement:\n%s", out)
	}
	if strings.Count(out, "P0") != 2 {
		t.Fatalf("both timelines must appear:\n%s", out)
	}
}

func TestProfileSharesSumToOne(t *testing.T) {
	res := pingResult(t)
	p := ProfileOf(res)
	sum := p.ComputeShare + p.WaitShare + p.SendShare + p.IdleShare
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %v", sum)
	}
	if p.WaitShare <= 0 {
		t.Fatal("receiver wait must appear in profile")
	}
	if p.FinishSec != res.FinishSec {
		t.Fatal("profile finish mismatch")
	}
	txt := p.Format()
	for _, want := range []string{"compute", "wait", "send", "idle", "makespan"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("profile format missing %q:\n%s", want, txt)
		}
	}
}

func TestWritePRV(t *testing.T) {
	res := pingResult(t)
	var sb strings.Builder
	if err := WritePRV(&sb, res, "ping run"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.HasPrefix(lines[0], "#PRVGO ping_run 2 ") {
		t.Fatalf("bad header: %q", lines[0])
	}
	var states, comms int
	for _, l := range lines[1:] {
		switch {
		case strings.HasPrefix(l, "1:"):
			states++
		case strings.HasPrefix(l, "3:"):
			comms++
		default:
			t.Fatalf("unknown record: %q", l)
		}
	}
	if states != len(res.Intervals) {
		t.Fatalf("state records=%d, want %d", states, len(res.Intervals))
	}
	if comms != len(res.Comms) {
		t.Fatalf("comm records=%d, want %d", comms, len(res.Comms))
	}
}

func TestCommLines(t *testing.T) {
	res := pingResult(t)
	out := CommLines(res, 0)
	if !strings.Contains(out, "P0 --(") || !strings.Contains(out, "--> P1") {
		t.Fatalf("comm lines malformed:\n%s", out)
	}
	limited := CommLines(res, 1)
	if strings.Contains(limited, "more") && len(res.Comms) == 1 {
		t.Fatalf("limit reporting wrong for single comm:\n%s", limited)
	}
}
