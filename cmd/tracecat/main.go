// Command tracecat inspects trace files produced by the framework (both
// the text .dim dialect and the compact binary format): it validates,
// summarizes, converts between codecs, and optionally replays a trace on a
// platform configuration.
//
// Examples:
//
//	overlapsim -app cg -ranks 4 -dump-traces /tmp/cg
//	tracecat /tmp/cg/cg-base.dim
//	tracecat -digest /tmp/cg/cg-base.dim
//	tracecat -convert binary -o /tmp/cg.bin /tmp/cg/cg-base.dim
//	tracecat -replay -platform cluster.json /tmp/cg.bin
//	tracecat -head 20 /tmp/cg/cg-overlap-real.dim
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	convert := flag.String("convert", "", "rewrite as 'text' or 'binary' to -o")
	digest := flag.Bool("digest", false, "print only the content digest (SHA-256 of the binary encoding) and exit")
	out := flag.String("o", "", "output path for -convert")
	head := flag.Int("head", 0, "print the first N records of every rank")
	replay := flag.Bool("replay", false, "replay the trace and print timings")
	platFile := flag.String("platform", "", "platform JSON for -replay, flat or hierarchical schema (default: testbed sized to the trace)")
	netFile := flag.String("net", "", "deprecated alias for -platform")
	dumpPlat := flag.Bool("dump-platform", false, "print the replay platform as JSON and exit")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecat [flags] <trace-file>")
		os.Exit(2)
	}
	tr, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecat: %v\n", err)
		os.Exit(1)
	}

	if *digest {
		// Digest before validation: the digest addresses the bytes, and
		// scripts pipe this straight into simd's trace store.
		d, err := trace.Digest(tr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecat: digest: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(d)
		return
	}

	if err := tr.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "tracecat: trace INVALID: %v\n", err)
		os.Exit(1)
	}
	s := tr.Stats()
	fmt.Printf("trace %q flavor %q: %d ranks, %d records\n", tr.Name, tr.Flavor, tr.NumRanks, s.Records)
	fmt.Printf("  compute: %d instructions\n", s.ComputeInstr)
	fmt.Printf("  messages: %d (%d bytes), max chunk index %d\n", s.Messages, s.BytesSent, s.MaxChunkIndex)
	fmt.Printf("  recvs: %d blocking, %d irecv, %d wait, %d waitall\n", s.Recvs, s.IRecvs, s.Waits, s.WaitAlls)
	fmt.Println("  validation: OK")

	if *head > 0 {
		for r := range tr.Ranks {
			fmt.Printf("rank %d:\n", r)
			recs := tr.Ranks[r].Records
			n := *head
			if n > len(recs) {
				n = len(recs)
			}
			for i := 0; i < n; i++ {
				rec := recs[i]
				switch rec.Kind {
				case trace.KindCompute:
					fmt.Printf("  %4d compute %d\n", i, rec.Instr)
				case trace.KindWait:
					fmt.Printf("  %4d wait h=%d\n", i, rec.Handle)
				case trace.KindWaitAll:
					fmt.Printf("  %4d waitall\n", i)
				case trace.KindIRecv:
					fmt.Printf("  %4d %s peer=%d tag=%d chunk=%d bytes=%d h=%d\n",
						i, rec.Kind, rec.Peer, rec.Tag, rec.Chunk, rec.Bytes, rec.Handle)
				default:
					fmt.Printf("  %4d %s peer=%d tag=%d chunk=%d bytes=%d\n",
						i, rec.Kind, rec.Peer, rec.Tag, rec.Chunk, rec.Bytes)
				}
			}
			if n < len(recs) {
				fmt.Printf("  ... %d more\n", len(recs)-n)
			}
		}
	}

	if *convert != "" {
		if *out == "" {
			fmt.Fprintln(os.Stderr, "tracecat: -convert needs -o")
			os.Exit(2)
		}
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecat: %v\n", err)
			os.Exit(1)
		}
		switch *convert {
		case "text":
			err = trace.Write(f, tr)
		case "binary":
			err = trace.WriteBinary(f, tr)
		default:
			err = fmt.Errorf("unknown codec %q", *convert)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecat: convert: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%s)\n", *out, *convert)
	}

	if *replay || *dumpPlat {
		plat := network.Testbed(tr.NumRanks).Platform()
		if path := *platFile; path != "" || *netFile != "" {
			if path == "" {
				path = *netFile
			}
			plat, err = network.ReadPlatformFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tracecat: %v\n", err)
				os.Exit(1)
			}
			if plat.Processors < tr.NumRanks {
				if plat.MultiNode() {
					// Growing a hierarchical platform would silently
					// change its rank packing; make the user resize it.
					fmt.Fprintf(os.Stderr, "tracecat: platform %s has %d processors but trace has %d ranks\n",
						path, plat.Processors, tr.NumRanks)
					os.Exit(1)
				}
				// A flat (one-rank-per-node) platform grows one node per
				// extra rank, preserving its contention model.
				plat = plat.WithProcessors(tr.NumRanks).WithNodes(tr.NumRanks)
			}
		}
		if *dumpPlat {
			if err := plat.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "tracecat: %v\n", err)
				os.Exit(1)
			}
			return
		}
		res, err := sim.RunOn(plat, tr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecat: replay: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("replay: finish %.6f s, total wait %.6f s, total compute %.6f s\n",
			res.FinishSec, res.TotalWaitSec(), res.TotalComputeSec())
		if plat.MultiNode() {
			ib, eb, im, em := res.TrafficSplit()
			fmt.Printf("traffic: %d B intra-node (%d msgs), %d B inter-node (%d msgs)\n", ib, im, eb, em)
		}
		fmt.Print(sim.CriticalPathOf(res).Format(6))
	}
}

// load reads a trace in either codec, sniffing the magic.
func load(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [8]byte
	if _, err := f.Read(magic[:]); err != nil {
		return nil, fmt.Errorf("read magic: %w", err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	if string(magic[:7]) == "#DIMGO " {
		return trace.Read(f)
	}
	return trace.ReadBinary(f)
}
