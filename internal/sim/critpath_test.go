package sim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestCriticalPathComputeOnly(t *testing.T) {
	tr := trace.New("t", "base", 1)
	tr.Append(0, trace.Record{Kind: trace.KindCompute, Instr: 2_000_000})
	res, err := Run(testCfg(1), tr)
	if err != nil {
		t.Fatal(err)
	}
	cp := CriticalPathOf(res)
	if len(cp.Steps) != 1 || cp.Steps[0].Kind != StepCompute {
		t.Fatalf("steps: %+v", cp.Steps)
	}
	if !near(cp.ComputeSec, res.FinishSec) {
		t.Fatalf("compute attribution %g, want %g", cp.ComputeSec, res.FinishSec)
	}
	if cp.Hops != 0 {
		t.Fatalf("hops=%d, want 0", cp.Hops)
	}
}

func TestCriticalPathCrossesTransfer(t *testing.T) {
	// Rank 0 computes 5ms then sends; rank 1 receives immediately and
	// computes 1ms. Critical path: compute(P0) -> transfer -> compute(P1).
	tr := trace.New("t", "base", 2)
	tr.Append(0, trace.Record{Kind: trace.KindCompute, Instr: 5_000_000})
	tr.Append(0, trace.Record{Kind: trace.KindSend, Peer: 1, Tag: 0, Bytes: 100_000})
	tr.Append(1, trace.Record{Kind: trace.KindRecv, Peer: 0, Tag: 0, Bytes: 100_000})
	tr.Append(1, trace.Record{Kind: trace.KindCompute, Instr: 1_000_000})
	res, err := Run(testCfg(2), tr)
	if err != nil {
		t.Fatal(err)
	}
	cp := CriticalPathOf(res)
	if cp.Hops != 1 {
		t.Fatalf("hops=%d, want 1", cp.Hops)
	}
	kinds := make([]StepKind, len(cp.Steps))
	for i, s := range cp.Steps {
		kinds[i] = s.Kind
	}
	if len(kinds) != 3 || kinds[0] != StepCompute || kinds[1] != StepTransfer || kinds[2] != StepCompute {
		t.Fatalf("kinds: %v", kinds)
	}
	if cp.Steps[0].Rank != 0 || cp.Steps[2].Rank != 1 {
		t.Fatalf("ranks along path: %+v", cp.Steps)
	}
	// Transfer attribution = flight time (10us latency + 1ms serialization).
	if !near(cp.TransferSec, 10e-6+0.001) {
		t.Fatalf("transfer=%g, want %g", cp.TransferSec, 10e-6+0.001)
	}
}

func TestCriticalPathAttributionSumsToMakespan(t *testing.T) {
	tr := ringTrace(6, 12, 800_000, 48_000)
	res, err := Run(testCfg(6), tr)
	if err != nil {
		t.Fatal(err)
	}
	cp := CriticalPathOf(res)
	sum := cp.ComputeSec + cp.SendBlockedSec + cp.TransferSec + cp.IdleSec
	if math.Abs(sum-res.FinishSec) > 1e-9*math.Max(1, res.FinishSec) {
		t.Fatalf("attribution %g != makespan %g", sum, res.FinishSec)
	}
	// Steps must be contiguous in time.
	for i := 1; i < len(cp.Steps); i++ {
		if math.Abs(cp.Steps[i].Start-cp.Steps[i-1].End) > 1e-9 {
			t.Fatalf("gap between steps %d and %d: %g vs %g", i-1, i, cp.Steps[i-1].End, cp.Steps[i].Start)
		}
	}
	if cp.Steps[len(cp.Steps)-1].End != res.FinishSec {
		t.Fatalf("path does not end at the makespan")
	}
}

func TestCriticalPathFormat(t *testing.T) {
	tr := ringTrace(4, 4, 500_000, 64_000)
	res, err := Run(testCfg(4), tr)
	if err != nil {
		t.Fatal(err)
	}
	out := CriticalPathOf(res).Format(5)
	for _, want := range []string{"critical path:", "compute", "transfer", "longest steps:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

func TestCriticalPathEmptyResult(t *testing.T) {
	cp := CriticalPathOf(&Result{})
	if len(cp.Steps) != 0 || cp.FinishSec != 0 {
		t.Fatalf("empty result path: %+v", cp)
	}
}

func TestStepKindString(t *testing.T) {
	want := map[StepKind]string{
		StepCompute: "compute", StepSendBlocked: "send-blocked",
		StepTransfer: "transfer", StepIdle: "idle",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("StepKind(%d)=%q, want %q", k, k.String(), s)
		}
	}
	if StepKind(9).String() != "step(9)" {
		t.Error("unknown step kind string")
	}
}
