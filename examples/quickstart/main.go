// Quickstart: analyze how much NAS-CG would gain from automatic
// communication-computation overlap — the complete pipeline of the paper
// (trace once, build the non-overlapped and overlapped traces, replay them
// on the MareNostrum-like testbed, compare) in a dozen lines.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/paraver"
	"repro/internal/tracer"
)

func main() {
	const ranks = 4 // the paper's Figure 4 uses 4 CG processes

	// Pick NAS-CG from the application pool and the calibrated testbed
	// (250 MB/s Myrinet-like network, Table I bus count).
	entry, _ := apps.ByName("cg", ranks)
	platform := network.TestbedFor("cg", ranks)

	// One call runs the whole framework: Valgrind-equivalent tracing,
	// trace transformation, and Dimemas-equivalent replay of all three
	// execution flavours.
	report, err := core.Analyze(entry.App, ranks, platform, tracer.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("non-overlapped execution:   %.6f s\n", report.Base.FinishSec)
	fmt.Printf("overlapped (real patterns): %.6f s  -> speedup %.2fx\n",
		report.Real.FinishSec, report.SpeedupReal)
	fmt.Printf("overlapped (ideal patterns):%.6f s  -> speedup %.2fx\n",
		report.Ideal.FinishSec, report.SpeedupIdeal)

	// The Paraver-style comparison of Figure 4: both timelines on a
	// common scale; watch the receiver Wait phases shrink.
	fmt.Println()
	fmt.Print(paraver.RenderComparison(report.Base, report.Real,
		"cg/non-overlapped", "cg/overlapped", 100))

	// Table II row: why CG overlaps well — near-linear production and
	// consumption patterns.
	p := report.Patterns.AppProduction
	c := report.Patterns.AppConsumption
	fmt.Printf("\nproduction pattern:  1st element at %.1f%%, quarter at %.1f%%, half at %.1f%%\n",
		p.FirstElem, p.Quarter, p.Half)
	fmt.Printf("consumption pattern: nothing %.1f%%, quarter %.1f%%, half %.1f%%\n",
		c.Nothing, c.Quarter, c.Half)
}
