// Package core is the public face of the framework: it chains the tracer
// (Valgrind equivalent), the replay simulator (Dimemas equivalent), the
// pattern analyzer, and the visualization layer into the one-call pipeline
// the paper describes in Section III.
//
// One Analyze call performs what the paper's Figure 3 shows: the
// application executes once under instrumentation, the tracer emits the
// non-overlapped trace plus the two overlapped traces, Dimemas-style replay
// reconstructs all three time behaviours on the configured platform, and
// the results are bundled with the production/consumption pattern analysis.
package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/pattern"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracer"
)

// App is an application kernel the framework can analyze.
type App struct {
	// Name labels traces and reports (lower-case, e.g. "cg").
	Name string
	// Kernel runs one rank of the application against the instrumented
	// API.
	Kernel func(p *tracer.Proc)
}

// Flavor selects one of the three reconstructed executions.
type Flavor string

// The three execution flavours of the paper.
const (
	FlavorBase  Flavor = "base"
	FlavorReal  Flavor = "overlap-real"
	FlavorIdeal Flavor = "overlap-ideal"
)

// Report is the full output of one analysis.
type Report struct {
	App   string
	Ranks int
	// Network is the flat projection of the platform (the interconnect
	// link class), kept for legacy reporting paths.
	Network network.Config
	// Platform is the full (possibly hierarchical) platform the report
	// was computed on; all re-replays (bandwidth searches, sweeps) use
	// it. For flat analyses it is the degenerate one-rank-per-node form.
	Platform network.Platform

	// Traces are the three generated traces (validated).
	BaseTrace, RealTrace, IdealTrace *trace.Trace

	// Results are the three reconstructed time behaviours on Network.
	Base, Real, Ideal *sim.Result

	// SpeedupReal and SpeedupIdeal compare overlapped flavours against
	// the non-overlapped execution (Fig. 6a).
	SpeedupReal, SpeedupIdeal float64

	// Patterns holds the Table II / Fig. 5 analysis.
	Patterns *pattern.Analysis

	// progs lazily caches the compiled replay program of each flavour, so
	// the bandwidth searches and sweeps — which replay one flavour dozens
	// of times on platform variants — compile it once.
	progMu sync.Mutex
	progs  map[Flavor]*sim.Program
}

// programOf returns the flavour's compiled replay program, compiling and
// caching it on first use. Safe for concurrent use.
func (r *Report) programOf(f Flavor) (*sim.Program, error) {
	tr := r.TraceOf(f)
	if tr == nil {
		return nil, fmt.Errorf("core: unknown flavor %q", f)
	}
	r.progMu.Lock()
	defer r.progMu.Unlock()
	if prog, ok := r.progs[f]; ok {
		return prog, nil
	}
	prog, err := sim.Compile(tr)
	if err != nil {
		return nil, err
	}
	if r.progs == nil {
		r.progs = make(map[Flavor]*sim.Program, 3)
	}
	r.progs[f] = prog
	return prog, nil
}

// Analyze traces the application once on ranks processes and reconstructs
// the three execution flavours on the given platform. The three
// build-and-replay jobs run concurrently on the default engine.
func Analyze(app App, ranks int, netCfg network.Config, tCfg tracer.Config) (*Report, error) {
	return AnalyzeWith(context.Background(), nil, app, ranks, netCfg, tCfg)
}

// AnalyzeWith is Analyze under an explicit context and engine (nil selects
// the default engine).
func AnalyzeWith(ctx context.Context, eng *engine.Engine, app App, ranks int, netCfg network.Config, tCfg tracer.Config) (*Report, error) {
	if app.Kernel == nil {
		return nil, fmt.Errorf("core: app %q has no kernel", app.Name)
	}
	if err := netCfg.Validate(); err != nil {
		return nil, err
	}
	run, err := tracer.Trace(app.Name, ranks, tCfg, app.Kernel)
	if err != nil {
		return nil, fmt.Errorf("core: tracing %q: %w", app.Name, err)
	}
	return AnalyzeRun(ctx, eng, run, netCfg)
}

// AnalyzeOn is Analyze on a hierarchical platform: rank placement and the
// intra/inter link split shape every replay.
func AnalyzeOn(ctx context.Context, eng *engine.Engine, app App, ranks int, plat network.Platform, tCfg tracer.Config) (*Report, error) {
	if app.Kernel == nil {
		return nil, fmt.Errorf("core: app %q has no kernel", app.Name)
	}
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	run, err := tracer.Trace(app.Name, ranks, tCfg, app.Kernel)
	if err != nil {
		return nil, fmt.Errorf("core: tracing %q: %w", app.Name, err)
	}
	return AnalyzeRunOn(ctx, eng, run, plat)
}

// AnalyzeRun reconstructs the three execution flavours of an
// already-traced run on the given flat platform — the fan-out half of
// Analyze. Callers that trace through the engine's shared cache
// (engine.TraceCache) use it to analyze one traced execution under many
// platforms without re-tracing.
func AnalyzeRun(ctx context.Context, eng *engine.Engine, run *tracer.Run, netCfg network.Config) (*Report, error) {
	if err := netCfg.Validate(); err != nil {
		return nil, err
	}
	return AnalyzeRunOn(ctx, eng, run, netCfg.Platform())
}

// AnalyzeRunOn is AnalyzeRun on a hierarchical platform. The per-flavour
// trace builds and replays are one engine job each.
func AnalyzeRunOn(ctx context.Context, eng *engine.Engine, run *tracer.Run, plat network.Platform) (*Report, error) {
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	rep := &Report{App: run.Name, Ranks: run.NumRanks, Network: plat.InterConfig(), Platform: plat}
	type flavorJob struct {
		flavor Flavor
		build  func() *trace.Trace
	}
	jobs := []flavorJob{
		{FlavorBase, run.BaseTrace},
		{FlavorReal, run.OverlapReal},
		{FlavorIdeal, run.OverlapIdeal},
	}
	type flavorOut struct {
		tr  *trace.Trace
		res *sim.Result
	}
	outs, err := engine.Map(ctx, eng, len(jobs), func(ctx context.Context, i int) (flavorOut, error) {
		tr := jobs[i].build()
		if err := tr.Validate(); err != nil {
			return flavorOut{}, fmt.Errorf("core: generated trace invalid: %w", err)
		}
		res, err := sim.RunOn(plat, tr)
		if err != nil {
			return flavorOut{}, fmt.Errorf("core: replaying %s: %w", jobs[i].flavor, err)
		}
		return flavorOut{tr: tr, res: res}, nil
	})
	if err != nil {
		return nil, err
	}
	rep.BaseTrace, rep.Base = outs[0].tr, outs[0].res
	rep.RealTrace, rep.Real = outs[1].tr, outs[1].res
	rep.IdealTrace, rep.Ideal = outs[2].tr, outs[2].res
	rep.SpeedupReal = metrics.Speedup(rep.Base.FinishSec, rep.Real.FinishSec)
	rep.SpeedupIdeal = metrics.Speedup(rep.Base.FinishSec, rep.Ideal.FinishSec)
	rep.Patterns = pattern.Analyze(run)
	return rep, nil
}

// TraceOf returns the generated trace of one flavour.
func (r *Report) TraceOf(f Flavor) *trace.Trace {
	switch f {
	case FlavorBase:
		return r.BaseTrace
	case FlavorReal:
		return r.RealTrace
	case FlavorIdeal:
		return r.IdealTrace
	default:
		return nil
	}
}

// ResultOf returns the reconstructed behaviour of one flavour on the
// report's platform.
func (r *Report) ResultOf(f Flavor) *sim.Result {
	switch f {
	case FlavorBase:
		return r.Base
	case FlavorReal:
		return r.Real
	case FlavorIdeal:
		return r.Ideal
	default:
		return nil
	}
}

// FinishAt replays one flavour's trace on a modified flat platform and
// returns its makespan. It powers the bandwidth sweeps of Fig. 6b/6c.
func (r *Report) FinishAt(f Flavor, cfg network.Config) (float64, error) {
	return r.FinishOn(f, cfg.Platform())
}

// FinishOn replays one flavour's trace on a modified hierarchical platform
// and returns its makespan. The flavour's compiled program is cached on
// the report and the replay runs on a pooled arena, so search loops
// (metrics.MinBandwidth probes this dozens of times) pay for compilation
// once and allocate no per-replay simulator state.
func (r *Report) FinishOn(f Flavor, plat network.Platform) (float64, error) {
	prog, err := r.programOf(f)
	if err != nil {
		return 0, err
	}
	return sim.ReplayFinish(plat, prog)
}

// finishFunc adapts FinishOn to the metrics search interface, swapping
// only the interconnect bandwidth of the report's platform: on a
// hierarchical platform the searches stress the interconnect while the
// intra-node links stay fixed, which is the knob a cluster buyer controls.
func (r *Report) finishFunc(f Flavor) metrics.FinishFunc {
	return func(bw float64) (float64, error) {
		return r.FinishOn(f, r.Platform.WithInterBandwidth(bw))
	}
}

// RelaxedBandwidth reproduces Fig. 6b for this application: the minimum
// bandwidth at which the overlapped execution still matches the
// performance of the non-overlapped execution on the report's reference
// platform. Lower is better — it quantifies how much cheaper a network the
// overlapped code tolerates.
func (r *Report) RelaxedBandwidth(f Flavor, opts metrics.SearchOptions) (float64, error) {
	if f == FlavorBase {
		return 0, fmt.Errorf("core: RelaxedBandwidth needs an overlapped flavor")
	}
	return metrics.MinBandwidth(r.finishFunc(f), r.Base.FinishSec, opts)
}

// EquivalentBandwidth reproduces Fig. 6c: the bandwidth the non-overlapped
// execution would need to match the overlapped execution on the reference
// platform. +Inf means no bandwidth suffices (the Sweep3D result).
func (r *Report) EquivalentBandwidth(f Flavor, opts metrics.SearchOptions) (float64, error) {
	if f == FlavorBase {
		return 0, fmt.Errorf("core: EquivalentBandwidth needs an overlapped flavor")
	}
	target := r.ResultOf(f).FinishSec
	return metrics.MinBandwidth(r.finishFunc(FlavorBase), target, opts)
}

// BandwidthSweep replays one flavour across the given bandwidths and
// returns the finish-time series, the raw data behind the Fig. 6 plots.
// The replay points run concurrently on the default engine.
func (r *Report) BandwidthSweep(f Flavor, bandwidths []float64) (*metrics.Series, error) {
	return r.BandwidthSweepWith(context.Background(), nil, f, bandwidths)
}

// BandwidthSweepWith is BandwidthSweep under an explicit context and
// engine (nil selects the default engine): every bandwidth point replays
// the shared flavour trace on one pool worker, and the series keeps the
// input bandwidth order.
func (r *Report) BandwidthSweepWith(ctx context.Context, eng *engine.Engine, f Flavor, bandwidths []float64) (*metrics.Series, error) {
	fins, err := engine.Map(ctx, eng, len(bandwidths), func(ctx context.Context, i int) (float64, error) {
		return r.FinishOn(f, r.Platform.WithInterBandwidth(bandwidths[i]))
	})
	if err != nil {
		return nil, err
	}
	s := &metrics.Series{Label: fmt.Sprintf("%s/%s", r.App, f)}
	for i, bw := range bandwidths {
		s.Add(bw, fins[i])
	}
	return s, nil
}
