package cluster

import (
	"bytes"
	"container/list"
	"context"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tuning defaults. K doubles as bucket capacity and replication factor
// (Kademlia couples them); Alpha is the lookup's parallelism.
const (
	// DefaultK is the bucket size and replication factor. 8 suits the
	// cluster sizes simd runs at (a handful to tens of nodes); the
	// classic 20 only pays off at millions.
	DefaultK = 8
	// DefaultAlpha is how many peers an iterative lookup queries
	// concurrently per round.
	DefaultAlpha = 3
	// DefaultMaxBlobs bounds the local blob store (values replicated to
	// this node), evicting least recently used beyond it.
	DefaultMaxBlobs = 16384
	// DefaultPingTimeout bounds the liveness probe a full bucket issues
	// before evicting its least-recently-seen member.
	DefaultPingTimeout = 2 * time.Second
)

// Executor runs an opaque exec request on behalf of a peer — the hook
// the service layer registers so OpExec reaches its job manager. The
// returned bytes travel back verbatim as the RPC response value.
type Executor func(ctx context.Context, kind string, payload []byte) ([]byte, error)

// Config assembles a Node.
type Config struct {
	// Name is the operator-chosen node identity (-node-id); the node's
	// 160-bit ID is NodeID(Name).
	Name string
	// Addr is the address peers reach this node at, in whatever scheme
	// Transport speaks ("host:port" for HTTP, any label in-process).
	Addr string
	// Transport carries outbound RPCs. Required.
	Transport Transport
	// K overrides the bucket size / replication factor (DefaultK).
	K int
	// Alpha overrides the lookup parallelism (DefaultAlpha).
	Alpha int
	// MaxBlobs overrides the local blob-store bound (DefaultMaxBlobs).
	MaxBlobs int
	// PingTimeout overrides the eviction probe deadline.
	PingTimeout time.Duration
	// Logger receives the node's structured logs; nil discards them.
	Logger *slog.Logger
}

// Node is one cluster member: a routing table, a bounded local blob
// store, and the RPC surface. All methods are safe for concurrent use.
type Node struct {
	name     string
	self     Contact
	k        int
	alpha    int
	pingWait time.Duration
	tr       Transport
	table    *RoutingTable
	blobs    *blobStore
	log      *slog.Logger
	draining atomic.Bool
	exec     atomic.Pointer[Executor]
}

// NewNode builds a node from cfg. It holds no sockets itself — the
// transport does — so construction never fails except on a missing
// transport or name.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("cluster: node needs a transport")
	}
	if cfg.Name == "" {
		return nil, fmt.Errorf("cluster: node needs a name")
	}
	if cfg.Addr == "" {
		return nil, fmt.Errorf("cluster: node needs an address")
	}
	k := cfg.K
	if k <= 0 {
		k = DefaultK
	}
	alpha := cfg.Alpha
	if alpha <= 0 {
		alpha = DefaultAlpha
	}
	maxBlobs := cfg.MaxBlobs
	if maxBlobs <= 0 {
		maxBlobs = DefaultMaxBlobs
	}
	pingWait := cfg.PingTimeout
	if pingWait <= 0 {
		pingWait = DefaultPingTimeout
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(discardHandler{})
	}
	n := &Node{
		name:     cfg.Name,
		self:     Contact{ID: NodeID(cfg.Name), Addr: cfg.Addr},
		k:        k,
		alpha:    alpha,
		pingWait: pingWait,
		tr:       cfg.Transport,
		blobs:    newBlobStore(maxBlobs),
		log:      log,
	}
	n.table = NewRoutingTable(n.self.ID, k, n.evictionPing)
	publishNodeMetrics(n)
	return n, nil
}

// Self returns this node's contact.
func (n *Node) Self() Contact { return n.self }

// Name returns the operator-chosen node name.
func (n *Node) Name() string { return n.name }

// K returns the replication factor.
func (n *Node) K() int { return n.k }

// Table exposes the routing table (status surfaces and tests).
func (n *Node) Table() *RoutingTable { return n.table }

// SetExecutor registers the exec hook (see Executor).
func (n *Node) SetExecutor(e Executor) {
	if e == nil {
		n.exec.Store(nil)
		return
	}
	n.exec.Store(&e)
}

// Draining reports whether Drain was called.
func (n *Node) Draining() bool { return n.draining.Load() }

// Drain flips the node into its polite exit: it keeps answering reads
// of values it already holds (a draining node never strands results),
// refuses fresh stores, and marks every response Draining so peers
// evict it from their tables instead of routing new work here.
func (n *Node) Drain() { n.draining.Store(true) }

// ---------------------------------------------------------------------------
// RPC receive path

// HandleRPC is the node's RPC entry point; transports route every
// received request here. It never returns nil.
func (n *Node) HandleRPC(ctx context.Context, req *Request) *Response {
	resp := &Response{From: n.self, Draining: n.draining.Load()}
	if err := req.Validate(); err != nil {
		resp.Err = err.Error()
		mRPCErrors.With(string(req.Op)).Inc()
		return resp
	}
	mRPCs.With(string(req.Op), "served").Inc()
	if req.From.ID != n.self.ID {
		n.table.Update(req.From)
	}
	switch req.Op {
	case OpPing:
		// The response envelope is the whole answer.
	case OpStore:
		if resp.Draining && !n.blobs.Has(req.Key) {
			// Fresh keys are refused while draining; re-replication of
			// keys already held stays welcome so nothing regresses.
			resp.Err = "cluster: node draining, not accepting new keys"
			return resp
		}
		n.blobs.Put(req.Key, req.Kind, req.Value)
		resp.Stored = true
	case OpFindNode:
		resp.Contacts = n.table.KClosest(KeyID(req.Key), n.k)
	case OpFindValue:
		if v, kind, ok := n.blobs.Get(req.Key); ok {
			resp.Found = true
			resp.Value = v
			resp.Kind = kind
			return resp
		}
		resp.Contacts = n.table.KClosest(KeyID(req.Key), n.k)
	case OpExec:
		ep := n.exec.Load()
		if ep == nil {
			resp.Err = "cluster: node has no executor"
			return resp
		}
		out, err := (*ep)(ctx, req.Kind, req.Value)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		resp.Value = out
	}
	return resp
}

// ---------------------------------------------------------------------------
// RPC send path

// call issues one RPC and folds the answer into the routing table: a
// healthy responder is refreshed, a draining one is removed (that is
// how a departing node ages out), and a transport failure evicts the
// contact so lookups stop routing through it.
func (n *Node) call(ctx context.Context, to Contact, req *Request) (*Response, error) {
	req.From = n.self
	mRPCs.With(string(req.Op), "sent").Inc()
	resp, err := n.tr.Call(ctx, to.Addr, req)
	if err != nil {
		mRPCErrors.With(string(req.Op)).Inc()
		if !to.ID.IsZero() {
			n.table.Remove(to.ID)
		}
		return nil, err
	}
	if resp.Draining {
		n.table.Remove(resp.From.ID)
	} else if resp.From.ID != n.self.ID {
		n.table.Update(resp.From)
	}
	return resp, nil
}

// evictionPing is the routing table's liveness probe: a raw transport
// ping with no table side effects (Update runs inside the probe's
// caller; feeding results back would recurse).
func (n *Node) evictionPing(c Contact) bool {
	ctx, cancel := context.WithTimeout(context.Background(), n.pingWait)
	defer cancel()
	mRPCs.With(string(OpPing), "sent").Inc()
	resp, err := n.tr.Call(ctx, c.Addr, &Request{Op: OpPing, From: n.self})
	return err == nil && resp.Err == "" && !resp.Draining
}

// Ping probes addr and returns the peer's contact.
func (n *Node) Ping(ctx context.Context, addr string) (Contact, error) {
	resp, err := n.call(ctx, Contact{Addr: addr}, &Request{Op: OpPing})
	if err != nil {
		return Contact{}, err
	}
	if resp.Err != "" {
		return Contact{}, fmt.Errorf("cluster: ping %s: %s", addr, resp.Err)
	}
	return resp.From, nil
}

// Join bootstraps into the cluster through the given peer addresses:
// each reachable bootstrap lands in the routing table, then a lookup of
// the node's own ID walks outward and fills nearby buckets — the
// standard Kademlia join. At least one bootstrap must answer.
func (n *Node) Join(ctx context.Context, addrs ...string) error {
	reached := 0
	for _, addr := range addrs {
		if addr == "" || addr == n.self.Addr {
			continue
		}
		c, err := n.Ping(ctx, addr)
		if err != nil {
			n.log.Warn("cluster: bootstrap unreachable", slog.String("addr", addr), slog.String("error", err.Error()))
			continue
		}
		reached++
		n.log.Info("cluster: joined via bootstrap",
			slog.String("addr", addr), slog.String("peer", c.ID.String()))
	}
	if reached == 0 && len(addrs) > 0 {
		return fmt.Errorf("cluster: no bootstrap peer reachable (tried %v)", addrs)
	}
	n.iterate(ctx, n.self.ID, "", false)
	return nil
}

// iterate is the α-parallel convergent lookup shared by find-node and
// find-value: it keeps a shortlist of the closest known contacts,
// queries the α closest not yet asked, folds returned contacts back
// in, and stops when the K closest have all been queried (or a value
// turns up). Returns the found response (nil if none) and the final
// K-closest shortlist.
func (n *Node) iterate(ctx context.Context, target ID, key string, wantValue bool) (*Response, []Contact) {
	if key == "" {
		key = "id:" + target.String()
	}
	op := OpFindNode
	if wantValue {
		op = OpFindValue
	}
	type result struct {
		resp *Response
		from Contact
	}
	shortlist := map[ID]Contact{}
	queried := map[ID]bool{n.self.ID: true}
	for _, c := range n.table.KClosest(target, n.k) {
		shortlist[c.ID] = c
	}
	for {
		// The next α closest contacts not yet asked.
		candidates := make([]Contact, 0, len(shortlist))
		for id, c := range shortlist {
			if !queried[id] {
				candidates = append(candidates, c)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sortByDistance(target, candidates)
		if len(candidates) > n.alpha {
			candidates = candidates[:n.alpha]
		}
		results := make(chan result, len(candidates))
		for _, c := range candidates {
			queried[c.ID] = true
			go func(c Contact) {
				resp, err := n.call(ctx, c, &Request{Op: op, Key: key})
				if err != nil {
					results <- result{}
					return
				}
				results <- result{resp: resp, from: c}
			}(c)
		}
		var found *Response
		for range candidates {
			r := <-results
			if r.resp == nil {
				continue
			}
			if wantValue && r.resp.Found {
				found = r.resp
				continue
			}
			for _, c := range r.resp.Contacts {
				if c.ID == n.self.ID || c.ID.IsZero() || c.Addr == "" {
					continue
				}
				if _, ok := shortlist[c.ID]; !ok {
					shortlist[c.ID] = c
				}
			}
		}
		if found != nil {
			return found, closestOf(shortlist, target, n.k)
		}
		// Converged when the K closest known contacts have all answered.
		done := true
		for _, c := range closestOf(shortlist, target, n.k) {
			if !queried[c.ID] {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	return nil, closestOf(shortlist, target, n.k)
}

// closestOf sorts a shortlist and returns its k nearest members.
func closestOf(m map[ID]Contact, target ID, k int) []Contact {
	out := make([]Contact, 0, len(m))
	for _, c := range m {
		out = append(out, c)
	}
	sortByDistance(target, out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// ---------------------------------------------------------------------------
// The DHT surface

// Owner returns the cluster member closest to key — the node that owns
// its computation. The decision reads only the local routing table (no
// RPCs): with converged tables every node names the same owner, and a
// stale table merely shifts work to a near-owner, which the service
// layer's fallbacks absorb.
func (n *Node) Owner(key string) Contact {
	target := KeyID(key)
	best := n.self
	for _, c := range n.table.KClosest(target, 1) {
		if Closer(target, c.ID, best.ID) {
			best = c
		}
	}
	return best
}

// Owners returns the K closest cluster members to key (self included
// when it qualifies) — the key's replica set.
func (n *Node) Owners(key string) []Contact {
	target := KeyID(key)
	cs := append(n.table.KClosest(target, n.k), n.self)
	sortByDistance(target, cs)
	if len(cs) > n.k {
		cs = cs[:n.k]
	}
	return cs
}

// Store replicates a value to its key's K closest nodes (self included
// when it qualifies; a draining node skips its own copy). Returns how
// many replicas acknowledged. Failing peers are skipped — replication
// is best effort; the content address makes re-derivation safe.
func (n *Node) Store(ctx context.Context, key, kind string, value []byte) int {
	stored := 0
	for _, c := range n.Owners(key) {
		if c.ID == n.self.ID {
			if !n.draining.Load() {
				n.blobs.Put(key, kind, value)
				stored++
			}
			continue
		}
		resp, err := n.call(ctx, c, &Request{Op: OpStore, Key: key, Kind: kind, Value: value})
		if err != nil || resp.Err != "" || !resp.Stored {
			continue
		}
		stored++
	}
	if stored > 0 {
		mStores.Add(uint64(stored))
	}
	return stored
}

// Get fetches a value by key: the local blob store first, then an
// iterative find-value across the cluster. A remote hit is cached
// locally (the cooperative-cache read-through).
func (n *Node) Get(ctx context.Context, key string) ([]byte, string, bool) {
	if v, kind, ok := n.blobs.Get(key); ok {
		return v, kind, true
	}
	if n.table.Len() == 0 {
		return nil, "", false
	}
	resp, _ := n.iterate(ctx, KeyID(key), key, true)
	if resp == nil || !resp.Found {
		return nil, "", false
	}
	n.blobs.Put(key, resp.Kind, resp.Value)
	return resp.Value, resp.Kind, true
}

// Has reports whether the key is in the local blob store.
func (n *Node) Has(key string) bool { return n.blobs.Has(key) }

// GetCached returns a locally held value without touching the network —
// for callers that have a cheaper plan than a cluster lookup when the
// blob is not already here (e.g. computing a self-owned grid point).
func (n *Node) GetCached(key string) ([]byte, string, bool) { return n.blobs.Get(key) }

// Exec runs an opaque request on a specific peer — the cross-node
// singleflight's forwarding edge. The callee's executor errors come
// back as errors here.
func (n *Node) Exec(ctx context.Context, to Contact, kind string, payload []byte) ([]byte, error) {
	resp, err := n.call(ctx, to, &Request{Op: OpExec, Kind: kind, Value: payload})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("cluster: exec on %s: %s", to.Addr, resp.Err)
	}
	return resp.Value, nil
}

// ---------------------------------------------------------------------------
// Status

// Status is the introspection document behind GET /v1/cluster/status
// and `simdctl cluster status`.
type Status struct {
	Name     string `json:"name"`
	ID       ID     `json:"id"`
	Addr     string `json:"addr"`
	Draining bool   `json:"draining"`
	// K is the bucket size / replication factor.
	K int `json:"k"`
	// Peers is every routing-table contact, ordered by ID.
	Peers []Contact `json:"peers"`
	// StoredKeys counts local blob-store entries; KeysByKind splits
	// them by kind; OwnedKeys counts the subset this node is the
	// cluster-wide owner of.
	StoredKeys int            `json:"stored_keys"`
	OwnedKeys  int            `json:"owned_keys"`
	KeysByKind map[string]int `json:"keys_by_kind,omitempty"`
}

// Status snapshots the node.
func (n *Node) Status() Status {
	peers := n.table.Contacts()
	sort.Slice(peers, func(i, j int) bool {
		return bytes.Compare(peers[i].ID[:], peers[j].ID[:]) < 0
	})
	st := Status{
		Name:     n.name,
		ID:       n.self.ID,
		Addr:     n.self.Addr,
		Draining: n.draining.Load(),
		K:        n.k,
		Peers:    peers,
	}
	keys := n.blobs.Keys()
	st.StoredKeys = len(keys)
	st.KeysByKind = map[string]int{}
	for _, k := range keys {
		st.KeysByKind[k.kind]++
		if n.Owner(k.key).ID == n.self.ID {
			st.OwnedKeys++
		}
	}
	if len(st.KeysByKind) == 0 {
		st.KeysByKind = nil
	}
	return st
}

// ---------------------------------------------------------------------------
// Local blob store

// blobKey pairs a stored key with its kind label (status reporting).
type blobKey struct{ key, kind string }

// blobStore is the bounded local value store: an LRU over replicated
// blobs, so a node holds the hot slice of its key range and quietly
// forgets the cold tail (content addressing makes re-derivation safe).
type blobStore struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type blobEntry struct {
	key, kind string
	value     []byte
}

func newBlobStore(max int) *blobStore {
	return &blobStore{max: max, ll: list.New(), items: map[string]*list.Element{}}
}

func (s *blobStore) Put(key, kind string, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*blobEntry).kind = kind
		el.Value.(*blobEntry).value = value
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&blobEntry{key: key, kind: kind, value: value})
	for s.ll.Len() > s.max {
		el := s.ll.Back()
		s.ll.Remove(el)
		delete(s.items, el.Value.(*blobEntry).key)
	}
}

func (s *blobStore) Get(key string) ([]byte, string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, "", false
	}
	s.ll.MoveToFront(el)
	e := el.Value.(*blobEntry)
	return e.value, e.kind, true
}

func (s *blobStore) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.items[key]
	return ok
}

func (s *blobStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

func (s *blobStore) Keys() []blobKey {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]blobKey, 0, len(s.items))
	for el := s.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*blobEntry)
		out = append(out, blobKey{key: e.key, kind: e.kind})
	}
	return out
}

// discardHandler is a slog.Handler that drops everything (the library
// default, so embedders stay quiet unless they opt in).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
