package pattern

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Export writers for the Table II statistics: CSV for plotting pipelines
// and Markdown for reports (EXPERIMENTS.md is generated from these
// numbers).

// WriteTableIICSV emits one row per application and side:
//
//	app,side,col1,col2,col3,col4
//	cg,production,3.72,26.60,49.54,95.43
//	cg,consumption,3.72,26.66,49.60,
//
// NaN (unchunkable) columns are left empty.
func WriteTableIICSV(w io.Writer, rows []*Analysis) error {
	if _, err := fmt.Fprintln(w, "app,side,first_or_nothing,quarter,half,whole"); err != nil {
		return err
	}
	num := func(v float64) string {
		if math.IsNaN(v) {
			return ""
		}
		return fmt.Sprintf("%.2f", v)
	}
	for _, an := range rows {
		p := an.AppProduction
		if _, err := fmt.Fprintf(w, "%s,production,%s,%s,%s,%s\n",
			an.App, num(p.FirstElem), num(p.Quarter), num(p.Half), num(p.Whole)); err != nil {
			return err
		}
		c := an.AppConsumption
		if _, err := fmt.Fprintf(w, "%s,consumption,%s,%s,%s,\n",
			an.App, num(c.Nothing), num(c.Quarter), num(c.Half)); err != nil {
			return err
		}
	}
	return nil
}

// WriteTableIIMarkdown emits the two Table II panels as Markdown tables.
func WriteTableIIMarkdown(w io.Writer, rows []*Analysis) error {
	if _, err := fmt.Fprintln(w, "### Table II(a) — production\n\n| app | 1st element | quarter | half | whole |\n|---|---|---|---|---|\n| ideal | 0% | 25% | 50% | 100% |"); err != nil {
		return err
	}
	for _, an := range rows {
		p := an.AppProduction
		if _, err := fmt.Fprintf(w, "| %s | %s | %s | %s | %s |\n",
			an.App, pct(p.FirstElem), pct(p.Quarter), pct(p.Half), pct(p.Whole)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "\n### Table II(b) — consumption\n\n| app | nothing | quarter | half |\n|---|---|---|---|\n| ideal | 0% | 25% | 50% |"); err != nil {
		return err
	}
	for _, an := range rows {
		c := an.AppConsumption
		if _, err := fmt.Fprintf(w, "| %s | %s | %s | %s |\n",
			an.App, pct(c.Nothing), pct(c.Quarter), pct(c.Half)); err != nil {
			return err
		}
	}
	return nil
}

// PerBufferRows flattens an analysis into sortable per-buffer rows, for
// programmatic consumers of the per-buffer breakdown.
type BufferRow struct {
	Buffer string
	Side   Side
	// Cols holds FirstElem/Quarter/Half/Whole for production and
	// Nothing/Quarter/Half/NaN for consumption.
	Cols      [4]float64
	Intervals int
	Chunkable bool
}

// PerBufferRows returns production then consumption rows, each sorted by
// buffer name.
func (an *Analysis) PerBufferRows() []BufferRow {
	var rows []BufferRow
	names := make([]string, 0, len(an.Production))
	for n := range an.Production {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := an.Production[n]
		rows = append(rows, BufferRow{
			Buffer: n, Side: Production,
			Cols:      [4]float64{p.FirstElem, p.Quarter, p.Half, p.Whole},
			Intervals: p.Intervals, Chunkable: p.Chunkable,
		})
	}
	names = names[:0]
	for n := range an.Consumption {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		c := an.Consumption[n]
		rows = append(rows, BufferRow{
			Buffer: n, Side: Consumption,
			Cols:      [4]float64{c.Nothing, c.Quarter, c.Half, math.NaN()},
			Intervals: c.Intervals, Chunkable: c.Chunkable,
		})
	}
	return rows
}
