package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTripTiny(t *testing.T) {
	tr := tinyTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestBinaryRoundTripMetadata(t *testing.T) {
	tr := New("name with spaces % and \n newline", "overlap-ideal", 3)
	tr.Append(1, Record{Kind: KindWaitAll})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Flavor != tr.Flavor || got.NumRanks != 3 {
		t.Fatalf("metadata lost: %+v", got)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC"),
		append(append([]byte{}, binaryMagic[:]...), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff), // absurd string length
	}
	for i, in := range cases {
		if _, err := ReadBinary(bytes.NewReader(in)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestBinaryRejectsTruncation(t *testing.T) {
	tr := tinyTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full)-1; cut += 3 {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(full))
		}
	}
}

func TestPropertyBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTrace(rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBinaryAndTextAgree(t *testing.T) {
	// A trace surviving one codec must survive the other and produce the
	// same structure.
	f := func(seed int64) bool {
		tr := randomTrace(rand.New(rand.NewSource(seed)))
		var tb, bb bytes.Buffer
		if err := Write(&tb, tr); err != nil {
			return false
		}
		if err := WriteBinary(&bb, tr); err != nil {
			return false
		}
		fromText, err := Read(&tb)
		if err != nil {
			return false
		}
		fromBin, err := ReadBinary(&bb)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(fromText, fromBin)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryDensityBeatsText(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := randomTrace(rng)
	for i := 0; i < 5; i++ {
		more := randomTrace(rng)
		for r := range more.Ranks {
			if r < len(tr.Ranks) {
				tr.Ranks[r].Records = append(tr.Ranks[r].Records, more.Ranks[r].Records...)
			}
		}
	}
	var tb, bb bytes.Buffer
	if err := Write(&tb, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bb, tr); err != nil {
		t.Fatal(err)
	}
	if bb.Len() >= tb.Len() {
		t.Fatalf("binary (%d B) not denser than text (%d B)", bb.Len(), tb.Len())
	}
}

func TestBinaryUnknownKindRejectedOnWrite(t *testing.T) {
	tr := New("x", "y", 1)
	tr.Append(0, Record{Kind: Kind(200)})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err == nil || !strings.Contains(err.Error(), "cannot serialize") {
		t.Fatalf("unknown kind accepted: %v", err)
	}
}
