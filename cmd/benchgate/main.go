// Command benchgate is the CI benchmark regression gate: it compares
// ns/op between two benchmark runs and exits non-zero when any gated
// benchmark regressed by more than the threshold.
//
// Two comparison modes:
//
//	benchgate -old old.txt -new new.txt            # two `go test -bench` outputs
//	benchgate -baseline BENCH_sim_multicore.json \
//	          -group gomaxprocs=1 -new new.txt     # committed JSON baseline
//
// The two-file mode is what CI uses: it runs the gated benchmarks at
// the merge base and at HEAD on the same runner, so the ratio is
// machine-consistent. The JSON mode compares a fresh run against the
// committed baseline — only meaningful on the machine that recorded it
// (ns/op does not transfer across hosts; see the baseline's comment).
//
// Each benchmark's ns/op is the minimum across -count repetitions (the
// least-noisy estimator for a gate: the min is the run least disturbed
// by the machine). Benchmarks are matched by name with any trailing
// -<procs> suffix stripped, filtered by -match, and a benchmark present
// on only one side is ignored (new benchmarks don't fail the gate).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	oldPath := flag.String("old", "", "baseline `go test -bench` output file")
	newPath := flag.String("new", "", "candidate `go test -bench` output file")
	baseline := flag.String("baseline", "", "committed baseline JSON (e.g. BENCH_sim_multicore.json); alternative to -old")
	group := flag.String("group", "gomaxprocs=1", "benchmark group inside -baseline")
	match := flag.String("match", "BenchmarkSimCompiledReplay|BenchmarkScenarioStream", "regexp of benchmark names to gate")
	threshold := flag.Float64("threshold", 10, "maximum allowed ns/op regression in percent")
	flag.Parse()

	if err := run(*oldPath, *newPath, *baseline, *group, *match, *threshold, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
}

func run(oldPath, newPath, baseline, group, match string, threshold float64, w io.Writer) error {
	if newPath == "" {
		return fmt.Errorf("-new is required")
	}
	if (oldPath == "") == (baseline == "") {
		return fmt.Errorf("exactly one of -old or -baseline is required")
	}
	re, err := regexp.Compile(match)
	if err != nil {
		return fmt.Errorf("-match: %w", err)
	}

	var old map[string]float64
	if oldPath != "" {
		old, err = readBenchFile(oldPath)
	} else {
		old, err = readBaselineJSON(baseline, group)
	}
	if err != nil {
		return err
	}
	cur, err := readBenchFile(newPath)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(old))
	for name := range old {
		if re.MatchString(name) {
			if _, ok := cur[name]; ok {
				names = append(names, name)
			}
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("no gated benchmarks matched %q on both sides — gate misconfigured?", match)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		delta := (cur[name] - old[name]) / old[name] * 100
		verdict := "ok"
		if delta > threshold {
			verdict = "FAIL"
			failed = true
		}
		fmt.Fprintf(w, "%-55s %12.0f -> %12.0f ns/op  %+6.1f%%  %s\n",
			name, old[name], cur[name], delta, verdict)
	}
	if failed {
		return fmt.Errorf("ns/op regression above %.0f%% threshold", threshold)
	}
	return nil
}

// readBenchFile parses `go test -bench` output and returns the minimum
// ns/op per benchmark name (trailing -<procs> suffix stripped) across
// all repetitions in the file.
func readBenchFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out, err := parseBench(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return out, nil
}

func parseBench(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := trimProcs(fields[0])
		// Fields after the iteration count come in value/unit pairs; find
		// the ns/op pair.
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
			}
			if prev, ok := out[name]; !ok || v < prev {
				out[name] = v
			}
			break
		}
	}
	return out, sc.Err()
}

// trimProcs strips the -<GOMAXPROCS> suffix go test appends when
// GOMAXPROCS > 1, so names match across configurations and against the
// committed JSON.
func trimProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// readBaselineJSON extracts ns_per_op for one group of a committed
// baseline file shaped like BENCH_sim_multicore.json.
func readBaselineJSON(path, group string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Benchmarks map[string]map[string]struct {
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	rows, ok := doc.Benchmarks[group]
	if !ok {
		return nil, fmt.Errorf("%s: no benchmark group %q", path, group)
	}
	out := make(map[string]float64, len(rows))
	for name, row := range rows {
		out[name] = row.NsPerOp
	}
	return out, nil
}
