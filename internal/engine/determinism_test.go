package engine_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/tracer"
)

// pipeKernel is a two-rank produce/send/consume pipeline with enough
// events to make replays non-trivial.
func pipeKernel(n, iters int, work int64) func(p *tracer.Proc) {
	return func(p *tracer.Proc) {
		buf := p.NewArray("pipe", n)
		for it := 0; it < iters; it++ {
			if p.Rank() == 0 {
				for i := 0; i < n; i++ {
					p.Compute(work)
					buf.Store(i, float64(i))
				}
				p.Send(1, 0, buf)
			} else {
				p.Recv(buf, 0, 0)
				for i := 0; i < n; i++ {
					p.Compute(work)
					_ = buf.Load(i)
				}
			}
		}
	}
}

// TestParallelSweepMatchesSerial is the engine's determinism contract: a
// chunk sweep fanned out across the pool returns results byte-identical
// to the single-goroutine reference path — same points, same order, same
// bits in every float.
func TestParallelSweepMatchesSerial(t *testing.T) {
	app := core.App{Name: "pipe", Kernel: pipeKernel(2000, 3, 100)}
	cfg := network.Testbed(2)
	counts := []int{1, 2, 3, 4, 6, 8, 12, 16}

	serial, err := core.ChunkSweepSerial(app, 2, cfg, tracer.DefaultConfig(), counts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		eng := engine.New(workers)
		parallel, err := core.ChunkSweepWith(context.Background(), eng, app, 2, cfg, tracer.DefaultConfig(), counts)
		if err != nil {
			t.Fatal(err)
		}
		// ChunkPoint holds only ints and float64s, so DeepEqual compares
		// the raw bits: any nondeterministic reduction order would show.
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("workers=%d: parallel sweep diverged from serial:\nserial:   %+v\nparallel: %+v",
				workers, serial, parallel)
		}
		if fmt.Sprintf("%+v", serial) != fmt.Sprintf("%+v", parallel) {
			t.Fatalf("workers=%d: formatted outputs differ", workers)
		}
	}
}

// TestContextFreeWrappersInsideJobs calls the context-free core
// conveniences (which submit to the process-wide default engine) from
// inside jobs that saturate that same default engine. The caller-runs
// discipline must complete this; a pool that block-waits on itself would
// deadlock here.
func TestContextFreeWrappersInsideJobs(t *testing.T) {
	app := core.App{Name: "pipe", Kernel: pipeKernel(400, 1, 40)}
	n := engine.Default().Workers() * 2
	done := make(chan error, 1)
	go func() {
		_, err := engine.Map(context.Background(), nil, n, func(ctx context.Context, i int) (float64, error) {
			pts, err := core.ChunkSweep(app, 2, network.Testbed(2), tracer.DefaultConfig(), []int{1, 2, 4})
			if err != nil {
				return 0, err
			}
			return pts[2].SpeedupReal, nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("context-free wrapper deadlocked the default engine")
	}
}

// TestConcurrentReplaysOfSharedTrace replays one shared trace on many
// workers at once. Run under -race it proves the simulator takes no
// hidden write access to its input trace and the copy-on-write variant
// builders never touch the shared run.
func TestConcurrentReplaysOfSharedTrace(t *testing.T) {
	const replays = 12 // >= 8 concurrent replays of one shared trace
	run, err := tracer.Trace("pipe", 2, tracer.DefaultConfig(), pipeKernel(1500, 2, 80))
	if err != nil {
		t.Fatal(err)
	}
	base := run.BaseTrace()
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := network.Testbed(2)
	eng := engine.New(replays)

	results, err := engine.Map(context.Background(), eng, replays, func(ctx context.Context, i int) (*sim.Result, error) {
		// Half the jobs replay the shared base trace directly; the other
		// half build chunk variants from the shared run first, exercising
		// the copy-on-write path concurrently with the readers.
		if i%2 == 0 {
			return sim.Run(cfg, base)
		}
		v := run.WithChunks(1 + i%5)
		tr := v.OverlapReal()
		if err := tr.Validate(); err != nil {
			return nil, err
		}
		return sim.Run(cfg, tr)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res == nil || res.FinishSec <= 0 {
			t.Fatalf("replay %d degenerate: %+v", i, res)
		}
	}
	// All even jobs replayed the identical trace: identical makespans.
	for i := 2; i < replays; i += 2 {
		if results[i].FinishSec != results[0].FinishSec {
			t.Fatalf("replay %d of the shared trace finished at %g, replay 0 at %g",
				i, results[i].FinishSec, results[0].FinishSec)
		}
	}
}
