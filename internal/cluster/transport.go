package cluster

import (
	"context"
	"fmt"
	"sync"
)

// Transport delivers one RPC to the node at addr and returns its
// response. Implementations: MemNetwork (in-process, for tests and CI)
// and client.ClusterTransport (HTTP POST /v1/cluster/rpc with the
// client package's retry policy).
type Transport interface {
	Call(ctx context.Context, addr string, req *Request) (*Response, error)
}

// Handler is the receiving half: a node's RPC entry point.
type Handler func(ctx context.Context, req *Request) *Response

// MemNetwork is the in-process transport: a registry of node handlers
// keyed by address, with per-address fault injection for partition
// tests. Calls are direct function invocations — no serialization — so
// a 3-node cluster test runs at memory speed; the HTTP transport's
// wire-codec fidelity is covered separately by the message codec tests
// and the CI smoke against real daemons.
type MemNetwork struct {
	mu    sync.RWMutex
	nodes map[string]Handler
	down  map[string]bool
}

// NewMemNetwork builds an empty in-process network.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{nodes: map[string]Handler{}, down: map[string]bool{}}
}

// Attach registers a node's handler at addr (replacing any previous
// one).
func (n *MemNetwork) Attach(addr string, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[addr] = h
}

// Detach removes the node at addr; subsequent calls to it fail like a
// vanished host.
func (n *MemNetwork) Detach(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, addr)
}

// SetDown marks addr unreachable (true) or reachable again (false)
// without deregistering it — the partition/fault-injection knob.
func (n *MemNetwork) SetDown(addr string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[addr] = down
}

// Call implements Transport.
func (n *MemNetwork) Call(ctx context.Context, addr string, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n.mu.RLock()
	h, ok := n.nodes[addr]
	down := n.down[addr]
	n.mu.RUnlock()
	if !ok || down {
		return nil, fmt.Errorf("cluster: node %s unreachable", addr)
	}
	return h(ctx, req), nil
}
