// Command tracecat inspects trace files produced by the framework (both
// the text .dim dialect and the compact binary format): it validates,
// summarizes, converts between codecs, and optionally replays a trace on a
// platform configuration.
//
// Examples:
//
//	overlapsim -app cg -ranks 4 -dump-traces /tmp/cg
//	tracecat /tmp/cg/cg-base.dim
//	tracecat -convert binary -o /tmp/cg.bin /tmp/cg/cg-base.dim
//	tracecat -replay -net platform.json /tmp/cg.bin
//	tracecat -head 20 /tmp/cg/cg-overlap-real.dim
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	convert := flag.String("convert", "", "rewrite as 'text' or 'binary' to -o")
	out := flag.String("o", "", "output path for -convert")
	head := flag.Int("head", 0, "print the first N records of every rank")
	replay := flag.Bool("replay", false, "replay the trace and print timings")
	netFile := flag.String("net", "", "platform JSON for -replay (default: testbed sized to the trace)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecat [flags] <trace-file>")
		os.Exit(2)
	}
	tr, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecat: %v\n", err)
		os.Exit(1)
	}

	if err := tr.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "tracecat: trace INVALID: %v\n", err)
		os.Exit(1)
	}
	s := tr.Stats()
	fmt.Printf("trace %q flavor %q: %d ranks, %d records\n", tr.Name, tr.Flavor, tr.NumRanks, s.Records)
	fmt.Printf("  compute: %d instructions\n", s.ComputeInstr)
	fmt.Printf("  messages: %d (%d bytes), max chunk index %d\n", s.Messages, s.BytesSent, s.MaxChunkIndex)
	fmt.Printf("  recvs: %d blocking, %d irecv, %d wait, %d waitall\n", s.Recvs, s.IRecvs, s.Waits, s.WaitAlls)
	fmt.Println("  validation: OK")

	if *head > 0 {
		for r := range tr.Ranks {
			fmt.Printf("rank %d:\n", r)
			recs := tr.Ranks[r].Records
			n := *head
			if n > len(recs) {
				n = len(recs)
			}
			for i := 0; i < n; i++ {
				rec := recs[i]
				switch rec.Kind {
				case trace.KindCompute:
					fmt.Printf("  %4d compute %d\n", i, rec.Instr)
				case trace.KindWait:
					fmt.Printf("  %4d wait h=%d\n", i, rec.Handle)
				case trace.KindWaitAll:
					fmt.Printf("  %4d waitall\n", i)
				case trace.KindIRecv:
					fmt.Printf("  %4d %s peer=%d tag=%d chunk=%d bytes=%d h=%d\n",
						i, rec.Kind, rec.Peer, rec.Tag, rec.Chunk, rec.Bytes, rec.Handle)
				default:
					fmt.Printf("  %4d %s peer=%d tag=%d chunk=%d bytes=%d\n",
						i, rec.Kind, rec.Peer, rec.Tag, rec.Chunk, rec.Bytes)
				}
			}
			if n < len(recs) {
				fmt.Printf("  ... %d more\n", len(recs)-n)
			}
		}
	}

	if *convert != "" {
		if *out == "" {
			fmt.Fprintln(os.Stderr, "tracecat: -convert needs -o")
			os.Exit(2)
		}
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecat: %v\n", err)
			os.Exit(1)
		}
		switch *convert {
		case "text":
			err = trace.Write(f, tr)
		case "binary":
			err = trace.WriteBinary(f, tr)
		default:
			err = fmt.Errorf("unknown codec %q", *convert)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecat: convert: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%s)\n", *out, *convert)
	}

	if *replay {
		cfg := network.Testbed(tr.NumRanks)
		if *netFile != "" {
			f, err := os.Open(*netFile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tracecat: %v\n", err)
				os.Exit(1)
			}
			cfg, err = network.ReadJSON(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "tracecat: %v\n", err)
				os.Exit(1)
			}
			if cfg.Processors < tr.NumRanks {
				cfg = cfg.WithProcessors(tr.NumRanks)
			}
		}
		res, err := sim.Run(cfg, tr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecat: replay: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("replay: finish %.6f s, total wait %.6f s, total compute %.6f s\n",
			res.FinishSec, res.TotalWaitSec(), res.TotalComputeSec())
		fmt.Print(sim.CriticalPathOf(res).Format(6))
	}
}

// load reads a trace in either codec, sniffing the magic.
func load(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [8]byte
	if _, err := f.Read(magic[:]); err != nil {
		return nil, fmt.Errorf("read magic: %w", err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	if string(magic[:7]) == "#DIMGO " {
		return trace.Read(f)
	}
	return trace.ReadBinary(f)
}
