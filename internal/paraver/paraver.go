// Package paraver is the visualization back end of the framework, standing
// in for the Paraver tool: it renders the simulator's reconstructed time
// behaviour as per-rank state timelines (ASCII), writes Paraver-style .prv
// record files, and computes state profiles.
//
// The qualitative comparison of Figure 4 — the non-overlapped versus the
// overlapped execution of NAS-CG — is produced by RenderComparison, which
// places both timelines on a common time scale so the shortened Wait
// phases and the advanced transfers are directly visible.
package paraver

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/sim"
)

// Glyphs used in ASCII timelines, one per simulator state.
const (
	GlyphCompute = '#'
	GlyphWait    = 'w'
	GlyphSend    = 's'
	GlyphIdle    = '.'
)

func glyphFor(s sim.State) byte {
	switch s {
	case sim.StateCompute:
		return GlyphCompute
	case sim.StateSendBlocked:
		return GlyphSend
	case sim.StateWaitRecv:
		return GlyphWait
	default:
		return '?'
	}
}

// Render draws the per-rank state timeline of one result, width columns
// wide, spanning [0, res.FinishSec].
func Render(res *sim.Result, name string, width int) string {
	return renderScaled(res, name, width, res.FinishSec)
}

// renderScaled draws the timeline against an externally fixed horizon so
// two runs can share a time scale.
func renderScaled(res *sim.Result, name string, width int, horizon float64) string {
	if width < 10 {
		width = 10
	}
	if horizon <= 0 {
		horizon = 1
	}
	nRanks := len(res.Ranks)
	rows := make([][]byte, nRanks)
	for r := range rows {
		rows[r] = []byte(strings.Repeat(string(GlyphIdle), width))
	}
	colOf := func(t float64) int {
		c := int(t / horizon * float64(width))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	for _, iv := range res.Intervals {
		g := glyphFor(iv.State)
		c0, c1 := colOf(iv.Start), colOf(iv.End)
		for c := c0; c <= c1; c++ {
			// Waits and sends win over compute within one cell so
			// blocking is never hidden by coarse sampling.
			if rows[iv.Rank][c] == GlyphIdle || rows[iv.Rank][c] == GlyphCompute {
				rows[iv.Rank][c] = g
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (%d ranks, %.6f s, '%c'=compute '%c'=wait '%c'=send-blocked)\n",
		name, nRanks, res.FinishSec, GlyphCompute, GlyphWait, GlyphSend)
	for r, row := range rows {
		fmt.Fprintf(&b, "P%-3d |%s|\n", r, row)
	}
	return b.String()
}

// RenderComparison draws two results on a common time scale (the longer of
// the two), the Figure 4 view: the non-overlapped run on top, the
// overlapped run below, plus the relative improvement.
func RenderComparison(a, b *sim.Result, nameA, nameB string, width int) string {
	horizon := math.Max(a.FinishSec, b.FinishSec)
	var sb strings.Builder
	sb.WriteString(renderScaled(a, nameA, width, horizon))
	sb.WriteString(renderScaled(b, nameB, width, horizon))
	if a.FinishSec > 0 {
		fmt.Fprintf(&sb, "improvement of %q over %q: %.2f%%\n",
			nameB, nameA, 100*(a.FinishSec-b.FinishSec)/a.FinishSec)
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Profiles

// Profile aggregates per-state time shares, the quantitative counterpart
// of the timeline view.
type Profile struct {
	// Per-rank seconds in each state.
	ComputeSec, WaitSec, SendSec []float64
	// Shares of the total rank-seconds (0..1).
	ComputeShare, WaitShare, SendShare, IdleShare float64
	FinishSec                                     float64
}

// ProfileOf computes the state profile of one result.
func ProfileOf(res *sim.Result) Profile {
	n := len(res.Ranks)
	p := Profile{
		ComputeSec: make([]float64, n),
		WaitSec:    make([]float64, n),
		SendSec:    make([]float64, n),
		FinishSec:  res.FinishSec,
	}
	var comp, wait, send float64
	for r, st := range res.Ranks {
		p.ComputeSec[r] = st.ComputeSec
		p.WaitSec[r] = st.WaitSec
		p.SendSec[r] = st.SendBlockedSec
		comp += st.ComputeSec
		wait += st.WaitSec
		send += st.SendBlockedSec
	}
	total := res.FinishSec * float64(n)
	if total > 0 {
		p.ComputeShare = comp / total
		p.WaitShare = wait / total
		p.SendShare = send / total
		p.IdleShare = 1 - p.ComputeShare - p.WaitShare - p.SendShare
		if p.IdleShare < 0 {
			p.IdleShare = 0
		}
	}
	return p
}

// Format renders the profile as a small table.
func (p Profile) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "makespan: %.6f s\n", p.FinishSec)
	fmt.Fprintf(&b, "%-10s %8s\n", "state", "share")
	fmt.Fprintf(&b, "%-10s %7.2f%%\n", "compute", 100*p.ComputeShare)
	fmt.Fprintf(&b, "%-10s %7.2f%%\n", "wait", 100*p.WaitShare)
	fmt.Fprintf(&b, "%-10s %7.2f%%\n", "send", 100*p.SendShare)
	fmt.Fprintf(&b, "%-10s %7.2f%%\n", "idle", 100*p.IdleShare)
	return b.String()
}

// ---------------------------------------------------------------------------
// PRV output

// WritePRV emits the result as a Paraver-style record file. The dialect is
// a documented simplification of the Paraver trace format:
//
//	#PRVGO <name> <ranks> <duration_ns>
//	1:<rank>:<begin_ns>:<end_ns>:<state>     state record (1=compute, 2=wait, 3=send)
//	3:<src>:<send_ns>:<dst>:<recv_ns>:<bytes>:<tag>:<chunk>   comm record
//
// Times are integer nanoseconds. Records appear sorted by rank then time
// (states) followed by all communications in send order, which is the
// layout Paraver filters expect.
func WritePRV(w io.Writer, res *sim.Result, name string) error {
	bw := bufio.NewWriter(w)
	ns := func(t float64) int64 { return int64(math.Round(t * 1e9)) }
	fmt.Fprintf(bw, "#PRVGO %s %d %d\n", strings.ReplaceAll(name, " ", "_"), len(res.Ranks), ns(res.FinishSec))
	stateCode := func(s sim.State) int {
		switch s {
		case sim.StateCompute:
			return 1
		case sim.StateWaitRecv:
			return 2
		case sim.StateSendBlocked:
			return 3
		default:
			return 0
		}
	}
	for _, iv := range res.Intervals {
		fmt.Fprintf(bw, "1:%d:%d:%d:%d\n", iv.Rank, ns(iv.Start), ns(iv.End), stateCode(iv.State))
	}
	for _, c := range res.Comms {
		fmt.Fprintf(bw, "3:%d:%d:%d:%d:%d:%d:%d\n",
			c.Src, ns(c.SendT), c.Dst, ns(c.MatchT), c.Bytes, c.Tag, c.Chunk)
	}
	return bw.Flush()
}

// CommLines summarizes the communication records as human-readable arrows,
// useful to inspect how far sends were advanced (the "longer
// synchronization lines" observation on Figure 4). Transfers that stayed
// inside a node on a hierarchical platform carry an [intra] marker; flat
// replays print exactly as before. Limit bounds the output; nonpositive
// means all.
func CommLines(res *sim.Result, limit int) string {
	var b strings.Builder
	n := len(res.Comms)
	if limit > 0 && n > limit {
		n = limit
	}
	for i := 0; i < n; i++ {
		c := res.Comms[i]
		class := ""
		if c.Intra {
			class = " [intra]"
		}
		fmt.Fprintf(&b, "P%d --(%dB tag %d chunk %d)--> P%d   send %.6fs arrive %.6fs match %.6fs (line %.6fs)%s\n",
			c.Src, c.Bytes, c.Tag, c.Chunk, c.Dst, c.SendT, c.ArriveT, c.MatchT, c.MatchT-c.SendT, class)
	}
	if n < len(res.Comms) {
		fmt.Fprintf(&b, "... %d more\n", len(res.Comms)-n)
	}
	return b.String()
}
