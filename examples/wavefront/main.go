// Wavefront study: the Sweep3D result reproduced end to end — the
// application whose pipeline structure makes overlap most valuable in the
// paper. The example shows the three headline findings:
//
//  1. with the *measured* patterns the speedup is modest (production
//     finishes late, consumption starts immediately: Table II),
//  2. with *ideal* patterns Sweep3D gains the most of the whole pool
//     (chunking creates finer-grain dependencies between the pipeline
//     stages: Fig. 6a),
//  3. no bandwidth increase can buy the same effect — the equivalent
//     bandwidth diverges (Fig. 6c), while the overlapped execution keeps
//     its performance on a drastically cheaper network (Fig. 6b).
//
// Run with:
//
//	go run ./examples/wavefront
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/pattern"
	"repro/internal/tracer"
)

func main() {
	const ranks = 16
	entry, _ := apps.ByName("sweep3d", ranks)
	platform := network.TestbedFor("sweep3d", ranks)

	report, err := core.Analyze(entry.App, ranks, platform, tracer.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Sweep3D wavefront study ==")
	fmt.Printf("speedup: real patterns %.3fx, ideal patterns %.3fx\n",
		report.SpeedupReal, report.SpeedupIdeal)

	// 1. Why the real patterns give so little: the Fig. 5a shape.
	run, err := tracer.Trace("sweep3d", ranks, tracer.DefaultConfig(), entry.App.Kernel)
	if err != nil {
		log.Fatal(err)
	}
	sc := pattern.ScatterFor(run, "outflow-east", 0, pattern.Production)
	if sc != nil {
		fmt.Println("\nFig. 5a — production pattern of the east outflow buffer:")
		fmt.Print(sc.ASCII(90, 14))
	}
	p := report.Patterns.AppProduction
	fmt.Printf("first element final at %.1f%% of the interval; the bulk only from %.1f%% on\n",
		p.FirstElem, p.Quarter)

	// 2/3. The network design consequences.
	relax, err := report.RelaxedBandwidth(core.FlavorIdeal, metrics.DefaultSearch())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFig. 6b — with ideal-pattern overlap the 250 MB/s network can shrink to %s\n",
		metrics.FormatMBps(relax))
	equiv, err := report.EquivalentBandwidth(core.FlavorIdeal, metrics.DefaultSearch())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig. 6c — bandwidth the non-overlapped run would need to keep up: %s\n",
		metrics.FormatMBps(equiv))
	fmt.Println("(the wavefront's finer-grain chunk dependencies add pipeline parallelism")
	fmt.Println(" that no amount of raw bandwidth can reproduce)")
}
