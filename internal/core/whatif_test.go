package core

import (
	"strings"
	"testing"

	"repro/internal/tracer"
)

// twoBufferKernel sends two buffers per iteration: "good" is produced
// sequentially (idealizing it gains little), "bad" is packed at the very
// end (idealizing it is where the potential lies).
func twoBufferKernel(n, iters int, work int64) func(p *tracer.Proc) {
	return func(p *tracer.Proc) {
		good := p.NewArray("good", n)
		bad := p.NewArray("bad", n)
		for it := 0; it < iters; it++ {
			if p.Rank() == 0 {
				for i := 0; i < n; i++ {
					p.Compute(work)
					good.Store(i, 1)
				}
				p.Send(1, 1, good)
				p.Compute(work * int64(n))
				for i := 0; i < n; i++ {
					bad.Store(i, 2)
				}
				p.Send(1, 2, bad)
			} else {
				p.Recv(good, 0, 1)
				for i := 0; i < n; i++ {
					p.Compute(work)
					_ = good.Load(i)
				}
				p.Recv(bad, 0, 2)
				for i := 0; i < n; i++ {
					_ = bad.Load(i)
				}
				p.Compute(work * int64(n))
			}
		}
	}
}

func TestWhatIfRanksBuffers(t *testing.T) {
	app := App{Name: "twobuf", Kernel: twoBufferKernel(2000, 3, 100)}
	rep, err := WhatIf(app, 2, testNet(2), tracer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Buffers) != 2 {
		t.Fatalf("buffers=%d, want 2", len(rep.Buffers))
	}
	// The list is sorted by marginal gain; idealizing "bad" (packed at
	// the end, consumed instantly) must beat idealizing "good" (already
	// near ideal).
	if rep.Buffers[0].Buffer != "bad" {
		t.Fatalf("ranking: %+v — expected \"bad\" to lead", rep.Buffers)
	}
	if rep.Buffers[0].GainOverReal < rep.Buffers[1].GainOverReal {
		t.Fatal("ranking not sorted by gain")
	}
	for _, b := range rep.Buffers {
		if b.FinishSec <= 0 || b.Speedup <= 0 {
			t.Fatalf("degenerate potential: %+v", b)
		}
	}
}

func TestWhatIfSelectiveBounds(t *testing.T) {
	// Selective idealization must land between the all-real and the
	// all-ideal makespans (allowing a little slack for chunk scheduling
	// noise).
	app := App{Name: "twobuf", Kernel: twoBufferKernel(1500, 3, 80)}
	full, err := Analyze(app, 2, testNet(2), tracer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := WhatIf(app, 2, testNet(2), tracer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range rep.Buffers {
		if b.FinishSec > rep.RealFinishSec*1.02 {
			t.Errorf("idealizing %q made things worse: %g vs real %g", b.Buffer, b.FinishSec, rep.RealFinishSec)
		}
		if b.FinishSec < full.Ideal.FinishSec*0.98 {
			t.Errorf("idealizing %q beat the all-ideal run: %g vs %g", b.Buffer, b.FinishSec, full.Ideal.FinishSec)
		}
	}
}

func TestWhatIfFormat(t *testing.T) {
	app := App{Name: "twobuf", Kernel: twoBufferKernel(500, 2, 50)}
	rep, err := WhatIf(app, 2, testNet(2), tracer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Format()
	for _, want := range []string{"what-if", "twobuf", "good", "bad", "gain vs real"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

func TestWhatIfRejectsBadNetwork(t *testing.T) {
	app := App{Name: "twobuf", Kernel: twoBufferKernel(100, 1, 10)}
	bad := testNet(2)
	bad.MIPS = 0
	if _, err := WhatIf(app, 2, bad, tracer.DefaultConfig()); err == nil {
		t.Fatal("invalid network accepted")
	}
}
