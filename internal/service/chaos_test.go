// Chaos tests: the serving path under deliberately bad timing — a drain
// beginning while a stream is mid-flight, a client vanishing mid-read.
// Accepted work must reach a terminal state, streams must end on a
// terminal frame, and nothing may leak a goroutine.
package service_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/service"
)

// leakCheck snapshots the goroutine count and fails the test if, after
// every other cleanup has run, the count hasn't settled back. Register
// it before building the service stack so the stack's own cleanups
// (server close, etc.) run first.
func leakCheck(t *testing.T) {
	t.Helper()
	baseline := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(10 * time.Second)
		for {
			if n := runtime.NumGoroutine(); n <= baseline+2 {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.NumGoroutine()
				t.Fatalf("goroutine leak: %d at start, %d after cleanup\n%s",
					baseline, n, buf[:runtime.Stack(buf, true)])
			}
			time.Sleep(25 * time.Millisecond)
		}
	})
}

// chaosRequest is a multi-point grid so a stream stays interruptible.
func chaosRequest() service.ScenarioRequest {
	return service.ScenarioRequest{
		App: "cg", Ranks: 8,
		Axes: []core.Axis{
			core.BandwidthAxis(125, 250, 500, 1000, 2000, 4000),
			core.MappingAxis("block", "rr"),
		},
		Output: "traffic",
	}
}

// streamFrames reads an NDJSON scenario response line by line, counting
// point frames and requiring a well-formed terminal frame: exactly one
// done frame (carrying the true point count) at the end, never silence.
func streamFrames(t *testing.T, body *bufio.Scanner) (points int) {
	t.Helper()
	sawDone := false
	for body.Scan() {
		if sawDone {
			t.Fatalf("frame after done: %q", body.Text())
		}
		var f service.StreamFrame
		if err := json.Unmarshal(body.Bytes(), &f); err != nil {
			t.Fatalf("bad frame %q: %v", body.Text(), err)
		}
		switch {
		case f.Point != nil:
			points++
		case f.Done != nil:
			if f.Done.Points != points {
				t.Fatalf("done frame counts %d points, stream carried %d", f.Done.Points, points)
			}
			sawDone = true
		case f.Error != "":
			t.Fatalf("stream failed: %s", f.Error)
		}
	}
	if err := body.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if !sawDone {
		t.Fatal("stream ended without a terminal frame")
	}
	return points
}

// TestChaosDrainMidStream: a drain that begins while a streamed grid is
// in flight must not cut the stream — every accepted point arrives and
// the done frame closes it — while new submissions bounce with 503 +
// Retry-After; afterwards, the cache still answers the finished spec.
func TestChaosDrainMidStream(t *testing.T) {
	leakCheck(t)
	mgr, cl, base := newStreamService(t, 2)
	req := chaosRequest()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	hreq, err := http.NewRequest(http.MethodPost, base+"/v1/scenarios", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Accept", service.NDJSONContentType)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("no header frame: %v", sc.Err())
	}
	var hdr service.StreamFrame
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Header == nil {
		t.Fatalf("first frame not a header: %q (%v)", sc.Text(), err)
	}

	// The stream is accepted and in flight: begin the drain.
	type drained struct {
		flushed int
		err     error
	}
	done := make(chan drained, 1)
	go func() {
		n, err := mgr.Drain(context.Background())
		done <- drained{n, err}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for !mgr.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("drain never started")
		}
		time.Sleep(time.Millisecond)
	}

	// New work is refused while the stream flushes.
	fresh := service.ScenarioRequest{App: "cg", Ranks: 4, Output: "finish"}
	if _, err := cl.Scenario(context.Background(), fresh); err == nil ||
		!strings.Contains(err.Error(), "503") {
		t.Fatalf("fresh submission during drain: %v, want 503", err)
	}

	// The in-flight stream is not: it runs to its terminal frame with
	// the full grid on board.
	if points := streamFrames(t, sc); points != 12 {
		t.Fatalf("drained stream delivered %d points, want 12", points)
	}
	select {
	case d := <-done:
		if d.err != nil {
			t.Fatalf("drain failed: %v", d.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain never finished after the stream completed")
	}

	// The flushed spec's bytes outlive the drain: a rerun is a pure
	// cache read, allowed while draining, costing zero engine jobs.
	started := mgr.Engine().Stats().Started
	if _, err := cl.Scenario(context.Background(), req); err != nil {
		t.Fatalf("cached rerun after drain: %v", err)
	}
	if got := mgr.Engine().Stats().Started; got != started {
		t.Fatalf("cached rerun started %d engine jobs", got-started)
	}
}

// TestChaosClientCancelMidStream: a client that walks away mid-stream
// must not wedge the daemon — the accepted job reaches a terminal
// state and the inflight table empties, so a later drain returns
// instantly with nothing to flush.
func TestChaosClientCancelMidStream(t *testing.T) {
	leakCheck(t)
	mgr, _, base := newStreamService(t, 2)
	req := chaosRequest()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/scenarios", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Accept", service.NDJSONContentType)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("no header frame: %v", sc.Err())
	}
	cancel() // vanish mid-stream
	resp.Body.Close()

	// The accepted job must reach a terminal state and leave the
	// inflight table — observable as every job finishing.
	deadline := time.Now().Add(10 * time.Second)
	for {
		jobs := mgr.Jobs()
		settled := true
		for _, j := range jobs {
			if !j.Finished() {
				settled = false
			}
		}
		if settled && len(jobs) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned stream job never settled: %d jobs", len(jobs))
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The inflight table is empty: a drain has nothing to wait for.
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if flushed, err := mgr.Drain(dctx); err != nil || flushed != 0 {
		t.Fatalf("drain after abandoned stream: flushed %d, err %v", flushed, err)
	}
}
