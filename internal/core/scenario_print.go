package core

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ScenarioPrinter renders a scenario result incrementally: the preamble
// and table header are written up front from the stream's header frame,
// then each point becomes rows (finish/traffic) or a section (what-if,
// report) the moment it arrives. Feeding it a complete result in order
// reproduces ScenarioResult.Format byte-for-byte — the CLIs print live
// from RunScenarioStream with identical final output to the batch path.
type ScenarioPrinter struct {
	w    io.Writer
	out  OutputKind
	cols []TableColumn
	idx  int
}

// NewScenarioPrinter writes the preamble (and, for tabular outputs, the
// column header) and returns a printer for the points that follow.
func NewScenarioPrinter(w io.Writer, hdr *ScenarioHeader) (*ScenarioPrinter, error) {
	p := &ScenarioPrinter{w: w, out: hdr.Output}
	if _, err := fmt.Fprintf(w, "scenario %s: %s over %d point(s)\n", hdr.App, hdr.Output, hdr.GridPoints); err != nil {
		return nil, err
	}
	switch hdr.Output {
	case OutputFinish, OutputTraffic:
		p.cols = make([]TableColumn, 0, len(hdr.Axes)+4)
		for i, ax := range hdr.Axes {
			w := 14
			if i == 0 {
				w = 12
			}
			p.cols = append(p.cols, TableColumn{Name: string(ax), Width: w})
		}
		if len(hdr.Axes) == 0 {
			p.cols = append(p.cols, TableColumn{Name: "point", Width: 12})
		}
		p.cols = append(p.cols, TableColumn{Name: "flavor", Width: 14}, TableColumn{Name: "finish (s)", Width: 14})
		if hdr.Output == OutputTraffic {
			p.cols = append(p.cols, TableColumn{Name: "intra bytes", Width: 14}, TableColumn{Name: "inter bytes", Width: 14})
		}
		if _, err := io.WriteString(w, FormatTableHeader(p.cols)); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Point renders the next grid point. Points must arrive in result
// order.
func (p *ScenarioPrinter) Point(pt ScenarioPoint) error {
	pi := p.idx
	p.idx++
	switch p.out {
	case OutputFinish, OutputTraffic:
		for _, m := range pt.Flavors {
			row := make([]string, 0, len(p.cols))
			for _, c := range pt.Coords {
				row = append(row, c.Value)
			}
			if len(pt.Coords) == 0 {
				row = append(row, strconv.Itoa(pi))
			}
			row = append(row, string(m.Flavor), fmt.Sprintf("%.6f", m.FinishSec))
			if p.out == OutputTraffic && m.Traffic != nil {
				row = append(row,
					strconv.FormatInt(m.Traffic.IntraBytes, 10),
					strconv.FormatInt(m.Traffic.InterBytes, 10))
			}
			if _, err := io.WriteString(p.w, FormatTableRow(p.cols, row)); err != nil {
				return err
			}
		}
	case OutputWhatIf:
		if len(pt.Coords) > 0 {
			if _, err := fmt.Fprintf(p.w, "\n-- %s --\n", coordsLabel(pt.Coords)); err != nil {
				return err
			}
		}
		if pt.WhatIf != nil {
			w := WhatIfReport{
				App:           pt.WhatIf.App,
				BaseFinishSec: pt.WhatIf.BaseFinishSec,
				RealFinishSec: pt.WhatIf.RealFinishSec,
				Buffers:       pt.WhatIf.Buffers,
			}
			if _, err := io.WriteString(p.w, w.Format()); err != nil {
				return err
			}
		}
	case OutputReport:
		if len(pt.Coords) > 0 {
			if _, err := fmt.Fprintf(p.w, "\n-- %s --\n", coordsLabel(pt.Coords)); err != nil {
				return err
			}
		}
		if rep := pt.Report; rep != nil {
			if _, err := fmt.Fprintf(p.w, "%s on %s\n", rep.App, rep.Platform); err != nil {
				return err
			}
			for _, f := range rep.Flavors {
				if _, err := fmt.Fprintf(p.w, "  %-14s finish %.6f s\n", f.Flavor, f.FinishSec); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(p.w, "  speedup real %.3f, ideal %.3f\n", rep.SpeedupReal, rep.SpeedupIdeal); err != nil {
				return err
			}
		}
	}
	return nil
}

// Format renders the result as text: finish/traffic outputs become one
// point table (a row per grid point and flavor), what-if and report
// outputs a section per grid point. It is the batch form of
// ScenarioPrinter, and matches a streamed rendering byte-for-byte.
func (r *ScenarioResult) Format() string {
	hdr := r.ScenarioHeader
	// Results from before grid_points existed carry 0; a complete result
	// has exactly one point per grid coordinate either way.
	hdr.GridPoints = len(r.Points)
	var b strings.Builder
	p, _ := NewScenarioPrinter(&b, &hdr) // strings.Builder never errors
	for _, pt := range r.Points {
		_ = p.Point(pt)
	}
	return b.String()
}
