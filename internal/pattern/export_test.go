package pattern

import (
	"math"
	"strings"
	"testing"

	"repro/internal/mpi"
	"repro/internal/tracer"
)

// oneElementApp exchanges only single-element reductions (unchunkable).
func oneElementApp() func(p *tracer.Proc) {
	return func(p *tracer.Proc) {
		in := p.NewArray("dot", 1)
		out := p.NewArray("res", 1)
		for it := 0; it < 3; it++ {
			p.Compute(1000)
			in.Store(0, 1)
			p.AllreduceTracked(in, out, mpi.OpSum)
			_ = out.Load(0)
		}
	}
}

func TestWriteTableIICSV(t *testing.T) {
	run := mustTrace(t, "seqapp", 2, sequentialProducer(50, 3))
	an := Analyze(run)
	var sb strings.Builder
	if err := WriteTableIICSV(&sb, []*Analysis{an}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + production + consumption
		t.Fatalf("lines=%d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "seqapp,production,") {
		t.Fatalf("production row: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "seqapp,consumption,") {
		t.Fatalf("consumption row: %q", lines[2])
	}
	// Consumption rows end with an empty "whole" column.
	if !strings.HasSuffix(lines[2], ",") {
		t.Fatalf("consumption whole column not empty: %q", lines[2])
	}
}

func TestWriteTableIICSVUnchunkable(t *testing.T) {
	// Single-element app: NaN columns must be empty fields.
	run := mustTrace(t, "one", 2, oneElementApp())
	var sb strings.Builder
	if err := WriteTableIICSV(&sb, []*Analysis{Analyze(run)}); err != nil {
		t.Fatal(err)
	}
	prod := strings.Split(strings.TrimSpace(sb.String()), "\n")[1]
	fields := strings.Split(prod, ",")
	if len(fields) != 6 {
		t.Fatalf("fields: %v", fields)
	}
	if fields[3] != "" || fields[4] != "" || fields[5] != "" {
		t.Fatalf("NaN columns not empty: %v", fields)
	}
}

func TestWriteTableIIMarkdown(t *testing.T) {
	run := mustTrace(t, "seqapp", 2, sequentialProducer(30, 3))
	var sb strings.Builder
	if err := WriteTableIIMarkdown(&sb, []*Analysis{Analyze(run)}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table II(a)", "Table II(b)", "| ideal |", "| seqapp |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestPerBufferRows(t *testing.T) {
	run := mustTrace(t, "seqapp", 2, sequentialProducer(40, 3))
	rows := Analyze(run).PerBufferRows()
	if len(rows) != 2 { // one buffer, both sides
		t.Fatalf("rows=%d", len(rows))
	}
	if rows[0].Side != Production || rows[1].Side != Consumption {
		t.Fatalf("side order: %+v", rows)
	}
	if rows[0].Buffer != "seq" || !rows[0].Chunkable {
		t.Fatalf("row metadata: %+v", rows[0])
	}
	if !math.IsNaN(rows[1].Cols[3]) {
		t.Fatal("consumption whole column must be NaN")
	}
}
