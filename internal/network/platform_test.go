package network

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestConfigPlatformDegenerate(t *testing.T) {
	cfg := TestbedFor("sweep3d", 16)
	p := cfg.Platform()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Nodes != cfg.Processors || p.MultiNode() {
		t.Fatalf("degenerate platform not one-rank-per-node: %+v", p)
	}
	if p.Intra != p.Inter {
		t.Fatalf("degenerate platform links differ: %+v vs %+v", p.Intra, p.Inter)
	}
	for r := 0; r < p.Processors; r++ {
		if p.NodeOf(r) != r {
			t.Fatalf("rank %d on node %d", r, p.NodeOf(r))
		}
	}
	if got := p.InterConfig(); got != cfg {
		t.Fatalf("InterConfig round trip: got %+v want %+v", got, cfg)
	}
}

func TestMappingPolicies(t *testing.T) {
	const ranks, nodes = 8, 4
	cases := []struct {
		m    Mapping
		want []int
	}{
		{BlockMapping(), []int{0, 0, 1, 1, 2, 2, 3, 3}},
		{RoundRobinMapping(), []int{0, 1, 2, 3, 0, 1, 2, 3}},
		{ExplicitMapping([]int{3, 3, 3, 3, 0, 0, 0, 0}), []int{3, 3, 3, 3, 0, 0, 0, 0}},
	}
	for _, tc := range cases {
		p := Testbed(ranks).Platform().WithNodes(nodes).WithMapping(tc.m)
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", tc.m, err)
		}
		if got := p.NodeTable(); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: node table %v want %v", tc.m, got, tc.want)
		}
		if !p.MultiNode() {
			t.Errorf("%s: MultiNode false on 2-ranks-per-node platform", tc.m)
		}
	}
}

func TestMappingBlockUnevenCoversAllRanks(t *testing.T) {
	// 10 ranks on 4 nodes: ceil(10/4)=3 per node, last node underfull.
	p := Testbed(10).Platform().WithNodes(4)
	counts := map[int]int{}
	for _, n := range p.NodeTable() {
		if n < 0 || n >= 4 {
			t.Fatalf("node %d out of range", n)
		}
		counts[n]++
	}
	if counts[0] != 3 || counts[3] != 1 {
		t.Fatalf("uneven block fill: %v", counts)
	}
}

func TestParseMapping(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mapping
	}{
		{"block", BlockMapping()},
		{"rr", RoundRobinMapping()},
		{"round-robin", RoundRobinMapping()},
		{"0,0,1,1", ExplicitMapping([]int{0, 0, 1, 1})},
	} {
		got, err := ParseMapping(tc.in)
		if err != nil {
			t.Fatalf("%q: %v", tc.in, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%q: got %+v want %+v", tc.in, got, tc.want)
		}
	}
	if _, err := ParseMapping("diagonal"); err == nil {
		t.Fatal("bad mapping accepted")
	}
}

func TestPlatformValidateRejects(t *testing.T) {
	base := Testbed(8).Platform().WithNodes(2)
	cases := []Platform{
		base.WithNodes(0),
		base.WithProcessors(0),
		func() Platform { p := base; p.Intra.BandwidthMBps = -1; return p }(),
		func() Platform { p := base; p.Inter.LatencySec = -1; return p }(),
		func() Platform { p := base; p.IntraBuses = -1; return p }(),
		base.WithMapping(ExplicitMapping([]int{0, 1})),                   // too short
		base.WithMapping(ExplicitMapping([]int{0, 1, 2, 3, 4, 5, 6, 7})), // node out of range
		base.WithMapping(Mapping{Kind: MappingKind(9)}),
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestPlatformJSONRoundTrip(t *testing.T) {
	orig, err := PlatformPreset("marenostrum-4x", 16)
	if err != nil {
		t.Fatal(err)
	}
	orig.Mapping = ExplicitMapping([]int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3})
	var sb strings.Builder
	if err := orig.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPlatformJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, orig) {
		t.Fatalf("round trip:\ngot  %+v\nwant %+v", got, orig)
	}
}

func TestPlatformJSONInfiniteIntraBandwidth(t *testing.T) {
	orig := Testbed(4).Platform().WithNodes(2)
	orig.Intra.BandwidthMBps = math.Inf(1)
	var sb strings.Builder
	if err := orig.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPlatformJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got.Intra.BandwidthMBps, 1) {
		t.Fatalf("intra bandwidth lost: %v", got.Intra.BandwidthMBps)
	}
}

func TestReadAnyPlatformAcceptsBothSchemas(t *testing.T) {
	// Hierarchical schema.
	hier, _ := PlatformPreset("fatnode-smp", 32)
	var sb strings.Builder
	if err := hier.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAnyPlatform(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, hier) {
		t.Fatalf("hierarchical schema: got %+v want %+v", got, hier)
	}
	// Flat Config schema lifts to the degenerate platform.
	flat := TestbedFor("cg", 8)
	sb.Reset()
	if err := flat.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	got, err = ReadAnyPlatform(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, flat.Platform()) {
		t.Fatalf("flat schema: got %+v want %+v", got, flat.Platform())
	}
}

func TestReadPlatformJSONRejectsBadInput(t *testing.T) {
	cases := []string{
		``,
		`{"nodes": 2}`, // missing everything else
		`{"processors": 4, "nodes": 2, "mapping": "diagonal", "intra": {"latency_sec":0,"bandwidth_mbps":1}, "inter": {"latency_sec":0,"bandwidth_mbps":1}, "mips": 1, "relative_speed": 1}`,
		`{"processors": 4, "nodes": 2, "mapping": 7, "intra": {"latency_sec":0,"bandwidth_mbps":1}, "inter": {"latency_sec":0,"bandwidth_mbps":1}, "mips": 1, "relative_speed": 1}`,
		`{"processors": 4, "nodes": 2, "intra": {"latency_sec":0,"bandwidth_mbps":"fast"}, "inter": {"latency_sec":0,"bandwidth_mbps":1}, "mips": 1, "relative_speed": 1}`,
	}
	for i, in := range cases {
		if _, err := ReadPlatformJSON(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %s", i, in)
		}
	}
}

func TestPlatformDescribe(t *testing.T) {
	flat := Testbed(4).Platform()
	if s := flat.Describe(); !strings.Contains(s, "flat") {
		t.Errorf("flat describe: %s", s)
	}
	hier, _ := PlatformPreset("marenostrum-4x", 16)
	if s := hier.Describe(); !strings.Contains(s, "intra") || !strings.Contains(s, "map block") {
		t.Errorf("hierarchical describe: %s", s)
	}
}
