// Package network describes the configurable parallel platform on which the
// simulator (the Dimemas equivalent) reconstructs application behaviour.
//
// The model follows the paper's description of Dimemas: a linear
// point-to-point cost T = Latency + Size/Bandwidth, a finite pool of global
// buses bounding how many messages may be in flight concurrently, and a
// number of input/output ports per processor bounding each node's injection
// and drain rate. CPU bursts are converted from instruction counts to
// seconds with an average MIPS rate, exactly as the paper's tracer does.
package network

import (
	"fmt"
	"math"
)

// Config parametrizes the simulated platform.
type Config struct {
	// Processors is the number of simulated CPUs (one MPI rank each).
	Processors int
	// LatencySec is the per-message network latency in seconds.
	LatencySec float64
	// BandwidthMBps is the unidirectional link bandwidth in MB/s
	// (1 MB = 1e6 bytes, matching how vendors quote the Myrinet figure).
	BandwidthMBps float64
	// Buses is the number of global buses: the maximum number of messages
	// that may travel through the network concurrently. Zero means
	// unlimited.
	Buses int
	// InPorts and OutPorts bound, per processor, how many incoming and
	// outgoing transfers may be serializing simultaneously. Zero means
	// unlimited.
	InPorts  int
	OutPorts int
	// MIPS converts compute-burst instruction counts to seconds:
	// seconds = instructions / (MIPS * 1e6).
	MIPS float64
	// EagerThresholdBytes selects the send protocol. Messages of at most
	// this size complete on the sender as soon as they are injected
	// (eager); larger messages use rendezvous and additionally wait for
	// the matching receive to be posted. A negative value disables
	// rendezvous entirely.
	EagerThresholdBytes int64
	// RelativeSpeed scales compute-burst durations (1.0 = testbed speed).
	// Values above 1 simulate faster CPUs, which stresses the network.
	RelativeSpeed float64
	// CongestionFactor enables the nonlinear congestion extension of the
	// Dimemas model: each transfer's serialization time is stretched by
	//
	//	1 + CongestionFactor * max(0, inflight/buses - 1)
	//
	// where inflight counts the messages in the network when the
	// transfer starts. Zero disables the extension (the validated linear
	// model); it only applies with a finite bus pool.
	CongestionFactor float64
}

// Validate reports the first implausible parameter.
func (c Config) Validate() error {
	switch {
	case c.Processors <= 0:
		return fmt.Errorf("network: Processors=%d, must be positive", c.Processors)
	case c.LatencySec < 0:
		return fmt.Errorf("network: negative latency %g", c.LatencySec)
	case c.BandwidthMBps <= 0 && !math.IsInf(c.BandwidthMBps, 1):
		return fmt.Errorf("network: bandwidth %g MB/s, must be positive or +Inf", c.BandwidthMBps)
	case c.Buses < 0:
		return fmt.Errorf("network: Buses=%d, must be non-negative", c.Buses)
	case c.InPorts < 0 || c.OutPorts < 0:
		return fmt.Errorf("network: ports in=%d out=%d, must be non-negative", c.InPorts, c.OutPorts)
	case c.MIPS <= 0:
		return fmt.Errorf("network: MIPS=%g, must be positive", c.MIPS)
	case c.RelativeSpeed <= 0:
		return fmt.Errorf("network: RelativeSpeed=%g, must be positive", c.RelativeSpeed)
	case c.CongestionFactor < 0:
		return fmt.Errorf("network: CongestionFactor=%g, must be non-negative", c.CongestionFactor)
	}
	return nil
}

// TransferSec returns the flight time of a message of the given size:
// latency plus serialization.
func (c Config) TransferSec(bytes int64) float64 {
	return c.LatencySec + c.SerializationSec(bytes)
}

// SerializationSec returns the time the message occupies a port:
// size divided by bandwidth.
func (c Config) SerializationSec(bytes int64) float64 {
	if math.IsInf(c.BandwidthMBps, 1) {
		return 0
	}
	return float64(bytes) / (c.BandwidthMBps * 1e6)
}

// ComputeSec converts an instruction count to seconds on this platform.
func (c Config) ComputeSec(instr int64) float64 {
	return float64(instr) / (c.MIPS * 1e6 * c.RelativeSpeed)
}

// Eager reports whether a message of the given size uses the eager protocol.
func (c Config) Eager(bytes int64) bool {
	if c.EagerThresholdBytes < 0 {
		return true
	}
	return bytes <= c.EagerThresholdBytes
}

// WithBandwidth returns a copy of the config with the bandwidth replaced.
// It is the primitive used by the Fig. 6b/6c bandwidth searches.
func (c Config) WithBandwidth(mbps float64) Config {
	c.BandwidthMBps = mbps
	return c
}

// WithProcessors returns a copy of the config resized to n processors.
func (c Config) WithProcessors(n int) Config {
	c.Processors = n
	return c
}

// Testbed returns the paper's experimental platform: the MareNostrum-like
// system of Section IV — PowerPC 970 nodes at 2.3 GHz joined by a Myrinet
// network with 250 MB/s unidirectional bandwidth. The MIPS figure models the
// observed average rate of one core (the paper scales instructions by the
// measured rate; 2300 MIPS ≈ one instruction per cycle at 2.3 GHz). The
// 8 microsecond latency is typical for the Myrinet generation deployed in
// MareNostrum. The bus count is application specific (Table I); callers
// overwrite it via TestbedFor or WithBuses.
func Testbed(processors int) Config {
	return Config{
		Processors:          processors,
		LatencySec:          8e-6,
		BandwidthMBps:       250,
		Buses:               0,
		InPorts:             1,
		OutPorts:            1,
		MIPS:                2300,
		EagerThresholdBytes: -1, // Dimemas default: asynchronous sends
		RelativeSpeed:       1,
	}
}

// WithBuses returns a copy of the config with the bus pool resized.
func (c Config) WithBuses(buses int) Config {
	c.Buses = buses
	return c
}

// TableIBuses reproduces Table I of the paper: the number of Dimemas buses
// that calibrated each application's simulation against the real
// MareNostrum run.
var TableIBuses = map[string]int{
	"sweep3d":   12,
	"pop":       12,
	"alya":      11,
	"specfem3d": 8,
	"bt":        22,
	"cg":        6,
}

// TestbedFor returns the testbed configuration calibrated for the named
// application (lower-case, as in TableIBuses). Unknown names get the plain
// testbed with unlimited buses.
func TestbedFor(app string, processors int) Config {
	c := Testbed(processors)
	if b, ok := TableIBuses[app]; ok {
		c.Buses = b
	}
	return c
}

// InfiniteBandwidth returns a copy of the config with zero serialization
// cost, used to detect "no bandwidth can match" (Fig. 6c's Sweep3D result).
func (c Config) InfiniteBandwidth() Config {
	c.BandwidthMBps = math.Inf(1)
	return c
}
