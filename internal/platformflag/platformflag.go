// Package platformflag is the one place the CLIs declare and resolve their
// platform flags, so every command spells -platform, -preset, -nodes,
// -map, -bw, -lat, -buses, and -dump-platform the same way and resolves
// them in the same precedence order:
//
//  1. -platform file.json loads a platform file (hierarchical or flat
//     schema, see network.ReadAnyPlatform);
//  2. otherwise -preset resolves a named preset (flat presets in their
//     degenerate form, hierarchical presets as built);
//  3. otherwise the app-calibrated testbed (network.TestbedFor) applies;
//  4. the -nodes, -map, -bw (inter bandwidth), -lat (inter latency, us),
//     and -buses (global pool; -1 keeps the calibrated value) overrides
//     are applied on top, in that order;
//  5. the degradation overrides (-derate, -jitter, -stragglers,
//     -straggler-factor, -link-down, -fault-seed) follow — they fill the
//     platform's fault-injection spec (see internal/faults), all
//     deterministic, all default-off;
//  6. -dump-platform prints the resolved platform as JSON so a run's
//     exact platform can be captured into a file and replayed anywhere.
package platformflag

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/network"
	"repro/internal/telemetry"
)

// Flags holds the registered flag values until Resolve.
type Flags struct {
	preset  *string
	file    *string
	nodes   *int
	mapping *string
	bw      *float64
	latUs   *float64
	buses   *int
	shards  *int
	dump    *bool

	derate     *float64
	jitter     *float64
	stragglers *int
	stragMul   *float64
	linkDown   *int
	faultSeed  *uint64
}

// Register declares the shared platform flags on fs (pass
// flag.CommandLine in a main).
func Register(fs *flag.FlagSet) *Flags {
	return &Flags{
		preset:  fs.String("preset", "", "platform preset: "+fmt.Sprint(network.PresetNames())+" (default: app-calibrated testbed)"),
		file:    fs.String("platform", "", "platform JSON file (hierarchical or flat schema; overrides -preset)"),
		nodes:   fs.Int("nodes", 0, "re-cluster the platform onto N nodes (0 = keep)"),
		mapping: fs.String("map", "", "rank->node mapping: block|rr|explicit list like 0,0,1,1 (default: keep)"),
		bw:      fs.Float64("bw", 0, "override inter-node bandwidth in MB/s (0 = keep)"),
		latUs:   fs.Float64("lat", -1, "override inter-node latency in microseconds (negative = keep)"),
		buses:   fs.Int("buses", -1, "override global buses, 0 = unlimited (-1 = keep calibration)"),
		shards:  fs.Int("replay-shards", 0, "parallel (PDES) shards per replay: 0 = planner's choice, 1 = serial, N = force N (results identical either way)"),
		dump:    fs.Bool("dump-platform", false, "print the resolved platform as JSON and exit"),

		derate:     fs.Float64("derate", 0, "degrade inter-node bandwidth to this fraction of healthy, in (0,1] (0 = healthy)"),
		jitter:     fs.Float64("jitter", 0, "deterministic inter-node latency jitter fraction, e.g. 0.2 adds up to +20% per transfer (0 = none)"),
		stragglers: fs.Int("stragglers", 0, "slow down this many seeded ranks by -straggler-factor (0 = none)"),
		stragMul:   fs.Float64("straggler-factor", 0, "compute slowdown multiplier for straggler ranks (0 with -stragglers defaults to 2)"),
		linkDown:   fs.Int("link-down", 0, "sever this many seeded inter-node links (0 = none)"),
		faultSeed:  fs.Uint64("fault-seed", 0, "extra seed folded into the deterministic fault draws (straggler picks, downed links, jitter)"),
	}
}

// ReplayShards returns the -replay-shards setting: the intra-replay
// parallelism the commands pass through to the scenario planner
// (core.Scenario.ReplayShards) or to sim.RunProgramShards directly.
// Sharded and serial replays are byte-identical; the flag is pure
// scheduling.
func (f *Flags) ReplayShards() int { return *f.shards }

// Resolve builds the active platform for the given application (used for
// Table I bus calibration when no preset or file is named) and rank count.
func (f *Flags) Resolve(app string, ranks int) (network.Platform, error) {
	var plat network.Platform
	switch {
	case *f.file != "":
		p, err := network.ReadPlatformFile(*f.file)
		if err != nil {
			return network.Platform{}, err
		}
		if p.Processors < ranks {
			return network.Platform{}, fmt.Errorf("platform file %s has %d processors, need %d", *f.file, p.Processors, ranks)
		}
		plat = p
	case *f.preset != "":
		p, err := network.PlatformPreset(*f.preset, ranks)
		if err != nil {
			return network.Platform{}, err
		}
		plat = p
	default:
		plat = network.TestbedFor(app, ranks).Platform()
	}
	if *f.nodes > 0 {
		plat = plat.WithNodes(*f.nodes)
	}
	if *f.mapping != "" {
		m, err := network.ParseMapping(*f.mapping)
		if err != nil {
			return network.Platform{}, err
		}
		plat = plat.WithMapping(m)
	}
	if *f.bw > 0 {
		plat = plat.WithInterBandwidth(*f.bw)
	}
	if *f.latUs >= 0 {
		plat.Inter.LatencySec = *f.latUs * 1e-6
	}
	if *f.buses >= 0 {
		plat.Buses = *f.buses
	}
	// Degradation overrides layer onto whatever fault spec the platform
	// file already carried; the zero value of each flag keeps it.
	if *f.derate > 0 {
		plat.Degradations.DerateInter = *f.derate
	}
	if *f.jitter > 0 {
		plat.Degradations.JitterFrac = *f.jitter
	}
	if *f.stragglers > 0 {
		plat.Degradations.Stragglers = *f.stragglers
		if plat.Degradations.StragglerFactor == 0 && *f.stragMul == 0 {
			plat.Degradations.StragglerFactor = 2
		}
	}
	if *f.stragMul > 0 {
		plat.Degradations.StragglerFactor = *f.stragMul
	}
	if *f.linkDown > 0 {
		plat.Degradations.LinkDown = *f.linkDown
	}
	if *f.faultSeed != 0 {
		plat.Degradations.Seed = *f.faultSeed
	}
	if err := plat.Validate(); err != nil {
		return network.Platform{}, err
	}
	return plat, nil
}

// Timings is the shared -timings flag: every CLI that runs simulations
// spells the per-stage telemetry summary the same way.
type Timings struct {
	on *bool
}

// RegisterTimings declares the shared -timings flag on fs.
func RegisterTimings(fs *flag.FlagSet) *Timings {
	return &Timings{
		on: fs.Bool("timings", false, "after the run, print a per-stage telemetry timing summary (compile/replay/copyout/emit, engine queue waits, PDES phases) to stderr"),
	}
}

// Enabled reports whether -timings was set.
func (t *Timings) Enabled() bool { return *t.on }

// MaybeDump writes the process's telemetry timing summary to w when
// -timings was set; otherwise it does nothing. Call it once, after the
// run's work is finished.
func (t *Timings) MaybeDump(w io.Writer) {
	if *t.on {
		telemetry.WriteTimings(w, telemetry.Default())
	}
}

// DumpRequested reports whether -dump-platform was set; mains that see
// true should Dump and exit without running.
func (f *Flags) DumpRequested() bool { return *f.dump }

// Dump writes the resolved platform as JSON.
func (f *Flags) Dump(w io.Writer, p network.Platform) error {
	return p.WriteJSON(w)
}
