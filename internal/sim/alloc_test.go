//go:build !race

// The race detector instruments allocations, so the zero-alloc pins only
// run in regular test builds; -race runs still execute the equivalence
// suite in program_test.go.

package sim

import (
	"testing"

	"repro/internal/network"
	"repro/internal/trace"
)

// allocRing builds the bench-shaped ring-exchange trace.
func allocRing(n, iters int) *trace.Trace {
	tr := trace.New("ring", "base", n)
	for it := 0; it < iters; it++ {
		for r := 0; r < n; r++ {
			next := (r + 1) % n
			prev := (r + n - 1) % n
			tr.Append(r, trace.Record{Kind: trace.KindCompute, Instr: 100_000})
			tr.Append(r, trace.Record{Kind: trace.KindISend, Peer: next, Tag: it, Bytes: 10_000})
			tr.Append(r, trace.Record{Kind: trace.KindRecv, Peer: prev, Tag: it, Bytes: 10_000})
		}
	}
	return tr
}

// pinReplayAllocs replays prog on a warm arena and fails if the replay
// allocates more than maxPerReplay — the regression guard for the
// zero-alloc property. The bound is a handful of allocations per *replay*
// (not per record): runtime-internal bookkeeping can show up sporadically,
// but per-record allocation (the old engine's closures and map inserts
// cost ~5 allocs/record) trips it immediately.
func pinReplayAllocs(t *testing.T, plat network.Platform, tr *trace.Trace, maxPerReplay float64) {
	t.Helper()
	prog, err := Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	arena := NewArena()
	for i := 0; i < 3; i++ { // warm every buffer past its high-water mark
		if _, err := arena.RunProgram(plat, prog); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := arena.RunProgram(plat, prog); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > maxPerReplay {
		t.Fatalf("warm arena replay allocates %.1f times per replay (%d records), want <= %g",
			allocs, prog.Records(), maxPerReplay)
	}
}

// allocHandleReuse builds a ring where every receive is an IRecv whose
// single rank-local handle is legally reposted after each Wait, with a
// WaitAll per iteration — the worst case for the active-handle lists
// (one activation per IRecv, far more than distinct handles).
func allocHandleReuse(n, iters int) *trace.Trace {
	tr := trace.New("ring-irecv", "base", n)
	for it := 0; it < iters; it++ {
		for r := 0; r < n; r++ {
			next := (r + 1) % n
			prev := (r + n - 1) % n
			tr.Append(r, trace.Record{Kind: trace.KindIRecv, Peer: prev, Tag: it, Bytes: 10_000, Handle: 1})
			tr.Append(r, trace.Record{Kind: trace.KindCompute, Instr: 100_000})
			tr.Append(r, trace.Record{Kind: trace.KindISend, Peer: next, Tag: it, Bytes: 10_000})
			if it%2 == 0 {
				tr.Append(r, trace.Record{Kind: trace.KindWait, Handle: 1})
			} else {
				tr.Append(r, trace.Record{Kind: trace.KindWaitAll})
			}
		}
	}
	return tr
}

func TestReplayAllocsFlat(t *testing.T) {
	pinReplayAllocs(t, network.Testbed(16).Platform(), allocRing(16, 25), 2)
}

func TestReplayAllocsHandleReuse(t *testing.T) {
	pinReplayAllocs(t, network.Testbed(16).Platform(), allocHandleReuse(16, 25), 2)
}

func TestReplayAllocsHierarchical(t *testing.T) {
	plat, err := network.PlatformPreset("fatnode-smp", 16)
	if err != nil {
		t.Fatal(err)
	}
	pinReplayAllocs(t, plat, allocRing(16, 25), 2)
	pinReplayAllocs(t, plat.WithMapping(network.RoundRobinMapping()), allocRing(16, 25), 2)
}

// TestPooledReplayAllocs pins the sweep primitive: after warm-up,
// ReplayFinish on a pooled arena must not allocate per point.
func TestPooledReplayAllocs(t *testing.T) {
	tr := allocRing(8, 20)
	prog, err := Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	plat := network.Testbed(8).Platform()
	for i := 0; i < 3; i++ {
		if _, err := ReplayFinish(plat, prog); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := ReplayFinish(plat, prog); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("pooled replay allocates %.1f times per point, want <= 2", allocs)
	}
}
