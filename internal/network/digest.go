package network

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/faults"
)

// Content addressing for platforms. The service layer keys its result
// cache and platform store by Digest, so two requests naming the same
// platform — whatever spelling they arrived in — must collapse to one key.

// canonicalPlatform is the canonicalized JSON form a platform digests
// through. It differs from the persistence schema (platformJSON) in one
// deliberate way: the mapping is materialized to the full rank→node table,
// so "block" on a flat platform, an equivalent explicit list, and any
// other spelling of the same placement all digest equal. Bandwidths use
// encodeBW, matching the persistence files ("inf" for +Inf).
type canonicalPlatform struct {
	Processors          int     `json:"processors"`
	Nodes               int     `json:"nodes"`
	NodeTable           []int   `json:"node_table"`
	IntraLatencySec     float64 `json:"intra_latency_sec"`
	IntraBandwidthMBps  any     `json:"intra_bandwidth_mbps"`
	IntraBuses          int     `json:"intra_buses"`
	InterLatencySec     float64 `json:"inter_latency_sec"`
	InterBandwidthMBps  any     `json:"inter_bandwidth_mbps"`
	Buses               int     `json:"buses"`
	InPorts             int     `json:"in_ports"`
	OutPorts            int     `json:"out_ports"`
	MIPS                float64 `json:"mips"`
	EagerThresholdBytes int64   `json:"eager_threshold_bytes"`
	RelativeSpeed       float64 `json:"relative_speed"`
	CongestionFactor    float64 `json:"congestion_factor"`
	// Degradations carries the canonical fault-injection spec and is
	// omitted entirely when the spec has no effect, so every healthy
	// platform — including one written before the field existed —
	// digests to the same bytes it always has.
	Degradations *faults.Spec `json:"degradations,omitempty"`
}

// CanonicalJSON returns the canonical serialized form of the platform:
// compact JSON with a fixed field order and the mapping materialized to
// the explicit rank→node table. Two platforms produce the same canonical
// bytes exactly when every replay on them behaves identically. The
// platform must be valid (Validate), since materializing an explicit
// mapping indexes its node list.
func (p Platform) CanonicalJSON() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := canonicalPlatform{
		Processors:          p.Processors,
		Nodes:               p.Nodes,
		NodeTable:           p.NodeTable(),
		IntraLatencySec:     p.Intra.LatencySec,
		IntraBandwidthMBps:  encodeBW(p.Intra.BandwidthMBps),
		IntraBuses:          p.IntraBuses,
		InterLatencySec:     p.Inter.LatencySec,
		InterBandwidthMBps:  encodeBW(p.Inter.BandwidthMBps),
		Buses:               p.Buses,
		InPorts:             p.InPorts,
		OutPorts:            p.OutPorts,
		MIPS:                p.MIPS,
		EagerThresholdBytes: p.EagerThresholdBytes,
		RelativeSpeed:       p.RelativeSpeed,
		CongestionFactor:    p.CongestionFactor,
	}
	if d := p.Degradations.Canonical(); !d.IsZero() {
		c.Degradations = &d
	}
	b, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("network: canonicalize platform: %w", err)
	}
	return b, nil
}

// Digest returns the content address of the platform: the SHA-256 of its
// canonical JSON, spelled "sha256:<64 hex digits>" like trace digests.
func (p Platform) Digest() (string, error) {
	b, err := p.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}
