package network

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Platform presets and JSON persistence: Dimemas reads its platform from a
// configuration file; this file provides the equivalent. The presets cover
// the networks the paper's introduction discusses — the Myrinet testbed and
// the InfiniBand QDR generation whose cost motivates the study — plus a
// commodity Ethernet point for contrast.

// Preset returns a named platform configuration. Known names:
//
//	marenostrum   the paper's testbed: 250 MB/s, 8 us (default elsewhere)
//	ib-qdr        InfiniBand QDR: 8 Gb/s effective per link = 1000 MB/s,
//	              1.3 us MPI latency (the network the intro prices out)
//	ib-qdr-4x     four aggregated QDR links (32 Gb/s = 4000 MB/s)
//	gige          commodity gigabit Ethernet: 125 MB/s, 50 us
//	ideal         zero latency, infinite bandwidth, no contention
func Preset(name string, processors int) (Config, error) {
	base := Testbed(processors)
	switch name {
	case "marenostrum":
		return base, nil
	case "ib-qdr":
		base.BandwidthMBps = 1000
		base.LatencySec = 1.3e-6
		return base, nil
	case "ib-qdr-4x":
		base.BandwidthMBps = 4000
		base.LatencySec = 1.3e-6
		return base, nil
	case "gige":
		base.BandwidthMBps = 125
		base.LatencySec = 50e-6
		return base, nil
	case "ideal":
		base.BandwidthMBps = math.Inf(1)
		base.LatencySec = 0
		base.InPorts = 0
		base.OutPorts = 0
		base.Buses = 0
		return base, nil
	default:
		return Config{}, fmt.Errorf("network: unknown preset %q (known: %v)", name, PresetNames())
	}
}

// PresetNames lists the available presets, sorted.
func PresetNames() []string {
	names := []string{"marenostrum", "ib-qdr", "ib-qdr-4x", "gige", "ideal"}
	sort.Strings(names)
	return names
}

// configJSON mirrors Config for serialization; infinite bandwidth is
// encoded as the string "inf" since JSON has no Inf literal.
type configJSON struct {
	Processors          int     `json:"processors"`
	LatencySec          float64 `json:"latency_sec"`
	BandwidthMBps       any     `json:"bandwidth_mbps"`
	Buses               int     `json:"buses"`
	InPorts             int     `json:"in_ports"`
	OutPorts            int     `json:"out_ports"`
	MIPS                float64 `json:"mips"`
	EagerThresholdBytes int64   `json:"eager_threshold_bytes"`
	RelativeSpeed       float64 `json:"relative_speed"`
}

// WriteJSON serializes the configuration.
func (c Config) WriteJSON(w io.Writer) error {
	j := configJSON{
		Processors:          c.Processors,
		LatencySec:          c.LatencySec,
		Buses:               c.Buses,
		InPorts:             c.InPorts,
		OutPorts:            c.OutPorts,
		MIPS:                c.MIPS,
		EagerThresholdBytes: c.EagerThresholdBytes,
		RelativeSpeed:       c.RelativeSpeed,
	}
	if math.IsInf(c.BandwidthMBps, 1) {
		j.BandwidthMBps = "inf"
	} else {
		j.BandwidthMBps = c.BandwidthMBps
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(j)
}

// ReadJSON parses a configuration written by WriteJSON and validates it.
func ReadJSON(r io.Reader) (Config, error) {
	var j configJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&j); err != nil {
		return Config{}, fmt.Errorf("network: parse config: %w", err)
	}
	c := Config{
		Processors:          j.Processors,
		LatencySec:          j.LatencySec,
		Buses:               j.Buses,
		InPorts:             j.InPorts,
		OutPorts:            j.OutPorts,
		MIPS:                j.MIPS,
		EagerThresholdBytes: j.EagerThresholdBytes,
		RelativeSpeed:       j.RelativeSpeed,
	}
	switch bw := j.BandwidthMBps.(type) {
	case string:
		if bw != "inf" {
			return Config{}, fmt.Errorf("network: bad bandwidth %q", bw)
		}
		c.BandwidthMBps = math.Inf(1)
	case float64:
		c.BandwidthMBps = bw
	case nil:
		return Config{}, fmt.Errorf("network: missing bandwidth")
	default:
		return Config{}, fmt.Errorf("network: bad bandwidth type %T", bw)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}
