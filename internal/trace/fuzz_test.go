package trace

import (
	"bytes"
	"testing"
)

// Fuzz targets for the two codecs: any input must either fail cleanly or
// parse into a trace that survives a round trip. `go test` exercises the
// seed corpus; `go test -fuzz=FuzzRead` explores further.

func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	if err := Write(&seed, tinyTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("#DIMGO 1\nT a b 2\nR 0\nc 10\ns 1 0 0 8 1\nR 1\nr 0 0 0 8 1\n"))
	f.Add([]byte("#DIMGO 1\nT x y 0\n"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return // clean rejection
		}
		// Parsed traces must survive a write/read cycle unchanged in
		// aggregate terms.
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		tr2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if tr2.Stats() != tr.Stats() {
			t.Fatalf("stats changed across round trip")
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteBinary(&seed, tinyTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add(binaryMagic[:])
	f.Add([]byte("garbage!"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			// Some kinds decode but cannot re-encode only if the kind
			// byte was invalid, which ReadBinary rejects; any failure
			// here is a bug.
			t.Fatalf("re-encode failed: %v", err)
		}
		tr2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if tr2.Stats() != tr.Stats() {
			t.Fatalf("stats changed across round trip")
		}
	})
}
