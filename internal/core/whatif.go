package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/tracer"
)

// What-if analysis: which buffer's production/consumption pattern limits
// the overlap? For every communicated buffer, the analysis rebuilds the
// overlapped trace with *only that buffer* given the ideal schedule (all
// others keep their measured patterns) and replays it. The resulting
// ranking tells a developer which buffer to restructure first — the
// bottleneck-identification workflow the paper describes for its Paraver
// views, quantified.

// BufferPotential is the outcome of idealizing one buffer.
type BufferPotential struct {
	// Buffer is the tracked array name.
	Buffer string
	// FinishSec is the makespan with only this buffer idealized.
	FinishSec float64
	// Speedup compares against the non-overlapped execution.
	Speedup float64
	// GainOverReal is the speedup relative to the all-real overlapped
	// execution: the marginal value of restructuring just this buffer.
	GainOverReal float64
}

// WhatIf runs the per-buffer idealization study for an application. It
// traces the application once and replays len(buffers)+2 traces, fanning
// the replays out across the default engine.
func WhatIf(app App, ranks int, netCfg network.Config, tCfg tracer.Config) (*WhatIfReport, error) {
	return WhatIfWith(context.Background(), nil, app, ranks, netCfg, tCfg)
}

// WhatIfWith is WhatIf under an explicit context and engine (nil selects
// the default engine) — a thin wrapper over a what-if-output scenario
// spec with no sweep axes.
func WhatIfWith(ctx context.Context, eng *engine.Engine, app App, ranks int, netCfg network.Config, tCfg tracer.Config) (*WhatIfReport, error) {
	if err := netCfg.Validate(); err != nil {
		return nil, err
	}
	return whatIfScenario(ctx, eng, app, ranks, netCfg.Platform(), tCfg)
}

// WhatIfOn is WhatIf on a hierarchical platform.
func WhatIfOn(ctx context.Context, eng *engine.Engine, app App, ranks int, plat network.Platform, tCfg tracer.Config) (*WhatIfReport, error) {
	if app.Kernel == nil {
		return nil, fmt.Errorf("core: app %q has no kernel", app.Name)
	}
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	return whatIfScenario(ctx, eng, app, ranks, plat, tCfg)
}

// whatIfScenario runs the zero-axis what-if scenario both entry points
// wrap and converts its single point back to the report form.
func whatIfScenario(ctx context.Context, eng *engine.Engine, app App, ranks int, plat network.Platform, tCfg tracer.Config) (*WhatIfReport, error) {
	res, err := RunScenario(ctx, eng, Scenario{
		App: app, Ranks: ranks, Tracer: tCfg, Platform: plat, Output: OutputWhatIf,
	})
	if err != nil {
		return nil, err
	}
	w := res.Points[0].WhatIf
	return &WhatIfReport{
		App:           w.App,
		BaseFinishSec: w.BaseFinishSec,
		RealFinishSec: w.RealFinishSec,
		Buffers:       w.Buffers,
	}, nil
}

// WhatIfRun is the fan-out half of WhatIf for an already-traced run —
// the entry point for callers that trace through the engine's shared
// cache and reuse one run across several studies.
func WhatIfRun(ctx context.Context, eng *engine.Engine, run *tracer.Run, netCfg network.Config) (*WhatIfReport, error) {
	if err := netCfg.Validate(); err != nil {
		return nil, err
	}
	return WhatIfRunOn(ctx, eng, run, netCfg.Platform())
}

// WhatIfRunOn is WhatIfRun on a hierarchical platform.
func WhatIfRunOn(ctx context.Context, eng *engine.Engine, run *tracer.Run, plat network.Platform) (*WhatIfReport, error) {
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	// Every replay of the study retains only its makespan, so all of them
	// run as compiled programs on pooled arenas.
	refs, err := engine.Map(ctx, eng, 2, func(ctx context.Context, i int) (float64, error) {
		tr := run.BaseTrace()
		if i == 1 {
			tr = run.OverlapReal()
		}
		if err := tr.Validate(); err != nil {
			return 0, err
		}
		prog, err := sim.Compile(tr)
		if err != nil {
			return 0, err
		}
		return sim.ReplayFinish(plat, prog)
	})
	if err != nil {
		return nil, err
	}
	baseFin, realFin := refs[0], refs[1]
	rep := &WhatIfReport{
		App:           run.Name,
		BaseFinishSec: baseFin,
		RealFinishSec: realFin,
	}
	names := run.BufferNames()
	rep.Buffers, err = engine.Map(ctx, eng, len(names), func(ctx context.Context, i int) (BufferPotential, error) {
		name := names[i]
		tr := run.OverlapSelective(map[string]bool{name: true})
		if err := tr.Validate(); err != nil {
			return BufferPotential{}, fmt.Errorf("core: selective trace for %q: %w", name, err)
		}
		prog, err := sim.Compile(tr)
		if err != nil {
			return BufferPotential{}, fmt.Errorf("core: compiling selective %q: %w", name, err)
		}
		fin, err := sim.ReplayFinish(plat, prog)
		if err != nil {
			return BufferPotential{}, fmt.Errorf("core: replaying selective %q: %w", name, err)
		}
		return BufferPotential{
			Buffer:       name,
			FinishSec:    fin,
			Speedup:      metrics.Speedup(baseFin, fin),
			GainOverReal: metrics.Speedup(realFin, fin),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	// Rank by marginal gain; ties keep the deterministic buffer-name order
	// the jobs were submitted in.
	sort.SliceStable(rep.Buffers, func(i, j int) bool {
		return rep.Buffers[i].GainOverReal > rep.Buffers[j].GainOverReal
	})
	return rep, nil
}

// WhatIfReport ranks the buffers of one application by restructuring
// potential.
type WhatIfReport struct {
	App           string
	BaseFinishSec float64
	RealFinishSec float64
	// Buffers sorted by GainOverReal, best first.
	Buffers []BufferPotential
}

// Format renders the ranking as a table.
func (r *WhatIfReport) Format() string {
	out := fmt.Sprintf("what-if (idealize one buffer at a time) for %s\n", r.App)
	out += fmt.Sprintf("non-overlapped %.6f s, overlapped(real) %.6f s\n", r.BaseFinishSec, r.RealFinishSec)
	out += fmt.Sprintf("%-20s %12s %12s %14s\n", "buffer", "finish (s)", "speedup", "gain vs real")
	for _, b := range r.Buffers {
		out += fmt.Sprintf("%-20s %12.6f %12.3f %14.3f\n", b.Buffer, b.FinishSec, b.Speedup, b.GainOverReal)
	}
	return out
}
