package sim

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Compiled trace programs: a Program is the replay-ready form of a
// trace.Trace, built once and replayed many times. Compilation flattens
// every rank's records into a dense instruction array and resolves all
// matching state ahead of time:
//
//   - each (dst, src, tag, chunk) message stream becomes an integer stream
//     ID, so the per-record map lookups of the old replay loop disappear —
//     the hot loop indexes a slice;
//   - per-stream send and post counts are known up front, so every match
//     buffer (arrivals, matched, posts, pending rendezvous queue) can be
//     carved exactly-sized out of one backing allocation;
//   - rank-local IRecv handles are renumbered densely per rank, so the
//     outstanding-handle table is a slice, not a map;
//   - per-record metadata the replay needs (bytes, instruction counts,
//     peer/tag/chunk for reporting) is precomputed into the instruction.
//
// A Program is immutable after Compile and safe to share between
// concurrent replays; all mutable replay state lives in ReplayArena.

// instr is one compiled trace record. op keeps the trace.Kind vocabulary so
// diagnostics (deadlock reports) can name the original record.
type instr struct {
	op     trace.Kind
	peer   int32
	tag    int32
	chunk  int32
	stream int32 // stream ID for send/isend/recv/irecv, -1 otherwise
	handle int32 // dense per-rank handle ID for irecv/wait, -1 otherwise
	arg    int64 // instruction count (compute) or transfer bytes (comms)
	msgID  int64
}

// streamInfo is the compile-time shape of one (dst, src, tag, chunk)
// message stream.
type streamInfo struct {
	src, dst int32
	sends    int32 // send-side records feeding the stream
	posts    int32 // recv/irecv records posted against the stream
	// sendOff and postOff are prefix offsets into the arena's shared
	// backing arrays, so per-stream state is a zero-alloc subslice.
	sendOff int32
	postOff int32
}

// Program is a compiled trace: the allocation-free replay core executes
// Programs, not Traces. Build one with Compile; a Program may be cached
// (engine.TraceCache memoizes per traced run, the service layer per trace
// digest) and replayed concurrently on any platform with enough
// processors.
type Program struct {
	name     string
	numRanks int
	code     [][]instr
	streams  []streamInfo
	// handles[r] is the number of distinct IRecv handles of rank r; handleOff
	// is the prefix offset into the arena's handle tables. irecvs[r] counts
	// rank r's IRecv records — the worst-case number of handle activations
	// in one replay (a handle may be legally reposted after each Wait), which
	// sizes the arena's active-handle lists; irecvOff is its prefix offset.
	handles   []int32
	handleOff []int32
	irecvs    []int32
	irecvOff  []int32

	totalSends   int
	totalPosts   int
	totalHandles int
	totalIRecvs  int
	records      int
}

// Name returns the compiled trace's name.
func (p *Program) Name() string { return p.name }

// NumRanks returns the number of simulated processes.
func (p *Program) NumRanks() int { return p.numRanks }

// Records returns the total record count over all ranks.
func (p *Program) Records() int { return p.records }

// Streams returns how many distinct (dst, src, tag, chunk) message streams
// the program matches on.
func (p *Program) Streams() int { return len(p.streams) }

// streamKey identifies a message stream during compilation only; the
// replay loop never touches it.
type streamKey struct {
	dst, src, tag, chunk int32
}

func (k streamKey) less(o streamKey) bool {
	if k.dst != o.dst {
		return k.dst < o.dst
	}
	if k.src != o.src {
		return k.src < o.src
	}
	if k.tag != o.tag {
		return k.tag < o.tag
	}
	return k.chunk < o.chunk
}

// streamRef ties one send/recv instruction to its stream key. Compile
// collects one per matching record, sorts the batch, and resolves stream
// IDs group-by-group — replacing the per-record hash-map inserts of the
// first compiler, whose hashing dominated compile time on large traces.
type streamRef struct {
	key  streamKey
	r, i int32 // instruction location: p.code[r][i]
}

// Compile flattens tr into its replay program. It fails on a nil trace and
// on structurally unusable records (peers out of range, rank streams
// missing) — conditions trace.Validate would also reject but that the old
// replay core only caught by panicking mid-replay.
func Compile(tr *trace.Trace) (*Program, error) {
	if tr == nil {
		return nil, ErrNilTrace
	}
	if len(tr.Ranks) < tr.NumRanks {
		return nil, fmt.Errorf("sim: compile %q: NumRanks=%d but only %d rank streams", tr.Name, tr.NumRanks, len(tr.Ranks))
	}
	p := &Program{
		name:      tr.Name,
		numRanks:  tr.NumRanks,
		code:      make([][]instr, tr.NumRanks),
		handles:   make([]int32, tr.NumRanks),
		handleOff: make([]int32, tr.NumRanks),
		irecvs:    make([]int32, tr.NumRanks),
		irecvOff:  make([]int32, tr.NumRanks),
	}
	var refs []streamRef
	for r := 0; r < tr.NumRanks; r++ {
		recs := tr.Ranks[r].Records
		code := make([]instr, len(recs))
		p.records += len(recs)
		handleIDs := make(map[int]int32)
		for i := range recs {
			rec := &recs[i]
			in := instr{
				op:     rec.Kind,
				peer:   int32(rec.Peer),
				tag:    int32(rec.Tag),
				chunk:  int32(rec.Chunk),
				stream: -1,
				handle: -1,
				msgID:  rec.MsgID,
			}
			switch rec.Kind {
			case trace.KindCompute:
				in.arg = rec.Instr
			case trace.KindSend, trace.KindISend, trace.KindRecv, trace.KindIRecv:
				if rec.Peer < 0 || rec.Peer >= tr.NumRanks {
					return nil, fmt.Errorf("sim: compile %q: rank %d record %d (%s): peer %d out of range [0,%d)",
						tr.Name, r, i, rec.Kind, rec.Peer, tr.NumRanks)
				}
				in.arg = rec.Bytes
				// Stream IDs resolve after the scan, from the sorted refs.
				switch rec.Kind {
				case trace.KindSend, trace.KindISend:
					refs = append(refs, streamRef{
						key: streamKey{dst: in.peer, src: int32(r), tag: in.tag, chunk: in.chunk},
						r:   int32(r), i: int32(i),
					})
					p.totalSends++
				default: // KindRecv, KindIRecv
					refs = append(refs, streamRef{
						key: streamKey{dst: int32(r), src: in.peer, tag: in.tag, chunk: in.chunk},
						r:   int32(r), i: int32(i),
					})
					p.totalPosts++
					if rec.Kind == trace.KindIRecv {
						in.handle = handleForCompile(handleIDs, rec.Handle)
						p.irecvs[r]++
					}
				}
			case trace.KindWait:
				// A wait on a handle no IRecv defined compiles to handle -1;
				// the replay skips it, matching the old defensive branch.
				if id, ok := handleIDs[rec.Handle]; ok {
					in.handle = id
				}
			}
			code[i] = in
		}
		p.code[r] = code
		p.handles[r] = int32(len(handleIDs))
	}
	p.resolveStreams(refs)
	// Prefix offsets: every stream's match buffers and every rank's handle
	// table become exact subslices of one arena backing array.
	var sendOff, postOff int32
	for i := range p.streams {
		p.streams[i].sendOff = sendOff
		p.streams[i].postOff = postOff
		sendOff += p.streams[i].sends
		postOff += p.streams[i].posts
	}
	var hOff, irOff int32
	for r := range p.handles {
		p.handleOff[r] = hOff
		hOff += p.handles[r]
		p.irecvOff[r] = irOff
		irOff += p.irecvs[r]
	}
	p.totalHandles = int(hOff)
	p.totalIRecvs = int(irOff)
	return p, nil
}

// resolveStreams assigns stream IDs from the collected refs by sorting
// instead of hashing. Refs sort by key with the instruction location as
// tie-break, so equal keys form runs whose first element is the key's
// first appearance in rank-major record order; numbering runs by that
// first appearance reproduces the ID order of the original map-based
// resolver exactly — stream IDs are tie-breaks in the replay's event
// order (eventBefore) and define the Result.Comms grouping, so the
// assignment order is part of the replay's observable contract.
func (p *Program) resolveStreams(refs []streamRef) {
	sort.Slice(refs, func(a, b int) bool {
		x, y := &refs[a], &refs[b]
		if x.key != y.key {
			return x.key.less(y.key)
		}
		if x.r != y.r {
			return x.r < y.r
		}
		return x.i < y.i
	})
	// First pass over runs: one streamInfo per distinct key, IDs in
	// key-sorted order for now.
	type run struct {
		start, end int32 // refs[start:end] share one key
		id         int32
	}
	var runs []run
	for i := 0; i < len(refs); {
		j := i + 1
		for j < len(refs) && refs[j].key == refs[i].key {
			j++
		}
		runs = append(runs, run{start: int32(i), end: int32(j)})
		i = j
	}
	// Renumber runs by first appearance (the run's first ref is its
	// earliest instruction, thanks to the location tie-break).
	order := make([]int32, len(runs))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		x, y := &refs[runs[order[a]].start], &refs[runs[order[b]].start]
		if x.r != y.r {
			return x.r < y.r
		}
		return x.i < y.i
	})
	p.streams = make([]streamInfo, len(runs))
	for id, ri := range order {
		runs[ri].id = int32(id)
		k := refs[runs[ri].start].key
		p.streams[id] = streamInfo{src: k.src, dst: k.dst}
	}
	// Stamp every instruction and count the per-stream sends/posts.
	for _, rn := range runs {
		si := &p.streams[rn.id]
		for _, ref := range refs[rn.start:rn.end] {
			in := &p.code[ref.r][ref.i]
			in.stream = rn.id
			switch in.op {
			case trace.KindSend, trace.KindISend:
				si.sends++
			default:
				si.posts++
			}
		}
	}
}

// handleForCompile returns the dense ID of a rank-local handle, assigning
// the next one on first sight.
func handleForCompile(ids map[int]int32, handle int) int32 {
	if id, ok := ids[handle]; ok {
		return id
	}
	id := int32(len(ids))
	ids[handle] = id
	return id
}
