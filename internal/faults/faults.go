// Package faults defines the degradation model for fault-injection
// studies: a declarative Spec of soft faults (bandwidth derating,
// latency jitter, compute stragglers) and hard faults (downed NICs,
// downed inter-node links) that the replay engine applies while
// replaying a compiled program.
//
// Everything in the package is deterministic by construction. Random
// choices — which ranks straggle, which links go down, how much jitter
// a transfer sees — are pure functions of the spec's effective seed and
// stable identifiers (rank index, stream id, send sequence), never of
// execution order or wall clock. Two replays of the same spec on the
// same platform are byte-identical, serial or PDES-sharded alike, which
// is what lets the content-addressed caches serve fault-injected
// results exactly like healthy ones.
//
// The package has no dependencies so that network, sim, core, and
// service can all import it.
package faults

import (
	"fmt"
	"math"
	"sort"
)

// Spec declares one degradation scenario. The zero value is the healthy
// platform: every field is optional and identity-valued fields (a
// derate of 1, a straggler factor of 1, a count of 0) are canonicalized
// away so that a spec that does nothing digests identically to no spec
// at all.
type Spec struct {
	// DerateInter and DerateIntra multiply the effective bandwidth of
	// the inter-node and intra-node link classes: a factor in (0, 1],
	// where 0.5 halves the bandwidth (doubles serialization time) and 1
	// or 0 leaves the class healthy.
	DerateInter float64 `json:"derate_inter,omitempty"`
	DerateIntra float64 `json:"derate_intra,omitempty"`

	// JitterFrac J >= 0 adds deterministic latency jitter to inter-node
	// transfers: each transfer's link latency is multiplied by 1 + J*u,
	// where u in [0, 1) is drawn by Unit from the effective seed and the
	// transfer's (stream, sequence) identity. 0 disables jitter.
	JitterFrac float64 `json:"jitter_frac,omitempty"`

	// StragglerFactor >= 1 multiplies the compute-burst durations of the
	// straggler ranks. Stragglers picks that many ranks by seeded draw;
	// StragglerRanks pins explicit ranks (both may be used together).
	// A factor of 1 or 0, or an empty straggler set, means no stragglers.
	StragglerFactor float64 `json:"straggler_factor,omitempty"`
	Stragglers      int     `json:"stragglers,omitempty"`
	StragglerRanks  []int   `json:"straggler_ranks,omitempty"`

	// DownNodes lists nodes whose NIC is down: every inter-node transfer
	// into or out of such a node is lost (it never injects and never
	// arrives). DownLinks lists unordered node pairs whose direct
	// inter-node link is down; LinkDown instead picks that many distinct
	// node pairs by seeded draw. Intra-node traffic is never affected.
	DownNodes []int    `json:"down_nodes,omitempty"`
	DownLinks [][2]int `json:"down_links,omitempty"`
	LinkDown  int      `json:"link_down,omitempty"`

	// Seed perturbs every seeded draw (straggler selection, link
	// selection, jitter). Identical specs — including Seed — always make
	// identical draws; varying only Seed resamples the same marginal
	// fault distribution.
	Seed uint64 `json:"seed,omitempty"`
}

// IsZero reports whether the spec, as written, is the zero value.
// Callers deciding whether any degradation is active should test
// Canonical().IsZero() instead, which also treats identity values
// (derate 1, factor 1 with no ranks) as healthy.
func (s Spec) IsZero() bool {
	return s.DerateInter == 0 && s.DerateIntra == 0 && s.JitterFrac == 0 &&
		s.StragglerFactor == 0 && s.Stragglers == 0 && len(s.StragglerRanks) == 0 &&
		len(s.DownNodes) == 0 && len(s.DownLinks) == 0 && s.LinkDown == 0 &&
		s.Seed == 0
}

// Canonical returns the normal form of the spec: identity values
// collapse to zero, rank and node lists are sorted and deduplicated,
// link pairs are ordered low-high, and a spec with no effect collapses
// to the zero Spec (dropping a then-meaningless Seed). Canonicalization
// is what makes "derate 1.0" digest — and therefore cache — identically
// to a healthy platform.
func (s Spec) Canonical() Spec {
	c := s
	if c.DerateInter == 1 {
		c.DerateInter = 0
	}
	if c.DerateIntra == 1 {
		c.DerateIntra = 0
	}
	if c.StragglerFactor == 1 || (c.Stragglers == 0 && len(c.StragglerRanks) == 0) {
		c.StragglerFactor, c.Stragglers, c.StragglerRanks = 0, 0, nil
	}
	if c.StragglerFactor == 0 {
		c.Stragglers, c.StragglerRanks = 0, nil
	}
	c.StragglerRanks = sortedDedup(c.StragglerRanks)
	c.DownNodes = sortedDedup(c.DownNodes)
	c.DownLinks = canonicalPairs(c.DownLinks)
	if c.DerateInter == 0 && c.DerateIntra == 0 && c.JitterFrac == 0 &&
		c.StragglerFactor == 0 && len(c.DownNodes) == 0 &&
		len(c.DownLinks) == 0 && c.LinkDown == 0 {
		return Spec{}
	}
	return c
}

// Describe renders the canonical spec as a compact one-line summary for
// human-facing platform descriptions; empty for the (effectively) zero
// spec.
func (s Spec) Describe() string {
	d := s.Canonical()
	if d.IsZero() {
		return ""
	}
	var parts []string
	if d.DerateInter > 0 {
		parts = append(parts, fmt.Sprintf("inter bw ×%g", d.DerateInter))
	}
	if d.DerateIntra > 0 {
		parts = append(parts, fmt.Sprintf("intra bw ×%g", d.DerateIntra))
	}
	if d.JitterFrac > 0 {
		parts = append(parts, fmt.Sprintf("jitter ≤+%g%%", d.JitterFrac*100))
	}
	if d.StragglerFactor > 0 {
		n := d.Stragglers + len(d.StragglerRanks)
		parts = append(parts, fmt.Sprintf("%d straggler(s) ×%g", n, d.StragglerFactor))
	}
	if len(d.DownNodes) > 0 {
		parts = append(parts, fmt.Sprintf("%d NIC(s) down", len(d.DownNodes)))
	}
	if n := len(d.DownLinks) + d.LinkDown; n > 0 {
		parts = append(parts, fmt.Sprintf("%d link(s) down", n))
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out += ", " + p
	}
	return out
}

func sortedDedup(xs []int) []int {
	if len(xs) == 0 {
		return nil
	}
	out := append([]int(nil), xs...)
	sort.Ints(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

func canonicalPairs(ps [][2]int) [][2]int {
	if len(ps) == 0 {
		return nil
	}
	out := make([][2]int, 0, len(ps))
	for _, p := range ps {
		if p[0] > p[1] {
			p[0], p[1] = p[1], p[0]
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// Validate checks the spec's shape: field ranges and pair structure,
// independent of any platform. ValidateFor adds the platform-dependent
// bounds.
func (s *Spec) Validate() error {
	if s.DerateInter < 0 || s.DerateInter > 1 {
		return fmt.Errorf("faults: derate_inter %g must be 0 (healthy) or in (0, 1]", s.DerateInter)
	}
	if s.DerateIntra < 0 || s.DerateIntra > 1 {
		return fmt.Errorf("faults: derate_intra %g must be 0 (healthy) or in (0, 1]", s.DerateIntra)
	}
	if s.JitterFrac < 0 {
		return fmt.Errorf("faults: jitter_frac %g negative", s.JitterFrac)
	}
	if s.StragglerFactor != 0 && s.StragglerFactor < 1 {
		return fmt.Errorf("faults: straggler_factor %g below 1 (stragglers slow down, they never speed up)", s.StragglerFactor)
	}
	if s.Stragglers < 0 {
		return fmt.Errorf("faults: stragglers %d negative", s.Stragglers)
	}
	for _, r := range s.StragglerRanks {
		if r < 0 {
			return fmt.Errorf("faults: straggler rank %d negative", r)
		}
	}
	for _, n := range s.DownNodes {
		if n < 0 {
			return fmt.Errorf("faults: down node %d negative", n)
		}
	}
	for _, p := range s.DownLinks {
		if p[0] < 0 || p[1] < 0 {
			return fmt.Errorf("faults: down link [%d %d] has a negative node", p[0], p[1])
		}
		if p[0] == p[1] {
			return fmt.Errorf("faults: down link [%d %d] joins a node to itself", p[0], p[1])
		}
	}
	if s.LinkDown < 0 {
		return fmt.Errorf("faults: link_down %d negative", s.LinkDown)
	}
	return nil
}

// ValidateFor validates the spec against a platform of the given size:
// straggler ranks must exist, down nodes and link endpoints must exist,
// and the seeded selections must be satisfiable.
func (s *Spec) ValidateFor(processors, nodes int) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if s.Stragglers > processors {
		return fmt.Errorf("faults: %d stragglers requested on %d processors", s.Stragglers, processors)
	}
	for _, r := range s.StragglerRanks {
		if r >= processors {
			return fmt.Errorf("faults: straggler rank %d outside platform with %d processors", r, processors)
		}
	}
	for _, n := range s.DownNodes {
		if n >= nodes {
			return fmt.Errorf("faults: down node %d outside platform with %d nodes", n, nodes)
		}
	}
	for _, p := range s.DownLinks {
		if p[0] >= nodes || p[1] >= nodes {
			return fmt.Errorf("faults: down link [%d %d] outside platform with %d nodes", p[0], p[1], nodes)
		}
	}
	if s.LinkDown > 0 {
		pairs := nodes * (nodes - 1) / 2
		if s.LinkDown > pairs {
			return fmt.Errorf("faults: link_down %d exceeds the %d node pairs of a %d-node platform", s.LinkDown, pairs, nodes)
		}
	}
	return nil
}

// EffectiveSeed folds the canonical spec into the 64-bit seed every
// seeded draw uses: FNV-1a over the fields in declaration order. Two
// canonically equal specs always produce the same seed; any field
// change reseeds every draw.
func (s Spec) EffectiveSeed() uint64 {
	c := s.Canonical()
	h := fnvOffset
	h = fnvFloat(h, c.DerateInter)
	h = fnvFloat(h, c.DerateIntra)
	h = fnvFloat(h, c.JitterFrac)
	h = fnvFloat(h, c.StragglerFactor)
	h = fnvUint(h, uint64(c.Stragglers))
	for _, r := range c.StragglerRanks {
		h = fnvUint(h, uint64(r))
	}
	for _, n := range c.DownNodes {
		h = fnvUint(h, uint64(n))
	}
	for _, p := range c.DownLinks {
		h = fnvUint(h, uint64(p[0]))
		h = fnvUint(h, uint64(p[1]))
	}
	h = fnvUint(h, uint64(c.LinkDown))
	h = fnvUint(h, s.Seed)
	return h
}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvUint(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

func fnvFloat(h uint64, v float64) uint64 {
	// Floats fold through their exact bit patterns; canonicalization has
	// already collapsed the identity values, and the replay engine never
	// produces negative zeros here.
	return fnvUint(h, math.Float64bits(v))
}

// Unit draws the deterministic uniform variate in [0, 1) for the pair
// of stable identifiers (a, b) under seed — a splitmix64-style finalizer
// over the three words. It allocates nothing and depends only on its
// arguments, so replays may draw in any order (serial or sharded) and
// see identical values.
func Unit(seed, a, b uint64) float64 {
	return float64(mix(seed, a, b)>>11) / (1 << 53)
}

func mix(seed, a, b uint64) uint64 {
	x := seed ^ a*0x9E3779B97F4A7C15 ^ b*0xC2B2AE3D27D4EB4F
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Draw streams: the tag keeps each seeded selection independent of the
// others and of the per-transfer jitter draws.
const (
	tagStraggler uint64 = 0x5354524147474c52 // "STRAGGLR"
	tagLink      uint64 = 0x4c494e4b444f574e // "LINKDOWN"
)

// PickRanks appends k distinct values from [0, n) to out (which may
// carry reused capacity but must be length 0) in selection order, by
// deterministic rejection sampling from seed. k > n is clipped to n.
func PickRanks(seed uint64, k, n int, out []int32) []int32 {
	if k > n {
		k = n
	}
	for ctr := uint64(0); len(out) < k; ctr++ {
		c := int32(mix(seed, tagStraggler, ctr) % uint64(n))
		dup := false
		for _, v := range out {
			if v == c {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}

// PickPairs appends k distinct unordered node pairs {i, j}, i < j < n,
// to out, packed as uint64(i)<<32 | uint64(j). Pairs already present in
// out (e.g. explicit DownLinks) are never re-drawn, so explicit and
// seeded faults compose without double counting. k is clipped to the
// number of remaining pairs.
func PickPairs(seed uint64, k, n int, out []uint64) []uint64 {
	total := n * (n - 1) / 2
	if avail := total - len(out); k > avail {
		k = avail
	}
	want := len(out) + k
	for ctr := uint64(0); len(out) < want; ctr++ {
		c := mix(seed, tagLink, ctr) % uint64(n*n)
		i, j := int(c)/n, int(c)%n
		if i >= j {
			continue
		}
		key := uint64(i)<<32 | uint64(j)
		dup := false
		for _, v := range out {
			if v == key {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, key)
		}
	}
	return out
}
