package engine

import (
	"context"
	"time"
)

// streamItem is one completed job travelling from a worker to the
// reordering consumer.
type streamItem[T any] struct {
	i   int
	val T
	err error
}

// MapStream runs n jobs across the pool like Map, but delivers each
// result to emit in submission order as soon as the result and all its
// predecessors have completed — the streaming analogue of Map for
// pipelines that want to consume results before the whole batch exists.
//
// The reorder buffer between out-of-order completions and the in-order
// emit is bounded by window (0 selects a default scaled to the pool):
// at most window jobs may be completed-or-running beyond the last
// emitted one, so a slow consumer exerts backpressure on submission
// instead of accumulating the whole result set, and peak memory is
// O(window), not O(n). emit runs on the calling goroutine.
//
// Unlike Map, MapStream is fail-fast: the first failing job (in
// submission order) aborts the stream with a *JobError, and an error
// from emit aborts with that error. Jobs already running are allowed to
// finish (they are expected to honour ctx), unstarted jobs are never
// submitted, and no further emit calls are made after an error —
// including results already buffered when ctx is cancelled. MapStream
// does not return until every submitted job has finished.
//
// Submission follows the same caller-runs discipline as Map (on an
// internal goroutine), so jobs may themselves call Map or MapStream on
// the same engine without deadlocking.
func MapStream[T any](ctx context.Context, e *Engine, n, window int, fn func(ctx context.Context, i int) (T, error), emit func(i int, v T) error) error {
	if e == nil {
		e = Default()
	}
	if n <= 0 {
		return nil
	}
	if window <= 0 {
		window = 2*e.workers + 16
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan streamItem[T], window)
	tokens := make(chan struct{}, window)
	subDone := make(chan int, 1)
	go func() {
		submitted := 0
		defer func() { subDone <- submitted }()
		for i := 0; i < n; i++ {
			// A window token per in-flight job: acquired before
			// submission, released by the consumer after the job's
			// result is emitted. This is the backpressure bound — and it
			// also guarantees the results channel (capacity window)
			// never blocks a worker, so a slow stream consumer cannot
			// wedge pool slots shared with other submitters.
			select {
			case tokens <- struct{}{}:
			case <-cctx.Done():
				return
			}
			submitted++
			submit := time.Now()
			select {
			case e.sem <- struct{}{}:
				go func(i int, submit time.Time) {
					defer func() { <-e.sem }()
					v, err := runJob(e, cctx, i, submit, fn)
					results <- streamItem[T]{i: i, val: v, err: err}
				}(i, submit)
			default:
				// Pool saturated: the submitter works instead of waiting.
				v, err := runJob(e, cctx, i, submit, fn)
				results <- streamItem[T]{i: i, val: v, err: err}
			}
		}
	}()

	buf := make(map[int]streamItem[T])
	next, received := 0, 0
	var abort error
	for next < n && abort == nil {
		var it streamItem[T]
		select {
		case it = <-results:
		case <-cctx.Done():
			abort = context.Cause(ctx)
			if abort == nil {
				abort = ctx.Err()
			}
			continue
		}
		received++
		buf[it.i] = it
		// Emit the contiguous completed prefix. Failures surface in
		// deterministic submission order: a failed job aborts only when
		// the emission cursor reaches it, after its predecessors'
		// results were delivered.
		for abort == nil {
			// Re-check cancellation between emissions so a cancel during
			// emit stops the stream even when later results are already
			// buffered. cctx only closes through ctx here (the abort
			// cancel comes after this loop), so ctx carries the cause.
			if cctx.Err() != nil {
				abort = context.Cause(ctx)
				if abort == nil {
					abort = cctx.Err()
				}
				break
			}
			b, ok := buf[next]
			if !ok {
				break
			}
			if b.err != nil {
				abort = &JobError{Index: next, Err: b.err}
				break
			}
			if err := emit(next, b.val); err != nil {
				abort = err
				break
			}
			delete(buf, next)
			next++
			<-tokens
		}
	}
	if next >= n {
		return nil
	}
	// Abort: stop the submitter, then drain every job it already
	// launched so no goroutine is left sending into results.
	cancel()
	submitted := <-subDone
	for received < submitted {
		<-results
		received++
	}
	return abort
}
