package service

import (
	"encoding/json"
	"testing"
)

// FuzzScenarioRequestDecode: arbitrary JSON on the scenario endpoint —
// axes of every kind, degradation blocks, malformed values — must
// either be rejected cleanly at decode/validation time or produce a
// spec whose cache key is deterministic. No input may panic the
// decoder or the planner's normalization.
// `go test` exercises the seed corpus;
// `go test -fuzz=FuzzScenarioRequestDecode` explores further.
func FuzzScenarioRequestDecode(f *testing.F) {
	seeds := []string{
		`{"app":"cg","ranks":8,"output":"finish"}`,
		`{"app":"cg","ranks":8,"axes":[{"kind":"bandwidth","values":[125,500]},{"kind":"mapping","mappings":["block","rr"]}]}`,
		`{"app":"cg","ranks":8,"axes":[{"kind":"derate","values":[1,0.5]},{"kind":"jitter","values":[0,0.2]}]}`,
		`{"app":"cg","ranks":8,"axes":[{"kind":"stragglers","counts":[0,2]},{"kind":"link-down","counts":[0,1]}]}`,
		`{"app":"cg","ranks":8,"degradations":{"derate_inter":0.5,"jitter_frac":0.2,"stragglers":2,"straggler_factor":3,"seed":11}}`,
		`{"app":"cg","ranks":8,"degradations":{"down_nodes":[0],"down_links":[[0,1]],"link_down":1}}`,
		`{"app":"cg","ranks":8,"degradations":{"derate_inter":-1}}`,
		`{"app":"cg","ranks":8,"axes":[{"kind":"derate","values":[2]}]}`,
		`{"trace":"sha256:0000000000000000000000000000000000000000000000000000000000000000"}`,
		`{"app":"cg","trace":"both"}`,
		`{"app":"nope","ranks":8}`,
		`{"app":"cg","ranks":-4}`,
		`{}`,
		`garbage`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	mgr, err := NewManager(Options{})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req ScenarioRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return // clean rejection at the decode layer
		}
		_, key1, err := req.spec(mgr)
		if err != nil {
			return // clean rejection at validation time
		}
		// An accepted spec must key deterministically: the cache and
		// singleflight table hang off this digest.
		_, key2, err := req.spec(mgr)
		if err != nil {
			t.Fatalf("spec accepted once then rejected: %v", err)
		}
		if key1 != key2 {
			t.Fatalf("cache key unstable: %s vs %s", key1, key2)
		}
	})
}
