package cg

import (
	"math"
	"testing"

	"repro/internal/pattern"
	"repro/internal/tracer"
)

func traceIt(t *testing.T, ranks int, cfg Config) *tracer.Run {
	t.Helper()
	run, err := tracer.Trace("cg", ranks, tracer.DefaultConfig(), Kernel(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestTracesValidateAcrossWorldSizes(t *testing.T) {
	for _, ranks := range []int{1, 2, 3, 4, 8} {
		run := traceIt(t, ranks, DefaultConfig())
		for _, tr := range []interface{ Validate() error }{run.BaseTrace(), run.OverlapReal(), run.OverlapIdeal()} {
			if err := tr.Validate(); err != nil {
				t.Fatalf("ranks=%d: %v", ranks, err)
			}
		}
	}
}

func TestOddWorldLeavesLastRankLocal(t *testing.T) {
	run := traceIt(t, 3, DefaultConfig())
	for _, e := range run.Logs[2].Events {
		switch e.Kind {
		case tracer.EvSend, tracer.EvRecv, tracer.EvISend, tracer.EvIRecvPost:
			t.Fatalf("lone rank communicated: %+v", e)
		}
	}
}

func TestPairExchangeVolume(t *testing.T) {
	cfg := DefaultConfig()
	run := traceIt(t, 4, cfg)
	tr := run.BaseTrace()
	st := tr.Stats()
	// Each of the 4 ranks sends one vector per iteration.
	wantMsgs := 4 * cfg.Iterations
	if st.Messages != wantMsgs {
		t.Fatalf("messages=%d, want %d", st.Messages, wantMsgs)
	}
	wantBytes := int64(wantMsgs) * int64(cfg.VectorLen) * 8
	if st.BytesSent != wantBytes {
		t.Fatalf("bytes=%d, want %d", st.BytesSent, wantBytes)
	}
	// Traffic only flows within pairs.
	for _, pv := range tr.PairVolumes() {
		if pv.Src^1 != pv.Dst {
			t.Fatalf("traffic outside pair: %d->%d", pv.Src, pv.Dst)
		}
	}
}

func TestNearLinearPatterns(t *testing.T) {
	run := traceIt(t, 2, DefaultConfig())
	an := pattern.Analyze(run)
	p := an.AppProduction
	if p.FirstElem > 10 {
		t.Errorf("FirstElem=%.1f%%, want a small prelude (paper: 3.98%%)", p.FirstElem)
	}
	if math.Abs(p.Quarter-25) > 10 || math.Abs(p.Half-50) > 10 {
		t.Errorf("production not near-linear: %.1f/%.1f", p.Quarter, p.Half)
	}
	c := an.AppConsumption
	if math.Abs(c.Quarter-25) > 12 || math.Abs(c.Half-50) > 15 {
		t.Errorf("consumption not near-linear: %.1f/%.1f", c.Quarter, c.Half)
	}
}

func TestDataFlowsBetweenPartners(t *testing.T) {
	// The matvec of iteration 1 must read the partner's iteration-0
	// vector: verify real values moved through the substrate by checking
	// the traced loads exist and the run completed without panics.
	cfg := DefaultConfig()
	cfg.Iterations = 2
	run := traceIt(t, 2, cfg)
	loads := 0
	for _, e := range run.Logs[0].Events {
		if e.Kind == tracer.EvLoad {
			loads++
		}
	}
	if loads != cfg.VectorLen {
		t.Fatalf("rank 0 loaded %d elements, want %d (one matvec consumes the partner vector)", loads, cfg.VectorLen)
	}
}

func TestInstructionBudgetMatchesConfig(t *testing.T) {
	cfg := DefaultConfig()
	run := traceIt(t, 2, cfg)
	matvec := int64(cfg.VectorLen) * cfg.WorkPerElem
	perIter := matvec + // matvec compute
		int64(cfg.PreludePct)*matvec/100 +
		int64(cfg.TailPct)*matvec/100 +
		int64(cfg.VectorLen) // stores cost 1 each
	// Iteration 0 has no loads; later iterations add VectorLen loads.
	want := int64(cfg.Iterations)*perIter + int64(cfg.Iterations-1)*int64(cfg.VectorLen)
	if got := run.Logs[0].FinalClock; got != want {
		t.Fatalf("rank 0 clock=%d, want %d", got, want)
	}
}
