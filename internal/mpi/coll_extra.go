package mpi

import "fmt"

// Additional point-to-point-lowered operations used by application kernels
// and available to user code: combined send/receive, scatter, and prefix
// reductions.

// Sendrecv performs a combined exchange: data goes to dst while buf fills
// from src, deadlock-free irrespective of the neighbour's call order thanks
// to the buffered transport.
func Sendrecv(p PointToPoint, dst, sendTag int, data []float64, src, recvTag int, buf []float64) {
	p.Send(dst, sendTag, data)
	p.Recv(buf, src, recvTag)
}

// Scatter distributes consecutive blocks of in (root only) across the
// ranks: rank r receives block r into out. in must have Size*len(out)
// elements on root and may be nil elsewhere.
func Scatter(p PointToPoint, in, out []float64, root, seq int) {
	n := p.Size()
	m := len(out)
	if p.Rank() == root {
		if len(in) != n*m {
			panic(fmt.Sprintf("mpi: Scatter in has %d elements, want %d", len(in), n*m))
		}
		copy(out, in[root*m:(root+1)*m])
		for r := 0; r < n; r++ {
			if r == root {
				continue
			}
			p.Send(r, CollTag(seq, 0), in[r*m:(r+1)*m])
		}
		return
	}
	p.Recv(out, root, CollTag(seq, 0))
}

// Scan computes the inclusive prefix reduction: rank r receives
// op(buf_0, ..., buf_r) element-wise in out. Linear chain: rank r waits for
// rank r-1's prefix, folds its own contribution, forwards to r+1.
func Scan(p PointToPoint, buf, out []float64, op Op, seq int) {
	if len(out) != len(buf) {
		panic(fmt.Sprintf("mpi: Scan buffer sizes differ: %d vs %d", len(buf), len(out)))
	}
	me, n := p.Rank(), p.Size()
	copy(out, buf)
	if me > 0 {
		prev := make([]float64, len(buf))
		p.Recv(prev, me-1, CollTag(seq, 0))
		for i := range out {
			out[i] = op(prev[i], buf[i])
		}
	}
	if me < n-1 {
		p.Send(me+1, CollTag(seq, 0), out)
	}
}

// Exscan computes the exclusive prefix reduction: rank r receives
// op(buf_0, ..., buf_{r-1}); rank 0's out is left untouched (MPI
// semantics: undefined on rank 0, we preserve the input of out).
func Exscan(p PointToPoint, buf, out []float64, op Op, seq int) {
	if len(out) != len(buf) {
		panic(fmt.Sprintf("mpi: Exscan buffer sizes differ: %d vs %d", len(buf), len(out)))
	}
	me, n := p.Rank(), p.Size()
	// The running inclusive prefix travels the chain; each rank keeps
	// what it *receives* (the exclusive prefix) and forwards the fold.
	inclusive := make([]float64, len(buf))
	copy(inclusive, buf)
	if me > 0 {
		prev := make([]float64, len(buf))
		p.Recv(prev, me-1, CollTag(seq, 0))
		copy(out, prev)
		for i := range inclusive {
			inclusive[i] = op(prev[i], buf[i])
		}
	}
	if me < n-1 {
		p.Send(me+1, CollTag(seq, 0), inclusive)
	}
}

// Sendrecv is the *Proc convenience form of the free function.
func (p *Proc) Sendrecv(dst, sendTag int, data []float64, src, recvTag int, buf []float64) {
	Sendrecv(p, dst, sendTag, data, src, recvTag, buf)
}

// Scatter distributes root's blocks across ranks.
func (p *Proc) Scatter(in, out []float64, root int) { Scatter(p, in, out, root, p.nextSeq()) }

// Scan computes the inclusive prefix reduction.
func (p *Proc) Scan(buf, out []float64, op Op) { Scan(p, buf, out, op, p.nextSeq()) }

// Exscan computes the exclusive prefix reduction.
func (p *Proc) Exscan(buf, out []float64, op Op) { Exscan(p, buf, out, op, p.nextSeq()) }
