package core

import (
	"fmt"
	"strconv"
	"strings"
)

// The one point-table renderer behind every sweep's text output: the
// mapping, node-count, and chunk sweep formatters and the scenario
// result renderer all feed it, so study tables stay visually uniform
// and a new study only declares columns.

// TableColumn is one column of a point table.
type TableColumn struct {
	Name string
	// Width is the minimum printed width of the column.
	Width int
}

// FormatTableRow renders one line of a point table. The first column is
// left-aligned (the point label), every other column is right-aligned
// (measurements) — the shared layout of all study tables.
func FormatTableRow(cols []TableColumn, cells []string) string {
	var b strings.Builder
	for i, c := range cols {
		cell := ""
		if i < len(cells) {
			cell = cells[i]
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		if i == 0 {
			fmt.Fprintf(&b, "%-*s", c.Width, cell)
		} else {
			fmt.Fprintf(&b, "%*s", c.Width, cell)
		}
	}
	b.WriteByte('\n')
	return b.String()
}

// FormatTableHeader renders the column-name line of a point table.
func FormatTableHeader(cols []TableColumn) string {
	headers := make([]string, len(cols))
	for i, c := range cols {
		headers[i] = c.Name
	}
	return FormatTableRow(cols, headers)
}

// FormatPointTable renders one header line plus a line per row — the
// batch form of the FormatTableHeader/FormatTableRow pair streaming
// renderers emit incrementally.
func FormatPointTable(cols []TableColumn, rows [][]string) string {
	var b strings.Builder
	b.WriteString(FormatTableHeader(cols))
	for _, row := range rows {
		b.WriteString(FormatTableRow(cols, row))
	}
	return b.String()
}

// placementColumns are the shared measurement columns of the placement
// sweeps; only the leading point column differs between them.
func placementColumns(point TableColumn) []TableColumn {
	return append([]TableColumn{point},
		TableColumn{Name: "base (s)", Width: 14},
		TableColumn{Name: "overlap (s)", Width: 14},
		TableColumn{Name: "speedup", Width: 10},
		TableColumn{Name: "intra bytes", Width: 14},
		TableColumn{Name: "inter bytes", Width: 14},
	)
}

func placementRow(label string, base, real, speedup float64, intra, inter int64) []string {
	return []string{
		label,
		fmt.Sprintf("%.6f", base),
		fmt.Sprintf("%.6f", real),
		fmt.Sprintf("%.3f", speedup),
		strconv.FormatInt(intra, 10),
		strconv.FormatInt(inter, 10),
	}
}

// FormatMappingPoints renders a placement sweep as a table.
func FormatMappingPoints(pts []MappingPoint) string {
	rows := make([][]string, len(pts))
	for i, p := range pts {
		rows[i] = placementRow(p.Mapping.String(), p.BaseFinishSec, p.RealFinishSec, p.SpeedupReal, p.IntraBytes, p.InterBytes)
	}
	return FormatPointTable(placementColumns(TableColumn{Name: "mapping", Width: 12}), rows)
}

// FormatNodeCountPoints renders a node-count sweep as a table.
func FormatNodeCountPoints(pts []NodeCountPoint) string {
	rows := make([][]string, len(pts))
	for i, p := range pts {
		rows[i] = placementRow(strconv.Itoa(p.Nodes), p.BaseFinishSec, p.RealFinishSec, p.SpeedupReal, p.IntraBytes, p.InterBytes)
	}
	return FormatPointTable(placementColumns(TableColumn{Name: "nodes", Width: 8}), rows)
}

// FormatChunkPoints renders a chunk-count ablation as a table.
func FormatChunkPoints(pts []ChunkPoint) string {
	cols := []TableColumn{
		{Name: "chunks", Width: 8},
		{Name: "speedup real", Width: 14},
		{Name: "speedup ideal", Width: 14},
	}
	rows := make([][]string, len(pts))
	for i, p := range pts {
		rows[i] = []string{
			strconv.Itoa(p.Chunks),
			fmt.Sprintf("%.3f", p.SpeedupReal),
			fmt.Sprintf("%.3f", p.SpeedupIdeal),
		}
	}
	return FormatPointTable(cols, rows)
}
