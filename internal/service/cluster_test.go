// Cluster acceptance tests: three managers joined through the
// in-process transport must serve scenario results byte-identical to a
// standalone manager, run a hot spec exactly once cluster-wide under
// concurrent submission to different nodes (run with -race), serve
// reruns against a different node from the cooperative cache with zero
// new engine jobs, and stay available while a member drains.
package service_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/service"
	"repro/internal/service/client"
)

// newTestCluster builds an n-node cluster: each member is a full stack
// (engine, manager, handler, httptest server, client) whose cluster
// node rides a shared MemNetwork. Tables are converged before return,
// so every node names the same owner for every key.
func newTestCluster(t *testing.T, n int) ([]*service.Manager, []*client.Client) {
	t.Helper()
	net := cluster.NewMemNetwork()
	nodes := make([]*cluster.Node, n)
	mgrs := make([]*service.Manager, n)
	cls := make([]*client.Client, n)
	for i := range nodes {
		addr := fmt.Sprintf("mem://node-%d", i)
		node, err := cluster.NewNode(cluster.Config{
			Name:      fmt.Sprintf("node-%d", i),
			Addr:      addr,
			Transport: net,
		})
		if err != nil {
			t.Fatal(err)
		}
		net.Attach(addr, node.HandleRPC)
		mgr, err := service.NewManager(service.Options{Engine: engine.New(2), Cluster: node})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(service.NewHandler(mgr))
		t.Cleanup(srv.Close)
		nodes[i], mgrs[i], cls[i] = node, mgr, client.New(srv.URL, srv.Client())
	}
	ctx := context.Background()
	for i := 1; i < n; i++ {
		if err := nodes[i].Join(ctx, nodes[0].Self().Addr); err != nil {
			t.Fatal(err)
		}
	}
	// One more self-lookup round so early joiners learn late ones.
	for _, nd := range nodes {
		if err := nd.Join(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for i, nd := range nodes {
		if got := nd.Table().Len(); got != n-1 {
			t.Fatalf("node %d knows %d peers, want %d", i, got, n-1)
		}
	}
	return mgrs, cls
}

// totalStarted sums engine job starts across the cluster — the counter
// the exactly-once and zero-recompute assertions diff.
func totalStarted(mgrs []*service.Manager) uint64 {
	var sum uint64
	for _, m := range mgrs {
		sum += m.Engine().Stats().Started
	}
	return sum
}

// gridSpec is the fan-out workload: a 2x2 grid whose points shard
// across the cluster by point digest.
func gridSpec() service.ScenarioRequest {
	return service.ScenarioRequest{
		App: "cg", Ranks: 8,
		Platform: &service.PlatformSpec{Preset: "marenostrum-4x"},
		Axes: []core.Axis{
			core.BandwidthAxis(125, 500),
			core.MappingAxis("block", "rr"),
		},
		Output: "traffic",
	}
}

// TestClusterScenarioByteIdentical is the headline acceptance path: a
// gridded scenario fanned across a 3-node cluster returns bytes
// identical to a standalone manager's, a rerun against each other node
// is served from the cooperative cache with zero new engine jobs
// cluster-wide, and the computed points land in the DHT as replicated
// blobs.
func TestClusterScenarioByteIdentical(t *testing.T) {
	ctx := context.Background()
	req := gridSpec()

	_, standalone := newService(t, 2)
	want, err := standalone.ScenarioRaw(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	mgrs, cls := newTestCluster(t, 3)
	first, err := cls[0].ScenarioRaw(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, first) {
		t.Fatalf("clustered scenario differs from standalone:\n%s\n%s", want, first)
	}
	after := totalStarted(mgrs)
	// The same spec against the two other nodes: the owner's result
	// cache answers through the forward path, so no engine anywhere
	// starts a job.
	for i := 1; i < 3; i++ {
		got, err := cls[i].ScenarioRaw(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("rerun via node %d not byte-identical", i)
		}
	}
	if now := totalStarted(mgrs); now != after {
		t.Fatalf("rerun against other nodes spawned engine jobs: %d -> %d", after, now)
	}
	// Every computed point replicates into the DHT (asynchronously):
	// eventually each of the 4 points is held by all 3 nodes (3 < K).
	deadline := time.Now().Add(10 * time.Second)
	for {
		points := 0
		for _, m := range mgrs {
			points += m.Cluster().Status().KeysByKind[service.BlobPoint]
		}
		if points >= 12 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("point blobs not replicated: %d cluster-wide, want 12", points)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterExactlyOnceConcurrent fires N identical submissions
// concurrently at different nodes and proves the computation ran once
// cluster-wide: the summed engine job counters advance by exactly the
// standalone cost of the spec, and all N responses are byte-identical.
// -race covers the cross-node singleflight's locking.
func TestClusterExactlyOnceConcurrent(t *testing.T) {
	ctx := context.Background()
	req := service.ScenarioRequest{App: "cg", Ranks: 4, Output: "report"}

	// The spec's standalone cost in engine jobs — what exactly-once must
	// hold the cluster to.
	standaloneMgr, standalone := newService(t, 2)
	want, err := standalone.ScenarioRaw(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	cost := standaloneMgr.Engine().Stats().Started

	mgrs, cls := newTestCluster(t, 3)
	before := totalStarted(mgrs)
	const n = 9
	responses := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i], errs[i] = cls[i%3].ScenarioRaw(ctx, req)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submission %d: %v", i, errs[i])
		}
		if !bytes.Equal(want, responses[i]) {
			t.Fatalf("submission %d not byte-identical to standalone", i)
		}
	}
	if delta := totalStarted(mgrs) - before; delta != cost {
		t.Fatalf("%d concurrent submissions cost %d engine jobs cluster-wide, want exactly %d", n, delta, cost)
	}
}

// TestClusterDrainStaysAvailable: a draining member refuses new work
// with 503 while the rest of the cluster keeps serving correct bytes —
// forwards to the draining owner fall back to computing locally. The
// enriched /healthz reports cluster identity and the drain state.
func TestClusterDrainStaysAvailable(t *testing.T) {
	ctx := context.Background()
	req := service.ScenarioRequest{App: "bt", Ranks: 4, Output: "report"}

	_, standalone := newService(t, 2)
	want, err := standalone.ScenarioRaw(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	mgrs, cls := newTestCluster(t, 3)
	h, err := cls[0].Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Draining || h.Node != "node-0" || h.NodeID == "" || h.ClusterPeers != 2 {
		t.Fatalf("healthz before drain: %+v", h)
	}

	drainCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if _, err := mgrs[0].Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
	if h, err = cls[0].Health(ctx); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" || !h.Draining {
		t.Fatalf("healthz while draining: %+v", h)
	}
	if _, err := cls[0].Scenario(ctx, req); err == nil {
		t.Fatal("draining node accepted a new scenario")
	}
	// The rest of the cluster still serves the spec — locally if its
	// owner is the draining node.
	got, err := cls[1].ScenarioRaw(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("scenario served during a peer's drain not byte-identical")
	}
}
