// Command patterns reproduces the Figure 5 scatter plots and the Table II
// statistics for one application of the pool: it traces the application and
// renders the production/consumption access patterns of its communicated
// buffers, then quantifies what those patterns buy as overlap speedup on
// the active platform.
//
// The platform flags (-preset, -platform, -nodes, -map, ...) are the
// uniform set shared by every CLI (internal/platformflag); -workers sizes
// the engine pool the three flavour replays fan out on.
//
// Examples:
//
//	patterns -app sweep3d -side prod -buffer outflow-east
//	patterns -app bt -side cons -rank 1 -csv /tmp/bt.csv
//	patterns -app cg               (Table II row + overlap summary)
//	patterns -app cg -preset fatnode-smp -map rr
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/pattern"
	"repro/internal/platformflag"
	"repro/internal/tracer"
)

func main() {
	app := flag.String("app", "cg", "application: sweep3d|pop|alya|specfem3d|bt|cg")
	ranks := flag.Int("ranks", 16, "number of ranks")
	side := flag.String("side", "", "prod|cons: also render the scatter of -buffer on -rank")
	buffer := flag.String("buffer", "", "buffer name for the scatter (default: first communicated buffer)")
	rank := flag.Int("rank", 0, "rank whose scatter to render")
	width := flag.Int("width", 100, "scatter width in characters")
	height := flag.Int("height", 18, "scatter height in characters")
	csv := flag.String("csv", "", "write the scatter as CSV to this file")
	workers := flag.Int("workers", 0, "experiment-engine worker pool size (0 = GOMAXPROCS)")
	pf := platformflag.Register(flag.CommandLine)
	flag.Parse()

	entry, ok := apps.ByName(*app, *ranks)
	if !ok {
		fmt.Fprintf(os.Stderr, "patterns: unknown app %q (known: %v)\n", *app, apps.Names)
		os.Exit(2)
	}
	plat, err := pf.Resolve(*app, *ranks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "patterns: %v\n", err)
		os.Exit(1)
	}
	if pf.DumpRequested() {
		if err := pf.Dump(os.Stdout, plat); err != nil {
			fmt.Fprintf(os.Stderr, "patterns: %v\n", err)
			os.Exit(1)
		}
		return
	}
	eng := engine.New(*workers)
	run, err := eng.Traces().Trace(*app, *ranks, tracer.DefaultConfig(), entry.App.Kernel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "patterns: %v\n", err)
		os.Exit(1)
	}
	an := pattern.Analyze(run)
	fmt.Print(pattern.FormatTableII([]*pattern.Analysis{an}))

	// What the measured patterns are worth on the active platform: the
	// three flavour replays run concurrently on the engine pool.
	rep, err := core.AnalyzeRunOn(context.Background(), eng, run, plat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "patterns: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\noverlap on %s:\n", plat.Describe())
	fmt.Printf("  speedup %.3fx with measured patterns, %.3fx with ideal patterns\n",
		rep.SpeedupReal, rep.SpeedupIdeal)

	fmt.Println("\nper-buffer statistics:")
	names := make([]string, 0, len(an.Production))
	for n := range an.Production {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := an.Production[n]
		fmt.Printf("  produce %-16s first=%7.2f%% quarter=%7.2f%% half=%7.2f%% whole=%7.2f%% (%d intervals)\n",
			n, p.FirstElem, p.Quarter, p.Half, p.Whole, p.Intervals)
	}
	names = names[:0]
	for n := range an.Consumption {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		c := an.Consumption[n]
		fmt.Printf("  consume %-16s nothing=%6.2f%% quarter=%7.2f%% half=%7.2f%% (%d intervals)\n",
			n, c.Nothing, c.Quarter, c.Half, c.Intervals)
	}

	// Eq. 1 of the paper: the analytic overlap bound under the measured
	// patterns versus the ideal ones.
	measured := pattern.OverlapPotential(an.AppProduction, an.AppConsumption, 4)
	ideal := pattern.IdealPotential(4)
	if len(measured.PerChunkPct) > 0 {
		fmt.Printf("\nEq. 1 overlap bound (4 chunks): measured avg %.1f%% of a phase pair, ideal %.1f%%\n",
			measured.AvgPct, ideal.AvgPct)
		fmt.Printf("  per chunk (measured): ")
		for _, v := range measured.PerChunkPct {
			fmt.Printf("%6.1f%%", v)
		}
		fmt.Println()
	} else {
		fmt.Println("\nEq. 1 overlap bound: message cannot be chunked (single-element transfers)")
	}

	if *side == "" {
		return
	}
	var sd pattern.Side
	switch *side {
	case "prod":
		sd = pattern.Production
	case "cons":
		sd = pattern.Consumption
	default:
		fmt.Fprintf(os.Stderr, "patterns: -side must be prod or cons\n")
		os.Exit(2)
	}
	buf := *buffer
	if buf == "" {
		// Pick the first buffer with data on the requested side.
		if sd == pattern.Production {
			for _, n := range sortedKeysP(an.Production) {
				buf = n
				break
			}
		} else {
			for _, n := range sortedKeysC(an.Consumption) {
				buf = n
				break
			}
		}
	}
	sc := pattern.ScatterFor(run, buf, *rank, sd)
	if sc == nil || len(sc.Points) == 0 {
		fmt.Fprintf(os.Stderr, "patterns: no %s data for buffer %q on rank %d\n", *side, buf, *rank)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Print(sc.ASCII(*width, *height))
	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			fmt.Fprintf(os.Stderr, "patterns: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := sc.WriteCSV(f); err != nil {
			fmt.Fprintf(os.Stderr, "patterns: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d points)\n", *csv, len(sc.Points))
	}
}

func sortedKeysP(m map[string]*pattern.ProductionStats) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysC(m map[string]*pattern.ConsumptionStats) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
