// Service benchmarks: the HTTP serving path end to end — client →
// httptest server → handler → job manager → engine — measuring what the
// caching layer buys. Record the results into BENCH_service.json.
//
//	go test -run '^$' -bench BenchmarkService -benchtime=5x .
package repro

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/engine"
	"repro/internal/service"
	"repro/internal/service/client"
)

// benchStack builds a full serving stack for benchmarks.
func benchStack(b *testing.B) (*service.Manager, *client.Client, func()) {
	b.Helper()
	mgr, err := service.NewManager(service.Options{Engine: engine.New(0)})
	if err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(service.NewHandler(mgr))
	return mgr, client.New(srv.URL, srv.Client()), srv.Close
}

// BenchmarkServiceAnalyze compares the cold serving path (trace +
// simulate + marshal) against the cached one (LRU hit, byte-identical
// response). The ratio is the headline number of the service layer.
func BenchmarkServiceAnalyze(b *testing.B) {
	req := service.AnalyzeRequest{App: "cg", Ranks: benchRanks}
	ctx := context.Background()

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			_, cl, done := benchStack(b)
			b.StartTimer()
			if _, err := cl.AnalyzeRaw(ctx, req); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			done()
			b.StartTimer()
		}
	})

	b.Run("cached", func(b *testing.B) {
		_, cl, done := benchStack(b)
		defer done()
		if _, err := cl.AnalyzeRaw(ctx, req); err != nil {
			b.Fatal(err) // prime the cache
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cl.AnalyzeRaw(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServiceLoad is the load generator: parallel clients hammer one
// daemon with a mix of requests that is mostly cache-friendly (the
// serving regime the cache is for), reporting aggregate request
// throughput.
func BenchmarkServiceLoad(b *testing.B) {
	mgr, cl, done := benchStack(b)
	defer done()
	ctx := context.Background()
	// Prime the working set: three distinct analyses.
	reqs := []service.AnalyzeRequest{
		{App: "cg", Ranks: benchRanks},
		{App: "bt", Ranks: benchRanks},
		{App: "sweep3d", Ranks: benchRanks},
	}
	for _, r := range reqs {
		if _, err := cl.AnalyzeRaw(ctx, r); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := cl.AnalyzeRaw(ctx, reqs[i%len(reqs)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	b.StopTimer()
	met := mgr.MetricsSnapshot()
	b.ReportMetric(float64(met.CacheHits), "cache_hits")
	b.ReportMetric(float64(met.CacheMisses), "cache_misses")
}
