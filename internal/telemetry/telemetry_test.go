package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.AddInt(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "a counter"); again != c {
		t.Fatal("re-registering a counter must return the same instance")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := New()
	h := r.Histogram("h_seconds", "test", 1)
	for _, v := range []int64{0, 1, 1, 2, 3, 4, 1000, -5} {
		h.Observe(v)
	}
	var d HistogramData
	h.Load(&d)
	if d.Count != 8 {
		t.Fatalf("count = %d, want 8", d.Count)
	}
	if d.Sum != 0+1+1+2+3+4+1000+0 {
		t.Fatalf("sum = %d", d.Sum)
	}
	// v=0 and the clamped -5 land in bucket 0; v=1 twice in bucket 1;
	// 2,3 in bucket 2; 4 in bucket 3; 1000 in bucket 10.
	want := map[int]uint64{0: 2, 1: 2, 2: 2, 3: 1, 10: 1}
	for i, c := range d.Buckets {
		if c != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d", i, c, want[i])
		}
	}
}

// TestHistogramConcurrentExact is the satellite requirement: parallel
// recording under -race must merge to exact counts and sums.
func TestHistogramConcurrentExact(t *testing.T) {
	r := New()
	h := r.Histogram("h_seconds", "test", 1)
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(int64(w + 1))
			}
		}(w)
	}
	wg.Wait()
	var d HistogramData
	h.Load(&d)
	if want := uint64(workers * perWorker); d.Count != want {
		t.Fatalf("count = %d, want %d", d.Count, want)
	}
	wantSum := uint64(0)
	for w := 1; w <= workers; w++ {
		wantSum += uint64(w) * perWorker
	}
	if d.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", d.Sum, wantSum)
	}
	// Per-bucket exactness: worker value w+1 lands in bucket bits.Len64.
	var total uint64
	for _, c := range d.Buckets {
		total += c
	}
	if total != d.Count {
		t.Fatalf("bucket total = %d, want %d", total, d.Count)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(3)
	a.Observe(100)
	b.Observe(3)
	var da, db HistogramData
	a.Load(&da)
	b.Load(&db)
	da.Merge(&db)
	if da.Count != 3 || da.Sum != 106 {
		t.Fatalf("merged count=%d sum=%d", da.Count, da.Sum)
	}
}

func TestVecChildrenAndConcurrency(t *testing.T) {
	r := New()
	v := r.CounterVec("req_total", "requests", "endpoint", "code")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes := []string{"200", "500"}
			for j := 0; j < 1000; j++ {
				v.With("/a", codes[i%2]).Inc()
			}
		}(i)
	}
	wg.Wait()
	if got := v.With("/a", "200").Value() + v.With("/a", "500").Value(); got != 8000 {
		t.Fatalf("vec total = %d, want 8000", got)
	}
	hv := r.HistogramVec("stage_seconds", "stages", 1e-9, "stage")
	if hv.With("compile") != hv.With("compile") {
		t.Fatal("With must return a stable child")
	}
}

// TestRecordingAllocs pins the hot path: recording into counters,
// histograms, and warm vec children must not allocate.
func TestRecordingAllocs(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", 1e-9)
	v := r.CounterVec("v_total", "", "shard")
	v.With("0").Inc() // materialize the child outside the measured loop
	hv := r.HistogramVec("hv_seconds", "", 1e-9, "stage")
	hv.With("replay").Observe(1)
	if n := testing.AllocsPerRun(100, func() {
		c.Add(2)
		g.Set(42)
		h.Observe(12345)
		v.With("0").Inc()
		hv.With("replay").Observe(6789)
	}); n != 0 {
		t.Fatalf("recording allocated %v allocs/op, want 0", n)
	}
}

func TestSnapshotDeterminism(t *testing.T) {
	r := New()
	v := r.CounterVec("b_total", "", "k")
	v.With("z").Add(1)
	v.With("a").Add(2)
	r.Counter("a_total", "first").Add(3)
	r.GaugeFunc("c_gauge", "", func() float64 { return 1.5 })
	h := r.Histogram("d_seconds", "", 1e-9)
	h.Observe(1500)

	s1, s2 := r.Snapshot(), r.Snapshot()
	j1, _ := json.Marshal(s1)
	j2, _ := json.Marshal(s2)
	if string(j1) != string(j2) {
		t.Fatalf("snapshots differ:\n%s\n%s", j1, j2)
	}
	if s1.Metrics[0].Name != "a_total" || s1.Metrics[1].Name != "b_total" {
		t.Fatalf("metrics not sorted: %s, %s", s1.Metrics[0].Name, s1.Metrics[1].Name)
	}
	bs := s1.Find("b_total")
	if bs == nil || len(bs.Samples) != 2 || bs.Samples[0].Labels["k"] != "a" {
		t.Fatalf("vec samples not sorted by label value: %+v", bs)
	}
	ds := s1.Find("d_seconds")
	hs := ds.Samples[0].Histogram
	if hs == nil || hs.Count != 1 || hs.Sum != float64(1500)*1e-9 {
		t.Fatalf("histogram sample = %+v", hs)
	}
	// 1500ns lands in bucket 11 (1024..2047); cumulative count 1 at its bound.
	last := hs.Buckets[len(hs.Buckets)-1]
	if last.Count != 1 || last.LE != float64(2047)*1e-9 {
		t.Fatalf("last bucket = %+v", last)
	}
}

func TestQuantileAndMean(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(10) // bucket 4, bound 15
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000) // bucket 10, bound 1023
	}
	var d HistogramData
	h.Load(&d)
	hs := histSample(&d, 1)
	if got := hs.Quantile(0.5); got != 15 {
		t.Fatalf("p50 = %g, want 15", got)
	}
	if got := hs.Quantile(0.95); got != 1023 {
		t.Fatalf("p95 = %g, want 1023", got)
	}
	if got := hs.Mean(); math.Abs(got-109) > 1e-9 {
		t.Fatalf("mean = %g, want 109", got)
	}
}

func TestCounterFuncAndScale(t *testing.T) {
	r := New()
	n := 40.0
	r.CounterFunc("fn_total", "", func() float64 { return n })
	r.CounterScale("nanos_seconds_total", "", 1e-9).Add(2_500_000_000)
	s := r.Snapshot()
	if got := s.Find("fn_total").Samples[0].Value; got != 40 {
		t.Fatalf("counterfunc = %g", got)
	}
	if got := s.Find("nanos_seconds_total").Samples[0].Value; got != 2.5 {
		t.Fatalf("scaled counter = %g, want 2.5", got)
	}
}

func TestTimingsOutput(t *testing.T) {
	r := New()
	r.Histogram("stage_seconds", "", 1e-9).Observe(2_000_000)
	r.Counter("events_total", "").Add(12)
	var b strings.Builder
	if err := WriteTimings(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "stage_seconds") || !strings.Contains(out, "events_total") {
		t.Fatalf("timings missing metrics:\n%s", out)
	}
	if !strings.Contains(out, "count=1") {
		t.Fatalf("timings missing histogram count:\n%s", out)
	}
}
