package network

import (
	"bytes"
	"testing"

	"repro/internal/faults"
)

// FuzzReadAnyPlatform: any byte blob handed to the platform reader —
// both the flat-config and hierarchical forms, with or without a
// degradations block — must either fail cleanly or parse into a
// platform whose digest is stable across a write/read round trip.
// `go test` exercises the seed corpus; `go test -fuzz=FuzzReadAnyPlatform`
// explores further.
func FuzzReadAnyPlatform(f *testing.F) {
	var flat bytes.Buffer
	if err := Testbed(8).WriteJSON(&flat); err != nil {
		f.Fatal(err)
	}
	f.Add(flat.Bytes())
	var hier bytes.Buffer
	if err := Testbed(8).Platform().WithNodes(2).WriteJSON(&hier); err != nil {
		f.Fatal(err)
	}
	f.Add(hier.Bytes())
	var degraded bytes.Buffer
	plat := Testbed(8).Platform().WithNodes(2).WithDegradations(faults.Spec{
		DerateInter: 0.5, JitterFrac: 0.2, Stragglers: 1, StragglerFactor: 2, Seed: 7,
	})
	if err := plat.WriteJSON(&degraded); err != nil {
		f.Fatal(err)
	}
	f.Add(degraded.Bytes())
	f.Add([]byte(`{"nodes": 2}`))
	f.Add([]byte(`{"degradations": {"derate_inter": 2}}`))
	f.Add([]byte(`{"mapping": [0,1,1,0]}`))
	f.Add([]byte("garbage"))
	f.Add([]byte("{}"))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadAnyPlatform(bytes.NewReader(data))
		if err != nil {
			return // clean rejection
		}
		// Whatever parsed must digest deterministically and survive a
		// round trip with its digest — including the canonicalized
		// degradations block — intact.
		d1, err := p.Digest()
		if err != nil {
			t.Fatalf("parsed platform does not digest: %v", err)
		}
		var buf bytes.Buffer
		if err := p.WriteJSON(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		p2, err := ReadAnyPlatform(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v\n%s", err, buf.Bytes())
		}
		d2, err := p2.Digest()
		if err != nil {
			t.Fatalf("round-tripped platform does not digest: %v", err)
		}
		if d1 != d2 {
			t.Fatalf("digest changed across round trip: %s vs %s", d1, d2)
		}
	})
}
