package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/network"
	"repro/internal/trace"
)

// allocRing builds the bench-shaped ring-exchange trace (also used by the
// !race-gated allocation pins).
func allocRing(n, iters int) *trace.Trace {
	tr := trace.New("ring", "base", n)
	for it := 0; it < iters; it++ {
		for r := 0; r < n; r++ {
			next := (r + 1) % n
			prev := (r + n - 1) % n
			tr.Append(r, trace.Record{Kind: trace.KindCompute, Instr: 100_000})
			tr.Append(r, trace.Record{Kind: trace.KindISend, Peer: next, Tag: it, Bytes: 10_000})
			tr.Append(r, trace.Record{Kind: trace.KindRecv, Peer: prev, Tag: it, Bytes: 10_000})
		}
	}
	return tr
}

// allocHandleReuse builds a ring where every receive is an IRecv whose
// single rank-local handle is legally reposted after each Wait, with a
// WaitAll per iteration — the worst case for the active-handle lists
// (one activation per IRecv, far more than distinct handles).
func allocHandleReuse(n, iters int) *trace.Trace {
	tr := trace.New("ring-irecv", "base", n)
	for it := 0; it < iters; it++ {
		for r := 0; r < n; r++ {
			next := (r + 1) % n
			prev := (r + n - 1) % n
			tr.Append(r, trace.Record{Kind: trace.KindIRecv, Peer: prev, Tag: it, Bytes: 10_000, Handle: 1})
			tr.Append(r, trace.Record{Kind: trace.KindCompute, Instr: 100_000})
			tr.Append(r, trace.Record{Kind: trace.KindISend, Peer: next, Tag: it, Bytes: 10_000})
			if it%2 == 0 {
				tr.Append(r, trace.Record{Kind: trace.KindWait, Handle: 1})
			} else {
				tr.Append(r, trace.Record{Kind: trace.KindWaitAll})
			}
		}
	}
	return tr
}

// pdesPlatform is a shardable multi-node platform: nodes over shared
// memory (unlimited intra-node bus pool, the PDES requirement) connected
// by a port-limited interconnect.
func pdesPlatform(ranks, nodes int) network.Platform {
	pl := network.Testbed(ranks).Platform()
	pl.Nodes = nodes
	pl.Intra = network.Link{LatencySec: 0.2e-6, BandwidthMBps: 12000}
	pl.IntraBuses = 0
	pl.Inter = network.Link{LatencySec: 1.3e-6, BandwidthMBps: 1000}
	pl.InPorts = 2
	pl.OutPorts = 2
	return pl
}

// f64bits compares floats bit-for-bit: NaN==NaN (all engine NaNs come
// from math.NaN()) and -0 != +0 — the strictest byte-identity notion.
func f64bits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// requireIdentical fails unless a and b are byte-identical results.
func requireIdentical(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if !f64bits(a.FinishSec, b.FinishSec) {
		t.Fatalf("%s: FinishSec %v != %v", label, a.FinishSec, b.FinishSec)
	}
	if len(a.Ranks) != len(b.Ranks) {
		t.Fatalf("%s: rank count %d != %d", label, len(a.Ranks), len(b.Ranks))
	}
	for i := range a.Ranks {
		x, y := a.Ranks[i], b.Ranks[i]
		if !f64bits(x.ComputeSec, y.ComputeSec) || !f64bits(x.SendBlockedSec, y.SendBlockedSec) ||
			!f64bits(x.WaitSec, y.WaitSec) || !f64bits(x.FinishSec, y.FinishSec) ||
			x.BytesSent != y.BytesSent || x.MsgsSent != y.MsgsSent {
			t.Fatalf("%s: rank %d stats differ:\n  %+v\n  %+v", label, i, x, y)
		}
	}
	if len(a.Intervals) != len(b.Intervals) {
		t.Fatalf("%s: interval count %d != %d", label, len(a.Intervals), len(b.Intervals))
	}
	for i := range a.Intervals {
		x, y := a.Intervals[i], b.Intervals[i]
		if x.Rank != y.Rank || x.State != y.State || !f64bits(x.Start, y.Start) || !f64bits(x.End, y.End) {
			t.Fatalf("%s: interval %d differs:\n  %+v\n  %+v", label, i, x, y)
		}
	}
	if len(a.Comms) != len(b.Comms) {
		t.Fatalf("%s: comm count %d != %d", label, len(a.Comms), len(b.Comms))
	}
	for i := range a.Comms {
		x, y := a.Comms[i], b.Comms[i]
		if x.Src != y.Src || x.Dst != y.Dst || x.Tag != y.Tag || x.Chunk != y.Chunk ||
			x.Bytes != y.Bytes || x.MsgID != y.MsgID || x.Intra != y.Intra ||
			!f64bits(x.SendT, y.SendT) || !f64bits(x.StartT, y.StartT) ||
			!f64bits(x.ArriveT, y.ArriveT) || !f64bits(x.MatchT, y.MatchT) {
			t.Fatalf("%s: comm %d differs:\n  %+v\n  %+v", label, i, x, y)
		}
	}
}

// checkShardsIdentical replays prog serially and at every shard count,
// requiring byte-identical results throughout. Shard counts above the
// node count exercise the clamp.
func checkShardsIdentical(t *testing.T, label string, plat network.Platform, tr *trace.Trace, shardCounts []int) {
	t.Helper()
	prog, err := Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunProgram(plat, prog)
	if err != nil {
		t.Fatal(err)
	}
	arena := NewArena()
	for _, n := range shardCounts {
		for rep := 0; rep < 2; rep++ { // second rep replays on a warm arena
			got, err := arena.RunProgramShards(plat, prog, n)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", label, n, err)
			}
			requireIdentical(t, label+"/shards="+itoa(n), serial, got)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestShardedRingByteIdentical(t *testing.T) {
	tr := allocRing(32, 12)
	plat := pdesPlatform(32, 4) // 8 ranks/node: ring alternates intra and inter hops
	checkShardsIdentical(t, "ring-block", plat, tr, []int{1, 2, 4, 8})
	// Round-robin scatters neighbours across nodes: almost every transfer
	// is inter-node, the coordinator-heavy worst case.
	checkShardsIdentical(t, "ring-rr", plat.WithMapping(network.RoundRobinMapping()), tr, []int{2, 4})
}

func TestShardedHandleReuseByteIdentical(t *testing.T) {
	// IRecv/Wait/WaitAll traffic: completePair's handle paths cross the
	// shard/coordinator boundary in both directions.
	tr := allocHandleReuse(32, 10)
	checkShardsIdentical(t, "handles", pdesPlatform(32, 4), tr, []int{2, 4})
}

func TestShardedRendezvousByteIdentical(t *testing.T) {
	// Large messages force the rendezvous path: blocking sends park until
	// the peer posts, and the evSendResume continuation crosses shards.
	n := 24
	tr := trace.New("rdv", "base", n)
	for it := 0; it < 6; it++ {
		for r := 0; r < n; r++ {
			next := (r + 1) % n
			prev := (r + n - 1) % n
			tr.Append(r, trace.Record{Kind: trace.KindCompute, Instr: int64(50_000 * (r + 1))})
			if r%2 == 0 {
				tr.Append(r, trace.Record{Kind: trace.KindSend, Peer: next, Tag: it, Bytes: 4 << 20})
				tr.Append(r, trace.Record{Kind: trace.KindRecv, Peer: prev, Tag: it, Bytes: 4 << 20})
			} else {
				tr.Append(r, trace.Record{Kind: trace.KindRecv, Peer: prev, Tag: it, Bytes: 4 << 20})
				tr.Append(r, trace.Record{Kind: trace.KindSend, Peer: next, Tag: it, Bytes: 4 << 20})
			}
		}
	}
	checkShardsIdentical(t, "rendezvous", pdesPlatform(n, 3), tr, []int{2, 3, 8})
}

// TestShardedPropertyRandomTraces is the PDES property test: random
// deadlock-free traces (mixed Recv/IRecv/Wait/WaitAll, random sizes so
// both eager and rendezvous paths fire) replay byte-identically at every
// shard count. Runs under -race in CI, where it doubles as the data-race
// proof for the two-phase schedule.
func TestShardedPropertyRandomTraces(t *testing.T) {
	shardCounts := []int{1, 2, 4, 8}
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ranks := 8 + rng.Intn(25) // 8..32
		nodes := 2 + rng.Intn(4)  // 2..5
		tr := randomBalancedTrace(rng, ranks, 40+rng.Intn(80))
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: generator bug: %v", seed, err)
		}
		plat := pdesPlatform(ranks, nodes)
		if rng.Intn(2) == 1 {
			plat = plat.WithMapping(network.RoundRobinMapping())
		}
		checkShardsIdentical(t, "rand/seed="+itoa(int(seed)), plat, tr, shardCounts)
	}
}

// TestShardedFallbacks pins EffectiveShards' safety gates: anything the
// partition argument does not cover must resolve to the serial path.
func TestShardedFallbacks(t *testing.T) {
	prog, err := Compile(allocRing(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	flat := network.Testbed(8).Platform() // one rank per node, but finite intra pool semantics don't apply; Nodes=8
	if flat.Nodes < 2 {
		t.Fatalf("testbed platform unexpectedly single-node")
	}
	oneNode := pdesPlatform(8, 1)
	if got := EffectiveShards(oneNode, prog, 4); got != 1 {
		t.Fatalf("single node: EffectiveShards=%d, want 1", got)
	}
	busy := pdesPlatform(8, 2)
	busy.IntraBuses = 3 // finite intra pool: order-sensitive, must serialize
	if got := EffectiveShards(busy, prog, 4); got != 1 {
		t.Fatalf("finite intra pool: EffectiveShards=%d, want 1", got)
	}
	if got := EffectiveShards(pdesPlatform(8, 2), prog, 8); got != 2 {
		t.Fatalf("clamp to nodes: EffectiveShards=%d, want 2", got)
	}
	if got := EffectiveShards(pdesPlatform(8, 2), prog, 1); got != 1 {
		t.Fatalf("explicit serial: EffectiveShards=%d, want 1", got)
	}
	// Requesting shards on an unshardable platform must still replay
	// correctly (via the serial fallback).
	res, err := NewArena().RunProgramShards(busy, prog, 4)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunProgram(busy, prog)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "fallback", serial, res)
}

// TestEventOrderAudit pins the static total order that both engines
// execute: time first, then rank continuations before arrivals, then the
// id pair — never heap or map insertion order.
func TestEventOrderAudit(t *testing.T) {
	adv := func(t float64, r int32) event { return event{t: t, kind: evAdvance, a: r} }
	res := func(t float64, r int32) event { return event{t: t, kind: evSendResume, a: r} }
	arr := func(t float64, s, q int32) event { return event{t: t, kind: evArrive, a: s, b: q} }

	ordered := []event{
		adv(1, 9), // earlier time wins regardless of kind or ids
		adv(2, 0), // at equal time: continuations first...
		res(2, 3), // ...ordered by rank id across kinds
		adv(2, 7),
		arr(2, 0, 5), // then arrivals, by (stream, seq)
		arr(2, 1, 0),
		arr(2, 1, 2),
		adv(3, 0),
	}
	for i := range ordered {
		for j := range ordered {
			got := eventBefore(&ordered[i], &ordered[j])
			if want := i < j; got != want {
				t.Fatalf("eventBefore(#%d, #%d) = %v, want %v (%+v vs %+v)", i, j, got, want, ordered[i], ordered[j])
			}
		}
	}
}

// TestEqualTimeCrossShard runs a fully symmetric workload where every
// rank hits its events at identical times — the regime where a scheduler
// that fell back to insertion order would diverge between serial and
// sharded execution. Identical bytes prove ties resolve by the static
// order alone.
func TestEqualTimeCrossShard(t *testing.T) {
	n := 32
	tr := trace.New("sym", "base", n)
	for it := 0; it < 8; it++ {
		for r := 0; r < n; r++ {
			// Identical compute on every rank: all sends of an iteration
			// are simultaneous, as are all arrivals within a link class.
			tr.Append(r, trace.Record{Kind: trace.KindCompute, Instr: 1_000_000})
			tr.Append(r, trace.Record{Kind: trace.KindISend, Peer: (r + n/2) % n, Tag: it, Bytes: 65_536})
			tr.Append(r, trace.Record{Kind: trace.KindRecv, Peer: (r + n/2) % n, Tag: it, Bytes: 65_536})
		}
	}
	checkShardsIdentical(t, "symmetric", pdesPlatform(n, 4), tr, []int{2, 4})
}
