package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// TestStatsCounters checks the lifecycle counters across successes,
// failures, and panics.
func TestStatsCounters(t *testing.T) {
	e := New(2)
	boom := errors.New("boom")
	_, err := Map(context.Background(), e, 6, func(ctx context.Context, i int) (int, error) {
		switch i {
		case 2:
			return 0, boom
		case 4:
			panic("kaboom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected aggregated error")
	}
	st := e.Stats()
	if st.Started != 6 || st.Completed != 6 {
		t.Fatalf("started/completed = %d/%d, want 6/6", st.Started, st.Completed)
	}
	if st.Failed != 2 {
		t.Fatalf("failed = %d, want 2 (one error, one panic)", st.Failed)
	}
}

// TestStatsSkipsCancelledJobs checks that jobs never started (context
// already cancelled at submission) do not count as engine work.
func TestStatsSkipsCancelledJobs(t *testing.T) {
	e := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, e, 4, func(ctx context.Context, i int) (int, error) { return i, nil })
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if st := e.Stats(); st.Started != 0 {
		t.Fatalf("started = %d, want 0 for pre-cancelled submissions", st.Started)
	}
}

// TestObserverSeesEveryJob checks the observer hook fires a start and a
// matching done event per job, from both pool workers and the caller-runs
// inline path.
func TestObserverSeesEveryJob(t *testing.T) {
	e := New(2)
	var mu sync.Mutex
	starts, dones := map[int]int{}, map[int]int{}
	var failedSeen int
	e.SetObserver(func(ev JobEvent) {
		mu.Lock()
		defer mu.Unlock()
		if ev.Done {
			dones[ev.Index]++
			if ev.Err != nil {
				failedSeen++
			}
		} else {
			starts[ev.Index]++
		}
	})
	const n = 20
	_, err := Map(context.Background(), e, n, func(ctx context.Context, i int) (int, error) {
		if i == 7 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error from job 7")
	}
	for i := 0; i < n; i++ {
		if starts[i] != 1 || dones[i] != 1 {
			t.Fatalf("job %d: starts=%d dones=%d, want 1/1", i, starts[i], dones[i])
		}
	}
	if failedSeen != 1 {
		t.Fatalf("failed events = %d, want 1", failedSeen)
	}

	// Removing the observer stops notifications but keeps counters.
	e.SetObserver(nil)
	if _, err := Map(context.Background(), e, 3, func(ctx context.Context, i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(starts) != n {
		t.Fatalf("observer fired after removal: %d indices", len(starts))
	}
	if st := e.Stats(); st.Started != n+3 {
		t.Fatalf("started = %d, want %d", st.Started, n+3)
	}
}
