package engine

import (
	"context"

	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ReplayAll replays every trace on the platform cfg through the pool and
// returns the results in input order. Traces may repeat (replaying one
// shared trace N times is race-free: the simulator never mutates its
// trace) and nil results mark failed replays, whose errors come back
// aggregated per index. Results are freshly allocated and owned by the
// caller; workloads that only need makespans should prefer SweepFinish,
// which reuses pooled replay arenas.
func ReplayAll(ctx context.Context, e *Engine, cfg network.Config, traces []*trace.Trace) ([]*sim.Result, error) {
	return Map(ctx, e, len(traces), func(ctx context.Context, i int) (*sim.Result, error) {
		return sim.Run(cfg, traces[i])
	})
}

// ReplayConfigs replays one trace on every platform configuration through
// the pool — the shape of a bandwidth sweep — returning results in input
// order. The trace is compiled once and the program shared by every
// replay.
func ReplayConfigs(ctx context.Context, e *Engine, cfgs []network.Config, tr *trace.Trace) ([]*sim.Result, error) {
	if tr == nil {
		return nil, sim.ErrNilTrace
	}
	prog, err := sim.Compile(tr)
	if err != nil {
		return nil, err
	}
	return Map(ctx, e, len(cfgs), func(ctx context.Context, i int) (*sim.Result, error) {
		if err := cfgs[i].Validate(); err != nil {
			return nil, err
		}
		return sim.RunProgram(cfgs[i].Platform(), prog)
	})
}

// SweepFinish replays one trace across platform variants through the pool
// and returns only the makespans, in input order. The trace compiles once;
// each point replays the shared program on a pooled arena, so a saturated
// sweep allocates no per-replay simulator state.
func SweepFinish(ctx context.Context, e *Engine, plats []network.Platform, tr *trace.Trace) ([]float64, error) {
	if tr == nil {
		return nil, sim.ErrNilTrace
	}
	prog, err := sim.Compile(tr)
	if err != nil {
		return nil, err
	}
	return SweepFinishProgram(ctx, e, plats, prog)
}

// SweepFinishProgram is SweepFinish for an already-compiled program (e.g.
// one shared through TraceCache.CompiledTrace or a service-layer digest
// cache).
func SweepFinishProgram(ctx context.Context, e *Engine, plats []network.Platform, prog *sim.Program) ([]float64, error) {
	return Map(ctx, e, len(plats), func(ctx context.Context, i int) (float64, error) {
		return sim.ReplayFinish(plats[i], prog)
	})
}
