// Writing your own kernel: the framework analyzes any application written
// against the instrumented API — exactly the paper's promise ("without the
// need to know or understand the application's source code", here: without
// changing it for overlap).
//
// The example implements a small 1D Jacobi heat solver with halo exchange,
// runs it through the pipeline, and prints what automatic overlap would
// buy. It demonstrates every API element a kernel needs:
//
//   - tracked arrays (NewArray / Load / Store) for communicated buffers,
//   - Compute for untracked work,
//   - blocking and non-blocking tracked transfers,
//   - collectives (the residual Allreduce),
//   - numerical verification, since the substrate moves real data.
//
// Run with:
//
//	go run ./examples/custom_app
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/network"
	"repro/internal/tracer"
)

const (
	ranks   = 8
	cells   = 256 // interior cells per rank
	steps   = 6
	workPer = 400 // instructions per cell update
)

// jacobi is one rank of the heat solver. Boundary cells travel through
// tracked one-cell... rather, tracked halo buffers of width 32 so the
// chunking transformation has something to split.
func jacobi(p *tracer.Proc) {
	me, size := p.Rank(), p.Size()
	const halo = 32
	left := p.NewArray("halo-left", halo)
	right := p.NewArray("halo-right", halo)
	inL := p.NewArray("halo-in-left", halo)
	inR := p.NewArray("halo-in-right", halo)
	res := make([]float64, 1)

	temp := make([]float64, cells)
	for i := range temp {
		temp[i] = float64(me) // step gradient across ranks
	}

	for s := 0; s < steps; s++ {
		// Interior update: untracked bulk compute.
		p.Compute(int64(cells) * workPer)
		for i := range temp {
			temp[i] += 0.1
		}
		// Pack boundary strips (tracked stores).
		for i := 0; i < halo; i++ {
			left.Store(i, temp[i])
			right.Store(i, temp[cells-halo+i])
		}
		// Exchange halos with neighbours (non-blocking, like a real
		// stencil code).
		var reqs []*tracer.RecvReq
		if me > 0 {
			reqs = append(reqs, p.Irecv(inL, me-1, 2))
			p.Isend(me-1, 1, left)
		}
		if me < size-1 {
			reqs = append(reqs, p.Irecv(inR, me+1, 1))
			p.Isend(me+1, 2, right)
		}
		for _, r := range reqs {
			r.Wait()
		}
		// Consume the halos right away (tracked loads).
		edge := 0.0
		if me > 0 {
			for i := 0; i < halo; i++ {
				edge += inL.Load(i)
			}
		}
		if me < size-1 {
			for i := 0; i < halo; i++ {
				edge += inR.Load(i)
			}
		}
		p.Compute(int64(halo) * workPer)
		// Global residual: one scalar Allreduce per step.
		p.Allreduce([]float64{edge}, res, mpi.OpSum)
	}

	// Numerical sanity: after `steps` updates every cell gained 0.1 per
	// step on top of its rank-valued start.
	for i, v := range temp {
		want := float64(me) + 0.1*float64(steps)
		if math.Abs(v-want) > 1e-9 {
			panic(fmt.Sprintf("rank %d cell %d: got %v want %v", me, i, v, want))
		}
	}
}

func main() {
	app := core.App{Name: "jacobi1d", Kernel: jacobi}
	report, err := core.Analyze(app, ranks, network.Testbed(ranks), tracer.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== custom kernel: 1D Jacobi heat solver ==")
	fmt.Printf("non-overlapped:    %.6f s\n", report.Base.FinishSec)
	fmt.Printf("overlapped (real): %.6f s  (%.2fx)\n", report.Real.FinishSec, report.SpeedupReal)
	fmt.Printf("overlapped (ideal):%.6f s  (%.2fx)\n", report.Ideal.FinishSec, report.SpeedupIdeal)
	p := report.Patterns.AppProduction
	c := report.Patterns.AppConsumption
	fmt.Printf("halo production:  first element final at %.1f%% of the interval\n", p.FirstElem)
	fmt.Printf("halo consumption: first needed at %.1f%% of the interval\n", c.Nothing)
	fmt.Println("(pack-at-end + consume-immediately: a POP-like pattern, so the real")
	fmt.Println(" gain is small — restructure the update loop to produce halos early")
	fmt.Println(" and the ideal column shows what that would buy)")
}
