// Package sim implements the Dimemas-equivalent trace-driven simulator: an
// offline discrete-event engine that replays per-rank trace records on a
// configurable parallel platform (see package network) and reconstructs the
// application's time behaviour.
//
// The engine honours the model described in the paper: compute bursts are
// instruction counts scaled by a MIPS rate; point-to-point transfers cost
// latency + size/bandwidth; a finite pool of global buses bounds the number
// of concurrently flying messages; and per-node input/output ports bound
// each node's injection and drain concurrency. Matching follows MPI
// non-overtaking order: the n-th send of a (source, tag, chunk) stream pairs
// with the n-th receive posted for that stream.
//
// The platform may be hierarchical (network.Platform): ranks are placed on
// nodes by a mapping, transfers between ranks sharing a node cross the
// intra-node link class (shared memory, per-node bus pool), and transfers
// between nodes cross the inter-node link class (NIC ports, global buses).
// A flat network.Config is replayed as its degenerate one-rank-per-node
// platform and reproduces the original single-link model exactly.
//
// Replay is structured for throughput: a trace compiles once into a
// Program (dense instructions, stream IDs and handle tables resolved ahead
// of time — see program.go) and executes on a ReplayArena, which owns every
// piece of mutable replay state and reuses it across replays. The event
// queue is a calendar queue of small typed events (see calqueue.go), all
// matching state is slice-backed, and the steady-state replay of a warm
// arena performs no heap allocation.
//
// Events execute in a static total order — (time, event class, ids), see
// eventBefore — with no insertion sequence numbers, so any scheduler that
// respects the order reproduces the replay bit-for-bit. That is the
// foundation of the conservative parallel replay in pdes.go, which
// partitions ranks over node shards and advances them concurrently inside
// conservative windows of that same order.
package sim

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/faults"
	"repro/internal/network"
	"repro/internal/trace"
)

// State labels what a rank is doing during a timeline interval.
type State uint8

// Timeline states, the vocabulary of the Paraver-style views.
const (
	// StateCompute: the rank is executing a CPU burst.
	StateCompute State = iota
	// StateSendBlocked: the rank is blocked in a blocking send (resource
	// queuing, rendezvous handshake, injection).
	StateSendBlocked
	// StateWaitRecv: the rank is blocked in Recv, Wait, or WaitAll.
	StateWaitRecv
)

// String returns a short state mnemonic.
func (s State) String() string {
	switch s {
	case StateCompute:
		return "compute"
	case StateSendBlocked:
		return "send"
	case StateWaitRecv:
		return "wait"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Interval is one timeline segment of one rank.
type Interval struct {
	Rank       int
	Start, End float64
	State      State
}

// Comm describes one simulated point-to-point transfer.
type Comm struct {
	Src, Dst   int
	Tag, Chunk int
	Bytes      int64
	MsgID      int64
	// Intra reports whether both endpoints share a node, i.e. the
	// transfer crossed the platform's intra-node link class instead of
	// the interconnect. Always false on a flat (one-rank-per-node)
	// platform.
	Intra bool
	// SendT is the virtual time the send record executed on the source.
	SendT float64
	// StartT is when the transfer acquired its resources and left the
	// sender (>= SendT under contention or rendezvous).
	StartT float64
	// ArriveT is when the last byte reached the destination.
	ArriveT float64
	// MatchT is when the receiver's matching receive completed.
	MatchT float64
}

// RankStats aggregates per-rank time accounting.
type RankStats struct {
	ComputeSec     float64
	SendBlockedSec float64
	WaitSec        float64
	FinishSec      float64
	BytesSent      int64
	MsgsSent       int
}

// Result is the full output of one replay.
//
// Results returned by the one-shot entry points (Run, RunOn, RunProgram,
// Simulator.Run) are owned by the caller. Results returned by a
// ReplayArena's methods alias the arena's reusable buffers and are only
// valid until the arena's next replay.
type Result struct {
	// FinishSec is the simulated makespan: the max rank finish time.
	FinishSec float64
	// Ranks holds per-rank accounting, indexed by rank.
	Ranks []RankStats
	// Intervals is the state timeline of every rank, sorted by rank then
	// start time.
	Intervals []Interval
	// Comms lists every simulated transfer, grouped by stream (one
	// (src,dst,tag,chunk) flow) in the program's stream order and by
	// send sequence within a stream. Each send owns its slot at compile
	// time, which is what lets serial and sharded replays fill the slice
	// in different orders yet produce identical bytes.
	Comms []Comm
}

// CloneInto deep-copies r into dst, reusing dst's slice capacity, and
// returns dst. This is the arena-aware copy-out: replay on a pooled
// arena, CloneInto a caller-owned Result, and the steady state allocates
// nothing beyond dst's first growth to the program's high-water mark.
func (r *Result) CloneInto(dst *Result) *Result {
	dst.FinishSec = r.FinishSec
	dst.Ranks = append(dst.Ranks[:0], r.Ranks...)
	dst.Intervals = append(dst.Intervals[:0], r.Intervals...)
	dst.Comms = append(dst.Comms[:0], r.Comms...)
	return dst
}

// Clone returns a caller-owned deep copy of r.
func (r *Result) Clone() *Result { return r.CloneInto(new(Result)) }

// TotalWaitSec sums receive-wait time over all ranks.
func (r *Result) TotalWaitSec() float64 {
	var s float64
	for i := range r.Ranks {
		s += r.Ranks[i].WaitSec
	}
	return s
}

// TotalComputeSec sums compute time over all ranks.
func (r *Result) TotalComputeSec() float64 {
	var s float64
	for i := range r.Ranks {
		s += r.Ranks[i].ComputeSec
	}
	return s
}

// TrafficSplit partitions the replay's traffic by link class: bytes and
// message counts that stayed inside a node versus those that crossed the
// interconnect. On a flat platform everything is inter-node.
func (r *Result) TrafficSplit() (intraBytes, interBytes int64, intraMsgs, interMsgs int) {
	for i := range r.Comms {
		if r.Comms[i].Intra {
			intraBytes += r.Comms[i].Bytes
			intraMsgs++
		} else {
			interBytes += r.Comms[i].Bytes
			interMsgs++
		}
	}
	return intraBytes, interBytes, intraMsgs, interMsgs
}

// Summary is the scalar digest of one replay — everything the sweep and
// search paths retain, cheap to copy and safe to keep after the arena that
// produced it is reused.
type Summary struct {
	FinishSec  float64
	IntraBytes int64
	InterBytes int64
	IntraMsgs  int
	InterMsgs  int
}

// summarize reduces a result to its retained scalars.
func summarize(res *Result) Summary {
	ib, eb, im, em := res.TrafficSplit()
	return Summary{FinishSec: res.FinishSec, IntraBytes: ib, InterBytes: eb, IntraMsgs: im, InterMsgs: em}
}

// DeadlockError reports a replay that stalled before all ranks finished.
type DeadlockError struct {
	Trace   string
	Blocked []string
	// Dropped counts transfers suppressed by injected hard faults (downed
	// NICs or inter-node links, see faults.Spec) during this replay.
	// Nonzero distinguishes a fault-induced stall — ranks waiting on
	// messages that can never arrive — from a genuine trace deadlock: the
	// degradation studies report the former as a per-point outcome while
	// the latter stays a hard error.
	Dropped int64
}

func (e *DeadlockError) Error() string {
	if e.Dropped > 0 {
		return fmt.Sprintf("sim: deadlock replaying %q: %v (%d transfers lost to injected NIC/link faults)", e.Trace, e.Blocked, e.Dropped)
	}
	return fmt.Sprintf("sim: deadlock replaying %q: %v", e.Trace, e.Blocked)
}

// FaultInduced reports whether the stall was caused by injected hard
// faults rather than the trace's own communication structure.
func (e *DeadlockError) FaultInduced() bool { return e.Dropped > 0 }

// ErrNilTrace reports a replay requested without a trace.
var ErrNilTrace = errors.New("sim: nil trace")

// ---------------------------------------------------------------------------
// Event queue
//
// Events are small typed records — no closures — ordered by the static key
// (time, class, a, b). The key depends only on the event's content, never on
// insertion order: at most one rank continuation (evAdvance/evSendResume)
// exists per rank at any moment, and an arrival is unique per (stream, send
// seq), so the key is a total order. Any scheduler that respects it — the
// serial loop or the sharded PDES loop in pdes.go — pops the same sequence,
// which is what keeps parallel replay byte-identical to serial.

// Event kinds.
const (
	// evAdvance resumes rank a's record stream at the event time.
	evAdvance uint8 = iota
	// evArrive completes the flight of send seq b of stream a.
	evArrive
	// evSendResume unparks rank a from a blocking rendezvous send:
	// advance past the send record.
	evSendResume
)

type event struct {
	t    float64
	year int64 // calendar-queue placement year, owned by eventQueue.push
	a, b int32
	kind uint8
}

// eventBefore is the static total order: time, then rank continuations
// before arrivals, then the id pair. Same-time continuations of distinct
// ranks order by rank; same-time arrivals by (stream, seq).
func eventBefore(x, y *event) bool {
	if x.t != y.t {
		return x.t < y.t
	}
	xa, ya := x.kind == evArrive, y.kind == evArrive
	if xa != ya {
		return ya
	}
	if x.a != y.a {
		return x.a < y.a
	}
	return x.b < y.b
}

// ---------------------------------------------------------------------------
// Simulated-time resources

// resource models a pool of identical units (buses, ports) reserved for
// simulated-time spans. A nil resource is unlimited.
//
// Each unit keeps a calendar of busy intervals so that a reservation made
// for the future (a chunk burst serialized behind a port) does not render
// the unit's earlier idle time unusable: later requests may backfill gaps,
// which is what the physical resource would allow.
type resource struct {
	units []unitCalendar
}

type busyInterval struct {
	start, end float64
}

type unitCalendar struct {
	busy []busyInterval // sorted by start, non-overlapping
}

// earliestFit returns the earliest start >= t at which the unit can host a
// reservation of the given duration.
func (u *unitCalendar) earliestFit(t, hold float64) float64 {
	// Binary search for the first busy interval ending after t.
	lo, hi := 0, len(u.busy)
	for lo < hi {
		mid := (lo + hi) / 2
		if u.busy[mid].end <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start := t
	for i := lo; i < len(u.busy); i++ {
		if u.busy[i].start-start >= hold {
			return start
		}
		if u.busy[i].end > start {
			start = u.busy[i].end
		}
	}
	return start
}

// earliestFit returns the unit index and earliest start >= t across the
// pool.
func (r *resource) earliestFit(t, hold float64) (int, float64) {
	best, bt := 0, r.units[0].earliestFit(t, hold)
	for i := 1; i < len(r.units); i++ {
		if s := r.units[i].earliestFit(t, hold); s < bt {
			best, bt = i, s
		}
		if bt == t {
			break // cannot start earlier than asked
		}
	}
	return best, bt
}

// commit reserves unit i for [start, start+hold). Zero-length holds are
// no-ops.
func (r *resource) commit(i int, start, hold float64) {
	if hold <= 0 {
		return
	}
	u := &r.units[i]
	iv := busyInterval{start: start, end: start + hold}
	// Insert keeping the calendar sorted; requests mostly arrive in
	// increasing time, so scanning from the back is near O(1).
	pos := len(u.busy)
	for pos > 0 && u.busy[pos-1].start > iv.start {
		pos--
	}
	u.busy = append(u.busy, busyInterval{})
	copy(u.busy[pos+1:], u.busy[pos:])
	u.busy[pos] = iv
}

// reset truncates every unit's calendar, keeping capacity.
func (r *resource) reset() {
	for i := range r.units {
		r.units[i].busy = r.units[i].busy[:0]
	}
}

// ptr returns the pool as the nullable handle the replay loop uses: nil
// means unlimited.
func (r *resource) ptr() *resource {
	if len(r.units) == 0 {
		return nil
	}
	return r
}

// ---------------------------------------------------------------------------
// Message matching

type postKind uint8

const (
	postBlocking postKind = iota
	postNonBlocking
)

type post struct {
	kind   postKind
	handle int32
	t      float64
}

// streamState is the per-stream non-overtaking match state. The n-th send
// of the stream pairs with the n-th post; a pair completes as soon as both
// its message has arrived and its receive is posted, independently of
// other pairs. All slices are exact-capacity views into the arena's
// backing arrays.
type streamState struct {
	arrivals []float64 // arrival time per send seq; NaN while in flight
	matched  []bool    // per send seq
	posts    []post    // grows to the stream's post count
	nSends   int32
	// Rendezvous senders wait for their matching post in FIFO order:
	// stream seqs are strictly increasing and posts arrive in order, so
	// the map of the old engine reduces to a queue with a head cursor.
	pendQ    []pendingTransfer
	pendHead int32
}

type pendingTransfer struct {
	seq      int32
	commIdx  int32
	bytes    int64
	readyT   float64 // sender reached the record at this time
	blocking bool
}

// ---------------------------------------------------------------------------
// Rank state machine

type blockReason uint8

const (
	blockNone blockReason = iota
	blockRecv
	blockWait
	blockWaitAll
	blockSendRendezvous
	blockSendInject
)

type rankState struct {
	rank       int32
	pc         int32
	blocked    blockReason
	done       bool
	waitHandle int32
	clock      float64
	blockStart float64
	stats      RankStats
	// Outstanding IRecv handles, densely indexed by the program's
	// per-rank handle IDs. hTime is the completion time (NaN while
	// incomplete), hArr the completing pair's arrival time (what decides
	// whether a completion is already visible to a walk at a given clock
	// — see the run-ahead notes in advance), hActive whether the handle
	// is posted and unwaited.
	hTime   []float64
	hArr    []float64
	hActive []bool
	// active lists posted handle IDs for WaitAll's bulk clear; entries
	// deactivated by a single Wait go stale and are skipped.
	active     []int32
	incomplete int32
}

// ---------------------------------------------------------------------------
// ReplayArena

// ReplayArena owns every piece of mutable replay state — event heap,
// match buffers, rank states, resource calendars, interval and comm
// accumulators — and reuses it across replays, so a sweep's 16th replay of
// a compiled program allocates nothing. An arena is single-goroutine;
// share Programs, not arenas. Results returned by arena methods alias the
// arena's buffers and are valid only until its next replay.
type ReplayArena struct {
	// One-entry compile memo for RunOn: sweeps that replay the same
	// *trace.Trace on many platform variants compile once. Callers must
	// not mutate a trace between replays (the simulator never does).
	memoTrace *trace.Trace
	memoProg  *Program

	plat   network.Platform
	prog   *Program
	nodeOf []int

	// Event queue (calendar queue, see calqueue.go) and clock.
	evq      eventQueue
	now      float64
	inFlight int // inter-node messages currently in the interconnect

	// Sharded replay state (pdes.go); empty until RunProgramShards.
	pdes pdesState

	// Resource pools, rebuilt only when the platform shape changes.
	poolNodes                             int
	poolBuses, poolIntra, poolIn, poolOut int
	interRes                              resource
	intraRes, inRes, outRes               []resource
	interBuses                            *resource
	intraBuses, nodeIn, nodeOut           []*resource

	// Per-rank and per-stream state plus their backing arrays.
	ranks       []rankState
	streams     []streamState
	arrivalsBuf []float64
	matchedBuf  []bool
	postsBuf    []post
	pendBuf     []pendingTransfer
	hTimeBuf    []float64
	hArrBuf     []float64
	hActiveBuf  []bool
	activeBuf   []int32

	// Output accumulators. Intervals gather per rank — each rank's
	// timeline is appended in strictly increasing start order — and merge
	// by concatenation, which is exactly the (rank, start) order the old
	// engine obtained from a final closure sort.
	rankIvs   [][]Interval
	intervals []Interval
	comms     []Comm
	rankStats []RankStats
	result    Result

	// Flight record of the current/last replay (see stats.go).
	stats          ReplayStats
	replayStart    time.Time
	shardEventsBuf []int64

	// Fault-injection state, resolved from plat.Degradations by reset.
	// The guard flags keep the healthy path byte-identical and cheap:
	// with a zero-valued spec no fault arithmetic touches a time. All
	// fields are read-only during a replay (PDES shards share them), and
	// fxDropped is only mutated by inter-node launches, which execute on
	// the coordinator alone.
	fxOn       bool // any degradation active
	fxHard     bool // any downed NIC or inter-node link
	fxStrag    bool // any straggler rank
	fxDerIntra float64
	fxDerInter float64
	fxJitter   float64
	fxSeed     uint64
	fxStragMul []float64 // per-rank compute multiplier (1 = healthy)
	fxNICDown  []bool    // per-node downed NIC
	fxPairs    []uint64  // downed node pairs, packed lo<<32|hi
	fxPickBuf  []int32   // reusable buffer for seeded rank draws
	fxDropped  int64     // transfers suppressed this replay
}

// NewArena returns an empty arena. Buffers grow to the working set of the
// first replays and are reused afterwards.
func NewArena() *ReplayArena { return &ReplayArena{} }

// RunOn replays tr on platform p. The compiled program is memoized per
// trace, so replaying one trace across platform variants compiles once.
func (a *ReplayArena) RunOn(p network.Platform, tr *trace.Trace) (*Result, error) {
	if tr == nil {
		return nil, ErrNilTrace
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if tr != a.memoTrace {
		prog, err := Compile(tr)
		if err != nil {
			return nil, err
		}
		a.memoTrace, a.memoProg = tr, prog
	}
	return a.replay(p, a.memoProg)
}

// RunProgram replays a compiled program on platform p.
func (a *ReplayArena) RunProgram(p network.Platform, prog *Program) (*Result, error) {
	if prog == nil {
		return nil, errors.New("sim: nil program")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return a.replay(p, prog)
}

// ---------------------------------------------------------------------------
// Public entry points

// Simulator replays one trace on one platform. Create with New (flat
// Config) or NewOn (hierarchical Platform), run with Run; a Simulator is
// single-use. It owns a private arena; for replay-heavy workloads reuse a
// ReplayArena (or the pooled ReplayFinish/ReplaySummary helpers) instead.
type Simulator struct {
	arena *ReplayArena
	plat  network.Platform
	prog  *Program
}

// New prepares a replay of tr on the flat platform cfg — the degenerate
// one-rank-per-node case of NewOn. The trace rank count must not exceed
// cfg.Processors. A nil trace yields ErrNilTrace.
func New(cfg network.Config, tr *trace.Trace) (*Simulator, error) {
	if tr == nil {
		return nil, ErrNilTrace
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return NewOn(cfg.Platform(), tr)
}

// NewOn prepares a replay of tr on the hierarchical platform p. The trace
// rank count must not exceed p.Processors. A nil trace yields ErrNilTrace.
func NewOn(p network.Platform, tr *trace.Trace) (*Simulator, error) {
	if tr == nil {
		return nil, ErrNilTrace
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if tr.NumRanks > p.Processors {
		return nil, fmt.Errorf("sim: trace has %d ranks but platform has %d processors", tr.NumRanks, p.Processors)
	}
	prog, err := Compile(tr)
	if err != nil {
		return nil, err
	}
	return &Simulator{arena: NewArena(), plat: p, prog: prog}, nil
}

// Run executes the replay and returns the reconstructed time behaviour.
func (s *Simulator) Run() (*Result, error) {
	return s.arena.replay(s.plat, s.prog)
}

// Run builds a Simulator for (cfg, tr) and executes the replay.
func Run(cfg network.Config, tr *trace.Trace) (*Result, error) {
	s, err := New(cfg, tr)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// RunOn builds a Simulator for the hierarchical platform and executes the
// replay.
func RunOn(p network.Platform, tr *trace.Trace) (*Result, error) {
	s, err := NewOn(p, tr)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// RunProgram replays a compiled program on p with a fresh arena; the
// result is owned by the caller.
func RunProgram(p network.Platform, prog *Program) (*Result, error) {
	return NewArena().RunProgram(p, prog)
}

// ---------------------------------------------------------------------------
// Replay

// replay resets the arena for (p, prog) and runs the event loop. The
// platform must be validated by the caller.
func (a *ReplayArena) replay(p network.Platform, prog *Program) (*Result, error) {
	if prog.numRanks > p.Processors {
		return nil, fmt.Errorf("sim: trace has %d ranks but platform has %d processors", prog.numRanks, p.Processors)
	}
	a.reset(p, prog)
	for r := 0; r < prog.numRanks; r++ {
		a.sched(nil, 0, evAdvance, int32(r), 0)
	}
	for a.evq.len() > 0 {
		e := a.evq.pop()
		if e.t < a.now {
			return nil, fmt.Errorf("sim: time ran backwards: %g < %g", e.t, a.now)
		}
		a.now = e.t
		a.dispatch(e, nil)
	}
	return a.finishReplay()
}

// finishReplay validates that every rank ran to completion and assembles
// the result — the common tail of the serial and sharded replay loops.
func (a *ReplayArena) finishReplay() (*Result, error) {
	var blocked []string
	for r := range a.ranks {
		if rs := &a.ranks[r]; !rs.done {
			blocked = append(blocked, blockedDesc(a.prog, r, int(rs.pc)))
		}
	}
	if blocked != nil {
		if a.fxDropped > 0 {
			mFaultDropped.AddInt(a.fxDropped)
		}
		return nil, &DeadlockError{Trace: a.prog.name, Blocked: blocked, Dropped: a.fxDropped}
	}
	a.harvestStats()
	return a.assemble(), nil
}

// dispatch executes one popped event at its own timestamp. Handlers never
// read the global clock — every time they need is the event's time or state
// recorded alongside the match — so dispatch is valid from the serial loop
// and from a PDES shard alike.
func (a *ReplayArena) dispatch(e event, rt *shard) {
	switch e.kind {
	case evAdvance:
		a.advance(&a.ranks[e.a], e.t, rt)
	case evSendResume:
		rs := &a.ranks[e.a]
		rs.blocked = blockNone
		rs.pc++
		a.advance(rs, e.t, rt)
	case evArrive:
		st := &a.streams[e.a]
		si := &a.prog.streams[e.a]
		if a.nodeOf[si.src] != a.nodeOf[si.dst] {
			a.inFlight--
		}
		st.arrivals[e.b] = e.t
		if int(e.b) < len(st.posts) {
			a.completePair(e.a, int(e.b), rt)
		}
	}
}

// blockedDesc renders one stalled rank for the deadlock report. A pc at or
// past the end of the rank's record stream means the rank ran out of
// records while a dependent was still blocked on it — reported as such
// instead of formatting a zero-valued record.
func blockedDesc(prog *Program, rank, pc int) string {
	code := prog.code[rank]
	if pc >= len(code) {
		return fmt.Sprintf("rank %d at record %d (at end of trace)", rank, pc)
	}
	in := &code[pc]
	return fmt.Sprintf("rank %d at record %d (%s peer=%d tag=%d chunk=%d)",
		rank, pc, in.op, in.peer, in.tag, in.chunk)
}

// assemble builds the Result view over the arena's accumulators.
func (a *ReplayArena) assemble() *Result {
	a.result = Result{Ranks: a.rankStats[:0], Comms: a.comms}
	total := 0
	for r := range a.ranks {
		rs := &a.ranks[r]
		a.result.Ranks = append(a.result.Ranks, rs.stats)
		if rs.stats.FinishSec > a.result.FinishSec {
			a.result.FinishSec = rs.stats.FinishSec
		}
		total += len(a.rankIvs[r])
	}
	a.rankStats = a.result.Ranks
	if cap(a.intervals) < total {
		a.intervals = make([]Interval, 0, total)
	}
	a.intervals = a.intervals[:0]
	for r := range a.rankIvs {
		a.intervals = append(a.intervals, a.rankIvs[r]...)
	}
	a.result.Intervals = a.intervals
	return &a.result
}

// reset prepares the arena's state for one replay of prog on p. Every
// buffer is recycled; the only allocations are capacity growth beyond any
// previous replay (and pool rebuilds when the platform shape changes).
func (a *ReplayArena) reset(p network.Platform, prog *Program) {
	a.plat = p
	a.prog = prog
	a.evq.reset()
	a.now = 0
	a.inFlight = 0
	a.stats = ReplayStats{Shards: 1}
	a.replayStart = time.Now()

	a.nodeOf = grow(a.nodeOf, p.Processors)
	for r := 0; r < p.Processors; r++ {
		a.nodeOf[r] = p.NodeOf(r)
	}
	a.resetPools(p)
	a.resetFaults(p)

	// Backing arrays for the match and handle state.
	a.arrivalsBuf = grow(a.arrivalsBuf, prog.totalSends)
	a.matchedBuf = grow(a.matchedBuf, prog.totalSends)
	a.pendBuf = grow(a.pendBuf, prog.totalSends)
	a.postsBuf = grow(a.postsBuf, prog.totalPosts)
	a.hTimeBuf = grow(a.hTimeBuf, prog.totalHandles)
	a.hArrBuf = grow(a.hArrBuf, prog.totalHandles)
	a.hActiveBuf = grow(a.hActiveBuf, prog.totalHandles)
	// Sized by IRecv records, not distinct handles: each legal repost of a
	// handle after its Wait appends a fresh entry (stale ones are skipped
	// lazily), so the worst case is one entry per IRecv.
	a.activeBuf = grow(a.activeBuf, prog.totalIRecvs)
	nan := math.NaN()
	for i := 0; i < prog.totalSends; i++ {
		a.arrivalsBuf[i] = nan
		a.matchedBuf[i] = false
	}
	for i := 0; i < prog.totalHandles; i++ {
		a.hTimeBuf[i] = nan
		a.hArrBuf[i] = nan
		a.hActiveBuf[i] = false
	}

	if cap(a.streams) < len(prog.streams) {
		a.streams = make([]streamState, len(prog.streams))
	}
	a.streams = a.streams[:len(prog.streams)]
	for i := range prog.streams {
		si := &prog.streams[i]
		a.streams[i] = streamState{
			arrivals: a.arrivalsBuf[si.sendOff : si.sendOff+si.sends],
			matched:  a.matchedBuf[si.sendOff : si.sendOff+si.sends],
			posts:    a.postsBuf[si.postOff : si.postOff : si.postOff+si.posts],
			pendQ:    a.pendBuf[si.sendOff : si.sendOff : si.sendOff+si.sends],
		}
	}

	if cap(a.ranks) < prog.numRanks {
		a.ranks = make([]rankState, prog.numRanks)
	}
	a.ranks = a.ranks[:prog.numRanks]
	for r := 0; r < prog.numRanks; r++ {
		off := prog.handleOff[r]
		n := prog.handles[r]
		irOff := prog.irecvOff[r]
		a.ranks[r] = rankState{
			rank:    int32(r),
			hTime:   a.hTimeBuf[off : off+n],
			hArr:    a.hArrBuf[off : off+n],
			hActive: a.hActiveBuf[off : off+n],
			active:  a.activeBuf[irOff : irOff : irOff+prog.irecvs[r]],
		}
	}

	// Output accumulators. Comms are slot-addressed: send seq n of stream s
	// owns slot streams[s].sendOff+n, assigned at compile time, so every
	// write lands at a statically known index no matter which order — or on
	// which shard — the sends execute. Slots need no clearing: a replay
	// only assembles a Result after every rank finished, which implies
	// every send executed and wrote its slot.
	a.comms = grow(a.comms, prog.totalSends)
	if cap(a.rankIvs) < prog.numRanks {
		a.rankIvs = append(a.rankIvs[:cap(a.rankIvs)], make([][]Interval, prog.numRanks-cap(a.rankIvs))...)
	}
	a.rankIvs = a.rankIvs[:prog.numRanks]
	for r := range a.rankIvs {
		a.rankIvs[r] = a.rankIvs[r][:0]
	}
	a.rankStats = grow(a.rankStats, prog.numRanks)
}

// resetFaults resolves the platform's Degradations spec into the
// arena's per-replay fault state: seeded draws (straggler ranks, downed
// links) are made once here, so the replay itself reads only immutable
// buffers and every draw is a pure function of the spec — independent
// of execution order, which keeps serial and PDES replays
// byte-identical. A zero spec clears the guard flags and touches
// nothing else, preserving the healthy path's zero-allocation replay.
func (a *ReplayArena) resetFaults(p network.Platform) {
	a.fxDropped = 0
	d := p.Degradations.Canonical()
	if d.IsZero() {
		a.fxOn, a.fxHard, a.fxStrag = false, false, false
		a.fxDerIntra, a.fxDerInter, a.fxJitter = 0, 0, 0
		return
	}
	a.fxOn = true
	a.fxDerIntra, a.fxDerInter, a.fxJitter = d.DerateIntra, d.DerateInter, d.JitterFrac
	a.fxSeed = d.EffectiveSeed()

	a.fxStrag = d.StragglerFactor > 1
	if a.fxStrag {
		a.fxStragMul = grow(a.fxStragMul, p.Processors)
		for i := range a.fxStragMul {
			a.fxStragMul[i] = 1
		}
		for _, r := range d.StragglerRanks {
			a.fxStragMul[r] = d.StragglerFactor
		}
		if d.Stragglers > 0 {
			a.fxPickBuf = faults.PickRanks(a.fxSeed, d.Stragglers, p.Processors, a.fxPickBuf[:0])
			for _, r := range a.fxPickBuf {
				a.fxStragMul[r] = d.StragglerFactor
			}
		}
	}

	a.fxHard = len(d.DownNodes) > 0 || len(d.DownLinks) > 0 || d.LinkDown > 0
	if a.fxHard {
		a.fxNICDown = grow(a.fxNICDown, p.Nodes)
		for i := range a.fxNICDown {
			a.fxNICDown[i] = false
		}
		for _, n := range d.DownNodes {
			a.fxNICDown[n] = true
		}
		a.fxPairs = a.fxPairs[:0]
		for _, pr := range d.DownLinks {
			a.fxPairs = append(a.fxPairs, uint64(pr[0])<<32|uint64(pr[1]))
		}
		if d.LinkDown > 0 {
			a.fxPairs = faults.PickPairs(a.fxSeed, d.LinkDown, p.Nodes, a.fxPairs)
		}
	}
}

// linkFaulted reports whether the inter-node path between two nodes is
// severed by a downed NIC on either end or a downed direct link.
func (a *ReplayArena) linkFaulted(sn, dn int) bool {
	if a.fxNICDown[sn] || a.fxNICDown[dn] {
		return true
	}
	lo, hi := sn, dn
	if lo > hi {
		lo, hi = hi, lo
	}
	key := uint64(lo)<<32 | uint64(hi)
	for _, p := range a.fxPairs {
		if p == key {
			return true
		}
	}
	return false
}

// resetPools recycles the resource calendars, rebuilding them only when
// the platform's pool shape differs from the previous replay's.
func (a *ReplayArena) resetPools(p network.Platform) {
	same := a.poolNodes == p.Nodes && a.poolBuses == p.Buses &&
		a.poolIntra == p.IntraBuses && a.poolIn == p.InPorts && a.poolOut == p.OutPorts
	if !same {
		a.poolNodes, a.poolBuses = p.Nodes, p.Buses
		a.poolIntra, a.poolIn, a.poolOut = p.IntraBuses, p.InPorts, p.OutPorts
		a.interRes = resource{units: make([]unitCalendar, p.Buses)}
		a.intraRes = makeResources(p.Nodes, p.IntraBuses)
		a.inRes = makeResources(p.Nodes, p.InPorts)
		a.outRes = makeResources(p.Nodes, p.OutPorts)
		a.interBuses = a.interRes.ptr()
		a.intraBuses = resourcePtrs(a.intraBuses, a.intraRes)
		a.nodeIn = resourcePtrs(a.nodeIn, a.inRes)
		a.nodeOut = resourcePtrs(a.nodeOut, a.outRes)
		return
	}
	a.interRes.reset()
	for i := range a.intraRes {
		a.intraRes[i].reset()
	}
	for i := range a.inRes {
		a.inRes[i].reset()
	}
	for i := range a.outRes {
		a.outRes[i].reset()
	}
}

func makeResources(nodes, units int) []resource {
	rs := make([]resource, nodes)
	if units > 0 {
		for i := range rs {
			rs[i].units = make([]unitCalendar, units)
		}
	}
	return rs
}

func resourcePtrs(dst []*resource, rs []resource) []*resource {
	dst = dst[:0]
	for i := range rs {
		dst = append(dst, rs[i].ptr())
	}
	return dst
}

// grow returns a length-n view of s, reallocating (without copying — the
// caller refills) only when the capacity is insufficient.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// ---------------------------------------------------------------------------
// Event scheduling

// sched enqueues an event at time t. rt names the executing owner of a
// sharded replay, which routes the event to the right queue (see pdes.go);
// the serial loop passes nil and targets the arena's own queue.
func (a *ReplayArena) sched(rt *shard, t float64, kind uint8, x, y int32) {
	e := event{t: t, kind: kind, a: x, b: y}
	if rt == nil {
		a.evq.push(e)
		return
	}
	rt.route(a, e)
}

// ---------------------------------------------------------------------------
// Rank program execution

func (a *ReplayArena) addInterval(rank int, start, end float64, st State) {
	if end <= start {
		return
	}
	a.rankIvs[rank] = append(a.rankIvs[rank], Interval{Rank: rank, Start: start, End: end, State: st})
}

// advance runs the rank's instruction stream from its program counter
// until it blocks, needs to let simulated time pass, or finishes.
func (a *ReplayArena) advance(rs *rankState, now float64, rt *shard) {
	rank := int(rs.rank)
	rs.clock = now
	code := a.prog.code[rank]
	for {
		if int(rs.pc) >= len(code) {
			rs.done = true
			rs.stats.FinishSec = rs.clock
			return
		}
		in := &code[rs.pc]
		if rt != nil && rt.id >= 0 && in.stream >= 0 && a.pdes.streamShard[in.stream] < 0 {
			// Shard mode: the next instruction touches an inter-node
			// stream, which only the coordinator may execute. Park the
			// walk here and hand the continuation over; the coordinator
			// resumes it at the same clock in global key order.
			a.sched(rt, rs.clock, evAdvance, int32(rank), 0)
			return
		}
		switch in.op {
		case trace.KindCompute:
			d := a.plat.ComputeSec(in.arg)
			if a.fxStrag {
				d *= a.fxStragMul[rank]
			}
			if d <= 0 {
				rs.pc++
				continue
			}
			a.addInterval(rank, rs.clock, rs.clock+d, StateCompute)
			rs.stats.ComputeSec += d
			rs.pc++
			a.sched(rt, rs.clock+d, evAdvance, int32(rank), 0)
			return
		case trace.KindSend, trace.KindISend:
			if a.startSend(rs, rank, in, in.op == trace.KindSend, rt) {
				rs.pc++
				continue
			}
			return // parked: rendezvous handshake or blocking injection
		case trace.KindRecv:
			st := &a.streams[in.stream]
			seq := len(st.posts)
			st.posts = append(st.posts, post{kind: postBlocking, t: rs.clock})
			a.wakeRendezvous(in.stream, seq, rs.clock, rt)
			if seq < len(st.arrivals) && !math.IsNaN(st.arrivals[seq]) {
				if st.arrivals[seq] < rs.clock {
					// Serial-visible arrival (its event orders strictly
					// before this walk): the message is already here, the
					// receive completes at this clock with no wait.
					a.completePair(in.stream, seq, rt)
					rs.pc++
					continue
				}
				// The arrival is stamped but its event time does not
				// precede this walk — sharded run-ahead processed it out
				// of walk order. Serial would block here and be woken by
				// that arrival; replay that wake now with the same times.
				rs.blocked = blockRecv
				rs.blockStart = rs.clock
				a.completePair(in.stream, seq, rt)
				return
			}
			rs.blocked = blockRecv
			rs.blockStart = rs.clock
			return
		case trace.KindIRecv:
			st := &a.streams[in.stream]
			seq := len(st.posts)
			st.posts = append(st.posts, post{kind: postNonBlocking, handle: in.handle, t: rs.clock})
			rs.postHandle(in.handle)
			a.wakeRendezvous(in.stream, seq, rs.clock, rt)
			if seq < len(st.arrivals) && !math.IsNaN(st.arrivals[seq]) {
				a.completePair(in.stream, seq, rt)
			}
			rs.pc++
			continue
		case trace.KindWait:
			if in.handle < 0 || !rs.hActive[in.handle] {
				rs.pc++ // Validate() prevents this; defensive.
				continue
			}
			if !math.IsNaN(rs.hTime[in.handle]) {
				if rs.hArr[in.handle] < rs.clock {
					// Serial-visible completion: no wait.
					rs.hActive[in.handle] = false
					rs.pc++
					continue
				}
				// Completed by a run-ahead arrival whose event does not
				// precede this walk: serial blocks here and that arrival
				// wakes it. Replay the wake with the same times.
				rs.hActive[in.handle] = false
				rs.blockStart = rs.clock
				a.wakeFromWait(rs, rank, rs.hTime[in.handle], rt)
				return
			}
			rs.blocked = blockWait
			rs.waitHandle = in.handle
			rs.blockStart = rs.clock
			return
		case trace.KindWaitAll:
			if rs.incomplete == 0 {
				// All handles complete; the barrier is visible only once
				// every completing arrival precedes this walk. maxArr is
				// the serial wake time otherwise: arrivals complete the
				// pairs in event order, so the last one — the maximum —
				// triggers the serial wake.
				maxArr := math.Inf(-1)
				for _, h := range rs.active {
					// Skip entries gone stale through a single Wait.
					if rs.hActive[h] && rs.hArr[h] > maxArr {
						maxArr = rs.hArr[h]
					}
				}
				if maxArr < rs.clock {
					rs.waitAllDone()
					rs.pc++
					continue
				}
				for _, h := range rs.active {
					rs.hActive[h] = false
				}
				rs.active = rs.active[:0]
				rs.blockStart = rs.clock
				a.wakeFromWait(rs, rank, maxArr, rt)
				return
			}
			rs.blocked = blockWaitAll
			rs.blockStart = rs.clock
			return
		default:
			rs.pc++ // unknown records are skipped
			continue
		}
	}
}

// postHandle activates a handle for a fresh IRecv.
func (rs *rankState) postHandle(h int32) {
	if h < 0 {
		return
	}
	if rs.hActive[h] {
		// Repost while outstanding: Validate() rejects this, but mirror
		// the old engine's map semantics — the handle becomes incomplete
		// again.
		if !math.IsNaN(rs.hTime[h]) {
			rs.incomplete++
		}
		rs.hTime[h] = math.NaN()
		rs.hArr[h] = math.NaN()
		return
	}
	rs.hActive[h] = true
	rs.hTime[h] = math.NaN()
	rs.hArr[h] = math.NaN()
	rs.active = append(rs.active, h)
	rs.incomplete++
}

// waitAllDone reports whether every outstanding handle has completed,
// clearing them all when so.
func (rs *rankState) waitAllDone() bool {
	if rs.incomplete > 0 {
		return false
	}
	for _, h := range rs.active {
		rs.hActive[h] = false
	}
	rs.active = rs.active[:0]
	return true
}

// startSend initiates the transfer for a send record. It returns true when
// the rank may continue immediately (ISend, or zero-cost injection) and
// false when the rank parked (blocking injection or rendezvous handshake).
func (a *ReplayArena) startSend(rs *rankState, rank int, in *instr, blocking bool, rt *shard) bool {
	st := &a.streams[in.stream]
	seq := int(st.nSends)
	st.nSends++
	rs.stats.MsgsSent++
	rs.stats.BytesSent += in.arg
	// Send seq n of a stream owns the compile-time comm slot sendOff+n, so
	// records land in their final position with no per-send allocation and
	// no post-replay merge — and concurrent shards never contend for an
	// append cursor.
	commIdx := int(a.prog.streams[in.stream].sendOff) + seq
	a.comms[commIdx] = Comm{
		Src: rank, Dst: int(in.peer), Tag: int(in.tag), Chunk: int(in.chunk),
		Bytes: in.arg, MsgID: in.msgID, SendT: rs.clock,
		Intra:  a.nodeOf[rank] == a.nodeOf[in.peer],
		StartT: math.NaN(), ArriveT: math.NaN(), MatchT: math.NaN(),
	}
	if !a.plat.Eager(in.arg) && seq >= len(st.posts) {
		// Rendezvous: the matching receive is not posted yet.
		st.pendQ = append(st.pendQ, pendingTransfer{
			seq: int32(seq), commIdx: int32(commIdx), bytes: in.arg,
			readyT: rs.clock, blocking: blocking,
		})
		if blocking {
			rs.blocked = blockSendRendezvous
			rs.blockStart = rs.clock
			return false
		}
		return true
	}
	// Eager transfers follow Dimemas's asynchronous-send default: the
	// sender resumes immediately and the NIC performs the transfer in
	// the background (the OS-bypass capability the paper assumes). Only
	// rendezvous sends block the issuing rank.
	a.launch(in.stream, seq, in.arg, rs.clock, commIdx, rt)
	return true
}

// launch performs resource acquisition, schedules the arrival event, and
// returns the injection-complete time on the sender.
//
// The transfer's locality decides both its cost model and its resource
// set: intra-node transfers pay the intra link's latency/bandwidth and
// queue only on the node's shared-memory bus pool (they never touch the
// NIC or the interconnect); inter-node transfers pay the inter link and
// queue on a global bus, the source node's output port, and the
// destination node's input port.
//
// Ports and buses are occupied for the serialization time: latency models
// pipeline depth (wire time plus software overhead), not channel
// occupancy, so concurrent messages only queue on each other's
// size/bandwidth terms. This keeps the chunked traces from paying the
// latency once per chunk in *occupancy* (they still pay it per chunk in
// flight time).
// Under an active Degradations spec the transfer may additionally be
// derated (serialization divided by the link class's derate factor),
// jittered (inter-node latency scaled by a deterministic per-transfer
// draw), or dropped outright when it crosses a downed NIC or link — a
// dropped transfer occupies no resources, schedules no arrival, and
// reports ok=false so a blocking rendezvous sender stays parked.
func (a *ReplayArena) launch(streamID int32, seq int, bytes int64, t float64, commIdx int, rt *shard) (float64, bool) {
	si := &a.prog.streams[streamID]
	src, dst := int(si.src), int(si.dst)
	intra := a.nodeOf[src] == a.nodeOf[dst]
	if a.fxHard && !intra && a.linkFaulted(a.nodeOf[src], a.nodeOf[dst]) {
		a.fxDropped++
		return t, false
	}
	link := a.plat.LinkFor(intra)
	ser := link.SerializationSec(bytes)
	if a.fxOn {
		if intra {
			if a.fxDerIntra > 0 {
				ser /= a.fxDerIntra
			}
		} else if a.fxDerInter > 0 {
			ser /= a.fxDerInter
		}
	}
	if !intra && a.plat.CongestionFactor > 0 && a.plat.Buses > 0 {
		// Nonlinear congestion extension: transfers entering a loaded
		// interconnect serialize slower. inFlight counts inter-node
		// messages and is sampled at launch; intra-node traffic never
		// contributes.
		over := float64(a.inFlight)/float64(a.plat.Buses) - 1
		if over > 0 {
			ser *= 1 + a.plat.CongestionFactor*over
		}
	}
	lat := link.LatencySec
	if a.fxJitter > 0 && !intra {
		// Jitter is a pure function of the transfer's compile-time
		// identity (stream, seq) under the spec's seed: any replay —
		// serial or sharded, first or cached-warm — draws the same value.
		lat *= 1 + a.fxJitter*faults.Unit(a.fxSeed, uint64(streamID), uint64(seq))
	}
	flight := lat + ser
	// Joint acquisition: find the earliest common start at which every
	// pool of the transfer's resource set is free for the serialization
	// window. The fixpoint loop converges because each probe only moves
	// the candidate start forward.
	pools := [3]*resource{a.intraBuses[a.nodeOf[src]], nil, nil}
	if !intra {
		pools = [3]*resource{a.interBuses, a.nodeOut[a.nodeOf[src]], a.nodeIn[a.nodeOf[dst]]}
	}
	var units [3]int
	start := t
	for iter := 0; iter < 64; iter++ {
		moved := false
		for i, pool := range pools {
			if pool == nil {
				continue
			}
			u, ft := pool.earliestFit(start, ser)
			units[i] = u
			if ft > start {
				start = ft
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	for i, pool := range pools {
		if pool != nil {
			pool.commit(units[i], start, ser)
		}
	}
	arrive := start + flight
	a.comms[commIdx].StartT = start
	a.comms[commIdx].ArriveT = arrive
	if !intra {
		a.inFlight++
	}
	a.sched(rt, arrive, evArrive, streamID, int32(seq))
	return start + ser, true
}

// wakeRendezvous starts any rendezvous transfer whose matching post just
// appeared. Pending sends queue in strictly increasing seq order, so the
// head of the queue is the only candidate for the new post.
func (a *ReplayArena) wakeRendezvous(streamID int32, postSeq int, now float64, rt *shard) {
	st := &a.streams[streamID]
	if int(st.pendHead) >= len(st.pendQ) {
		return
	}
	pt := &st.pendQ[st.pendHead]
	if int(pt.seq) != postSeq {
		return
	}
	st.pendHead++
	start := pt.readyT
	if now > start {
		start = now
	}
	injectEnd, ok := a.launch(streamID, int(pt.seq), pt.bytes, start, int(pt.commIdx), rt)
	if pt.blocking {
		if !ok {
			// The transfer crossed a downed NIC/link and can never
			// inject: the blocking sender stays parked and the replay
			// ends in a fault-attributed DeadlockError.
			return
		}
		src := a.prog.streams[streamID].src
		rs := &a.ranks[src]
		a.addInterval(int(src), rs.blockStart, injectEnd, StateSendBlocked)
		rs.stats.SendBlockedSec += injectEnd - rs.blockStart
		a.sched(rt, injectEnd, evSendResume, src, 0)
	}
}

// completePair finishes the match of pair seq of one stream: it stamps the
// comm event, completes the receive (blocking or handle), and wakes the
// destination rank if it was blocked on this completion.
func (a *ReplayArena) completePair(streamID int32, seq int, rt *shard) {
	st := &a.streams[streamID]
	if seq >= len(st.matched) || st.matched[seq] {
		return
	}
	if seq >= len(st.posts) || math.IsNaN(st.arrivals[seq]) {
		return
	}
	st.matched[seq] = true
	p := st.posts[seq]
	// The match time is max(arrival, post): whichever event of this call
	// completed the pair happens at or before that maximum, so no clamp to
	// the triggering event's time is needed — completion times are pure
	// functions of the pair, independent of execution order.
	done := st.arrivals[seq]
	if p.t > done {
		done = p.t
	}
	a.comms[int(a.prog.streams[streamID].sendOff)+seq].MatchT = done
	dst := int(a.prog.streams[streamID].dst)
	rs := &a.ranks[dst]
	switch p.kind {
	case postBlocking:
		if rs.blocked == blockRecv {
			// The rank can only be blocked on the oldest unmatched
			// blocking post, which is this one (a rank posts at most
			// one blocking recv at a time).
			a.wakeFromWait(rs, dst, done, rt)
		}
	case postNonBlocking:
		if rs.hActive[p.handle] && math.IsNaN(rs.hTime[p.handle]) {
			rs.incomplete--
		}
		rs.hTime[p.handle] = done
		rs.hArr[p.handle] = st.arrivals[seq]
		switch rs.blocked {
		case blockWait:
			if rs.waitHandle == p.handle {
				rs.hActive[p.handle] = false
				a.wakeFromWait(rs, dst, done, rt)
			}
		case blockWaitAll:
			if rs.incomplete == 0 {
				// The serial wake comes from the last completion in event
				// order — the maximum arrival. A run-ahead shard may have
				// completed a later-arriving pair before this one, so the
				// triggering done alone is not enough.
				wake := done
				for _, h := range rs.active {
					if rs.hActive[h] && rs.hArr[h] > wake {
						wake = rs.hArr[h]
					}
				}
				for _, h := range rs.active {
					rs.hActive[h] = false
				}
				rs.active = rs.active[:0]
				a.wakeFromWait(rs, dst, wake, rt)
			}
		}
	}
}

func (a *ReplayArena) wakeFromWait(rs *rankState, rank int, done float64, rt *shard) {
	resume := done
	if resume < rs.blockStart {
		resume = rs.blockStart
	}
	a.addInterval(rank, rs.blockStart, resume, StateWaitRecv)
	rs.stats.WaitSec += resume - rs.blockStart
	rs.blocked = blockNone
	rs.pc++
	a.sched(rt, resume, evAdvance, int32(rank), 0)
}
