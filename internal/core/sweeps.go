package core

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/tracer"
)

// Parameter-sweep studies built on the pipeline: chunk-count ablation and
// strong-scaling runs. Both are embarrassingly parallel — every point is a
// pure function of the traced run and its parameters — so they submit
// their points to the experiment engine: the application is traced once,
// the per-point trace rebuilds and replays fan out across the worker
// pool, and results come back in input order, byte-identical to the
// serial reference path.

// ChunkPoint is one measurement of the chunk-count ablation.
type ChunkPoint struct {
	Chunks                    int
	SpeedupReal, SpeedupIdeal float64
}

// ChunkSweep measures overlap speedups across chunk counts. The paper
// fixes 4 chunks; the sweep quantifies that design choice. Points run
// concurrently on the default engine.
func ChunkSweep(app App, ranks int, netCfg network.Config, tCfg tracer.Config, counts []int) ([]ChunkPoint, error) {
	return ChunkSweepWith(context.Background(), nil, app, ranks, netCfg, tCfg, counts)
}

// ChunkSweepWith is ChunkSweep under an explicit context and engine (nil
// selects the default engine). It is a thin wrapper over a scenario spec
// — a chunks axis measuring all three flavors — so the application is
// traced once, each chunk count rebuilds the overlapped traces from a
// copy-on-write variant of the shared run, the chunk-independent base
// flavor compiles once, and every replay runs on a pooled arena.
func ChunkSweepWith(ctx context.Context, eng *engine.Engine, app App, ranks int, netCfg network.Config, tCfg tracer.Config, counts []int) ([]ChunkPoint, error) {
	if err := netCfg.Validate(); err != nil {
		return nil, err
	}
	for _, k := range counts {
		if k <= 0 {
			return nil, fmt.Errorf("core: chunk count %d", k)
		}
	}
	res, err := RunScenario(ctx, eng, Scenario{
		App: app, Ranks: ranks, Tracer: tCfg, Platform: netCfg.Platform(),
		Flavors: []Flavor{FlavorBase, FlavorReal, FlavorIdeal},
		Axes:    []Axis{ChunksAxis(counts...)},
		Output:  OutputFinish,
	})
	if err != nil {
		return nil, err
	}
	out := make([]ChunkPoint, len(res.Points))
	for i, pt := range res.Points {
		base, real, ideal := pt.Flavors[0].FinishSec, pt.Flavors[1].FinishSec, pt.Flavors[2].FinishSec
		out[i] = ChunkPoint{
			Chunks:       counts[i],
			SpeedupReal:  metrics.Speedup(base, real),
			SpeedupIdeal: metrics.Speedup(base, ideal),
		}
	}
	return out, nil
}

// ChunkSweepSerial is the serial reference implementation of ChunkSweep:
// one goroutine, the original loop. It exists so determinism tests and
// BenchmarkEngineParallelSweep can assert the engine path returns
// byte-identical results while measuring its speedup.
func ChunkSweepSerial(app App, ranks int, netCfg network.Config, tCfg tracer.Config, counts []int) ([]ChunkPoint, error) {
	run, baseFinish, err := chunkSweepPrelude(app, ranks, netCfg, tCfg, counts)
	if err != nil {
		return nil, err
	}
	out := make([]ChunkPoint, 0, len(counts))
	for _, k := range counts {
		pt, err := chunkPoint(run, k, netCfg, baseFinish)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// chunkSweepPrelude is the setup shared by the parallel and serial sweep
// paths: validate inputs, trace the application once, and replay the
// non-overlapped baseline. Keeping it single-sourced is what makes the
// two paths byte-identical by construction.
func chunkSweepPrelude(app App, ranks int, netCfg network.Config, tCfg tracer.Config, counts []int) (*tracer.Run, float64, error) {
	if err := netCfg.Validate(); err != nil {
		return nil, 0, err
	}
	for _, k := range counts {
		if k <= 0 {
			return nil, 0, fmt.Errorf("core: chunk count %d", k)
		}
	}
	run, err := tracer.Trace(app.Name, ranks, tCfg, app.Kernel)
	if err != nil {
		return nil, 0, err
	}
	base := run.BaseTrace()
	if err := base.Validate(); err != nil {
		return nil, 0, err
	}
	baseRes, err := sim.Run(netCfg, base)
	if err != nil {
		return nil, 0, err
	}
	return run, baseRes.FinishSec, nil
}

// chunkPoint rebuilds the overlapped traces under a different chunking of
// the same event log and replays them. The copy-on-write variant keeps
// concurrent points from sharing a mutable Run header (the old
// `kRun := *run` shallow copy aliased the log slices).
func chunkPoint(run *tracer.Run, k int, netCfg network.Config, baseFinish float64) (ChunkPoint, error) {
	kRun := run.WithChunks(k)
	real := kRun.OverlapReal()
	ideal := kRun.OverlapIdeal()
	if err := real.Validate(); err != nil {
		return ChunkPoint{}, fmt.Errorf("core: chunks=%d real: %w", k, err)
	}
	if err := ideal.Validate(); err != nil {
		return ChunkPoint{}, fmt.Errorf("core: chunks=%d ideal: %w", k, err)
	}
	realRes, err := sim.Run(netCfg, real)
	if err != nil {
		return ChunkPoint{}, err
	}
	idealRes, err := sim.Run(netCfg, ideal)
	if err != nil {
		return ChunkPoint{}, err
	}
	return ChunkPoint{
		Chunks:       k,
		SpeedupReal:  metrics.Speedup(baseFinish, realRes.FinishSec),
		SpeedupIdeal: metrics.Speedup(baseFinish, idealRes.FinishSec),
	}, nil
}

// ScalePoint is one measurement of a strong-scaling study.
type ScalePoint struct {
	Ranks                     int
	BaseFinishSec             float64
	SpeedupReal, SpeedupIdeal float64
}

// AppFactory builds the application configured for a given rank count
// (kernels whose decomposition depends on the world size need this).
type AppFactory func(ranks int) (App, error)

// ScalingStudy analyzes the application across rank counts on platforms
// derived from cfgFor. Points run concurrently on the default engine.
func ScalingStudy(factory AppFactory, rankCounts []int, cfgFor func(ranks int) network.Config, tCfg tracer.Config) ([]ScalePoint, error) {
	return ScalingStudyWith(context.Background(), nil, factory, rankCounts, cfgFor, tCfg)
}

// ScalingStudyWith is ScalingStudy under an explicit context and engine
// (nil selects the default engine). Each rank count is one job: trace,
// build, and replay all three flavours.
func ScalingStudyWith(ctx context.Context, eng *engine.Engine, factory AppFactory, rankCounts []int, cfgFor func(ranks int) network.Config, tCfg tracer.Config) ([]ScalePoint, error) {
	return engine.Map(ctx, eng, len(rankCounts), func(ctx context.Context, i int) (ScalePoint, error) {
		ranks := rankCounts[i]
		app, err := factory(ranks)
		if err != nil {
			return ScalePoint{}, err
		}
		rep, err := AnalyzeWith(ctx, eng, app, ranks, cfgFor(ranks), tCfg)
		if err != nil {
			return ScalePoint{}, fmt.Errorf("core: scaling at %d ranks: %w", ranks, err)
		}
		return ScalePoint{
			Ranks:         ranks,
			BaseFinishSec: rep.Base.FinishSec,
			SpeedupReal:   rep.SpeedupReal,
			SpeedupIdeal:  rep.SpeedupIdeal,
		}, nil
	})
}
