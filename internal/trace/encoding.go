package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The on-disk format is a line-oriented text encoding in the spirit of the
// Dimemas ".dim" trace files:
//
//	#DIMGO <version>
//	T <name> <flavor> <numranks>
//	R <rank>
//	c <instr>
//	s <peer> <tag> <chunk> <bytes> <msgid>     (blocking send)
//	i <peer> <tag> <chunk> <bytes> <msgid>     (non-blocking send)
//	r <peer> <tag> <chunk> <bytes> <msgid>     (blocking receive)
//	p <peer> <tag> <chunk> <bytes> <handle> <msgid>  (IRecv post)
//	w <handle>                                 (wait one)
//	W                                          (wait all)
//
// Lines beginning with '#' (other than the magic) and blank lines are
// ignored. Names and flavours are percent-escaped so they may contain
// spaces.

const formatMagic = "#DIMGO 1"

func escapeField(s string) string {
	if s == "" {
		return "%00"
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' || c == '%' || c == '\n' || c == '\t' {
			fmt.Fprintf(&b, "%%%02x", c)
		} else {
			b.WriteByte(c)
		}
	}
	return b.String()
}

func unescapeField(s string) (string, error) {
	if s == "%00" {
		return "", nil
	}
	if !strings.Contains(s, "%") {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			b.WriteByte(s[i])
			continue
		}
		if i+2 >= len(s) {
			return "", fmt.Errorf("trace: truncated escape in %q", s)
		}
		v, err := strconv.ParseUint(s[i+1:i+3], 16, 8)
		if err != nil {
			return "", fmt.Errorf("trace: bad escape in %q: %v", s, err)
		}
		b.WriteByte(byte(v))
		i += 2
	}
	return b.String(), nil
}

// Write serializes the trace in the text format described above.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, formatMagic)
	fmt.Fprintf(bw, "T %s %s %d\n", escapeField(t.Name), escapeField(t.Flavor), t.NumRanks)
	for r := range t.Ranks {
		fmt.Fprintf(bw, "R %d\n", r)
		for _, rec := range t.Ranks[r].Records {
			switch rec.Kind {
			case KindCompute:
				fmt.Fprintf(bw, "c %d\n", rec.Instr)
			case KindSend:
				fmt.Fprintf(bw, "s %d %d %d %d %d\n", rec.Peer, rec.Tag, rec.Chunk, rec.Bytes, rec.MsgID)
			case KindISend:
				fmt.Fprintf(bw, "i %d %d %d %d %d\n", rec.Peer, rec.Tag, rec.Chunk, rec.Bytes, rec.MsgID)
			case KindRecv:
				fmt.Fprintf(bw, "r %d %d %d %d %d\n", rec.Peer, rec.Tag, rec.Chunk, rec.Bytes, rec.MsgID)
			case KindIRecv:
				fmt.Fprintf(bw, "p %d %d %d %d %d %d\n", rec.Peer, rec.Tag, rec.Chunk, rec.Bytes, rec.Handle, rec.MsgID)
			case KindWait:
				fmt.Fprintf(bw, "w %d\n", rec.Handle)
			case KindWaitAll:
				fmt.Fprintln(bw, "W")
			default:
				return fmt.Errorf("trace: cannot serialize record kind %v", rec.Kind)
			}
		}
	}
	return bw.Flush()
}

// Read parses a trace previously produced by Write.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	next := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			return line, true
		}
		return "", false
	}
	line, ok := next()
	if !ok {
		return nil, fmt.Errorf("trace: empty input")
	}
	if line != formatMagic {
		return nil, fmt.Errorf("trace: line %d: bad magic %q", lineNo, line)
	}
	line, ok = next()
	if !ok || !strings.HasPrefix(line, "T ") {
		return nil, fmt.Errorf("trace: line %d: expected header, got %q", lineNo, line)
	}
	hf := strings.Fields(line)
	if len(hf) != 4 {
		return nil, fmt.Errorf("trace: line %d: malformed header %q", lineNo, line)
	}
	name, err := unescapeField(hf[1])
	if err != nil {
		return nil, err
	}
	flavor, err := unescapeField(hf[2])
	if err != nil {
		return nil, err
	}
	n, err := strconv.Atoi(hf[3])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("trace: line %d: bad rank count %q", lineNo, hf[3])
	}
	t := New(name, flavor, n)
	cur := -1
	ints := func(fields []string, want int) ([]int64, error) {
		if len(fields)-1 != want {
			return nil, fmt.Errorf("trace: line %d: want %d fields, got %d", lineNo, want, len(fields)-1)
		}
		out := make([]int64, want)
		for i := 0; i < want; i++ {
			v, err := strconv.ParseInt(fields[i+1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad integer %q", lineNo, fields[i+1])
			}
			out[i] = v
		}
		return out, nil
	}
	for {
		line, ok = next()
		if !ok {
			break
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "R":
			v, err := ints(f, 1)
			if err != nil {
				return nil, err
			}
			cur = int(v[0])
			if cur < 0 || cur >= n {
				return nil, fmt.Errorf("trace: line %d: rank %d out of range", lineNo, cur)
			}
		case "c", "s", "i", "r", "p", "w", "W":
			if cur < 0 {
				return nil, fmt.Errorf("trace: line %d: record before any R line", lineNo)
			}
			var rec Record
			switch f[0] {
			case "c":
				v, err := ints(f, 1)
				if err != nil {
					return nil, err
				}
				rec = Record{Kind: KindCompute, Instr: v[0]}
			case "s", "i", "r":
				v, err := ints(f, 5)
				if err != nil {
					return nil, err
				}
				k := KindSend
				if f[0] == "i" {
					k = KindISend
				} else if f[0] == "r" {
					k = KindRecv
				}
				rec = Record{Kind: k, Peer: int(v[0]), Tag: int(v[1]), Chunk: int(v[2]), Bytes: v[3], MsgID: v[4]}
			case "p":
				v, err := ints(f, 6)
				if err != nil {
					return nil, err
				}
				rec = Record{Kind: KindIRecv, Peer: int(v[0]), Tag: int(v[1]), Chunk: int(v[2]), Bytes: v[3], Handle: int(v[4]), MsgID: v[5]}
			case "w":
				v, err := ints(f, 1)
				if err != nil {
					return nil, err
				}
				rec = Record{Kind: KindWait, Handle: int(v[0])}
			case "W":
				rec = Record{Kind: KindWaitAll}
			}
			t.Ranks[cur].Records = append(t.Ranks[cur].Records, rec)
		default:
			return nil, fmt.Errorf("trace: line %d: unknown directive %q", lineNo, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return t, nil
}
