package faults

import (
	"strings"
	"testing"
)

func TestIsZeroAndCanonical(t *testing.T) {
	var z Spec
	if !z.IsZero() {
		t.Fatal("zero Spec not IsZero")
	}
	if !z.Canonical().IsZero() {
		t.Fatal("canonical of zero Spec not zero")
	}

	// Identity values collapse to the zero spec — including a seed that
	// has nothing to perturb.
	inert := []Spec{
		{DerateInter: 1},
		{DerateIntra: 1},
		{DerateInter: 1, DerateIntra: 1, Seed: 42},
		{StragglerFactor: 1, Stragglers: 3},
		{StragglerFactor: 2}, // a factor with no ranks straggles nobody
		{Stragglers: 0, StragglerRanks: nil, StragglerFactor: 0},
		{Seed: 99},
	}
	for _, s := range inert {
		if c := s.Canonical(); !c.IsZero() {
			t.Errorf("Canonical(%+v) = %+v, want zero", s, c)
		}
	}

	// Active specs stay active.
	active := []Spec{
		{DerateInter: 0.5},
		{JitterFrac: 0.2},
		{StragglerFactor: 2, Stragglers: 1},
		{StragglerFactor: 2, StragglerRanks: []int{3}},
		{DownNodes: []int{1}},
		{DownLinks: [][2]int{{0, 1}}},
		{LinkDown: 1},
	}
	for _, s := range active {
		if s.Canonical().IsZero() {
			t.Errorf("Canonical(%+v) collapsed to zero", s)
		}
	}
}

func TestCanonicalNormalizesLists(t *testing.T) {
	s := Spec{
		StragglerFactor: 2,
		StragglerRanks:  []int{5, 1, 5, 3},
		DownNodes:       []int{2, 0, 2},
		DownLinks:       [][2]int{{3, 1}, {1, 3}, {0, 2}},
	}
	c := s.Canonical()
	wantRanks := []int{1, 3, 5}
	if len(c.StragglerRanks) != len(wantRanks) {
		t.Fatalf("StragglerRanks = %v, want %v", c.StragglerRanks, wantRanks)
	}
	for i, r := range wantRanks {
		if c.StragglerRanks[i] != r {
			t.Fatalf("StragglerRanks = %v, want %v", c.StragglerRanks, wantRanks)
		}
	}
	if len(c.DownNodes) != 2 || c.DownNodes[0] != 0 || c.DownNodes[1] != 2 {
		t.Fatalf("DownNodes = %v, want [0 2]", c.DownNodes)
	}
	if len(c.DownLinks) != 2 || c.DownLinks[0] != [2]int{0, 2} || c.DownLinks[1] != [2]int{1, 3} {
		t.Fatalf("DownLinks = %v, want [[0 2] [1 3]]", c.DownLinks)
	}
	// The original spec is untouched: Canonical copies.
	if s.StragglerRanks[0] != 5 {
		t.Fatal("Canonical mutated its receiver's lists")
	}
}

func TestValidate(t *testing.T) {
	bad := []Spec{
		{DerateInter: -0.1},
		{DerateInter: 1.5},
		{DerateIntra: 2},
		{JitterFrac: -1},
		{StragglerFactor: 0.5},
		{Stragglers: -1},
		{StragglerRanks: []int{-1}},
		{DownNodes: []int{-2}},
		{DownLinks: [][2]int{{1, 1}}},
		{DownLinks: [][2]int{{-1, 2}}},
		{LinkDown: -3},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", s)
		}
	}
	good := Spec{DerateInter: 0.5, JitterFrac: 0.3, StragglerFactor: 2, Stragglers: 2, LinkDown: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate(%+v): %v", good, err)
	}
}

func TestValidateFor(t *testing.T) {
	bad := []Spec{
		{StragglerFactor: 2, Stragglers: 9},            // more stragglers than ranks
		{StragglerFactor: 2, StragglerRanks: []int{8}}, // rank off the platform
		{DownNodes: []int{4}},
		{DownLinks: [][2]int{{0, 4}}},
		{LinkDown: 7}, // 4 nodes have only 6 pairs
	}
	for _, s := range bad {
		if err := s.ValidateFor(8, 4); err == nil {
			t.Errorf("ValidateFor(%+v, 8 procs, 4 nodes) accepted", s)
		}
	}
	good := Spec{StragglerFactor: 2, Stragglers: 8, DownNodes: []int{3}, LinkDown: 6}
	if err := good.ValidateFor(8, 4); err != nil {
		t.Fatalf("ValidateFor(%+v): %v", good, err)
	}
}

func TestEffectiveSeedStability(t *testing.T) {
	a := Spec{DerateInter: 0.5, Stragglers: 2, StragglerFactor: 2, Seed: 7}
	b := Spec{DerateInter: 0.5, Stragglers: 2, StragglerFactor: 2, Seed: 7}
	if a.EffectiveSeed() != b.EffectiveSeed() {
		t.Fatal("identical specs draw different seeds")
	}
	// Canonically equal spellings seed identically.
	c := Spec{DerateInter: 0.5, DerateIntra: 1, Stragglers: 2, StragglerFactor: 2, Seed: 7}
	if a.EffectiveSeed() != c.EffectiveSeed() {
		t.Fatal("canonically equal specs draw different seeds")
	}
	// Any field change reseeds.
	for _, d := range []Spec{
		{DerateInter: 0.6, Stragglers: 2, StragglerFactor: 2, Seed: 7},
		{DerateInter: 0.5, Stragglers: 3, StragglerFactor: 2, Seed: 7},
		{DerateInter: 0.5, Stragglers: 2, StragglerFactor: 3, Seed: 7},
		{DerateInter: 0.5, Stragglers: 2, StragglerFactor: 2, Seed: 8},
	} {
		if a.EffectiveSeed() == d.EffectiveSeed() {
			t.Errorf("spec %+v seeds identically to %+v", d, a)
		}
	}
}

func TestUnitDeterministicAndBounded(t *testing.T) {
	seen := map[float64]int{}
	for a := uint64(0); a < 50; a++ {
		for b := uint64(0); b < 50; b++ {
			u := Unit(12345, a, b)
			if u < 0 || u >= 1 {
				t.Fatalf("Unit(12345, %d, %d) = %g outside [0, 1)", a, b, u)
			}
			if u != Unit(12345, a, b) {
				t.Fatal("Unit not deterministic")
			}
			seen[u]++
		}
	}
	if len(seen) < 2400 { // 2500 draws; heavy collisions would mean a broken mix
		t.Fatalf("only %d distinct values in 2500 draws", len(seen))
	}
}

func TestPickRanks(t *testing.T) {
	got := PickRanks(42, 5, 16, nil)
	if len(got) != 5 {
		t.Fatalf("picked %d ranks, want 5", len(got))
	}
	seen := map[int32]bool{}
	for _, r := range got {
		if r < 0 || r >= 16 {
			t.Fatalf("rank %d outside [0, 16)", r)
		}
		if seen[r] {
			t.Fatalf("rank %d picked twice", r)
		}
		seen[r] = true
	}
	again := PickRanks(42, 5, 16, nil)
	for i := range got {
		if got[i] != again[i] {
			t.Fatal("PickRanks not deterministic")
		}
	}
	if diff := PickRanks(43, 5, 16, nil); len(diff) == len(got) {
		same := true
		for i := range got {
			if got[i] != diff[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds picked identical rank sets (possible but vanishingly unlikely)")
		}
	}
	// k > n clips.
	if all := PickRanks(1, 99, 4, nil); len(all) != 4 {
		t.Fatalf("overdraw picked %d of 4", len(all))
	}
}

func TestPickPairs(t *testing.T) {
	got := PickPairs(42, 3, 6, nil)
	if len(got) != 3 {
		t.Fatalf("picked %d pairs, want 3", len(got))
	}
	for _, p := range got {
		i, j := int(p>>32), int(p&0xffffffff)
		if !(0 <= i && i < j && j < 6) {
			t.Fatalf("pair (%d, %d) malformed", i, j)
		}
	}
	// Pairs pre-seeded into out (explicit DownLinks) are never re-drawn.
	pre := []uint64{got[0]}
	more := PickPairs(42, 2, 6, pre)
	for _, p := range more[1:] {
		if p == got[0] {
			t.Fatal("seeded draw repeated an explicit pair")
		}
	}
	// Overdraw clips to the available pairs: 6 nodes → 15 pairs.
	if all := PickPairs(7, 99, 6, nil); len(all) != 15 {
		t.Fatalf("overdraw picked %d of 15 pairs", len(all))
	}
}

func TestDescribe(t *testing.T) {
	if d := (Spec{}).Describe(); d != "" {
		t.Fatalf("zero spec describes as %q", d)
	}
	// Identity values canonicalize away before rendering.
	if d := (Spec{DerateInter: 1, StragglerFactor: 1, Seed: 9}).Describe(); d != "" {
		t.Fatalf("inert spec describes as %q", d)
	}
	s := Spec{
		DerateInter: 0.5, JitterFrac: 0.2,
		Stragglers: 2, StragglerRanks: []int{5}, StragglerFactor: 3,
		DownNodes: []int{0}, DownLinks: [][2]int{{0, 1}}, LinkDown: 2,
	}
	got := s.Describe()
	for _, want := range []string{"inter bw ×0.5", "jitter ≤+20%", "3 straggler(s) ×3", "1 NIC(s) down", "3 link(s) down"} {
		if !strings.Contains(got, want) {
			t.Fatalf("Describe() = %q, missing %q", got, want)
		}
	}
}
